# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cfpm_support_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_dd_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_netlist_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_stats_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_power_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_eval_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/cfpm_cli_tests[1]_include.cmake")
