file(REMOVE_RECURSE
  "CMakeFiles/cfpm_sim_tests.dir/sim/sequence_test.cpp.o"
  "CMakeFiles/cfpm_sim_tests.dir/sim/sequence_test.cpp.o.d"
  "CMakeFiles/cfpm_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/cfpm_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/cfpm_sim_tests.dir/sim/trace_io_test.cpp.o"
  "CMakeFiles/cfpm_sim_tests.dir/sim/trace_io_test.cpp.o.d"
  "CMakeFiles/cfpm_sim_tests.dir/sim/unit_delay_test.cpp.o"
  "CMakeFiles/cfpm_sim_tests.dir/sim/unit_delay_test.cpp.o.d"
  "cfpm_sim_tests"
  "cfpm_sim_tests.pdb"
  "cfpm_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
