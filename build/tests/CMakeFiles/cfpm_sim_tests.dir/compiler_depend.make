# Empty compiler generated dependencies file for cfpm_sim_tests.
# This may be replaced when dependencies are built.
