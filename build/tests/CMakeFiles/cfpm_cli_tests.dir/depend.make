# Empty dependencies file for cfpm_cli_tests.
# This may be replaced when dependencies are built.
