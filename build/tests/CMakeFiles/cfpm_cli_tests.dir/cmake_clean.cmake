file(REMOVE_RECURSE
  "CMakeFiles/cfpm_cli_tests.dir/tools/cli_test.cpp.o"
  "CMakeFiles/cfpm_cli_tests.dir/tools/cli_test.cpp.o.d"
  "cfpm_cli_tests"
  "cfpm_cli_tests.pdb"
  "cfpm_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
