# Empty dependencies file for cfpm_dd_tests.
# This may be replaced when dependencies are built.
