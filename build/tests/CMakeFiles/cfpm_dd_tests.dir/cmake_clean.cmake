file(REMOVE_RECURSE
  "CMakeFiles/cfpm_dd_tests.dir/dd/apply_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/apply_test.cpp.o.d"
  "CMakeFiles/cfpm_dd_tests.dir/dd/approx_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/approx_test.cpp.o.d"
  "CMakeFiles/cfpm_dd_tests.dir/dd/manager_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/manager_test.cpp.o.d"
  "CMakeFiles/cfpm_dd_tests.dir/dd/reorder_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/reorder_test.cpp.o.d"
  "CMakeFiles/cfpm_dd_tests.dir/dd/serialize_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/serialize_test.cpp.o.d"
  "CMakeFiles/cfpm_dd_tests.dir/dd/stats_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/stats_test.cpp.o.d"
  "CMakeFiles/cfpm_dd_tests.dir/dd/stress_test.cpp.o"
  "CMakeFiles/cfpm_dd_tests.dir/dd/stress_test.cpp.o.d"
  "cfpm_dd_tests"
  "cfpm_dd_tests.pdb"
  "cfpm_dd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_dd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
