file(REMOVE_RECURSE
  "CMakeFiles/cfpm_power_tests.dir/power/add_model_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/add_model_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/baselines_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/baselines_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/power_model_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/power_model_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/residual_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/residual_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/rtl_io_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/rtl_io_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/rtl_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/rtl_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/serialization_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/serialization_test.cpp.o.d"
  "CMakeFiles/cfpm_power_tests.dir/power/worked_example_test.cpp.o"
  "CMakeFiles/cfpm_power_tests.dir/power/worked_example_test.cpp.o.d"
  "cfpm_power_tests"
  "cfpm_power_tests.pdb"
  "cfpm_power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
