# Empty dependencies file for cfpm_power_tests.
# This may be replaced when dependencies are built.
