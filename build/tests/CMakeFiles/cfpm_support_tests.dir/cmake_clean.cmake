file(REMOVE_RECURSE
  "CMakeFiles/cfpm_support_tests.dir/support/linear_test.cpp.o"
  "CMakeFiles/cfpm_support_tests.dir/support/linear_test.cpp.o.d"
  "CMakeFiles/cfpm_support_tests.dir/support/rng_test.cpp.o"
  "CMakeFiles/cfpm_support_tests.dir/support/rng_test.cpp.o.d"
  "cfpm_support_tests"
  "cfpm_support_tests.pdb"
  "cfpm_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
