# Empty dependencies file for cfpm_support_tests.
# This may be replaced when dependencies are built.
