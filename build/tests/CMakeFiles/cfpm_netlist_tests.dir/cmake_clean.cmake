file(REMOVE_RECURSE
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/bench_io_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/bench_io_test.cpp.o.d"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/blif_io_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/blif_io_test.cpp.o.d"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/generators_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/generators_test.cpp.o.d"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/netlist_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/netlist_test.cpp.o.d"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/pipeline_property_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/pipeline_property_test.cpp.o.d"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/transform_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/transform_test.cpp.o.d"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/verify_test.cpp.o"
  "CMakeFiles/cfpm_netlist_tests.dir/netlist/verify_test.cpp.o.d"
  "cfpm_netlist_tests"
  "cfpm_netlist_tests.pdb"
  "cfpm_netlist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_netlist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
