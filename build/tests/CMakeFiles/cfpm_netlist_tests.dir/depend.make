# Empty dependencies file for cfpm_netlist_tests.
# This may be replaced when dependencies are built.
