file(REMOVE_RECURSE
  "CMakeFiles/cfpm_stats_tests.dir/stats/markov_test.cpp.o"
  "CMakeFiles/cfpm_stats_tests.dir/stats/markov_test.cpp.o.d"
  "cfpm_stats_tests"
  "cfpm_stats_tests.pdb"
  "cfpm_stats_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_stats_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
