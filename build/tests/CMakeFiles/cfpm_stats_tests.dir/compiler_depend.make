# Empty compiler generated dependencies file for cfpm_stats_tests.
# This may be replaced when dependencies are built.
