# Empty dependencies file for cfpm_integration_tests.
# This may be replaced when dependencies are built.
