# Empty compiler generated dependencies file for cfpm_integration_tests.
# This may be replaced when dependencies are built.
