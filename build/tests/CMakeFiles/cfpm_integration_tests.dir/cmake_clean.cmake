file(REMOVE_RECURSE
  "CMakeFiles/cfpm_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/cfpm_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/cfpm_integration_tests.dir/integration/property_test.cpp.o"
  "CMakeFiles/cfpm_integration_tests.dir/integration/property_test.cpp.o.d"
  "cfpm_integration_tests"
  "cfpm_integration_tests.pdb"
  "cfpm_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
