file(REMOVE_RECURSE
  "CMakeFiles/cfpm_eval_tests.dir/eval/experiment_test.cpp.o"
  "CMakeFiles/cfpm_eval_tests.dir/eval/experiment_test.cpp.o.d"
  "CMakeFiles/cfpm_eval_tests.dir/eval/table_test.cpp.o"
  "CMakeFiles/cfpm_eval_tests.dir/eval/table_test.cpp.o.d"
  "cfpm_eval_tests"
  "cfpm_eval_tests.pdb"
  "cfpm_eval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
