# Empty compiler generated dependencies file for cfpm_eval_tests.
# This may be replaced when dependencies are built.
