file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantize.dir/ablation_quantize.cpp.o"
  "CMakeFiles/ablation_quantize.dir/ablation_quantize.cpp.o.d"
  "ablation_quantize"
  "ablation_quantize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
