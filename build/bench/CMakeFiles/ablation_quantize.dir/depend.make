# Empty dependencies file for ablation_quantize.
# This may be replaced when dependencies are built.
