file(REMOVE_RECURSE
  "CMakeFiles/fig7b_size_tradeoff.dir/fig7b_size_tradeoff.cpp.o"
  "CMakeFiles/fig7b_size_tradeoff.dir/fig7b_size_tradeoff.cpp.o.d"
  "fig7b_size_tradeoff"
  "fig7b_size_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_size_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
