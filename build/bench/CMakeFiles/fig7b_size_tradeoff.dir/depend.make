# Empty dependencies file for fig7b_size_tradeoff.
# This may be replaced when dependencies are built.
