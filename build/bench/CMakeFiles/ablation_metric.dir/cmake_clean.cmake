file(REMOVE_RECURSE
  "CMakeFiles/ablation_metric.dir/ablation_metric.cpp.o"
  "CMakeFiles/ablation_metric.dir/ablation_metric.cpp.o.d"
  "ablation_metric"
  "ablation_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
