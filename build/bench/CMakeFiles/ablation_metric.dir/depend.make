# Empty dependencies file for ablation_metric.
# This may be replaced when dependencies are built.
