file(REMOVE_RECURSE
  "CMakeFiles/micro_dd.dir/micro_dd.cpp.o"
  "CMakeFiles/micro_dd.dir/micro_dd.cpp.o.d"
  "micro_dd"
  "micro_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
