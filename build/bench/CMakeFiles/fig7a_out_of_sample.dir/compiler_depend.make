# Empty compiler generated dependencies file for fig7a_out_of_sample.
# This may be replaced when dependencies are built.
