file(REMOVE_RECURSE
  "CMakeFiles/fig7a_out_of_sample.dir/fig7a_out_of_sample.cpp.o"
  "CMakeFiles/fig7a_out_of_sample.dir/fig7a_out_of_sample.cpp.o.d"
  "fig7a_out_of_sample"
  "fig7a_out_of_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_out_of_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
