# Empty dependencies file for table1_average.
# This may be replaced when dependencies are built.
