
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_average.cpp" "bench/CMakeFiles/table1_average.dir/table1_average.cpp.o" "gcc" "bench/CMakeFiles/table1_average.dir/table1_average.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/cfpm_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cfpm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cfpm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cfpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/cfpm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/cfpm_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cfpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
