file(REMOVE_RECURSE
  "CMakeFiles/table1_average.dir/table1_average.cpp.o"
  "CMakeFiles/table1_average.dir/table1_average.cpp.o.d"
  "table1_average"
  "table1_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
