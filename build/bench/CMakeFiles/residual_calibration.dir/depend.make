# Empty dependencies file for residual_calibration.
# This may be replaced when dependencies are built.
