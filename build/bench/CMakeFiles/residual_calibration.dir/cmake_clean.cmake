file(REMOVE_RECURSE
  "CMakeFiles/residual_calibration.dir/residual_calibration.cpp.o"
  "CMakeFiles/residual_calibration.dir/residual_calibration.cpp.o.d"
  "residual_calibration"
  "residual_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residual_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
