file(REMOVE_RECURSE
  "CMakeFiles/ip_reuse_backannotation.dir/ip_reuse_backannotation.cpp.o"
  "CMakeFiles/ip_reuse_backannotation.dir/ip_reuse_backannotation.cpp.o.d"
  "ip_reuse_backannotation"
  "ip_reuse_backannotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_reuse_backannotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
