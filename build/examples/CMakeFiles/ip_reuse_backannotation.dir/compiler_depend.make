# Empty compiler generated dependencies file for ip_reuse_backannotation.
# This may be replaced when dependencies are built.
