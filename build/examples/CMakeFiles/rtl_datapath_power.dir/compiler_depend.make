# Empty compiler generated dependencies file for rtl_datapath_power.
# This may be replaced when dependencies are built.
