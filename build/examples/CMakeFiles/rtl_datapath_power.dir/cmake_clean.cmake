file(REMOVE_RECURSE
  "CMakeFiles/rtl_datapath_power.dir/rtl_datapath_power.cpp.o"
  "CMakeFiles/rtl_datapath_power.dir/rtl_datapath_power.cpp.o.d"
  "rtl_datapath_power"
  "rtl_datapath_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_datapath_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
