file(REMOVE_RECURSE
  "CMakeFiles/peak_power_bound.dir/peak_power_bound.cpp.o"
  "CMakeFiles/peak_power_bound.dir/peak_power_bound.cpp.o.d"
  "peak_power_bound"
  "peak_power_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_power_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
