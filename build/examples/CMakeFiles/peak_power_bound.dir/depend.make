# Empty dependencies file for peak_power_bound.
# This may be replaced when dependencies are built.
