file(REMOVE_RECURSE
  "libcfpm_dd.a"
)
