file(REMOVE_RECURSE
  "CMakeFiles/cfpm_dd.dir/apply.cpp.o"
  "CMakeFiles/cfpm_dd.dir/apply.cpp.o.d"
  "CMakeFiles/cfpm_dd.dir/approx.cpp.o"
  "CMakeFiles/cfpm_dd.dir/approx.cpp.o.d"
  "CMakeFiles/cfpm_dd.dir/manager.cpp.o"
  "CMakeFiles/cfpm_dd.dir/manager.cpp.o.d"
  "CMakeFiles/cfpm_dd.dir/reorder.cpp.o"
  "CMakeFiles/cfpm_dd.dir/reorder.cpp.o.d"
  "CMakeFiles/cfpm_dd.dir/serialize.cpp.o"
  "CMakeFiles/cfpm_dd.dir/serialize.cpp.o.d"
  "CMakeFiles/cfpm_dd.dir/stats.cpp.o"
  "CMakeFiles/cfpm_dd.dir/stats.cpp.o.d"
  "libcfpm_dd.a"
  "libcfpm_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
