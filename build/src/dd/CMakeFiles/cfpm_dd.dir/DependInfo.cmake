
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dd/apply.cpp" "src/dd/CMakeFiles/cfpm_dd.dir/apply.cpp.o" "gcc" "src/dd/CMakeFiles/cfpm_dd.dir/apply.cpp.o.d"
  "/root/repo/src/dd/approx.cpp" "src/dd/CMakeFiles/cfpm_dd.dir/approx.cpp.o" "gcc" "src/dd/CMakeFiles/cfpm_dd.dir/approx.cpp.o.d"
  "/root/repo/src/dd/manager.cpp" "src/dd/CMakeFiles/cfpm_dd.dir/manager.cpp.o" "gcc" "src/dd/CMakeFiles/cfpm_dd.dir/manager.cpp.o.d"
  "/root/repo/src/dd/reorder.cpp" "src/dd/CMakeFiles/cfpm_dd.dir/reorder.cpp.o" "gcc" "src/dd/CMakeFiles/cfpm_dd.dir/reorder.cpp.o.d"
  "/root/repo/src/dd/serialize.cpp" "src/dd/CMakeFiles/cfpm_dd.dir/serialize.cpp.o" "gcc" "src/dd/CMakeFiles/cfpm_dd.dir/serialize.cpp.o.d"
  "/root/repo/src/dd/stats.cpp" "src/dd/CMakeFiles/cfpm_dd.dir/stats.cpp.o" "gcc" "src/dd/CMakeFiles/cfpm_dd.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cfpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
