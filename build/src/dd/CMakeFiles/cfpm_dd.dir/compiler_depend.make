# Empty compiler generated dependencies file for cfpm_dd.
# This may be replaced when dependencies are built.
