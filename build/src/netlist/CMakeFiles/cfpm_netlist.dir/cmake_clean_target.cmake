file(REMOVE_RECURSE
  "libcfpm_netlist.a"
)
