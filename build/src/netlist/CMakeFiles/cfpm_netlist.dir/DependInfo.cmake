
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/bench_io.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/bench_io.cpp.o.d"
  "/root/repo/src/netlist/blif_io.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/blif_io.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/blif_io.cpp.o.d"
  "/root/repo/src/netlist/gate.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/gate.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/gate.cpp.o.d"
  "/root/repo/src/netlist/generators.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/generators.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/generators.cpp.o.d"
  "/root/repo/src/netlist/library.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/library.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/library.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/transform.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/transform.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/transform.cpp.o.d"
  "/root/repo/src/netlist/verify.cpp" "src/netlist/CMakeFiles/cfpm_netlist.dir/verify.cpp.o" "gcc" "src/netlist/CMakeFiles/cfpm_netlist.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dd/CMakeFiles/cfpm_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cfpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
