file(REMOVE_RECURSE
  "CMakeFiles/cfpm_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/blif_io.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/blif_io.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/gate.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/generators.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/library.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/library.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/netlist.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/transform.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/transform.cpp.o.d"
  "CMakeFiles/cfpm_netlist.dir/verify.cpp.o"
  "CMakeFiles/cfpm_netlist.dir/verify.cpp.o.d"
  "libcfpm_netlist.a"
  "libcfpm_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
