# Empty dependencies file for cfpm_netlist.
# This may be replaced when dependencies are built.
