# Empty compiler generated dependencies file for cfpm_eval.
# This may be replaced when dependencies are built.
