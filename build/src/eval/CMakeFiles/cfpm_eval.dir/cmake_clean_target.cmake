file(REMOVE_RECURSE
  "libcfpm_eval.a"
)
