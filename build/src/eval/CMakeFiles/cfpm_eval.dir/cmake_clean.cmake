file(REMOVE_RECURSE
  "CMakeFiles/cfpm_eval.dir/experiment.cpp.o"
  "CMakeFiles/cfpm_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/cfpm_eval.dir/table.cpp.o"
  "CMakeFiles/cfpm_eval.dir/table.cpp.o.d"
  "libcfpm_eval.a"
  "libcfpm_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
