# Empty compiler generated dependencies file for cfpm.
# This may be replaced when dependencies are built.
