file(REMOVE_RECURSE
  "CMakeFiles/cfpm.dir/cfpm_cli.cpp.o"
  "CMakeFiles/cfpm.dir/cfpm_cli.cpp.o.d"
  "cfpm"
  "cfpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
