# Empty dependencies file for cfpm.
# This may be replaced when dependencies are built.
