# Empty compiler generated dependencies file for cfpm_stats.
# This may be replaced when dependencies are built.
