# Empty dependencies file for cfpm_stats.
# This may be replaced when dependencies are built.
