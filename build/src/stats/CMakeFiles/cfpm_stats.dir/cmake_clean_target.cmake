file(REMOVE_RECURSE
  "libcfpm_stats.a"
)
