file(REMOVE_RECURSE
  "CMakeFiles/cfpm_stats.dir/markov.cpp.o"
  "CMakeFiles/cfpm_stats.dir/markov.cpp.o.d"
  "libcfpm_stats.a"
  "libcfpm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
