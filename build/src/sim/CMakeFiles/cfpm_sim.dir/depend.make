# Empty dependencies file for cfpm_sim.
# This may be replaced when dependencies are built.
