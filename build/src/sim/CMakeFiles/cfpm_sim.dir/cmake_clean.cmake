file(REMOVE_RECURSE
  "CMakeFiles/cfpm_sim.dir/sequence.cpp.o"
  "CMakeFiles/cfpm_sim.dir/sequence.cpp.o.d"
  "CMakeFiles/cfpm_sim.dir/simulator.cpp.o"
  "CMakeFiles/cfpm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/cfpm_sim.dir/trace_io.cpp.o"
  "CMakeFiles/cfpm_sim.dir/trace_io.cpp.o.d"
  "CMakeFiles/cfpm_sim.dir/unit_delay.cpp.o"
  "CMakeFiles/cfpm_sim.dir/unit_delay.cpp.o.d"
  "libcfpm_sim.a"
  "libcfpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
