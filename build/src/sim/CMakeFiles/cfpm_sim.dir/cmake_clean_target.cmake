file(REMOVE_RECURSE
  "libcfpm_sim.a"
)
