# Empty compiler generated dependencies file for cfpm_support.
# This may be replaced when dependencies are built.
