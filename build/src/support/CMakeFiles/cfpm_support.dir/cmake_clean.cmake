file(REMOVE_RECURSE
  "CMakeFiles/cfpm_support.dir/linear.cpp.o"
  "CMakeFiles/cfpm_support.dir/linear.cpp.o.d"
  "libcfpm_support.a"
  "libcfpm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
