file(REMOVE_RECURSE
  "libcfpm_support.a"
)
