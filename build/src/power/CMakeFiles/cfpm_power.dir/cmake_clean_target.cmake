file(REMOVE_RECURSE
  "libcfpm_power.a"
)
