# Empty dependencies file for cfpm_power.
# This may be replaced when dependencies are built.
