file(REMOVE_RECURSE
  "CMakeFiles/cfpm_power.dir/add_model.cpp.o"
  "CMakeFiles/cfpm_power.dir/add_model.cpp.o.d"
  "CMakeFiles/cfpm_power.dir/baselines.cpp.o"
  "CMakeFiles/cfpm_power.dir/baselines.cpp.o.d"
  "CMakeFiles/cfpm_power.dir/power_model.cpp.o"
  "CMakeFiles/cfpm_power.dir/power_model.cpp.o.d"
  "CMakeFiles/cfpm_power.dir/residual.cpp.o"
  "CMakeFiles/cfpm_power.dir/residual.cpp.o.d"
  "CMakeFiles/cfpm_power.dir/rtl.cpp.o"
  "CMakeFiles/cfpm_power.dir/rtl.cpp.o.d"
  "CMakeFiles/cfpm_power.dir/rtl_io.cpp.o"
  "CMakeFiles/cfpm_power.dir/rtl_io.cpp.o.d"
  "libcfpm_power.a"
  "libcfpm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfpm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
