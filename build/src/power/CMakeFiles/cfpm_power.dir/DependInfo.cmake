
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/add_model.cpp" "src/power/CMakeFiles/cfpm_power.dir/add_model.cpp.o" "gcc" "src/power/CMakeFiles/cfpm_power.dir/add_model.cpp.o.d"
  "/root/repo/src/power/baselines.cpp" "src/power/CMakeFiles/cfpm_power.dir/baselines.cpp.o" "gcc" "src/power/CMakeFiles/cfpm_power.dir/baselines.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/cfpm_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/cfpm_power.dir/power_model.cpp.o.d"
  "/root/repo/src/power/residual.cpp" "src/power/CMakeFiles/cfpm_power.dir/residual.cpp.o" "gcc" "src/power/CMakeFiles/cfpm_power.dir/residual.cpp.o.d"
  "/root/repo/src/power/rtl.cpp" "src/power/CMakeFiles/cfpm_power.dir/rtl.cpp.o" "gcc" "src/power/CMakeFiles/cfpm_power.dir/rtl.cpp.o.d"
  "/root/repo/src/power/rtl_io.cpp" "src/power/CMakeFiles/cfpm_power.dir/rtl_io.cpp.o" "gcc" "src/power/CMakeFiles/cfpm_power.dir/rtl_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dd/CMakeFiles/cfpm_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/cfpm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cfpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cfpm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cfpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
