#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/generators.hpp"
#include "support/error.hpp"

namespace cfpm::sim {
namespace {

using netlist::Netlist;

InputSequence toggle_sequence() {
  // input 0: 0,1,1,0 ; input 1..4: constant 0.
  InputSequence seq(5, 4);
  seq.set_bit(0, 1, true);
  seq.set_bit(0, 2, true);
  return seq;
}

TEST(Vcd, HeaderDeclaresAllSignals) {
  Netlist n = netlist::gen::c17();
  GateLevelSimulator sim(n, netlist::GateLibrary::standard());
  std::ostringstream os;
  write_vcd(os, n, toggle_sequence(), &sim);
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module c17 $end"), std::string::npos);
  // All 11 signals (5 inputs + 6 gates) declared.
  std::size_t vars = 0, pos = 0;
  while ((pos = out.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    ++pos;
  }
  EXPECT_EQ(vars, n.num_signals());
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, InputsOnlyWhenNoSimulator) {
  Netlist n = netlist::gen::c17();
  std::ostringstream os;
  write_vcd(os, n, toggle_sequence());
  const std::string out = os.str();
  std::size_t vars = 0, pos = 0;
  while ((pos = out.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    ++pos;
  }
  EXPECT_EQ(vars, n.num_inputs());
}

TEST(Vcd, OnlyChangesAreDumped) {
  Netlist n = netlist::gen::c17();
  std::ostringstream os;
  write_vcd(os, n, toggle_sequence());
  const std::string out = os.str();
  // Input 0 (id '!') changes at t=0 (initial), t=1 (rises), t=3 (falls);
  // not at t=2.
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);
  EXPECT_NE(out.find("#3"), std::string::npos);
  EXPECT_EQ(out.find("#2\n"), std::string::npos);  // nothing changed at t=2
}

TEST(Vcd, MultiCharIdsBeyond94Signals) {
  // 100-input circuit forces 2-character identifier codes.
  Netlist n("wide");
  for (int i = 0; i < 100; ++i) {
    n.add_input("x" + std::to_string(i));
  }
  n.add_gate(netlist::GateType::kOr, {0u, 1u}, "y");
  n.mark_output(n.find("y"));
  InputSequence seq(100, 2);
  seq.set_bit(99, 1, true);
  std::ostringstream os;
  write_vcd(os, n, seq);
  const std::string out = os.str();
  // Identifier index 99 = '!' + 5, '"' (little endian 94+5): "&\"".
  EXPECT_NE(out.find("x99"), std::string::npos);
  EXPECT_NE(out.find("1&\""), std::string::npos);  // x99 rising at t=1
  EXPECT_TRUE(out.ends_with("#2\n"));
}

TEST(Vcd, RejectsMismatchedSequence) {
  Netlist n = netlist::gen::c17();
  InputSequence wrong(3, 4);
  std::ostringstream os;
  EXPECT_THROW(write_vcd(os, n, wrong), ContractError);
}

}  // namespace
}  // namespace cfpm::sim
