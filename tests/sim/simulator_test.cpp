#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/generators.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

/// The paper's Fig. 2 unit with its example capacitances C1=40, C2=50, C3=10.
Netlist fig2_unit() {
  Netlist n("fig2");
  const SignalId x1 = n.add_input("x1");
  const SignalId x2 = n.add_input("x2");
  n.add_gate(GateType::kNot, {x1}, "g1");
  n.add_gate(GateType::kNot, {x2}, "g2");
  n.add_gate(GateType::kOr, {x1, x2}, "g3");
  return n;
}

std::vector<double> fig2_loads(const Netlist& n) {
  std::vector<double> loads(n.num_signals(), 0.0);
  loads[n.find("g1")] = 40.0;
  loads[n.find("g2")] = 50.0;
  loads[n.find("g3")] = 10.0;
  return loads;
}

TEST(Simulator, PaperExample1) {
  // Ex. 1: C(11 -> 00) = C1 + C2 = 90 fF.
  Netlist n = fig2_unit();
  GateLevelSimulator s(n, fig2_loads(n));
  const std::uint8_t xi[2] = {1, 1};
  const std::uint8_t xf[2] = {0, 0};
  EXPECT_DOUBLE_EQ(s.switching_capacitance_ff(xi, xf), 90.0);
}

TEST(Simulator, Fig2LookupTableRows) {
  // Spot-check more rows of the Fig. 2.b LUT.
  Netlist n = fig2_unit();
  GateLevelSimulator s(n, fig2_loads(n));
  auto cap = [&](int a, int b, int c, int d) {
    const std::uint8_t xi[2] = {static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b)};
    const std::uint8_t xf[2] = {static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(d)};
    return s.switching_capacitance_ff(xi, xf);
  };
  EXPECT_DOUBLE_EQ(cap(0, 0, 0, 0), 0.0);   // no transition
  EXPECT_DOUBLE_EQ(cap(0, 0, 1, 0), 10.0);  // g3 rises
  EXPECT_DOUBLE_EQ(cap(0, 0, 1, 1), 10.0);  // g3 rises, g1/g2 fall
  EXPECT_DOUBLE_EQ(cap(1, 0, 0, 1), 40.0);  // g1 rises (g2 falls, g3 stays)
  EXPECT_DOUBLE_EQ(cap(0, 1, 1, 0), 50.0);  // g2 rises
  EXPECT_DOUBLE_EQ(cap(1, 1, 0, 0), 90.0);  // g1+g2 rise
}

TEST(Simulator, NoRisingMeansZero) {
  Netlist n = fig2_unit();
  GateLevelSimulator s(n, fig2_loads(n));
  // Same vector twice: zero switched capacitance.
  for (unsigned m = 0; m < 4; ++m) {
    const std::uint8_t v[2] = {static_cast<std::uint8_t>(m & 1),
                               static_cast<std::uint8_t>((m >> 1) & 1)};
    EXPECT_DOUBLE_EQ(s.switching_capacitance_ff(v, v), 0.0);
  }
}

TEST(Simulator, SequenceMatchesPairwise) {
  // simulate() over a sequence must equal the scalar pairwise API.
  Netlist n = netlist::gen::ripple_carry_adder(4);
  netlist::GateLibrary lib = netlist::GateLibrary::standard();
  GateLevelSimulator s(n, lib);
  cfpm::Xoshiro256 rng(17);
  const std::size_t len = 200;  // crosses word boundaries
  InputSequence seq(n.num_inputs(), len);
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    for (std::size_t t = 0; t < len; ++t) {
      seq.set_bit(i, t, rng.next_bool(0.5));
    }
  }
  const SequenceEnergy energy = s.simulate(seq);
  ASSERT_EQ(energy.per_transition_ff.size(), len - 1);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  double total = 0.0, peak = 0.0;
  for (std::size_t t = 0; t + 1 < len; ++t) {
    seq.vector_at(t, xi);
    seq.vector_at(t + 1, xf);
    const double expect = s.switching_capacitance_ff(xi, xf);
    ASSERT_DOUBLE_EQ(energy.per_transition_ff[t], expect) << "t=" << t;
    total += expect;
    peak = std::max(peak, expect);
  }
  EXPECT_DOUBLE_EQ(energy.total_ff, total);
  EXPECT_DOUBLE_EQ(energy.peak_ff, peak);
}

TEST(Simulator, ExactWordBoundaryLengths) {
  Netlist n = netlist::gen::parity_tree(4, 2);
  netlist::GateLibrary lib = netlist::GateLibrary::uniform(1.0);
  GateLevelSimulator s(n, lib);
  cfpm::Xoshiro256 rng(23);
  for (std::size_t len : {2u, 63u, 64u, 65u, 128u, 129u}) {
    InputSequence seq(n.num_inputs(), len);
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      for (std::size_t t = 0; t < len; ++t) {
        seq.set_bit(i, t, rng.next_bool(0.5));
      }
    }
    const SequenceEnergy energy = s.simulate(seq);
    ASSERT_EQ(energy.per_transition_ff.size(), len - 1) << "len=" << len;
    std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
    for (std::size_t t = 0; t + 1 < len; ++t) {
      seq.vector_at(t, xi);
      seq.vector_at(t + 1, xf);
      ASSERT_DOUBLE_EQ(energy.per_transition_ff[t],
                       s.switching_capacitance_ff(xi, xf))
          << "len=" << len << " t=" << t;
    }
  }
}

TEST(Simulator, TotalGateLoadIsWorstCase) {
  Netlist n = netlist::gen::magnitude_comparator(4);
  netlist::GateLibrary lib = netlist::GateLibrary::standard();
  GateLevelSimulator s(n, lib);
  cfpm::Xoshiro256 rng(29);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& b : xi) b = static_cast<std::uint8_t>(rng.next_below(2));
    for (auto& b : xf) b = static_cast<std::uint8_t>(rng.next_below(2));
    EXPECT_LE(s.switching_capacitance_ff(xi, xf), s.total_gate_load_ff());
  }
}

TEST(Simulator, InputTransitionsDoNotCount) {
  // Only gate outputs contribute; toggling inputs that reach no rising gate
  // output must yield zero.
  Netlist n("buf");
  const SignalId a = n.add_input("a");
  n.add_gate(GateType::kBuf, {a}, "y");
  n.mark_output(n.find("y"));
  std::vector<double> loads(n.num_signals(), 0.0);
  loads[n.find("a")] = 100.0;  // input load is externally driven
  loads[n.find("y")] = 5.0;
  GateLevelSimulator s(n, loads);
  const std::uint8_t hi[1] = {1};
  const std::uint8_t lo[1] = {0};
  EXPECT_DOUBLE_EQ(s.switching_capacitance_ff(lo, hi), 5.0);   // y rises
  EXPECT_DOUBLE_EQ(s.switching_capacitance_ff(hi, lo), 0.0);   // y falls
}

TEST(Simulator, ConstGatesNeverSwitch) {
  Netlist n("consts");
  n.add_input("a");
  n.add_gate(GateType::kConst1, {}, "one");
  n.add_gate(GateType::kConst0, {}, "zero");
  std::vector<double> loads(n.num_signals(), 10.0);
  GateLevelSimulator s(n, loads);
  const std::uint8_t hi[1] = {1};
  const std::uint8_t lo[1] = {0};
  EXPECT_DOUBLE_EQ(s.switching_capacitance_ff(lo, hi), 0.0);
}

TEST(Simulator, MismatchedLoadVectorRejected) {
  Netlist n = fig2_unit();
  std::vector<double> wrong(2, 1.0);
  EXPECT_THROW(GateLevelSimulator(n, wrong), ContractError);
}

TEST(Simulator, EvalExposesInternalSignals) {
  Netlist n = fig2_unit();
  GateLevelSimulator s(n, fig2_loads(n));
  const auto vals = s.eval(std::vector<std::uint8_t>{1, 0});
  EXPECT_EQ(vals[n.find("g1")], 0);  // NOT x1
  EXPECT_EQ(vals[n.find("g2")], 1);  // NOT x2
  EXPECT_EQ(vals[n.find("g3")], 1);  // OR
}

}  // namespace
}  // namespace cfpm::sim
