#include "sim/sequence.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace cfpm::sim {
namespace {

TEST(InputSequence, BitSetGetRoundTrip) {
  InputSequence seq(3, 130);  // spans three 64-bit words
  seq.set_bit(0, 0, true);
  seq.set_bit(1, 64, true);
  seq.set_bit(2, 129, true);
  EXPECT_TRUE(seq.bit(0, 0));
  EXPECT_FALSE(seq.bit(0, 1));
  EXPECT_TRUE(seq.bit(1, 64));
  EXPECT_FALSE(seq.bit(1, 63));
  EXPECT_TRUE(seq.bit(2, 129));
  seq.set_bit(0, 0, false);
  EXPECT_FALSE(seq.bit(0, 0));
}

TEST(InputSequence, FromVectors) {
  const std::vector<std::vector<std::uint8_t>> vecs = {
      {1, 0}, {1, 1}, {0, 1}};
  InputSequence seq = InputSequence::from_vectors(vecs);
  EXPECT_EQ(seq.num_inputs(), 2u);
  EXPECT_EQ(seq.length(), 3u);
  EXPECT_EQ(seq.num_transitions(), 2u);
  EXPECT_TRUE(seq.bit(0, 0));
  EXPECT_FALSE(seq.bit(0, 2));
  EXPECT_TRUE(seq.bit(1, 2));
}

TEST(InputSequence, VectorAt) {
  const std::vector<std::vector<std::uint8_t>> vecs = {{1, 0, 1}, {0, 1, 1}};
  InputSequence seq = InputSequence::from_vectors(vecs);
  std::vector<std::uint8_t> out(3);
  seq.vector_at(1, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(InputSequence, SignalProbability) {
  InputSequence seq(2, 4);
  // input 0: 1,1,0,0 ; input 1: 1,0,0,0 -> 3 ones / 8 bits
  seq.set_bit(0, 0, true);
  seq.set_bit(0, 1, true);
  seq.set_bit(1, 0, true);
  EXPECT_DOUBLE_EQ(seq.signal_probability(), 3.0 / 8.0);
}

TEST(InputSequence, TransitionProbability) {
  InputSequence seq(1, 4);
  // 0,1,1,0 -> toggles at t=0 and t=2: 2 of 3 transitions.
  seq.set_bit(0, 1, true);
  seq.set_bit(0, 2, true);
  EXPECT_DOUBLE_EQ(seq.transition_probability(), 2.0 / 3.0);
}

TEST(InputSequence, TailBitsDoNotPolluteStatistics) {
  // length 65 with all-one values: sp must be exactly 1.
  InputSequence seq(1, 65);
  for (std::size_t t = 0; t < 65; ++t) seq.set_bit(0, t, true);
  EXPECT_DOUBLE_EQ(seq.signal_probability(), 1.0);
  EXPECT_DOUBLE_EQ(seq.transition_probability(), 0.0);
}

TEST(InputSequence, WordAccessMatchesBits) {
  InputSequence seq(1, 70);
  seq.set_bit(0, 5, true);
  seq.set_bit(0, 69, true);
  EXPECT_EQ(seq.word(0, 0), std::uint64_t{1} << 5);
  EXPECT_EQ(seq.word(0, 1), std::uint64_t{1} << 5);  // 69 - 64 = 5
}

TEST(InputSequence, SingleVectorHasNoTransitions) {
  InputSequence seq(4, 1);
  EXPECT_EQ(seq.num_transitions(), 0u);
}

}  // namespace
}  // namespace cfpm::sim
