#include "sim/unit_delay.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/generators.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

/// Classic glitch generator: y = a AND (NOT a) settles at 0 but pulses
/// high for one unit when `a` falls (the inverter lags).
Netlist glitcher() {
  Netlist n("glitch");
  const SignalId a = n.add_input("a");
  n.add_gate(GateType::kNot, {a}, "na");
  n.add_gate(GateType::kAnd, {a, n.find("na")}, "y");
  n.mark_output(n.find("y"));
  return n;
}

TEST(UnitDelay, StaticHazardProducesGlitchEnergy) {
  Netlist n = glitcher();
  std::vector<double> loads(n.num_signals(), 0.0);
  loads[n.find("na")] = 3.0;
  loads[n.find("y")] = 7.0;
  UnitDelaySimulator s(n, loads);

  // a: 1 -> 0. The AND sees (a=0) immediately but (na=1) only one unit
  // later, so y stays 0... check the other direction too.
  const std::uint8_t hi[1] = {1};
  const std::uint8_t lo[1] = {0};

  // a: 0 -> 1. na lags at 1 for one unit while a is already 1: the AND
  // output pulses 0->1->0: one rising edge on y (7 fF) + none functional.
  const GlitchBreakdown up = s.switching_capacitance_ff(lo, hi);
  EXPECT_DOUBLE_EQ(up.total_ff, 7.0);       // the glitch pulse
  EXPECT_DOUBLE_EQ(up.functional_ff, 0.0);  // y settles where it started
  EXPECT_DOUBLE_EQ(up.glitch_ff(), 7.0);

  // a: 1 -> 0: na rises (3 fF functional); y cannot pulse because the AND
  // sees a=0 first.
  const GlitchBreakdown down = s.switching_capacitance_ff(hi, lo);
  EXPECT_DOUBLE_EQ(down.functional_ff, 3.0);
  EXPECT_DOUBLE_EQ(down.total_ff, 3.0);
  EXPECT_DOUBLE_EQ(down.glitch_ff(), 0.0);
}

TEST(UnitDelay, NoInputChangeNoEnergy) {
  Netlist n = netlist::gen::ripple_carry_adder(3);
  UnitDelaySimulator s(n, netlist::GateLibrary::standard());
  std::vector<std::uint8_t> v(n.num_inputs(), 1);
  const GlitchBreakdown b = s.switching_capacitance_ff(v, v);
  EXPECT_DOUBLE_EQ(b.total_ff, 0.0);
  EXPECT_DOUBLE_EQ(b.functional_ff, 0.0);
}

TEST(UnitDelay, FunctionalPartMatchesZeroDelaySimulator) {
  // The functional component must equal the zero-delay golden model
  // exactly, for any circuit and any transition (Eq. 2/3).
  for (const char* name : {"cm85", "cmb", "decod", "x2"}) {
    Netlist n = netlist::gen::mcnc_like(name);
    const netlist::GateLibrary lib = netlist::GateLibrary::standard();
    UnitDelaySimulator ud(n, lib, DelayModel::standard());
    GateLevelSimulator zd(n, lib);
    Xoshiro256 rng(7);
    std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
    for (int k = 0; k < 200; ++k) {
      for (std::size_t i = 0; i < n.num_inputs(); ++i) {
        xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
        xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
      }
      const GlitchBreakdown b = ud.switching_capacitance_ff(xi, xf);
      ASSERT_DOUBLE_EQ(b.functional_ff, zd.switching_capacitance_ff(xi, xf))
          << name << " pair " << k;
      ASSERT_GE(b.total_ff + 1e-9, b.functional_ff);
    }
  }
}

TEST(UnitDelay, UniformDelayTreeHasNoGlitches) {
  // In a fanout-free tree with equal gate delays all paths from any input
  // to a gate have equal length, so no hazards can form.
  Netlist n = netlist::gen::parity_tree(8, 8);  // pure XOR tree
  UnitDelaySimulator s(n, netlist::GateLibrary::uniform(2.0), DelayModel::unit());
  Xoshiro256 rng(9);
  std::vector<std::uint8_t> xi(8), xf(8);
  for (int k = 0; k < 200; ++k) {
    for (int i = 0; i < 8; ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    const GlitchBreakdown b = s.switching_capacitance_ff(xi, xf);
    ASSERT_NEAR(b.glitch_ff(), 0.0, 1e-12) << "pair " << k;
  }
}

TEST(UnitDelay, UnbalancedPathsCreateGlitches) {
  // parity_tree(8, 1) realizes deep xor cells as (a OR b) AND (a NAND b).
  // The OR-side path costs delay(OR) + delay(AND) = 4; a hazard forms when
  // the NAND side lags past the AND's first re-evaluation, i.e.
  // delay(NAND) >= delay(OR) + delay(AND).
  Netlist n = netlist::gen::parity_tree(8, 1);
  DelayModel skewed = DelayModel::standard();
  skewed.set_delay(netlist::GateType::kNand, 4);
  UnitDelaySimulator s(n, netlist::GateLibrary::uniform(2.0), skewed);
  double glitch_total = 0.0;
  Xoshiro256 rng(11);
  std::vector<std::uint8_t> xi(8), xf(8);
  for (int k = 0; k < 300; ++k) {
    for (int i = 0; i < 8; ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    glitch_total += s.switching_capacitance_ff(xi, xf).glitch_ff();
  }
  EXPECT_GT(glitch_total, 0.0);
}

TEST(UnitDelay, SequenceTotalsAreConsistent) {
  Netlist n = netlist::gen::mcnc_like("cm85");
  const netlist::GateLibrary lib = netlist::GateLibrary::uniform(5.0, 10.0);
  UnitDelaySimulator s(n, lib, DelayModel::standard());
  InputSequence seq(n.num_inputs(), 80);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    for (std::size_t t = 0; t < 80; ++t) seq.set_bit(i, t, rng.next_bool(0.5));
  }
  const SequenceEnergy energy = s.simulate(seq);
  const GlitchBreakdown breakdown = s.simulate_breakdown(seq);
  EXPECT_NEAR(energy.total_ff, breakdown.total_ff, 1e-9);
  EXPECT_GE(breakdown.total_ff + 1e-9, breakdown.functional_ff);
  ASSERT_EQ(energy.per_transition_ff.size(), 79u);
}

TEST(UnitDelay, GlitchEnergyIsNonNegativeEverywhere) {
  Netlist n = netlist::gen::mcnc_like("alu2");
  UnitDelaySimulator s(n, netlist::GateLibrary::uniform(5.0, 10.0),
                       DelayModel::standard());
  Xoshiro256 rng(13);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 300; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_GE(s.switching_capacitance_ff(xi, xf).glitch_ff(), -1e-9);
  }
}

TEST(UnitDelay, MismatchedLoadsRejected) {
  Netlist n = glitcher();
  std::vector<double> wrong(1, 1.0);
  EXPECT_THROW(UnitDelaySimulator(n, wrong), ContractError);
}

}  // namespace
}  // namespace cfpm::sim
