// Failpoint registry: spec grammar, fire budgets, typed actions, and env
// seeding. Firing behavior is skipped when the hooks are compiled out
// (-DCFPM_NO_FAILPOINTS) — the registry API must still parse and arm.
#include "support/failpoint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "support/error.hpp"

namespace cfpm::failpoint {
namespace {

/// Every test leaves the process-global registry empty, whatever happens.
class Failpoint : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(Failpoint, UnarmedHitIsANoOp) {
  EXPECT_NO_THROW(hit("never.armed"));
  EXPECT_TRUE(armed().empty());
}

TEST_F(Failpoint, ActionsThrowTheirTypedExceptions) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_FAILPOINTS";
  arm("fp.alloc", Action::kThrowBadAlloc);
  EXPECT_THROW(hit("fp.alloc"), std::bad_alloc);
  arm("fp.deadline", Action::kThrowDeadline);
  EXPECT_THROW(hit("fp.deadline"), DeadlineExceeded);
  arm("fp.resource", Action::kThrowResource);
  EXPECT_THROW(hit("fp.resource"), ResourceError);
  arm("fp.io", Action::kFailIo);
  EXPECT_THROW(hit("fp.io"), IoError);
}

TEST_F(Failpoint, CountBudgetSpendsThenGoesInert) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_FAILPOINTS";
  arm("fp.twice", Action::kThrowBadAlloc, 2);
  EXPECT_THROW(hit("fp.twice"), std::bad_alloc);
  EXPECT_THROW(hit("fp.twice"), std::bad_alloc);
  // Budget spent: the entry is gone and the hook is free again.
  EXPECT_NO_THROW(hit("fp.twice"));
  EXPECT_TRUE(armed().empty());
}

TEST_F(Failpoint, ForeverCountNeverSpends) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_FAILPOINTS";
  arm("fp.forever", Action::kThrowBadAlloc, kForever);
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(hit("fp.forever"), std::bad_alloc);
  }
  ASSERT_EQ(armed().size(), 1u);
  EXPECT_EQ(armed()[0].remaining, kForever);
  disarm("fp.forever");
  EXPECT_NO_THROW(hit("fp.forever"));
}

TEST_F(Failpoint, TotalFiresCountsActionsNotHits) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_FAILPOINTS";
  const std::uint64_t before = total_fires();
  hit("fp.unarmed");  // no action, no fire
  arm("fp.count", Action::kThrowResource, 2);
  EXPECT_THROW(hit("fp.count"), ResourceError);
  EXPECT_THROW(hit("fp.count"), ResourceError);
  hit("fp.count");  // spent
  EXPECT_EQ(total_fires(), before + 2);
}

TEST_F(Failpoint, SpecGrammarArmsEverything) {
  arm_from_spec(
      "a.one=throw_bad_alloc,b.two=throw_deadline:3,c.three=delay_ms(7):0");
  const auto entries = armed();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.one");
  EXPECT_EQ(entries[0].action, Action::kThrowBadAlloc);
  EXPECT_EQ(entries[0].remaining, 1u);  // count omitted = once
  EXPECT_EQ(entries[1].name, "b.two");
  EXPECT_EQ(entries[1].action, Action::kThrowDeadline);
  EXPECT_EQ(entries[1].remaining, 3u);
  EXPECT_EQ(entries[2].name, "c.three");
  EXPECT_EQ(entries[2].action, Action::kDelayMs);
  EXPECT_EQ(entries[2].delay_ms, 7u);
  EXPECT_EQ(entries[2].remaining, kForever);
}

TEST_F(Failpoint, DelayActionSleepsWithoutThrowing) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_FAILPOINTS";
  arm_from_spec("fp.slow=delay_ms(1):2");
  EXPECT_NO_THROW(hit("fp.slow"));
  EXPECT_NO_THROW(hit("fp.slow"));
  EXPECT_TRUE(armed().empty());
}

TEST_F(Failpoint, MalformedSpecsThrowAndArmNothing) {
  for (const char* bad : {
           "no_equals",                 // entry without '='
           "a=",                        // empty action
           "=throw_bad_alloc",          // empty name
           "a=throw_sigsegv",           // unknown action
           "a=throw_bad_alloc:xyz",     // non-numeric count
           "a=delay_ms()",              // missing delay value
           "a=delay_ms(12",             // unterminated parens
           "",                          // nothing to arm
           "a=fail_io,b=bogus",         // one bad entry poisons the spec
       }) {
    EXPECT_THROW(arm_from_spec(bad), Error) << bad;
    EXPECT_TRUE(armed().empty()) << "partial arm from '" << bad << "'";
    EXPECT_THROW(validate_spec(bad), Error) << bad;
  }
}

TEST_F(Failpoint, ValidateSpecDoesNotArm) {
  validate_spec("a=throw_bad_alloc:2,b=delay_ms(3)");
  EXPECT_TRUE(armed().empty());
}

TEST_F(Failpoint, RearmingReplacesTheEntry) {
  arm("fp.replace", Action::kThrowBadAlloc, 5);
  arm("fp.replace", Action::kFailIo, 1);
  const auto entries = armed();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].action, Action::kFailIo);
  EXPECT_EQ(entries[0].remaining, 1u);
}

TEST_F(Failpoint, RefreshFromEnvArmsAndRejects) {
  ASSERT_EQ(::setenv("CFPM_FAILPOINTS", "env.site=throw_resource:4", 1), 0);
  refresh_from_env();
  const auto entries = armed();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "env.site");
  EXPECT_EQ(entries[0].remaining, 4u);

  ASSERT_EQ(::setenv("CFPM_FAILPOINTS", "garbage spec", 1), 0);
  EXPECT_THROW(refresh_from_env(), Error);
  ASSERT_EQ(::unsetenv("CFPM_FAILPOINTS"), 0);
}

}  // namespace
}  // namespace cfpm::failpoint
