// RetryPolicy backoff arithmetic and the run_with_retry driver. The policy
// is deliberately jitter-free, so the schedule is asserted exactly.
#include "support/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "support/error.hpp"

namespace cfpm {
namespace {

using std::chrono::milliseconds;

TEST(RetryPolicy, BackoffDoublesUntilTheCap) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(1);
  p.multiplier = 2.0;
  p.max_backoff = milliseconds(50);
  EXPECT_EQ(p.backoff_after(1), milliseconds(1));
  EXPECT_EQ(p.backoff_after(2), milliseconds(2));
  EXPECT_EQ(p.backoff_after(3), milliseconds(4));
  EXPECT_EQ(p.backoff_after(4), milliseconds(8));
  EXPECT_EQ(p.backoff_after(5), milliseconds(16));
  EXPECT_EQ(p.backoff_after(6), milliseconds(32));
  EXPECT_EQ(p.backoff_after(7), milliseconds(50));  // 64 capped
  EXPECT_EQ(p.backoff_after(20), milliseconds(50));
}

TEST(RetryPolicy, NonIntegerMultiplierTruncatesToMilliseconds) {
  RetryPolicy p;
  p.initial_backoff = milliseconds(10);
  p.multiplier = 1.5;
  p.max_backoff = milliseconds(100);
  EXPECT_EQ(p.backoff_after(1), milliseconds(10));
  EXPECT_EQ(p.backoff_after(2), milliseconds(15));
  EXPECT_EQ(p.backoff_after(3), milliseconds(22));  // 22.5 truncated
}

/// Fast policy for driver tests: real sleeps, but trivially short ones.
RetryPolicy fast_policy(std::size_t attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.initial_backoff = milliseconds(0);
  p.max_backoff = milliseconds(0);
  return p;
}

constexpr auto kAlwaysRetry = [](const std::exception_ptr&) { return true; };

TEST(RunWithRetry, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::size_t retries = 0;
  const int result = run_with_retry(
      fast_policy(5),
      [&] {
        if (++calls < 3) throw ResourceError("transient");
        return 42;
      },
      kAlwaysRetry, &retries);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RunWithRetry, ExhaustedAttemptsRethrowTheLastError) {
  int calls = 0;
  std::size_t retries = 0;
  EXPECT_THROW(run_with_retry(
                   fast_policy(3),
                   [&]() -> int {
                     ++calls;
                     throw ResourceError("persistent");
                   },
                   kAlwaysRetry, &retries),
               ResourceError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);  // retries, not attempts
}

TEST(RunWithRetry, NonRetryableErrorPropagatesImmediately) {
  int calls = 0;
  auto transient_only = [](const std::exception_ptr& ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const ResourceError&) {
      return true;
    } catch (...) {
      return false;
    }
  };
  EXPECT_THROW(run_with_retry(
                   fast_policy(5),
                   [&]() -> int {
                     ++calls;
                     throw DeadlineExceeded("not transient");
                   },
                   transient_only),
               DeadlineExceeded);
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetry, ZeroMaxAttemptsStillRunsOnce) {
  int calls = 0;
  EXPECT_EQ(run_with_retry(
                fast_policy(0), [&] { return ++calls; }, kAlwaysRetry),
            1);
  EXPECT_EQ(calls, 1);

  calls = 0;
  EXPECT_THROW(run_with_retry(
                   fast_policy(0),
                   [&]() -> int {
                     ++calls;
                     throw std::runtime_error("boom");
                   },
                   kAlwaysRetry),
               std::runtime_error);
  EXPECT_EQ(calls, 1);  // one try, no retry even though retryable
}

TEST(RunWithRetry, VoidFunctionsWork) {
  int calls = 0;
  run_with_retry(
      fast_policy(3),
      [&] {
        if (++calls < 2) throw ResourceError("once");
      },
      kAlwaysRetry);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace cfpm
