#include "support/governor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "support/error.hpp"

namespace cfpm {
namespace {

TEST(Governor, UnarmedGovernorNeverThrows) {
  Governor g;
  for (int i = 0; i < 5000; ++i) g.on_allocation();
  g.checkpoint();
  EXPECT_EQ(g.allocation_ticks(), 5000u);
  // 5000 ticks cross the check interval at least 5000/1024 times, plus the
  // explicit checkpoint.
  EXPECT_GE(g.checks(), 5000 / Governor::kCheckInterval + 1);
}

TEST(Governor, ZeroDeadlineExpiresImmediately) {
  Governor g;
  EXPECT_FALSE(g.has_deadline());
  g.set_deadline(std::chrono::milliseconds(0));
  EXPECT_TRUE(g.has_deadline());
  EXPECT_TRUE(g.deadline_expired());
  EXPECT_LE(g.remaining_seconds(), 0.0);
  EXPECT_THROW(g.checkpoint(), DeadlineExceeded);
}

TEST(Governor, DeadlineCaughtWithinCheckInterval) {
  Governor g;
  g.set_deadline(std::chrono::milliseconds(0));
  // The per-allocation fast path must escalate to a full check at least
  // every kCheckInterval ticks.
  EXPECT_THROW(
      {
        for (std::uint64_t i = 0; i <= Governor::kCheckInterval; ++i) {
          g.on_allocation();
        }
      },
      DeadlineExceeded);
}

TEST(Governor, GenerousDeadlineDoesNotFire) {
  Governor g;
  g.set_deadline(std::chrono::minutes(10));
  for (int i = 0; i < 3000; ++i) g.on_allocation();
  g.checkpoint();
  EXPECT_GT(g.remaining_seconds(), 0.0);
}

TEST(Governor, ClearDeadlineDisarms) {
  Governor g;
  g.set_deadline(std::chrono::milliseconds(0));
  g.clear_deadline();
  EXPECT_FALSE(g.has_deadline());
  EXPECT_FALSE(g.deadline_expired());
  g.checkpoint();  // must not throw
  EXPECT_EQ(g.remaining_seconds(),
            std::numeric_limits<double>::infinity());
}

TEST(Governor, CancellationThrowsAtCheckpoint) {
  Governor g;
  g.checkpoint();
  g.request_cancellation();
  EXPECT_TRUE(g.cancellation_requested());
  EXPECT_THROW(g.checkpoint(), CancelledError);
}

TEST(Governor, CancellationWinsOverDeadline) {
  // Both conditions hold; cancellation is reported (it is the stronger
  // "stop now" signal and must not be degraded into a ladder retry).
  Governor g;
  g.set_deadline(std::chrono::milliseconds(0));
  g.request_cancellation();
  EXPECT_THROW(g.checkpoint(), CancelledError);
}

TEST(Governor, CancellationFromAnotherThread) {
  Governor g;
  std::thread canceller([&g] { g.request_cancellation(); });
  canceller.join();
  EXPECT_THROW(
      {
        for (std::uint64_t i = 0; i <= Governor::kCheckInterval; ++i) {
          g.on_allocation();
        }
      },
      CancelledError);
}

TEST(Governor, InjectedResourceFaultFiresAtNthAllocation) {
  Governor g;
  g.inject_fault(FaultKind::kResource, 10);
  for (int i = 0; i < 9; ++i) g.on_allocation();
  EXPECT_THROW(g.on_allocation(), ResourceError);
  EXPECT_EQ(g.allocation_ticks(), 10u);
  // One-shot: the fault disarms after firing.
  for (int i = 0; i < 100; ++i) g.on_allocation();
}

TEST(Governor, InjectedCancelFaultSetsTheFlag) {
  Governor g;
  g.inject_fault(FaultKind::kCancel, 1);
  EXPECT_THROW(g.on_allocation(), CancelledError);
  // The injected cancellation behaves like a real one afterwards.
  EXPECT_TRUE(g.cancellation_requested());
  EXPECT_THROW(g.checkpoint(), CancelledError);
}

TEST(Governor, InjectFaultDisarm) {
  Governor g;
  g.inject_fault(FaultKind::kResource, 5);
  g.inject_fault(FaultKind::kNone, 0);
  for (int i = 0; i < 100; ++i) g.on_allocation();
}

TEST(Governor, TracksPeakLiveNodes) {
  Governor g;
  g.note_live_nodes(10);
  g.note_live_nodes(500);
  g.note_live_nodes(42);
  EXPECT_EQ(g.peak_live_nodes(), 500u);
}

}  // namespace
}  // namespace cfpm
