#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cfpm {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, DoubleMeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, NextBelowRoughlyUniform) {
  Xoshiro256 rng(31);
  int counts[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace cfpm
