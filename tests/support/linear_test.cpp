#include "support/linear.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm {
namespace {

TEST(SolveSpd, Identity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
  std::vector<double> b{1.0, -2.0, 3.0};
  const auto x = solve_spd(a, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], b[i], 1e-7);
}

TEST(SolveSpd, KnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = solve_spd(a, {10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-6);
  EXPECT_NEAR(x[1], 1.5, 1e-6);
}

TEST(SolveSpd, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_spd(a, {1.0, 2.0}), ContractError);
  Matrix b(2, 2);
  EXPECT_THROW(solve_spd(b, {1.0}), ContractError);
}

TEST(SolveSpd, SingularSystemIsRegularized) {
  // Rank-1 matrix; ridge keeps it solvable and finite.
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  const auto x = solve_spd(a, {2.0, 2.0});
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(LeastSquares, RecoversExactLinearRelation) {
  // y = 3 + 2 x1 - x2 over a deterministic design.
  Xoshiro256 rng(7);
  const std::size_t m = 64;
  Matrix x(m, 3);
  std::vector<double> y(m);
  for (std::size_t r = 0; r < m; ++r) {
    const double x1 = rng.next_double();
    const double x2 = rng.next_double();
    x(r, 0) = 1.0;
    x(r, 1) = x1;
    x(r, 2) = x2;
    y[r] = 3.0 + 2.0 * x1 - x2;
  }
  const auto c = least_squares(x, y);
  EXPECT_NEAR(c[0], 3.0, 1e-6);
  EXPECT_NEAR(c[1], 2.0, 1e-6);
  EXPECT_NEAR(c[2], -1.0, 1e-6);
}

TEST(LeastSquares, MinimizesResidualVsPerturbation) {
  Xoshiro256 rng(11);
  const std::size_t m = 100;
  Matrix x(m, 2);
  std::vector<double> y(m);
  for (std::size_t r = 0; r < m; ++r) {
    x(r, 0) = 1.0;
    x(r, 1) = rng.next_double();
    y[r] = 1.0 + 5.0 * x(r, 1) + (rng.next_double() - 0.5);
  }
  const auto c = least_squares(x, y);
  auto residual = [&](double c0, double c1) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      const double e = y[r] - c0 - c1 * x(r, 1);
      s += e * e;
    }
    return s;
  };
  const double base = residual(c[0], c[1]);
  EXPECT_LE(base, residual(c[0] + 0.05, c[1]));
  EXPECT_LE(base, residual(c[0] - 0.05, c[1]));
  EXPECT_LE(base, residual(c[0], c[1] + 0.05));
  EXPECT_LE(base, residual(c[0], c[1] - 0.05));
}

}  // namespace
}  // namespace cfpm
