// atomic_write_file: the write-temp-rename protocol, and its failure
// atomicity — a failed write must preserve the previous file bit for bit
// and leave no temp file behind. Failures are injected via failpoints.
#include "support/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/error.hpp"
#include "support/failpoint.hpp"

namespace cfpm {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "<unreadable>";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool exists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

class AtomicWrite : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::disarm_all();
    // Unique per test: ctest -j runs each TEST_F as its own process, and
    // concurrent tests sharing one path delete it under each other.
    path_ = ::testing::TempDir() + "/atomic_write_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".txt";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    failpoint::disarm_all();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(AtomicWrite, WritesAndOverwrites) {
  atomic_write_file(path_, [](std::ostream& os) { os << "first\n"; });
  EXPECT_EQ(slurp(path_), "first\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));

  atomic_write_file(path_, [](std::ostream& os) { os << "second\n"; });
  EXPECT_EQ(slurp(path_), "second\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicWrite, WriterExceptionPreservesTargetAndRemovesTemp) {
  atomic_write_file(path_, [](std::ostream& os) { os << "precious\n"; });
  EXPECT_THROW(atomic_write_file(path_,
                                 [](std::ostream& os) {
                                   os << "partial";
                                   throw ResourceError("writer died");
                                 }),
               ResourceError);
  EXPECT_EQ(slurp(path_), "precious\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicWrite, UnwritablePathThrowsIoError) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir/sub/file.txt",
                                 [](std::ostream& os) { os << "x"; }),
               IoError);
}

TEST_F(AtomicWrite, InjectedWriteFailureIsAtomic) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
  atomic_write_file(path_, [](std::ostream& os) { os << "precious\n"; });
  failpoint::arm_from_spec("io.atomic_write.write=fail_io:1");
  EXPECT_THROW(
      atomic_write_file(path_, [](std::ostream& os) { os << "torn"; }),
      IoError);
  EXPECT_EQ(slurp(path_), "precious\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));

  // Budget spent: the next write goes through.
  atomic_write_file(path_, [](std::ostream& os) { os << "recovered\n"; });
  EXPECT_EQ(slurp(path_), "recovered\n");
}

TEST_F(AtomicWrite, InjectedRenameFailureIsAtomic) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
  atomic_write_file(path_, [](std::ostream& os) { os << "precious\n"; });
  failpoint::arm_from_spec("io.atomic_write.rename=fail_io:1");
  EXPECT_THROW(
      atomic_write_file(path_, [](std::ostream& os) { os << "torn"; }),
      IoError);
  EXPECT_EQ(slurp(path_), "precious\n");
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

TEST_F(AtomicWrite, FirstWriteFailureLeavesNoFileAtAll) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
  failpoint::arm_from_spec("io.atomic_write.write=fail_io:1");
  EXPECT_THROW(
      atomic_write_file(path_, [](std::ostream& os) { os << "never"; }),
      IoError);
  EXPECT_FALSE(exists(path_));
  EXPECT_FALSE(exists(path_ + ".tmp"));
}

}  // namespace
}  // namespace cfpm
