#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

namespace cfpm::metrics {
namespace {

TEST(Metrics, ConcurrentCounterSumsExactly) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  reset_for_testing();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      // Each thread constructs its own handle; interning maps them all to
      // the same slot.
      const Counter c("test.concurrent.add");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  // Exactness: sharding may relax visibility *during* the run, but after
  // every writer has exited nothing may be lost.
  EXPECT_EQ(snapshot().counter("test.concurrent.add"), kThreads * kPerThread);
}

TEST(Metrics, ConcurrentHistogramCountsExactly) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  reset_for_testing();
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      const Histogram h("test.concurrent.hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(t + 1);
    });
  }
  for (auto& w : workers) w.join();
  const Snapshot s = snapshot();
  const auto* h = s.histogram("test.concurrent.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kPerThread);
  EXPECT_EQ(h->sum, kPerThread * (1 + 2 + 3 + 4));
}

TEST(Metrics, SnapshotIsDeterministicAndSorted) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  const Counter b("test.order.b");
  const Counter a("test.order.a");
  a.add(1);
  b.add(2);
  const Snapshot first = snapshot();
  const Snapshot second = snapshot();
  ASSERT_EQ(first.counters.size(), second.counters.size());
  for (std::size_t i = 0; i < first.counters.size(); ++i) {
    EXPECT_EQ(first.counters[i].name, second.counters[i].name);
    EXPECT_EQ(first.counters[i].value, second.counters[i].value);
    if (i > 0) {
      EXPECT_LT(first.counters[i - 1].name, first.counters[i].name);
    }
  }
}

TEST(Metrics, HistogramBucketBoundaries) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  reset_for_testing();
  const Histogram h("test.buckets");
  h.observe(0);  // bucket 0: the zero bucket
  h.observe(1);  // bucket 1: [1, 1]
  h.observe(2);  // bucket 2: [2, 3]
  h.observe(3);
  h.observe(4);  // bucket 3: [4, 7]
  h.observe(7);
  h.observe(8);  // bucket 4: [8, 15]
  h.observe(std::numeric_limits<std::uint64_t>::max());  // last bucket
  const auto* v = snapshot().histogram("test.buckets");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->buckets[0], 1u);
  EXPECT_EQ(v->buckets[1], 1u);
  EXPECT_EQ(v->buckets[2], 2u);
  EXPECT_EQ(v->buckets[3], 2u);
  EXPECT_EQ(v->buckets[4], 1u);
  EXPECT_EQ(v->buckets[kHistogramBuckets - 1], 1u);
  EXPECT_EQ(v->count, 8u);
}

TEST(Metrics, GaugeKeepsLastWrite) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  reset_for_testing();
  const Gauge g("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  const Snapshot s = snapshot();
  bool found = false;
  for (const auto& gv : s.gauges) {
    if (gv.name == "test.gauge") {
      found = true;
      EXPECT_DOUBLE_EQ(gv.value, -2.25);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  if (!compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  const Counter c("test.reset");
  c.add(17);
  reset_for_testing();
  const Snapshot s = snapshot();
  // The name is still listed (registrations survive), its value is zero.
  bool found = false;
  for (const auto& cv : s.counters) {
    if (cv.name == "test.reset") {
      found = true;
      EXPECT_EQ(cv.value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, AbsentNamesReadAsEmpty) {
  EXPECT_EQ(snapshot().counter("test.never.registered"), 0u);
  EXPECT_EQ(snapshot().histogram("test.never.registered"), nullptr);
}

TEST(Metrics, WriteJsonEmitsAllSections) {
  const Counter c("test.json.counter");
  c.add(3);
  std::ostringstream os;
  snapshot().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (compiled_in()) {
    EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  }
}

TEST(Metrics, CompiledOutRegistryIsInert) {
  if (compiled_in()) GTEST_SKIP() << "registry compiled in";
  const Counter c("test.noop");
  c.add(42);
  const Gauge g("test.noop.gauge");
  g.set(1.0);
  const Histogram h("test.noop.hist");
  h.observe(9);
  const Snapshot s = snapshot();
  EXPECT_TRUE(s.counters.empty());
  EXPECT_TRUE(s.gauges.empty());
  EXPECT_TRUE(s.histograms.empty());
}

}  // namespace
}  // namespace cfpm::metrics
