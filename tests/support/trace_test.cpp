#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

#include "support/metrics.hpp"

namespace cfpm::trace {
namespace {

std::string dump() {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

TEST(Trace, DisabledByDefaultAndSpansAreFree) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  clear();
  ASSERT_FALSE(enabled());
  { CFPM_TRACE_SPAN("test.disabled"); }
  EXPECT_EQ(dump().find("test.disabled"), std::string::npos);
}

TEST(Trace, RecordsNestedSpansAsChromeEvents) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  clear();
  set_enabled(true);
  {
    CFPM_TRACE_SPAN("test.outer");
    { CFPM_TRACE_SPAN("test.inner"); }
  }
  set_enabled(false);
  const std::string json = dump();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  clear();
}

TEST(Trace, SpansFromExitedThreadsSurvive) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  clear();
  set_enabled(true);
  std::thread([] { CFPM_TRACE_SPAN("test.worker"); }).join();
  set_enabled(false);
  EXPECT_NE(dump().find("\"test.worker\""), std::string::npos);
  clear();
}

TEST(Trace, ClearDiscardsEverything) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  set_enabled(true);
  { CFPM_TRACE_SPAN("test.cleared"); }
  set_enabled(false);
  clear();
  EXPECT_EQ(dump().find("test.cleared"), std::string::npos);
}

TEST(Trace, EnablementSampledAtConstruction) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  clear();
  set_enabled(false);
  {
    CFPM_TRACE_SPAN("test.late");  // constructed while disabled
    set_enabled(true);
  }
  set_enabled(false);
  EXPECT_EQ(dump().find("test.late"), std::string::npos);
  clear();
}

TEST(Trace, CompiledOutFacilityIsInert) {
  if (metrics::compiled_in()) GTEST_SKIP() << "tracing compiled in";
  set_enabled(true);
  EXPECT_FALSE(enabled());
  { CFPM_TRACE_SPAN("test.noop"); }
  EXPECT_TRUE(dump().empty());
}

}  // namespace
}  // namespace cfpm::trace
