// ThreadPool basics plus the single-lane fast path: ThreadPool(1) must be a
// pure inline executor — no worker threads spawned (asserted through the
// threadpool.worker.spawn metric), indices run in order on the calling
// thread, and exceptions propagate as they do from the pooled path.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/failpoint.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace cfpm {
namespace {

std::uint64_t spawn_count() {
  return metrics::snapshot().counter("threadpool.worker.spawn");
}

std::uint64_t spawn_failed_count() {
  return metrics::snapshot().counter("threadpool.worker.spawn_failed");
}

TEST(ThreadPool, SingleLanePoolSpawnsNoThreads) {
  const std::uint64_t before = spawn_count();
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 0u);
  EXPECT_EQ(pool.num_threads(), 1u);

  // Inline execution: every index runs on the calling thread, in order
  // (the pooled path makes no ordering promise; the inline path does run
  // ascending and callers like reduce_trace's fast path rely on staying
  // on this thread).
  const std::thread::id self = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run_indexed(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);

  EXPECT_EQ(spawn_count(), before) << "ThreadPool(1) spawned a thread";
}

TEST(ThreadPool, MultiLanePoolSpawnsCountMinusOneWorkers) {
  const std::uint64_t before = spawn_count();
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.num_workers(), 2u);
    EXPECT_EQ(pool.num_threads(), 3u);
    std::atomic<std::size_t> sum{0};
    pool.run_indexed(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 99u * 100u / 2u);
  }
#ifndef CFPM_NO_METRICS
  EXPECT_EQ(spawn_count(), before + 2);
#else
  EXPECT_EQ(spawn_count(), before);  // inert metric stubs stay at zero
#endif
}

TEST(ThreadPool, InlinePathPropagatesExceptions) {
  ThreadPool pool(1);
  std::size_t ran = 0;
  EXPECT_THROW(pool.run_indexed(8,
                                [&](std::size_t i) {
                                  ++ran;
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The inline loop stops at the throwing index (nothing to drain).
  EXPECT_EQ(ran, 4u);
}

TEST(ThreadPool, PooledPathPropagatesOneException) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.run_indexed(64,
                                [&](std::size_t i) {
                                  ++ran;
                                  if (i % 7 == 0) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // Every index still executed: the batch drains before rethrowing.
  EXPECT_EQ(ran.load(), 64u);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.run_indexed(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// ---------------------------------------------------------------------------
// Spawn-failure degradation: a thread/memory limit at construction time is a
// capacity problem, not a correctness one. The pool keeps whatever workers
// it managed to create (down to pure inline execution) and run_indexed's
// contract is unchanged.
// ---------------------------------------------------------------------------

TEST(ThreadPool, SpawnFailureDegradesToFewerWorkers) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
  failpoint::disarm_all();
  const std::uint64_t failed_before = spawn_failed_count();
  failpoint::arm_from_spec("threadpool.spawn=throw_bad_alloc:1");
  ThreadPool pool(4);  // 3 spawn attempts; the first is shot down
  failpoint::disarm_all();
  EXPECT_EQ(pool.num_workers(), 2u);
  EXPECT_EQ(pool.num_threads(), 3u);
#ifndef CFPM_NO_METRICS
  EXPECT_EQ(spawn_failed_count(), failed_before + 1);
#endif

  // The degraded pool still runs every index exactly once.
  std::atomic<std::size_t> sum{0};
  pool.run_indexed(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(ThreadPool, AllSpawnsFailingDegradesToInlineExecution) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
  failpoint::disarm_all();
  failpoint::arm_from_spec("threadpool.spawn=throw_bad_alloc:0");
  ThreadPool pool(4);
  failpoint::disarm_all();
  EXPECT_EQ(pool.num_workers(), 0u);
  EXPECT_EQ(pool.num_threads(), 1u);

  // workers_.empty() routes through the inline path: calling thread only.
  const std::thread::id self = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.run_indexed(8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    ++ran;
  });
  EXPECT_EQ(ran, 8u);
}

}  // namespace
}  // namespace cfpm
