// Wire-protocol invariants: framing is self-describing and CRC-checked,
// every codec round-trips bit-exactly (doubles included), and malformed
// frames fail typed instead of being misparsed.
#include "serve/wire.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "netlist/generators.hpp"
#include "stats/markov.hpp"
#include "support/error.hpp"

namespace cfpm::serve::wire {
namespace {

TEST(Wire, FrameHeaderRoundTrip) {
  const std::string payload = "version 1\nhello\n";
  const std::string frame = encode_frame(MsgType::kPing, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());

  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  const MsgType type =
      decode_header(std::string_view(frame).substr(0, kHeaderSize), length,
                    crc);
  EXPECT_EQ(type, MsgType::kPing);
  EXPECT_EQ(length, payload.size());
  EXPECT_NO_THROW(check_payload(payload, crc));
}

TEST(Wire, CorruptPayloadFailsCrc) {
  const std::string payload = "models 3\n";
  const std::string frame = encode_frame(MsgType::kStatsReply, payload);
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  decode_header(std::string_view(frame).substr(0, kHeaderSize), length, crc);
  std::string torn = payload;
  torn[0] ^= 0x40;
  EXPECT_THROW(check_payload(torn, crc), ParseError);
}

TEST(Wire, BadMagicAndVersionRejected) {
  std::string frame = encode_frame(MsgType::kPing, "x");
  std::uint32_t length = 0;
  std::uint32_t crc = 0;

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_header(std::string_view(bad_magic).substr(0, kHeaderSize),
                             length, crc),
               ParseError);

  std::string bad_version = frame;
  bad_version[4] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(
      decode_header(std::string_view(bad_version).substr(0, kHeaderSize),
                    length, crc),
      Error);

  std::string bomb = frame;  // declared length over kMaxPayload
  bomb[8] = static_cast<char>(0xff);
  bomb[9] = static_cast<char>(0xff);
  bomb[10] = static_cast<char>(0xff);
  bomb[11] = static_cast<char>(0x7f);
  EXPECT_THROW(decode_header(std::string_view(bomb).substr(0, kHeaderSize),
                             length, crc),
               ParseError);
}

TEST(Wire, BuildRequestRoundTripsNetlistAndOptions) {
  service::BuildRequest request;
  request.netlist = netlist::gen::mcnc_like("cm85");
  request.options.kind = power::ModelKind::kAddUpperBound;
  request.options.max_nodes = 321;
  request.options.order = power::VariableOrder::kBlocked;
  request.options.reorder_passes = 7;
  request.options.approximate_during_construction = false;
  request.options.degrade = false;
  request.options.build_threads = 4;
  request.options.build_retries = 9;
  request.options.deadline_ms = 4321;
  request.options.characterization_vectors = 55;
  request.options.characterization_seed = 0xfeedface;

  const service::BuildRequest back =
      decode_build_request(encode_build_request(request));
  EXPECT_EQ(back.api_version, request.api_version);
  EXPECT_EQ(back.options.kind, request.options.kind);
  EXPECT_EQ(back.options.max_nodes, request.options.max_nodes);
  EXPECT_EQ(back.options.order, request.options.order);
  EXPECT_EQ(back.options.reorder_passes, request.options.reorder_passes);
  EXPECT_EQ(back.options.approximate_during_construction,
            request.options.approximate_during_construction);
  EXPECT_EQ(back.options.degrade, request.options.degrade);
  EXPECT_EQ(back.options.build_threads, request.options.build_threads);
  EXPECT_EQ(back.options.build_retries, request.options.build_retries);
  EXPECT_EQ(back.options.deadline_ms, request.options.deadline_ms);
  EXPECT_EQ(back.options.characterization_vectors,
            request.options.characterization_vectors);
  EXPECT_EQ(back.options.characterization_seed,
            request.options.characterization_seed);
  // The netlist crosses as canonical .bench text, so the content id — the
  // registry key — is preserved exactly.
  EXPECT_EQ(service::model_id(back.netlist, back.options),
            service::model_id(request.netlist, request.options));
}

TEST(Wire, EvalQueryAndReplyRoundTripDoublesExactly) {
  EvalQuery query;
  query.id = {0xaabbccdd00112233ull, 0x445566778899aabbull};
  query.request.statistics = {0.1, 0.07};  // not exactly representable
  query.request.vectors = 777;
  query.request.seed = 0x123456789abcdefull;
  const EvalQuery q = decode_eval_query(encode_eval_query(query));
  EXPECT_EQ(q.id, query.id);
  EXPECT_EQ(q.request.statistics.sp, query.request.statistics.sp);
  EXPECT_EQ(q.request.statistics.st, query.request.statistics.st);
  EXPECT_EQ(q.request.vectors, query.request.vectors);
  EXPECT_EQ(q.request.seed, query.request.seed);

  service::EvalReply reply;
  reply.total_ff = 12345.678901234567;
  reply.average_ff = 0.30000000000000004;  // classic shortest-round-trip case
  reply.peak_ff = 1e-17;
  reply.transitions = 776;
  reply.cache_hit = true;
  const service::EvalReply r = decode_eval_reply(encode_eval_reply(reply));
  EXPECT_EQ(r.total_ff, reply.total_ff);
  EXPECT_EQ(r.average_ff, reply.average_ff);
  EXPECT_EQ(r.peak_ff, reply.peak_ff);
  EXPECT_EQ(r.transitions, reply.transitions);
  EXPECT_EQ(r.cache_hit, reply.cache_hit);
}

TEST(Wire, TraceQueryRoundTripsEveryBit) {
  stats::MarkovSequenceGenerator gen({0.4, 0.3}, 0xbeef);
  TraceQuery query;
  query.id = {1, 2};
  query.trace = gen.generate(5, 131);  // non-multiple of 64: partial word
  const TraceQuery back = decode_trace_query(encode_trace_query(query));
  EXPECT_EQ(back.id, query.id);
  ASSERT_EQ(back.trace.num_inputs(), query.trace.num_inputs());
  ASSERT_EQ(back.trace.length(), query.trace.length());
  for (std::size_t i = 0; i < query.trace.num_inputs(); ++i) {
    for (std::size_t t = 0; t < query.trace.length(); ++t) {
      ASSERT_EQ(back.trace.bit(i, t), query.trace.bit(i, t))
          << "input " << i << " time " << t;
    }
  }
}

TEST(Wire, StatsAndErrorRoundTrip) {
  StatsReply stats;
  stats.models = 2;  // must equal model_lines.size(): the decoder reads
                     // exactly `models` entry lines
  stats.hits = 100;
  stats.misses = 7;
  stats.builds = 5;
  stats.model_lines = {"aa 12 c17", "bb 34 cm85"};
  const StatsReply s = decode_stats_reply(encode_stats_reply(stats));
  EXPECT_EQ(s.models, stats.models);
  EXPECT_EQ(s.hits, stats.hits);
  EXPECT_EQ(s.misses, stats.misses);
  EXPECT_EQ(s.builds, stats.builds);
  EXPECT_EQ(s.model_lines, stats.model_lines);

  service::ErrorPayload error;
  error.code = service::StatusCode::kError;
  error.kind = service::ErrorKind::kDeadline;
  error.message = "deadline of 10ms exceeded\nwith a second line";
  const service::ErrorPayload e = decode_error(encode_error(error));
  EXPECT_EQ(e.code, error.code);
  EXPECT_EQ(e.kind, error.kind);
  EXPECT_EQ(e.message, error.message);
}

TEST(Wire, ChipRequestRoundTripsEveryField) {
  service::ChipRequest request;
  request.spec = "4x6x16";
  request.max_nodes = 123;
  request.degrade = false;
  request.build_threads = 3;
  request.deadline_ms = 777;
  request.statistics = {0.1, 0.07};  // not exactly representable
  request.vectors = 4242;
  request.seed = 0xdeadbeefcafeull;

  const service::ChipRequest back =
      decode_chip_request(encode_chip_request(request));
  EXPECT_EQ(back.api_version, request.api_version);
  EXPECT_EQ(back.spec, request.spec);
  EXPECT_EQ(back.max_nodes, request.max_nodes);
  EXPECT_EQ(back.degrade, request.degrade);
  EXPECT_EQ(back.build_threads, request.build_threads);
  EXPECT_EQ(back.deadline_ms, request.deadline_ms);
  EXPECT_EQ(back.statistics.sp, request.statistics.sp);
  EXPECT_EQ(back.statistics.st, request.statistics.st);
  EXPECT_EQ(back.vectors, request.vectors);
  EXPECT_EQ(back.seed, request.seed);

  // The optional deadline also round-trips in its empty state.
  request.deadline_ms.reset();
  EXPECT_EQ(decode_chip_request(encode_chip_request(request)).deadline_ms,
            std::nullopt);
}

TEST(Wire, ChipReplyRoundTripsBreakdownExactly) {
  service::ChipReply reply;
  reply.status = service::StatusCode::kDegraded;
  reply.spec = "2x3x12";
  reply.macros = 6;
  reply.components = 3;
  reply.bus_bits = 24;
  reply.transitions = 1999;
  reply.total_ff = 12345.678901234567;
  reply.average_ff = 0.30000000000000004;
  reply.peak_ff = 368.0;
  reply.bound_total_ff = 54321.000000000001;
  reply.bound_peak_ff = 1e-17;
  reply.worst_case_sum_ff = 588.25;
  reply.cache_hits = 4;
  reply.library = {{"add4", 2, 9, 1939, 1939, power::BuildOutcome::kClean,
                    power::BuildOutcome::kDegraded, true},
                   {"cmp4", 4, 8, 2390, 2390, power::BuildOutcome::kFallback,
                    power::BuildOutcome::kClean, false}};
  reply.blocks = {{"b0", 1.5}, {"b1", 2.25}};
  reply.instances = {{"b0.m0.add4", 0.5}, {"b0.m1.cmp4", 1.0}};

  const service::ChipReply r = decode_chip_reply(encode_chip_reply(reply));
  EXPECT_EQ(r.status, reply.status);
  EXPECT_EQ(r.spec, reply.spec);
  EXPECT_EQ(r.macros, reply.macros);
  EXPECT_EQ(r.components, reply.components);
  EXPECT_EQ(r.bus_bits, reply.bus_bits);
  EXPECT_EQ(r.transitions, reply.transitions);
  EXPECT_EQ(r.total_ff, reply.total_ff);
  EXPECT_EQ(r.average_ff, reply.average_ff);
  EXPECT_EQ(r.peak_ff, reply.peak_ff);
  EXPECT_EQ(r.bound_total_ff, reply.bound_total_ff);
  EXPECT_EQ(r.bound_peak_ff, reply.bound_peak_ff);
  EXPECT_EQ(r.worst_case_sum_ff, reply.worst_case_sum_ff);
  EXPECT_EQ(r.cache_hits, reply.cache_hits);
  ASSERT_EQ(r.library.size(), reply.library.size());
  for (std::size_t i = 0; i < reply.library.size(); ++i) {
    EXPECT_EQ(r.library[i].name, reply.library[i].name);
    EXPECT_EQ(r.library[i].instances, reply.library[i].instances);
    EXPECT_EQ(r.library[i].inputs, reply.library[i].inputs);
    EXPECT_EQ(r.library[i].avg_nodes, reply.library[i].avg_nodes);
    EXPECT_EQ(r.library[i].bound_nodes, reply.library[i].bound_nodes);
    EXPECT_EQ(r.library[i].avg_outcome, reply.library[i].avg_outcome);
    EXPECT_EQ(r.library[i].bound_outcome, reply.library[i].bound_outcome);
    EXPECT_EQ(r.library[i].cache_hit, reply.library[i].cache_hit);
  }
  ASSERT_EQ(r.blocks.size(), reply.blocks.size());
  for (std::size_t i = 0; i < reply.blocks.size(); ++i) {
    EXPECT_EQ(r.blocks[i].name, reply.blocks[i].name);
    EXPECT_EQ(r.blocks[i].total_ff, reply.blocks[i].total_ff);
  }
  ASSERT_EQ(r.instances.size(), reply.instances.size());
  for (std::size_t i = 0; i < reply.instances.size(); ++i) {
    EXPECT_EQ(r.instances[i].name, reply.instances[i].name);
    EXPECT_EQ(r.instances[i].total_ff, reply.instances[i].total_ff);
  }
}

TEST(Wire, MalformedPayloadsThrowParseError) {
  EXPECT_THROW(decode_build_request("nonsense"), ParseError);
  EXPECT_THROW(decode_eval_query(""), ParseError);
  EXPECT_THROW(decode_eval_reply("status x\n"), ParseError);
  EXPECT_THROW(decode_trace_query("version 1\nid zz\n"), ParseError);
  EXPECT_THROW(decode_error("code 1\n"), ParseError);
  EXPECT_THROW(decode_chip_request("nonsense"), ParseError);
  EXPECT_THROW(decode_chip_request("version 1\nspec \n"), ParseError);
  EXPECT_THROW(decode_chip_reply(""), ParseError);
  // Out-of-range enum values are rejected, not cast blindly.
  service::ChipReply reply;
  reply.library = {{"add4", 1, 9, 10, 10, power::BuildOutcome::kClean,
                    power::BuildOutcome::kClean, false}};
  std::string encoded = encode_chip_reply(reply);
  const std::size_t pos = encoded.find("macro add4");
  ASSERT_NE(pos, std::string::npos);
  encoded.replace(encoded.find(" 0 0 ", pos), 5, " 9 0 ");
  EXPECT_THROW(decode_chip_reply(encoded), ParseError);
}

TEST(Wire, FdTransportRoundTripAndCleanEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(100000, 'x');  // larger than one pipe buffer
  std::thread writer([&] {
    write_frame(fds[1], MsgType::kPong, payload);
    ::close(fds[1]);
  });
  Frame frame;
  ASSERT_TRUE(read_frame(fds[0], frame));
  EXPECT_EQ(frame.type, MsgType::kPong);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(read_frame(fds[0], frame)) << "EOF at boundary is clean";
  writer.join();
  ::close(fds[0]);
}

TEST(Wire, MidFrameEofIsAnIoError) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string frame = encode_frame(MsgType::kPing, "truncated body");
  // Write the header plus half the payload, then hang up.
  const std::string partial = frame.substr(0, kHeaderSize + 4);
  ASSERT_EQ(::write(fds[1], partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  ::close(fds[1]);
  Frame out;
  EXPECT_THROW(read_frame(fds[0], out), IoError);
  ::close(fds[0]);
}

}  // namespace
}  // namespace cfpm::serve::wire
