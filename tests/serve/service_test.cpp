// The service facade: typed error payload round-trips, the exit-code
// taxonomy, content addressing, and request validation — the contracts the
// CLI, the daemon, and the fuzzer all build on.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <exception>
#include <new>
#include <stdexcept>

#include "netlist/generators.hpp"
#include "support/error.hpp"

namespace cfpm::service {
namespace {

ErrorPayload classify_thrown(const std::exception_ptr& e) {
  return classify(e);
}

template <typename E>
ErrorPayload classify_of(const E& error) {
  return classify_thrown(std::make_exception_ptr(error));
}

TEST(ServiceErrors, ClassifyMapsTypesToKindsAndCodes) {
  EXPECT_EQ(classify_of(Error("x")).kind, ErrorKind::kGeneric);
  EXPECT_EQ(classify_of(Error("x")).code, StatusCode::kError);
  EXPECT_EQ(classify_of(UsageError("x")).kind, ErrorKind::kUsage);
  EXPECT_EQ(classify_of(UsageError("x")).code, StatusCode::kUsage);
  EXPECT_EQ(classify_of(ParseError("x")).kind, ErrorKind::kParse);
  EXPECT_EQ(classify_of(IoError("x")).kind, ErrorKind::kIo);
  EXPECT_EQ(classify_of(ResourceError("x")).kind, ErrorKind::kResource);
  EXPECT_EQ(classify_of(DeadlineExceeded("x")).kind, ErrorKind::kDeadline);
  EXPECT_EQ(classify_of(CancelledError("x")).kind, ErrorKind::kCancelled);
  EXPECT_EQ(classify_of(std::bad_alloc()).kind, ErrorKind::kOom);
  EXPECT_EQ(classify_of(std::bad_alloc()).code, StatusCode::kOom);
  EXPECT_EQ(classify_of(std::runtime_error("x")).kind, ErrorKind::kInternal);
  EXPECT_EQ(classify_of(std::runtime_error("x")).code, StatusCode::kInternal);
}

TEST(ServiceErrors, RethrowResurrectsTheTypedException) {
  // The round trip that lets a remote DeadlineExceeded land typed locally.
  EXPECT_THROW(rethrow(classify_of(DeadlineExceeded("too slow"))),
               DeadlineExceeded);
  EXPECT_THROW(rethrow(classify_of(CancelledError("stop"))), CancelledError);
  EXPECT_THROW(rethrow(classify_of(ParseError("bad"))), ParseError);
  EXPECT_THROW(rethrow(classify_of(IoError("io"))), IoError);
  EXPECT_THROW(rethrow(classify_of(ResourceError("mem"))), ResourceError);
  EXPECT_THROW(rethrow(classify_of(UsageError("use"))), UsageError);
  EXPECT_THROW(rethrow(classify_of(std::bad_alloc())), std::bad_alloc);
  try {
    rethrow(classify_of(DeadlineExceeded("too slow")));
    FAIL() << "rethrow returned";
  } catch (const DeadlineExceeded& e) {
    EXPECT_STREQ(e.what(), "too slow");  // message survives
  }
}

TEST(ServiceErrors, ExitCodesAreTheTaxonomy) {
  EXPECT_EQ(exit_code(StatusCode::kOk), 0);
  EXPECT_EQ(exit_code(StatusCode::kError), 1);
  EXPECT_EQ(exit_code(StatusCode::kUsage), 2);
  EXPECT_EQ(exit_code(StatusCode::kDegraded), 3);
  EXPECT_EQ(exit_code(StatusCode::kOom), 4);
  EXPECT_EQ(exit_code(StatusCode::kInternal), 5);
}

TEST(ServiceModelId, HexRoundTrip) {
  const ModelId id{0x0123456789abcdefull, 0xfedcba9876543210ull};
  const std::string hex = id.to_hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  const auto back = ModelId::from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, id);
}

TEST(ServiceModelId, FromHexRejectsJunk) {
  EXPECT_FALSE(ModelId::from_hex("").has_value());
  EXPECT_FALSE(ModelId::from_hex("0123").has_value());
  EXPECT_FALSE(
      ModelId::from_hex("0123456789abcdeffedcba987654321g").has_value());
  EXPECT_FALSE(
      ModelId::from_hex("0123456789abcdeffedcba98765432100").has_value());
}

TEST(ServiceModelId, ContentAddressingSeparatesShapingKnobs) {
  const netlist::Netlist c17 = netlist::gen::c17();
  const netlist::Netlist other = netlist::gen::parity_tree(3, 0);
  BuildOptions base;

  const ModelId id = model_id(c17, base);
  EXPECT_EQ(id, model_id(c17, base)) << "id must be deterministic";
  EXPECT_NE(id, model_id(other, base)) << "different netlist, different id";

  // Model-shaping knobs change the id...
  BuildOptions shaped = base;
  shaped.max_nodes = base.max_nodes + 1;
  EXPECT_NE(id, model_id(c17, shaped));
  shaped = base;
  shaped.kind = power::ModelKind::kAddUpperBound;
  EXPECT_NE(id, model_id(c17, shaped));
  shaped = base;
  shaped.order = power::VariableOrder::kBlocked;
  EXPECT_NE(id, model_id(c17, shaped));

  // ...resilience knobs do not (same clean model either way).
  BuildOptions resilience = base;
  resilience.degrade = !base.degrade;
  resilience.build_retries = base.build_retries + 3;
  resilience.deadline_ms = 12345;
  EXPECT_EQ(id, model_id(c17, resilience));
}

TEST(ServiceBuild, RejectsWrongApiVersion) {
  BuildRequest request;
  request.api_version = kApiVersion + 1;
  request.netlist = netlist::gen::c17();
  try {
    (void)build(request);
    FAIL() << "build accepted a wrong api_version";
  } catch (const UsageError&) {
  }
}

TEST(ServiceBuild, BuildsAndEvaluates) {
  BuildRequest request;
  request.netlist = netlist::gen::c17();
  request.options.max_nodes = 0;
  const BuildReply built = build(request);
  EXPECT_EQ(built.status, StatusCode::kOk);
  ASSERT_NE(built.model, nullptr);
  EXPECT_GT(built.model_nodes, 0u);
  EXPECT_NE(built.id.key, 0u);

  EvalRequest eval;
  eval.vectors = 500;
  const EvalReply reply = evaluate(*built.model, eval);
  EXPECT_EQ(reply.status, StatusCode::kOk);
  EXPECT_EQ(reply.transitions, eval.vectors - 1);
  EXPECT_GT(reply.total_ff, 0.0);
  EXPECT_GE(reply.peak_ff, reply.average_ff);

  // Determinism: the facade's workload recipe is a pure function of the
  // request (this is what makes daemon replies comparable to CLI output).
  const EvalReply again = evaluate(*built.model, eval);
  EXPECT_EQ(reply.total_ff, again.total_ff);
  EXPECT_EQ(reply.peak_ff, again.peak_ff);
}

TEST(ServiceEvaluate, RejectsInfeasibleStatistics) {
  BuildRequest request;
  request.netlist = netlist::gen::c17();
  const BuildReply built = build(request);
  EvalRequest eval;
  eval.statistics = {0.9, 0.9};  // st > 2*min(sp, 1-sp)
  eval.vectors = 100;
  try {
    (void)evaluate(*built.model, eval);
    FAIL() << "evaluate accepted infeasible statistics";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos);
  }
}

}  // namespace
}  // namespace cfpm::service
