// Minimal-perfect-hash invariants: the registry index must map every
// admitted key to a unique slot in [0, n) (perfect and minimal), rebuild
// deterministically, and reject duplicate keys loudly.
#include "serve/mph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::serve {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    const std::uint64_t k = rng.next();
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) keys.push_back(k);
  }
  return keys;
}

void expect_perfect_and_minimal(const Mph& mph,
                                std::span<const std::uint64_t> keys) {
  ASSERT_EQ(mph.size(), keys.size());
  std::vector<bool> seen(keys.size(), false);
  for (const std::uint64_t k : keys) {
    const std::size_t slot = mph.slot_of(k);
    ASSERT_LT(slot, keys.size());
    EXPECT_FALSE(seen[slot]) << "two keys share slot " << slot;
    seen[slot] = true;
  }
}

TEST(Mph, EmptyHashHasNoSlots) {
  const Mph mph;
  EXPECT_EQ(mph.size(), 0u);
  EXPECT_EQ(mph.slot_of(42), 0u);  // documented arbitrary value, no crash
}

TEST(Mph, SingleKey) {
  const std::uint64_t key = 0xdeadbeefcafef00dull;
  const Mph mph = Mph::build(std::span(&key, 1));
  EXPECT_EQ(mph.size(), 1u);
  EXPECT_EQ(mph.slot_of(key), 0u);
}

TEST(Mph, PerfectAndMinimalAcrossSizes) {
  for (const std::size_t n : {2u, 3u, 7u, 17u, 64u, 257u, 1000u}) {
    const auto keys = random_keys(n, 0x1234 + n);
    expect_perfect_and_minimal(Mph::build(keys), keys);
  }
}

TEST(Mph, AdversarialKeyShapes) {
  // Sequential and high-bit-only keys stress the bucket hash more than
  // uniform random ones do.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 200; ++i) keys.push_back(i);
  for (std::uint64_t i = 0; i < 100; ++i) keys.push_back((i + 1) << 56);
  expect_perfect_and_minimal(Mph::build(keys), keys);
}

TEST(Mph, DeterministicRebuild) {
  const auto keys = random_keys(300, 0xabcdef);
  const Mph a = Mph::build(keys);
  const Mph b = Mph::build(keys);
  for (const std::uint64_t k : keys) {
    EXPECT_EQ(a.slot_of(k), b.slot_of(k));
  }
}

TEST(Mph, DuplicateKeysRejected) {
  const std::vector<std::uint64_t> keys = {1, 2, 3, 2};
  EXPECT_THROW(Mph::build(keys), ContractError);
}

TEST(Mph, NonMemberKeysStayInRange) {
  const auto keys = random_keys(64, 0x777);
  const Mph mph = Mph::build(keys);
  SplitMix64 rng(0x888);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(mph.slot_of(rng.next()), mph.size());
  }
}

}  // namespace
}  // namespace cfpm::serve
