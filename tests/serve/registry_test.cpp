// Registry contracts: lock-free lookups stay correct while admissions
// republish the index, collisions are rejected instead of served, and the
// persisted snapshot warm-starts bit-identically — or not at all when
// corrupt. The concurrency tests run under TSan in CI (suite name matches
// the tsan job's -R filter).
#include "serve/registry.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netlist/generators.hpp"
#include "power/baselines.hpp"
#include "serve/service.hpp"
#include "support/error.hpp"

namespace cfpm::serve {
namespace {

std::shared_ptr<const power::PowerModel> constant_model(double value) {
  return std::make_shared<power::ConstantModel>(value, 4);
}

Registry::Entry entry_of(std::uint64_t key, double value) {
  Registry::Entry e;
  e.id = {key, key ^ 0x5a5a5a5a5a5a5a5aull};
  e.model = constant_model(value);
  e.circuit = "m" + std::to_string(key);
  return e;
}

std::string fresh_dir(const char* tag) {
  static std::atomic<int> counter{0};
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("cfpm-registry-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
        std::to_string(counter.fetch_add(1))))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Registry, AdmitThenLookup) {
  Registry registry;
  EXPECT_EQ(registry.lookup({1, 2}), nullptr);
  EXPECT_TRUE(registry.admit(entry_of(1, 10.0)));
  EXPECT_TRUE(registry.admit(entry_of(2, 20.0)));
  ASSERT_EQ(registry.size(), 2u);
  const auto m1 = registry.lookup(entry_of(1, 0).id);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->estimate_ff({}, {}), 10.0);
  EXPECT_EQ(registry.lookup({3, 4}), nullptr);
}

TEST(Registry, ReadmissionIsIdempotent) {
  Registry registry;
  EXPECT_TRUE(registry.admit(entry_of(7, 70.0)));
  EXPECT_FALSE(registry.admit(entry_of(7, 999.0)));
  EXPECT_EQ(registry.size(), 1u);
  // First admission wins — the id is the content, so a re-admission of the
  // same id must carry the same bits anyway.
  EXPECT_EQ(registry.lookup(entry_of(7, 0).id)->estimate_ff({}, {}), 70.0);
}

TEST(Registry, PrimaryKeyCollisionRejected) {
  Registry registry;
  EXPECT_TRUE(registry.admit(entry_of(7, 70.0)));
  Registry::Entry collider = entry_of(7, 71.0);
  collider.id.check ^= 1;  // same 64-bit key, different content
  EXPECT_THROW(registry.admit(std::move(collider)), Error);
  service::ModelId wrong = entry_of(7, 0).id;
  wrong.check ^= 1;
  EXPECT_THROW((void)registry.lookup(wrong), Error);
}

TEST(Registry, NullModelRejected) {
  Registry registry;
  Registry::Entry e = entry_of(1, 1.0);
  e.model = nullptr;
  EXPECT_THROW(registry.admit(std::move(e)), ContractError);
}

// The TSan-critical test: readers hammer lookups (hits and misses) while a
// writer admits entries one by one, republishing the index each time. Every
// read must see either a fully published entry or a miss — never a torn
// index — and an entry observed once must stay visible.
TEST(RegistryConcurrency, LookupsRaceAdmissions) {
  Registry registry;
  constexpr std::uint64_t kEntries = 64;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> published{0};

  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t seen_high = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t limit = published.load(std::memory_order_acquire);
        for (std::uint64_t k = 1; k <= kEntries; ++k) {
          const auto m = registry.lookup(entry_of(k, 0).id);
          if (k <= limit && m == nullptr) {
            // Published entries must never disappear.
            failures.fetch_add(1);
          }
          if (m != nullptr) {
            if (m->estimate_ff({}, {}) != 10.0 * static_cast<double>(k)) {
              failures.fetch_add(1);  // wrong model served
            }
            seen_high = std::max(seen_high, k);
          }
        }
      }
      (void)r;
      (void)seen_high;
    });
  }

  for (std::uint64_t k = 1; k <= kEntries; ++k) {
    ASSERT_TRUE(registry.admit(entry_of(k, 10.0 * static_cast<double>(k))));
    published.store(k, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.size(), kEntries);
}

TEST(RegistryConcurrency, ConcurrentAdmittersSerialize) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 16;
  std::vector<std::thread> admitters;
  for (int t = 0; t < kThreads; ++t) {
    admitters.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000 + i;
        registry.admit(entry_of(key, static_cast<double>(key)));
      }
    });
  }
  for (std::thread& t : admitters) t.join();
  EXPECT_EQ(registry.size(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000 + i;
      ASSERT_NE(registry.lookup(entry_of(key, 0).id), nullptr);
    }
  }
}

TEST(RegistryPersistence, WarmRestartRoundTrip) {
  const std::string dir = fresh_dir("warm");
  service::BuildRequest request;
  request.netlist = netlist::gen::c17();
  request.options.max_nodes = 0;
  const service::BuildReply built = service::build(request);

  Registry registry;
  Registry::Entry e;
  e.id = built.id;
  e.model = built.model;
  e.circuit = "c17";
  e.nodes = built.model_nodes;
  ASSERT_TRUE(registry.admit(std::move(e)));
  registry.save(dir);

  Registry reloaded;
  EXPECT_EQ(reloaded.load(dir), 1u);
  const auto model = reloaded.lookup(built.id);
  ASSERT_NE(model, nullptr);

  service::EvalRequest eval;
  eval.vectors = 300;
  const service::EvalReply a = service::evaluate(*built.model, eval);
  const service::EvalReply b = service::evaluate(*model, eval);
  EXPECT_EQ(a.total_ff, b.total_ff);
  EXPECT_EQ(a.average_ff, b.average_ff);
  EXPECT_EQ(a.peak_ff, b.peak_ff);
  std::filesystem::remove_all(dir);
}

TEST(RegistryPersistence, MissingDirectoryIsAColdStart) {
  Registry registry;
  EXPECT_EQ(registry.load(fresh_dir("missing")), 0u);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryPersistence, CorruptModelFileIsSkippedNotServed) {
  const std::string dir = fresh_dir("corrupt-model");
  service::BuildRequest request;
  request.netlist = netlist::gen::c17();
  const service::BuildReply built = service::build(request);
  Registry registry;
  Registry::Entry e;
  e.id = built.id;
  e.model = built.model;
  e.circuit = "c17";
  e.nodes = built.model_nodes;
  ASSERT_TRUE(registry.admit(std::move(e)));
  registry.save(dir);

  // Flip bytes in the middle of the model file; its CRC trailer must catch
  // it and load() must skip the entry rather than serve damaged bits.
  const std::string model_path = dir + "/" + built.id.to_hex() + ".cfpm";
  ASSERT_TRUE(std::filesystem::exists(model_path));
  {
    std::fstream f(model_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(model_path) / 2));
    f.write("\xde\xad\xbe\xef", 4);
  }
  Registry reloaded;
  EXPECT_EQ(reloaded.load(dir), 0u);
  EXPECT_EQ(reloaded.lookup(built.id), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(RegistryPersistence, CorruptManifestRefusesToLoad) {
  const std::string dir = fresh_dir("corrupt-manifest");
  service::BuildRequest request;
  request.netlist = netlist::gen::c17();
  const service::BuildReply built = service::build(request);
  Registry registry;
  Registry::Entry e;
  e.id = built.id;
  e.model = built.model;
  e.circuit = "c17";
  e.nodes = built.model_nodes;
  ASSERT_TRUE(registry.admit(std::move(e)));
  registry.save(dir);

  // Corrupting the body must trip the manifest CRC.
  const std::string manifest_path = dir + "/MANIFEST";
  {
    std::fstream f(manifest_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::string("cfpm-registry").size()));
    f.write("X", 1);
  }
  Registry reloaded;
  EXPECT_THROW((void)reloaded.load(dir), ParseError);

  // Bytes appended after the crc trailer escape the CRC; the loader must
  // treat their mere presence as corruption rather than ignore them.
  registry.save(dir);  // restore a good manifest
  {
    std::ofstream f(manifest_path, std::ios::app);
    f << "model deadbeef tampered-after-trailer\n";
  }
  Registry reloaded_again;
  EXPECT_THROW((void)reloaded_again.load(dir), ParseError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cfpm::serve
