// End-to-end daemon contracts over a real Unix socket: wire replies are
// bit-identical to the in-process facade, repeated builds are cache hits
// that perform no construction, unknown ids fail typed, shutdown exit codes
// follow the taxonomy, and a restarted daemon serves from the persisted
// registry. Suite names start with "Serve" so the TSan CI job picks these
// up (connection threads + build pool + lock-free registry in one process).
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "netlist/generators.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "stats/markov.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"

namespace cfpm::serve {
namespace {

/// A daemon on unique /tmp paths whose run() executes on a background
/// thread; the destructor drains it and removes socket + registry files.
struct ScopedServer {
  std::string socket_path;
  std::string persist_dir;
  std::unique_ptr<Server> server;
  std::thread thread;
  int exit_code = -1;

  explicit ScopedServer(const char* tag, std::string persist = {}) {
    static std::atomic<int> counter{0};
    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("cfpm-server-test-" + std::to_string(::getpid()) + "-" + tag + "-" +
          std::to_string(counter.fetch_add(1))))
            .string();
    socket_path = base + ".sock";
    persist_dir = std::move(persist);
    ServerOptions options;
    options.socket_path = socket_path;
    options.persist_dir = persist_dir;
    options.eval_threads = 1;
    options.build_pool_threads = 1;
    server = std::make_unique<Server>(std::move(options));
    thread = std::thread([this] { exit_code = server->run(); });
  }

  void join() {
    if (thread.joinable()) thread.join();
  }

  ~ScopedServer() {
    server->request_shutdown(false);
    join();
    std::error_code ec;
    std::filesystem::remove(socket_path, ec);
  }
};

/// The server thread binds asynchronously; retry the connect briefly.
Client connect_with_retry(const std::string& socket_path) {
  for (int attempt = 0;; ++attempt) {
    try {
      return Client(socket_path);
    } catch (const IoError&) {
      if (attempt >= 400) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

service::BuildRequest c17_request() {
  service::BuildRequest request;
  request.netlist = netlist::gen::c17();
  request.options.max_nodes = 0;
  request.options.degrade = false;
  request.options.build_threads = 1;
  return request;
}

TEST(ServeEndToEnd, BuildEvalTraceMatchInProcessFacadeBitwise) {
  const service::BuildRequest request = c17_request();
  service::EvalRequest eval;
  eval.statistics = {0.3, 0.2};
  eval.vectors = 400;
  eval.seed = 0xabc;
  stats::MarkovSequenceGenerator gen(eval.statistics, 0x1234);
  const sim::InputSequence trace =
      gen.generate(request.netlist.num_inputs(), 177);

  const service::BuildReply local_build = service::build(request);
  const service::EvalReply local = service::evaluate(*local_build.model, eval);
  const service::EvalReply local_trace =
      service::evaluate_trace(*local_build.model, trace);

  ScopedServer daemon("roundtrip");
  Client client = connect_with_retry(daemon.socket_path);

  const service::BuildReply remote_build = client.build(request);
  EXPECT_EQ(remote_build.id, local_build.id);
  EXPECT_EQ(remote_build.status, service::StatusCode::kOk);
  EXPECT_EQ(remote_build.model_nodes, local_build.model_nodes);
  EXPECT_FALSE(remote_build.cache_hit);

  const service::EvalReply remote = client.evaluate(remote_build.id, eval);
  EXPECT_EQ(remote.total_ff, local.total_ff);
  EXPECT_EQ(remote.average_ff, local.average_ff);
  EXPECT_EQ(remote.peak_ff, local.peak_ff);
  EXPECT_EQ(remote.transitions, local.transitions);
  EXPECT_TRUE(remote.cache_hit);

  const service::EvalReply remote_trace =
      client.evaluate_trace(remote_build.id, trace);
  EXPECT_EQ(remote_trace.total_ff, local_trace.total_ff);
  EXPECT_EQ(remote_trace.peak_ff, local_trace.peak_ff);
  EXPECT_EQ(remote_trace.transitions, local_trace.transitions);
}

TEST(ServeCache, RepeatedBuildIsAHitWithZeroConstruction) {
  ScopedServer daemon("cache");
  Client client = connect_with_retry(daemon.socket_path);
  const service::BuildRequest request = c17_request();

  const service::BuildReply first = client.build(request);
  EXPECT_FALSE(first.cache_hit);
  const wire::StatsReply after_first = client.stats();

  const service::BuildReply second = client.build(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.id, first.id);
  EXPECT_EQ(second.model_nodes, first.model_nodes);

  // The acceptance bar: the repeated query performed no model construction.
  const wire::StatsReply after_second = client.stats();
  EXPECT_EQ(after_second.builds - after_first.builds, 0u);
  EXPECT_EQ(after_second.models, after_first.models);
  if (metrics::compiled_in()) {
    EXPECT_GT(after_second.hits, after_first.hits);
  }
}

TEST(ServeCache, ModelShapingKnobsAddressDistinctModels) {
  ScopedServer daemon("distinct");
  Client client = connect_with_retry(daemon.socket_path);
  service::BuildRequest request = c17_request();
  const service::BuildReply avg = client.build(request);
  request.options.kind = power::ModelKind::kAddUpperBound;
  const service::BuildReply ub = client.build(request);
  EXPECT_NE(avg.id, ub.id);
  EXPECT_FALSE(ub.cache_hit) << "different options must not hit the cache";
  EXPECT_EQ(client.stats().models, 2u);
}

TEST(ServeErrors, UnknownIdFailsTypedWithoutBuilding) {
  ScopedServer daemon("unknown");
  Client client = connect_with_retry(daemon.socket_path);
  service::EvalRequest eval;
  eval.vectors = 50;
  try {
    (void)client.evaluate({0xdead, 0xbeef}, eval);
    FAIL() << "eval of an unadmitted id succeeded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("not admitted"), std::string::npos);
  }
  EXPECT_EQ(client.stats().models, 0u);
}

TEST(ServeErrors, InfeasibleStatisticsCrossTheWireTyped) {
  ScopedServer daemon("infeasible");
  Client client = connect_with_retry(daemon.socket_path);
  const service::BuildReply built = client.build(c17_request());
  service::EvalRequest eval;
  eval.statistics = {0.9, 0.9};
  eval.vectors = 50;
  try {
    (void)client.evaluate(built.id, eval);
    FAIL() << "daemon accepted infeasible statistics";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos);
  }
}

TEST(ServeLifecycle, PingReportsVersionAndClientShutdownExitsZero) {
  ScopedServer daemon("lifecycle");
  {
    Client client = connect_with_retry(daemon.socket_path);
    EXPECT_NE(client.ping().find("version 1"), std::string::npos);
    client.shutdown_server();
  }
  daemon.join();
  EXPECT_EQ(daemon.exit_code, Server::kExitOk);
}

TEST(ServeLifecycle, SignalShutdownExitsSix) {
  ScopedServer daemon("signal");
  {
    // Make sure the accept loop is actually up before stopping it.
    Client client = connect_with_retry(daemon.socket_path);
    (void)client.ping();
  }
  daemon.server->request_shutdown(/*from_signal=*/true);
  daemon.join();
  EXPECT_EQ(daemon.exit_code, Server::kExitSignal);
}

TEST(ServePersistence, RestartServesFromPersistedRegistry) {
  const std::string persist =
      (std::filesystem::temp_directory_path() /
       ("cfpm-server-test-persist-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(persist);

  const service::BuildRequest request = c17_request();
  service::EvalRequest eval;
  eval.vectors = 300;
  service::ModelId id;
  service::EvalReply first_reply;
  {
    ScopedServer daemon("persist-a", persist);
    Client client = connect_with_retry(daemon.socket_path);
    id = client.build(request).id;
    first_reply = client.evaluate(id, eval);
    client.shutdown_server();
    daemon.join();
    ASSERT_EQ(daemon.exit_code, Server::kExitOk);
  }

  {
    ScopedServer daemon("persist-b", persist);
    Client client = connect_with_retry(daemon.socket_path);
    const wire::StatsReply boot = client.stats();
    ASSERT_EQ(boot.models, 1u) << "warm start did not reload the registry";

    // The same build request is now a cache hit with zero construction...
    const service::BuildReply warm = client.build(request);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.id, id);
    EXPECT_EQ(client.stats().builds - boot.builds, 0u);

    // ...and the reloaded model evaluates bit-identically.
    const service::EvalReply again = client.evaluate(id, eval);
    EXPECT_EQ(again.total_ff, first_reply.total_ff);
    EXPECT_EQ(again.average_ff, first_reply.average_ff);
    EXPECT_EQ(again.peak_ff, first_reply.peak_ff);
  }
  std::filesystem::remove_all(persist);
}

TEST(ServeConcurrency, ParallelClientsShareOneDeduplicatedBuild) {
  ScopedServer daemon("parallel");
  const service::BuildRequest request = c17_request();
  constexpr int kClients = 4;
  service::BuildReply replies[kClients];
  std::uint64_t before_builds = 0;
  {
    Client probe = connect_with_retry(daemon.socket_path);
    before_builds = probe.stats().builds;
  }
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client client = connect_with_retry(daemon.socket_path);
      replies[i] = client.build(request);
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(replies[i].id, replies[0].id);
    EXPECT_EQ(replies[i].model_nodes, replies[0].model_nodes);
  }
  Client probe = connect_with_retry(daemon.socket_path);
  EXPECT_EQ(probe.stats().models, 1u);
  if (metrics::compiled_in()) {
    // Concurrent requesters of one id wait on the same job: exactly one
    // construction no matter how the connection threads interleave.
    EXPECT_EQ(probe.stats().builds - before_builds, 1u);
  }
}

TEST(ServeChip, ChipQueryServesMacroLibraryFromRegistry) {
  ScopedServer daemon("chip");
  Client client = connect_with_retry(daemon.socket_path);
  service::ChipRequest request;
  request.spec = "2x2x8";  // 2 distinct macros -> 4 models (avg + bound)
  request.vectors = 200;

  const service::ChipReply first = client.chip(request);
  EXPECT_EQ(first.status, service::StatusCode::kOk);
  EXPECT_EQ(first.macros, 4u);
  EXPECT_EQ(first.cache_hits, 0u);
  ASSERT_EQ(first.library.size(), 2u);
  EXPECT_EQ(client.stats().models, 4u)
      << "every macro variant should be admitted to the registry";

  // The same spec again: the whole library comes from the cache and not a
  // single model is rebuilt.
  const wire::StatsReply before = client.stats();
  const service::ChipReply second = client.chip(request);
  EXPECT_EQ(second.cache_hits, 2 * second.library.size());
  for (const service::ChipMacroSummary& m : second.library) {
    EXPECT_TRUE(m.cache_hit) << m.name;
  }
  EXPECT_EQ(client.stats().builds - before.builds, 0u);
  EXPECT_EQ(client.stats().models, 4u);

  // Served-from-cache and built-fresh replies are bit-identical, and both
  // match the in-process facade (same structs, same code path).
  const service::ChipReply local = service::evaluate_chip(request);
  for (const service::ChipReply* r : {&first, &second}) {
    EXPECT_EQ(r->total_ff, local.total_ff);
    EXPECT_EQ(r->peak_ff, local.peak_ff);
    EXPECT_EQ(r->bound_total_ff, local.bound_total_ff);
    EXPECT_EQ(r->bound_peak_ff, local.bound_peak_ff);
    EXPECT_EQ(r->worst_case_sum_ff, local.worst_case_sum_ff);
    EXPECT_EQ(r->transitions, local.transitions);
    ASSERT_EQ(r->instances.size(), local.instances.size());
    for (std::size_t i = 0; i < local.instances.size(); ++i) {
      EXPECT_EQ(r->instances[i].total_ff, local.instances[i].total_ff);
    }
  }
}

TEST(ServeChip, BadChipSpecFailsTypedOverTheWire) {
  ScopedServer daemon("chip-bad");
  Client client = connect_with_retry(daemon.socket_path);
  service::ChipRequest request;
  request.spec = "not-a-spec";
  try {
    (void)client.chip(request);
    FAIL() << "daemon accepted a malformed chip spec";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad chip spec"), std::string::npos);
  }
  EXPECT_EQ(client.stats().models, 0u);
}

}  // namespace
}  // namespace cfpm::serve
