// In-place adjacent swap and sifting: function preservation and size wins.
#include <gtest/gtest.h>

#include <vector>

#include "dd/manager.hpp"
#include "support/rng.hpp"

namespace cfpm::dd {
namespace {

std::vector<double> table_of(const Add& f, std::size_t vars) {
  std::vector<double> t;
  for (unsigned m = 0; m < (1u << vars); ++m) {
    std::vector<std::uint8_t> a(vars);
    for (unsigned v = 0; v < vars; ++v) a[v] = (m >> v) & 1u;
    t.push_back(f.eval(a));
  }
  return t;
}

Add random_add(DdManager& mgr, Xoshiro256& rng, std::size_t vars, int terms) {
  Add f = mgr.constant(0.0);
  for (int i = 0; i < terms; ++i) {
    Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(vars)));
    Bdd w = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(vars)));
    Bdd u = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(vars)));
    Bdd prod = rng.next_bool(0.5) ? (v & !w) : ((v ^ w) | u);
    f = f + Add(prod).times(1.0 + static_cast<double>(rng.next_below(9)));
  }
  return f;
}

TEST(Reorder, SwapPreservesFunctions) {
  constexpr std::size_t kVars = 6;
  DdManager mgr(kVars);
  Xoshiro256 rng(17);
  Add f = random_add(mgr, rng, kVars, 8);
  Add g = random_add(mgr, rng, kVars, 5);
  const auto tf = table_of(f, kVars);
  const auto tg = table_of(g, kVars);
  for (std::uint32_t level = 0; level + 1 < kVars; ++level) {
    mgr.swap_adjacent_levels(level);
    EXPECT_EQ(table_of(f, kVars), tf) << "after swap at level " << level;
    EXPECT_EQ(table_of(g, kVars), tg);
  }
}

TEST(Reorder, SwapTwiceIsIdentityOrder) {
  DdManager mgr(4);
  Bdd f = (mgr.bdd_var(0) & mgr.bdd_var(1)) | (mgr.bdd_var(2) ^ mgr.bdd_var(3));
  const std::size_t size_before = f.size();
  mgr.swap_adjacent_levels(1);
  mgr.swap_adjacent_levels(1);
  EXPECT_EQ(mgr.var_at_level(1), 1u);
  EXPECT_EQ(mgr.var_at_level(2), 2u);
  EXPECT_EQ(f.size(), size_before);
}

TEST(Reorder, SiftVariablePreservesFunction) {
  constexpr std::size_t kVars = 7;
  DdManager mgr(kVars);
  Xoshiro256 rng(23);
  Add f = random_add(mgr, rng, kVars, 10);
  const auto tf = table_of(f, kVars);
  for (std::uint32_t v = 0; v < kVars; ++v) {
    mgr.sift_variable(v);
    ASSERT_EQ(table_of(f, kVars), tf) << "after sifting variable " << v;
  }
}

TEST(Reorder, SiftShrinksBadlyOrderedMux) {
  // f = s ? a : b with order (a, b, s): 5 internal nodes; with s on top: 3.
  DdManager mgr(3);
  const std::uint32_t order[] = {1, 2, 0};  // level0=a(var1), level1=b(var2), level2=s(var0)
  mgr.set_order(order);
  Bdd s = mgr.bdd_var(0);
  Bdd a = mgr.bdd_var(1);
  Bdd b = mgr.bdd_var(2);
  Bdd f = s.ite(a, b);
  const std::size_t before = f.size();
  mgr.sift();
  EXPECT_LE(f.size(), before);
  // Function intact.
  for (unsigned m = 0; m < 8; ++m) {
    const std::uint8_t assign[3] = {static_cast<std::uint8_t>(m & 1),
                                    static_cast<std::uint8_t>((m >> 1) & 1),
                                    static_cast<std::uint8_t>((m >> 2) & 1)};
    EXPECT_EQ(f.eval(assign), (assign[0] ? assign[1] : assign[2]) != 0);
  }
}

TEST(Reorder, SiftShrinksInterleavedDependence) {
  // Function with pairwise structure f = sum (x_i AND x_{i+n/2}) is large
  // with blocked order; sifting must find a smaller arrangement.
  constexpr std::size_t kHalf = 5;
  DdManager mgr(2 * kHalf);
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < kHalf; ++i) {
    f = f + Add(mgr.bdd_var(i) & mgr.bdd_var(i + kHalf)).times(1.0);
  }
  const std::size_t before = f.size();
  const auto tf = table_of(f, 2 * kHalf);
  mgr.sift();
  EXPECT_LT(f.size(), before);
  EXPECT_EQ(table_of(f, 2 * kHalf), tf);
}

TEST(Reorder, SiftAfterGarbageDoesNotResurrectOrCrash) {
  DdManager mgr(8);
  Xoshiro256 rng(5);
  {
    Add temp = random_add(mgr, rng, 8, 12);
    EXPECT_GT(temp.size(), 1u);
  }  // temp dead
  Add keep = random_add(mgr, rng, 8, 6);
  const auto tk = table_of(keep, 8);
  mgr.sift();
  EXPECT_EQ(table_of(keep, 8), tk);
  EXPECT_EQ(mgr.dead_nodes(), 0u);  // sift() collects garbage
}

TEST(Reorder, HandlesStayValidAcrossManySwaps) {
  constexpr std::size_t kVars = 6;
  DdManager mgr(kVars);
  Xoshiro256 rng(31);
  std::vector<Add> funcs;
  std::vector<std::vector<double>> tables;
  for (int i = 0; i < 5; ++i) {
    funcs.push_back(random_add(mgr, rng, kVars, 6));
    tables.push_back(table_of(funcs.back(), kVars));
  }
  for (int round = 0; round < 50; ++round) {
    mgr.swap_adjacent_levels(
        static_cast<std::uint32_t>(rng.next_below(kVars - 1)));
  }
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    EXPECT_EQ(table_of(funcs[i], kVars), tables[i]) << "function " << i;
  }
}

}  // namespace
}  // namespace cfpm::dd
