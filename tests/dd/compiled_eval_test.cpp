// Compiled flat-array evaluation: randomized equivalence against the
// ref-counted node walk, snapshot independence from the manager, and
// bit-exact determinism of estimate_trace across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dd/compiled.hpp"
#include "dd/manager.hpp"
#include "netlist/generators.hpp"
#include "netlist/library.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "stats/markov.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace cfpm {
namespace {

using dd::CompiledDd;

power::AddPowerModel random_model(int index) {
  netlist::gen::RandomLogicSpec spec;
  spec.name = "compiled_rt" + std::to_string(index);
  spec.num_inputs = 6 + index % 7;  // 6..12 inputs -> 12..24 variables
  spec.num_outputs = 2 + index % 3;
  spec.target_gates = 16 + 2 * index;
  spec.window = 6;
  spec.seed = 7000 + static_cast<std::uint64_t>(index);
  const netlist::Netlist n = netlist::gen::random_logic(spec);

  power::AddModelOptions opt;
  // Mix exact and approximated models, both collapse strategies.
  opt.max_nodes = (index % 2 == 0) ? 0 : 60;
  opt.mode = (index % 4 < 2) ? dd::ApproxMode::kAverage
                             : dd::ApproxMode::kUpperBound;
  return power::AddPowerModel::build(n, netlist::GateLibrary::standard(), opt);
}

TEST(CompiledEval, MatchesNodeWalkOnRandomNetlistAdds) {
  Xoshiro256 rng(0xc0317ed);
  for (int c = 0; c < 20; ++c) {
    const power::AddPowerModel model = random_model(c);
    const dd::Add& f = model.function();
    const CompiledDd& compiled = model.compiled();
    const std::size_t nv = 2 * model.num_inputs();

    constexpr std::size_t kPatterns = 10000;
    std::vector<std::uint8_t> assignments(kPatterns * nv);
    for (std::uint8_t& b : assignments) {
      b = static_cast<std::uint8_t>(rng.next() & 1u);
    }
    // Scalar walk equivalence, bit for bit.
    for (std::size_t p = 0; p < kPatterns; ++p) {
      std::span<const std::uint8_t> a(assignments.data() + p * nv, nv);
      ASSERT_EQ(compiled.eval(a), f.eval(a))
          << "circuit " << c << " pattern " << p;
    }
    // Batch (lane-blocked) equivalence.
    std::vector<double> out(kPatterns);
    compiled.eval_block(assignments.data(), nv, kPatterns, out.data());
    for (std::size_t p = 0; p < kPatterns; ++p) {
      std::span<const std::uint8_t> a(assignments.data() + p * nv, nv);
      ASSERT_EQ(out[p], f.eval(a)) << "circuit " << c << " pattern " << p;
    }
    // Bit-parallel (64 assignments per sweep) equivalence, including the
    // ragged tail block (kPatterns % 64 == 16).
    std::vector<std::uint64_t> bits(nv);
    std::vector<std::uint64_t> scratch;
    double packed_out[64];
    for (std::size_t base = 0; base < kPatterns; base += 64) {
      const std::size_t m = std::min<std::size_t>(64, kPatterns - base);
      for (std::size_t v = 0; v < nv; ++v) {
        std::uint64_t w = 0;
        for (std::size_t k = 0; k < m; ++k) {
          w |= static_cast<std::uint64_t>(assignments[(base + k) * nv + v])
               << k;
        }
        bits[v] = w;
      }
      compiled.eval_packed(bits.data(), m, packed_out, scratch);
      for (std::size_t k = 0; k < m; ++k) {
        ASSERT_EQ(packed_out[k], out[base + k])
            << "circuit " << c << " pattern " << base + k;
      }
    }
  }
}

TEST(CompiledEval, HandlesConstantsAndBdds) {
  dd::DdManager mgr(4);
  const CompiledDd c = CompiledDd::compile(mgr.constant(2.5));
  EXPECT_EQ(c.num_internal_nodes(), 0u);
  EXPECT_EQ(c.depth(), 0u);
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(c.eval(empty), 2.5);

  const dd::Bdd f = (mgr.bdd_var(0) & mgr.bdd_var(1)) | mgr.bdd_var(3);
  const CompiledDd cb = CompiledDd::compile(f);
  std::vector<std::uint8_t> a(4);
  for (unsigned bits = 0; bits < 16; ++bits) {
    for (unsigned v = 0; v < 4; ++v) a[v] = (bits >> v) & 1u;
    EXPECT_EQ(cb.eval(a) != 0.0, f.eval(a)) << "bits " << bits;
  }
}

TEST(CompiledEval, SnapshotSurvivesManagerGcAndReordering) {
  dd::DdManager mgr(6);
  dd::Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 6; ++i) {
    f = f + dd::Add(mgr.bdd_var(i)).times(1.0 + i);
  }
  std::vector<std::uint8_t> a(6, 1);
  const double expected = f.eval(a);

  const CompiledDd compiled = CompiledDd::compile(f);
  // Invalidate everything the snapshot could have pointed into: drop the
  // handle, churn the manager, sweep, and reorder.
  f = dd::Add();
  for (int round = 0; round < 3; ++round) {
    dd::Bdd junk = mgr.bdd_var(0) ^ mgr.bdd_var(5);
    (void)junk;
  }
  mgr.collect_garbage();
  mgr.sift();
  EXPECT_EQ(compiled.eval(a), expected);
}

TEST(CompiledEval, EstimateTraceBitIdenticalAcrossThreadCounts) {
  const power::AddPowerModel model = random_model(13);
  const std::size_t n = model.num_inputs();
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0x7ace);
  // > 2 chunks so the ordered reduction actually reduces.
  const sim::InputSequence seq =
      gen.generate(n, 2 * power::PowerModel::kTraceChunk + 1000);

  const power::TraceEstimate serial = model.estimate_trace(seq);
  ThreadPool pool2(2), pool8(8);
  const power::TraceEstimate t2 = model.estimate_trace(seq, &pool2);
  const power::TraceEstimate t8 = model.estimate_trace(seq, &pool8);
  EXPECT_EQ(serial.total_ff, t2.total_ff);
  EXPECT_EQ(serial.total_ff, t8.total_ff);
  EXPECT_EQ(serial.peak_ff, t2.peak_ff);
  EXPECT_EQ(serial.peak_ff, t8.peak_ff);

  // The batched result must equal the scalar estimate_ff path exactly
  // (same chunk boundaries, same in-chunk order, same reduction).
  const std::size_t transitions = seq.num_transitions();
  power::TraceEstimate manual;
  manual.transitions = transitions;
  std::vector<std::uint8_t> xi(n), xf(n);
  for (std::size_t begin = 0; begin < transitions;
       begin += power::PowerModel::kTraceChunk) {
    const std::size_t end =
        std::min(begin + power::PowerModel::kTraceChunk, transitions);
    double total = 0.0, peak = 0.0;
    seq.vector_at(begin, xi);
    for (std::size_t t = begin; t < end; ++t) {
      seq.vector_at(t + 1, xf);
      const double v = model.estimate_ff(xi, xf);
      total += v;
      peak = std::max(peak, v);
      xi.swap(xf);
    }
    manual.total_ff += total;
    manual.peak_ff = std::max(manual.peak_ff, peak);
  }
  EXPECT_EQ(serial.total_ff, manual.total_ff);
  EXPECT_EQ(serial.peak_ff, manual.peak_ff);
}

TEST(CompiledEval, BaselineTracesBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 9;
  stats::MarkovSequenceGenerator gen({0.4, 0.3}, 0xba5e);
  const sim::InputSequence seq =
      gen.generate(n, 3 * power::PowerModel::kTraceChunk);

  std::vector<double> coeffs(n + 1);
  for (std::size_t j = 0; j <= n; ++j) {
    coeffs[j] = 0.37 * static_cast<double>(j + 1);
  }
  const power::LinearModel lin(coeffs);
  const power::ConstantModel con(4.125, n);

  ThreadPool pool2(2), pool8(8);
  for (const power::PowerModel* m :
       {static_cast<const power::PowerModel*>(&lin),
        static_cast<const power::PowerModel*>(&con)}) {
    const power::TraceEstimate serial = m->estimate_trace(seq);
    const power::TraceEstimate t2 = m->estimate_trace(seq, &pool2);
    const power::TraceEstimate t8 = m->estimate_trace(seq, &pool8);
    EXPECT_EQ(serial.total_ff, t2.total_ff) << m->name();
    EXPECT_EQ(serial.total_ff, t8.total_ff) << m->name();
    EXPECT_EQ(serial.peak_ff, t2.peak_ff) << m->name();
    EXPECT_EQ(serial.peak_ff, t8.peak_ff) << m->name();
  }
}

// A model without a batch override exercises the default estimate_ff loop.
class ToyQuadraticModel final : public power::PowerModel {
 public:
  std::string name() const override { return "Toy"; }
  std::size_t num_inputs() const override { return 5; }
  double worst_case_ff() const override { return 25.0; }
  double estimate_ff(std::span<const std::uint8_t> xi,
                     std::span<const std::uint8_t> xf) const override {
    double toggles = 0.0;
    for (std::size_t j = 0; j < xi.size(); ++j) {
      if ((xi[j] != 0) != (xf[j] != 0)) toggles += 1.0;
    }
    return toggles * toggles;
  }
};

TEST(CompiledEval, DefaultEstimateTraceDeterministicAndMatchesAverageOver) {
  const ToyQuadraticModel model;
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0x70facade);
  const sim::InputSequence seq =
      gen.generate(5, 2 * power::PowerModel::kTraceChunk + 17);

  const power::TraceEstimate serial = model.estimate_trace(seq);
  ThreadPool pool8(8);
  const power::TraceEstimate t8 = model.estimate_trace(seq, &pool8);
  EXPECT_EQ(serial.total_ff, t8.total_ff);
  EXPECT_EQ(serial.peak_ff, t8.peak_ff);
  EXPECT_EQ(model.average_over(seq), serial.average_ff());
  EXPECT_EQ(model.peak_over(seq), serial.peak_ff);
}

}  // namespace
}  // namespace cfpm
