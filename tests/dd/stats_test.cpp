// avg/var/max/min traversals (Eq. 5-8) against brute-force enumeration.
#include "dd/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dd/manager.hpp"
#include "support/rng.hpp"

namespace cfpm::dd {
namespace {

constexpr std::size_t kVars = 5;

Add random_add(DdManager& mgr, Xoshiro256& rng) {
  Add f = mgr.constant(0.0);
  for (int i = 0; i < 5; ++i) {
    Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
    Bdd w = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
    f = f + Add(v & w).times(1.0 + static_cast<double>(rng.next_below(10)));
  }
  return f;
}

struct BruteStats {
  double avg = 0, var = 0, max = 0, min = 0;
};

BruteStats brute_force(const Add& f) {
  std::vector<double> values;
  for (unsigned m = 0; m < (1u << kVars); ++m) {
    std::uint8_t a[kVars];
    for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
    values.push_back(f.eval(std::span<const std::uint8_t>(a, kVars)));
  }
  BruteStats s;
  s.max = values[0];
  s.min = values[0];
  for (double v : values) {
    s.avg += v;
    s.max = std::max(s.max, v);
    s.min = std::min(s.min, v);
  }
  s.avg /= static_cast<double>(values.size());
  for (double v : values) s.var += (v - s.avg) * (v - s.avg);
  s.var /= static_cast<double>(values.size());
  return s;
}

class StatsRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsRandomTest, MatchesBruteForce) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam());
  Add f = random_add(mgr, rng);
  const BruteStats expect = brute_force(f);
  EXPECT_NEAR(f.average(), expect.avg, 1e-9);
  EXPECT_NEAR(f.variance(), expect.var, 1e-9);
  EXPECT_DOUBLE_EQ(f.max_value(), expect.max);
  EXPECT_DOUBLE_EQ(f.min_value(), expect.min);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsRandomTest,
                         ::testing::Values(3, 7, 19, 42, 101, 2024));

TEST(Stats, ConstantFunction) {
  DdManager mgr(3);
  Add c = mgr.constant(4.25);
  EXPECT_DOUBLE_EQ(c.average(), 4.25);
  EXPECT_DOUBLE_EQ(c.variance(), 0.0);
  EXPECT_DOUBLE_EQ(c.max_value(), 4.25);
  EXPECT_DOUBLE_EQ(c.min_value(), 4.25);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Stats, SingleVariable) {
  DdManager mgr(1);
  Add x = Add(mgr.bdd_var(0));
  EXPECT_DOUBLE_EQ(x.average(), 0.5);
  EXPECT_DOUBLE_EQ(x.variance(), 0.25);
  EXPECT_DOUBLE_EQ(x.max_value(), 1.0);
  EXPECT_DOUBLE_EQ(x.min_value(), 0.0);
}

TEST(Stats, PaperExampleNodeN) {
  // Fig. 4: node n has children {leaf 10, subtree with avg 5, var 25};
  // avg(n) = 7.5, var(n) = 18.75, and with max(n)=10, mse = 25 (Ex. 5).
  // We reconstruct this shape: n = ite(x, child_with_avg5_var25, 10).
  DdManager mgr(3);
  // Child: value 10 with prob 1/2, 0 with prob 1/2 over one variable:
  // avg 5, var 25.
  Add child = Add(mgr.bdd_var(1)).times(10.0);
  EXPECT_DOUBLE_EQ(child.average(), 5.0);
  EXPECT_DOUBLE_EQ(child.variance(), 25.0);
  Add ten = mgr.constant(10.0);
  // n tests variable 0: else -> child, then -> 10.
  Add n = Add(mgr.bdd_var(0)) * ten + Add(!mgr.bdd_var(0)) * child;
  EXPECT_DOUBLE_EQ(n.average(), 7.5);
  EXPECT_DOUBLE_EQ(n.variance(), 18.75);
  EXPECT_DOUBLE_EQ(n.max_value(), 10.0);
  NodeStats stats(n);
  EXPECT_DOUBLE_EQ(stats.root().mse_of_max(), 25.0);
}

TEST(Stats, AverageIsLinear) {
  DdManager mgr(kVars);
  Xoshiro256 rng(77);
  Add a = random_add(mgr, rng);
  Add b = random_add(mgr, rng);
  EXPECT_NEAR((a + b).average(), a.average() + b.average(), 1e-9);
  EXPECT_NEAR(a.times(3.0).average(), 3.0 * a.average(), 1e-9);
}

TEST(Stats, MaxIsSubadditive) {
  DdManager mgr(kVars);
  Xoshiro256 rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    Add a = random_add(mgr, rng);
    Add b = random_add(mgr, rng);
    EXPECT_LE((a + b).max_value(), a.max_value() + b.max_value() + 1e-12);
  }
}

TEST(Stats, SatCountMatchesEnumeration) {
  DdManager mgr(kVars);
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Bdd f = mgr.bdd_zero();
    for (int i = 0; i < 4; ++i) {
      Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
      f = rng.next_bool(0.5) ? (f | v) : (f ^ v);
    }
    unsigned count = 0;
    for (unsigned m = 0; m < (1u << kVars); ++m) {
      std::uint8_t a[kVars];
      for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
      if (f.eval(std::span<const std::uint8_t>(a, kVars))) ++count;
    }
    EXPECT_NEAR(f.sat_count(kVars), static_cast<double>(count), 1e-9);
  }
}

TEST(Stats, ArgmaxWitnessesTheMaximum) {
  DdManager mgr(kVars);
  Xoshiro256 rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    Add f = random_add(mgr, rng);
    const auto assignment = argmax_assignment(f);
    ASSERT_EQ(assignment.size(), kVars);
    EXPECT_DOUBLE_EQ(f.eval(assignment), f.max_value()) << "trial " << trial;
  }
}

TEST(Stats, ArgmaxOnConstant) {
  DdManager mgr(2);
  Add c = mgr.constant(3.0);
  const auto assignment = argmax_assignment(c);
  EXPECT_DOUBLE_EQ(c.eval(assignment), 3.0);
}

TEST(Stats, SupportListsOnlyDependentVars) {
  DdManager mgr(6);
  Bdd f = (mgr.bdd_var(1) & mgr.bdd_var(4)) | mgr.bdd_var(3);
  const auto sup = f.support();
  EXPECT_EQ(sup, (std::vector<std::uint32_t>{1, 3, 4}));
}

TEST(Stats, SizeCountsUniqueNodes) {
  DdManager mgr(2);
  // x0 XOR x1 with complement edges: the two x1 branches are negations of
  // each other, so they share one physical x1 node, and the BDD fragment
  // has the single terminal 1 (zero is a complement edge to it).
  Bdd f = mgr.bdd_var(0) ^ mgr.bdd_var(1);
  EXPECT_EQ(f.size(), 3u);  // x0 node, shared x1 node, terminal 1

  // The ADD view has no complement edges and recovers the classic shape.
  Add a(f);
  EXPECT_EQ(a.size(), 5u);  // x0 node, two x1 nodes, 0, 1
}

TEST(Stats, LeafValuesSortedUnique) {
  DdManager mgr(2);
  Add f = Add(mgr.bdd_var(0)).times(4.0) + Add(mgr.bdd_var(1)).times(4.0);
  const auto leaves = f.leaf_values();
  EXPECT_EQ(leaves, (std::vector<double>{0.0, 4.0, 8.0}));
}

}  // namespace
}  // namespace cfpm::dd
