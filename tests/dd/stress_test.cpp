// Randomized stress of the DD manager: interleaves apply operations,
// handle churn, garbage collection, sifting and approximation, constantly
// re-validating retained functions against saved truth tables. Exercises
// ref-count resurrection, cache survival across reordering, and the
// interaction of all safe-point operations.
#include <gtest/gtest.h>

#include <vector>

#include "dd/approx.hpp"
#include "dd/manager.hpp"
#include "dd/stats.hpp"
#include "support/rng.hpp"

namespace cfpm::dd {
namespace {

constexpr std::size_t kVars = 7;

std::vector<double> table_of(const Add& f) {
  std::vector<double> t;
  t.reserve(1u << kVars);
  for (unsigned m = 0; m < (1u << kVars); ++m) {
    std::uint8_t a[kVars];
    for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
    t.push_back(f.eval(std::span<const std::uint8_t>(a, kVars)));
  }
  return t;
}

class DdStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdStressTest, MixedOperationsPreserveRetainedFunctions) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam());

  struct Kept {
    Add f;
    std::vector<double> table;
  };
  std::vector<Kept> kept;
  std::vector<Add> scratch;

  auto random_leafy = [&]() -> Add {
    Add f = mgr.constant(static_cast<double>(rng.next_below(4)));
    for (int i = 0; i < 3; ++i) {
      Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
      Bdd w = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
      f = f + Add(v & !w).times(1.0 + static_cast<double>(rng.next_below(7)));
    }
    return f;
  };

  for (int step = 0; step < 300; ++step) {
    switch (rng.next_below(8)) {
      case 0: {  // create and keep (with truth table)
        if (kept.size() < 8) {
          Add f = random_leafy();
          auto table = table_of(f);
          kept.push_back({std::move(f), std::move(table)});
        }
        break;
      }
      case 1: {  // create scratch garbage
        scratch.push_back(random_leafy());
        break;
      }
      case 2: {  // drop scratch (creates dead nodes)
        scratch.clear();
        break;
      }
      case 3: {  // combine two kept functions into a new kept one
        if (kept.size() >= 2) {
          const Kept& a = kept[rng.next_below(kept.size())];
          const Kept& b = kept[rng.next_below(kept.size())];
          Add sum = a.f + b.f;
          auto table = table_of(sum);
          kept.push_back({std::move(sum), std::move(table)});
        }
        break;
      }
      case 4:  // force GC
        mgr.collect_garbage();
        break;
      case 5:  // random adjacent swap
        mgr.swap_adjacent_levels(
            static_cast<std::uint32_t>(rng.next_below(kVars - 1)));
        break;
      case 6:  // sift a random variable
        mgr.sift_variable(static_cast<std::uint32_t>(rng.next_below(kVars)));
        break;
      case 7: {  // approximate a kept function into scratch
        if (!kept.empty()) {
          const Kept& a = kept[rng.next_below(kept.size())];
          scratch.push_back(approximate_to(
              a.f, 1 + rng.next_below(12),
              rng.next_bool(0.5) ? ApproxMode::kAverage
                                 : ApproxMode::kUpperBound));
        }
        break;
      }
    }
    if (kept.size() > 8) {
      kept.erase(kept.begin() + static_cast<long>(rng.next_below(kept.size())));
    }
    // Validate every retained function every 25 steps (and at the end).
    if (step % 25 == 24) {
      for (const Kept& k : kept) {
        ASSERT_EQ(table_of(k.f), k.table) << "step " << step;
      }
    }
  }
  for (const Kept& k : kept) {
    ASSERT_EQ(table_of(k.f), k.table);
  }
  // Everything still collectible and consistent.
  scratch.clear();
  kept.clear();
  mgr.collect_garbage();
  EXPECT_EQ(mgr.dead_nodes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdStressTest,
                         ::testing::Values(1, 7, 21, 99, 1234, 999983));

}  // namespace
}  // namespace cfpm::dd
