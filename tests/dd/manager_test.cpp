#include "dd/manager.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace cfpm::dd {
namespace {

TEST(DdManager, ConstantsAreHashConsed) {
  DdManager mgr(2);
  Add a = mgr.constant(3.5);
  Add b = mgr.constant(3.5);
  EXPECT_EQ(a, b);
  Add c = mgr.constant(4.0);
  EXPECT_FALSE(a == c);
}

TEST(DdManager, NegativeZeroNormalized) {
  DdManager mgr(1);
  EXPECT_EQ(mgr.constant(0.0), mgr.constant(-0.0));
}

TEST(DdManager, ZeroAndOneDistinct) {
  DdManager mgr(1);
  EXPECT_FALSE(mgr.bdd_zero() == mgr.bdd_one());
  EXPECT_TRUE(mgr.bdd_zero().is_zero());
  EXPECT_TRUE(mgr.bdd_one().is_one());
}

TEST(DdManager, VarsAreCanonical) {
  DdManager mgr(3);
  Bdd x0 = mgr.bdd_var(0);
  Bdd x0b = mgr.bdd_var(0);
  EXPECT_EQ(x0, x0b);
  EXPECT_FALSE(x0 == mgr.bdd_var(1));
}

TEST(DdManager, NewVarExtends) {
  DdManager mgr(0);
  EXPECT_EQ(mgr.num_vars(), 0u);
  const auto v = mgr.new_var();
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(mgr.num_vars(), 1u);
  Bdd x = mgr.bdd_var(v);
  EXPECT_FALSE(x.is_zero());
}

TEST(DdManager, BddVarOutOfRangeThrows) {
  DdManager mgr(2);
  EXPECT_THROW(mgr.bdd_var(2), ContractError);
}

TEST(DdManager, HandleCopySemantics) {
  DdManager mgr(2);
  Bdd x = mgr.bdd_var(0);
  Bdd y = x;  // copy
  EXPECT_EQ(x, y);
  Bdd z = std::move(y);
  EXPECT_EQ(x, z);
  EXPECT_TRUE(y.is_null());  // NOLINT(bugprone-use-after-move)
}

TEST(DdManager, SelfAssignmentSafe) {
  DdManager mgr(2);
  Bdd x = mgr.bdd_var(0);
  Bdd& ref = x;
  x = ref;
  EXPECT_FALSE(x.is_null());
}

TEST(DdManager, GarbageCollectionReclaimsDeadNodes) {
  DdManager mgr(8);
  {
    Bdd f = mgr.bdd_var(0);
    for (std::uint32_t v = 1; v < 8; ++v) f = f ^ mgr.bdd_var(v);
    EXPECT_GT(mgr.live_nodes(), 8u);
  }
  // All intermediate results are dead now.
  EXPECT_GT(mgr.dead_nodes(), 0u);
  const std::size_t reclaimed = mgr.collect_garbage();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(mgr.dead_nodes(), 0u);
}

TEST(DdManager, ResurrectionAfterDeath) {
  DdManager mgr(2);
  Bdd x0 = mgr.bdd_var(0);
  Bdd x1 = mgr.bdd_var(1);
  {
    Bdd f = x0 & x1;
    EXPECT_FALSE(f.is_null());
  }
  // f is dead but not collected; recreating the same function must
  // resurrect it without corrupting counts.
  Bdd g = x0 & x1;
  Bdd h = x0 & x1;
  EXPECT_EQ(g, h);
  mgr.collect_garbage();
  EXPECT_FALSE(g.is_null());
  // g still evaluates correctly after GC.
  const std::uint8_t assign[2] = {1, 1};
  EXPECT_TRUE(g.eval(assign));
}

TEST(DdManager, NodeBudgetThrowsResourceError) {
  DdConfig config;
  config.max_nodes = 16;
  DdManager mgr(20, config);
  Bdd f = mgr.bdd_one();
  EXPECT_THROW(
      {
        for (std::uint32_t v = 0; v < 20; ++v) {
          f = f ^ mgr.bdd_var(v);  // parity needs a node per variable
          Bdd keep = f & mgr.bdd_var(0);
          f = f | keep;  // force growth beyond the budget
        }
      },
      ResourceError);
}

TEST(DdManager, SetOrderValidation) {
  DdManager mgr(3);
  const std::uint32_t good[] = {2, 0, 1};
  mgr.set_order(good);
  EXPECT_EQ(mgr.var_at_level(0), 2u);
  EXPECT_EQ(mgr.level_of_var(2), 0u);
  const std::uint32_t bad[] = {0, 0, 1};
  EXPECT_THROW(mgr.set_order(bad), ContractError);
}

TEST(DdManager, SetOrderAffectsStructure) {
  // With order (x1, x0), the top node of x0&x1 is labeled x1.
  DdManager mgr(2);
  const std::uint32_t order[] = {1, 0};
  mgr.set_order(order);
  Bdd f = mgr.bdd_var(0) & mgr.bdd_var(1);
  const auto sup = f.support();
  ASSERT_EQ(sup.size(), 2u);
  // Evaluation is order-independent.
  const std::uint8_t a11[2] = {1, 1};
  const std::uint8_t a10[2] = {1, 0};
  EXPECT_TRUE(f.eval(a11));
  EXPECT_FALSE(f.eval(a10));
}

TEST(DdManager, HandleEqualityIsPerManager) {
  // Regression: handle equality used to compare only the node reference,
  // so structurally identical functions from different managers -- whose
  // arena indices coincide by construction order -- compared equal.
  DdManager mgr_a(2);
  DdManager mgr_b(2);
  Bdd fa = mgr_a.bdd_var(0) & mgr_a.bdd_var(1);
  Bdd fb = mgr_b.bdd_var(0) & mgr_b.bdd_var(1);
  EXPECT_FALSE(fa == fb);
  EXPECT_TRUE(fa != fb);
  // Same manager, same function: still equal (hash-consing).
  Bdd fa2 = mgr_a.bdd_var(1) & mgr_a.bdd_var(0);
  EXPECT_TRUE(fa == fa2);
  // A function and its complement share a node but differ in the edge tag.
  EXPECT_FALSE(fa == !fa);
}

TEST(DdManager, CacheStatisticsAdvance) {
  DdManager mgr(6);
  Bdd f = mgr.bdd_var(0);
  for (std::uint32_t v = 1; v < 6; ++v) f = f & mgr.bdd_var(v);
  Bdd g = mgr.bdd_var(0);
  for (std::uint32_t v = 1; v < 6; ++v) g = g & mgr.bdd_var(v);
  EXPECT_EQ(f, g);
  EXPECT_GT(mgr.cache_lookups(), 0u);
}

}  // namespace
}  // namespace cfpm::dd
