// Dispatch-policy tests for dd/simd.hpp: requested-tier plumbing, the
// detected-tier clamp, name parsing, and the CFPM_SIMD environment
// override. Kernel output equivalence lives in the simd-dispatch fuzz
// oracle and compiled_eval_test; this file is only about tier selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "dd/simd.hpp"

namespace cfpm {
namespace {

using dd::simd::Tier;

/// Leaves the process-global dispatch state (and CFPM_SIMD) as it found it,
/// so test order cannot matter.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CFPM_SIMD");
    dd::simd::refresh_simd_tier_from_env();
  }
};

TEST_F(SimdDispatchTest, DetectionIsStableAndScalarAlwaysAvailable) {
  const Tier detected = dd::simd::detect_simd_tier();
  EXPECT_GE(static_cast<int>(detected), static_cast<int>(Tier::kScalar));
  EXPECT_EQ(dd::simd::detect_simd_tier(), detected) << "detection not cached";
}

TEST_F(SimdDispatchTest, ActiveTierIsRequestClampedToDetection) {
  const Tier detected = dd::simd::detect_simd_tier();
  for (const Tier requested : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    dd::simd::request_simd_tier(requested);
    const Tier active = dd::simd::active_simd_tier();
    EXPECT_EQ(static_cast<int>(active),
              std::min(static_cast<int>(requested),
                       static_cast<int>(detected)));
  }
  dd::simd::request_simd_auto();
  EXPECT_EQ(dd::simd::active_simd_tier(), detected);
}

TEST_F(SimdDispatchTest, ParsesTierNamesAndRejectsEverythingElse) {
  EXPECT_TRUE(dd::simd::request_simd_tier("scalar"));
  EXPECT_EQ(dd::simd::active_simd_tier(), Tier::kScalar);
  EXPECT_TRUE(dd::simd::request_simd_tier("avx2"));
  EXPECT_TRUE(dd::simd::request_simd_tier("avx512"));
  EXPECT_TRUE(dd::simd::request_simd_tier("auto"));
  EXPECT_EQ(dd::simd::active_simd_tier(), dd::simd::detect_simd_tier());

  dd::simd::request_simd_tier(Tier::kScalar);
  for (const char* bad : {"", "AVX2", "sse", "avx-512", "scalar ", "1"}) {
    EXPECT_FALSE(dd::simd::request_simd_tier(bad)) << "accepted '" << bad
                                                   << "'";
    EXPECT_EQ(dd::simd::active_simd_tier(), Tier::kScalar)
        << "rejected name '" << bad << "' changed the state";
  }
}

TEST_F(SimdDispatchTest, EnvironmentOverrideForcesScalar) {
  ASSERT_EQ(::setenv("CFPM_SIMD", "scalar", 1), 0);
  dd::simd::refresh_simd_tier_from_env();
  EXPECT_EQ(dd::simd::active_simd_tier(), Tier::kScalar);
}

TEST_F(SimdDispatchTest, UnsetOrInvalidEnvironmentResetsToAuto) {
  dd::simd::request_simd_tier(Tier::kScalar);
  ASSERT_EQ(::unsetenv("CFPM_SIMD"), 0);
  dd::simd::refresh_simd_tier_from_env();
  EXPECT_EQ(dd::simd::active_simd_tier(), dd::simd::detect_simd_tier());

  dd::simd::request_simd_tier(Tier::kScalar);
  ASSERT_EQ(::setenv("CFPM_SIMD", "turbo", 1), 0);
  dd::simd::refresh_simd_tier_from_env();
  EXPECT_EQ(dd::simd::active_simd_tier(), dd::simd::detect_simd_tier());
}

TEST_F(SimdDispatchTest, TierNamesRoundTrip) {
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    const std::string_view name = dd::simd::simd_tier_name(t);
    ASSERT_TRUE(dd::simd::request_simd_tier(name)) << name;
    EXPECT_EQ(dd::simd::active_simd_tier(),
              std::min(t, dd::simd::detect_simd_tier()));
  }
}

}  // namespace
}  // namespace cfpm
