// Structural invariants of the breadth-first-packed CompiledDd layout: the
// SIMD sweep kernels (dd/simd_kernels.hpp) depend on every one of them, so
// they are pinned here independently of the evaluation equivalence tests.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "dd/approx.hpp"
#include "dd/compiled.hpp"
#include "dd/manager.hpp"
#include "netlist/generators.hpp"
#include "netlist/library.hpp"
#include "power/add_model.hpp"

namespace cfpm {
namespace {

using dd::CompiledDd;

power::AddPowerModel layout_model(int index, std::size_t max_nodes) {
  netlist::gen::RandomLogicSpec spec;
  spec.name = "layout" + std::to_string(index);
  spec.num_inputs = 5 + index % 8;
  spec.num_outputs = 1 + index % 4;
  spec.target_gates = 14 + 3 * index;
  spec.window = 5;
  spec.seed = 9100 + static_cast<std::uint64_t>(index);
  const netlist::Netlist n = netlist::gen::random_logic(spec);
  power::AddModelOptions opt;
  opt.max_nodes = max_nodes;
  return power::AddPowerModel::build(n, netlist::GateLibrary::standard(), opt);
}

void check_layout(const CompiledDd& c, const std::string& context) {
  SCOPED_TRACE(context);
  const auto nodes = c.nodes();
  const auto offsets = c.level_offsets();
  const std::size_t internals = c.num_internal_nodes();

  // One half-open segment per populated level, covering exactly the
  // internal prefix of the node array.
  ASSERT_EQ(offsets.size(), c.depth() + 1);
  ASSERT_EQ(offsets.back(), internals);
  if (internals > 0) {
    ASSERT_EQ(offsets.front(), 0u);
    EXPECT_EQ(c.root(), 0u) << "root must be the first packed node";
  }

  std::uint32_t prev_var = 0;
  for (std::size_t d = 0; d + 1 < offsets.size(); ++d) {
    ASSERT_LT(offsets[d], offsets[d + 1]) << "empty level segment " << d;
    // Level contiguity: every node of a segment tests the same variable,
    // and segment variables never repeat (each level appears once).
    const std::uint32_t var = nodes[offsets[d]].var;
    for (std::uint32_t i = offsets[d]; i < offsets[d + 1]; ++i) {
      EXPECT_EQ(nodes[i].var, var) << "mixed variables in segment " << d;
    }
    if (d > 0) {
      EXPECT_NE(var, prev_var) << "level split across segments";
    }
    prev_var = var;
  }

  // Children strictly forward (the single-pass sweep requires it) and
  // kFirstEdge set on exactly the first incoming edge in sweep order.
  std::vector<bool> seen(nodes.size(), false);
  for (std::uint32_t i = 0; i < internals; ++i) {
    for (const std::uint32_t edge : {nodes[i].hi, nodes[i].lo}) {
      const std::uint32_t child = edge & CompiledDd::kIndexMask;
      ASSERT_GT(child, i) << "backward edge from node " << i;
      ASSERT_LT(child, nodes.size());
      EXPECT_EQ((edge & CompiledDd::kFirstEdge) != 0, !seen[child])
          << "kFirstEdge wrong on edge " << i << " -> " << child;
      seen[child] = true;
    }
  }

  // Cache-block width: a power of two within [1, kPackedGroups] that
  // respects the scratch budget (or the floor of 1).
  const std::size_t groups = c.sweep_groups();
  EXPECT_TRUE(std::has_single_bit(groups));
  EXPECT_GE(groups, 1u);
  EXPECT_LE(groups, CompiledDd::kPackedGroups);
  EXPECT_TRUE(groups == 1 ||
              c.num_nodes() * groups * sizeof(std::uint64_t) <=
                  CompiledDd::kSweepScratchBudget);
  if (groups < CompiledDd::kPackedGroups) {
    // The chosen width is maximal: doubling it would blow the budget.
    EXPECT_GT(c.num_nodes() * 2 * groups * sizeof(std::uint64_t),
              CompiledDd::kSweepScratchBudget);
  }
}

TEST(CompiledLayout, InvariantsHoldOnRandomModels) {
  for (int i = 0; i < 16; ++i) {
    const auto model = layout_model(i, i % 2 == 0 ? 0 : 48);
    check_layout(model.compiled(), "model " + std::to_string(i));
  }
}

TEST(CompiledLayout, InvariantsHoldAfterApproximationRepack) {
  // Approximation rebuilds the diagram, so a fresh compile must restore
  // every packing invariant on the collapsed shape too.
  for (int i = 0; i < 8; ++i) {
    const auto model = layout_model(i, 12);
    const dd::Add cut =
        dd::approximate_to(model.function(), 6, dd::ApproxMode::kAverage);
    check_layout(CompiledDd::compile(cut), "approx model " + std::to_string(i));
  }
}

TEST(CompiledLayout, ConstantDiagramHasNoLevels) {
  dd::DdManager mgr(4);
  const CompiledDd c = CompiledDd::compile(mgr.constant(3.25));
  EXPECT_EQ(c.depth(), 0u);
  EXPECT_EQ(c.num_internal_nodes(), 0u);
  ASSERT_EQ(c.level_offsets().size(), 1u);
  EXPECT_EQ(c.level_offsets().front(), 0u);
  EXPECT_EQ(c.sweep_groups(), CompiledDd::kPackedGroups);
}

}  // namespace
}  // namespace cfpm
