// Exception-safety regression tests for DdManager: a ResourceError (node
// budget) or an injected governor fault thrown from the middle of an apply
// must leave the manager fully usable -- unique table consistent with the
// reference counts, garbage collectible, and able to complete the same
// construction afterwards.
#include <gtest/gtest.h>

#include <memory>

#include "dd/approx.hpp"
#include "dd/manager.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"

namespace cfpm::dd {
namespace {

/// Weighted sum  f = sum_k 2^k x_k  over `vars` variables: its ADD has one
/// terminal per assignment, so the node count grows as 2^vars -- an easy
/// way to blow any budget mid-apply.
Add weighted_sum(DdManager& mgr, std::uint32_t vars) {
  Add f = mgr.constant(0.0);
  for (std::uint32_t k = 0; k < vars; ++k) {
    f = f + Add(mgr.bdd_var(k)).times(static_cast<double>(1u << k));
  }
  return f;
}

/// The invariant every throw must preserve: each allocated node is chained
/// in exactly one unique table, live or dead alike.
void expect_table_consistent(const DdManager& mgr) {
  EXPECT_EQ(mgr.unique_table_nodes(), mgr.live_nodes() + mgr.dead_nodes());
}

TEST(ExceptionSafety, NodeBudgetThrowMidApplyLeavesManagerUsable) {
  DdConfig config;
  config.max_nodes = 400;
  config.gc_min_dead = 16;  // keep GC active at this tiny scale
  DdManager mgr(16, config);

  Add survivor = weighted_sum(mgr, 4);  // small; completes comfortably
  EXPECT_THROW(weighted_sum(mgr, 16), ResourceError);

  // The failed construction's intermediates were dereferenced on unwind.
  expect_table_consistent(mgr);

  // The handle built before the blow-up is intact and evaluable.
  std::vector<std::uint8_t> assignment(16, 1);
  EXPECT_DOUBLE_EQ(survivor.eval(assignment), 15.0);

  // After a forced GC nothing dead remains and the table shrinks to
  // exactly the externally referenced DAGs.
  mgr.collect_garbage();
  EXPECT_EQ(mgr.dead_nodes(), 0u);
  EXPECT_EQ(mgr.unique_table_nodes(), mgr.live_nodes());

  // The manager still builds new functions afterwards.
  Add again = weighted_sum(mgr, 5);
  EXPECT_DOUBLE_EQ(again.eval(assignment), 31.0);
}

TEST(ExceptionSafety, InjectedFaultThenExactRebuildSucceeds) {
  auto governor = std::make_shared<Governor>();
  DdConfig config;
  config.governor = governor;
  DdManager mgr(10, config);

  // Arm a one-shot resource fault a little way into the construction, so
  // the throw comes from allocate_node underneath a recursive apply.
  governor->inject_fault(FaultKind::kResource,
                         governor->allocation_ticks() + 50);
  EXPECT_THROW(weighted_sum(mgr, 10), ResourceError);
  expect_table_consistent(mgr);

  mgr.collect_garbage();
  EXPECT_EQ(mgr.dead_nodes(), 0u);
  EXPECT_EQ(mgr.unique_table_nodes(), mgr.live_nodes());

  // The fault disarmed itself; the very same exact build now succeeds on
  // the same manager and computes correct values.
  Add f = weighted_sum(mgr, 10);
  std::vector<std::uint8_t> assignment(10, 0);
  assignment[3] = 1;
  assignment[7] = 1;
  EXPECT_DOUBLE_EQ(f.eval(assignment), 8.0 + 128.0);
  EXPECT_GT(governor->peak_live_nodes(), 0u);
}

TEST(ExceptionSafety, InjectedCancellationUnwindsCleanly) {
  auto governor = std::make_shared<Governor>();
  DdConfig config;
  config.governor = governor;
  DdManager mgr(12, config);

  governor->inject_fault(FaultKind::kCancel,
                         governor->allocation_ticks() + 30);
  EXPECT_THROW(weighted_sum(mgr, 12), CancelledError);
  expect_table_consistent(mgr);
  mgr.collect_garbage();
  EXPECT_EQ(mgr.unique_table_nodes(), mgr.live_nodes());
}

TEST(ExceptionSafety, ThrowDuringApproximationRebuild) {
  // The approximation rebuild allocates into the same manager; an injected
  // fault there must unwind without leaking the partial rebuild.
  auto governor = std::make_shared<Governor>();
  DdConfig governed;
  governed.governor = governor;
  DdManager gmgr(12, governed);
  Add g = weighted_sum(gmgr, 12);
  governor->inject_fault(FaultKind::kResource,
                         governor->allocation_ticks() + 20);
  EXPECT_THROW(approximate_to(g, 64, ApproxMode::kUpperBound), ResourceError);
  EXPECT_EQ(gmgr.unique_table_nodes(),
            gmgr.live_nodes() + gmgr.dead_nodes());

  // Original function unharmed, manager still works: the same
  // approximation succeeds now that the fault is disarmed.
  Add approx = approximate_to(g, 64, ApproxMode::kUpperBound);
  EXPECT_LE(approx.size(), 64u);
  // Upper-bound collapse dominates pointwise.
  std::vector<std::uint8_t> assignment(12, 1);
  EXPECT_GE(approx.eval(assignment), g.eval(assignment) - 1e-9);
}

TEST(ExceptionSafety, RepeatedFaultsDoNotAccumulateLeaks) {
  // Hammer the same manager with faults at varying depths; the node
  // population must return to the baseline every time once handles drop.
  auto governor = std::make_shared<Governor>();
  DdConfig config;
  config.governor = governor;
  DdManager mgr(10, config);

  mgr.collect_garbage();
  const std::size_t baseline = [&] {
    // Terminals 0/1 plus whatever the constant pool holds.
    return mgr.live_nodes();
  }();

  for (int round = 0; round < 8; ++round) {
    governor->inject_fault(FaultKind::kResource,
                           governor->allocation_ticks() + 10 + 17 * round);
    try {
      weighted_sum(mgr, 10);
      FAIL() << "fault did not fire in round " << round;
    } catch (const ResourceError&) {
    }
    expect_table_consistent(mgr);
  }
  mgr.collect_garbage();
  EXPECT_EQ(mgr.live_nodes(), baseline);
  EXPECT_EQ(mgr.unique_table_nodes(), mgr.live_nodes());
}

}  // namespace
}  // namespace cfpm::dd
