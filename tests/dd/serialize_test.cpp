#include "dd/serialize.hpp"

#include <gtest/gtest.h>

#include <locale>
#include <sstream>

#include "dd/manager.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::dd {
namespace {

Add sample_add(DdManager& mgr) {
  Add f = Add(mgr.bdd_var(0)).times(40.0) + Add(mgr.bdd_var(1)).times(50.0) +
          Add(mgr.bdd_var(0) & !mgr.bdd_var(2)).times(10.0);
  return f;
}

TEST(Serialize, RoundTripPreservesFunction) {
  DdManager mgr(3);
  Add f = sample_add(mgr);
  std::stringstream ss;
  write_add(ss, f);

  DdManager mgr2(3);
  Add g = read_add(ss, mgr2);
  ASSERT_EQ(g.size(), f.size());
  for (unsigned m = 0; m < 8; ++m) {
    std::uint8_t a[3] = {static_cast<std::uint8_t>(m & 1),
                         static_cast<std::uint8_t>((m >> 1) & 1),
                         static_cast<std::uint8_t>((m >> 2) & 1)};
    EXPECT_DOUBLE_EQ(g.eval(a), f.eval(a)) << "minterm " << m;
  }
}

TEST(Serialize, RoundTripIntoSameManagerIsIdentity) {
  DdManager mgr(3);
  Add f = sample_add(mgr);
  std::stringstream ss;
  write_add(ss, f);
  Add g = read_add(ss, mgr);
  EXPECT_EQ(f, g);  // hash-consing makes equality structural
}

TEST(Serialize, RandomRoundTrips) {
  Xoshiro256 rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    DdManager mgr(6);
    Add f = mgr.constant(0.0);
    for (int i = 0; i < 6; ++i) {
      Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(6)));
      Bdd w = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(6)));
      f = f + Add(v ^ w).times(rng.next_double() * 100.0);
    }
    std::stringstream ss;
    write_add(ss, f);
    DdManager mgr2(6);
    Add g = read_add(ss, mgr2);
    EXPECT_EQ(g.size(), f.size());
    EXPECT_NEAR(g.average(), f.average(), 1e-12);
    EXPECT_NEAR(g.max_value(), f.max_value(), 1e-12);
  }
}

TEST(Serialize, TerminalOnly) {
  DdManager mgr(1);
  Add f = mgr.constant(17.5);
  std::stringstream ss;
  write_add(ss, f);
  DdManager mgr2(1);
  Add g = read_add(ss, mgr2);
  EXPECT_TRUE(g.is_terminal_node());
  EXPECT_DOUBLE_EQ(g.terminal_value(), 17.5);
}

TEST(Serialize, CommentsAndBlankLinesTolerated) {
  std::stringstream ss;
  ss << "cfpm-add 1\n"
     << "# a comment\n\n"
     << "vars 2\n"
     << "nodes 3\n"
     << "0 T 0\n"
     << "1 T 5.5\n"
     << "2 N 1 1 0   # internal\n"
     << "root 2\n";
  DdManager mgr(2);
  Add f = read_add(ss, mgr);
  const std::uint8_t a1[2] = {0, 1};
  const std::uint8_t a0[2] = {0, 0};
  EXPECT_DOUBLE_EQ(f.eval(a1), 5.5);
  EXPECT_DOUBLE_EQ(f.eval(a0), 0.0);
}

TEST(Serialize, MalformedInputsThrow) {
  DdManager mgr(4);
  auto expect_parse_error = [&](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(read_add(ss, mgr), ParseError) << text;
  };
  expect_parse_error("");
  expect_parse_error("bogus header\n");
  expect_parse_error("cfpm-add 1\nvars 2\nnodes 0\nroot 0\n");
  expect_parse_error("cfpm-add 1\nvars 2\nnodes 1\n0 X 1\nroot 0\n");
  // Child referenced before definition.
  expect_parse_error(
      "cfpm-add 1\nvars 2\nnodes 2\n0 N 0 1 1\n1 T 3\nroot 0\n");
  // Variable out of declared range.
  expect_parse_error(
      "cfpm-add 1\nvars 1\nnodes 3\n0 T 0\n1 T 1\n2 N 1 0 1\nroot 2\n");
  // Duplicate id.
  expect_parse_error(
      "cfpm-add 1\nvars 2\nnodes 2\n0 T 0\n0 T 1\nroot 0\n");
  // Bad root.
  expect_parse_error("cfpm-add 1\nvars 2\nnodes 1\n0 T 2\nroot 5\n");
}


TEST(Serialize, BddWithComplementEdgesRoundTrips) {
  // x0 XOR x1 OR NOT x2: its BDD carries complement edges (the shared-x1
  // xor core and the negated literal), so the v2 writer must emit '!'
  // tokens and the reader must reconstruct the same shared shape.
  DdManager mgr(3);
  Bdd f = (mgr.bdd_var(0) ^ mgr.bdd_var(1)) | !mgr.bdd_var(2);
  std::stringstream ss;
  write_bdd(ss, f);
  EXPECT_NE(ss.str().find("cfpm-dd 2 bdd"), std::string::npos);
  EXPECT_NE(ss.str().find('!'), std::string::npos);

  DdManager mgr2(3);
  Bdd g = read_bdd(ss, mgr2);
  EXPECT_EQ(g.size(), f.size());
  for (unsigned m = 0; m < 8; ++m) {
    std::uint8_t a[3] = {static_cast<std::uint8_t>(m & 1),
                         static_cast<std::uint8_t>((m >> 1) & 1),
                         static_cast<std::uint8_t>((m >> 2) & 1)};
    EXPECT_EQ(g.eval(a), f.eval(a)) << "minterm " << m;
  }

  // Constant zero is a complemented root edge to the 1 terminal.
  std::stringstream zs;
  write_bdd(zs, mgr.bdd_zero());
  DdManager mgr3(3);
  Bdd z = read_bdd(zs, mgr3);
  EXPECT_TRUE(z.is_zero());
}

TEST(Serialize, AddWithManyTerminalsRoundTrips) {
  DdManager mgr(3);
  Add f = sample_add(mgr);  // leaves {0, 40, 50, 90, 100}
  ASSERT_GT(f.leaf_values().size(), 2u);
  std::stringstream ss;
  write_add(ss, f);
  EXPECT_NE(ss.str().find("cfpm-dd 2 add"), std::string::npos);
  EXPECT_EQ(ss.str().find('!'), std::string::npos);  // ADD edges are plain

  DdManager mgr2(3);
  Add g = read_add(ss, mgr2);
  EXPECT_EQ(g.leaf_values(), f.leaf_values());
  for (unsigned m = 0; m < 8; ++m) {
    std::uint8_t a[3] = {static_cast<std::uint8_t>(m & 1),
                         static_cast<std::uint8_t>((m >> 1) & 1),
                         static_cast<std::uint8_t>((m >> 2) & 1)};
    EXPECT_DOUBLE_EQ(g.eval(a), f.eval(a)) << "minterm " << m;
  }
}

TEST(Serialize, V1GoldenFileStillReads) {
  // A frozen v1 payload (as written by the pre-complement-edge release);
  // new code must keep loading vendor models shipped in that format.
  std::stringstream ss;
  ss << "cfpm-add 1\n"
     << "vars 3\n"
     << "order 2 0 1\n"
     << "nodes 5\n"
     << "0 T 0\n"
     << "1 T 7.25\n"
     << "2 N 1 1 0\n"   // g(x1) = x1 ? 7.25 : 0
     << "3 N 0 2 0\n"   // h = x0 ? g : 0
     << "4 N 2 3 2\n"   // f = x2 ? h : g
     << "root 4\n";
  DdManager mgr(3);
  Add f = read_add(ss, mgr);
  EXPECT_EQ(mgr.var_at_level(0), 2u);
  const std::uint8_t a110[3] = {1, 1, 0};  // x2=0 -> g, x1=1 -> 7.25
  const std::uint8_t a011[3] = {0, 1, 1};  // x2=1 -> h, x0=0 -> 0
  const std::uint8_t a111[3] = {1, 1, 1};  // x2=1 -> h -> g, x1=1 -> 7.25
  EXPECT_DOUBLE_EQ(f.eval(a110), 7.25);
  EXPECT_DOUBLE_EQ(f.eval(a011), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(a111), 7.25);
}

TEST(Serialize, CorruptHeadersAndKindMismatchesRejected) {
  DdManager mgr(2);
  auto expect_add_error = [&](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(read_add(ss, mgr), ParseError) << text;
  };
  auto expect_bdd_error = [&](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(read_bdd(ss, mgr), ParseError) << text;
  };
  const std::string body = "vars 1\nnodes 1\n0 T 1\nroot 0\n";
  expect_add_error("cfpm-dd 3 add\n" + body);    // unknown version
  expect_add_error("cfpm-dd 2 zdd\n" + body);    // unknown kind
  expect_add_error("cfpm-dd 2 add extra\n" + body);
  expect_add_error("cfpm-dd 2 bdd\n" + body);    // kind mismatch vs caller
  expect_bdd_error("cfpm-dd 2 add\n" + body);
  expect_bdd_error("cfpm-add 1\n" + body);       // v1 files are ADD-only
  // Complement token outside the BDD fragment.
  expect_add_error(
      "cfpm-dd 2 add\nvars 1\nnodes 3\n0 T 0\n1 T 2\n2 N 0 !1 0\nroot 2\n");
  // BDD terminal other than 1.
  expect_bdd_error("cfpm-dd 2 bdd\nvars 1\nnodes 1\n0 T 0.5\nroot 0\n");
}

TEST(Serialize, RoundTripAfterSifting) {
  // Sifting changes the variable order; the format must carry it so a
  // fresh manager reproduces the same function.
  DdManager mgr(6);
  Xoshiro256 rng(505);
  Add f = mgr.constant(0.0);
  for (int i = 0; i < 8; ++i) {
    Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(6)));
    Bdd w = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(6)));
    f = f + Add(v & !w).times(1.0 + static_cast<double>(rng.next_below(9)));
  }
  std::vector<double> table;
  for (unsigned m = 0; m < 64; ++m) {
    std::uint8_t a[6];
    for (unsigned v = 0; v < 6; ++v) a[v] = (m >> v) & 1u;
    table.push_back(f.eval(std::span<const std::uint8_t>(a, 6)));
  }
  mgr.sift();

  std::stringstream ss;
  write_add(ss, f);
  DdManager mgr2(6);
  Add g = read_add(ss, mgr2);
  for (unsigned m = 0; m < 64; ++m) {
    std::uint8_t a[6];
    for (unsigned v = 0; v < 6; ++v) a[v] = (m >> v) & 1u;
    ASSERT_DOUBLE_EQ(g.eval(std::span<const std::uint8_t>(a, 6)), table[m])
        << "minterm " << m;
  }
}

TEST(Serialize, ManagerWithTooFewVarsRejected) {
  DdManager big(4);
  Add f = Add(big.bdd_var(3));
  std::stringstream ss;
  write_add(ss, f);
  DdManager small(2);
  EXPECT_THROW(read_add(ss, small), ParseError);
}

// ---------------------------------------------------------------------------
// Locale independence. The format is defined over the "C" decimal syntax;
// an imbued (or global) comma-decimal locale must change neither what is
// written nor how it is parsed. The writer/reader use to_chars/from_chars,
// so both tests demand BIT-exact terminals, not approximate ones.
// ---------------------------------------------------------------------------

/// Decimal comma + thousands grouping, as in de_DE — but available
/// everywhere, unlike the named system locale.
struct CommaNumpunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// 0.1 etc. are not representable in binary: any parse/format that loses a
/// bit (or honors the locale) breaks the equality below.
Add awkward_add(DdManager& mgr) {
  return Add(mgr.bdd_var(0)).times(0.1) + Add(mgr.bdd_var(1)).times(12345.675) +
         Add(mgr.bdd_var(0) & mgr.bdd_var(2)).times(1.0 / 3.0);
}

void expect_bit_exact(const Add& f, const Add& g) {
  for (unsigned m = 0; m < 8; ++m) {
    std::uint8_t a[3] = {static_cast<std::uint8_t>(m & 1),
                         static_cast<std::uint8_t>((m >> 1) & 1),
                         static_cast<std::uint8_t>((m >> 2) & 1)};
    EXPECT_EQ(g.eval(a), f.eval(a)) << "minterm " << m;  // bitwise, not near
  }
}

TEST(Serialize, RoundTripBitExactUnderImbuedCommaLocale) {
  DdManager mgr(3);
  const Add f = awkward_add(mgr);

  std::stringstream ss;
  ss.imbue(std::locale(std::locale::classic(), new CommaNumpunct));
  write_add(ss, f);
  // The payload must be locale-independent: no comma decimal points, no
  // thousands grouping, whatever the stream's locale says.
  EXPECT_EQ(ss.str().find(','), std::string::npos) << ss.str();

  DdManager mgr2(3);
  const Add g = read_add(ss, mgr2);
  expect_bit_exact(f, g);
}

TEST(Serialize, RoundTripBitExactUnderGlobalCommaLocale) {
  std::locale de;
  try {
    de = std::locale("de_DE.UTF-8");
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  }
  const std::locale previous = std::locale::global(de);
  struct Restore {
    std::locale saved;
    ~Restore() { std::locale::global(saved); }
  } restore{previous};

  DdManager mgr(3);
  const Add f = awkward_add(mgr);
  std::stringstream ss;  // picks up the global locale
  write_add(ss, f);
  EXPECT_EQ(ss.str().find(','), std::string::npos) << ss.str();

  DdManager mgr2(3);
  const Add g = read_add(ss, mgr2);
  expect_bit_exact(f, g);
}

TEST(Serialize, CommaDecimalTerminalIsRejectedNotMisparsed) {
  // Under the old `ss >> value` reader an imbued stream would happily
  // parse "1,5" as 1.5 (or as 1). The from_chars reader must reject it.
  std::istringstream in(
      "cfpm-dd 2 add\nvars 1\nnodes 1\n0 T 1,5\nroot 0\n");
  in.imbue(std::locale(std::locale::classic(), new CommaNumpunct));
  DdManager mgr(1);
  EXPECT_THROW(read_add(in, mgr), ParseError);
}

// ---------------------------------------------------------------------------
// CRC trailer (v2). Written files end in "crc <8 hex>"; a reader must reject
// a mismatch as a typed ParseError — never return a silently wrong DD — while
// trailerless v2 files (pre-trailer era) and v1 files keep loading.
// ---------------------------------------------------------------------------

TEST(Serialize, WriterEmitsCrcTrailerAndRoundTrips) {
  DdManager mgr(3);
  const Add f = sample_add(mgr);
  std::stringstream ss;
  write_add(ss, f);
  const std::string text = ss.str();
  // Last line is the trailer: "crc " + 8 hex digits.
  const auto pos = text.rfind("crc ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(text.substr(pos).size(), 4 + 8 + 1);  // "crc " + hex + '\n'

  DdManager mgr2(3);
  const Add g = read_add(ss, mgr2);
  EXPECT_EQ(g.size(), f.size());
}

TEST(Serialize, FlippedPayloadDigitFailsTheChecksum) {
  DdManager mgr(3);
  std::stringstream ss;
  write_add(ss, sample_add(mgr));
  std::string text = ss.str();
  // Corrupt one terminal value (40 -> 41): still perfectly parseable, so
  // only the checksum can catch it.
  const auto pos = text.find("T 40");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 3] = '1';

  std::istringstream corrupted(text);
  DdManager mgr2(3);
  try {
    read_add(corrupted, mgr2);
    FAIL() << "corrupted payload was accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, TrailerlessV2FileStillLoads) {
  DdManager mgr(3);
  const Add f = sample_add(mgr);
  std::stringstream ss;
  write_add(ss, f);
  std::string text = ss.str();
  const auto pos = text.rfind("crc ");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos);  // the pre-trailer on-disk format

  std::istringstream old(text);
  DdManager mgr2(3);
  const Add g = read_add(old, mgr2);
  EXPECT_EQ(g.size(), f.size());
}

TEST(Serialize, MalformedCrcTrailerRejected) {
  DdManager mgr(3);
  std::stringstream ss;
  write_add(ss, sample_add(mgr));
  std::string text = ss.str();
  const auto pos = text.rfind("crc ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string::npos, "crc zzzzzzzz\n");

  std::istringstream bad(text);
  DdManager mgr2(3);
  EXPECT_THROW(read_add(bad, mgr2), ParseError);
}

TEST(Serialize, TruncationMidNodesIsATypedError) {
  DdManager mgr(3);
  std::stringstream ss;
  write_add(ss, sample_add(mgr));
  const std::string text = ss.str();
  // Every proper prefix must fail with ParseError — a torn file (crash or
  // full disk under the old non-atomic writer) can never parse as a
  // smaller-but-valid DD because the node count is declared up front.
  for (const double frac : {0.3, 0.5, 0.7}) {
    std::istringstream torn(
        text.substr(0, static_cast<std::size_t>(frac * text.size())));
    DdManager mgr2(3);
    EXPECT_THROW(read_add(torn, mgr2), ParseError) << "fraction " << frac;
  }
}

TEST(Serialize, HandAnnotatedFileStillVerifiesItsTrailer) {
  // The CRC covers the canonical form of each line (comments stripped,
  // whitespace trimmed), so a user annotating a model file by hand does not
  // invalidate the checksum.
  DdManager mgr(3);
  const Add f = sample_add(mgr);
  std::stringstream ss;
  write_add(ss, f);
  std::string text = "# hand-written banner\n" + ss.str();
  const auto pos = text.find("\nvars");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + 1, "  \t ");  // leading whitespace on the vars line

  std::istringstream annotated(text);
  DdManager mgr2(3);
  const Add g = read_add(annotated, mgr2);
  EXPECT_EQ(g.size(), f.size());
}

TEST(Serialize, ConcatenatedDdsBothReadFromOneStream) {
  // The power-model format embeds a DD mid-file, so the trailer lookahead
  // must never consume a line that belongs to the next section.
  DdManager mgr(3);
  const Add f = sample_add(mgr);
  std::stringstream ss;
  write_add(ss, f);
  write_add(ss, f);
  ss << "EPILOGUE\n";

  DdManager mgr2(3);
  const Add a = read_add(ss, mgr2);
  const Add b = read_add(ss, mgr2);
  EXPECT_EQ(a, b);
  std::string rest;
  ASSERT_TRUE(std::getline(ss, rest));
  EXPECT_EQ(rest, "EPILOGUE");
}

TEST(Serialize, TrailerlessDdLeavesFollowingLinesUntouched) {
  // Same mid-file scenario for a legacy trailerless v2 payload: the reader
  // peeks one line, sees it is not a crc trailer, and seeks back.
  DdManager mgr(3);
  const Add f = sample_add(mgr);
  std::stringstream body;
  write_add(body, f);
  std::string text = body.str();
  const auto pos = text.rfind("crc ");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos);

  std::stringstream ss(text + "load 12.5\n");
  DdManager mgr2(3);
  const Add g = read_add(ss, mgr2);
  EXPECT_EQ(g.size(), f.size());
  std::string rest;
  ASSERT_TRUE(std::getline(ss, rest));
  EXPECT_EQ(rest, "load 12.5");
}

}  // namespace
}  // namespace cfpm::dd
