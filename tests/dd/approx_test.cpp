// Node-collapsing approximation invariants (Section 3).
#include "dd/approx.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dd/manager.hpp"
#include "dd/stats.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::dd {
namespace {

constexpr std::size_t kVars = 6;

Add random_capacitance_like(DdManager& mgr, Xoshiro256& rng, int terms = 8) {
  // Sum of weighted products, mimicking Eq. 4 contributions.
  Add f = mgr.constant(0.0);
  for (int i = 0; i < terms; ++i) {
    Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
    Bdd w = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
    Bdd u = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
    Bdd prod = rng.next_bool(0.5) ? (v & !w) : ((v ^ w) & u);
    f = f + Add(prod).times(5.0 + static_cast<double>(rng.next_below(20)));
  }
  return f;
}

class ApproxRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxRandomTest, SizeBudgetIsRespected) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam());
  Add f = random_capacitance_like(mgr, rng);
  for (std::size_t budget : {50u, 20u, 10u, 5u, 2u, 1u}) {
    const ApproxResult r = approximate(f, budget, ApproxMode::kAverage);
    EXPECT_LE(r.final_size, budget) << "budget " << budget;
    EXPECT_EQ(r.function.size(), r.final_size);
  }
}

TEST_P(ApproxRandomTest, AverageModePreservesGlobalAverage) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x1111);
  Add f = random_capacitance_like(mgr, rng);
  const double avg = f.average();
  for (std::size_t budget : {20u, 5u, 1u}) {
    Add g = approximate_to(f, budget, ApproxMode::kAverage);
    EXPECT_NEAR(g.average(), avg, 1e-9 * (1.0 + std::abs(avg)))
        << "budget " << budget;
  }
}

TEST_P(ApproxRandomTest, UpperBoundModeDominatesPointwise) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x2222);
  Add f = random_capacitance_like(mgr, rng);
  for (std::size_t budget : {30u, 10u, 3u, 1u}) {
    Add g = approximate_to(f, budget, ApproxMode::kUpperBound);
    for (unsigned m = 0; m < (1u << kVars); ++m) {
      std::uint8_t a[kVars];
      for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
      const std::span<const std::uint8_t> sp(a, kVars);
      EXPECT_GE(g.eval(sp) + 1e-12, f.eval(sp))
          << "budget " << budget << " minterm " << m;
    }
    // The bound never exceeds the true global maximum... of itself; but its
    // max must equal at least f's max and at most sum of collapsed maxima:
    EXPECT_GE(g.max_value() + 1e-12, f.max_value());
  }
}

TEST_P(ApproxRandomTest, FullCollapseYieldsConstantEstimators) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x3333);
  Add f = random_capacitance_like(mgr, rng);
  Add avg1 = approximate_to(f, 1, ApproxMode::kAverage);
  ASSERT_TRUE(avg1.is_terminal_node());
  EXPECT_NEAR(avg1.terminal_value(), f.average(), 1e-9);
  Add max1 = approximate_to(f, 1, ApproxMode::kUpperBound);
  ASSERT_TRUE(max1.is_terminal_node());
  EXPECT_DOUBLE_EQ(max1.terminal_value(), f.max_value());
}

TEST_P(ApproxRandomTest, ErrorBoundedByVarianceAndGrowsTowardIt) {
  // For the average strategy, the mean-square error of any collapse set is
  // at most var(f) (achieved by the full collapse), and the full collapse
  // is never better than a milder one in this greedy scheme.
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x4444);
  Add f = random_capacitance_like(mgr, rng);
  auto mse_of = [&](std::size_t budget) {
    Add g = approximate_to(f, budget, ApproxMode::kAverage);
    Add diff = f - g;
    return (diff * diff).average();
  };
  const double var = f.variance();
  const double mse_mild = mse_of(64);
  const double mse_full = mse_of(1);
  EXPECT_NEAR(mse_full, var, 1e-9 * (1.0 + var));  // full collapse == variance
  EXPECT_LE(mse_mild, mse_full + 1e-9);
  EXPECT_LE(mse_of(16), var + 1e-9);
  EXPECT_LE(mse_of(4), var + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77));

TEST_P(ApproxRandomTest, QuantizeLeavesRespectsBudgetAndMean) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x9999);
  Add f = random_capacitance_like(mgr, rng, 10);
  const double avg = f.average();
  for (std::size_t leaves : {8u, 4u, 2u, 1u}) {
    Add q = quantize_leaves(f, leaves, ApproxMode::kAverage);
    EXPECT_LE(q.leaf_values().size(), leaves);
    EXPECT_LE(q.size(), f.size());
    // Mass-weighted merging preserves the global mean exactly.
    EXPECT_NEAR(q.average(), avg, 1e-9 * (1.0 + avg)) << leaves;
  }
}

TEST_P(ApproxRandomTest, QuantizeLeavesUpperBoundDominates) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0xaaaa);
  Add f = random_capacitance_like(mgr, rng, 10);
  for (std::size_t leaves : {6u, 3u, 1u}) {
    Add q = quantize_leaves(f, leaves, ApproxMode::kUpperBound);
    EXPECT_LE(q.leaf_values().size(), leaves);
    for (unsigned m = 0; m < (1u << kVars); ++m) {
      std::uint8_t a[kVars];
      for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
      const std::span<const std::uint8_t> sp(a, kVars);
      ASSERT_GE(q.eval(sp) + 1e-12, f.eval(sp)) << leaves << " " << m;
    }
    // The bound never exceeds the true maximum (merging is upward but
    // capped at existing values).
    EXPECT_DOUBLE_EQ(q.max_value(), f.max_value());
  }
}

TEST(Approx, QuantizeLeavesOnConstantIsIdentity) {
  DdManager mgr(2);
  Add c = mgr.constant(7.0);
  Add q = quantize_leaves(c, 1, ApproxMode::kAverage);
  EXPECT_TRUE(q.is_terminal_node());
  EXPECT_DOUBLE_EQ(q.terminal_value(), 7.0);
}

TEST(Approx, QuantizeLeavesSingleLeafIsMassWeightedMean) {
  DdManager mgr(2);
  // f = 12 when x0 else 0: mean 6 regardless of the (skewed) leaf set.
  Add f = Add(mgr.bdd_var(0)).times(12.0);
  Add q = quantize_leaves(f, 1, ApproxMode::kAverage);
  ASSERT_TRUE(q.is_terminal_node());
  EXPECT_DOUBLE_EQ(q.terminal_value(), 6.0);
}

TEST(Approx, NoOpWhenAlreadySmall) {
  DdManager mgr(2);
  Add f = Add(mgr.bdd_var(0)).times(3.0);
  const ApproxResult r = approximate(f, 100, ApproxMode::kAverage);
  EXPECT_EQ(r.function, f);
  EXPECT_EQ(r.collapsed, 0u);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Approx, BudgetZeroRejected) {
  DdManager mgr(2);
  Add f = Add(mgr.bdd_var(0));
  EXPECT_THROW(approximate(f, 0, ApproxMode::kAverage), ContractError);
}

TEST(Approx, PaperExampleCollapsesMinVarianceNode) {
  // Fig. 4/5: when x^i = 00 the sub-function over x^f is {0,10,10,10};
  // avg 7.5, var 18.75. Average-collapse replaces it by 7.5, max-collapse
  // by 10.
  DdManager mgr(2);
  Bdd x = mgr.bdd_var(0);
  Bdd y = mgr.bdd_var(1);
  Add sub = Add(x | y).times(10.0);  // 0 iff x=y=0
  EXPECT_DOUBLE_EQ(sub.average(), 7.5);
  EXPECT_DOUBLE_EQ(sub.variance(), 18.75);
  Add avg_collapsed = approximate_to(sub, 1, ApproxMode::kAverage);
  EXPECT_DOUBLE_EQ(avg_collapsed.terminal_value(), 7.5);
  Add max_collapsed = approximate_to(sub, 1, ApproxMode::kUpperBound);
  EXPECT_DOUBLE_EQ(max_collapsed.terminal_value(), 10.0);
}

TEST(Approx, AllMetricsRespectBudgetAndInvariants) {
  DdManager mgr(kVars);
  Xoshiro256 rng(404);
  Add f = random_capacitance_like(mgr, rng);
  const double avg = f.average();
  for (CollapseMetric metric :
       {CollapseMetric::kRelativeSpread, CollapseMetric::kVariance,
        CollapseMetric::kReachWeightedVariance}) {
    Add g = approximate_to(f, 12, ApproxMode::kAverage, metric);
    EXPECT_LE(g.size(), 12u);
    EXPECT_NEAR(g.average(), avg, 1e-9 * (1.0 + avg));  // mean preserved
    Add b = approximate_to(f, 12, ApproxMode::kUpperBound, metric);
    EXPECT_LE(b.size(), 12u);
    // Pointwise conservative regardless of the selection metric.
    for (unsigned m = 0; m < (1u << kVars); ++m) {
      std::uint8_t a[kVars];
      for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
      const std::span<const std::uint8_t> sp(a, kVars);
      ASSERT_GE(b.eval(sp) + 1e-12, f.eval(sp));
    }
  }
}

TEST(Approx, MetricsProduceDifferentSelections) {
  // Not a correctness requirement, but a sanity check that the metric
  // parameter is actually wired through: on a value-rich function the
  // collapse sets should differ.
  DdManager mgr(kVars);
  Xoshiro256 rng(77);
  Add f = random_capacitance_like(mgr, rng, 12);
  Add a = approximate_to(f, 15, ApproxMode::kAverage,
                         CollapseMetric::kRelativeSpread);
  Add b = approximate_to(f, 15, ApproxMode::kAverage,
                         CollapseMetric::kVariance);
  // Either the functions differ or (rarely) the greedy sets coincide;
  // assert only that both are valid approximations of bounded error.
  Add ea = f - a;
  Add eb = f - b;
  EXPECT_LE((ea * ea).average(), f.variance() + 1e-9);
  EXPECT_LE((eb * eb).average(), f.variance() + 1e-9);
}

TEST(Approx, ApproxCommutesWithAdditionInExpectation) {
  // avg(approx(a)) + avg(approx(b)) == avg(a + b) for the average strategy:
  // the guarantee behind Fig. 6's local approximations.
  DdManager mgr(kVars);
  Xoshiro256 rng(123);
  Add a = random_capacitance_like(mgr, rng, 4);
  Add b = random_capacitance_like(mgr, rng, 4);
  Add aa = approximate_to(a, 3, ApproxMode::kAverage);
  Add bb = approximate_to(b, 3, ApproxMode::kAverage);
  EXPECT_NEAR((aa + bb).average(), (a + b).average(), 1e-9);
  // And conservativeness composes for the max strategy.
  Add am = approximate_to(a, 3, ApproxMode::kUpperBound);
  Add bm = approximate_to(b, 3, ApproxMode::kUpperBound);
  EXPECT_GE((am + bm).max_value() + 1e-12, (a + b).max_value());
}

}  // namespace
}  // namespace cfpm::dd
