// Exhaustive correctness of BDD/ADD operators against truth-table oracles.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "dd/manager.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::dd {
namespace {

constexpr std::size_t kVars = 4;

/// Evaluates a handle for every assignment of kVars variables.
template <typename H, typename V>
std::vector<V> truth_table(const H& h,
                           V (*eval)(const H&, std::span<const std::uint8_t>)) {
  std::vector<V> table;
  for (unsigned m = 0; m < (1u << kVars); ++m) {
    std::uint8_t a[kVars];
    for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
    table.push_back(eval(h, std::span<const std::uint8_t>(a, kVars)));
  }
  return table;
}

std::vector<bool> bdd_table(const Bdd& f) {
  std::vector<bool> t;
  for (unsigned m = 0; m < (1u << kVars); ++m) {
    std::uint8_t a[kVars];
    for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
    t.push_back(f.eval(std::span<const std::uint8_t>(a, kVars)));
  }
  return t;
}

std::vector<double> add_table(const Add& f) {
  std::vector<double> t;
  for (unsigned m = 0; m < (1u << kVars); ++m) {
    std::uint8_t a[kVars];
    for (unsigned v = 0; v < kVars; ++v) a[v] = (m >> v) & 1u;
    t.push_back(f.eval(std::span<const std::uint8_t>(a, kVars)));
  }
  return t;
}

/// Builds a pseudo-random BDD over kVars variables.
Bdd random_bdd(DdManager& mgr, Xoshiro256& rng, int depth = 6) {
  Bdd f = rng.next_bool(0.5) ? mgr.bdd_one() : mgr.bdd_zero();
  for (int i = 0; i < depth; ++i) {
    Bdd v = mgr.bdd_var(static_cast<std::uint32_t>(rng.next_below(kVars)));
    switch (rng.next_below(4)) {
      case 0:
        f = f & v;
        break;
      case 1:
        f = f | v;
        break;
      case 2:
        f = f ^ v;
        break;
      default:
        f = !f ^ v;
        break;
    }
  }
  return f;
}

class ApplyRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApplyRandomTest, BooleanOperatorsMatchTruthTables) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam());
  Bdd f = random_bdd(mgr, rng);
  Bdd g = random_bdd(mgr, rng);
  const auto tf = bdd_table(f);
  const auto tg = bdd_table(g);

  const auto t_and = bdd_table(f & g);
  const auto t_or = bdd_table(f | g);
  const auto t_xor = bdd_table(f ^ g);
  const auto t_not = bdd_table(!f);
  for (std::size_t m = 0; m < tf.size(); ++m) {
    EXPECT_EQ(t_and[m], tf[m] && tg[m]) << "minterm " << m;
    EXPECT_EQ(t_or[m], tf[m] || tg[m]) << "minterm " << m;
    EXPECT_EQ(t_xor[m], tf[m] != tg[m]) << "minterm " << m;
    EXPECT_EQ(t_not[m], !tf[m]) << "minterm " << m;
  }
}

TEST_P(ApplyRandomTest, IteMatchesTruthTables) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  Bdd f = random_bdd(mgr, rng);
  Bdd g = random_bdd(mgr, rng);
  Bdd h = random_bdd(mgr, rng);
  const auto tf = bdd_table(f);
  const auto tg = bdd_table(g);
  const auto th = bdd_table(h);
  const auto t_ite = bdd_table(f.ite(g, h));
  for (std::size_t m = 0; m < tf.size(); ++m) {
    EXPECT_EQ(t_ite[m], tf[m] ? tg[m] : th[m]) << "minterm " << m;
  }
}

TEST_P(ApplyRandomTest, ArithmeticOperatorsMatchTables) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x5555);
  Add a = Add(random_bdd(mgr, rng)).times(2.5) + Add(random_bdd(mgr, rng));
  Add b = Add(random_bdd(mgr, rng)).times(-1.25) +
          Add(random_bdd(mgr, rng)).times(4.0);
  const auto ta = add_table(a);
  const auto tb = add_table(b);
  const auto t_sum = add_table(a + b);
  const auto t_diff = add_table(a - b);
  const auto t_prod = add_table(a * b);
  const auto t_max = add_table(a.max(b));
  const auto t_min = add_table(a.min(b));
  for (std::size_t m = 0; m < ta.size(); ++m) {
    EXPECT_DOUBLE_EQ(t_sum[m], ta[m] + tb[m]) << m;
    EXPECT_DOUBLE_EQ(t_diff[m], ta[m] - tb[m]) << m;
    EXPECT_DOUBLE_EQ(t_prod[m], ta[m] * tb[m]) << m;
    EXPECT_DOUBLE_EQ(t_max[m], std::max(ta[m], tb[m])) << m;
    EXPECT_DOUBLE_EQ(t_min[m], std::min(ta[m], tb[m])) << m;
  }
}

TEST_P(ApplyRandomTest, CofactorShannonExpansion) {
  DdManager mgr(kVars);
  Xoshiro256 rng(GetParam() ^ 0x77);
  Bdd f = random_bdd(mgr, rng);
  for (std::uint32_t v = 0; v < kVars; ++v) {
    Bdd f1 = f.cofactor(v, true);
    Bdd f0 = f.cofactor(v, false);
    // Shannon: f == ite(v, f1, f0).
    Bdd rebuilt = mgr.bdd_var(v).ite(f1, f0);
    EXPECT_EQ(f, rebuilt) << "variable " << v;
    // Cofactors do not depend on v.
    for (std::uint32_t s : f1.support()) EXPECT_NE(s, v);
    for (std::uint32_t s : f0.support()) EXPECT_NE(s, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApplyRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Apply, IdempotenceAndIdentities) {
  DdManager mgr(3);
  Bdd x = mgr.bdd_var(0);
  Bdd y = mgr.bdd_var(1);
  EXPECT_EQ(x & x, x);
  EXPECT_EQ(x | x, x);
  EXPECT_TRUE((x ^ x).is_zero());
  EXPECT_EQ(x & mgr.bdd_one(), x);
  EXPECT_TRUE((x & mgr.bdd_zero()).is_zero());
  EXPECT_EQ(x | mgr.bdd_zero(), x);
  EXPECT_TRUE((x | mgr.bdd_one()).is_one());
  EXPECT_EQ(!(!x), x);
  EXPECT_EQ(x & y, y & x);
  EXPECT_EQ(x | y, y | x);
}

TEST(Apply, DeMorgan) {
  DdManager mgr(4);
  Bdd x = mgr.bdd_var(0);
  Bdd y = mgr.bdd_var(1);
  EXPECT_EQ(!(x & y), (!x) | (!y));
  EXPECT_EQ(!(x | y), (!x) & (!y));
}

TEST(Apply, AddIdentities) {
  DdManager mgr(3);
  Add x = Add(mgr.bdd_var(0));
  Add zero = mgr.constant(0.0);
  Add one = mgr.constant(1.0);
  EXPECT_EQ(x + zero, x);
  EXPECT_EQ(x * one, x);
  EXPECT_EQ(x * zero, zero);
  EXPECT_EQ(x.max(x), x);
  EXPECT_EQ(x.min(x), x);
  EXPECT_EQ(x - zero, x);
  EXPECT_EQ((x - x).max(zero), zero);
}

TEST(Apply, MixedManagerOperandsRejected) {
  DdManager m1(2), m2(2);
  Bdd a = m1.bdd_var(0);
  Bdd b = m2.bdd_var(0);
  EXPECT_THROW((void)(a & b), ContractError);
}

TEST(Apply, TimesDistributesOverPlus) {
  DdManager mgr(4);
  Add a = Add(mgr.bdd_var(0)).times(3.0);
  Add b = Add(mgr.bdd_var(1)).times(7.0);
  EXPECT_EQ((a + b).times(2.0), a.times(2.0) + b.times(2.0));
}

}  // namespace
}  // namespace cfpm::dd
