#include "power/baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"
#include "support/error.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

struct Fixture {
  Netlist n = netlist::gen::ripple_carry_adder(4);
  GateLibrary lib = GateLibrary::standard();
  sim::GateLevelSimulator simulator{n, lib};
  sim::InputSequence seq = stats::MarkovSequenceGenerator({0.5, 0.5}, 77)
                               .generate(n.num_inputs(), 4000);
  Characterizer chr{simulator, seq};
};

TEST(ConstantModel, MatchesObservedMean) {
  Fixture f;
  const ConstantModel con = f.chr.fit_constant();
  const sim::SequenceEnergy energy = f.simulator.simulate(f.seq);
  EXPECT_DOUBLE_EQ(con.value_ff(), energy.average_ff());
  // Constant everywhere.
  std::vector<std::uint8_t> a(f.n.num_inputs(), 0), b(f.n.num_inputs(), 1);
  EXPECT_DOUBLE_EQ(con.estimate_ff(a, b), con.value_ff());
  EXPECT_DOUBLE_EQ(con.estimate_ff(b, a), con.value_ff());
  EXPECT_DOUBLE_EQ(con.worst_case_ff(), con.value_ff());
  EXPECT_FALSE(con.is_upper_bound());
}

TEST(ConstantModel, AverageOverAnySequenceIsConstant) {
  Fixture f;
  const ConstantModel con = f.chr.fit_constant();
  const auto other =
      stats::MarkovSequenceGenerator({0.5, 0.1}, 5).generate(f.n.num_inputs(), 500);
  EXPECT_NEAR(con.average_over(other), con.value_ff(),
              1e-9 * con.value_ff());
  EXPECT_DOUBLE_EQ(con.peak_over(other), con.value_ff());
}

TEST(LinearModel, InSampleBetterThanConstant) {
  Fixture f;
  const ConstantModel con = f.chr.fit_constant();
  const LinearModel lin = f.chr.fit_linear();
  const sim::SequenceEnergy energy = f.simulator.simulate(f.seq);
  // In-sample RMS error of Lin <= Con (least squares with intercept).
  double se_con = 0.0, se_lin = 0.0;
  std::vector<std::uint8_t> xi(f.n.num_inputs()), xf(f.n.num_inputs());
  for (std::size_t t = 0; t + 1 < f.seq.length(); ++t) {
    f.seq.vector_at(t, xi);
    f.seq.vector_at(t + 1, xf);
    const double truth = energy.per_transition_ff[t];
    const double ec = con.estimate_ff(xi, xf) - truth;
    const double el = lin.estimate_ff(xi, xf) - truth;
    se_con += ec * ec;
    se_lin += el * el;
  }
  EXPECT_LE(se_lin, se_con * (1.0 + 1e-9));
}

TEST(LinearModel, EstimateUsesTransitionBits) {
  // On a buffer chain with unit loads, the switched cap of a rising input
  // is strictly more than a falling one, but Lin only sees |toggle|; still
  // the fitted coefficient must be positive for a toggling input.
  Fixture f;
  const LinearModel lin = f.chr.fit_linear();
  EXPECT_EQ(lin.num_inputs(), f.n.num_inputs());
  // More toggles must not decrease the estimate by much: coefficient sum
  // positive.
  double sum = 0.0;
  for (std::size_t j = 1; j < lin.coefficients().size(); ++j) {
    sum += lin.coefficients()[j];
  }
  EXPECT_GT(sum, 0.0);
}

TEST(LinearModel, RejectsTooFewCoefficients) {
  EXPECT_THROW(LinearModel(std::vector<double>{1.0}), ContractError);
}

TEST(LinearModel, WorstCaseSumsPositiveCoefficients) {
  LinearModel lin(std::vector<double>{2.0, 3.0, -1.0, 0.5});
  EXPECT_DOUBLE_EQ(lin.worst_case_ff(), 5.5);
}

TEST(ConstantBoundModel, IsUpperBoundFlagged) {
  ConstantBoundModel bound(123.0, 4);
  EXPECT_TRUE(bound.is_upper_bound());
  EXPECT_DOUBLE_EQ(bound.worst_case_ff(), 123.0);
  std::vector<std::uint8_t> v(4, 0);
  EXPECT_DOUBLE_EQ(bound.estimate_ff(v, v), 123.0);
}

TEST(Characterizer, RequiresTransitions) {
  Fixture f;
  sim::InputSequence one(f.n.num_inputs(), 1);
  EXPECT_THROW(Characterizer(f.simulator, one), ContractError);
}

TEST(Characterizer, ObservedStatsExposed) {
  Fixture f;
  const sim::SequenceEnergy energy = f.simulator.simulate(f.seq);
  EXPECT_DOUBLE_EQ(f.chr.observed_average_ff(), energy.average_ff());
  EXPECT_DOUBLE_EQ(f.chr.observed_peak_ff(), energy.peak_ff);
  EXPECT_GT(f.chr.observed_peak_ff(), f.chr.observed_average_ff());
}

TEST(Baselines, OutOfSampleErrorGrowsForCon) {
  // The paper's central criticism: characterize at st = 0.5, evaluate at
  // st = 0.1 -> Con grossly overestimates.
  Fixture f;
  const ConstantModel con = f.chr.fit_constant();
  const auto low_st =
      stats::MarkovSequenceGenerator({0.5, 0.1}, 9).generate(f.n.num_inputs(), 4000);
  const sim::SequenceEnergy energy = f.simulator.simulate(low_st);
  const double golden = energy.average_ff();
  const double re = std::abs(con.value_ff() - golden) / golden;
  EXPECT_GT(re, 0.5);  // large out-of-sample relative error
}

}  // namespace
}  // namespace cfpm::power
