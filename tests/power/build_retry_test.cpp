// Self-healing parallel build: injected per-cone faults are absorbed by the
// worker retry loop, exhausted retries fall back to a serial rebuild on the
// coordinator, persistent faults walk the degradation ladder — and none of
// it may change a single bit of the resulting model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "netlist/library.hpp"
#include "power/add_model.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"

namespace cfpm {
namespace {

netlist::Netlist multi_cone_netlist() {
  netlist::gen::RandomLogicSpec spec;
  spec.name = "retry_multi";
  spec.num_inputs = 7;
  spec.num_outputs = 4;  // several cone tasks to spread faults across
  spec.target_gates = 24;
  spec.window = 5;
  spec.seed = 9091;
  return netlist::gen::random_logic(spec);
}

netlist::Netlist single_cone_netlist() {
  netlist::gen::RandomLogicSpec spec;
  spec.name = "retry_single";
  spec.num_inputs = 6;
  spec.num_outputs = 1;  // exactly one task: fault placement is deterministic
  spec.target_gates = 18;
  spec.window = 5;
  spec.seed = 9092;
  return netlist::gen::random_logic(spec);
}

/// Fingerprints a model on random transitions for bitwise comparison.
std::vector<double> probe(const power::AddPowerModel& model,
                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> xi(model.num_inputs()), xf(model.num_inputs());
  std::vector<double> out;
  for (int p = 0; p < 64; ++p) {
    for (auto& b : xi) b = static_cast<std::uint8_t>(rng.next() & 1u);
    for (auto& b : xf) b = static_cast<std::uint8_t>(rng.next() & 1u);
    out.push_back(model.estimate_ff(xi, xf));
  }
  out.push_back(model.function().average());
  out.push_back(static_cast<double>(model.size()));
  return out;
}

/// Fast retry schedule so exhaustion tests do not sleep for real.
power::AddModelOptions fault_options(std::size_t threads) {
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  opt.build_threads = threads;
  opt.cone_retry.initial_backoff = std::chrono::milliseconds(0);
  opt.cone_retry.max_backoff = std::chrono::milliseconds(0);
  return opt;
}

class BuildRetry : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
    failpoint::disarm_all();
  }
  void TearDown() override { failpoint::disarm_all(); }
  const netlist::GateLibrary lib_ = netlist::GateLibrary::standard();
};

TEST_F(BuildRetry, TransientConeFaultIsRetriedTransparently) {
  const netlist::Netlist n = multi_cone_netlist();
  const auto clean = power::AddPowerModel::build(n, lib_, fault_options(4));
  ASSERT_EQ(clean.build_info().outcome, power::BuildOutcome::kClean);
  ASSERT_EQ(clean.build_info().cone_retries, 0u);

  failpoint::arm_from_spec("power.cone.build=throw_bad_alloc:1");
  const auto faulted = power::AddPowerModel::build(n, lib_, fault_options(4));
  EXPECT_EQ(faulted.build_info().outcome, power::BuildOutcome::kClean);
  EXPECT_EQ(faulted.build_info().cone_retries, 1u);
  EXPECT_EQ(faulted.build_info().cone_serial_rebuilds, 0u);
  EXPECT_EQ(probe(faulted, 0xfa17), probe(clean, 0xfa17))
      << "a retried cone changed the model";
}

TEST_F(BuildRetry, ExhaustedRetriesRebuildSeriallyOnTheCoordinator) {
  const netlist::Netlist n = single_cone_netlist();
  const auto clean = power::AddPowerModel::build(n, lib_, fault_options(2));

  // Default policy: 3 attempts. Budget of exactly 3 fires exhausts them,
  // parks the cone, and leaves the coordinator's serial rebuild to succeed.
  failpoint::arm_from_spec("power.cone.build=throw_resource:3");
  const auto healed = power::AddPowerModel::build(n, lib_, fault_options(2));
  EXPECT_EQ(healed.build_info().outcome, power::BuildOutcome::kClean);
  EXPECT_EQ(healed.build_info().cone_retries, 2u);
  EXPECT_EQ(healed.build_info().cone_serial_rebuilds, 1u);
  EXPECT_EQ(probe(healed, 0xfa18), probe(clean, 0xfa18))
      << "the serial rebuild changed the model";
}

TEST_F(BuildRetry, PersistentFaultWalksTheDegradationLadder) {
  const netlist::Netlist n = single_cone_netlist();
  power::AddModelOptions opt = fault_options(2);
  opt.max_nodes = 40;  // short halving ladder

  // Armed forever: worker retries, the serial rebuild, and every ladder
  // rung keep failing, so the build must surrender to the constant
  // fallback estimator — degraded, but never an exception to the caller.
  failpoint::arm_from_spec("power.cone.build=throw_resource:0");
  const auto model = power::AddPowerModel::build(n, lib_, opt);
  failpoint::disarm_all();
  EXPECT_EQ(model.build_info().outcome, power::BuildOutcome::kFallback);
  ASSERT_FALSE(model.build_info().rungs.empty());
  EXPECT_EQ(model.build_info().rungs.back().action, "fallback-constant");
  EXPECT_GT(model.worst_case_ff(), 0.0);
  // The fallback estimator is a constant: no transition dependence left.
  std::vector<std::uint8_t> a(n.num_inputs(), 0), b(n.num_inputs(), 1);
  EXPECT_DOUBLE_EQ(model.estimate_ff(a, a), model.estimate_ff(a, b));
}

TEST_F(BuildRetry, InjectedDeadlineIsNeverRetried) {
  const netlist::Netlist n = single_cone_netlist();
  power::AddModelOptions opt = fault_options(2);
  opt.degrade = false;  // surface the deadline instead of degrading

  failpoint::arm_from_spec("power.cone.build=throw_deadline:1");
  EXPECT_THROW(power::AddPowerModel::build(n, lib_, opt), DeadlineExceeded);
  // A retry would have spent more budget: exactly one fire happened.
  EXPECT_TRUE(failpoint::armed().empty());
}

TEST_F(BuildRetry, BitIdenticalAcrossThreadCountsUnderInjectedFaults) {
  const netlist::Netlist n = multi_cone_netlist();
  const auto reference =
      probe(power::AddPowerModel::build(n, lib_, fault_options(2)), 0xfa19);
  for (const std::size_t threads : {2u, 3u, 5u}) {
    failpoint::disarm_all();
    failpoint::arm_from_spec("power.cone.build=throw_bad_alloc:2");
    const auto model = power::AddPowerModel::build(n, lib_,
                                                   fault_options(threads));
    EXPECT_EQ(model.build_info().outcome, power::BuildOutcome::kClean);
    EXPECT_EQ(model.build_info().cone_retries, 2u);
    EXPECT_EQ(probe(model, 0xfa19), reference)
        << threads << " threads under faults diverged";
  }
}

}  // namespace
}  // namespace cfpm
