// Edge cases of RtlDesign composition: empty designs, shared-model
// aliasing with overlapping bus windows, sparse input maps, oversized bus
// spans, and bit-exact agreement between the one-shot, scratch, accumulate
// and breakdown evaluation paths (the chip evaluator depends on the
// left-fold association being identical in every path).
#include "power/rtl.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

std::shared_ptr<AddPowerModel> make_model(const Netlist& n,
                                          dd::ApproxMode mode,
                                          std::size_t max_nodes = 0) {
  AddModelOptions opt;
  opt.max_nodes = max_nodes;
  opt.mode = mode;
  return std::make_shared<AddPowerModel>(
      AddPowerModel::build(n, GateLibrary::standard(), opt));
}

std::vector<std::uint8_t> random_bits(std::size_t n, Xoshiro256& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next() & 1u);
  return v;
}

TEST(RtlDesignEdge, ZeroInstanceDesign) {
  RtlDesign design;
  EXPECT_EQ(design.num_instances(), 0u);
  EXPECT_EQ(design.bus_width(), 0u);
  EXPECT_EQ(design.max_instance_inputs(), 0u);

  // Empty spans satisfy size() >= bus_width() == 0.
  const std::span<const std::uint8_t> empty;
  EXPECT_EQ(design.estimate_ff(empty, empty), 0.0);
  EXPECT_TRUE(design.estimate_breakdown_ff(empty, empty).empty());

  RtlDesign::EvalScratch scratch;
  EXPECT_EQ(design.estimate_ff(empty, empty, scratch), 0.0);
  EXPECT_EQ(design.accumulate_ff(empty, empty, {}, scratch), 0.0);

  // Vacuously an upper bound with a zero worst case.
  EXPECT_TRUE(design.is_upper_bound());
  EXPECT_EQ(design.sum_of_worst_cases_ff(), 0.0);
}

TEST(RtlDesignEdge, SharedModelAliasedOverlappingWindows) {
  // Two instances of the same library model whose windows overlap on the
  // bus: the shared bits feed both instances from one stream (the chip
  // sibling-sharing scenario), so identical windows give identical
  // estimates and the total is their exact in-order sum.
  const Netlist adder = netlist::gen::ripple_carry_adder(2);  // 5 inputs
  auto model = make_model(adder, dd::ApproxMode::kAverage);
  RtlDesign design;
  design.add_instance("u0", model, {0, 1, 2, 3, 4});
  design.add_instance("u1", model, {2, 3, 4, 5, 6});  // shares bits 2..4
  design.add_instance("u2", model, {0, 1, 2, 3, 4});  // aliases u0 exactly
  EXPECT_EQ(design.bus_width(), 7u);

  Xoshiro256 rng(0x51aa);
  for (int trial = 0; trial < 32; ++trial) {
    const auto xi = random_bits(7, rng);
    const auto xf = random_bits(7, rng);
    const auto breakdown = design.estimate_breakdown_ff(xi, xf);
    ASSERT_EQ(breakdown.size(), 3u);
    // Exact aliases see exactly the same gathered transition.
    EXPECT_EQ(breakdown[0], breakdown[2]);
    // The total is the left-fold of the breakdown, bitwise.
    EXPECT_EQ(design.estimate_ff(xi, xf),
              (breakdown[0] + breakdown[1]) + breakdown[2]);
  }
}

TEST(RtlDesignEdge, SparseInputMapSetsBusWidthFromMaxBit) {
  const Netlist adder = netlist::gen::ripple_carry_adder(2);  // 5 inputs
  auto model = make_model(adder, dd::ApproxMode::kAverage);
  RtlDesign design;
  // Scattered, non-monotonic map: bit 23 forces a 24-bit bus even though
  // only 5 bits are ever read.
  design.add_instance("sparse", model, {17, 2, 23, 0, 9});
  EXPECT_EQ(design.bus_width(), 24u);

  // The estimate must equal the dense-design estimate of the gathered
  // transition (same model, same bits in map order).
  RtlDesign dense;
  dense.add_instance("dense", model, {0, 1, 2, 3, 4});
  Xoshiro256 rng(0x77);
  for (int trial = 0; trial < 16; ++trial) {
    const auto xi = random_bits(24, rng);
    const auto xf = random_bits(24, rng);
    const std::vector<std::uint8_t> gi = {xi[17], xi[2], xi[23], xi[0], xi[9]};
    const std::vector<std::uint8_t> gf = {xf[17], xf[2], xf[23], xf[0], xf[9]};
    EXPECT_EQ(design.estimate_ff(xi, xf), dense.estimate_ff(gi, gf));
  }
}

TEST(RtlDesignEdge, OversizedBusSpansAccepted) {
  // Spans wider than the bus are fine (the chip evaluator hands every
  // design the full chip bus; a block's design maps only its segment).
  const Netlist adder = netlist::gen::ripple_carry_adder(2);
  auto model = make_model(adder, dd::ApproxMode::kAverage);
  RtlDesign design;
  design.add_instance("u0", model, {0, 1, 2, 3, 4});
  ASSERT_EQ(design.bus_width(), 5u);

  std::vector<std::uint8_t> xi(64, 0), xf(64, 1);
  const double exact = design.estimate_ff(
      std::span<const std::uint8_t>(xi).first(5),
      std::span<const std::uint8_t>(xf).first(5));
  EXPECT_EQ(design.estimate_ff(xi, xf), exact);
}

TEST(RtlDesignEdge, UndersizedSpansAndAccumThrow) {
  const Netlist adder = netlist::gen::ripple_carry_adder(2);
  auto model = make_model(adder, dd::ApproxMode::kAverage);
  RtlDesign design;
  design.add_instance("u0", model, {0, 1, 2, 3, 4});

  std::vector<std::uint8_t> narrow(4, 0), wide(5, 0);
  EXPECT_THROW(design.estimate_ff(narrow, wide), ContractError);
  EXPECT_THROW(design.estimate_ff(wide, narrow), ContractError);
  EXPECT_THROW(design.estimate_breakdown_ff(narrow, narrow), ContractError);

  RtlDesign::EvalScratch scratch;
  std::vector<double> accum;  // needs >= num_instances() slots
  EXPECT_THROW(design.accumulate_ff(wide, wide, accum, scratch),
               ContractError);
}

TEST(RtlDesignEdge, AllEvaluationPathsAgreeBitwise) {
  // One-shot, scratch, accumulate and breakdown must produce bit-identical
  // totals: the sharded chip evaluator's determinism contract rests on the
  // per-transition fold being the same in every path.
  const Netlist adder = netlist::gen::ripple_carry_adder(2);  // 5 inputs
  const Netlist cmp = netlist::gen::magnitude_comparator(2);  // 4 inputs
  auto a = make_model(adder, dd::ApproxMode::kAverage);
  auto c = make_model(cmp, dd::ApproxMode::kAverage);
  RtlDesign design;
  design.add_instance("a0", a, {0, 1, 2, 3, 4});
  design.add_instance("c0", c, {3, 4, 5, 6});
  design.add_instance("a1", a, {5, 6, 7, 8, 9});

  RtlDesign::EvalScratch scratch;
  std::vector<double> accum(design.num_instances(), 0.0);
  std::vector<double> summed(design.num_instances(), 0.0);
  Xoshiro256 rng(0xbeef);
  for (int trial = 0; trial < 64; ++trial) {
    const auto xi = random_bits(10, rng);
    const auto xf = random_bits(10, rng);
    const double plain = design.estimate_ff(xi, xf);
    EXPECT_EQ(design.estimate_ff(xi, xf, scratch), plain);

    const double from_accum = design.accumulate_ff(xi, xf, accum, scratch);
    EXPECT_EQ(from_accum, plain);

    const auto breakdown = design.estimate_breakdown_ff(xi, xf);
    ASSERT_EQ(breakdown.size(), 3u);
    double fold = 0.0;
    for (std::size_t i = 0; i < breakdown.size(); ++i) {
      fold += breakdown[i];
      summed[i] += breakdown[i];
    }
    EXPECT_EQ(fold, plain);
  }
  // The running accumulator matches per-instance sums of the breakdowns.
  for (std::size_t i = 0; i < accum.size(); ++i) {
    EXPECT_EQ(accum[i], summed[i]);
  }
}

}  // namespace
}  // namespace cfpm::power
