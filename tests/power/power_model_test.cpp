#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include "power/baselines.hpp"
#include "support/error.hpp"

namespace cfpm::power {
namespace {

TEST(SupplyConfig, EnergyScalesWithVddSquared) {
  const SupplyConfig v33{3.3};
  const SupplyConfig v50{5.0};
  EXPECT_DOUBLE_EQ(v33.energy_fj(10.0), 3.3 * 3.3 * 10.0);
  EXPECT_DOUBLE_EQ(v50.energy_fj(10.0), 250.0);
  EXPECT_GT(v50.energy_fj(1.0), v33.energy_fj(1.0));
}

TEST(SupplyConfig, PowerIsEnergyPerPeriod) {
  const SupplyConfig v{2.0};
  // 25 fF/cycle at Vdd=2V -> 100 fJ; at 10 ns -> 10 uW.
  EXPECT_DOUBLE_EQ(v.power_uw(25.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(v.power_uw(25.0, 5.0), 20.0);
}

TEST(PowerModel, SequenceHelpersOnDegenerateSequences) {
  const ConstantModel con(7.0, 3);
  sim::InputSequence single(3, 1);  // no transitions
  EXPECT_DOUBLE_EQ(con.average_over(single), 0.0);
  EXPECT_DOUBLE_EQ(con.peak_over(single), 0.0);

  sim::InputSequence two(3, 2);  // exactly one transition
  EXPECT_DOUBLE_EQ(con.average_over(two), 7.0);
  EXPECT_DOUBLE_EQ(con.peak_over(two), 7.0);
}

TEST(PowerModel, SequenceHelpersRejectArityMismatch) {
  const ConstantModel con(7.0, 3);
  sim::InputSequence wrong(5, 4);
  EXPECT_THROW(con.average_over(wrong), ContractError);
  EXPECT_THROW(con.peak_over(wrong), ContractError);
}

}  // namespace
}  // namespace cfpm::power
