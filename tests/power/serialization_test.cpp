// Model save/load: the IP-protection back-annotation flow.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

AddPowerModel sample_model(dd::ApproxMode mode, std::size_t max_nodes) {
  const Netlist n = netlist::gen::magnitude_comparator(4);
  AddModelOptions opt;
  opt.max_nodes = max_nodes;
  opt.mode = mode;
  return AddPowerModel::build(n, GateLibrary::standard(), opt);
}

void expect_same_function(const AddPowerModel& a, const AddPowerModel& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  Xoshiro256 rng(13);
  std::vector<std::uint8_t> xi(a.num_inputs()), xf(a.num_inputs());
  for (int k = 0; k < 2000; ++k) {
    for (std::size_t i = 0; i < xi.size(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_DOUBLE_EQ(a.estimate_ff(xi, xf), b.estimate_ff(xi, xf)) << k;
  }
}

TEST(ModelSerialization, RoundTripExactModel) {
  const AddPowerModel m = sample_model(dd::ApproxMode::kAverage, 0);
  std::stringstream ss;
  m.save(ss);
  const AddPowerModel loaded = AddPowerModel::load(ss);
  EXPECT_EQ(loaded.size(), m.size());
  EXPECT_EQ(loaded.num_inputs(), m.num_inputs());
  EXPECT_FALSE(loaded.is_upper_bound());
  expect_same_function(m, loaded);
}

TEST(ModelSerialization, RoundTripBoundModelKeepsFlag) {
  const AddPowerModel m = sample_model(dd::ApproxMode::kUpperBound, 40);
  std::stringstream ss;
  m.save(ss);
  const AddPowerModel loaded = AddPowerModel::load(ss);
  EXPECT_TRUE(loaded.is_upper_bound());
  expect_same_function(m, loaded);
}

TEST(ModelSerialization, LoadedModelWorksWithoutNetlist) {
  // The loaded model must answer queries with no reference to the original
  // netlist object (IP decoupling): we only keep the stream's content.
  std::string blob;
  {
    const AddPowerModel m = sample_model(dd::ApproxMode::kAverage, 30);
    std::stringstream ss;
    m.save(ss);
    blob = ss.str();
  }
  std::stringstream ss(blob);
  const AddPowerModel loaded = AddPowerModel::load(ss);
  std::vector<std::uint8_t> xi(loaded.num_inputs(), 0),
      xf(loaded.num_inputs(), 1);
  EXPECT_GE(loaded.estimate_ff(xi, xf), 0.0);
}

TEST(ModelSerialization, SerializedFormDoesNotLeakNetlistNames) {
  // Only the circuit's name appears; no gate/signal identifiers leak.
  const Netlist n = netlist::gen::magnitude_comparator(4);
  AddModelOptions opt;
  opt.max_nodes = 0;
  const AddPowerModel m = AddPowerModel::build(n, GateLibrary::standard(), opt);
  std::stringstream ss;
  m.save(ss);
  const std::string text = ss.str();
  EXPECT_EQ(text.find("eqa"), std::string::npos);   // internal gate names
  EXPECT_EQ(text.find("NAND"), std::string::npos);  // gate types
}

TEST(ModelSerialization, CorruptHeaderRejected) {
  std::stringstream ss("not-a-model\n");
  EXPECT_THROW(AddPowerModel::load(ss), ParseError);
}

TEST(ModelSerialization, TruncatedStreamRejected) {
  const AddPowerModel m = sample_model(dd::ApproxMode::kAverage, 20);
  std::stringstream ss;
  m.save(ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(AddPowerModel::load(truncated), ParseError);
}

TEST(ModelSerialization, BadModeRejected) {
  std::stringstream ss(
      "cfpm-power-model 1\ncircuit x\ninputs 2\norder interleaved\n"
      "mode bogus\ncfpm-add 1\nvars 4\nnodes 1\n0 T 0\nroot 0\n");
  EXPECT_THROW(AddPowerModel::load(ss), ParseError);
}

TEST(ModelSerialization, CompressedCopiesSerializeIndependently) {
  const AddPowerModel m = sample_model(dd::ApproxMode::kAverage, 0);
  const AddPowerModel small = m.compress(10);
  std::stringstream s1, s2;
  m.save(s1);
  small.save(s2);
  const AddPowerModel l1 = AddPowerModel::load(s1);
  const AddPowerModel l2 = AddPowerModel::load(s2);
  EXPECT_EQ(l1.size(), m.size());
  EXPECT_EQ(l2.size(), small.size());
  expect_same_function(small, l2);
}

}  // namespace
}  // namespace cfpm::power
