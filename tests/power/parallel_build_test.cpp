// Cone-parallel model construction: the gate partition's structural
// invariants, bit-identical results across thread counts, and exact
// equality with the serial Fig. 6 loop when no approximation cuts in.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "netlist/library.hpp"
#include "power/add_model.hpp"
#include "power/cone_partition.hpp"
#include "support/rng.hpp"

namespace cfpm {
namespace {

netlist::Netlist random_netlist(int index) {
  netlist::gen::RandomLogicSpec spec;
  spec.name = "pbuild" + std::to_string(index);
  spec.num_inputs = 5 + index % 7;
  spec.num_outputs = 1 + index % 5;
  spec.target_gates = 15 + 3 * index;
  spec.window = 5;
  spec.seed = 4200 + static_cast<std::uint64_t>(index);
  return netlist::gen::random_logic(spec);
}

TEST(ConePartition, OwnsEveryGateExactlyOnceWithClosedSupport) {
  for (int i = 0; i < 12; ++i) {
    const netlist::Netlist n = random_netlist(i);
    const auto tasks = power::partition_gate_cones(n);
    SCOPED_TRACE("netlist " + std::to_string(i));

    std::set<netlist::SignalId> owned_union;
    for (const power::ConeTask& task : tasks) {
      EXPECT_FALSE(task.owned.empty()) << "empty partition emitted";
      EXPECT_TRUE(std::is_sorted(task.owned.begin(), task.owned.end()));
      EXPECT_TRUE(std::is_sorted(task.support.begin(), task.support.end()));
      for (const netlist::SignalId s : task.owned) {
        EXPECT_FALSE(n.is_input(s));
        EXPECT_TRUE(owned_union.insert(s).second)
            << "signal " << s << " owned twice";
      }
      // Support closure: owned ⊆ support, and every fanin of a support
      // gate is itself in the support (the worker can rebuild the cone
      // without reaching outside it).
      const std::set<netlist::SignalId> support(task.support.begin(),
                                                task.support.end());
      for (const netlist::SignalId s : task.owned) {
        EXPECT_TRUE(support.count(s));
      }
      for (const netlist::SignalId s : task.support) {
        if (n.is_input(s)) continue;
        for (const netlist::SignalId f : n.fanins(s)) {
          EXPECT_TRUE(support.count(f))
              << "support of task not transitively closed at " << s;
        }
      }
    }
    std::size_t non_inputs = 0;
    for (netlist::SignalId s = 0; s < n.num_signals(); ++s) {
      if (!n.is_input(s)) ++non_inputs;
    }
    EXPECT_EQ(owned_union.size(), non_inputs)
        << "partition does not cover every gate";
  }
}

/// Fingerprints a model on random transitions for bitwise comparison.
std::vector<double> probe(const power::AddPowerModel& model, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> xi(model.num_inputs()), xf(model.num_inputs());
  std::vector<double> out;
  for (int p = 0; p < 64; ++p) {
    for (auto& b : xi) b = static_cast<std::uint8_t>(rng.next() & 1u);
    for (auto& b : xf) b = static_cast<std::uint8_t>(rng.next() & 1u);
    out.push_back(model.estimate_ff(xi, xf));
  }
  out.push_back(model.function().average());
  out.push_back(static_cast<double>(model.size()));
  return out;
}

TEST(ParallelBuild, BitIdenticalAcrossThreadCounts) {
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  for (int i = 0; i < 8; ++i) {
    const netlist::Netlist n = random_netlist(i);
    power::AddModelOptions opt;
    // Mix exact and approximated builds: determinism must not depend on
    // whether the degradation machinery fires.
    opt.max_nodes = (i % 2 == 0) ? 0 : 40;
    opt.mode = (i % 4 < 2) ? dd::ApproxMode::kAverage
                           : dd::ApproxMode::kUpperBound;
    std::vector<std::vector<double>> prints;
    for (const std::size_t threads : {2u, 3u, 5u, 8u}) {
      opt.build_threads = threads;
      prints.push_back(
          probe(power::AddPowerModel::build(n, lib, opt), 0xf00d + i));
    }
    for (std::size_t k = 1; k < prints.size(); ++k) {
      EXPECT_EQ(prints[k], prints[0])
          << "netlist " << i << ": thread count changed the model";
    }
  }
}

TEST(ParallelBuild, ExactBuildEqualsSerialBitwise) {
  // With max_nodes=0 nothing is approximated, and the standard library's
  // integer pin loads make every per-path sum exact, so the serial loop
  // and the cone merge must agree to the last bit despite summing the
  // gates in different association orders.
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  for (int i = 0; i < 8; ++i) {
    const netlist::Netlist n = random_netlist(i);
    power::AddModelOptions opt;
    opt.max_nodes = 0;
    opt.build_threads = 1;
    const auto serial = probe(power::AddPowerModel::build(n, lib, opt),
                              0xbee5 + i);
    opt.build_threads = 4;
    const auto parallel = probe(power::AddPowerModel::build(n, lib, opt),
                                0xbee5 + i);
    EXPECT_EQ(parallel, serial) << "netlist " << i;
  }
}

TEST(ParallelBuild, SingleConeNetlistStillBuildsInParallelMode) {
  // One output cone -> one task; the parallel path must handle the
  // degenerate partition (and still match the serial build).
  netlist::gen::RandomLogicSpec spec;
  spec.name = "pbuild_single";
  spec.num_inputs = 6;
  spec.num_outputs = 1;
  spec.target_gates = 20;
  spec.window = 5;
  spec.seed = 77;
  const netlist::Netlist n = netlist::gen::random_logic(spec);
  ASSERT_EQ(n.outputs().size(), 1u);

  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  opt.build_threads = 1;
  const auto serial = probe(power::AddPowerModel::build(n, lib, opt), 0xabc);
  opt.build_threads = 8;
  const auto parallel = probe(power::AddPowerModel::build(n, lib, opt), 0xabc);
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace cfpm
