#include "power/rtl_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "support/error.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;

const GateLibrary kLib = GateLibrary::uniform(5.0, 10.0);

TEST(RtlIo, ParsesGeneratorBackedDesign) {
  std::istringstream is(R"(
design soc
bus 24
macro alu gen:c17 max=200
inst u0 alu 0-4
inst u1 alu 5 6 7 8 9
inst u2 alu 0 2 4 6 8
)");
  const RtlDescription d = read_rtl_design(is, kLib);
  EXPECT_EQ(d.name, "soc");
  EXPECT_EQ(d.design.num_instances(), 3u);
  EXPECT_EQ(d.design.bus_width(), 10u);
  EXPECT_EQ(d.instance_macros[0], "alu");
  EXPECT_EQ(d.design.instance_name(2), "u2");

  // The design estimates like three c17 models on shared bits.
  std::vector<std::uint8_t> xi(10, 0), xf(10, 1);
  EXPECT_GT(d.design.estimate_ff(xi, xf), 0.0);
}

TEST(RtlIo, LoadsSavedModels) {
  const std::string path = ::testing::TempDir() + "/rtl_io_c17.cfpm";
  {
    AddModelOptions opt;
    opt.max_nodes = 0;
    const auto model =
        AddPowerModel::build(netlist::gen::c17(), kLib, opt);
    std::ofstream out(path);
    model.save(out);
  }
  std::istringstream is("macro m " + path + "\ninst u m 0 1 2 3 4\n");
  const RtlDescription d = read_rtl_design(is, kLib);
  EXPECT_EQ(d.design.num_instances(), 1u);
  std::remove(path.c_str());
}

TEST(RtlIo, BoundMacrosComposeConservatively) {
  std::istringstream is(R"(
macro m gen:c17 max=100 bound
inst a m 0-4
inst b m 5-9
)");
  const RtlDescription d = read_rtl_design(is, kLib);
  EXPECT_TRUE(d.design.is_upper_bound());
  EXPECT_GT(d.design.sum_of_worst_cases_ff(), 0.0);
}

TEST(RtlIo, ErrorsAreSpecific) {
  auto expect_error = [&](const std::string& text, const char* what) {
    std::istringstream is(text);
    try {
      read_rtl_design(is, kLib);
      FAIL() << "expected failure: " << what;
    } catch (const ParseError&) {
    }
  };
  expect_error("inst u m 0 1\n", "undefined macro");
  expect_error("macro m gen:c17\ninst u m 0 1\n", "arity mismatch");
  expect_error("macro m gen:c17\nmacro m gen:c17\ninst u m 0-4\n",
               "duplicate macro");
  expect_error("macro m gen:c17\ninst u m 0-4\ninst u m 0-4\n",
               "duplicate instance");
  expect_error("macro m gen:c17\ninst u m 4-0\n", "empty range");
  expect_error("macro m gen:c17\ninst u m zero 1 2 3 4\n", "bad bit");
  expect_error("bus 3\nmacro m gen:c17\ninst u m 0-4\n", "narrow bus");
  expect_error("frobnicate\n", "unknown directive");
  expect_error("# empty\n", "no instances");
  expect_error("macro m nope.xyz\ninst u m 0-4\n", "unknown source");
}

TEST(RtlIo, MissingModelFileThrows) {
  std::istringstream is("macro m /does/not/exist.cfpm\ninst u m 0-4\n");
  EXPECT_THROW(read_rtl_design(is, kLib), Error);
}

}  // namespace
}  // namespace cfpm::power
