// Structural + residual partitioning (Section 2 of the paper), exercised
// against the glitch-aware unit-delay reference.
#include "power/residual.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "sim/unit_delay.hpp"
#include "stats/markov.hpp"
#include "support/error.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

struct Fixture {
  Netlist n = netlist::gen::mcnc_like("cm85");
  GateLibrary lib = GateLibrary::uniform(5.0, 10.0);
  sim::UnitDelaySimulator golden{n, lib, sim::DelayModel::standard()};
  std::shared_ptr<AddPowerModel> structural = [this] {
    AddModelOptions opt;
    opt.max_nodes = 500;
    return std::make_shared<AddPowerModel>(
        AddPowerModel::build(n, lib, opt));
  }();

  ResidualCalibratedModel calibrated(std::uint64_t seed = 99,
                                     std::size_t vectors = 3000) {
    stats::MarkovSequenceGenerator gen({0.5, 0.5}, seed);
    const sim::InputSequence train = gen.generate(n.num_inputs(), vectors);
    const sim::SequenceEnergy ref = golden.simulate(train);
    return calibrate_residual(structural, train, ref.per_transition_ff);
  }
};

TEST(Residual, ResidualReducesInSampleError) {
  Fixture f;
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 99);
  const sim::InputSequence train = gen.generate(f.n.num_inputs(), 3000);
  const sim::SequenceEnergy ref = f.golden.simulate(train);
  const ResidualCalibratedModel model =
      calibrate_residual(f.structural, train, ref.per_transition_ff);

  // Against a glitchy golden model the structural-only estimate is biased
  // low; the calibrated model must be closer on the training sequence.
  const double golden_avg = ref.average_ff();
  const double structural_err =
      std::abs(f.structural->average_over(train) - golden_avg);
  const double calibrated_err =
      std::abs(model.average_over(train) - golden_avg);
  EXPECT_LT(calibrated_err, structural_err);
  EXPECT_LT(calibrated_err, 0.05 * golden_avg);
}

TEST(Residual, StructuralPartDominatesOutOfSample) {
  // The paper's partitioning argument: the characterized part only carries
  // the (smoother) parasitic surplus, so the combined model stays accurate
  // at statistics far from the characterization point.
  Fixture f;
  const ResidualCalibratedModel model = f.calibrated();
  for (double st : {0.1, 0.3, 0.7}) {
    stats::MarkovSequenceGenerator gen({0.5, st}, 1234);
    const sim::InputSequence seq = gen.generate(f.n.num_inputs(), 3000);
    const double golden_avg = f.golden.simulate(seq).average_ff();
    const double re =
        std::abs(model.average_over(seq) - golden_avg) / golden_avg;
    EXPECT_LT(re, 0.25) << "st=" << st;
  }
}

TEST(Residual, EstimatesClampedNonNegative) {
  // A strongly negative intercept cannot push estimates below zero.
  auto con = std::make_shared<ConstantModel>(5.0, 3);
  LinearModel residual(std::vector<double>{-100.0, 1.0, 1.0, 1.0});
  ResidualCalibratedModel model(con, residual);
  std::vector<std::uint8_t> v(3, 0);
  EXPECT_DOUBLE_EQ(model.estimate_ff(v, v), 0.0);
}

TEST(Residual, NameAndInterfaceForwarding) {
  auto con = std::make_shared<ConstantModel>(5.0, 2);
  LinearModel residual(std::vector<double>{1.0, 2.0, 0.0});
  ResidualCalibratedModel model(con, residual);
  EXPECT_EQ(model.num_inputs(), 2u);
  EXPECT_EQ(model.name(), "Con+residual");
  EXPECT_DOUBLE_EQ(model.worst_case_ff(), 5.0 + 3.0);
  EXPECT_EQ(&model.structural(), con.get());
  EXPECT_EQ(model.residual().coefficients().size(), 3u);
}

TEST(Residual, ArityMismatchRejected) {
  auto con = std::make_shared<ConstantModel>(5.0, 4);
  LinearModel residual(std::vector<double>{0.0, 1.0, 1.0});  // 2 inputs
  EXPECT_THROW(ResidualCalibratedModel(con, residual), ContractError);
}

TEST(Residual, CalibrationValidatesShapes) {
  Fixture f;
  sim::InputSequence seq(f.n.num_inputs(), 10);
  std::vector<double> wrong(3, 0.0);  // 9 transitions expected
  EXPECT_THROW(calibrate_residual(f.structural, seq, wrong), ContractError);
  EXPECT_THROW(calibrate_residual(nullptr, seq, wrong), ContractError);
}

}  // namespace
}  // namespace cfpm::power
