// Degradation-ladder tests: injected resource faults and expired deadlines
// during model construction must yield a *usable* model via the ladder
// (force-approximate -> halved budgets -> constant fallback), with every
// rung recorded in the build info, and must propagate unchanged when the
// ladder is disabled or a cancellation is requested.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

/// Sanity harness: any model the ladder hands back must be evaluable and,
/// in bound mode, must dominate a handful of sampled transitions... but
/// even in average mode it must at least produce finite values.
void expect_usable(const AddPowerModel& model, const Netlist& n) {
  EXPECT_EQ(model.num_inputs(), n.num_inputs());
  std::vector<std::uint8_t> xi(n.num_inputs(), 0), xf(n.num_inputs(), 1);
  const double v = model.estimate_ff(xi, xf);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(model.worst_case_ff(), 0.0);
}

TEST(DegradationLadder, CleanBuildTakesNoRung) {
  const Netlist n = netlist::gen::c17();
  const AddPowerModel model =
      AddPowerModel::build(n, GateLibrary::standard(), {});
  EXPECT_EQ(model.build_info().outcome, BuildOutcome::kClean);
  EXPECT_TRUE(model.build_info().rungs.empty());
  EXPECT_EQ(model.build_info().attempts, 1u);
}

TEST(DegradationLadder, InjectedResourceFaultRecoversWithRungsRecorded) {
  const Netlist n = netlist::gen::ripple_carry_adder(6);
  auto governor = std::make_shared<Governor>();
  // Fire well into the symbolic build: the first attempt dies, the ladder
  // retries (the one-shot fault is then spent) and must succeed.
  governor->inject_fault(FaultKind::kResource, 200);

  AddModelOptions opt;
  opt.max_nodes = 500;
  opt.dd_config.governor = governor;
  const AddPowerModel model =
      AddPowerModel::build(n, GateLibrary::standard(), opt);

  EXPECT_EQ(model.build_info().outcome, BuildOutcome::kDegraded);
  ASSERT_FALSE(model.build_info().rungs.empty());
  EXPECT_GE(model.build_info().attempts, 2u);
  // The rung records why it was taken.
  EXPECT_NE(model.build_info().rungs[0].reason.find("injected"),
            std::string::npos);
  expect_usable(model, n);
}

TEST(DegradationLadder, TinyManagerCapHalvesDownToFallback) {
  // A manager cap so small that even approximate retries blow it: the
  // ladder must walk halve-max-nodes rungs and surrender to the constant
  // fallback instead of throwing.
  const Netlist n = netlist::gen::ripple_carry_adder(6);
  AddModelOptions opt;
  opt.max_nodes = 256;
  opt.degrade_floor = 16;
  opt.dd_config.max_nodes = 40;  // absurdly tight hard cap
  const AddPowerModel model =
      AddPowerModel::build(n, GateLibrary::standard(), opt);

  EXPECT_EQ(model.build_info().outcome, BuildOutcome::kFallback);
  ASSERT_FALSE(model.build_info().rungs.empty());
  EXPECT_EQ(model.build_info().rungs.back().action, "fallback-constant");
  expect_usable(model, n);
  // The fallback is a constant: every transition gets the same estimate.
  std::vector<std::uint8_t> a(n.num_inputs(), 0), b(n.num_inputs(), 1);
  EXPECT_DOUBLE_EQ(model.estimate_ff(a, a), model.estimate_ff(a, b));
}

TEST(DegradationLadder, FallbackUpperBoundDominatesGolden) {
  // In bound mode the constant fallback is the total driven load, which
  // dominates any single transition's switched capacitance.
  const Netlist n = netlist::gen::c17();
  AddModelOptions opt;
  opt.mode = dd::ApproxMode::kUpperBound;
  opt.max_nodes = 64;
  opt.dd_config.max_nodes = 30;  // force fallback
  const GateLibrary lib = GateLibrary::standard();
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  ASSERT_EQ(model.build_info().outcome, BuildOutcome::kFallback);
  EXPECT_TRUE(model.is_upper_bound());

  const std::vector<double> loads = n.annotate_loads(lib);
  double total = 0.0;
  for (netlist::SignalId s = 0; s < n.num_signals(); ++s) {
    if (!n.signal(s).is_input) total += loads[s];
  }
  std::vector<std::uint8_t> a(n.num_inputs(), 0), b(n.num_inputs(), 1);
  EXPECT_DOUBLE_EQ(model.estimate_ff(a, b), total);
}

TEST(DegradationLadder, ExpiredDeadlineSurrendersToConstant) {
  const Netlist n = netlist::gen::ripple_carry_adder(6);
  auto governor = std::make_shared<Governor>();
  governor->set_deadline(std::chrono::milliseconds(0));

  AddModelOptions opt;
  opt.dd_config.governor = governor;
  const AddPowerModel model =
      AddPowerModel::build(n, GateLibrary::standard(), opt);

  EXPECT_EQ(model.build_info().outcome, BuildOutcome::kFallback);
  ASSERT_EQ(model.build_info().rungs.size(), 1u);
  EXPECT_EQ(model.build_info().rungs[0].action, "fallback-constant");
  EXPECT_NE(model.build_info().rungs[0].reason.find("deadline"),
            std::string::npos);
  expect_usable(model, n);
}

TEST(DegradationLadder, DisabledLadderRethrows) {
  const Netlist n = netlist::gen::ripple_carry_adder(6);
  AddModelOptions opt;
  opt.degrade = false;
  opt.dd_config.max_nodes = 40;
  EXPECT_THROW(AddPowerModel::build(n, GateLibrary::standard(), opt),
               ResourceError);

  auto governor = std::make_shared<Governor>();
  governor->set_deadline(std::chrono::milliseconds(0));
  AddModelOptions opt2;
  opt2.degrade = false;
  opt2.dd_config.governor = governor;
  EXPECT_THROW(AddPowerModel::build(n, GateLibrary::standard(), opt2),
               DeadlineExceeded);
}

TEST(DegradationLadder, CancellationAlwaysPropagates) {
  // Cancellation means "stop", never "degrade": even with the ladder on,
  // a cancelled build must throw.
  const Netlist n = netlist::gen::ripple_carry_adder(6);
  auto governor = std::make_shared<Governor>();
  governor->request_cancellation();

  AddModelOptions opt;
  opt.degrade = true;
  opt.dd_config.governor = governor;
  EXPECT_THROW(AddPowerModel::build(n, GateLibrary::standard(), opt),
               CancelledError);
}

TEST(DegradationLadder, DegradedAverageModelStaysInRange) {
  // A degraded average model is approximate, not garbage: its global
  // average must stay within the function's min/max envelope and its
  // estimates must be non-negative.
  const Netlist n = netlist::gen::ripple_carry_adder(5);
  auto governor = std::make_shared<Governor>();
  governor->inject_fault(FaultKind::kResource, 300);

  AddModelOptions opt;
  opt.max_nodes = 200;
  opt.dd_config.governor = governor;
  const AddPowerModel model =
      AddPowerModel::build(n, GateLibrary::standard(), opt);
  EXPECT_NE(model.build_info().outcome, BuildOutcome::kClean);
  EXPECT_GE(model.average_estimate_ff(), 0.0);
  EXPECT_LE(model.average_estimate_ff(), model.worst_case_ff() + 1e-9);
}

}  // namespace
}  // namespace cfpm::power
