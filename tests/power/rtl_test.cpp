#include "power/rtl.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

std::shared_ptr<AddPowerModel> make_model(const Netlist& n,
                                          dd::ApproxMode mode,
                                          std::size_t max_nodes = 0) {
  AddModelOptions opt;
  opt.max_nodes = max_nodes;
  opt.mode = mode;
  return std::make_shared<AddPowerModel>(
      AddPowerModel::build(n, GateLibrary::standard(), opt));
}

TEST(RtlDesign, SumsInstanceEstimates) {
  const Netlist adder = netlist::gen::ripple_carry_adder(2);  // 5 inputs
  auto model = make_model(adder, dd::ApproxMode::kAverage);
  RtlDesign design;
  design.add_instance("u0", model, {0, 1, 2, 3, 4});
  design.add_instance("u1", model, {5, 6, 7, 8, 9});
  EXPECT_EQ(design.num_instances(), 2u);
  EXPECT_EQ(design.bus_width(), 10u);

  std::vector<std::uint8_t> xi(10, 0), xf(10, 1);
  const auto breakdown = design.estimate_breakdown_ff(xi, xf);
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_DOUBLE_EQ(design.estimate_ff(xi, xf), breakdown[0] + breakdown[1]);

  // Same bits on both instances -> identical per-instance estimates.
  EXPECT_DOUBLE_EQ(breakdown[0], breakdown[1]);
}

TEST(RtlDesign, SharedModelAcrossInstances) {
  // One library model backs many instances: the paper's library-macro flow.
  const Netlist cmp = netlist::gen::magnitude_comparator(3);
  auto model = make_model(cmp, dd::ApproxMode::kAverage);
  RtlDesign design;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::size_t> map;
    for (std::size_t k = 0; k < cmp.num_inputs(); ++k) {
      map.push_back(i * cmp.num_inputs() + k);
    }
    design.add_instance("cmp" + std::to_string(i), model, std::move(map));
  }
  EXPECT_EQ(design.num_instances(), 8u);
  EXPECT_EQ(design.bus_width(), 8 * cmp.num_inputs());
}

TEST(RtlDesign, InputMapMustMatchModelArity) {
  const Netlist adder = netlist::gen::ripple_carry_adder(2);
  auto model = make_model(adder, dd::ApproxMode::kAverage);
  RtlDesign design;
  EXPECT_THROW(design.add_instance("bad", model, {0, 1}), ContractError);
  EXPECT_THROW(design.add_instance("null", nullptr, {}), ContractError);
}

TEST(RtlDesign, UpperBoundFlagRequiresAllBounds) {
  const Netlist adder = netlist::gen::ripple_carry_adder(2);
  auto avg_model = make_model(adder, dd::ApproxMode::kAverage, 20);
  auto bound_model = make_model(adder, dd::ApproxMode::kUpperBound, 20);
  RtlDesign design;
  design.add_instance("b0", bound_model, {0, 1, 2, 3, 4});
  EXPECT_TRUE(design.is_upper_bound());
  design.add_instance("a0", avg_model, {0, 1, 2, 3, 4});
  EXPECT_FALSE(design.is_upper_bound());
}

TEST(RtlDesign, PatternDependentBoundTighterThanWorstCaseSum) {
  // Section 1.2: summing pattern-dependent bounds beats summing the
  // components' global worst cases.
  const Netlist adder = netlist::gen::ripple_carry_adder(3);  // 7 inputs
  auto bound = make_model(adder, dd::ApproxMode::kUpperBound, 100);
  RtlDesign design;
  design.add_instance("u0", bound, {0, 1, 2, 3, 4, 5, 6});
  design.add_instance("u1", bound, {7, 8, 9, 10, 11, 12, 13});
  design.add_instance("u2", bound, {0, 2, 4, 6, 8, 10, 12});

  const sim::GateLevelSimulator golden(adder, GateLibrary::standard());
  Xoshiro256 rng(41);
  std::vector<std::uint8_t> xi(14), xf(14);
  double sum_pattern_bound = 0.0;
  const int trials = 300;
  const std::vector<std::vector<std::size_t>> maps = {
      {0, 1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12, 13},
      {0, 2, 4, 6, 8, 10, 12}};
  for (int t = 0; t < trials; ++t) {
    for (auto& b : xi) b = static_cast<std::uint8_t>(rng.next_below(2));
    for (auto& b : xf) b = static_cast<std::uint8_t>(rng.next_below(2));
    const double pat = design.estimate_ff(xi, xf);
    sum_pattern_bound += pat;
    // Conservativeness of the composed bound versus the golden sum.
    double golden_sum = 0.0;
    for (const auto& map : maps) {
      std::vector<std::uint8_t> mi(7), mf(7);
      for (int k = 0; k < 7; ++k) {
        mi[k] = xi[map[k]];
        mf[k] = xf[map[k]];
      }
      golden_sum += golden.switching_capacitance_ff(mi, mf);
    }
    EXPECT_GE(pat + 1e-9, golden_sum);
    // And it never exceeds the loose worst-case sum.
    EXPECT_LE(pat, design.sum_of_worst_cases_ff() + 1e-9);
  }
  // On average, strictly tighter than the worst-case sum.
  EXPECT_LT(sum_pattern_bound / trials, design.sum_of_worst_cases_ff());
}

TEST(RtlDesign, MixedModelTypes) {
  const Netlist adder = netlist::gen::ripple_carry_adder(2);
  auto add_model = make_model(adder, dd::ApproxMode::kAverage);
  auto con = std::make_shared<ConstantModel>(42.0, 3);
  RtlDesign design;
  design.add_instance("macro", add_model, {0, 1, 2, 3, 4});
  design.add_instance("legacy", con, {5, 6, 7});
  std::vector<std::uint8_t> xi(8, 0), xf(8, 0);
  // Idle bus: ADD model contributes 0, Con contributes its constant.
  EXPECT_DOUBLE_EQ(design.estimate_ff(xi, xf), 42.0);
}

}  // namespace
}  // namespace cfpm::power
