// Reproduces the paper's worked example end to end (Figs. 2-5, Ex. 1-5).
//
// Unit U: g1 = NOT x1 (C1 = 40 fF), g2 = NOT x2 (C2 = 50 fF),
//         g3 = OR(x1, x2) (C3 = 10 fF).
#include <gtest/gtest.h>

#include <vector>

#include "dd/approx.hpp"
#include "dd/stats.hpp"
#include "netlist/netlist.hpp"
#include "power/add_model.hpp"
#include "sim/simulator.hpp"

namespace cfpm::power {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

Netlist unit_u() {
  Netlist n("U");
  const SignalId x1 = n.add_input("x1");
  const SignalId x2 = n.add_input("x2");
  n.add_gate(GateType::kNot, {x1}, "g1");
  n.add_gate(GateType::kNot, {x2}, "g2");
  n.add_gate(GateType::kOr, {x1, x2}, "g3");
  return n;
}

std::vector<double> unit_loads(const Netlist& n) {
  std::vector<double> loads(n.num_signals(), 0.0);
  loads[n.find("g1")] = 40.0;
  loads[n.find("g2")] = 50.0;
  loads[n.find("g3")] = 10.0;
  return loads;
}

AddPowerModel exact_model() {
  Netlist n = unit_u();
  AddModelOptions opt;
  opt.max_nodes = 0;
  return AddPowerModel::build(n, unit_loads(n), opt);
}

double lut(const AddPowerModel& m, int xi1, int xi2, int xf1, int xf2) {
  const std::uint8_t xi[2] = {static_cast<std::uint8_t>(xi1),
                              static_cast<std::uint8_t>(xi2)};
  const std::uint8_t xf[2] = {static_cast<std::uint8_t>(xf1),
                              static_cast<std::uint8_t>(xf2)};
  return m.estimate_ff(xi, xf);
}

TEST(WorkedExample, Example1SingleTransition) {
  // Ex. 1: C(11 -> 00) = 40 + 50 = 90 fF.
  const AddPowerModel m = exact_model();
  EXPECT_DOUBLE_EQ(lut(m, 1, 1, 0, 0), 90.0);
}

TEST(WorkedExample, Example2FullLookupTable) {
  // Fig. 2.b: the full 16-row LUT of C(x^i, x^f).
  const AddPowerModel m = exact_model();
  Netlist n = unit_u();
  const sim::GateLevelSimulator golden(n, unit_loads(n));
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        for (int d = 0; d <= 1; ++d) {
          const std::uint8_t xi[2] = {static_cast<std::uint8_t>(a),
                                      static_cast<std::uint8_t>(b)};
          const std::uint8_t xf[2] = {static_cast<std::uint8_t>(c),
                                      static_cast<std::uint8_t>(d)};
          EXPECT_DOUBLE_EQ(m.estimate_ff(xi, xf),
                           golden.switching_capacitance_ff(xi, xf));
        }
      }
    }
  }
  // Selected rows quoted in the paper figure.
  EXPECT_DOUBLE_EQ(lut(m, 0, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(lut(m, 1, 1, 0, 0), 90.0);
}

TEST(WorkedExample, Fig3AddLeafValues) {
  // The exact ADD's leaves are exactly the distinct LUT values.
  const AddPowerModel m = exact_model();
  const auto leaves = m.function().leaf_values();
  // g3 (10 fF) can only rise from x^i = 00, where neither inverter can
  // rise, so the reachable values are exactly {0, 10, 40, 50, 90}.
  EXPECT_EQ(leaves, (std::vector<double>{0.0, 10.0, 40.0, 50.0, 90.0}));
}

TEST(WorkedExample, Examples3And4AverageCollapse) {
  // The sub-function for x^i = 00 over x^f is {0, 10, 10, 10}: avg 7.5,
  // var 18.75 (Ex. 4). After average-collapse the estimate for x^i = 00
  // becomes 7.5 regardless of x^f (Ex. 3).
  const AddPowerModel m = exact_model();

  // Extract the x^i = 00 sub-function by direct evaluation.
  double values[4];
  for (int c = 0; c <= 1; ++c) {
    for (int d = 0; d <= 1; ++d) values[2 * c + d] = lut(m, 0, 0, c, d);
  }
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_DOUBLE_EQ(values[1], 10.0);
  EXPECT_DOUBLE_EQ(values[2], 10.0);
  EXPECT_DOUBLE_EQ(values[3], 10.0);
  const double avg = (0.0 + 10.0 + 10.0 + 10.0) / 4.0;
  EXPECT_DOUBLE_EQ(avg, 7.5);
  double var = 0.0;
  for (double v : values) var += (v - avg) * (v - avg);
  var /= 4.0;
  EXPECT_DOUBLE_EQ(var, 18.75);

  // Average collapse: global mean is preserved at every budget.
  const double exact_avg = m.function().average();
  for (std::size_t budget : {7u, 5u, 3u, 1u}) {
    const AddPowerModel small = m.compress(budget, dd::ApproxMode::kAverage);
    EXPECT_NEAR(small.function().average(), exact_avg, 1e-9);
  }
}

TEST(WorkedExample, Example5MaxCollapse) {
  // Ex. 5: max of the x^i = 00 sub-function is 10 and
  // mse = var + (max - avg)^2 = 18.75 + 6.25 = 25.
  const AddPowerModel m = exact_model();
  EXPECT_DOUBLE_EQ(18.75 + (10.0 - 7.5) * (10.0 - 7.5), 25.0);

  // Max collapse keeps the model conservative at every budget.
  for (std::size_t budget : {7u, 5u, 3u, 1u}) {
    const AddPowerModel bound = m.compress(budget, dd::ApproxMode::kUpperBound);
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        for (int c = 0; c <= 1; ++c) {
          for (int d = 0; d <= 1; ++d) {
            EXPECT_GE(lut(bound, a, b, c, d) + 1e-12, lut(m, a, b, c, d))
                << budget;
          }
        }
      }
    }
  }
  // Full collapse to a single leaf gives the true worst case, 90 fF
  // (tighter than the 100 fF sum of all loads, which is unreachable).
  const AddPowerModel worst = m.compress(1, dd::ApproxMode::kUpperBound);
  EXPECT_DOUBLE_EQ(worst.max_estimate_ff(), 90.0);
}

TEST(WorkedExample, CollapsedModelLosesPatternDependenceGracefully) {
  // Fig. 4.b: after collapsing, estimates for x^i = 00 no longer depend on
  // x^f; the chosen constant is between the sub-function's min and max.
  const AddPowerModel m = exact_model();
  const AddPowerModel small = m.compress(5, dd::ApproxMode::kAverage);
  EXPECT_LE(small.size(), 5u);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        for (int d = 0; d <= 1; ++d) {
          const double v = lut(small, a, b, c, d);
          EXPECT_GE(v, 0.0 - 1e-12);
          EXPECT_LE(v, 90.0 + 1e-12);
        }
      }
    }
  }
}

}  // namespace
}  // namespace cfpm::power
