#include "power/add_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/generators.hpp"
#include "netlist/transform.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace cfpm::power {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

AddModelOptions exact_options() {
  AddModelOptions opt;
  opt.max_nodes = 0;  // unbounded -> exact model
  return opt;
}

/// The unbounded ADD model must reproduce the golden simulator exactly
/// (zero-delay structural power is what both compute).
void expect_model_exact(const Netlist& n, unsigned trials = 2000,
                        std::uint64_t seed = 1) {
  const GateLibrary lib = GateLibrary::standard();
  const sim::GateLevelSimulator golden(n, lib);
  const AddPowerModel model = AddPowerModel::build(n, lib, exact_options());
  EXPECT_EQ(model.build_info().approximations, 0u);

  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  const bool exhaustive = n.num_inputs() <= 5;
  const unsigned total =
      exhaustive ? (1u << (2 * n.num_inputs())) : trials;
  for (unsigned k = 0; k < total; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      if (exhaustive) {
        xi[i] = (k >> i) & 1u;
        xf[i] = (k >> (n.num_inputs() + i)) & 1u;
      } else {
        xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
        xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
      }
    }
    ASSERT_DOUBLE_EQ(model.estimate_ff(xi, xf),
                     golden.switching_capacitance_ff(xi, xf))
        << n.name() << " pair " << k;
  }
}

TEST(AddModel, ExactOnC17) { expect_model_exact(netlist::gen::c17()); }

TEST(AddModel, ExactOnAdder) {
  expect_model_exact(netlist::gen::ripple_carry_adder(4));
}

TEST(AddModel, ExactOnComparator) {
  expect_model_exact(netlist::gen::magnitude_comparator(5));
}

TEST(AddModel, ExactOnParity) {
  expect_model_exact(netlist::gen::parity_tree(8, 1));
}

TEST(AddModel, ExactOnDecomposedAlu) {
  expect_model_exact(
      netlist::decompose_to_2input(netlist::gen::alu(3)), 1000);
}

TEST(AddModel, ExactOnMuxTwoLevel) {
  expect_model_exact(netlist::gen::mux_two_level(), 1000);
}

TEST(AddModel, BlockedOrderSameFunction) {
  const Netlist n = netlist::gen::ripple_carry_adder(3);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions blocked = exact_options();
  blocked.order = VariableOrder::kBlocked;
  const AddPowerModel m_int = AddPowerModel::build(n, lib, exact_options());
  const AddPowerModel m_blk = AddPowerModel::build(n, lib, blocked);
  Xoshiro256 rng(3);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 500; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_DOUBLE_EQ(m_int.estimate_ff(xi, xf), m_blk.estimate_ff(xi, xf));
  }
}

TEST(AddModel, InterleavedOrderIsSmallerOnAdder) {
  // The classic transition-relation result; also the ablation of DESIGN.md.
  const Netlist n = netlist::gen::ripple_carry_adder(6);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions blocked = exact_options();
  blocked.order = VariableOrder::kBlocked;
  const AddPowerModel m_int = AddPowerModel::build(n, lib, exact_options());
  const AddPowerModel m_blk = AddPowerModel::build(n, lib, blocked);
  EXPECT_LT(m_int.size(), m_blk.size());
}

TEST(AddModel, BudgetIsRespectedDuringConstruction) {
  const Netlist n = netlist::gen::magnitude_comparator(8);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt;
  opt.max_nodes = 50;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  EXPECT_LE(model.size(), 50u);
  EXPECT_GT(model.build_info().approximations, 0u);
}

TEST(AddModel, AverageModePreservesMeanUnderBudget) {
  // avg(a)+avg(b) == avg(a+b): the Fig. 6 construction with average
  // collapsing must keep the model's global mean equal to the exact mean.
  const Netlist n = netlist::gen::parity_tree(8, 1);
  const GateLibrary lib = GateLibrary::standard();
  const AddPowerModel exact = AddPowerModel::build(n, lib, exact_options());
  AddModelOptions opt;
  opt.max_nodes = 20;
  opt.mode = dd::ApproxMode::kAverage;
  const AddPowerModel small = AddPowerModel::build(n, lib, opt);
  EXPECT_LE(small.size(), 20u);
  EXPECT_NEAR(small.average_estimate_ff(), exact.average_estimate_ff(),
              1e-6 * exact.average_estimate_ff());
}

TEST(AddModel, UpperBoundModeDominatesGolden) {
  const Netlist n = netlist::gen::mux_two_level();
  const GateLibrary lib = GateLibrary::standard();
  const sim::GateLevelSimulator golden(n, lib);
  AddModelOptions opt;
  opt.max_nodes = 60;
  opt.mode = dd::ApproxMode::kUpperBound;
  const AddPowerModel bound = AddPowerModel::build(n, lib, opt);
  EXPECT_TRUE(bound.is_upper_bound());

  Xoshiro256 rng(5);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 3000; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_GE(bound.estimate_ff(xi, xf) + 1e-9,
              golden.switching_capacitance_ff(xi, xf))
        << "pair " << k;
  }
  // The bound is also never looser than the sum of all loads.
  EXPECT_LE(bound.max_estimate_ff(), golden.total_gate_load_ff() + 1e-9);
}

TEST(AddModel, CompressShrinksAndStaysConservative) {
  const Netlist n = netlist::gen::magnitude_comparator(6);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt = exact_options();
  opt.mode = dd::ApproxMode::kUpperBound;
  const AddPowerModel exact = AddPowerModel::build(n, lib, opt);
  const AddPowerModel small = exact.compress(10);
  EXPECT_LE(small.size(), 10u);
  Xoshiro256 rng(7);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 1000; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_GE(small.estimate_ff(xi, xf) + 1e-9, exact.estimate_ff(xi, xf));
  }
}

TEST(AddModel, CompressToConstantEstimator) {
  const Netlist n = netlist::gen::c17();
  const GateLibrary lib = GateLibrary::standard();
  const AddPowerModel exact = AddPowerModel::build(n, lib, exact_options());
  const AddPowerModel con = exact.compress(1, dd::ApproxMode::kAverage);
  EXPECT_EQ(con.size(), 1u);
  std::vector<std::uint8_t> v(n.num_inputs(), 0);
  EXPECT_NEAR(con.estimate_ff(v, v), exact.average_estimate_ff(), 1e-9);
}

TEST(AddModel, DeltaBudgetOptionWorks) {
  const Netlist n = netlist::gen::parity_tree(12, 1);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt;
  opt.max_nodes = 200;
  opt.delta_max_nodes = 64;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  EXPECT_LE(model.size(), 200u);
}

TEST(AddModel, PostHocApproximationOption) {
  const Netlist n = netlist::gen::magnitude_comparator(5);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt;
  opt.max_nodes = 30;
  opt.approximate_during_construction = false;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  EXPECT_LE(model.size(), 30u);
}

TEST(AddModel, ReorderingDisabledStillMeetsBudget) {
  const Netlist n = netlist::gen::magnitude_comparator(6);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt;
  opt.max_nodes = 60;
  opt.reorder_passes = 0;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  EXPECT_LE(model.size(), 60u);
  EXPECT_EQ(model.build_info().reorder_runs, 1u);  // counter of final stage
}

TEST(AddModel, ReorderingShrinksOrEqualsModels) {
  // With sifting enabled the final model is never larger than the budget,
  // and for exact builds the sifted manager preserves every estimate.
  const Netlist n = netlist::gen::mcnc_like("cm85");
  const GateLibrary lib = GateLibrary::uniform(5.0, 10.0);
  AddModelOptions opt;
  opt.max_nodes = 0;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  Xoshiro256 rng(1);
  std::vector<std::pair<std::vector<std::uint8_t>, double>> samples;
  for (int k = 0; k < 64; ++k) {
    std::vector<std::uint8_t> bits(2 * n.num_inputs());
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_below(2));
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = bits[2 * i];
      xf[i] = bits[2 * i + 1];
    }
    samples.emplace_back(bits, model.estimate_ff(xi, xf));
  }
  const std::size_t before = model.size();
  model.function().manager()->sift();
  EXPECT_LE(model.size(), before);
  for (const auto& [bits, expect] : samples) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = bits[2 * i];
      xf[i] = bits[2 * i + 1];
    }
    ASSERT_DOUBLE_EQ(model.estimate_ff(xi, xf), expect);
  }
}

TEST(AddModel, EvaluationIgnoresIrrelevantStatistics) {
  // A model built once gives identical answers regardless of workload
  // statistics: accuracy cannot depend on input statistics by construction.
  const Netlist n = netlist::gen::c17();
  const GateLibrary lib = GateLibrary::standard();
  const AddPowerModel model = AddPowerModel::build(n, lib, exact_options());
  const std::vector<std::uint8_t> a{1, 0, 1, 0, 1};
  const std::vector<std::uint8_t> b{0, 1, 1, 0, 0};
  const double first = model.estimate_ff(a, b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.estimate_ff(a, b), first);
  }
}

TEST(AddModel, InputSensitivityMatchesMonteCarlo) {
  const Netlist n = netlist::gen::c17();
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt;
  opt.max_nodes = 0;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  const auto symbolic = model.input_sensitivity_ff();
  ASSERT_EQ(symbolic.size(), 5u);

  // Exhaustive reference: average golden capacitance conditioned on input
  // k toggling vs staying, uniform elsewhere.
  const sim::GateLevelSimulator golden(n, lib);
  std::vector<std::uint8_t> xi(5), xf(5);
  for (unsigned k = 0; k < 5; ++k) {
    double toggle = 0.0, stable = 0.0;
    int ct = 0, cs = 0;
    for (unsigned a = 0; a < 32; ++a) {
      for (unsigned b = 0; b < 32; ++b) {
        for (unsigned i = 0; i < 5; ++i) {
          xi[i] = (a >> i) & 1u;
          xf[i] = (b >> i) & 1u;
        }
        const double c = golden.switching_capacitance_ff(xi, xf);
        if (xi[k] != xf[k]) {
          toggle += c;
          ++ct;
        } else {
          stable += c;
          ++cs;
        }
      }
    }
    const double expected = toggle / ct - stable / cs;
    EXPECT_NEAR(symbolic[k], expected, 1e-9) << "input " << k;
  }
}

TEST(AddModel, SensitivityZeroForUnusedInput) {
  // An input that drives nothing cannot move the estimate.
  Netlist n("pad");
  const auto a = n.add_input("a");
  n.add_input("unused");
  n.add_gate(netlist::GateType::kNot, {a}, "y");
  n.mark_output(n.find("y"));
  std::vector<double> loads(n.num_signals(), 0.0);
  loads[n.find("y")] = 10.0;
  AddModelOptions opt;
  opt.max_nodes = 0;
  const AddPowerModel model = AddPowerModel::build(n, loads, opt);
  const auto s = model.input_sensitivity_ff();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_GT(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(AddModel, WorstCaseTransitionIsAWitness) {
  for (const char* name : {"cm85", "x2", "decod"}) {
    const Netlist n = netlist::gen::mcnc_like(name);
    const GateLibrary lib = GateLibrary::uniform(5.0, 10.0);
    AddModelOptions opt;
    opt.max_nodes = 0;
    const AddPowerModel model = AddPowerModel::build(n, lib, opt);
    const auto t = model.worst_case_transition();
    ASSERT_EQ(t.xi.size(), n.num_inputs());
    EXPECT_DOUBLE_EQ(model.estimate_ff(t.xi, t.xf), model.worst_case_ff())
        << name;
    // For an exact model the witness is a true maximum-power transition of
    // the golden circuit.
    const sim::GateLevelSimulator golden(n, lib);
    EXPECT_DOUBLE_EQ(golden.switching_capacitance_ff(t.xi, t.xf),
                     model.worst_case_ff())
        << name;
  }
}

TEST(AddModel, BuildInfoPopulated) {
  const Netlist n = netlist::gen::magnitude_comparator(8);
  const GateLibrary lib = GateLibrary::standard();
  AddModelOptions opt;
  opt.max_nodes = 40;
  const AddPowerModel model = AddPowerModel::build(n, lib, opt);
  EXPECT_GE(model.build_info().build_seconds, 0.0);
  EXPECT_GT(model.build_info().peak_live_nodes, 0u);
  EXPECT_NE(model.name().find("cmp8"), std::string::npos);
}

}  // namespace
}  // namespace cfpm::power
