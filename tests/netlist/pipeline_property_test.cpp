// Parameterized property suite over the netlist transform pipeline:
// for randomly generated circuits, clean() and decompose_to_2input() --
// alone and composed, in both orders -- are formally equivalent to the
// original (BDD proof, not sampling), and basic structural invariants
// hold at every stage.
#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "netlist/transform.hpp"
#include "netlist/verify.hpp"

namespace cfpm::netlist {
namespace {

struct PipelineParam {
  std::uint64_t seed;
  unsigned inputs;
  unsigned gates;
  unsigned window;
  double xor_fraction;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineParam> {
 protected:
  Netlist make() const {
    const PipelineParam& p = GetParam();
    gen::RandomLogicSpec spec;
    spec.name = "pp" + std::to_string(p.seed);
    spec.num_inputs = p.inputs;
    spec.num_outputs = 3;
    spec.target_gates = p.gates;
    spec.window = p.window;
    spec.xor_fraction = p.xor_fraction;
    spec.seed = p.seed;
    return gen::random_logic(spec);
  }
};

TEST_P(PipelineProperty, CleanIsExact) {
  const Netlist src = make();
  const Netlist out = clean(src);
  EXPECT_LE(out.num_gates(), src.num_gates());
  const auto r = check_equivalence(src, out);
  EXPECT_TRUE(r.equivalent) << "differs on " << r.differing_output;
}

TEST_P(PipelineProperty, DecomposeIsExact) {
  const Netlist src = make();
  const Netlist out = decompose_to_2input(src);
  const auto r = check_equivalence(src, out);
  EXPECT_TRUE(r.equivalent) << "differs on " << r.differing_output;
}

TEST_P(PipelineProperty, ComposedPipelinesAreExactBothWays) {
  const Netlist src = make();
  const Netlist a = clean(decompose_to_2input(src));
  const Netlist b = decompose_to_2input(clean(src));
  const auto ra = check_equivalence(src, a);
  EXPECT_TRUE(ra.equivalent) << "decompose+clean differs on "
                             << ra.differing_output;
  const auto rb = check_equivalence(src, b);
  EXPECT_TRUE(rb.equivalent) << "clean+decompose differs on "
                             << rb.differing_output;
  // And the two pipeline orders agree with each other.
  const auto rab = check_equivalence(a, b);
  EXPECT_TRUE(rab.equivalent);
}

TEST_P(PipelineProperty, CleanIsIdempotent) {
  const Netlist src = make();
  const Netlist once = clean(src);
  const Netlist twice = clean(once);
  EXPECT_EQ(twice.num_gates(), once.num_gates());
  const auto r = check_equivalence(once, twice);
  EXPECT_TRUE(r.equivalent);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, PipelineProperty,
    ::testing::Values(PipelineParam{1, 8, 20, 5, 0.2},
                      PipelineParam{2, 10, 30, 4, 0.0},
                      PipelineParam{3, 12, 25, 6, 0.5},
                      PipelineParam{4, 6, 15, 3, 0.3},
                      PipelineParam{5, 14, 40, 5, 0.1},
                      PipelineParam{6, 9, 22, 4, 0.8}));

}  // namespace
}  // namespace cfpm::netlist
