// Functional equivalence and library restriction of decompose_to_2input.
#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace cfpm::netlist {
namespace {

/// Checks src and dst compute identical primary-output functions on a
/// sample (exhaustive when feasible) of input vectors.
void expect_equivalent(const Netlist& src, const Netlist& dst,
                       unsigned max_exhaustive_inputs = 12) {
  ASSERT_EQ(src.num_inputs(), dst.num_inputs());
  ASSERT_EQ(src.outputs().size(), dst.outputs().size());
  std::vector<double> l1(src.num_signals(), 0.0), l2(dst.num_signals(), 0.0);
  sim::GateLevelSimulator s1(src, l1), s2(dst, l2);

  const unsigned n = static_cast<unsigned>(src.num_inputs());
  const bool exhaustive = n <= max_exhaustive_inputs;
  const unsigned trials = exhaustive ? (1u << n) : 4096;
  cfpm::Xoshiro256 rng(99);
  std::vector<std::uint8_t> in(n);
  for (unsigned k = 0; k < trials; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      in[i] = exhaustive ? ((k >> i) & 1u)
                         : static_cast<std::uint8_t>(rng.next_below(2));
    }
    const auto v1 = s1.eval(in);
    const auto v2 = s2.eval(in);
    for (std::size_t o = 0; o < src.outputs().size(); ++o) {
      ASSERT_EQ(v1[src.outputs()[o]], v2[dst.outputs()[o]])
          << "output " << o << " vector " << k;
    }
  }
}

bool uses_only_2input_library(const Netlist& n) {
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    const auto& sig = n.signal(s);
    if (sig.is_input) continue;
    switch (sig.type) {
      case GateType::kNand:
      case GateType::kNor:
        if (sig.fanin_count != 2) return false;
        break;
      case GateType::kNot:
      case GateType::kBuf:
        if (sig.fanin_count != 1) return false;
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        break;
      default:
        return false;
    }
  }
  return true;
}

TEST(Decompose, AdderEquivalent) {
  Netlist src = gen::ripple_carry_adder(3);
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
  EXPECT_GT(dst.num_gates(), src.num_gates());
}

TEST(Decompose, ComparatorEquivalent) {
  Netlist src = gen::magnitude_comparator(4);
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
}

TEST(Decompose, MuxEquivalent) {
  Netlist src = gen::mux_flat(2);  // 7 inputs
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
}

TEST(Decompose, DecoderEquivalent) {
  Netlist src = gen::decoder(3);
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
}

TEST(Decompose, ParityEquivalent) {
  Netlist src = gen::parity_tree(8, 2);
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
}

TEST(Decompose, AluEquivalent) {
  Netlist src = gen::alu(3);  // 8 inputs
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
}

TEST(Decompose, RandomLogicEquivalent) {
  gen::RandomLogicSpec spec;
  spec.num_inputs = 10;
  spec.num_outputs = 3;
  spec.target_gates = 25;
  spec.window = 6;
  spec.seed = 7;
  Netlist src = gen::random_logic(spec);
  Netlist dst = decompose_to_2input(src);
  EXPECT_TRUE(uses_only_2input_library(dst));
  expect_equivalent(src, dst);
}

TEST(Decompose, PreservesInterfaceNames) {
  Netlist src = gen::ripple_carry_adder(2);
  Netlist dst = decompose_to_2input(src);
  for (SignalId i : src.inputs()) {
    EXPECT_NE(dst.find(src.signal(i).name), kInvalidSignal);
  }
  for (SignalId o : src.outputs()) {
    const SignalId mapped = dst.find(src.signal(o).name);
    ASSERT_NE(mapped, kInvalidSignal);
    EXPECT_TRUE(dst.is_output(mapped));
  }
}

TEST(Decompose, IdempotentOnRestrictedNetlists) {
  Netlist once = decompose_to_2input(gen::c17());
  Netlist twice = decompose_to_2input(once);
  EXPECT_EQ(twice.num_gates(), once.num_gates());
}

TEST(GateHistogram, CountsTypes) {
  Netlist n = gen::c17();
  const auto hist = gate_histogram(n);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kNand)], 6u);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kXor)], 0u);
}


TEST(Clean, SweepsDeadLogic) {
  Netlist n("dead");
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  const SignalId keep = n.add_gate(GateType::kAnd, {a, b}, "keep");
  n.add_gate(GateType::kOr, {a, b}, "unused1");
  n.add_gate(GateType::kNot, {n.find("unused1")}, "unused2");
  n.mark_output(keep);
  Netlist c = clean(n);
  EXPECT_EQ(c.num_gates(), 1u);
  EXPECT_EQ(c.num_inputs(), 2u);  // interface preserved
  EXPECT_NE(c.find("keep"), kInvalidSignal);
  EXPECT_EQ(c.find("unused1"), kInvalidSignal);
}

TEST(Clean, PropagatesConstantsThroughGates) {
  Netlist n("consts");
  const SignalId a = n.add_input("a");
  const SignalId one = n.add_gate(GateType::kConst1, {}, "one");
  const SignalId zero = n.add_gate(GateType::kConst0, {}, "zero");
  // AND(a, 1) -> a; OR(a, 0) -> a; AND(a, 0) -> 0; XOR(a, 1) -> !a.
  n.mark_output(n.add_gate(GateType::kAnd, {a, one}, "and1"));
  n.mark_output(n.add_gate(GateType::kOr, {a, zero}, "or0"));
  n.mark_output(n.add_gate(GateType::kAnd, {a, zero}, "and0"));
  n.mark_output(n.add_gate(GateType::kXor, {a, one}, "xor1"));
  Netlist c = clean(n);
  EXPECT_EQ(c.signal(c.find("and1")).type, GateType::kBuf);
  EXPECT_EQ(c.signal(c.find("or0")).type, GateType::kBuf);
  EXPECT_EQ(c.signal(c.find("and0")).type, GateType::kConst0);
  EXPECT_EQ(c.signal(c.find("xor1")).type, GateType::kNot);
}

TEST(Clean, FunctionPreservedOnGeneratedCircuits) {
  for (const char* name : {"cm85", "x2", "decod"}) {
    Netlist n = gen::mcnc_like(name);
    Netlist c = clean(n);
    EXPECT_LE(c.num_gates(), n.num_gates()) << name;
    ASSERT_EQ(c.num_inputs(), n.num_inputs()) << name;
    ASSERT_EQ(c.outputs().size(), n.outputs().size()) << name;
    std::vector<double> l1(n.num_signals(), 0.0), l2(c.num_signals(), 0.0);
    sim::GateLevelSimulator s1(n, l1), s2(c, l2);
    cfpm::Xoshiro256 rng(17);
    std::vector<std::uint8_t> in(n.num_inputs());
    for (int k = 0; k < 500; ++k) {
      for (auto& bit : in) bit = static_cast<std::uint8_t>(rng.next_below(2));
      const auto v1 = s1.eval(in);
      const auto v2 = s2.eval(in);
      for (std::size_t o = 0; o < n.outputs().size(); ++o) {
        ASSERT_EQ(v1[n.outputs()[o]], v2[c.outputs()[o]])
            << name << " output " << o;
      }
    }
  }
}

TEST(Clean, ConstantOutputMaterialized) {
  Netlist n("k");
  const SignalId a = n.add_input("a");
  const SignalId na = n.add_gate(GateType::kNot, {a}, "na");
  const SignalId y = n.add_gate(GateType::kAnd, {a, na}, "y");  // always 0...
  n.mark_output(y);
  Netlist c = clean(n);
  // a AND !a is not folded by local constant propagation (it is not a
  // constant fanin), so the gate survives -- clean() is a cheap structural
  // pass, not a SAT sweep.
  EXPECT_NE(c.find("y"), kInvalidSignal);

  // But a true constant cone collapses to a named constant output.
  Netlist m("k2");
  m.add_input("x");
  const SignalId one = m.add_gate(GateType::kConst1, {}, "one");
  const SignalId no = m.add_gate(GateType::kNot, {one}, "no");
  m.mark_output(no);
  Netlist mc = clean(m);
  EXPECT_EQ(mc.signal(mc.find("no")).type, GateType::kConst0);
  EXPECT_EQ(mc.num_gates(), 1u);
}

TEST(Clean, ParityFlipWithMultipleSurvivors) {
  Netlist n("px");
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  const SignalId one = n.add_gate(GateType::kConst1, {}, "one");
  const SignalId y = n.add_gate(GateType::kXor, {a, b, one}, "y");
  n.mark_output(y);
  Netlist c = clean(n);
  EXPECT_EQ(c.signal(c.find("y")).type, GateType::kXnor);
  std::vector<double> loads(c.num_signals(), 0.0);
  sim::GateLevelSimulator s(c, loads);
  for (unsigned m = 0; m < 4; ++m) {
    const std::vector<std::uint8_t> in = {static_cast<std::uint8_t>(m & 1),
                                          static_cast<std::uint8_t>((m >> 1) & 1)};
    const bool expect = ((m & 1) ^ ((m >> 1) & 1) ^ 1) != 0;
    EXPECT_EQ(s.eval(in)[c.find("y")] != 0, expect) << m;
  }
}

}  // namespace
}  // namespace cfpm::netlist
