#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "support/error.hpp"

namespace cfpm::netlist {
namespace {

Netlist example_unit() {
  // Fig. 2.a of the paper: g1 = NOT x1, g2 = NOT x2, g3 = OR(x1, x2).
  Netlist n("fig2");
  const SignalId x1 = n.add_input("x1");
  const SignalId x2 = n.add_input("x2");
  n.add_gate(GateType::kNot, {x1}, "g1");
  n.add_gate(GateType::kNot, {x2}, "g2");
  n.add_gate(GateType::kOr, {x1, x2}, "g3");
  n.mark_output(n.find("g1"));
  n.mark_output(n.find("g2"));
  n.mark_output(n.find("g3"));
  return n;
}

TEST(Netlist, BasicTopology) {
  Netlist n = example_unit();
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.num_gates(), 3u);
  EXPECT_EQ(n.num_signals(), 5u);
  EXPECT_EQ(n.outputs().size(), 3u);
  n.validate();
}

TEST(Netlist, FindByName) {
  Netlist n = example_unit();
  EXPECT_NE(n.find("g3"), kInvalidSignal);
  EXPECT_EQ(n.find("nope"), kInvalidSignal);
  EXPECT_EQ(n.signal(n.find("g3")).type, GateType::kOr);
}

TEST(Netlist, InputIndexing) {
  Netlist n = example_unit();
  EXPECT_EQ(n.input_index(n.find("x1")), 0u);
  EXPECT_EQ(n.input_index(n.find("x2")), 1u);
  EXPECT_THROW(n.input_index(n.find("g1")), ContractError);
}

TEST(Netlist, DuplicateNamesRejected) {
  Netlist n;
  n.add_input("a");
  EXPECT_THROW(n.add_input("a"), ContractError);
  const SignalId a = n.find("a");
  n.add_gate(GateType::kNot, {a}, "b");
  EXPECT_THROW(n.add_gate(GateType::kNot, {a}, "b"), ContractError);
}

TEST(Netlist, TopologicalOrderEnforced) {
  Netlist n;
  const SignalId a = n.add_input("a");
  // Fanins must already exist: forward reference is impossible by id.
  EXPECT_THROW(n.add_gate(GateType::kNot, {static_cast<SignalId>(99)}, "g"),
               ContractError);
  n.add_gate(GateType::kNot, {a}, "g");
}

TEST(Netlist, ArityChecked) {
  Netlist n;
  const SignalId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a}, "g"), ContractError);
  EXPECT_THROW(n.add_gate(GateType::kNot, {a, a}, "g"), ContractError);
  EXPECT_THROW(n.add_gate(GateType::kConst0, {a}, "g"), ContractError);
  n.add_gate(GateType::kAnd, {a, a}, "ok");  // duplicate fanins allowed
}

TEST(Netlist, FanoutsComputed) {
  Netlist n = example_unit();
  const auto& fo = n.fanouts();
  const SignalId x1 = n.find("x1");
  // x1 feeds g1 and g3.
  EXPECT_EQ(fo[x1].size(), 2u);
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist n = example_unit();
  const std::size_t before = n.outputs().size();
  n.mark_output(n.find("g3"));
  EXPECT_EQ(n.outputs().size(), before);
}

TEST(Netlist, LoadAnnotationFollowsFanout) {
  // Paper rule: load of a driver = sum of its fanout gates' input caps.
  Netlist n = example_unit();
  GateLibrary lib = GateLibrary::uniform(2.0, 0.0);
  const auto loads = n.annotate_loads(lib);
  // x1 drives g1 (NOT) and g3 (OR): 2 pins -> 4.0 fF.
  EXPECT_DOUBLE_EQ(loads[n.find("x1")], 4.0);
  // g1..g3 drive nothing (no out load in this lib).
  EXPECT_DOUBLE_EQ(loads[n.find("g1")], 0.0);
}

TEST(Netlist, OutputLoadAdded) {
  Netlist n = example_unit();
  GateLibrary lib = GateLibrary::uniform(2.0, 7.5);
  const auto loads = n.annotate_loads(lib);
  EXPECT_DOUBLE_EQ(loads[n.find("g3")], 7.5);
  // Inputs are not primary outputs here.
  EXPECT_DOUBLE_EQ(loads[n.find("x1")], 4.0);
}

TEST(Netlist, WireLoadAddsPerFanoutBranch) {
  Netlist n = example_unit();
  GateLibrary lib = GateLibrary::uniform(2.0, 0.0);
  lib.set_wire_cap_per_fanout_ff(1.5);
  const auto loads = n.annotate_loads(lib);
  // x1 drives two pins: 2*(2.0 + 1.5) = 7.0 fF.
  EXPECT_DOUBLE_EQ(loads[n.find("x1")], 7.0);
}

TEST(Netlist, StandardLibraryHasPositiveCaps) {
  GateLibrary lib = GateLibrary::standard();
  EXPECT_GT(lib.input_cap_ff(GateType::kNand), 0.0);
  EXPECT_GT(lib.input_cap_ff(GateType::kXor), lib.input_cap_ff(GateType::kNot));
  EXPECT_DOUBLE_EQ(lib.input_cap_ff(GateType::kConst0), 0.0);
}

TEST(Netlist, LevelsAndDepth) {
  Netlist n = example_unit();
  const auto level = n.levels();
  EXPECT_EQ(level[n.find("x1")], 0u);
  EXPECT_EQ(level[n.find("g1")], 1u);
  EXPECT_EQ(level[n.find("g3")], 1u);
  EXPECT_EQ(n.depth(), 1u);

  // A chain deepens one level per gate.
  Netlist chain("chain");
  SignalId prev = chain.add_input("a");
  for (int i = 0; i < 5; ++i) {
    prev = chain.add_gate(GateType::kNot, {prev}, "n" + std::to_string(i));
  }
  EXPECT_EQ(chain.depth(), 5u);
  EXPECT_EQ(chain.levels()[prev], 5u);
}

TEST(GateEval, ScalarAgreesWithWordEvaluation) {
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor}) {
    for (unsigned m = 0; m < 8; ++m) {
      const std::uint8_t bits[3] = {static_cast<std::uint8_t>(m & 1),
                                    static_cast<std::uint8_t>((m >> 1) & 1),
                                    static_cast<std::uint8_t>((m >> 2) & 1)};
      const std::uint64_t words[3] = {bits[0] ? ~0ull : 0, bits[1] ? ~0ull : 0,
                                      bits[2] ? ~0ull : 0};
      const bool scalar = eval_gate(t, bits);
      const bool word = (eval_gate_words(t, words) & 1ull) != 0;
      EXPECT_EQ(scalar, word) << gate_type_name(t) << " minterm " << m;
    }
  }
}

TEST(GateEval, UnaryAndConstants) {
  const std::uint8_t one[1] = {1};
  const std::uint8_t zero[1] = {0};
  EXPECT_TRUE(eval_gate(GateType::kBuf, one));
  EXPECT_FALSE(eval_gate(GateType::kNot, one));
  EXPECT_TRUE(eval_gate(GateType::kNot, zero));
  EXPECT_FALSE(eval_gate(GateType::kConst0, {}));
  EXPECT_TRUE(eval_gate(GateType::kConst1, {}));
}

TEST(GateTypeNames, RoundTrip) {
  for (std::size_t i = 0; i < kNumGateTypes; ++i) {
    const GateType t = static_cast<GateType>(i);
    GateType parsed;
    ASSERT_TRUE(parse_gate_type(gate_type_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  GateType t;
  EXPECT_TRUE(parse_gate_type("buff", t));
  EXPECT_EQ(t, GateType::kBuf);
  EXPECT_TRUE(parse_gate_type("inv", t));
  EXPECT_EQ(t, GateType::kNot);
  EXPECT_FALSE(parse_gate_type("MAJ3", t));
}

}  // namespace
}  // namespace cfpm::netlist
