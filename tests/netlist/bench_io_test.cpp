#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/generators.hpp"
#include "support/error.hpp"

namespace cfpm::netlist {
namespace {

constexpr const char* kC17 = R"(# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIo, ParsesC17) {
  std::istringstream is(kC17);
  Netlist n = read_bench(is, "c17");
  EXPECT_EQ(n.num_inputs(), 5u);
  EXPECT_EQ(n.num_gates(), 6u);
  EXPECT_EQ(n.outputs().size(), 2u);
  EXPECT_EQ(n.signal(n.find("22")).type, GateType::kNand);
}

TEST(BenchIo, ParsedC17MatchesGenerator) {
  std::istringstream is(kC17);
  Netlist parsed = read_bench(is, "c17");
  Netlist built = gen::c17();
  EXPECT_EQ(parsed.num_inputs(), built.num_inputs());
  EXPECT_EQ(parsed.num_gates(), built.num_gates());
  EXPECT_EQ(parsed.outputs().size(), built.outputs().size());
}

TEST(BenchIo, OutOfOrderDefinitionsResolved) {
  std::istringstream is(R"(
INPUT(a)
OUTPUT(y)
y = AND(m, a)
m = NOT(a)
)");
  Netlist n = read_bench(is);
  EXPECT_EQ(n.num_gates(), 2u);
  // m must topologically precede y.
  EXPECT_LT(n.find("m"), n.find("y"));
}

TEST(BenchIo, RoundTripThroughWriter) {
  std::istringstream is(kC17);
  Netlist n = read_bench(is, "c17");
  std::ostringstream out;
  write_bench(out, n);
  std::istringstream is2(out.str());
  Netlist n2 = read_bench(is2, "c17rt");
  EXPECT_EQ(n2.num_inputs(), n.num_inputs());
  EXPECT_EQ(n2.num_gates(), n.num_gates());
  EXPECT_EQ(n2.outputs().size(), n.outputs().size());
}

TEST(BenchIo, WriterRoundTripsAllGateTypes) {
  Netlist n("alltypes");
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  n.add_gate(GateType::kBuf, {a}, "t_buf");
  n.add_gate(GateType::kNot, {a}, "t_not");
  n.add_gate(GateType::kAnd, {a, b}, "t_and");
  n.add_gate(GateType::kNand, {a, b}, "t_nand");
  n.add_gate(GateType::kOr, {a, b}, "t_or");
  n.add_gate(GateType::kNor, {a, b}, "t_nor");
  n.add_gate(GateType::kXor, {a, b}, "t_xor");
  n.add_gate(GateType::kXnor, {a, b}, "t_xnor");
  n.add_gate(GateType::kConst0, {}, "t_zero");
  n.add_gate(GateType::kConst1, {}, "t_one");
  for (const char* name : {"t_buf", "t_not", "t_and", "t_nand", "t_or",
                           "t_nor", "t_xor", "t_xnor", "t_zero", "t_one"}) {
    n.mark_output(n.find(name));
  }
  std::ostringstream out;
  write_bench(out, n);
  std::istringstream in(out.str());
  Netlist rt = read_bench(in, "alltypes");
  ASSERT_EQ(rt.num_gates(), n.num_gates());
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    const auto& orig = n.signal(s);
    const SignalId m = rt.find(orig.name);
    ASSERT_NE(m, kInvalidSignal) << orig.name;
    if (!orig.is_input) {
      EXPECT_EQ(rt.signal(m).type, orig.type) << orig.name;
    }
  }
}

TEST(BenchIo, RejectsDff) {
  std::istringstream is("INPUT(a)\nq = DFF(a)\nOUTPUT(q)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsUnknownGate) {
  std::istringstream is("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsUndefinedSignal) {
  std::istringstream is("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsUndefinedOutput) {
  std::istringstream is("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsCombinationalCycle) {
  std::istringstream is(R"(
INPUT(a)
OUTPUT(p)
p = AND(a, q)
q = NOT(p)
)");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsDoubleDefinition) {
  std::istringstream is("INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsInputAlsoGate) {
  std::istringstream is("INPUT(a)\na = NOT(a)\nOUTPUT(a)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, RejectsBadArity) {
  std::istringstream is("INPUT(a)\ny = NOT(a, a)\nOUTPUT(y)\n");
  EXPECT_THROW(read_bench(is), ParseError);
}

TEST(BenchIo, CommentsAndWhitespaceTolerated) {
  std::istringstream is(
      "  # leading comment\n"
      "INPUT( a )  # inline\n"
      "\t\n"
      "OUTPUT( y )\n"
      "y = not( a )\n");
  Netlist n = read_bench(is);
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.signal(n.find("y")).type, GateType::kNot);
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path.bench"), Error);
}

TEST(BenchIo, DataFileC17Loads) {
  // The repository ships c17.bench as sample data.
  Netlist n = read_bench_file(std::string(CFPM_DATA_DIR) + "/c17.bench");
  EXPECT_EQ(n.num_inputs(), 5u);
  EXPECT_EQ(n.num_gates(), 6u);
  EXPECT_EQ(n.name(), "c17");
}

}  // namespace
}  // namespace cfpm::netlist
