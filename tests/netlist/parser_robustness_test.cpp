// Malformed-input corpus for the BLIF and BENCH readers: every hostile
// case must surface as a located ParseError -- never a crash, a hang, or
// a silently wrong netlist.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "support/error.hpp"

namespace cfpm::netlist {
namespace {

/// Parses BLIF text and returns the ParseError it must raise.
ParseError expect_blif_error(const std::string& text) {
  std::istringstream is(text);
  try {
    read_blif(is);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "blif input accepted: " << text.substr(0, 60);
  return ParseError("not reached");
}

ParseError expect_bench_error(const std::string& text) {
  std::istringstream is(text);
  try {
    read_bench(is, "corpus");
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "bench input accepted: " << text.substr(0, 60);
  return ParseError("not reached");
}

// ---- truncated files ------------------------------------------------------

TEST(ParserRobustness, BlifTruncatedMidCover) {
  // File ends inside a .names block with the output never defined as used.
  const auto e = expect_blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n11");
  EXPECT_NE(std::string(e.what()).find("blif"), std::string::npos);
}

TEST(ParserRobustness, BlifTruncatedContinuationLine) {
  // Backslash continuation with no following line must not hang or crash.
  const auto e = expect_blif_error(".model t\n.inputs a\n.names \\");
  EXPECT_EQ(e.line(), 3u);
}

TEST(ParserRobustness, BenchTruncatedGateLine) {
  const auto e = expect_bench_error("INPUT(a)\nOUTPUT(y)\ny = AND(a");
  EXPECT_EQ(e.line(), 3u);
}

// ---- unterminated / malformed .names --------------------------------------

TEST(ParserRobustness, BlifNamesWithoutOutput) {
  const auto e = expect_blif_error(".model t\n.inputs a\n.names\n");
  EXPECT_EQ(e.line(), 3u);
  EXPECT_NE(std::string(e.what()).find(".names"), std::string::npos);
}

TEST(ParserRobustness, BlifCubeOutsideNames) {
  const auto e = expect_blif_error(".model t\n.inputs a b\n11 1\n");
  EXPECT_EQ(e.line(), 3u);
}

TEST(ParserRobustness, BlifCubeWidthMismatch) {
  const auto e = expect_blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n");
  EXPECT_GT(e.line(), 0u);
}

// ---- cyclic definitions ----------------------------------------------------

TEST(ParserRobustness, BlifCombinationalCycle) {
  const auto e = expect_blif_error(
      ".model cyc\n.inputs a\n.outputs y\n"
      ".names y a x\n11 1\n.names x a y\n11 1\n.end\n");
  EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  EXPECT_GT(e.line(), 0u);
}

TEST(ParserRobustness, BlifSelfCycle) {
  const auto e = expect_blif_error(
      ".model cyc\n.inputs a\n.outputs y\n.names y y\n1 1\n.end\n");
  EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
}

TEST(ParserRobustness, BenchCombinationalCycle) {
  const auto e = expect_bench_error(
      "INPUT(a)\nOUTPUT(y)\nx = AND(y, a)\ny = AND(x, a)\n");
  EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
}

// ---- pathological tokens ---------------------------------------------------

TEST(ParserRobustness, BlifTenThousandCharToken) {
  const std::string monster(10000, 'x');
  const auto e = expect_blif_error(".model t\n.inputs " + monster +
                                   "\n.outputs y\n.names y\n.end\n");
  EXPECT_EQ(e.line(), 2u);
  EXPECT_NE(std::string(e.what()).find("longer"), std::string::npos);
}

TEST(ParserRobustness, BenchTenThousandCharSignalName) {
  const std::string monster(10000, 'x');
  const auto e = expect_bench_error("INPUT(" + monster + ")\n");
  EXPECT_EQ(e.line(), 1u);
  EXPECT_NE(std::string(e.what()).find("longer"), std::string::npos);
}

TEST(ParserRobustness, BenchTenThousandCharGateName) {
  const std::string monster(10000, 'g');
  const auto e = expect_bench_error("INPUT(a)\n" + monster + " = NOT(a)\n");
  EXPECT_EQ(e.line(), 2u);
}

// ---- binary junk -----------------------------------------------------------

TEST(ParserRobustness, BlifNulByteRejected) {
  const auto e = expect_blif_error(std::string(".model t\n.inputs a\0b\n", 21));
  EXPECT_EQ(e.line(), 2u);
  EXPECT_NE(std::string(e.what()).find("NUL"), std::string::npos);
}

TEST(ParserRobustness, BenchNulByteRejected) {
  const auto e = expect_bench_error(std::string("INPUT(a\0)\n", 10));
  EXPECT_EQ(e.line(), 1u);
  EXPECT_NE(std::string(e.what()).find("NUL"), std::string::npos);
}

// ---- CRLF and whitespace tolerance (must PARSE, not error) -----------------

TEST(ParserRobustness, BenchCrlfLineEndingsAccepted) {
  std::istringstream is("INPUT(a)\r\nINPUT(b)\r\nOUTPUT(y)\r\ny = AND(a, b)\r\n");
  const Netlist n = read_bench(is, "crlf");
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
}

TEST(ParserRobustness, BlifCrlfLineEndingsAccepted) {
  // BLIF tokenization splits on whitespace, so a trailing \r is harmless.
  std::istringstream is(
      ".model crlf\r\n.inputs a b\r\n.outputs y\r\n.names a b y\r\n11 1\r\n.end\r\n");
  const Netlist n = read_blif(is);
  EXPECT_EQ(n.num_inputs(), 2u);
}

// ---- misc corpus -----------------------------------------------------------

TEST(ParserRobustness, BlifUndefinedFanin) {
  const auto e = expect_blif_error(
      ".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n");
  EXPECT_NE(std::string(e.what()).find("undefined"), std::string::npos);
}

TEST(ParserRobustness, BlifDuplicateDefinition) {
  const auto e = expect_blif_error(
      ".model t\n.inputs a\n.outputs y\n"
      ".names a y\n1 1\n.names a y\n0 1\n.end\n");
  EXPECT_NE(std::string(e.what()).find("twice"), std::string::npos);
}

TEST(ParserRobustness, BenchGateArityViolation) {
  const auto e = expect_bench_error("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n");
  EXPECT_EQ(e.line(), 3u);
}

TEST(ParserRobustness, EmptyInputsAreHandled) {
  // An empty BENCH stream is a (degenerate but valid) empty netlist; an
  // empty BLIF stream likewise has no covers. Neither may crash.
  std::istringstream bench_is("");
  EXPECT_NO_THROW(read_bench(bench_is, "empty"));
  std::istringstream blif_is("");
  EXPECT_NO_THROW(read_blif(blif_is));
}

}  // namespace
}  // namespace cfpm::netlist
