#include "netlist/blif_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/error.hpp"

namespace cfpm::netlist {
namespace {

/// Evaluates output `out` of `n` for given primary-input bits.
bool eval_output(const Netlist& n, const std::string& out,
                 std::initializer_list<int> bits) {
  std::vector<double> loads(n.num_signals(), 1.0);
  sim::GateLevelSimulator simulator(n, loads);
  std::vector<std::uint8_t> in;
  for (int b : bits) in.push_back(static_cast<std::uint8_t>(b));
  const auto values = simulator.eval(in);
  return values[n.find(out)] != 0;
}

TEST(BlifIo, MajorityCover) {
  std::istringstream is(R"(
.model maj
.inputs a b c
.outputs y
.names a b c y
11- 1
1-1 1
-11 1
.end
)");
  Netlist n = read_blif(is);
  EXPECT_EQ(n.name(), "maj");
  EXPECT_EQ(n.num_inputs(), 3u);
  for (unsigned m = 0; m < 8; ++m) {
    const int a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    EXPECT_EQ(eval_output(n, "y", {a, b, c}), (a + b + c) >= 2)
        << "minterm " << m;
  }
}

TEST(BlifIo, OffsetCover) {
  // y is 0 exactly when a=1,b=0 -> y = !(a & !b).
  std::istringstream is(R"(
.model offs
.inputs a b
.outputs y
.names a b y
10 0
.end
)");
  Netlist n = read_blif(is);
  EXPECT_TRUE(eval_output(n, "y", {0, 0}));
  EXPECT_TRUE(eval_output(n, "y", {0, 1}));
  EXPECT_FALSE(eval_output(n, "y", {1, 0}));
  EXPECT_TRUE(eval_output(n, "y", {1, 1}));
}

TEST(BlifIo, ConstantCovers) {
  std::istringstream is(R"(
.model consts
.inputs a
.outputs zero one
.names zero
.names one
 1
.end
)");
  Netlist n = read_blif(is);
  EXPECT_FALSE(eval_output(n, "zero", {0}));
  EXPECT_TRUE(eval_output(n, "one", {0}));
}

TEST(BlifIo, IntermediateSignalsAndDependencyOrder) {
  // t defined after its use in y; loader must reorder.
  std::istringstream is(R"(
.model deps
.inputs a b
.outputs y
.names t y
0 1
.names a b t
11 1
.end
)");
  Netlist n = read_blif(is);
  // y = !(a & b)
  EXPECT_TRUE(eval_output(n, "y", {0, 1}));
  EXPECT_FALSE(eval_output(n, "y", {1, 1}));
}

TEST(BlifIo, LineContinuation) {
  std::istringstream is(
      ".model cont\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n");
  Netlist n = read_blif(is);
  EXPECT_EQ(n.num_inputs(), 2u);
  EXPECT_TRUE(eval_output(n, "y", {1, 1}));
}

TEST(BlifIo, SingleLiteralCoverBecomesBufOrNot) {
  std::istringstream is(R"(
.model wire
.inputs a
.outputs y z
.names a y
1 1
.names a z
0 1
.end
)");
  Netlist n = read_blif(is);
  EXPECT_TRUE(eval_output(n, "y", {1}));
  EXPECT_FALSE(eval_output(n, "y", {0}));
  EXPECT_FALSE(eval_output(n, "z", {1}));
  EXPECT_TRUE(eval_output(n, "z", {0}));
}

TEST(BlifIo, RejectsLatch) {
  std::istringstream is(".model seq\n.inputs a\n.outputs q\n.latch a q 0\n.end\n");
  EXPECT_THROW(read_blif(is), ParseError);
}

TEST(BlifIo, RejectsCycle) {
  std::istringstream is(R"(
.model cyc
.inputs a
.outputs y
.names a z y
11 1
.names y z
1 1
.end
)");
  EXPECT_THROW(read_blif(is), ParseError);
}

TEST(BlifIo, RejectsUndefinedFanin) {
  std::istringstream is(
      ".model u\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n");
  EXPECT_THROW(read_blif(is), ParseError);
}

TEST(BlifIo, RejectsMixedOnOffRows) {
  std::istringstream is(
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n");
  EXPECT_THROW(read_blif(is), ParseError);
}

TEST(BlifIo, RejectsCubeOutsideNames) {
  std::istringstream is(".model m\n.inputs a\n.outputs y\n11 1\n.end\n");
  EXPECT_THROW(read_blif(is), ParseError);
}

TEST(BlifIo, RejectsDuplicateDefinition) {
  std::istringstream is(
      ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n");
  EXPECT_THROW(read_blif(is), ParseError);
}

TEST(BlifIo, WriterRoundTripsAllGateTypes) {
  Netlist n("rt");
  const SignalId a = n.add_input("a");
  const SignalId b = n.add_input("b");
  const SignalId c = n.add_input("c");
  n.add_gate(GateType::kBuf, {a}, "w_buf");
  n.add_gate(GateType::kNot, {a}, "w_not");
  n.add_gate(GateType::kAnd, {a, b, c}, "w_and");
  n.add_gate(GateType::kNand, {a, b}, "w_nand");
  n.add_gate(GateType::kOr, {a, b, c}, "w_or");
  n.add_gate(GateType::kNor, {a, b}, "w_nor");
  n.add_gate(GateType::kXor, {a, b, c}, "w_xor");
  n.add_gate(GateType::kXnor, {a, b}, "w_xnor");
  n.add_gate(GateType::kConst0, {}, "w_zero");
  n.add_gate(GateType::kConst1, {}, "w_one");
  for (const char* out : {"w_buf", "w_not", "w_and", "w_nand", "w_or",
                          "w_nor", "w_xor", "w_xnor", "w_zero", "w_one"}) {
    n.mark_output(n.find(out));
  }

  std::stringstream ss;
  write_blif(ss, n);
  Netlist rt = read_blif(ss);
  ASSERT_EQ(rt.num_inputs(), 3u);
  ASSERT_EQ(rt.outputs().size(), n.outputs().size());

  std::vector<double> l1(n.num_signals(), 0.0), l2(rt.num_signals(), 0.0);
  sim::GateLevelSimulator s1(n, l1), s2(rt, l2);
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<std::uint8_t> in = {
        static_cast<std::uint8_t>(m & 1), static_cast<std::uint8_t>((m >> 1) & 1),
        static_cast<std::uint8_t>((m >> 2) & 1)};
    const auto v1 = s1.eval(in);
    const auto v2 = s2.eval(in);
    for (std::size_t o = 0; o < n.outputs().size(); ++o) {
      ASSERT_EQ(v1[n.outputs()[o]], v2[rt.outputs()[o]])
          << "output " << o << " minterm " << m;
    }
  }
}

TEST(BlifIo, WriterRoundTripsGeneratedCircuits) {
  for (const char* name : {"decod", "x2", "cm85"}) {
    Netlist n = netlist::gen::mcnc_like(name);
    std::stringstream ss;
    write_blif(ss, n);
    Netlist rt = read_blif(ss);
    ASSERT_EQ(rt.num_inputs(), n.num_inputs()) << name;
    ASSERT_EQ(rt.outputs().size(), n.outputs().size()) << name;
    std::vector<double> l1(n.num_signals(), 0.0), l2(rt.num_signals(), 0.0);
    sim::GateLevelSimulator s1(n, l1), s2(rt, l2);
    cfpm::Xoshiro256 rng(5);
    std::vector<std::uint8_t> in(n.num_inputs());
    for (int k = 0; k < 256; ++k) {
      for (auto& bit : in) bit = static_cast<std::uint8_t>(rng.next_below(2));
      const auto v1 = s1.eval(in);
      const auto v2 = s2.eval(in);
      for (std::size_t o = 0; o < n.outputs().size(); ++o) {
        ASSERT_EQ(v1[n.outputs()[o]], v2[rt.outputs()[o]])
            << name << " output " << o << " trial " << k;
      }
    }
  }
}

TEST(BlifIo, DataFileLoads) {
  Netlist n = read_blif_file(std::string(CFPM_DATA_DIR) + "/majority.blif");
  EXPECT_EQ(n.name(), "majority");
  EXPECT_EQ(n.num_inputs(), 3u);
  EXPECT_TRUE(eval_output(n, "y", {1, 1, 0}));
  EXPECT_FALSE(eval_output(n, "y", {1, 0, 0}));
}

}  // namespace
}  // namespace cfpm::netlist
