#include "netlist/generators.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cfpm::netlist {
namespace {

std::vector<std::uint8_t> eval_all(const Netlist& n,
                                   std::span<const std::uint8_t> in) {
  std::vector<double> loads(n.num_signals(), 0.0);
  sim::GateLevelSimulator s(n, loads);
  return s.eval(in);
}

TEST(Generators, AdderComputesSums) {
  const unsigned w = 4;
  Netlist n = gen::ripple_carry_adder(w);
  ASSERT_EQ(n.num_inputs(), 2 * w + 1);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; b += 3) {
      for (unsigned cin = 0; cin <= 1; ++cin) {
        std::vector<std::uint8_t> in;
        for (unsigned i = 0; i < w; ++i) {  // interleaved a_i, b_i
          in.push_back((a >> i) & 1u);
          in.push_back((b >> i) & 1u);
        }
        in.push_back(static_cast<std::uint8_t>(cin));
        const auto vals = eval_all(n, in);
        unsigned sum = 0;
        for (unsigned i = 0; i < w; ++i) {
          if (vals[n.find("sum" + std::to_string(i))]) sum |= 1u << i;
        }
        if (vals[n.outputs().back()]) sum |= 1u << w;  // cout
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(Generators, ComparatorOrdersCorrectly) {
  const unsigned w = 3;
  Netlist n = gen::magnitude_comparator(w);
  for (unsigned a = 0; a < 8; ++a) {
    for (unsigned b = 0; b < 8; ++b) {
      std::vector<std::uint8_t> in;
      for (unsigned i = 0; i < w; ++i) {  // interleaved a_i, b_i
        in.push_back((a >> i) & 1u);
        in.push_back((b >> i) & 1u);
      }
      const auto vals = eval_all(n, in);
      const bool eq = vals[n.outputs()[0]];
      const bool gt = vals[n.outputs()[1]];
      const bool lt = vals[n.outputs()[2]];
      EXPECT_EQ(eq, a == b);
      EXPECT_EQ(gt, a > b);
      EXPECT_EQ(lt, a < b);
    }
  }
}

TEST(Generators, FlatMuxSelects) {
  // Input order: s0..s2, en, d0..d7 (selects first for compact DDs).
  Netlist n = gen::mux_flat(3);
  for (unsigned sel = 0; sel < 8; ++sel) {
    for (unsigned data_bit = 0; data_bit <= 1; ++data_bit) {
      std::vector<std::uint8_t> in(12, 0);
      for (unsigned s = 0; s < 3; ++s) in[s] = (sel >> s) & 1u;
      in[3] = 1;  // enable
      in[4 + sel] = static_cast<std::uint8_t>(data_bit);  // d[sel]
      const auto vals = eval_all(n, in);
      EXPECT_EQ(vals[n.outputs()[0]] != 0, data_bit != 0) << "sel " << sel;
    }
  }
  // Disabled -> 0 regardless.
  std::vector<std::uint8_t> in(12, 1);
  in[3] = 0;
  const auto vals = eval_all(n, in);
  EXPECT_EQ(vals[n.outputs()[0]], 0);
}

TEST(Generators, TwoLevelMuxMatchesFlat) {
  Netlist two = gen::mux_two_level();
  Netlist flat = gen::mux_flat(4);
  ASSERT_EQ(two.num_inputs(), flat.num_inputs());
  Xoshiro256 rng(5);
  std::vector<std::uint8_t> in(21);
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_below(2));
    const auto v1 = eval_all(two, in);
    const auto v2 = eval_all(flat, in);
    EXPECT_EQ(v1[two.outputs()[0]], v2[flat.outputs()[0]]) << trial;
  }
}

TEST(Generators, DecoderOneHot) {
  Netlist n = gen::decoder(3);
  for (unsigned a = 0; a < 8; ++a) {
    std::vector<std::uint8_t> in;
    for (unsigned i = 0; i < 3; ++i) in.push_back((a >> i) & 1u);
    in.push_back(1);  // enable
    const auto vals = eval_all(n, in);
    for (unsigned m = 0; m < 8; ++m) {
      EXPECT_EQ(vals[n.outputs()[m]] != 0, m == a) << "a=" << a << " m=" << m;
    }
  }
}

TEST(Generators, ParityTreeComputesParity) {
  Netlist n = gen::parity_tree(8, 1);
  Xoshiro256 rng(3);
  std::vector<std::uint8_t> in(8);
  for (int trial = 0; trial < 256; ++trial) {
    unsigned ones = 0;
    for (unsigned i = 0; i < 8; ++i) {
      in[i] = (trial >> i) & 1u;
      ones += in[i];
    }
    const auto vals = eval_all(n, in);
    EXPECT_EQ(vals[n.outputs()[0]] != 0, (ones % 2) == 1) << trial;
  }
}

TEST(Generators, AluFunctions) {
  const unsigned w = 4;
  Netlist n = gen::alu(w);
  const unsigned mask = (1u << w) - 1;
  for (unsigned a = 0; a < 16; a += 1) {
    for (unsigned b = 0; b < 16; b += 2) {
      for (unsigned f = 0; f < 4; ++f) {
        std::vector<std::uint8_t> in;
        for (unsigned i = 0; i < w; ++i) {  // interleaved a_i, b_i
          in.push_back((a >> i) & 1u);
          in.push_back((b >> i) & 1u);
        }
        in.push_back(f & 1u);         // f0: 0 arith / 1 logic
        in.push_back((f >> 1) & 1u);  // f1
        const auto vals = eval_all(n, in);
        unsigned y = 0;
        for (unsigned i = 0; i < w; ++i) {
          if (vals[n.find("y" + std::to_string(i))]) y |= 1u << i;
        }
        unsigned expect = 0;
        switch (f) {
          case 0: expect = (a + b) & mask; break;          // add
          case 2: expect = (a - b) & mask; break;          // sub
          case 1: expect = a & b; break;                   // and
          case 3: expect = a | b; break;                   // or
        }
        EXPECT_EQ(y, expect) << "a=" << a << " b=" << b << " f=" << f;
      }
    }
  }
}

TEST(Generators, RandomLogicDeterministic) {
  gen::RandomLogicSpec spec;
  spec.seed = 42;
  Netlist a = gen::random_logic(spec);
  Netlist b = gen::random_logic(spec);
  EXPECT_EQ(a.num_signals(), b.num_signals());
  for (SignalId s = 0; s < a.num_signals(); ++s) {
    EXPECT_EQ(a.signal(s).type, b.signal(s).type);
    EXPECT_EQ(a.signal(s).name, b.signal(s).name);
  }
}

TEST(Generators, RandomLogicRespectsWindow) {
  gen::RandomLogicSpec spec;
  spec.num_inputs = 20;
  spec.target_gates = 60;
  spec.window = 6;
  spec.seed = 9;
  Netlist n = gen::random_logic(spec);
  // Transitive input support of every signal fits in a 6-wide window.
  std::vector<std::pair<unsigned, unsigned>> win(n.num_signals());
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    if (n.signal(s).is_input) {
      const unsigned idx = n.input_index(s);
      win[s] = {idx, idx};
      continue;
    }
    unsigned lo = ~0u, hi = 0;
    for (SignalId f : n.fanins(s)) {
      lo = std::min(lo, win[f].first);
      hi = std::max(hi, win[f].second);
    }
    win[s] = {lo, hi};
    EXPECT_LE(hi - lo + 1, spec.window);
  }
}

TEST(Generators, McncNamesAllBuild) {
  // Expected (n, N) from Table 1. Input counts must match exactly; gate
  // counts are approximate (structural stand-ins whose ADD complexity is
  // additionally tuned to the paper's MAX budgets -- see DESIGN.md), so
  // they only need to stay within a factor of the mapped netlists.
  struct Row {
    const char* name;
    std::size_t n;
    std::size_t paper_gates;
  };
  const Row rows[] = {
      {"alu2", 10, 252}, {"alu4", 14, 460}, {"cmb", 16, 34},
      {"cm150", 21, 46}, {"cm85", 11, 31},  {"comp", 32, 93},
      {"decod", 5, 23},  {"k2", 45, 1206},  {"mux", 21, 61},
      {"parity", 16, 36}, {"pcle", 19, 45}, {"x1", 49, 228},
      {"x2", 10, 40},
  };
  for (const Row& r : rows) {
    Netlist n = gen::mcnc_like(r.name);
    n.validate();
    EXPECT_EQ(n.num_inputs(), r.n) << r.name;
    const double ratio = static_cast<double>(n.num_gates()) /
                         static_cast<double>(r.paper_gates);
    EXPECT_GT(ratio, 0.35) << r.name << " gates=" << n.num_gates();
    EXPECT_LT(ratio, 1.7) << r.name << " gates=" << n.num_gates();
    EXPECT_EQ(n.name(), r.name);
  }
}

TEST(Generators, McncListMatchesTableOrder) {
  const auto names = gen::mcnc_names();
  EXPECT_EQ(names.size(), 13u);
  EXPECT_EQ(names.front(), "alu2");
  EXPECT_EQ(names.back(), "x2");
}

TEST(Generators, UnknownMcncNameThrows) {
  EXPECT_THROW(gen::mcnc_like("c6288"), Error);
}

TEST(Generators, C17MatchesKnownStructure) {
  Netlist n = gen::c17();
  EXPECT_EQ(n.num_inputs(), 5u);
  EXPECT_EQ(n.num_gates(), 6u);
  const auto vals = eval_all(n, std::vector<std::uint8_t>{1, 1, 1, 1, 1});
  // With all inputs 1: 10 = NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=1,
  // 22=NAND(0,1)=1, 23=NAND(1,1)=0.
  EXPECT_EQ(vals[n.find("22")], 1);
  EXPECT_EQ(vals[n.find("23")], 0);
}

}  // namespace
}  // namespace cfpm::netlist
