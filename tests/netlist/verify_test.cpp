#include "netlist/verify.hpp"

#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "netlist/transform.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace cfpm::netlist {
namespace {

TEST(Equivalence, IdenticalCircuitsAreEquivalent) {
  Netlist a = gen::c17();
  Netlist b = gen::c17();
  const auto r = check_equivalence(a, b);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.differing_output.empty());
}

TEST(Equivalence, DecompositionProvenForAllMcncCircuits) {
  // Formal upgrade of the simulation spot-checks: decompose_to_2input is
  // functionally exact on every benchmark stand-in.
  for (const std::string& name : gen::mcnc_names()) {
    if (name == "k2") continue;  // large; covered by x1 and the small set
    Netlist src = gen::mcnc_like(name);
    Netlist dst = decompose_to_2input(src);
    const auto r = check_equivalence(src, dst);
    EXPECT_TRUE(r.equivalent) << name << " differs on " << r.differing_output;
  }
}

TEST(Equivalence, CleanPassProvenForAllMcncCircuits) {
  for (const std::string& name : gen::mcnc_names()) {
    if (name == "k2") continue;
    Netlist src = gen::mcnc_like(name);
    Netlist dst = clean(src);
    const auto r = check_equivalence(src, dst);
    EXPECT_TRUE(r.equivalent) << name << " differs on " << r.differing_output;
  }
}

TEST(Equivalence, DetectsDifferenceWithWitness) {
  Netlist a("a");
  const SignalId x = a.add_input("x");
  const SignalId y = a.add_input("y");
  a.mark_output(a.add_gate(GateType::kAnd, {x, y}, "out"));

  Netlist b("b");
  const SignalId x2 = b.add_input("x");
  const SignalId y2 = b.add_input("y");
  b.mark_output(b.add_gate(GateType::kOr, {x2, y2}, "out"));

  const auto r = check_equivalence(a, b);
  ASSERT_FALSE(r.equivalent);
  EXPECT_EQ(r.differing_output, "out");
  // The witness must actually distinguish the two circuits.
  ASSERT_EQ(r.counterexample.size(), 2u);
  std::vector<double> la(a.num_signals(), 0.0), lb(b.num_signals(), 0.0);
  sim::GateLevelSimulator sa(a, la), sb(b, lb);
  const auto va = sa.eval(r.counterexample);
  const auto vb = sb.eval(r.counterexample);
  EXPECT_NE(va[a.outputs()[0]], vb[b.outputs()[0]]);
}

TEST(Equivalence, InterfaceMismatchRejected) {
  Netlist a("a");
  a.add_input("x");
  a.mark_output(a.add_gate(GateType::kNot, {0u}, "out"));

  Netlist wrong_inputs("w");
  wrong_inputs.add_input("z");  // different name
  wrong_inputs.mark_output(wrong_inputs.add_gate(GateType::kNot, {0u}, "out"));
  EXPECT_THROW(check_equivalence(a, wrong_inputs), ContractError);

  Netlist wrong_outputs("w2");
  wrong_outputs.add_input("x");
  wrong_outputs.mark_output(
      wrong_outputs.add_gate(GateType::kNot, {0u}, "o1"));
  wrong_outputs.mark_output(
      wrong_outputs.add_gate(GateType::kBuf, {0u}, "o2"));
  EXPECT_THROW(check_equivalence(a, wrong_outputs), ContractError);
}

}  // namespace
}  // namespace cfpm::netlist
