// Full-pipeline integration: netlist -> model -> concurrent RTL/gate-level
// evaluation across input statistics. Mini versions of the paper's
// experiments with reduced vector counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "eval/experiment.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "power/factory.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"

namespace cfpm {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

struct Models {
  std::unique_ptr<power::PowerModel> con;
  std::unique_ptr<power::PowerModel> lin;
  std::unique_ptr<power::PowerModel> add;
};

Models build_models(const Netlist& n, std::size_t max_nodes) {
  // Characterize the baselines at sp = st = 0.5, as in the paper; the ADD
  // model is analytical and ignores the characterization settings.
  power::ModelOptions options;
  options.library = GateLibrary::uniform(5.0, 10.0);
  options.characterization = {0.5, 0.5};
  options.characterization_vectors = 3000;
  options.characterization_seed = 4242;
  options.add.max_nodes = max_nodes;
  Models m;
  m.con = power::make_model(power::ModelKind::kConstant, n, options);
  m.lin = power::make_model(power::ModelKind::kLinear, n, options);
  m.add = power::make_model(power::ModelKind::kAddAverage, n, options);
  return m;
}

TEST(EndToEnd, AddModelBeatsBaselinesOutOfSample) {
  const Netlist n = netlist::gen::mcnc_like("cm85");
  const sim::GateLevelSimulator golden(n, GateLibrary::uniform(5.0, 10.0));
  const Models m = build_models(n, 500);

  eval::EvalOptions options;
  options.run.vectors_per_run = 2000;
  const auto grid = stats::evaluation_grid();
  const power::PowerModel* models[] = {m.con.get(), m.lin.get(), m.add.get()};
  const auto reports = eval::evaluate(models, golden, grid, options);

  const double are_con = reports[0].are;
  const double are_lin = reports[1].are;
  const double are_add = reports[2].are;
  // Table-1 ordering: ADD << Lin << Con.
  EXPECT_LT(are_add, are_lin);
  EXPECT_LT(are_lin, are_con);
  EXPECT_LT(are_add, 0.10);  // paper: 5.7% on cm85
  EXPECT_GT(are_con, 0.50);  // paper: 518% (we only need "large")
}

TEST(EndToEnd, AddAccuracyFlatAcrossStatistics) {
  // Fig. 7a: the ADD curve is flat; Con/Lin blow up at low st.
  const Netlist n = netlist::gen::mcnc_like("cm85");
  const sim::GateLevelSimulator golden(n, GateLibrary::uniform(5.0, 10.0));
  const Models m = build_models(n, 500);

  eval::EvalOptions options;
  options.run.vectors_per_run = 2000;
  const auto sweep = stats::fig7a_sweep();
  const power::PowerModel* models[] = {m.con.get(), m.add.get()};
  const auto reports = eval::evaluate(models, golden, sweep, options);

  // Con's error at st = 0.05 is far larger than at st = 0.5.
  const auto& con_points = reports[0].points;
  const auto& add_points = reports[1].points;
  const double con_low = std::abs(con_points.front().re);
  double con_mid = 0.0, add_max = 0.0;
  for (std::size_t i = 0; i < con_points.size(); ++i) {
    if (std::abs(con_points[i].statistics.st - 0.5) < 1e-9) {
      con_mid = std::abs(con_points[i].re);
    }
    add_max = std::max(add_max, std::abs(add_points[i].re));
  }
  EXPECT_GT(con_low, 5.0 * (con_mid + 0.01));
  EXPECT_LT(add_max, 0.15);  // flat and small everywhere
}

TEST(EndToEnd, BoundsConservativeAndTighterThanConstant) {
  // Table-1 bound columns: pattern-dependent ADD bound vs constant bound.
  const Netlist n = netlist::gen::mcnc_like("mux");
  const sim::GateLevelSimulator golden(n, GateLibrary::uniform(5.0, 10.0));

  power::AddModelOptions opt;
  opt.max_nodes = 500;
  opt.mode = dd::ApproxMode::kUpperBound;
  const auto add_bound = power::AddPowerModel::build(
      n, GateLibrary::uniform(5.0, 10.0), opt);
  const power::ConstantBoundModel con_bound(add_bound.max_estimate_ff(),
                                            n.num_inputs());

  eval::EvalOptions options;
  options.metric = eval::Metric::kBound;
  options.run.vectors_per_run = 1500;
  const auto grid = stats::evaluation_grid();
  const power::PowerModel* models[] = {&con_bound, &add_bound};
  const auto reports = eval::evaluate(models, golden, grid, options);

  // Both conservative: signed RE >= 0 on every run.
  for (const auto& r : reports) {
    for (const auto& p : r.points) {
      EXPECT_GE(p.re, -1e-9) << r.model_name;
    }
  }
  // Pattern-dependent bound at least as tight on average.
  EXPECT_LE(reports[1].are, reports[0].are + 1e-9);
}

TEST(EndToEnd, SizeAccuracyTradeoffMonotoneOverall) {
  // Fig. 7b: ARE grows as the model shrinks (allowing small local noise).
  const Netlist n = netlist::gen::mcnc_like("cm85");
  const sim::GateLevelSimulator golden(n, GateLibrary::uniform(5.0, 10.0));
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  const auto exact = power::AddPowerModel::build(n, GateLibrary::uniform(5.0, 10.0), opt);

  eval::EvalOptions options;
  options.run.vectors_per_run = 1000;
  const auto grid = stats::evaluation_grid();

  const auto evaluate_one = [&](const power::PowerModel& model) {
    const power::PowerModel* ptr = &model;
    return eval::evaluate(std::span(&ptr, 1), golden, grid, options)[0];
  };
  const double are_exact = evaluate_one(exact).are;
  std::vector<double> ares;
  for (std::size_t size : {200u, 20u, 1u}) {
    const auto small = exact.compress(size);
    ares.push_back(evaluate_one(small).are);
  }
  EXPECT_LT(are_exact, 0.02);        // the exact model is the gold standard
  EXPECT_LE(are_exact, ares[0] + 0.02);
  EXPECT_LE(ares[0], ares[1] + 0.05);  // smaller models: no better on average
  EXPECT_LE(ares[1], ares[2] + 0.05);
}

TEST(EndToEnd, BenchCircuitsFromDiskWorkToo) {
  const Netlist n =
      netlist::read_bench_file(std::string(CFPM_DATA_DIR) + "/c17.bench");
  const sim::GateLevelSimulator golden(n, GateLibrary::uniform(5.0, 10.0));
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  const auto model = power::AddPowerModel::build(n, GateLibrary::uniform(5.0, 10.0), opt);
  // Exhaustive check against the golden model.
  std::vector<std::uint8_t> xi(5), xf(5);
  for (unsigned a = 0; a < 32; ++a) {
    for (unsigned b = 0; b < 32; ++b) {
      for (unsigned i = 0; i < 5; ++i) {
        xi[i] = (a >> i) & 1u;
        xf[i] = (b >> i) & 1u;
      }
      ASSERT_DOUBLE_EQ(model.estimate_ff(xi, xf),
                       golden.switching_capacitance_ff(xi, xf));
    }
  }
}

}  // namespace
}  // namespace cfpm
