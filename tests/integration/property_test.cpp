// Cross-module property sweeps, parameterized over benchmark circuits.
//
// P1: the unbounded ADD model equals the golden simulator on random pairs.
// P2: the upper-bound model dominates the golden simulator pointwise.
// P3: the average-mode model preserves the exact mean at any budget.
// P4: worst_case_ff() dominates every estimate the model produces.
// P5: model evaluation is consistent with PowerModel sequence helpers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace cfpm {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

class CircuitProperty : public ::testing::TestWithParam<const char*> {
 protected:
  Netlist circuit() const { return netlist::gen::mcnc_like(GetParam()); }
};

// Small/medium Table-1 circuits where the exact model is cheap to build.
INSTANTIATE_TEST_SUITE_P(SmallMcnc, CircuitProperty,
                         ::testing::Values("cmb", "cm85", "decod", "mux",
                                           "parity", "pcle", "x2", "cm150"));

TEST_P(CircuitProperty, ExactModelMatchesGolden) {
  const Netlist n = circuit();
  const GateLibrary lib = GateLibrary::standard();
  const sim::GateLevelSimulator golden(n, lib);
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  const auto model = power::AddPowerModel::build(n, lib, opt);

  Xoshiro256 rng(2718);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 400; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_DOUBLE_EQ(model.estimate_ff(xi, xf),
                     golden.switching_capacitance_ff(xi, xf))
        << GetParam() << " pair " << k;
  }
}

TEST_P(CircuitProperty, BoundDominatesGolden) {
  const Netlist n = circuit();
  const GateLibrary lib = GateLibrary::standard();
  const sim::GateLevelSimulator golden(n, lib);
  power::AddModelOptions opt;
  opt.max_nodes = 64;
  opt.mode = dd::ApproxMode::kUpperBound;
  const auto bound = power::AddPowerModel::build(n, lib, opt);
  ASSERT_LE(bound.size(), 64u);

  Xoshiro256 rng(314159);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 400; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_GE(bound.estimate_ff(xi, xf) + 1e-9,
              golden.switching_capacitance_ff(xi, xf))
        << GetParam() << " pair " << k;
  }
}

TEST_P(CircuitProperty, AverageModePreservesMeanAtAnyBudget) {
  const Netlist n = circuit();
  const GateLibrary lib = GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  const auto exact = power::AddPowerModel::build(n, lib, opt);
  const double mean = exact.average_estimate_ff();
  for (std::size_t budget : {64u, 8u, 1u}) {
    const auto small = exact.compress(budget, dd::ApproxMode::kAverage);
    EXPECT_NEAR(small.average_estimate_ff(), mean, 1e-6 * (1.0 + mean))
        << GetParam() << " budget " << budget;
  }
}

TEST_P(CircuitProperty, WorstCaseDominatesEstimates) {
  const Netlist n = circuit();
  const GateLibrary lib = GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = 128;
  const auto model = power::AddPowerModel::build(n, lib, opt);
  const double wc = model.worst_case_ff();
  Xoshiro256 rng(8888);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (int k = 0; k < 300; ++k) {
    for (std::size_t i = 0; i < n.num_inputs(); ++i) {
      xi[i] = static_cast<std::uint8_t>(rng.next_below(2));
      xf[i] = static_cast<std::uint8_t>(rng.next_below(2));
    }
    ASSERT_LE(model.estimate_ff(xi, xf), wc + 1e-9);
  }
}

TEST_P(CircuitProperty, SequenceHelpersConsistent) {
  const Netlist n = circuit();
  const GateLibrary lib = GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = 64;
  const auto model = power::AddPowerModel::build(n, lib, opt);

  // A deterministic little sequence.
  sim::InputSequence seq(n.num_inputs(), 50);
  Xoshiro256 rng(4321);
  for (std::size_t i = 0; i < n.num_inputs(); ++i) {
    for (std::size_t t = 0; t < 50; ++t) {
      seq.set_bit(i, t, rng.next_bool(0.5));
    }
  }
  double total = 0.0, peak = 0.0;
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (std::size_t t = 0; t + 1 < 50; ++t) {
    seq.vector_at(t, xi);
    seq.vector_at(t + 1, xf);
    const double e = model.estimate_ff(xi, xf);
    total += e;
    peak = std::max(peak, e);
  }
  EXPECT_NEAR(model.average_over(seq), total / 49.0, 1e-9);
  EXPECT_NEAR(model.peak_over(seq), peak, 1e-12);
}

}  // namespace
}  // namespace cfpm
