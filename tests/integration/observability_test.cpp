// Whole-pipeline observability: one model construction plus one evaluation
// grid must leave counters behind in every instrumented subsystem, and the
// trace recorder must capture the corresponding phase spans.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "eval/experiment.hpp"
#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "sim/simulator.hpp"
#include "support/governor.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm {
namespace {

TEST(Observability, PipelineLeavesCountersInEverySubsystem) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  metrics::reset_for_testing();

  const netlist::Netlist n = netlist::gen::mcnc_like("cm85");
  const netlist::GateLibrary lib = netlist::GateLibrary::uniform(5.0, 10.0);
  const sim::GateLevelSimulator golden(n, lib);

  power::AddModelOptions opt;
  opt.max_nodes = 200;
  opt.dd_config.governor = std::make_shared<Governor>();
  const auto model = power::AddPowerModel::build(n, lib, opt);

  eval::EvalOptions options;
  options.run.vectors_per_run = 200;
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}, {0.5, 0.2}};
  const power::PowerModel* model_ptr = &model;
  const auto report =
      eval::evaluate(std::span(&model_ptr, 1), golden, grid, options)[0];
  EXPECT_EQ(report.evaluated_points, grid.size());

  const metrics::Snapshot s = metrics::snapshot();
  // dd: the symbolic build allocates nodes and exercises the apply cache.
  EXPECT_GT(s.counter("dd.node.alloc"), 0u);
  EXPECT_GT(s.counter("dd.cache.hit") + s.counter("dd.cache.miss"), 0u);
  EXPECT_GT(s.counter("dd.compile.run"), 0u);
  // power: gates summed during construction, traces estimated during eval.
  EXPECT_GT(s.counter("power.build.gate.summed"), 0u);
  EXPECT_GT(s.counter("power.trace.call"), 0u);
  // governor: the attached governor was polled by the allocator.
  EXPECT_GT(s.counter("governor.poll.tick"), 0u);
  EXPECT_GT(s.counter("governor.check.run"), 0u);
  // eval + sim: one grid run, one golden simulation per cell.
  EXPECT_EQ(s.counter("eval.grid.run"), 1u);
  EXPECT_EQ(s.counter("eval.grid.cell"), grid.size());
  EXPECT_GE(s.counter("sim.golden.run"), grid.size());
  // Timing histogram: one observation per evaluated cell.
  const auto* cell_us = s.histogram("eval.grid.cell_us");
  ASSERT_NE(cell_us, nullptr);
  EXPECT_EQ(cell_us->count, grid.size());
}

TEST(Observability, PhaseSpansCoverBuildAndEvaluation) {
  if (!metrics::compiled_in()) GTEST_SKIP() << "built with CFPM_NO_METRICS";
  trace::clear();
  trace::set_enabled(true);

  const netlist::Netlist n = netlist::gen::c17();
  const netlist::GateLibrary lib = netlist::GateLibrary::uniform(5.0, 10.0);
  const sim::GateLevelSimulator golden(n, lib);
  power::AddModelOptions opt;
  opt.max_nodes = 0;
  const auto model = power::AddPowerModel::build(n, lib, opt);

  eval::EvalOptions options;
  options.run.vectors_per_run = 100;
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}};
  const power::PowerModel* model_ptr = &model;
  (void)eval::evaluate(std::span(&model_ptr, 1), golden, grid, options);

  trace::set_enabled(false);
  std::ostringstream os;
  trace::write_chrome_json(os);
  const std::string json = os.str();
  trace::clear();

  EXPECT_NE(json.find("\"power.build\""), std::string::npos);
  EXPECT_NE(json.find("\"eval.grid\""), std::string::npos);
  EXPECT_NE(json.find("\"eval.cell\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.golden\""), std::string::npos);
}

}  // namespace
}  // namespace cfpm
