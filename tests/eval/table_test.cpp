#include "eval/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace cfpm::eval {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header present, separator present, rows aligned right.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Every line has the same length (fixed-width columns).
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "line: '" << line << "'";
  }
}

TEST(TextTable, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
  EXPECT_THROW(TextTable({}), ContractError);
}

TEST(TextTable, NumFormatsDigits) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
  EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::num(1234.0, 1), "1234.0");
}

}  // namespace
}  // namespace cfpm::eval
