// Per-cell recovery in the experiment grid: a model (or the golden
// reference) that blows up on one grid point must cost exactly that cell,
// not the run -- every other cell completes and the ARE is computed over
// the survivors.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "eval/experiment.hpp"
#include "netlist/generators.hpp"
#include "power/baselines.hpp"

namespace cfpm::eval {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

/// A constant model sabotaged to throw on its k-th estimate_trace call
/// (calls arrive in nondeterministic order across worker threads, but the
/// count of failures is exact: one).
class SabotagedModel : public power::PowerModel {
 public:
  SabotagedModel(double value, std::size_t inputs, int detonate_on_call)
      : value_(value), inputs_(inputs), fuse_(detonate_on_call) {}

  std::string name() const override { return "Sabotaged"; }
  std::size_t num_inputs() const override { return inputs_; }
  double worst_case_ff() const override { return value_; }
  double estimate_ff(std::span<const std::uint8_t>,
                     std::span<const std::uint8_t>) const override {
    return value_;
  }
  power::TraceEstimate estimate_trace(const sim::InputSequence& seq,
                                      ThreadPool*) const override {
    if (fuse_.fetch_sub(1) == 1) {
      throw std::runtime_error("sabotaged cell detonated");
    }
    power::TraceEstimate est;
    est.transitions = seq.num_transitions();
    est.total_ff = value_ * static_cast<double>(est.transitions);
    est.peak_ff = est.transitions == 0 ? 0.0 : value_;
    return est;
  }

 private:
  double value_;
  std::size_t inputs_;
  mutable std::atomic<int> fuse_;
};

std::vector<stats::InputStatistics> five_point_grid() {
  return {{0.5, 0.5}, {0.5, 0.3}, {0.3, 0.3}, {0.7, 0.3}, {0.5, 0.1}};
}

TEST(GridRecovery, OneBlownCellDoesNotKillTheGrid) {
  const Netlist n = netlist::gen::c17();
  const GateLibrary lib = GateLibrary::standard();
  const sim::GateLevelSimulator golden(n, lib);

  const SabotagedModel bomb(10.0, n.num_inputs(), 3);
  const power::ConstantModel healthy(10.0, n.num_inputs());
  const power::PowerModel* models[] = {&bomb, &healthy};

  EvalOptions options;
  options.run.vectors_per_run = 200;
  const auto grid = five_point_grid();
  const auto reports = evaluate(models, golden, grid, options);
  ASSERT_EQ(reports.size(), 2u);

  // The sabotaged model lost exactly one cell; its report still covers the
  // full grid, with the failure marked and explained.
  const AccuracyReport& wounded = reports[0];
  EXPECT_EQ(wounded.points.size(), grid.size());
  EXPECT_EQ(wounded.failed_points, 1u);
  EXPECT_EQ(wounded.evaluated_points, grid.size() - 1);
  std::size_t marked = 0;
  for (const AccuracyPoint& p : wounded.points) {
    if (p.failed) {
      ++marked;
      EXPECT_NE(p.error.find("detonated"), std::string::npos);
    } else {
      EXPECT_GT(p.golden, 0.0);
    }
  }
  EXPECT_EQ(marked, 1u);

  // The healthy model sharing the run is untouched.
  const AccuracyReport& clean = reports[1];
  EXPECT_EQ(clean.failed_points, 0u);
  EXPECT_EQ(clean.evaluated_points, grid.size());
  for (const AccuracyPoint& p : clean.points) EXPECT_FALSE(p.failed);

  // Identical estimators -> identical ARE contributions on the surviving
  // cells; the wounded ARE averages over one fewer point but every term it
  // does include matches the healthy model's.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (wounded.points[i].failed) continue;
    EXPECT_DOUBLE_EQ(wounded.points[i].re, clean.points[i].re);
  }
}

TEST(GridRecovery, GoldenReferenceFailureFailsEveryModelCell) {
  const Netlist n = netlist::gen::c17();
  const power::ConstantModel a(5.0, n.num_inputs());
  const power::ConstantModel b(7.0, n.num_inputs());
  const power::PowerModel* models[] = {&a, &b};

  std::atomic<int> fuse{2};
  const ReferenceFn golden = [&](const sim::InputSequence& seq) {
    if (fuse.fetch_sub(1) == 1) {
      throw std::runtime_error("reference simulator crashed");
    }
    sim::SequenceEnergy energy;
    energy.per_transition_ff.assign(seq.num_transitions(), 42.0);
    energy.total_ff = 42.0 * static_cast<double>(seq.num_transitions());
    energy.peak_ff = 42.0;
    return energy;
  };

  EvalOptions options;
  options.run.vectors_per_run = 100;
  const auto grid = five_point_grid();
  const auto reports =
      evaluate(models, Reference(n.num_inputs(), golden), grid, options);
  for (const AccuracyReport& r : reports) {
    EXPECT_EQ(r.failed_points, 1u);
    EXPECT_EQ(r.points.size(), grid.size());
    EXPECT_EQ(r.evaluated_points, grid.size() - 1);
  }
}

TEST(GridRecovery, AllCellsFailedYieldsZeroAreNotNan) {
  const Netlist n = netlist::gen::c17();
  const power::ConstantModel a(5.0, n.num_inputs());
  const power::PowerModel* models[] = {&a};

  const ReferenceFn golden = [](const sim::InputSequence&) -> sim::SequenceEnergy {
    throw std::runtime_error("always down");
  };
  EvalOptions options;
  options.run.vectors_per_run = 50;
  const auto grid = five_point_grid();
  const auto reports =
      evaluate(models, Reference(n.num_inputs(), golden), grid, options);
  EXPECT_EQ(reports[0].failed_points, grid.size());
  EXPECT_EQ(reports[0].evaluated_points, 0u);
  EXPECT_EQ(reports[0].are, 0.0);  // defined, not NaN
}

}  // namespace
}  // namespace cfpm::eval
