#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "support/error.hpp"

namespace cfpm::eval {
namespace {

using netlist::GateLibrary;
using netlist::Netlist;

struct Fixture {
  Netlist n = netlist::gen::c17();
  GateLibrary lib = GateLibrary::standard();
  sim::GateLevelSimulator golden{n, lib};
  power::AddPowerModel exact = [this] {
    power::AddModelOptions opt;
    opt.max_nodes = 0;
    return power::AddPowerModel::build(n, lib, opt);
  }();
  EvalOptions options = [] {
    EvalOptions o;
    o.run.vectors_per_run = 400;
    return o;
  }();
};

/// Single-model convenience over the one remaining (span) entry point.
AccuracyReport evaluate_one(const power::PowerModel& model,
                            const Reference& golden,
                            std::span<const stats::InputStatistics> grid,
                            const EvalOptions& options) {
  const power::PowerModel* ptr = &model;
  return evaluate(std::span(&ptr, 1), golden, grid, options)[0];
}

TEST(Experiment, ExactModelHasZeroError) {
  Fixture f;
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}, {0.5, 0.1}};
  const AccuracyReport report =
      evaluate_one(f.exact, f.golden, grid, f.options);
  EXPECT_EQ(report.points.size(), 2u);
  EXPECT_EQ(report.evaluated_points, 2u);
  EXPECT_NEAR(report.are, 0.0, 1e-12);
  for (const auto& p : report.points) {
    EXPECT_NEAR(p.model, p.golden, 1e-9);
  }
}

TEST(Experiment, ConstantModelErrorMatchesHandComputation) {
  Fixture f;
  const power::ConstantModel con(100.0, f.n.num_inputs());
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}};
  const AccuracyReport report = evaluate_one(con, f.golden, grid, f.options);
  const AccuracyPoint& p = report.points.at(0);
  EXPECT_DOUBLE_EQ(p.model, 100.0);
  EXPECT_NEAR(p.re, std::abs(100.0 - p.golden) / p.golden, 1e-12);
  EXPECT_NEAR(report.are, p.re, 1e-12);
}

TEST(Experiment, SharedWorkloadAcrossModels) {
  // All models in one call see identical sequences: the golden value per
  // grid point must be byte-identical across the returned reports.
  Fixture f;
  const power::ConstantModel con(10.0, f.n.num_inputs());
  const power::ConstantModel con2(20.0, f.n.num_inputs());
  const power::PowerModel* models[] = {&con, &con2, &f.exact};
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.3}, {0.2, 0.2}};
  const auto reports = evaluate(models, f.golden, grid, f.options);
  ASSERT_EQ(reports.size(), 3u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(reports[0].points[i].golden, reports[1].points[i].golden);
    EXPECT_DOUBLE_EQ(reports[0].points[i].golden, reports[2].points[i].golden);
  }
}

TEST(Experiment, BoundMetricKeepsSign) {
  // For peak metrics the signed error is preserved: a conservative bound
  // has re >= 0, an under-estimator re < 0.
  Fixture f;
  const power::ConstantBoundModel big(1e6, f.n.num_inputs());
  const power::ConstantModel small(0.001, f.n.num_inputs());
  const power::PowerModel* models[] = {&big, &small};
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}};
  EvalOptions options = f.options;
  options.metric = Metric::kBound;
  const auto reports = evaluate(models, f.golden, grid, options);
  EXPECT_GT(reports[0].points[0].re, 0.0);
  EXPECT_LT(reports[1].points[0].re, 0.0);
  // ARE uses |re|.
  EXPECT_GT(reports[1].are, 0.0);
}

TEST(Experiment, DeterministicForFixedSeed) {
  Fixture f;
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.4}};
  const AccuracyReport a = evaluate_one(f.exact, f.golden, grid, f.options);
  const AccuracyReport b = evaluate_one(f.exact, f.golden, grid, f.options);
  EXPECT_DOUBLE_EQ(a.points[0].golden, b.points[0].golden);
}

TEST(Experiment, ExplicitReferenceFnMatchesSimulatorReference) {
  // The Reference wrapper over a bare callback must reproduce the implicit
  // simulator conversion bit-for-bit (same workload, same golden values).
  Fixture f;
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.4}};
  const Reference by_fn(f.n.num_inputs(), [&](const sim::InputSequence& seq) {
    return f.golden.simulate(seq);
  });
  const AccuracyReport a = evaluate_one(f.exact, f.golden, grid, f.options);
  const AccuracyReport b = evaluate_one(f.exact, by_fn, grid, f.options);
  EXPECT_DOUBLE_EQ(a.points[0].golden, b.points[0].golden);
  EXPECT_DOUBLE_EQ(a.points[0].model, b.points[0].model);
}

TEST(Experiment, RejectsArityMismatch) {
  Fixture f;
  const power::ConstantModel wrong(1.0, f.n.num_inputs() + 3);
  const power::PowerModel* models[] = {&wrong};
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}};
  EXPECT_THROW(evaluate(models, f.golden, grid, f.options), ContractError);
}

TEST(Experiment, RejectsEmptyInputs) {
  Fixture f;
  const power::PowerModel* models[] = {&f.exact};
  const std::vector<stats::InputStatistics> empty;
  EXPECT_THROW(evaluate(models, f.golden, empty, f.options), ContractError);
  const std::vector<stats::InputStatistics> grid = {{0.5, 0.5}};
  EXPECT_THROW(evaluate({}, f.golden, grid, f.options), ContractError);
}

TEST(RunConfig, EnvOverrideParsesPositiveIntegers) {
  ::setenv("CFPM_VECTORS", "1234", 1);
  EXPECT_EQ(RunConfig::from_env().vectors_per_run, 1234u);
  ::unsetenv("CFPM_VECTORS");
  EXPECT_EQ(RunConfig::from_env().vectors_per_run,
            RunConfig{}.vectors_per_run);
}

TEST(RunConfig, EnvOverrideRejectsGarbage) {
  // A typo'd CFPM_VECTORS must abort the run, not silently fall back to the
  // default workload size.
  ::setenv("CFPM_VECTORS", "garbage", 1);
  EXPECT_THROW(RunConfig::from_env(), Error);
  ::setenv("CFPM_VECTORS", "12oo", 1);  // trailing junk
  EXPECT_THROW(RunConfig::from_env(), Error);
  ::setenv("CFPM_VECTORS", "1", 1);  // a sequence needs >= 1 transition
  EXPECT_THROW(RunConfig::from_env(), Error);
  ::setenv("CFPM_VECTORS", "-5", 1);
  EXPECT_THROW(RunConfig::from_env(), Error);
  ::unsetenv("CFPM_VECTORS");
}

}  // namespace
}  // namespace cfpm::eval
