#include "stats/markov.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace cfpm::stats {
namespace {

TEST(Feasible, Boundary) {
  EXPECT_TRUE(feasible({0.5, 0.5}));
  EXPECT_TRUE(feasible({0.5, 1.0}));   // alternating chain
  EXPECT_TRUE(feasible({0.2, 0.4}));
  EXPECT_FALSE(feasible({0.2, 0.5}));  // st > 2 sp
  EXPECT_FALSE(feasible({0.8, 0.5}));  // st > 2 (1 - sp)
  EXPECT_TRUE(feasible({0.0, 0.0}));
  EXPECT_TRUE(feasible({1.0, 0.0}));
  EXPECT_FALSE(feasible({-0.1, 0.1}));
  EXPECT_FALSE(feasible({0.5, 1.1}));
}

TEST(Markov, InfeasibleRejected) {
  EXPECT_THROW(MarkovSequenceGenerator({0.1, 0.9}, 1), ContractError);
}

struct GridParam {
  double sp;
  double st;
};

class MarkovStatisticsTest
    : public ::testing::TestWithParam<GridParam> {};

TEST_P(MarkovStatisticsTest, EmpiricalStatsMatchTargets) {
  const auto [sp, st] = GetParam();
  MarkovSequenceGenerator gen({sp, st}, 12345);
  const auto seq = gen.generate(16, 20000);
  EXPECT_NEAR(seq.signal_probability(), sp, 0.02) << "sp target " << sp;
  EXPECT_NEAR(seq.transition_probability(), st, 0.02) << "st target " << st;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MarkovStatisticsTest,
    ::testing::Values(GridParam{0.5, 0.5}, GridParam{0.5, 0.1},
                      GridParam{0.5, 0.9}, GridParam{0.2, 0.1},
                      GridParam{0.2, 0.4}, GridParam{0.8, 0.3},
                      GridParam{0.35, 0.6}, GridParam{0.65, 0.2}));

TEST(Markov, DeterministicForSeed) {
  MarkovSequenceGenerator a({0.5, 0.3}, 7);
  MarkovSequenceGenerator b({0.5, 0.3}, 7);
  const auto sa = a.generate(4, 100);
  const auto sb = b.generate(4, 100);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t t = 0; t < 100; ++t) {
      ASSERT_EQ(sa.bit(i, t), sb.bit(i, t));
    }
  }
}

TEST(Markov, SuccessiveCallsDiffer) {
  MarkovSequenceGenerator g({0.5, 0.5}, 11);
  const auto s1 = g.generate(4, 64);
  const auto s2 = g.generate(4, 64);
  bool any_diff = false;
  for (std::size_t i = 0; i < 4 && !any_diff; ++i) {
    for (std::size_t t = 0; t < 64 && !any_diff; ++t) {
      any_diff = s1.bit(i, t) != s2.bit(i, t);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Markov, FrozenChainWhenStZero) {
  MarkovSequenceGenerator g({0.7, 0.0}, 3);
  const auto seq = g.generate(8, 500);
  EXPECT_DOUBLE_EQ(seq.transition_probability(), 0.0);
  EXPECT_NEAR(seq.signal_probability(), 0.7, 0.2);  // only initial draw varies
}

TEST(Markov, AlternatingChainWhenStOne) {
  MarkovSequenceGenerator g({0.5, 1.0}, 3);
  const auto seq = g.generate(4, 100);
  EXPECT_DOUBLE_EQ(seq.transition_probability(), 1.0);
}

TEST(Markov, AllZerosWhenSpZero) {
  MarkovSequenceGenerator g({0.0, 0.0}, 3);
  const auto seq = g.generate(4, 100);
  EXPECT_DOUBLE_EQ(seq.signal_probability(), 0.0);
}

TEST(Markov, PinnedBoundariesNeverToggle) {
  // Regression: the boundary branches used to report flip probability 1.0
  // for the direction a pinned chain can never take (sp=1 => p01, sp=0 =>
  // p10). Pinned chains must be frozen in both directions.
  EXPECT_EQ(flip_probabilities({1.0, 0.0}),
            (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(flip_probabilities({0.0, 0.0}),
            (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(flip_probabilities({0.3, 0.0}),
            (std::pair<double, double>{0.0, 0.0}));
  for (const double sp : {0.0, 1.0}) {
    for (const std::uint64_t seed : {1u, 99u}) {
      MarkovSequenceGenerator g({sp, 0.0}, seed);
      const auto seq = g.generate(8, 1000);
      EXPECT_DOUBLE_EQ(seq.transition_probability(), 0.0);
      EXPECT_DOUBLE_EQ(seq.signal_probability(), sp);
    }
  }
}

TEST(Markov, FlipProbabilitiesMatchInteriorFormula) {
  const auto [p01, p10] = flip_probabilities({0.25, 0.3});
  EXPECT_DOUBLE_EQ(p01, 0.3 / (2.0 * 0.75));
  EXPECT_DOUBLE_EQ(p10, 0.3 / (2.0 * 0.25));
  // Alternating chain: both directions saturate at 1.
  EXPECT_EQ(flip_probabilities({0.5, 1.0}),
            (std::pair<double, double>{1.0, 1.0}));
}

TEST(Burst, PhaseModulatedActivity) {
  stats::BurstSpec spec;
  spec.idle = {0.5, 0.02};
  spec.active = {0.5, 0.6};
  spec.enter_active = 0.05;
  spec.exit_active = 0.05;
  BurstSequenceGenerator gen(spec, 7);
  const auto seq = gen.generate(8, 20000);
  // Roughly half the time active (symmetric phase chain); overall st lies
  // strictly between the two phases' targets.
  EXPECT_NEAR(gen.last_active_fraction(), 0.5, 0.15);
  const double st = seq.transition_probability();
  EXPECT_GT(st, 0.05);
  EXPECT_LT(st, 0.55);
}

TEST(Burst, MostlyIdleWorkloadHasLowActivity) {
  stats::BurstSpec spec;  // defaults: rare bursts
  BurstSequenceGenerator gen(spec, 11);
  const auto seq = gen.generate(8, 20000);
  EXPECT_LT(gen.last_active_fraction(), 0.4);
  EXPECT_LT(seq.transition_probability(), 0.3);
  EXPECT_NEAR(seq.signal_probability(), 0.5, 0.1);
}

TEST(Burst, DeterministicAndValidated) {
  stats::BurstSpec spec;
  BurstSequenceGenerator a(spec, 3), b(spec, 3);
  const auto sa = a.generate(4, 200);
  const auto sb = b.generate(4, 200);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t t = 0; t < 200; ++t) {
      ASSERT_EQ(sa.bit(i, t), sb.bit(i, t));
    }
  }
  stats::BurstSpec bad;
  bad.active = {0.1, 0.9};  // infeasible phase
  EXPECT_THROW(BurstSequenceGenerator(bad, 1), ContractError);
}

TEST(EvaluationGrid, AllFeasibleAndNonEmpty) {
  const auto grid = evaluation_grid();
  EXPECT_GE(grid.size(), 25u);
  for (const auto& s : grid) {
    EXPECT_TRUE(feasible(s)) << s.sp << "," << s.st;
  }
}

TEST(EvaluationGrid, Fig7aSweepIsSpHalf) {
  const auto sweep = fig7a_sweep();
  EXPECT_EQ(sweep.size(), 19u);
  for (const auto& s : sweep) {
    EXPECT_DOUBLE_EQ(s.sp, 0.5);
    EXPECT_TRUE(feasible(s));
  }
  EXPECT_NEAR(sweep.front().st, 0.05, 1e-12);
  EXPECT_NEAR(sweep.back().st, 0.95, 1e-12);
}

}  // namespace
}  // namespace cfpm::stats
