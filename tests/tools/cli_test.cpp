// End-to-end tests of the `cfpm` command-line tool (spawned as a process).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run(const std::string& args) {
  const std::string cmd = std::string(CFPM_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  CommandResult result;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(Cli, UsageOnNoArguments) {
  const auto r = run("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown command"), std::string::npos);
}

TEST(Cli, InfoOnGenerator) {
  const auto r = run("info gen:c17");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("inputs  : 5"), std::string::npos);
  EXPECT_NE(r.output.find("gates   : 6"), std::string::npos);
  EXPECT_NE(r.output.find("NAND=6"), std::string::npos);
}

TEST(Cli, InfoOnBenchFile) {
  const auto r = run(std::string("info ") + CFPM_DATA_DIR + "/c17.bench");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("circuit : c17"), std::string::npos);
}

TEST(Cli, InfoRejectsUnknownFormat) {
  const auto r = run("info whatever.txt");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, BuildEstimateWorstPipeline) {
  const std::string model = ::testing::TempDir() + "/cli_cm85.cfpm";
  const auto build = run("build gen:cm85 -m 500 -o " + model);
  ASSERT_EQ(build.exit_code, 0) << build.output;
  EXPECT_NE(build.output.find("saved"), std::string::npos);

  const auto est = run("estimate " + model + " --st 0.2 --vectors 2000");
  ASSERT_EQ(est.exit_code, 0) << est.output;
  EXPECT_NE(est.output.find("average :"), std::string::npos);
  EXPECT_NE(est.output.find("fF/cycle"), std::string::npos);

  const auto worst = run("worst " + model);
  ASSERT_EQ(worst.exit_code, 0) << worst.output;
  EXPECT_NE(worst.output.find("worst case:"), std::string::npos);
  EXPECT_NE(worst.output.find("witness"), std::string::npos);
  std::remove(model.c_str());
}

TEST(Cli, EstimateRejectsInfeasibleStatistics) {
  const std::string model = ::testing::TempDir() + "/cli_c17.cfpm";
  ASSERT_EQ(run("build gen:c17 -m 100 -o " + model).exit_code, 0);
  const auto r = run("estimate " + model + " --sp 0.1 --st 0.9");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("infeasible"), std::string::npos);
  std::remove(model.c_str());
}

TEST(Cli, TraceWritesVcd) {
  const std::string vcd = ::testing::TempDir() + "/cli_c17.vcd";
  const auto r = run("trace gen:c17 -o " + vcd + " --st 0.3 --vectors 40");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::FILE* f = std::fopen(vcd.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::array<char, 64> head;
  ASSERT_NE(std::fgets(head.data(), head.size(), f), nullptr);
  EXPECT_EQ(std::string(head.data()).rfind("$date", 0), 0u);
  std::fclose(f);
  std::remove(vcd.c_str());
}



TEST(Cli, SensitivityRanksInputs) {
  const std::string model = ::testing::TempDir() + "/cli_sens.cfpm";
  ASSERT_EQ(run("build gen:c17 -m 0 -o " + model).exit_code, 0);
  const auto r = run("sensitivity " + model);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("x0"), std::string::npos);
  EXPECT_NE(r.output.find("x4"), std::string::npos);
  EXPECT_NE(r.output.find("sensitivity (fF)"), std::string::npos);
  std::remove(model.c_str());
}


TEST(Cli, EquivalenceCheck) {
  const auto same = run("equiv gen:c17 gen:c17");
  EXPECT_EQ(same.exit_code, 0) << same.output;
  EXPECT_NE(same.output.find("EQUIVALENT"), std::string::npos);

  // c17 vs a different 5-input circuit with 2 outputs... use cm85? different
  // interface. Compare c17 against itself decomposed via files instead:
  // write c17 to a temp bench, mutate one gate, expect NOT EQUIVALENT.
  const std::string path = ::testing::TempDir() + "/cli_equiv.bench";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n"
      "OUTPUT(22)\nOUTPUT(23)\n"
      "10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n"
      "19 = NAND(11, 7)\n22 = AND(10, 16)\n23 = NAND(16, 19)\n",
      f);
  std::fclose(f);
  const auto diff = run("equiv gen:c17 " + path);
  EXPECT_EQ(diff.exit_code, 1);
  EXPECT_NE(diff.output.find("NOT EQUIVALENT"), std::string::npos);
  EXPECT_NE(diff.output.find("counterexample"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, RtlDesignEstimate) {
  const auto r = run(std::string("rtl ") + CFPM_DATA_DIR +
                     "/datapath.rtl --st 0.2 --vectors 500");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("design  : sample_datapath"), std::string::npos);
  EXPECT_NE(r.output.find("alu0"), std::string::npos);
  EXPECT_NE(r.output.find("share(%)"), std::string::npos);
}

TEST(Cli, RtlMissingFileFails) {
  const auto r = run("rtl /does/not/exist.rtl");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, ExpiredDeadlineDegradesWithDistinctExitCode) {
  // --deadline-ms 0 expires before the first gate is summed; the build
  // walks the ladder to the constant fallback, still saves a usable model,
  // and signals the degradation via exit code 3.
  const std::string model = ::testing::TempDir() + "/cli_deadline.cfpm";
  const auto r = run("build gen:cm85 --deadline-ms 0 -o " + model);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("DEGRADED"), std::string::npos);
  EXPECT_NE(r.output.find("fallback-constant"), std::string::npos);
  EXPECT_NE(r.output.find("saved"), std::string::npos);

  const auto est = run("estimate " + model + " --st 0.2 --vectors 500");
  EXPECT_EQ(est.exit_code, 0) << est.output;
  EXPECT_NE(est.output.find("average :"), std::string::npos);
  std::remove(model.c_str());
}

TEST(Cli, NoDegradeFailsFastOnExpiredDeadline) {
  const auto r = run("build gen:cm85 --deadline-ms 0 --no-degrade");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("deadline"), std::string::npos);
}

TEST(Cli, GenerousDeadlineBuildsCleanly) {
  const auto r = run("build gen:c17 -m 500 --deadline-ms 60000");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("DEGRADED"), std::string::npos);
}

TEST(Cli, MetricsJsonSnapshotWritten) {
  const std::string path = ::testing::TempDir() + "/cli_metrics.json";
  const auto r = run("accuracy gen:c17 --vectors 200 --metrics-json " + path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string json;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), buf.size(), f) != nullptr) json += buf.data();
  std::fclose(f);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
#ifndef CFPM_NO_METRICS
  // Counters from several subsystems made it into the dump.
  EXPECT_NE(json.find("\"dd.node.alloc\""), std::string::npos);
  EXPECT_NE(json.find("\"eval.grid.run\""), std::string::npos);
  EXPECT_NE(json.find("\"power.trace.call\""), std::string::npos);
  EXPECT_NE(json.find("\"governor.poll.tick\""), std::string::npos);
#endif
  std::remove(path.c_str());
}

TEST(Cli, TraceJsonHasChromeEvents) {
  const std::string path = ::testing::TempDir() + "/cli_trace.json";
  const auto r = run("accuracy gen:c17 --vectors 200 --trace-json " + path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string json;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), buf.size(), f) != nullptr) json += buf.data();
  std::fclose(f);
#ifndef CFPM_NO_METRICS
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cli\""), std::string::npos);
  EXPECT_NE(json.find("\"power.build\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
#endif
  std::remove(path.c_str());
}

TEST(Cli, MalformedNetlistReportsLineNumber) {
  const std::string path = ::testing::TempDir() + "/cli_cycle.bench";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("INPUT(a)\nOUTPUT(y)\nx = AND(y, a)\ny = AND(x, a)\n", f);
  std::fclose(f);
  const auto r = run("info " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("cycle"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Flag-value parsing. Historically std::stoul/std::stod did this work:
// `--threads abc` threw out of parse() before main's try block (process
// abort), `--vectors -1` wrapped to 2^64-1, and `--sp 0.5x` dropped the
// trailing garbage. All three must be exit-2 usage errors naming the flag.
// ---------------------------------------------------------------------------

TEST(Cli, NonNumericThreadsIsAUsageError) {
  const auto r = run("estimate model.cfpm --threads abc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--threads"), std::string::npos);
  EXPECT_NE(r.output.find("'abc'"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, NegativeVectorsIsAUsageErrorNotAWrapAround) {
  for (const char* form : {"--vectors -1", "--vectors=-1"}) {
    const auto r = run(std::string("table1 ") + form);
    EXPECT_EQ(r.exit_code, 2) << form << "\n" << r.output;
    EXPECT_NE(r.output.find("--vectors"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("'-1'"), std::string::npos) << r.output;
  }
}

TEST(Cli, TrailingGarbageOnDoubleFlagIsAUsageError) {
  const auto r = run("estimate model.cfpm --sp 0.5x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--sp"), std::string::npos);
  EXPECT_NE(r.output.find("'0.5x'"), std::string::npos);
}

TEST(Cli, OutOfRangeProbabilityIsAUsageError) {
  const auto r = run("estimate model.cfpm --st 1.5");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--st"), std::string::npos);
  EXPECT_NE(r.output.find("[0, 1]"), std::string::npos);
}

TEST(Cli, MissingFlagValueIsAUsageError) {
  const auto r = run("estimate model.cfpm --vectors");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value for --vectors"), std::string::npos);
}

TEST(Cli, EqualsFormValuesParse) {
  // --flag=value must behave exactly like --flag value.
  const auto r = run("info gen:c17 --vectors=100");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("gates   : 6"), std::string::npos);
}

TEST(Cli, BooleanFlagRejectsAttachedValue) {
  const auto r = run("build gen:c17 --bound=yes");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--bound does not take a value"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fuzz subcommand.
// ---------------------------------------------------------------------------

TEST(Cli, FuzzListChecksNamesTheInvariants) {
  const auto r = run("fuzz --checks list");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name :
       {"model-vs-sim", "compiled-vs-interp", "collapse-avg", "collapse-max",
        "serialize-roundtrip", "sift-equivalence", "trace-threads"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, FuzzSmokeRunsGreen) {
  const std::string corpus = ::testing::TempDir() + "/cli_fuzz_corpus";
  const auto r = run("fuzz --runs 2 --seed 5 --max-gates 24 --patterns 16 "
                     "--corpus-dir " + corpus);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("2 iteration(s)"), std::string::npos);
  EXPECT_NE(r.output.find("0 failure(s)"), std::string::npos);
}

TEST(Cli, FuzzRejectsUnknownCheck) {
  const auto r = run("fuzz --runs 1 --checks bogus");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown check 'bogus'"), std::string::npos);
}

TEST(Cli, FuzzReplayOfACommittedRepro) {
  const auto r = run(std::string("fuzz --replay ") + CFPM_CORPUS_DIR +
                     "/model-vs-sim-seed000000000000002a.repro");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("PASS"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault injection: --failpoints / --build-retries / fuzz --faults.
// ---------------------------------------------------------------------------

TEST(Cli, MalformedFailpointSpecIsAUsageError) {
  const auto r = run("build gen:c17 --failpoints bogus-spec");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("invalid value for --failpoints"),
            std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, NonNumericBuildRetriesIsAUsageError) {
  const auto r = run("build gen:c17 --build-retries abc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--build-retries"), std::string::npos);
  EXPECT_NE(r.output.find("'abc'"), std::string::npos);
}

TEST(Cli, InjectedConeFaultIsRetriedAndTheBuildSucceeds) {
  // One transient allocation fault in a cone worker: the retry loop absorbs
  // it and the build exits 0 with a usable model. (With CFPM_NO_FAILPOINTS
  // the spec arms nothing — the build is simply clean, so the assertions
  // below hold either way.)
  const std::string model = ::testing::TempDir() + "/cli_faulted.cfpm";
  const auto r = run(
      "build gen:cm85 --build-threads 2 "
      "--failpoints power.cone.build=throw_bad_alloc:1 -o " + model);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("DEGRADED"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("saved"), std::string::npos);
  const auto est = run("estimate " + model + " --st 0.2 --vectors 500");
  EXPECT_EQ(est.exit_code, 0) << est.output;
  std::remove(model.c_str());
}

TEST(Cli, FuzzFaultsSmokeRecovers) {
  const auto r = run("fuzz --faults --runs 2 --seed 5 --max-gates 24 "
                     "--patterns 16 --corpus-dir ''");
  // Exit 0 when hooks are compiled in (recovery contract held for every
  // injected fault); a build with CFPM_NO_FAILPOINTS reports the typed
  // environment error instead.
  if (r.output.find("faults mode needs failpoint hooks") != std::string::npos) {
    EXPECT_EQ(r.exit_code, 1);
    return;
  }
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("faults  :"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 failure(s)"), std::string::npos);
}

TEST(Cli, TraceToUnwritableDirectoryIsATypedError) {
  // atomic_write_file surfaces the unopenable temp file as IoError → exit 1.
  const auto r = run("trace gen:c17 -o /nonexistent-dir/sub/out.vcd "
                     "--vectors 10");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

}  // namespace
