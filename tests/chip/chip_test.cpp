// Chip composition tests: spec parsing, tree topology, sibling bus-bit
// sharing, bitwise agreement between composed node totals and the sharded
// evaluator, conservative-bound tightness, shard-count determinism, §9
// ladder surfacing, and the service facade's chip entry points.
#include "chip/chip.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "chip/evaluator.hpp"
#include "serve/service.hpp"
#include "stats/markov.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace cfpm::chip {
namespace {

/// The shared demo chip (2 blocks x 3 macros x 8 bus bits): small enough
/// to build exactly in milliseconds, rich enough to exercise overlap,
/// aliasing and the full tree shape. Built once for the whole binary.
const Chip& demo_chip() {
  static const Chip c = build_chip(ChipSpec::parse("2x3x8"));
  return c;
}

sim::InputSequence demo_trace(std::size_t vectors = 512) {
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0x1234);
  return gen.generate(demo_chip().bus_width(), vectors);
}

TEST(ChipSpec, ParsesAndRoundTrips) {
  const ChipSpec spec = ChipSpec::parse("4x6x16");
  EXPECT_EQ(spec.blocks, 4u);
  EXPECT_EQ(spec.macros_per_block, 6u);
  EXPECT_EQ(spec.block_bus_bits, 16u);
  EXPECT_EQ(spec.num_macros(), 24u);
  EXPECT_EQ(spec.bus_width(), 64u);
  EXPECT_EQ(spec.to_string(), "4x6x16");
  EXPECT_EQ(ChipSpec::parse(spec.to_string()).to_string(), spec.to_string());
}

TEST(ChipSpec, RejectsMalformedText) {
  EXPECT_THROW(ChipSpec::parse(""), Error);
  EXPECT_THROW(ChipSpec::parse("4x6"), Error);
  EXPECT_THROW(ChipSpec::parse("4x6x16x2"), Error);
  EXPECT_THROW(ChipSpec::parse("axbxc"), Error);
  EXPECT_THROW(ChipSpec::parse("0x6x16"), Error);
  EXPECT_THROW(ChipSpec::parse("4x0x16"), Error);
  EXPECT_THROW(ChipSpec::parse("4x6x0"), Error);
  // The narrowest library macro needs 4 bits per block.
  EXPECT_THROW(ChipSpec::parse("4x6x3"), Error);
}

TEST(ChipTree, TopologyMatchesSpec) {
  const Chip& c = demo_chip();
  EXPECT_EQ(c.num_macros(), 6u);
  EXPECT_EQ(c.bus_width(), 16u);
  EXPECT_EQ(c.num_components(), 3u);  // chip root + 2 blocks
  EXPECT_EQ(c.depth(), 3u);
  ASSERT_EQ(c.nodes().size(), 9u);  // 1 root + 2 blocks + 6 leaves

  const Chip::Node& root = c.root();
  EXPECT_EQ(root.parent, Chip::kNoParent);
  EXPECT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.num_leaves, 6u);
  EXPECT_FALSE(root.is_leaf());

  // Every block owns a contiguous leaf range; leaf k of the tree is
  // instance k of both designs (same name, DFS order).
  std::size_t next_leaf = 0;
  for (const std::size_t b : root.children) {
    const Chip::Node& block = c.nodes()[b];
    EXPECT_EQ(block.parent, 0u);
    EXPECT_EQ(block.first_leaf, next_leaf);
    EXPECT_EQ(block.num_leaves, 3u);
    for (const std::size_t l : block.children) {
      const Chip::Node& leaf = c.nodes()[l];
      EXPECT_TRUE(leaf.is_leaf());
      EXPECT_EQ(leaf.parent, b);
      EXPECT_EQ(leaf.num_leaves, 1u);
      EXPECT_EQ(leaf.first_leaf, next_leaf);
      EXPECT_EQ(leaf.name, c.avg_design().instance_name(next_leaf));
      EXPECT_EQ(leaf.name, c.bound_design().instance_name(next_leaf));
      ASSERT_LT(leaf.macro, c.library().size());
      ++next_leaf;
    }
  }
  EXPECT_EQ(next_leaf, 6u);

  // Library: each distinct macro built once, instance counts covering all
  // six leaves, everything clean under the exact default budget.
  std::size_t instances = 0;
  for (const MacroBuildReport& m : c.library()) {
    instances += m.instances;
    EXPECT_FALSE(m.degraded());
    EXPECT_GT(m.avg_nodes, 0u);
    EXPECT_GT(m.bound_nodes, 0u);
  }
  EXPECT_EQ(instances, 6u);
  EXPECT_FALSE(c.degraded());
}

TEST(ChipTree, SiblingMacrosShareBlockBusBits) {
  const Chip& c = demo_chip();
  const std::size_t M = c.spec().block_bus_bits;
  for (std::size_t b = 0; b < c.spec().blocks; ++b) {
    std::vector<std::set<std::size_t>> maps;
    for (std::size_t j = 0; j < c.spec().macros_per_block; ++j) {
      const auto& map =
          c.avg_design().instance_input_map(b * c.spec().macros_per_block + j);
      // Every bound bit lies inside this block's bus segment.
      for (const std::size_t bit : map) {
        EXPECT_GE(bit, b * M);
        EXPECT_LT(bit, (b + 1) * M);
      }
      maps.emplace_back(map.begin(), map.end());
    }
    // Overlapping windows: consecutive siblings share at least one bus
    // bit, which both sample from the same stream of the chip trace.
    for (std::size_t j = 1; j < maps.size(); ++j) {
      std::vector<std::size_t> shared;
      std::set_intersection(maps[j - 1].begin(), maps[j - 1].end(),
                            maps[j].begin(), maps[j].end(),
                            std::back_inserter(shared));
      EXPECT_FALSE(shared.empty())
          << "block " << b << " slots " << j - 1 << "," << j;
    }
  }
}

TEST(ChipEvaluator, ComposedNodeTotalsEqualEvaluatorBitwise) {
  const Chip& c = demo_chip();
  const sim::InputSequence trace = demo_trace();
  const ChipTraceResult r = evaluate_trace(c.avg_design(), trace);
  ASSERT_EQ(r.per_instance_ff.size(), c.num_macros());
  EXPECT_EQ(r.transitions, trace.num_transitions());

  // The chip total is defined as the left-fold of the per-leaf totals in
  // leaf order — exactly what subtree_total computes, so root composition
  // reproduces the evaluator's total bitwise, not approximately.
  EXPECT_EQ(c.subtree_total(c.root(), r.per_instance_ff), r.total_ff);

  // Each block's composed total is the same fold over its leaf range.
  for (const std::size_t b : c.root().children) {
    const Chip::Node& block = c.nodes()[b];
    double fold = 0.0;
    for (std::size_t i = 0; i < block.num_leaves; ++i) {
      fold += r.per_instance_ff[block.first_leaf + i];
    }
    EXPECT_EQ(c.subtree_total(block, r.per_instance_ff), fold);
  }
}

TEST(ChipEvaluator, BoundCompositionTighterThanWorstCaseSum) {
  const Chip& c = demo_chip();
  ASSERT_TRUE(c.bound_design().is_upper_bound());
  const sim::InputSequence trace = demo_trace();
  const ChipTraceResult avg = evaluate_trace(c.avg_design(), trace);
  const ChipTraceResult bound = evaluate_trace(c.bound_design(), trace);

  // Conservative per cycle: the composed bound dominates the average
  // composition on the same trace...
  EXPECT_GE(bound.total_ff, avg.total_ff);
  EXPECT_GE(bound.peak_ff, avg.peak_ff);
  // ...yet stays strictly below the loose sum-of-global-worst-cases bound
  // the paper argues against (Section 1.2).
  EXPECT_LT(bound.peak_ff, c.sum_of_worst_cases_ff());
}

TEST(ChipEvaluator, ShardCountNeverChangesTheBits) {
  const Chip& c = demo_chip();
  // Long enough to cross several kTraceChunk boundaries.
  const sim::InputSequence trace = demo_trace(3 * kTraceChunk + 17);
  const ChipTraceResult serial = evaluate_trace(c.avg_design(), trace);
  for (const std::size_t shards : {2u, 3u, 8u}) {
    ThreadPool pool(shards);
    const ChipTraceResult sharded =
        evaluate_trace(c.avg_design(), trace, &pool);
    EXPECT_EQ(sharded.total_ff, serial.total_ff) << shards << " shards";
    EXPECT_EQ(sharded.peak_ff, serial.peak_ff) << shards << " shards";
    EXPECT_EQ(sharded.transitions, serial.transitions);
    ASSERT_EQ(sharded.per_instance_ff.size(), serial.per_instance_ff.size());
    for (std::size_t i = 0; i < serial.per_instance_ff.size(); ++i) {
      EXPECT_EQ(sharded.per_instance_ff[i], serial.per_instance_ff[i]);
    }
  }
}

TEST(ChipBuild, ExpiredDeadlineSurfacesLadderDegradation) {
  ChipBuildOptions options;
  options.deadline_ms = 0;  // already expired: every macro rides the ladder
  const Chip c = build_chip(ChipSpec::parse("2x2x8"), options);
  EXPECT_TRUE(c.degraded());
  for (const MacroBuildReport& m : c.library()) {
    EXPECT_TRUE(m.degraded()) << m.name;
    EXPECT_NE(m.avg_info.outcome, power::BuildOutcome::kClean) << m.name;
  }
  // The degraded chip still evaluates (fallback models are models too).
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0x9);
  const sim::InputSequence trace = gen.generate(c.bus_width(), 64);
  const ChipTraceResult r = evaluate_trace(c.avg_design(), trace);
  EXPECT_EQ(r.transitions, 63u);
}

// ---------------------------------------------------------------------------
// Service facade
// ---------------------------------------------------------------------------

service::ChipRequest demo_request() {
  service::ChipRequest request;
  request.spec = "2x3x8";
  request.vectors = 512;
  return request;
}

TEST(ChipService, ReplyMatchesDirectEvaluationBitwise) {
  const service::ChipRequest request = demo_request();
  const service::ChipReply reply = service::evaluate_chip(request);
  EXPECT_EQ(reply.status, service::StatusCode::kOk);
  EXPECT_EQ(reply.spec, "2x3x8");
  EXPECT_EQ(reply.macros, 6u);
  EXPECT_EQ(reply.components, 3u);
  EXPECT_EQ(reply.bus_bits, 16u);
  EXPECT_EQ(reply.transitions, 511u);
  EXPECT_EQ(reply.cache_hits, 0u);
  ASSERT_EQ(reply.blocks.size(), 2u);
  ASSERT_EQ(reply.instances.size(), 6u);

  // The facade is the same recipe as doing it by hand: build the chip,
  // generate the seeded workload at bus width, evaluate both compositions.
  const Chip c = build_chip(ChipSpec::parse(request.spec),
                            service::to_chip_build_options(request));
  stats::MarkovSequenceGenerator gen(request.statistics, request.seed);
  const sim::InputSequence trace = gen.generate(c.bus_width(), request.vectors);
  const ChipTraceResult avg = evaluate_trace(c.avg_design(), trace);
  const ChipTraceResult bound = evaluate_trace(c.bound_design(), trace);
  EXPECT_EQ(reply.total_ff, avg.total_ff);
  EXPECT_EQ(reply.peak_ff, avg.peak_ff);
  EXPECT_EQ(reply.bound_total_ff, bound.total_ff);
  EXPECT_EQ(reply.bound_peak_ff, bound.peak_ff);
  EXPECT_EQ(reply.worst_case_sum_ff, c.sum_of_worst_cases_ff());
  EXPECT_LT(reply.bound_peak_ff, reply.worst_case_sum_ff);

  // Breakdown rows compose back to the totals bitwise (left-fold order).
  double fold = 0.0;
  for (const service::ChipComponentTotal& inst : reply.instances) {
    fold += inst.total_ff;
  }
  EXPECT_EQ(fold, reply.total_ff);
}

TEST(ChipService, ShardingNeverChangesReplyBits) {
  const service::ChipRequest request = demo_request();
  const service::ChipReply serial = service::evaluate_chip(request);
  ThreadPool pool(4);
  const service::ChipReply sharded = service::evaluate_chip(request, &pool);
  EXPECT_EQ(sharded.total_ff, serial.total_ff);
  EXPECT_EQ(sharded.peak_ff, serial.peak_ff);
  EXPECT_EQ(sharded.bound_total_ff, serial.bound_total_ff);
  EXPECT_EQ(sharded.bound_peak_ff, serial.bound_peak_ff);
  ASSERT_EQ(sharded.instances.size(), serial.instances.size());
  for (std::size_t i = 0; i < serial.instances.size(); ++i) {
    EXPECT_EQ(sharded.instances[i].total_ff, serial.instances[i].total_ff);
  }
}

TEST(ChipService, RejectsBadVersionSpecAndWorkload) {
  service::ChipRequest bad_version = demo_request();
  bad_version.api_version = 7;
  EXPECT_THROW(service::evaluate_chip(bad_version), service::UsageError);

  service::ChipRequest bad_spec = demo_request();
  bad_spec.spec = "not-a-spec";
  EXPECT_THROW(service::evaluate_chip(bad_spec), service::UsageError);

  // Infeasible Markov statistics: same typed error as service::evaluate.
  service::ChipRequest bad_stats = demo_request();
  bad_stats.statistics = {0.1, 0.9};  // st > 2*min(sp, 1-sp)
  EXPECT_THROW(service::evaluate_chip(bad_stats), Error);
}

TEST(ChipService, ExplicitTraceMustSpanTheBus) {
  const service::ChipRequest request = demo_request();
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0x5);
  const sim::InputSequence narrow = gen.generate(15, 32);  // bus is 16
  EXPECT_THROW(service::evaluate_chip_trace(request, narrow),
               service::UsageError);

  const sim::InputSequence wide = gen.generate(16, 32);
  const service::ChipReply reply =
      service::evaluate_chip_trace(request, wide);
  EXPECT_EQ(reply.status, service::StatusCode::kOk);
  EXPECT_EQ(reply.transitions, 31u);
}

TEST(ChipService, DegradedBuildReportsStatusDegraded) {
  service::ChipRequest request;
  request.spec = "2x2x8";
  request.vectors = 64;
  request.deadline_ms = 0;
  const service::ChipReply reply = service::evaluate_chip(request);
  EXPECT_EQ(reply.status, service::StatusCode::kDegraded);
  ASSERT_FALSE(reply.library.empty());
  for (const service::ChipMacroSummary& m : reply.library) {
    EXPECT_NE(m.avg_outcome, power::BuildOutcome::kClean) << m.name;
  }
}

}  // namespace
}  // namespace cfpm::chip
