// Plain-text bus trace IO (`cfpm chip --trace`): round-trip fidelity,
// comment/blank-line handling, and every rejection path.
#include "chip/trace_text.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/markov.hpp"
#include "support/error.hpp"

namespace cfpm::chip {
namespace {

/// Writes `text` to a fresh temp file and deletes it on scope exit.
struct TempTrace {
  std::string path;
  explicit TempTrace(const std::string& text, const char* tag) {
    path = ::testing::TempDir() + "/chip_trace_" + tag + ".txt";
    std::ofstream out(path);
    out << text;
  }
  ~TempTrace() { std::remove(path.c_str()); }
};

TEST(TraceText, WriteReadRoundTrip) {
  stats::MarkovSequenceGenerator gen({0.4, 0.3}, 0xabc);
  const sim::InputSequence original = gen.generate(13, 200);

  std::ostringstream text;
  write_trace_text(text, original);
  TempTrace file(text.str(), "roundtrip");

  const sim::InputSequence parsed = read_trace_text(file.path, 13);
  ASSERT_EQ(parsed.num_inputs(), original.num_inputs());
  ASSERT_EQ(parsed.length(), original.length());
  for (std::size_t t = 0; t < original.length(); ++t) {
    for (std::size_t i = 0; i < original.num_inputs(); ++i) {
      ASSERT_EQ(parsed.bit(i, t), original.bit(i, t)) << "t=" << t;
    }
  }
}

TEST(TraceText, SkipsCommentsBlankLinesAndCarriageReturns) {
  TempTrace file("# header comment\n\n0101\r\n1010\n\n# trailing\n", "skips");
  const sim::InputSequence seq = read_trace_text(file.path, 4);
  ASSERT_EQ(seq.num_inputs(), 4u);
  ASSERT_EQ(seq.length(), 2u);
  EXPECT_FALSE(seq.bit(0, 0));
  EXPECT_TRUE(seq.bit(1, 0));
  EXPECT_TRUE(seq.bit(0, 1));
  EXPECT_FALSE(seq.bit(1, 1));
}

TEST(TraceText, RejectsBadInput) {
  EXPECT_THROW(read_trace_text(::testing::TempDir() + "/no_such_trace.txt", 1),
               IoError);
  {
    TempTrace file("0102\n", "badchar");
    EXPECT_THROW(read_trace_text(file.path, 1), ParseError);
  }
  {
    TempTrace file("0101\n011\n", "ragged");
    EXPECT_THROW(read_trace_text(file.path, 1), ParseError);
  }
  {
    TempTrace file("# only comments\n\n", "empty");
    EXPECT_THROW(read_trace_text(file.path, 1), ParseError);
  }
  {
    TempTrace file("0101\n", "narrow");
    EXPECT_THROW(read_trace_text(file.path, 5), ParseError);
  }
}

}  // namespace
}  // namespace cfpm::chip
