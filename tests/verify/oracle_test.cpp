// Tests of the differential oracle registry, the structural minimizer, and
// the fuzzing driver (clean engines: every check must pass).
#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "netlist/generators.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"
#include "verify/fuzzer.hpp"
#include "verify/minimize.hpp"

namespace cfpm::verify {
namespace {

TEST(Oracle, RegistryIsConsistent) {
  const auto checks = all_checks();
  ASSERT_GE(checks.size(), 7u);
  std::set<std::string_view> names;
  for (const Check& c : checks) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate: " << c.name;
    EXPECT_FALSE(c.invariant.empty());
    EXPECT_EQ(find_check(c.name), &c);
  }
  EXPECT_EQ(find_check("no-such-check"), nullptr);
}

TEST(Oracle, AllChecksPassOnC17) {
  const netlist::Netlist n = netlist::gen::c17();
  CheckContext ctx;
  ctx.seed = 7;
  ctx.patterns = 64;
  for (const Check& c : all_checks()) {
    const CheckResult r = run_check(c, n, ctx);
    EXPECT_TRUE(r.ok) << c.name << ": " << r.detail;
  }
}

TEST(Oracle, AllChecksPassOnSampledCircuits) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const netlist::Netlist n = sample_netlist(seed, /*max_gates=*/40);
    CheckContext ctx;
    ctx.seed = seed;
    ctx.patterns = 48;
    for (const Check& c : all_checks()) {
      const CheckResult r = run_check(c, n, ctx);
      EXPECT_TRUE(r.ok) << c.name << " on " << n.name() << " (seed " << seed
                        << "): " << r.detail;
    }
  }
}

TEST(Oracle, SampledCircuitIsDeterministicInTheSeed) {
  const netlist::Netlist a = sample_netlist(99, 40);
  const netlist::Netlist b = sample_netlist(99, 40);
  EXPECT_EQ(a.num_inputs(), b.num_inputs());
  EXPECT_EQ(a.num_gates(), b.num_gates());
  EXPECT_EQ(a.name(), b.name());
}

TEST(Oracle, RunCheckConvertsThrowsIntoFailures) {
  const Check boom{"boom", "never throws",
                   [](const netlist::Netlist&, const CheckContext&)
                       -> CheckResult { throw Error("kaboom"); }};
  const CheckResult r = run_check(boom, netlist::gen::c17(), CheckContext{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("kaboom"), std::string::npos);
}

TEST(Oracle, RunCheckPropagatesDeadlineAsStopSignal) {
  const Check slow{"slow", "deadline test",
                   [](const netlist::Netlist&, const CheckContext&)
                       -> CheckResult { throw DeadlineExceeded("late"); }};
  EXPECT_THROW(run_check(slow, netlist::gen::c17(), CheckContext{}),
               DeadlineExceeded);
}

// ---------------------------------------------------------------------------

netlist::SignalId count_of_type(const netlist::Netlist& n,
                                netlist::GateType t) {
  netlist::SignalId count = 0;
  for (netlist::SignalId s = 0; s < n.num_signals(); ++s) {
    if (!n.signal(s).is_input && n.signal(s).type == t) ++count;
  }
  return count;
}

TEST(Minimize, ShrinksAnXorWitnessToACoupleOfGates) {
  // Synthetic failure: "the circuit contains an XOR gate". The minimizer
  // should strip the parity tree down to (almost) a single XOR.
  const netlist::Netlist n = netlist::gen::parity_tree(8);
  ASSERT_GE(count_of_type(n, netlist::GateType::kXor), 1u);
  const auto r = minimize(n, [](const netlist::Netlist& cand) {
    return count_of_type(cand, netlist::GateType::kXor) >= 1;
  });
  EXPECT_GE(count_of_type(r.netlist, netlist::GateType::kXor), 1u);
  EXPECT_LE(r.netlist.num_gates(), 2u);
  EXPECT_GT(r.attempts, 0u);
  EXPECT_EQ(r.removed_gates, n.num_gates() - r.netlist.num_gates());
  r.netlist.validate();
}

TEST(Minimize, KeepsTheOriginalWhenNothingSmallerFails) {
  const netlist::Netlist n = netlist::gen::c17();
  const auto r = minimize(n, [&](const netlist::Netlist& cand) {
    return cand.num_gates() == n.num_gates();  // only full size "fails"
  });
  EXPECT_EQ(r.netlist.num_gates(), n.num_gates());
  EXPECT_EQ(r.removed_gates, 0u);
}

TEST(Minimize, RespectsTheAttemptBudget) {
  const netlist::Netlist n = netlist::gen::parity_tree(8);
  std::size_t calls = 0;
  const auto r = minimize(
      n,
      [&](const netlist::Netlist&) {
        ++calls;
        return true;  // everything fails: worst case for the budget
      },
      /*max_attempts=*/5);
  EXPECT_LE(calls, 5u);
  EXPECT_EQ(r.attempts, calls);
}

// ---------------------------------------------------------------------------

TEST(Fuzzer, CleanEnginesYieldAGreenCampaign) {
  FuzzOptions opt;
  opt.seed = 3;
  opt.runs = 2;
  opt.max_gates = 30;
  opt.patterns = 32;
  opt.corpus_dir.clear();  // no corpus writes from tests
  const FuzzReport report = run_fuzz(opt);
  EXPECT_EQ(report.iterations, 2u);
  EXPECT_EQ(report.checks_run, 2 * all_checks().size());
  EXPECT_TRUE(report.failures.empty());
  EXPECT_FALSE(report.deadline_hit);
}

TEST(Fuzzer, CheckSelectionIsHonoredAndValidated) {
  FuzzOptions opt;
  opt.seed = 3;
  opt.runs = 1;
  opt.max_gates = 20;
  opt.patterns = 16;
  opt.corpus_dir.clear();
  opt.checks = {"collapse-avg", "serialize-roundtrip"};
  const FuzzReport report = run_fuzz(opt);
  EXPECT_EQ(report.checks_run, 2u);

  opt.checks = {"definitely-not-a-check"};
  EXPECT_THROW(run_fuzz(opt), Error);
}

TEST(Fuzzer, ExpiredDeadlineStopsTheCampaignCleanly) {
  FuzzOptions opt;
  opt.seed = 3;
  opt.runs = 50;
  opt.corpus_dir.clear();
  opt.governor = std::make_shared<Governor>();
  opt.governor->set_deadline(std::chrono::milliseconds(0));
  const FuzzReport report = run_fuzz(opt);
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_LT(report.iterations, 50u);
  EXPECT_TRUE(report.failures.empty());
}

}  // namespace
}  // namespace cfpm::verify
