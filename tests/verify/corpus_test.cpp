// Repro file round-trip and the regression corpus: every committed
// `fuzz/corpus/*.repro` must replay green (a red entry means a previously
// fixed — or never-present — defect is back).
#include "verify/corpus.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "netlist/generators.hpp"
#include "support/error.hpp"

namespace cfpm::verify {
namespace {

Repro sample_repro() {
  Repro r;
  r.check = "model-vs-sim";
  r.seed = 0xdeadbeefULL;
  r.patterns = 17;
  r.netlist = netlist::gen::c17();
  r.note = "two\nlines";
  return r;
}

TEST(Corpus, ReproRoundTrips) {
  const Repro r = sample_repro();
  std::stringstream ss;
  write_repro(ss, r);
  const Repro back = read_repro(ss);
  EXPECT_EQ(back.check, r.check);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.patterns, r.patterns);
  EXPECT_EQ(back.note, r.note);
  EXPECT_EQ(back.netlist.num_inputs(), r.netlist.num_inputs());
  EXPECT_EQ(back.netlist.num_gates(), r.netlist.num_gates());
  EXPECT_EQ(back.netlist.outputs().size(), r.netlist.outputs().size());
}

TEST(Corpus, RejectsUnknownCheckAndMalformedNumbers) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_repro(in);
  };
  EXPECT_THROW(parse("cfpm-fuzz-repro 1\n"
                     "check not-a-check\nseed 1\npatterns 4\nbench\n"),
               ParseError);
  EXPECT_THROW(parse("cfpm-fuzz-repro 1\n"
                     "check model-vs-sim\nseed -1\npatterns 4\nbench\n"),
               ParseError);
  EXPECT_THROW(parse("cfpm-fuzz-repro 1\n"
                     "check model-vs-sim\nseed 1\npatterns 4x\nbench\n"),
               ParseError);
  EXPECT_THROW(parse("cfpm-fuzz-repro 2\n"), ParseError);
  EXPECT_THROW(parse("cfpm-fuzz-repro 1\n"
                     "check model-vs-sim\nseed 1\npatterns 4\n"),
               ParseError);  // missing bench section
}

TEST(Corpus, ReplayRunsTheNamedCheck) {
  const Repro r = sample_repro();
  const CheckResult result = replay(r);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Corpus, EveryCommittedEntryReplaysGreen) {
  const auto paths = list_corpus(CFPM_CORPUS_DIR);
  ASSERT_FALSE(paths.empty())
      << "no .repro files under " << CFPM_CORPUS_DIR
      << " — the regression corpus should ship with the repository";
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    const Repro r = read_repro_file(path);
    const CheckResult result = replay(r);
    EXPECT_TRUE(result.ok) << "regression: " << r.check
                           << " failed again: " << result.detail;
  }
}

TEST(Corpus, ListCorpusOnMissingDirectoryIsEmpty) {
  EXPECT_TRUE(list_corpus("/nonexistent/fuzz/dir").empty());
}

}  // namespace
}  // namespace cfpm::verify
