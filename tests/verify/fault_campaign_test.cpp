// Fault-injection campaign: `run_fuzz` with faults enabled arms sampled
// failpoint specs around every check and asserts the recovery contract —
// a fault may surface as a typed failure, but the identical check re-run
// clean must pass, and a value mismatch without a throw is reported as
// silent corruption. Plus the `faults` line of the repro format and
// replay()'s arm-for-the-duration semantics.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "netlist/generators.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "verify/corpus.hpp"
#include "verify/fuzzer.hpp"
#include "verify/oracle.hpp"

namespace cfpm::verify {
namespace {

class FaultCampaign : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::compiled_in()) GTEST_SKIP() << "no failpoint hooks";
    failpoint::disarm_all();
  }
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FaultCampaign, SmallCampaignRecoversFromEveryInjectedFault) {
  FuzzOptions opt;
  opt.seed = 77;
  opt.runs = 8;
  opt.max_gates = 24;
  opt.patterns = 32;
  opt.corpus_dir = "";  // nothing to persist: the campaign must stay green
  opt.faults = true;
  const FuzzReport report = run_fuzz(opt);
  EXPECT_EQ(report.iterations, 8u);
  EXPECT_TRUE(report.failures.empty())
      << "first failure: " << report.failures.front().check << " seed "
      << report.failures.front().seed << " faults '"
      << report.failures.front().faults << "': "
      << report.failures.front().detail;
  // With several checks per iteration and allocation faults in the spec
  // pool, a campaign this size always lands at least one hit.
  EXPECT_GT(report.faults_fired, 0u);
  // Every typed failure must have been followed by a passing clean rerun.
  EXPECT_GE(report.faults_fired, report.fault_recoveries);
  // The campaign may not leak armed entries into the rest of the process.
  EXPECT_TRUE(failpoint::armed().empty());
}

TEST_F(FaultCampaign, InjectedFaultSurfacesAsTypedFailureNeverWrongValues) {
  const Check* check = find_check("model-vs-sim");
  ASSERT_NE(check, nullptr);
  const netlist::Netlist n = netlist::gen::c17();
  CheckContext ctx;
  ctx.seed = 5;
  ctx.patterns = 32;

  failpoint::arm_from_spec("dd.allocate_node=throw_bad_alloc:1");
  const CheckResult faulted = run_check(*check, n, ctx);
  failpoint::disarm_all();
  EXPECT_FALSE(faulted.ok);
  EXPECT_TRUE(faulted.threw) << faulted.detail;

  // The recovery contract: the identical check, clean, passes.
  const CheckResult clean = run_check(*check, n, ctx);
  EXPECT_TRUE(clean.ok) << clean.detail;
  EXPECT_FALSE(clean.threw);
}

TEST_F(FaultCampaign, ReproFaultsLineRoundTrips) {
  Repro r;
  r.check = "model-vs-sim";
  r.seed = 123;
  r.patterns = 16;
  r.netlist = netlist::gen::c17();
  r.faults = "dd.allocate_node=throw_bad_alloc:2,power.cone.build=fail_io";
  std::stringstream ss;
  write_repro(ss, r);
  const Repro back = read_repro(ss);
  EXPECT_EQ(back.faults, r.faults);
  EXPECT_EQ(back.check, r.check);
  EXPECT_EQ(back.seed, r.seed);
}

TEST_F(FaultCampaign, ReproRejectsBadOrDuplicateFaultsLines) {
  auto parse = [](const std::string& header) {
    std::istringstream in("cfpm-fuzz-repro 1\n" + header +
                          "bench\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
    return read_repro(in);
  };
  // A malformed spec is rejected at parse time, not at replay time.
  EXPECT_THROW(
      parse("check model-vs-sim\nseed 1\npatterns 4\nfaults bogus-spec\n"),
      ParseError);
  EXPECT_THROW(parse("check model-vs-sim\nseed 1\npatterns 4\n"
                     "faults a=fail_io\nfaults b=fail_io\n"),
               ParseError);
  // A valid spec parses.
  const Repro ok =
      parse("check model-vs-sim\nseed 1\npatterns 4\nfaults a=fail_io:3\n");
  EXPECT_EQ(ok.faults, "a=fail_io:3");
}

TEST_F(FaultCampaign, ReplayArmsTheRecordedSpecAndDisarmsAfter) {
  Repro r;
  r.check = "model-vs-sim";
  r.seed = 5;
  r.patterns = 32;
  r.netlist = netlist::gen::c17();
  r.faults = "dd.allocate_node=throw_bad_alloc:1";

  const CheckResult faulted = replay(r);
  EXPECT_FALSE(faulted.ok);
  EXPECT_TRUE(faulted.threw) << faulted.detail;
  EXPECT_TRUE(failpoint::armed().empty()) << "replay leaked armed entries";

  // Without the faults line the same repro is green: the recorded fault is
  // the failure's whole cause, which is exactly what a recovered-fault
  // repro asserts after the underlying bug is fixed.
  r.faults.clear();
  const CheckResult clean = replay(r);
  EXPECT_TRUE(clean.ok) << clean.detail;
}

#ifdef CFPM_NO_FAILPOINTS
TEST(FaultCampaignCompiledOut, FaultsModeIsATypedErrorNotASilentNoOp) {
  FuzzOptions opt;
  opt.runs = 1;
  opt.corpus_dir = "";
  opt.faults = true;
  EXPECT_THROW(run_fuzz(opt), Error);
}
#endif

}  // namespace
}  // namespace cfpm::verify
