// Ablation A2: when to approximate during model construction.
//
// Fig. 6 applies node collapsing *while* summing gate contributions, which
// bounds the peak ADD size. The alternative is building the exact sum and
// collapsing once at the end: same final budget, but a much larger peak
// working set (and build time) -- exactly the trade this driver measures.
// It also reports the effect of capping the per-gate deltaC contribution.
#include <iostream>

#include "bench_util.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const netlist::GateLibrary lib = bench::experiment_library();
  const std::size_t vectors = bench::env_vectors(4000);
  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();

  std::cout << "Ablation: approximation placement during Fig. 6 "
            << "construction (budget per circuit as in Table 1)\n\n";

  eval::TextTable table({"circuit", "variant", "final", "peak nodes",
                         "build(s)", "ARE(%)"});

  struct Variant {
    const char* label;
    bool during;
    std::size_t delta_cap;
  };
  const Variant variants[] = {
      {"during (Fig.6)", true, 0},
      {"post-hoc", false, 0},
      {"during+deltaCap", true, 256},
  };

  for (const char* name : {"cm85", "mux", "comp", "parity"}) {
    const netlist::Netlist n = netlist::gen::mcnc_like(name);
    const sim::GateLevelSimulator golden(n, lib);
    std::size_t budget = 500;
    for (const auto& b : bench::table1_budgets()) {
      if (std::string(b.name) == name) budget = b.avg_max;
    }

    for (const Variant& v : variants) {
      power::AddModelOptions opt;
      opt.max_nodes = budget;
      opt.approximate_during_construction = v.during;
      opt.delta_max_nodes = v.delta_cap;
      Timer timer;
      const auto model = power::AddPowerModel::build(n, lib, opt);
      const double secs = timer.seconds();
      const auto report = bench::evaluate_one(model, golden, grid, options);
      table.add_row({name, v.label, std::to_string(model.size()),
                     std::to_string(model.build_info().peak_live_nodes),
                     eval::TextTable::num(secs, 3),
                     eval::TextTable::num(100.0 * report.are, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
