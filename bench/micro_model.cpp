// Micro-benchmarks of model construction and evaluation.
//
// Backs the paper's claims that (i) models are built once per library
// macro in seconds and (ii) run-time evaluation is "negligible" (linear in
// the number of inputs).
#include <benchmark/benchmark.h>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"

namespace {

using namespace cfpm;

void BM_BuildModel(benchmark::State& state, const char* name,
                   std::size_t max_nodes) {
  const netlist::Netlist n = netlist::gen::mcnc_like(name);
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = max_nodes;
  for (auto _ : state) {
    const auto model = power::AddPowerModel::build(n, lib, opt);
    benchmark::DoNotOptimize(model.size());
  }
  state.counters["gates"] = static_cast<double>(n.num_gates());
}

void BM_BuildCm85(benchmark::State& state) { BM_BuildModel(state, "cm85", 500); }
BENCHMARK(BM_BuildCm85);

void BM_BuildMux(benchmark::State& state) { BM_BuildModel(state, "mux", 1000); }
BENCHMARK(BM_BuildMux);

void BM_BuildDecod(benchmark::State& state) { BM_BuildModel(state, "decod", 200); }
BENCHMARK(BM_BuildDecod);

void BM_EvalModel(benchmark::State& state, const char* name,
                  std::size_t max_nodes) {
  const netlist::Netlist n = netlist::gen::mcnc_like(name);
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = max_nodes;
  const auto model = power::AddPowerModel::build(n, lib, opt);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < xi.size(); ++i) {
      xi[i] = static_cast<std::uint8_t>((counter >> i) & 1u);
      xf[i] = static_cast<std::uint8_t>((counter >> (i + 1)) & 1u);
    }
    ++counter;
    benchmark::DoNotOptimize(model.estimate_ff(xi, xf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(model.size());
}

void BM_EvalCm85(benchmark::State& state) { BM_EvalModel(state, "cm85", 500); }
BENCHMARK(BM_EvalCm85);

void BM_EvalComp(benchmark::State& state) { BM_EvalModel(state, "comp", 5000); }
BENCHMARK(BM_EvalComp);

void BM_EvalVsGateLevelSim(benchmark::State& state) {
  // RTL-model evaluation vs re-simulating the netlist per pattern pair:
  // the speed argument for macro models.
  const netlist::Netlist n = netlist::gen::mcnc_like("comp");
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  const sim::GateLevelSimulator simulator(n, lib);
  std::vector<std::uint8_t> xi(n.num_inputs(), 0), xf(n.num_inputs(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.switching_capacitance_ff(xi, xf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvalVsGateLevelSim);

void BM_CharacterizeLin(benchmark::State& state) {
  // Cost of the simulation-based characterization our approach avoids.
  const netlist::Netlist n = netlist::gen::mcnc_like("cm85");
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  const sim::GateLevelSimulator simulator(n, lib);
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 2);
  const sim::InputSequence train = gen.generate(n.num_inputs(), 10000);
  for (auto _ : state) {
    power::Characterizer chr(simulator, train);
    const auto lin = chr.fit_linear();
    benchmark::DoNotOptimize(lin.coefficients().data());
  }
}
BENCHMARK(BM_CharacterizeLin);

}  // namespace

BENCHMARK_MAIN();
