// Ablation A3: collapse-selection metric.
//
// The paper collapses "minimum variance" sub-ADDs. This driver compares
// three selectors at identical budgets:
//   variance       - the paper's literal criterion (Eq. 5)
//   reach*variance - the collapse's exact global-MSE contribution under
//                    uniform inputs
//   relative       - var/avg^2, the library default: quantizes value
//                    clusters so the error stays proportional to the
//                    predicted magnitude
// The relative metric is what keeps out-of-sample accuracy at low
// transition activity; the other two destroy the model's near-zero
// diagonal region (see DESIGN.md 4.1).
#include <iostream>

#include "bench_util.hpp"
#include "dd/approx.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const netlist::GateLibrary lib = bench::experiment_library();
  const std::size_t vectors = bench::env_vectors(4000);
  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();

  std::cout << "Ablation: node-collapsing selection metric (avg strategy)\n\n";

  eval::TextTable table({"circuit", "exact", "budget", "ARE var(%)",
                         "ARE reach*var(%)", "ARE var/avg^2(%)"});

  struct Target {
    const char* name;
    std::size_t budget;
  };
  for (const Target& t : {Target{"cm85", 200}, Target{"cmb", 200},
                          Target{"alu2", 1000}, Target{"parity", 1500}}) {
    const netlist::Netlist n = netlist::gen::mcnc_like(t.name);
    const sim::GateLevelSimulator golden(n, lib);
    power::AddModelOptions opt;
    opt.max_nodes = 0;
    const auto exact = power::AddPowerModel::build(n, lib, opt);
    exact.function().manager()->sift();

    auto are_of = [&](dd::CollapseMetric metric) {
      const dd::Add small = dd::approximate_to(
          exact.function(), t.budget, dd::ApproxMode::kAverage, metric);
      // Wrap into a model sharing the exact model's variable mapping.
      struct Wrapper final : power::PowerModel {
        Wrapper(const power::AddPowerModel* b, dd::Add fn)
            : base(b), f(std::move(fn)) {}
        const power::AddPowerModel* base;
        dd::Add f;
        std::string name() const override { return "wrapped"; }
        std::size_t num_inputs() const override { return base->num_inputs(); }
        double worst_case_ff() const override { return f.max_value(); }
        double estimate_ff(std::span<const std::uint8_t> xi,
                           std::span<const std::uint8_t> xf) const override {
          std::vector<std::uint8_t> assignment(2 * xi.size(), 0);
          for (std::uint32_t k = 0; k < xi.size(); ++k) {
            assignment[base->var_of_xi(k)] = xi[k];
            assignment[base->var_of_xf(k)] = xf[k];
          }
          return f.eval(assignment);
        }
      };
      Wrapper model(&exact, small);
      return bench::evaluate_one(model, golden, grid, options).are;
    };

    table.add_row(
        {t.name, std::to_string(exact.size()), std::to_string(t.budget),
         eval::TextTable::num(100.0 * are_of(dd::CollapseMetric::kVariance), 1),
         eval::TextTable::num(
             100.0 * are_of(dd::CollapseMetric::kReachWeightedVariance), 1),
         eval::TextTable::num(
             100.0 * are_of(dd::CollapseMetric::kRelativeSpread), 1)});
  }
  table.print(std::cout);
  return 0;
}
