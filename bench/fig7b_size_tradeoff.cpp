// Experiment E2 - Fig. 7b of the paper.
//
// Accuracy/size trade-off of the ADD power model on cm85: the exact model
// is compressed by node collapsing to a range of sizes; the ARE over the
// (sp, st) grid is reported per size. The paper's observation: ADDs with
// 5-10 nodes still achieve ARE below ~20%, an order of magnitude better
// than a 12-coefficient linear model.
#include <iostream>

#include "bench_util.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const netlist::Netlist n = netlist::gen::mcnc_like("cm85");
  const netlist::GateLibrary lib = bench::experiment_library();
  const sim::GateLevelSimulator golden(n, lib);

  const std::size_t vectors = bench::env_vectors();
  // Lin reference for the "order of magnitude" comparison.
  const auto base = bench::characterize_baselines(n, vectors);

  power::AddModelOptions opt;
  opt.max_nodes = 0;  // exact
  const auto exact = power::AddPowerModel::build(n, lib, opt);
  exact.function().manager()->sift();  // best order before the sweep

  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();

  std::cout << "Fig. 7b reproduction: ARE vs ADD model size on cm85 (exact "
            << "model: " << exact.size() << " nodes; " << vectors
            << " vectors/run; " << grid.size() << " (sp,st) points)\n\n";

  eval::TextTable table({"ADD nodes", "ARE(%)"});
  for (std::size_t size : {500u, 200u, 100u, 50u, 20u, 10u, 5u, 2u, 1u}) {
    const auto model = exact.compress(size);
    const auto report = bench::evaluate_one(model, golden, grid, options);
    table.add_row({std::to_string(model.size()),
                   eval::TextTable::num(100.0 * report.are, 1)});
  }
  table.print(std::cout);

  const auto lin_report = bench::evaluate_one(*base.lin, golden, grid, options);
  const auto con_report = bench::evaluate_one(*base.con, golden, grid, options);
  std::cout << "\nReference (characterized baselines on the same grid): Lin "
            << eval::TextTable::num(100.0 * lin_report.are, 1) << "%  Con "
            << eval::TextTable::num(100.0 * con_report.are, 1) << "%\n";
  return 0;
}
