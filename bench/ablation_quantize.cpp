// Ablation A4: leaf quantization vs node collapsing.
//
// Switching-capacitance ADDs owe much of their size to the diversity of
// partial-sum values rather than to Boolean structure. quantize_leaves()
// attacks exactly that axis: merging the closest terminal values also
// merges the structure above them. This driver compares, on the same
// circuit, the accuracy-per-node of pure quantization, pure collapsing,
// and quantize-then-collapse.
#include <iostream>

#include "bench_util.hpp"
#include "dd/approx.hpp"
#include "eval/table.hpp"

namespace {

/// Adapter evaluating a derived ADD with the model's variable mapping.
struct DerivedModel final : cfpm::power::PowerModel {
  DerivedModel(const cfpm::power::AddPowerModel* b, cfpm::dd::Add fn)
      : base(b), f(std::move(fn)) {}
  const cfpm::power::AddPowerModel* base;
  cfpm::dd::Add f;
  std::string name() const override { return "derived"; }
  std::size_t num_inputs() const override { return base->num_inputs(); }
  double worst_case_ff() const override { return f.max_value(); }
  double estimate_ff(std::span<const std::uint8_t> xi,
                     std::span<const std::uint8_t> xf) const override {
    std::vector<std::uint8_t> assignment(2 * xi.size(), 0);
    for (std::uint32_t k = 0; k < xi.size(); ++k) {
      assignment[base->var_of_xi(k)] = xi[k];
      assignment[base->var_of_xf(k)] = xf[k];
    }
    return f.eval(assignment);
  }
};

}  // namespace

int main() {
  using namespace cfpm;

  const netlist::GateLibrary lib = bench::experiment_library();
  const std::size_t vectors = bench::env_vectors(4000);
  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();

  std::cout << "Ablation: leaf quantization vs node collapsing "
            << "(avg strategy)\n\n";

  eval::TextTable table(
      {"circuit", "variant", "nodes", "leaves", "ARE(%)"});

  for (const char* name : {"cm85", "cmb", "alu2"}) {
    const netlist::Netlist n = netlist::gen::mcnc_like(name);
    const sim::GateLevelSimulator golden(n, lib);
    power::AddModelOptions opt;
    opt.max_nodes = 0;
    const auto exact = power::AddPowerModel::build(n, lib, opt);
    exact.function().manager()->sift();

    auto report = [&](const char* label, const dd::Add& f) {
      DerivedModel model(&exact, f);
      const double are = bench::evaluate_one(model, golden, grid, options).are;
      table.add_row({name, label, std::to_string(f.size()),
                     std::to_string(f.leaf_values().size()),
                     eval::TextTable::num(100.0 * are, 1)});
    };

    report("exact", exact.function());
    report("quantize 8 leaves",
           dd::quantize_leaves(exact.function(), 8, dd::ApproxMode::kAverage));
    const std::size_t half = std::max<std::size_t>(2, exact.size() / 2);
    report("collapse size/2",
           dd::approximate_to(exact.function(), half, dd::ApproxMode::kAverage));
    report("quantize8 + collapse",
           dd::approximate_to(
               dd::quantize_leaves(exact.function(), 8, dd::ApproxMode::kAverage),
               half, dd::ApproxMode::kAverage));
  }
  table.print(std::cout);
  return 0;
}
