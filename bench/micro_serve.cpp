// Micro-benchmarks of the model server's lookup path.
//
// The registry's design premise is that lookups are millions-per-second
// cheap — an acquire load, two MPH array reads, and a key compare — while
// admissions are rare and may pay an offline index rebuild. These numbers
// back that split: MPH query cost flat across table sizes, registry hit
// and miss lookups in the same few-nanosecond class, MPH construction
// (the admission rebuild) linear in the table.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "power/baselines.hpp"
#include "serve/mph.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "support/rng.hpp"

namespace {

using namespace cfpm;

std::vector<std::uint64_t> random_keys(std::size_t n) {
  SplitMix64 rng(0x5eedu + n);
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t& k : keys) k = rng.next();
  return keys;
}

void BM_MphBuild(benchmark::State& state) {
  const auto keys = random_keys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const serve::Mph mph = serve::Mph::build(keys);
    benchmark::DoNotOptimize(mph.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MphBuild)->Arg(16)->Arg(256)->Arg(4096);

void BM_MphSlotOf(benchmark::State& state) {
  const auto keys = random_keys(static_cast<std::size_t>(state.range(0)));
  const serve::Mph mph = serve::Mph::build(keys);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mph.slot_of(keys[i]));
    if (++i == keys.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MphSlotOf)->Arg(16)->Arg(256)->Arg(4096);

serve::Registry& filled_registry(std::size_t entries) {
  // One registry per size, shared across benchmark repetitions: admission
  // cost is benchmarked separately and the lookup path is read-only.
  static std::vector<std::unique_ptr<serve::Registry>> cache;
  for (const auto& r : cache) {
    if (r->size() == entries) return *r;
  }
  auto registry = std::make_unique<serve::Registry>();
  const auto keys = random_keys(entries);
  for (const std::uint64_t key : keys) {
    serve::Registry::Entry e;
    e.id = {key, key ^ 0x5a5a5a5a5a5a5a5aull};
    e.model = std::make_shared<power::ConstantModel>(1.0, 4);
    e.circuit = "bench";
    registry->admit(std::move(e));
  }
  cache.push_back(std::move(registry));
  return *cache.back();
}

void BM_RegistryLookupHit(benchmark::State& state) {
  serve::Registry& registry = filled_registry(
      static_cast<std::size_t>(state.range(0)));
  const auto keys = random_keys(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const service::ModelId id{keys[i], keys[i] ^ 0x5a5a5a5a5a5a5a5aull};
    benchmark::DoNotOptimize(registry.lookup(id));
    if (++i == keys.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryLookupHit)->Arg(16)->Arg(256)->Arg(4096);

void BM_RegistryLookupMiss(benchmark::State& state) {
  serve::Registry& registry = filled_registry(
      static_cast<std::size_t>(state.range(0)));
  SplitMix64 rng(0xabcdef);
  for (auto _ : state) {
    const std::uint64_t k = rng.next();
    benchmark::DoNotOptimize(registry.lookup({k, k}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegistryLookupMiss)->Arg(256);

void BM_RegistryAdmit(benchmark::State& state) {
  // Cost of one admission into a registry of range(0) existing entries —
  // includes the full MPH index rebuild and snapshot republish.
  const std::size_t base = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(base);
  for (auto _ : state) {
    state.PauseTiming();
    serve::Registry registry;
    for (const std::uint64_t key : keys) {
      serve::Registry::Entry e;
      e.id = {key, key ^ 0x5a5a5a5a5a5a5a5aull};
      e.model = std::make_shared<power::ConstantModel>(1.0, 4);
      registry.admit(std::move(e));
    }
    state.ResumeTiming();
    serve::Registry::Entry e;
    e.id = {0x0123456789abcdefull, 1};
    e.model = std::make_shared<power::ConstantModel>(1.0, 4);
    registry.admit(std::move(e));
  }
}
BENCHMARK(BM_RegistryAdmit)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
