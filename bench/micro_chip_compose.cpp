// Chip composition benchmark: streaming trace evaluation of composed
// chips at 1/2/4/8 shards, emitted machine-readably to
// BENCH_chip_compose.json.
//
// The chip evaluator shards fixed 1024-transition chunks across a thread
// pool and reduces per-chunk partials in chunk order, so the totals are
// bit-identical at every shard count — that is the FATAL gate here, the
// same contract the chip-smoke CI job checks end to end through the CLI.
// Speedup is reported per machine (hardware_concurrency says how many
// cores the numbers were taken on; on a single-core host every row
// degenerates to serial timing).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chip/chip.hpp"
#include "chip/evaluator.hpp"
#include "eval/table.hpp"
#include "support/io.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cfpm;

struct Result {
  std::size_t shards = 1;
  double seconds = 0.0;  // best observed evaluation of the full trace
  double total_ff = 0.0;
  double peak_ff = 0.0;
};

struct ChipReport {
  std::string spec;
  std::size_t macros = 0;
  std::size_t blocks = 0;
  std::size_t depth = 0;
  std::size_t bus_bits = 0;
  std::size_t transitions = 0;
  std::vector<Result> results;
};

ChipReport run_chip(const std::string& spec_text, std::size_t vectors) {
  const chip::ChipSpec spec = chip::ChipSpec::parse(spec_text);
  const chip::Chip c = chip::build_chip(spec);

  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0xcf9e);
  const sim::InputSequence trace = gen.generate(c.bus_width(), vectors);

  ChipReport rep;
  rep.spec = spec.to_string();
  rep.macros = c.num_macros();
  rep.blocks = spec.blocks;
  rep.depth = c.depth();
  rep.bus_bits = c.bus_width();
  rep.transitions = trace.num_transitions();

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(shards);
    Result r;
    r.shards = shards;
    double best = 1e300;
    double elapsed = 0.0;
    std::size_t passes = 0;
    while ((elapsed < 1.0 && passes < 50) || passes < 5) {
      Timer timer;
      const chip::ChipTraceResult est =
          chip::evaluate_trace(c.avg_design(), trace, &pool);
      const double t = timer.seconds();
      best = std::min(best, t);
      elapsed += t;
      ++passes;
      r.total_ff = est.total_ff;
      r.peak_ff = est.peak_ff;
    }
    r.seconds = best;
    rep.results.push_back(r);
  }

  // Correctness gate: shard count must not change a single bit of the
  // result (fixed chunk boundaries + ordered reduction).
  for (std::size_t i = 1; i < rep.results.size(); ++i) {
    if (rep.results[i].total_ff != rep.results[0].total_ff ||
        rep.results[i].peak_ff != rep.results[0].peak_ff) {
      std::cerr << "FATAL: shard count changed the result on " << rep.spec
                << "\n";
      std::exit(1);
    }
  }
  return rep;
}

}  // namespace

int main() {
  const std::size_t vectors = bench::env_vectors(20000);
  const std::vector<std::string> specs = {"2x3x12", "4x6x16", "8x6x16"};

  std::vector<ChipReport> reports;
  for (const std::string& spec : specs) {
    reports.push_back(run_chip(spec, vectors));
  }

  for (const ChipReport& rep : reports) {
    const double serial = rep.results[0].seconds;
    std::cout << "\nchip compose: " << rep.spec << " (" << rep.macros
              << " macros, " << rep.bus_bits << "-bit bus, "
              << rep.transitions << " transitions)\n";
    eval::TextTable table({"shards", "ms/trace", "speedup", "total fF"});
    for (const Result& r : rep.results) {
      table.add_row({std::to_string(r.shards),
                     eval::TextTable::num(1e3 * r.seconds, 3),
                     eval::TextTable::num(serial / r.seconds, 2),
                     eval::TextTable::num(r.total_ff, 0)});
    }
    table.print(std::cout);
  }

  // Atomic write: a crashed or interrupted run never leaves a truncated
  // JSON where the dashboard expects a complete one.
  atomic_write_file("BENCH_chip_compose.json", [&](std::ostream& out) {
    char buf[64];
    out << "{\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"chips\": [\n";
    for (std::size_t c = 0; c < reports.size(); ++c) {
      const ChipReport& rep = reports[c];
      const double serial = rep.results[0].seconds;
      out << "    {\"spec\": \"" << rep.spec << "\", \"macros\": " << rep.macros
          << ", \"blocks\": " << rep.blocks << ", \"depth\": " << rep.depth
          << ", \"bus_bits\": " << rep.bus_bits
          << ", \"transitions\": " << rep.transitions << ", \"results\": [\n";
      for (std::size_t i = 0; i < rep.results.size(); ++i) {
        const Result& r = rep.results[i];
        out << "      {\"shards\": " << r.shards
            << ", \"seconds_per_trace\": " << r.seconds;
        std::snprintf(buf, sizeof(buf), "%.4g", serial / r.seconds);
        out << ", \"speedup_vs_serial\": " << buf;
        std::snprintf(buf, sizeof(buf), "%.6f", r.total_ff);
        out << ", \"total_ff\": " << buf << "}"
            << (i + 1 < rep.results.size() ? "," : "") << "\n";
      }
      out << "    ]}" << (c + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  });
  std::cout << "\nwrote BENCH_chip_compose.json\n";
  bench::write_metrics_snapshot("BENCH_chip_compose_metrics.json");
  return 0;
}
