// Micro-benchmarks of the decision-diagram kernel.
#include <benchmark/benchmark.h>

#include "dd/approx.hpp"
#include "dd/compiled.hpp"
#include "dd/manager.hpp"
#include "dd/stats.hpp"

namespace {

using namespace cfpm::dd;

/// n-variable parity: the classic linear-size BDD stress case.
Bdd parity(DdManager& mgr, std::uint32_t n) {
  Bdd f = mgr.bdd_zero();
  for (std::uint32_t v = 0; v < n; ++v) f = f ^ mgr.bdd_var(v);
  return f;
}

void BM_BddAndChain(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    DdManager mgr(n);
    Bdd f = mgr.bdd_one();
    for (std::uint32_t v = 0; v < n; ++v) f = f & mgr.bdd_var(v);
    benchmark::DoNotOptimize(f.size());
  }
}
BENCHMARK(BM_BddAndChain)->Arg(16)->Arg(64)->Arg(256);

void BM_BddParity(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double hit_rate = 0.0, occupancy = 0.0;
  for (auto _ : state) {
    DdManager mgr(n);
    Bdd f = parity(mgr, n);
    benchmark::DoNotOptimize(f.size());
    hit_rate = mgr.cache_hit_rate();
    occupancy = mgr.unique_table_occupancy();
  }
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["unique_occupancy"] = occupancy;
}
BENCHMARK(BM_BddParity)->Arg(16)->Arg(64)->Arg(128);

void BM_AddWeightedSum(benchmark::State& state) {
  // Mimics the Fig. 6 inner loop: sum of weighted 0/1 functions.
  const auto terms = static_cast<std::uint32_t>(state.range(0));
  double hit_rate = 0.0, occupancy = 0.0;
  for (auto _ : state) {
    DdManager mgr(16);
    Add total = mgr.constant(0.0);
    for (std::uint32_t i = 0; i < terms; ++i) {
      Bdd prod = mgr.bdd_var(i % 16) & !mgr.bdd_var((i + 5) % 16);
      total = total + Add(prod).times(1.0 + i);
    }
    benchmark::DoNotOptimize(total.size());
    hit_rate = mgr.cache_hit_rate();
    occupancy = mgr.unique_table_occupancy();
  }
  // Kernel-tuning observability: computed-cache effectiveness and
  // unique-table pressure of the construction workload.
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["unique_occupancy"] = occupancy;
}
BENCHMARK(BM_AddWeightedSum)->Arg(32)->Arg(128);

/// Eval-benchmark workload. Weights cycle through a small set (i % 7) so
/// the sum's value diversity -- and hence the ADD's terminal count -- stays
/// bounded; with 64 distinct weights the diagram grows combinatorially.
Add eval_workload(DdManager& mgr) {
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 96; ++i) {
    Bdd prod = mgr.bdd_var(i % 24) & !mgr.bdd_var((i * 5 + 1) % 24);
    f = f + Add(prod).times(1.0 + (i % 7));
  }
  return f;
}

void BM_AddEval(benchmark::State& state) {
  DdManager mgr(24);
  Add f = eval_workload(mgr);
  std::vector<std::uint8_t> assignment(24);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < 24; ++v) {
      assignment[v] = static_cast<std::uint8_t>((counter >> v) & 1u);
    }
    ++counter;
    benchmark::DoNotOptimize(f.eval(assignment));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(f.size());
}
BENCHMARK(BM_AddEval);

void BM_CompiledAddEval(benchmark::State& state) {
  // Same diagram as BM_AddEval, evaluated on the flat-array snapshot.
  DdManager mgr(24);
  const CompiledDd compiled = CompiledDd::compile(eval_workload(mgr));
  std::vector<std::uint8_t> assignment(24);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < 24; ++v) {
      assignment[v] = static_cast<std::uint8_t>((counter >> v) & 1u);
    }
    ++counter;
    benchmark::DoNotOptimize(compiled.eval(assignment));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(compiled.num_nodes());
}
BENCHMARK(BM_CompiledAddEval);

void BM_CompiledPackedEval(benchmark::State& state) {
  // Same diagram again, 64 assignments per bit-parallel sweep.
  DdManager mgr(24);
  const CompiledDd compiled = CompiledDd::compile(eval_workload(mgr));
  std::vector<std::uint64_t> bits(24);
  std::vector<std::uint64_t> scratch;
  double out[64];
  std::uint64_t counter = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (std::size_t v = 0; v < 24; ++v) {
      counter ^= counter << 13;
      counter ^= counter >> 7;
      bits[v] = counter;
    }
    compiled.eval_packed(bits.data(), 64, out, scratch);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["nodes"] = static_cast<double>(compiled.num_nodes());
}
BENCHMARK(BM_CompiledPackedEval);

void BM_NodeStatsTraversal(benchmark::State& state) {
  DdManager mgr(24);
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 96; ++i) {
    Bdd prod = mgr.bdd_var(i % 24) & !mgr.bdd_var((i * 5 + 1) % 24);
    f = f + Add(prod).times(1.0 + (i % 7));
  }
  for (auto _ : state) {
    NodeStats stats(f);
    benchmark::DoNotOptimize(stats.root().var);
  }
  state.counters["nodes"] = static_cast<double>(f.size());
}
BENCHMARK(BM_NodeStatsTraversal);

void BM_Approximate(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  DdManager mgr(24);
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 96; ++i) {
    Bdd prod = mgr.bdd_var(i % 24) & !mgr.bdd_var((i * 5 + 1) % 24);
    f = f + Add(prod).times(1.0 + (i % 7));
  }
  for (auto _ : state) {
    Add g = approximate_to(f, budget, ApproxMode::kAverage);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_Approximate)->Arg(100)->Arg(10)->Arg(1);

void BM_GarbageCollection(benchmark::State& state) {
  for (auto _ : state) {
    DdManager mgr(20);
    for (int round = 0; round < 10; ++round) {
      Bdd f = parity(mgr, 20);  // becomes garbage each round
      benchmark::DoNotOptimize(f.size());
    }
    benchmark::DoNotOptimize(mgr.collect_garbage());
  }
}
BENCHMARK(BM_GarbageCollection);

}  // namespace

BENCHMARK_MAIN();
