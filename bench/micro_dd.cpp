// Micro-benchmarks of the decision-diagram kernel.
//
// Two modes:
//   micro_dd [google-benchmark flags]   -- the usual benchmark suite
//   micro_dd --dd-core [--smoke]        -- representation recorder: builds
//       the full signal BDD set of gen:cmb and gen:cm150, measures apply
//       throughput and sift wall time, self-checks every output BDD
//       against the gate-level simulator, and (outside --smoke) writes
//       BENCH_dd_core.json. --smoke runs one quick pass and exits nonzero
//       on any mismatch, which is what the CI Release job runs to catch
//       representation regressions.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dd/approx.hpp"
#include "dd/compiled.hpp"
#include "dd/manager.hpp"
#include "dd/stats.hpp"
#include "netlist/generators.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace cfpm::dd;

/// n-variable parity: the classic linear-size BDD stress case.
Bdd parity(DdManager& mgr, std::uint32_t n) {
  Bdd f = mgr.bdd_zero();
  for (std::uint32_t v = 0; v < n; ++v) f = f ^ mgr.bdd_var(v);
  return f;
}

void BM_BddAndChain(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    DdManager mgr(n);
    Bdd f = mgr.bdd_one();
    for (std::uint32_t v = 0; v < n; ++v) f = f & mgr.bdd_var(v);
    benchmark::DoNotOptimize(f.size());
  }
}
BENCHMARK(BM_BddAndChain)->Arg(16)->Arg(64)->Arg(256);

void BM_BddParity(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  double hit_rate = 0.0, occupancy = 0.0;
  for (auto _ : state) {
    DdManager mgr(n);
    Bdd f = parity(mgr, n);
    benchmark::DoNotOptimize(f.size());
    hit_rate = mgr.cache_hit_rate();
    occupancy = mgr.unique_table_occupancy();
  }
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["unique_occupancy"] = occupancy;
}
BENCHMARK(BM_BddParity)->Arg(16)->Arg(64)->Arg(128);

void BM_AddWeightedSum(benchmark::State& state) {
  // Mimics the Fig. 6 inner loop: sum of weighted 0/1 functions.
  const auto terms = static_cast<std::uint32_t>(state.range(0));
  double hit_rate = 0.0, occupancy = 0.0;
  for (auto _ : state) {
    DdManager mgr(16);
    Add total = mgr.constant(0.0);
    for (std::uint32_t i = 0; i < terms; ++i) {
      Bdd prod = mgr.bdd_var(i % 16) & !mgr.bdd_var((i + 5) % 16);
      total = total + Add(prod).times(1.0 + i);
    }
    benchmark::DoNotOptimize(total.size());
    hit_rate = mgr.cache_hit_rate();
    occupancy = mgr.unique_table_occupancy();
  }
  // Kernel-tuning observability: computed-cache effectiveness and
  // unique-table pressure of the construction workload.
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["unique_occupancy"] = occupancy;
}
BENCHMARK(BM_AddWeightedSum)->Arg(32)->Arg(128);

/// Eval-benchmark workload. Weights cycle through a small set (i % 7) so
/// the sum's value diversity -- and hence the ADD's terminal count -- stays
/// bounded; with 64 distinct weights the diagram grows combinatorially.
Add eval_workload(DdManager& mgr) {
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 96; ++i) {
    Bdd prod = mgr.bdd_var(i % 24) & !mgr.bdd_var((i * 5 + 1) % 24);
    f = f + Add(prod).times(1.0 + (i % 7));
  }
  return f;
}

void BM_AddEval(benchmark::State& state) {
  DdManager mgr(24);
  Add f = eval_workload(mgr);
  std::vector<std::uint8_t> assignment(24);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < 24; ++v) {
      assignment[v] = static_cast<std::uint8_t>((counter >> v) & 1u);
    }
    ++counter;
    benchmark::DoNotOptimize(f.eval(assignment));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(f.size());
}
BENCHMARK(BM_AddEval);

void BM_CompiledAddEval(benchmark::State& state) {
  // Same diagram as BM_AddEval, evaluated on the flat-array snapshot.
  DdManager mgr(24);
  const CompiledDd compiled = CompiledDd::compile(eval_workload(mgr));
  std::vector<std::uint8_t> assignment(24);
  std::uint64_t counter = 0;
  for (auto _ : state) {
    for (std::size_t v = 0; v < 24; ++v) {
      assignment[v] = static_cast<std::uint8_t>((counter >> v) & 1u);
    }
    ++counter;
    benchmark::DoNotOptimize(compiled.eval(assignment));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["nodes"] = static_cast<double>(compiled.num_nodes());
}
BENCHMARK(BM_CompiledAddEval);

void BM_CompiledPackedEval(benchmark::State& state) {
  // Same diagram again, 64 assignments per bit-parallel sweep.
  DdManager mgr(24);
  const CompiledDd compiled = CompiledDd::compile(eval_workload(mgr));
  std::vector<std::uint64_t> bits(24);
  std::vector<std::uint64_t> scratch;
  double out[64];
  std::uint64_t counter = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (std::size_t v = 0; v < 24; ++v) {
      counter ^= counter << 13;
      counter ^= counter >> 7;
      bits[v] = counter;
    }
    compiled.eval_packed(bits.data(), 64, out, scratch);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["nodes"] = static_cast<double>(compiled.num_nodes());
}
BENCHMARK(BM_CompiledPackedEval);

void BM_NodeStatsTraversal(benchmark::State& state) {
  DdManager mgr(24);
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 96; ++i) {
    Bdd prod = mgr.bdd_var(i % 24) & !mgr.bdd_var((i * 5 + 1) % 24);
    f = f + Add(prod).times(1.0 + (i % 7));
  }
  for (auto _ : state) {
    NodeStats stats(f);
    benchmark::DoNotOptimize(stats.root().var);
  }
  state.counters["nodes"] = static_cast<double>(f.size());
}
BENCHMARK(BM_NodeStatsTraversal);

void BM_Approximate(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  DdManager mgr(24);
  Add f = mgr.constant(0.0);
  for (std::uint32_t i = 0; i < 96; ++i) {
    Bdd prod = mgr.bdd_var(i % 24) & !mgr.bdd_var((i * 5 + 1) % 24);
    f = f + Add(prod).times(1.0 + (i % 7));
  }
  for (auto _ : state) {
    Add g = approximate_to(f, budget, ApproxMode::kAverage);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_Approximate)->Arg(100)->Arg(10)->Arg(1);

void BM_GarbageCollection(benchmark::State& state) {
  for (auto _ : state) {
    DdManager mgr(20);
    for (int round = 0; round < 10; ++round) {
      Bdd f = parity(mgr, 20);  // becomes garbage each round
      benchmark::DoNotOptimize(f.size());
    }
    benchmark::DoNotOptimize(mgr.collect_garbage());
  }
}
BENCHMARK(BM_GarbageCollection);

// ---------------------------------------------------------------------------
// --dd-core recorder: apply throughput + sift wall time on real circuits.
// ---------------------------------------------------------------------------

/// Builds every signal's BDD of `n` in topological order; counts binary
/// apply operations (NOTs excluded: they are representation-dependent in
/// cost and free on a complement-edge kernel).
std::vector<Bdd> build_signal_bdds(DdManager& mgr, const cfpm::netlist::Netlist& n,
                                   std::size_t* binary_ops) {
  using cfpm::netlist::GateType;
  using cfpm::netlist::SignalId;
  std::vector<Bdd> g(n.num_signals());
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    const auto& sig = n.signal(s);
    if (sig.is_input) {
      g[s] = mgr.bdd_var(n.input_index(s));
      continue;
    }
    const auto fanins = n.fanins(s);
    switch (sig.type) {
      case GateType::kConst0:
        g[s] = mgr.bdd_zero();
        continue;
      case GateType::kConst1:
        g[s] = mgr.bdd_one();
        continue;
      case GateType::kBuf:
        g[s] = g[fanins[0]];
        continue;
      case GateType::kNot:
        g[s] = !g[fanins[0]];
        continue;
      default:
        break;
    }
    Bdd acc = g[fanins[0]];
    for (std::size_t k = 1; k < fanins.size(); ++k) {
      const Bdd& next = g[fanins[k]];
      switch (sig.type) {
        case GateType::kAnd:
        case GateType::kNand:
          acc = acc & next;
          break;
        case GateType::kOr:
        case GateType::kNor:
          acc = acc | next;
          break;
        case GateType::kXor:
        case GateType::kXnor:
          acc = acc ^ next;
          break;
        default:
          acc = acc & next;
          break;
      }
      ++*binary_ops;
    }
    if (sig.type == GateType::kNand || sig.type == GateType::kNor ||
        sig.type == GateType::kXnor) {
      acc = !acc;
    }
    g[s] = acc;
  }
  return g;
}

struct CoreCircuitResult {
  std::string name;
  std::size_t inputs = 0;
  std::size_t binary_ops = 0;       ///< binary apply calls per build pass
  double build_seconds = 0.0;       ///< best pass
  double apply_ops_per_sec = 0.0;
  std::size_t live_nodes = 0;       ///< after one build pass
  double sift_seconds = 0.0;
  std::size_t nodes_after_sift = 0;
  bool check_ok = false;
};

/// Evaluates every output BDD against the gate-level simulator on random
/// vectors; any disagreement is a representation bug.
bool self_check(const cfpm::netlist::Netlist& n, const std::vector<Bdd>& g,
                std::size_t vectors) {
  cfpm::sim::GateLevelSimulator sim(
      n, std::vector<double>(n.num_signals(), 1.0));
  cfpm::Xoshiro256 rng(0xddc0de);
  std::vector<std::uint8_t> inputs(n.num_inputs());
  for (std::size_t t = 0; t < vectors; ++t) {
    for (auto& b : inputs) b = rng.next_bool(0.5) ? 1 : 0;
    const std::vector<std::uint8_t> signals = sim.eval(inputs);
    for (cfpm::netlist::SignalId s : n.outputs()) {
      if (g[s].is_null()) continue;
      if (g[s].eval(inputs) != (signals[s] != 0)) {
        std::cerr << "dd-core self-check FAILED: circuit " << n.name()
                  << " output signal " << s << " vector " << t << "\n";
        return false;
      }
    }
  }
  return true;
}

CoreCircuitResult run_core_circuit(const std::string& name, bool smoke) {
  const cfpm::netlist::Netlist n = cfpm::netlist::gen::mcnc_like(name);
  CoreCircuitResult r;
  r.name = name;
  r.inputs = n.num_inputs();

  const int max_passes = smoke ? 1 : 200;
  const double min_elapsed = smoke ? 0.0 : 1.0;
  double elapsed = 0.0;
  double best = 1e300;
  for (int pass = 0; pass < max_passes && (pass == 0 || elapsed < min_elapsed);
       ++pass) {
    DdManager mgr(n.num_inputs());
    std::size_t ops = 0;
    cfpm::Timer timer;
    std::vector<Bdd> g = build_signal_bdds(mgr, n, &ops);
    const double t = timer.seconds();
    best = std::min(best, t);
    elapsed += t;
    r.binary_ops = ops;
    if (pass == 0) {
      r.live_nodes = mgr.live_nodes();
      r.check_ok = self_check(n, g, smoke ? 64 : 256);
      cfpm::Timer sift_timer;
      mgr.sift();
      r.sift_seconds = sift_timer.seconds();
      r.nodes_after_sift = mgr.live_nodes();
    }
  }
  r.build_seconds = best;
  r.apply_ops_per_sec = static_cast<double>(r.binary_ops) / best;
  return r;
}

int run_dd_core(bool smoke) {
  const std::size_t node_bytes = DdManager::node_footprint_bytes();
  std::vector<CoreCircuitResult> results;
  bool ok = true;
  for (const char* name : {"cmb", "cm150"}) {
    CoreCircuitResult r = run_core_circuit(name, smoke);
    ok = ok && r.check_ok;
    std::cout << r.name << ": inputs=" << r.inputs << " binary_ops="
              << r.binary_ops << " build=" << r.build_seconds * 1e3
              << " ms apply_ops/s=" << r.apply_ops_per_sec
              << " nodes=" << r.live_nodes << " sift=" << r.sift_seconds * 1e3
              << " ms nodes_after_sift=" << r.nodes_after_sift
              << (r.check_ok ? " check=ok" : " check=FAILED") << "\n";
    results.push_back(std::move(r));
  }
  std::cout << "node_footprint_bytes=" << node_bytes << "\n";
  if (!ok) return 1;
  if (smoke) {
    std::cout << "dd-core smoke: ok\n";
    return 0;
  }
  // Atomic write: a crashed or interrupted run never leaves a truncated
  // JSON where the dashboard expects a complete one.
  cfpm::atomic_write_file("BENCH_dd_core.json", [&](std::ostream& out) {
    out << "{\n  \"node_footprint_bytes\": " << node_bytes << ",\n";
    out << "  \"circuits\": [\n";
    out.precision(6);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CoreCircuitResult& r = results[i];
      out << "    {\"name\": \"" << r.name << "\", \"inputs\": " << r.inputs
          << ", \"binary_apply_ops\": " << r.binary_ops
          << ", \"build_seconds\": " << r.build_seconds
          << ", \"apply_ops_per_sec\": " << r.apply_ops_per_sec
          << ", \"live_nodes\": " << r.live_nodes
          << ", \"sift_seconds\": " << r.sift_seconds
          << ", \"nodes_after_sift\": " << r.nodes_after_sift << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  });
  std::cout << "wrote BENCH_dd_core.json\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool dd_core = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dd-core") == 0) dd_core = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (dd_core) return run_dd_core(smoke);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
