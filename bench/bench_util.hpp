// Shared helpers for the experiment drivers in bench/.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "netlist/generators.hpp"
#include "netlist/library.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "power/factory.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

namespace cfpm::bench {

/// The experiments' "test gate library": uniform 5 fF input pins and a
/// 10 fF external load. Commensurate pin capacitances keep the
/// switching-capacitance ADDs' value diversity (distinct partial sums of
/// loads) bounded, as a small characterized test library would; the
/// heterogeneous GateLibrary::standard() remains available for API use.
inline netlist::GateLibrary experiment_library() {
  return netlist::GateLibrary::uniform(5.0, 10.0);
}

/// Per-circuit ADD node budgets from Table 1 of the paper.
struct CircuitBudget {
  const char* name;
  std::size_t avg_max;    ///< "Model MAX" column (average estimators)
  std::size_t bound_max;  ///< "Model MAX" column (upper bounds)
};

inline const std::vector<CircuitBudget>& table1_budgets() {
  static const std::vector<CircuitBudget> budgets = {
      {"alu2", 1000, 5000},  {"alu4", 2000, 15000}, {"cmb", 200, 1000},
      {"cm150", 1000, 2000}, {"cm85", 500, 500},    {"comp", 5000, 10000},
      {"decod", 200, 200},   {"k2", 10000, 10000},  {"mux", 1000, 5000},
      {"parity", 3000, 500}, {"pcle", 5000, 10000}, {"x1", 1000, 50000},
      {"x2", 200, 2500},
  };
  return budgets;
}

/// Characterizes Con and Lin at sp = st = 0.5 (the paper's setup), via the
/// power::make_model factory on the experiment library.
struct Baselines {
  std::unique_ptr<power::PowerModel> con;
  std::unique_ptr<power::PowerModel> lin;
};

inline Baselines characterize_baselines(const netlist::Netlist& n,
                                        std::size_t vectors,
                                        std::uint64_t seed = 0xc0ffee) {
  power::ModelOptions options;
  options.library = experiment_library();
  options.characterization = {0.5, 0.5};
  options.characterization_vectors = vectors;
  options.characterization_seed = seed;
  return Baselines{power::make_model(power::ModelKind::kConstant, n, options),
                   power::make_model(power::ModelKind::kLinear, n, options)};
}

/// Single-model accuracy via the one multi-model eval::evaluate entry point
/// (the old single-model overload was superseded by the service facade).
inline eval::AccuracyReport evaluate_one(
    const power::PowerModel& model, const eval::Reference& golden,
    std::span<const stats::InputStatistics> grid,
    const eval::EvalOptions& options = {}) {
  const power::PowerModel* ptr = &model;
  return eval::evaluate(std::span(&ptr, 1), golden, grid, options)[0];
}

/// Vector count for a driver run; defers to RunConfig::from_env's strict
/// CFPM_VECTORS parsing (a typo'd value aborts instead of silently running
/// the fallback size).
inline std::size_t env_vectors(std::size_t fallback = 10000) {
  if (std::getenv("CFPM_VECTORS") == nullptr) return fallback;
  return eval::RunConfig::from_env().vectors_per_run;
}

/// Dumps the process metrics snapshot next to a driver's numbers so a
/// result always carries the pipeline statistics that produced it.
inline void write_metrics_snapshot(const std::string& path) {
  try {
    atomic_write_file(
        path, [](std::ostream& os) { metrics::snapshot().write_json(os); });
  } catch (const std::exception& e) {
    std::cerr << "warning: cannot write metrics snapshot to " << path << ": "
              << e.what() << "\n";
    return;
  }
  std::cerr << "metrics snapshot: " << path << "\n";
}

inline bool env_skip_slow() {
  const char* v = std::getenv("CFPM_SKIP_SLOW");
  return v != nullptr && v[0] != '0';
}

}  // namespace cfpm::bench
