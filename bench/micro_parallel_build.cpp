// Model-construction benchmark: serial Fig. 6 loop vs cone-parallel build
// at 1/2/4/8 worker threads, emitted machine-readably to
// BENCH_parallel_build.json.
//
// Construction is the offline half of the pipeline (eval throughput is the
// online half, see micro_eval_throughput.cpp), but it gates how large a
// circuit is practical to model at all: each output cone is an independent
// ADD build, so the Fig. 6 gate loop parallelizes across cones with a
// deterministic serialize/import merge. The gate here is bit-identical
// results at every thread count; speedup is reported per machine (the
// hardware_concurrency field says how many cores the numbers were taken
// on — on a single-core host every row degenerates to serial timing).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "eval/table.hpp"
#include "power/add_model.hpp"
#include "support/io.hpp"

namespace {

using namespace cfpm;

struct Result {
  std::size_t threads = 1;
  double seconds = 0.0;  // best observed build
  std::size_t model_nodes = 0;
  double average_ff = 0.0;
};

struct CircuitReport {
  std::string name;
  std::size_t inputs = 0;
  std::size_t gates = 0;
  std::size_t outputs = 0;
  std::vector<Result> results;
};

CircuitReport run_circuit(const std::string& circuit, std::size_t max_nodes) {
  const netlist::Netlist n = netlist::gen::mcnc_like(circuit);
  const netlist::GateLibrary lib = bench::experiment_library();

  CircuitReport rep;
  rep.name = circuit;
  rep.inputs = n.num_inputs();
  rep.gates = n.num_gates();
  rep.outputs = n.outputs().size();

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    power::AddModelOptions opt;
    opt.max_nodes = max_nodes;
    opt.build_threads = threads;
    Result r;
    r.threads = threads;
    double best = 1e300;
    double elapsed = 0.0;
    std::size_t passes = 0;
    // Builds are orders of magnitude slower than eval passes, so cap the
    // repeat budget lower; the minimum is still the noise-robust pick.
    while ((elapsed < 1.0 && passes < 20) || passes < 3) {
      Timer timer;
      const power::AddPowerModel model =
          power::AddPowerModel::build(n, lib, opt);
      const double t = timer.seconds();
      best = std::min(best, t);
      elapsed += t;
      ++passes;
      r.model_nodes = model.size();
      r.average_ff = model.function().average();
    }
    r.seconds = best;
    rep.results.push_back(r);
  }

  // Correctness gate: thread count must not change a single bit of the
  // resulting model (deterministic partition + fixed-order merge).
  for (std::size_t i = 1; i < rep.results.size(); ++i) {
    if (rep.results[i].model_nodes != rep.results[0].model_nodes ||
        rep.results[i].average_ff != rep.results[0].average_ff) {
      std::cerr << "FATAL: thread count changed the model on " << circuit
                << "\n";
      std::exit(1);
    }
  }
  return rep;
}

}  // namespace

int main() {
  // The same Table-1 circuits micro_eval_throughput.cpp sweeps (so the two
  // JSON files describe one pipeline end to end), plus decod: its wide
  // fan of output cones is the shape the cone partition actually spreads
  // across workers (cm150/mux are single-cone and degenerate to serial).
  const std::vector<std::pair<std::string, std::size_t>> circuits = {
      {"cmb", 200}, {"decod", 200}, {"cm150", 1000}, {"mux", 1000}};

  std::vector<CircuitReport> reports;
  for (const auto& [name, max_nodes] : circuits) {
    reports.push_back(run_circuit(name, max_nodes));
  }

  for (const CircuitReport& rep : reports) {
    const double serial = rep.results[0].seconds;
    std::cout << "\nparallel build: " << rep.name << " (" << rep.inputs
              << " inputs, " << rep.gates << " gates, " << rep.outputs
              << " output cones)\n";
    eval::TextTable table({"threads", "ms/build", "speedup", "model nodes"});
    for (const Result& r : rep.results) {
      table.add_row({std::to_string(r.threads),
                     eval::TextTable::num(1e3 * r.seconds, 3),
                     eval::TextTable::num(serial / r.seconds, 2),
                     std::to_string(r.model_nodes)});
    }
    table.print(std::cout);
  }

  // Atomic write: a crashed or interrupted run never leaves a truncated
  // JSON where the dashboard expects a complete one.
  atomic_write_file("BENCH_parallel_build.json", [&](std::ostream& out) {
    char buf[64];
    out << "{\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t c = 0; c < reports.size(); ++c) {
      const CircuitReport& rep = reports[c];
      const double serial = rep.results[0].seconds;
      out << "    {\"name\": \"" << rep.name << "\", \"inputs\": " << rep.inputs
          << ", \"gates\": " << rep.gates << ", \"outputs\": " << rep.outputs
          << ", \"results\": [\n";
      for (std::size_t i = 0; i < rep.results.size(); ++i) {
        const Result& r = rep.results[i];
        std::snprintf(buf, sizeof(buf), "%.4g", serial / r.seconds);
        out << "      {\"threads\": " << r.threads
            << ", \"seconds_per_build\": " << r.seconds
            << ", \"speedup_vs_serial\": " << buf
            << ", \"model_nodes\": " << r.model_nodes << "}"
            << (i + 1 < rep.results.size() ? "," : "") << "\n";
      }
      out << "    ]}" << (c + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  });
  std::cout << "\nwrote BENCH_parallel_build.json\n";
  bench::write_metrics_snapshot("BENCH_parallel_build_metrics.json");
  return 0;
}
