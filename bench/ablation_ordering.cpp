// Ablation A1: variable ordering of the 2n model variables.
//
// The builder interleaves initial/final copies (x^i_k, x^f_k adjacent) by
// default. This driver compares exact-model sizes against the blocked
// order (all x^i then all x^f) across circuits, quantifying why the
// interleaved transition-relation order is the right default.
#include <iostream>

#include "bench_util.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const netlist::GateLibrary lib = bench::experiment_library();
  std::cout << "Ablation: interleaved vs blocked variable order "
            << "(exact ADD model sizes)\n\n";

  eval::TextTable table(
      {"circuit", "n", "N", "interleaved", "blocked", "ratio"});

  // Circuits kept small enough that the blocked exact model stays feasible.
  for (const char* name : {"cm85", "cmb", "decod", "mux", "parity", "x2",
                           "pcle"}) {
    const netlist::Netlist n = netlist::gen::mcnc_like(name);

    power::AddModelOptions interleaved;
    interleaved.max_nodes = 0;
    interleaved.order = power::VariableOrder::kInterleaved;
    const auto m_int = power::AddPowerModel::build(n, lib, interleaved);

    power::AddModelOptions blocked = interleaved;
    blocked.order = power::VariableOrder::kBlocked;
    const auto m_blk = power::AddPowerModel::build(n, lib, blocked);

    table.add_row({name, std::to_string(n.num_inputs()),
                   std::to_string(n.num_gates()),
                   std::to_string(m_int.size()), std::to_string(m_blk.size()),
                   eval::TextTable::num(
                       static_cast<double>(m_blk.size()) /
                           static_cast<double>(m_int.size()),
                       2)});
  }
  table.print(std::cout);
  std::cout << "\nratio > 1 means the interleaved order is smaller.\n";
  return 0;
}
