// Experiment E3 - Table 1, columns 1-8 (average estimators).
//
// For every Table-1 circuit: ARE of the characterized Con and Lin models
// and of the analytical ADD model (built with the paper's per-circuit MAX),
// plus the MAX used and the model construction CPU seconds.
#include <iostream>

#include "bench_util.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const std::size_t vectors = bench::env_vectors();
  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();
  const netlist::GateLibrary lib = bench::experiment_library();

  std::cout << "Table 1 reproduction (average estimators): ARE over "
            << grid.size() << " (sp,st) points, " << vectors
            << " vectors/run\n"
            << "Circuits are structural stand-ins for the MCNC netlists "
            << "(see DESIGN.md); compare shapes, not absolute numbers.\n\n";

  eval::TextTable table({"name", "n", "N", "ARE Con(%)", "ARE Lin(%)",
                         "ARE ADD(%)", "MAX", "CPU(s)"});

  for (const auto& budget : bench::table1_budgets()) {
    if (bench::env_skip_slow() &&
        (std::string(budget.name) == "k2" || std::string(budget.name) == "x1")) {
      continue;
    }
    const netlist::Netlist n = netlist::gen::mcnc_like(budget.name);
    const sim::GateLevelSimulator golden(n, lib);
    const auto base = bench::characterize_baselines(n, vectors);

    power::ModelOptions model_options;
    model_options.library = lib;
    model_options.add.max_nodes = budget.avg_max;
    Timer timer;
    const auto add =
        power::make_model(power::ModelKind::kAddAverage, n, model_options);
    const double cpu = timer.seconds();

    const power::PowerModel* models[] = {base.con.get(), base.lin.get(),
                                         add.get()};
    const auto reports = eval::evaluate(models, golden, grid, options);

    table.add_row({budget.name, std::to_string(n.num_inputs()),
                   std::to_string(n.num_gates()),
                   eval::TextTable::num(100.0 * reports[0].are, 1),
                   eval::TextTable::num(100.0 * reports[1].are, 1),
                   eval::TextTable::num(100.0 * reports[2].are, 1),
                   std::to_string(budget.avg_max),
                   eval::TextTable::num(cpu, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(paper's ADD column: ~3-19%; Lin ~80-270%; Con ~316-813%)\n";
  bench::write_metrics_snapshot("BENCH_table1_average_metrics.json");
  return 0;
}
