// Extension experiment E6 - the paper's Section-2 partitioning argument.
//
// "Dynamic power [...] is responsible for most of the pattern dependence
//  of the overall power consumption. Parasitic phenomena have a similar
//  (and usually smoother) dependence on input statistics. Once a robust
//  RTL model has been analytically constructed for the structural power,
//  characterizing parasitic phenomena is much simpler than characterizing
//  the entire power consumption as a whole."
//
// Golden reference: the glitch-aware gate-delay simulator (parasitic
// phenomena = hazard pulses). Competitors, all evaluated out-of-sample:
//   Con/Lin     characterized on the TOTAL power at sp = st = 0.5
//   ADD         structural model alone (knows nothing about glitches)
//   ADD+res     structural model + linear residual characterized on the
//               PARASITIC surplus only (paper's proposal)
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "eval/table.hpp"
#include "power/residual.hpp"
#include "sim/unit_delay.hpp"

int main() {
  using namespace cfpm;

  const netlist::GateLibrary lib = bench::experiment_library();
  const std::size_t vectors = bench::env_vectors(4000);
  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();

  std::cout << "Structural + residual partitioning vs whole-power "
            << "characterization (glitch-aware golden, " << vectors
            << " vectors/run)\n\n";

  eval::TextTable table({"circuit", "glitch share(%)", "Con(%)", "Lin(%)",
                         "ADD only(%)", "ADD+res(%)"});

  for (const char* name : {"cm85", "cmb", "mux", "alu2", "parity"}) {
    const netlist::Netlist n = netlist::gen::mcnc_like(name);
    const sim::UnitDelaySimulator golden(n, lib, sim::DelayModel::standard());
    const eval::ReferenceFn ref = [&](const sim::InputSequence& seq) {
      return golden.simulate(seq);
    };

    // Characterization workload (sp = st = 0.5), shared by every
    // characterized component.
    stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0xfeed);
    const sim::InputSequence train = gen.generate(n.num_inputs(), vectors);
    const sim::SequenceEnergy train_energy = golden.simulate(train);
    const sim::GlitchBreakdown split = golden.simulate_breakdown(train);

    // Whole-power characterized baselines.
    double mean = train_energy.average_ff();
    const power::ConstantModel con(mean, n.num_inputs());
    power::LinearModel lin = [&] {
      // Reuse the characterizer's fitting path via the residual of a
      // zero structural model.
      auto zero = std::make_shared<power::ConstantModel>(0.0, n.num_inputs());
      return power::calibrate_residual(zero, train,
                                       train_energy.per_transition_ff)
          .residual();
    }();

    // Structural model (characterization-free) and its calibrated variant.
    power::AddModelOptions opt;
    opt.max_nodes = 0;  // exact structural backbone
    auto structural = std::make_shared<power::AddPowerModel>(
        power::AddPowerModel::build(n, lib, opt));
    const power::ResidualCalibratedModel calibrated = power::calibrate_residual(
        structural, train, train_energy.per_transition_ff);

    const power::PowerModel* models[] = {&con, &lin, structural.get(),
                                         &calibrated};
    const auto reports = eval::evaluate(
        models, eval::Reference(n.num_inputs(), ref), grid, options);

    table.add_row(
        {name,
         eval::TextTable::num(
             100.0 * (split.total_ff - split.functional_ff) / split.total_ff,
             1),
         eval::TextTable::num(100.0 * reports[0].are, 1),
         eval::TextTable::num(100.0 * reports[1].are, 1),
         eval::TextTable::num(100.0 * reports[2].are, 1),
         eval::TextTable::num(100.0 * reports[3].are, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: ADD+res < ADD only (glitch bias removed)\n"
            << "and ADD+res << Con/Lin out-of-sample.\n";
  return 0;
}
