// Experiment E1 - Fig. 7a of the paper.
//
// Relative error of the RTL power estimators Con, Lin and ADD on benchmark
// circuit cm85 as a function of the input transition probability st (at
// sp = 0.5). Con and Lin are characterized in-sample at sp = st = 0.5;
// their out-of-sample error explodes at low st while the ADD model
// (MAX = 500 nodes, as in the paper) stays flat.
#include <iostream>

#include "bench_util.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const netlist::Netlist n = netlist::gen::mcnc_like("cm85");
  const netlist::GateLibrary lib = bench::experiment_library();
  const sim::GateLevelSimulator golden(n, lib);

  const std::size_t vectors = bench::env_vectors();
  const auto base = bench::characterize_baselines(n, vectors);

  power::AddModelOptions opt;
  opt.max_nodes = 500;  // paper: "an upper bound of 500 ADD nodes"
  Timer build_timer;
  const auto add = power::AddPowerModel::build(n, lib, opt);
  const double build_s = build_timer.seconds();

  eval::EvalOptions options;
  options.run.vectors_per_run = vectors;
  const auto sweep = stats::fig7a_sweep();
  const power::PowerModel* models[] = {base.con.get(), base.lin.get(), &add};
  const auto reports = eval::evaluate(models, golden, sweep, options);

  std::cout << "Fig. 7a reproduction: RE(sp=0.5, st) on cm85 ("
            << n.num_inputs() << " inputs, " << n.num_gates() << " gates; "
            << vectors << " vectors/run; ADD size " << add.size()
            << " nodes, built in " << eval::TextTable::num(build_s, 3)
            << " s)\n\n";

  eval::TextTable table({"st", "RE_Con(%)", "RE_Lin(%)", "RE_ADD(%)"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    table.add_row({eval::TextTable::num(sweep[i].st, 2),
                   eval::TextTable::num(100.0 * reports[0].points[i].re, 1),
                   eval::TextTable::num(100.0 * reports[1].points[i].re, 1),
                   eval::TextTable::num(100.0 * reports[2].points[i].re, 1)});
  }
  table.print(std::cout);

  std::cout << "\nARE over the sweep: Con "
            << eval::TextTable::num(100.0 * reports[0].are, 1) << "%  Lin "
            << eval::TextTable::num(100.0 * reports[1].are, 1) << "%  ADD "
            << eval::TextTable::num(100.0 * reports[2].are, 1) << "%\n";
  std::cout << "(paper, full grid: Con 518.7%  Lin 195.2%  ADD 5.7%)\n";
  return 0;
}
