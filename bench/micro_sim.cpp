// Micro-benchmarks of the bit-parallel zero-delay simulator.
#include <benchmark/benchmark.h>

#include "netlist/generators.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"

namespace {

using namespace cfpm;

void bench_circuit(benchmark::State& state, const netlist::Netlist& n) {
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  const sim::GateLevelSimulator simulator(n, lib);
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 1);
  const sim::InputSequence seq = gen.generate(n.num_inputs(), 4096);
  for (auto _ : state) {
    const auto energy = simulator.simulate(seq);
    benchmark::DoNotOptimize(energy.total_ff);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(seq.num_transitions()));
  state.counters["gates"] = static_cast<double>(n.num_gates());
}

void BM_SimulateAdder16(benchmark::State& state) {
  bench_circuit(state, netlist::gen::ripple_carry_adder(16));
}
BENCHMARK(BM_SimulateAdder16);

void BM_SimulateComp(benchmark::State& state) {
  bench_circuit(state, netlist::gen::mcnc_like("comp"));
}
BENCHMARK(BM_SimulateComp);

void BM_SimulateK2(benchmark::State& state) {
  bench_circuit(state, netlist::gen::mcnc_like("k2"));
}
BENCHMARK(BM_SimulateK2);

void BM_ScalarVsParallel(benchmark::State& state) {
  // Scalar path: one pair at a time (the ablation baseline for the
  // 64-lane kernel; compare items/s against BM_SimulateAdder16).
  const netlist::Netlist n = netlist::gen::ripple_carry_adder(16);
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  const sim::GateLevelSimulator simulator(n, lib);
  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 1);
  const sim::InputSequence seq = gen.generate(n.num_inputs(), 257);
  std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t t = 0; t + 1 < seq.length(); ++t) {
      seq.vector_at(t, xi);
      seq.vector_at(t + 1, xf);
      total += simulator.switching_capacitance_ff(xi, xf);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(seq.num_transitions()));
}
BENCHMARK(BM_ScalarVsParallel);

}  // namespace

BENCHMARK_MAIN();
