// Experiment E4 - Table 1, columns 9-13 (conservative upper bounds).
//
// For every Table-1 circuit: ARE on *maximum* power estimates of a
// constant worst-case bound (the global max of the pattern-dependent
// bound, "Con") versus the pattern-dependent ADD upper bound, built with
// the paper's per-circuit bound MAX. Both are conservative; the
// pattern-dependent bound is far tighter.
#include <iostream>

#include "bench_util.hpp"
#include "eval/table.hpp"

int main() {
  using namespace cfpm;

  const std::size_t vectors = bench::env_vectors();
  eval::EvalOptions options;
  options.metric = eval::Metric::kBound;
  options.run.vectors_per_run = vectors;
  const auto grid = stats::evaluation_grid();
  const netlist::GateLibrary lib = bench::experiment_library();

  std::cout << "Table 1 reproduction (upper bounds): ARE on peak estimates "
            << "over " << grid.size() << " (sp,st) points, " << vectors
            << " vectors/run\n\n";

  eval::TextTable table({"name", "n", "N", "ARE Con(%)", "ARE ADD(%)", "MAX",
                         "CPU(s)", "conservative"});

  for (const auto& budget : bench::table1_budgets()) {
    if (bench::env_skip_slow() &&
        (std::string(budget.name) == "k2" || std::string(budget.name) == "x1")) {
      continue;
    }
    const netlist::Netlist n = netlist::gen::mcnc_like(budget.name);
    const sim::GateLevelSimulator golden(n, lib);

    power::AddModelOptions opt;
    opt.max_nodes = budget.bound_max;
    opt.mode = dd::ApproxMode::kUpperBound;
    Timer timer;
    const auto add = power::AddPowerModel::build(n, lib, opt);
    const double cpu = timer.seconds();

    // The paper's constant bound: the maximum value of the
    // pattern-dependent upper bound.
    const power::ConstantBoundModel con(add.max_estimate_ff(), n.num_inputs());

    const power::PowerModel* models[] = {&con, &add};
    const auto reports = eval::evaluate(models, golden, grid, options);

    // Sanity: conservative on every run (signed RE never negative).
    bool conservative = true;
    for (const auto& p : reports[1].points) {
      if (p.re < -1e-9) conservative = false;
    }

    table.add_row({budget.name, std::to_string(n.num_inputs()),
                   std::to_string(n.num_gates()),
                   eval::TextTable::num(100.0 * reports[0].are, 1),
                   eval::TextTable::num(100.0 * reports[1].are, 1),
                   std::to_string(budget.bound_max),
                   eval::TextTable::num(cpu, 2),
                   conservative ? "yes" : "VIOLATED"});
  }
  table.print(std::cout);
  std::cout << "\n(paper: constant bound ARE always >> 100%, ADD bound "
            << "ARE < 60%)\n";
  return 0;
}
