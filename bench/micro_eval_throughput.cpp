// Evaluation-throughput benchmark: scalar node-walk vs compiled flat-array
// vs compiled + thread-pooled batch evaluation of ADD power models.
//
// This is the production hot path (the model is evaluated every clock cycle
// of an RTL simulation), so the numbers are emitted machine-readably to
// BENCH_eval_throughput.json in addition to the console table. Three
// Table-1 circuits with >= 16 inputs span the diagram shapes that matter:
// narrow (cmb), mid (cm150), and wide (mux) relative to the 64-pattern
// groups the packed evaluator sweeps.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dd/simd.hpp"
#include "eval/table.hpp"
#include "power/power_model.hpp"
#include "support/io.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace cfpm;

struct Result {
  std::string engine;
  std::size_t threads = 1;
  double seconds = 0.0;  // best observed full-trace pass
  double patterns_per_sec = 0.0;
  double average_ff = 0.0;
  double peak_ff = 0.0;
};

struct CircuitReport {
  std::string name;
  std::size_t inputs = 0;
  std::size_t model_nodes = 0;
  std::size_t compiled_records = 0;
  std::size_t compiled_depth = 0;
  std::vector<Result> results;
};

/// Times full-trace evaluation passes until the cumulative run time is long
/// enough to trust the clock, keeping the BEST pass: on a shared machine
/// the minimum is the least noisy estimate of the true cost.
template <typename Fn>
Result measure(const std::string& engine, std::size_t threads,
               std::size_t transitions, Fn&& pass) {
  Result r;
  r.engine = engine;
  r.threads = threads;
  power::TraceEstimate est = pass();  // warm-up (page-in, pool spin-up)
  double elapsed = 0.0;
  double best = 1e300;
  std::size_t passes = 0;
  while (elapsed < 0.5 && passes < 200) {
    Timer timer;
    est = pass();
    const double t = timer.seconds();
    best = std::min(best, t);
    elapsed += t;
    ++passes;
  }
  r.seconds = best;
  r.patterns_per_sec = static_cast<double>(transitions) / best;
  r.average_ff = est.average_ff();
  r.peak_ff = est.peak_ff;
  return r;
}

CircuitReport run_circuit(const std::string& circuit, std::size_t max_nodes,
                          std::size_t vectors) {
  const netlist::Netlist n = netlist::gen::mcnc_like(circuit);
  const netlist::GateLibrary lib = bench::experiment_library();

  power::AddModelOptions opt;
  opt.max_nodes = max_nodes;
  const power::AddPowerModel model = power::AddPowerModel::build(n, lib, opt);

  stats::MarkovSequenceGenerator gen({0.5, 0.5}, 0xbea7);
  const sim::InputSequence seq = gen.generate(n.num_inputs(), vectors);
  const std::size_t transitions = seq.num_transitions();

  CircuitReport rep;
  rep.name = circuit;
  rep.inputs = n.num_inputs();
  rep.model_nodes = model.size();
  rep.compiled_records = model.compiled().num_nodes();
  rep.compiled_depth = model.compiled().depth();

  // Scalar node-walk: the pre-batch-API hot loop (one estimate_ff call --
  // assignment vector + ref-counted pointer walk -- per transition).
  rep.results.push_back(measure("scalar-walk", 1, transitions, [&] {
    std::vector<std::uint8_t> xi(n.num_inputs()), xf(n.num_inputs());
    power::TraceEstimate est;
    est.transitions = transitions;
    seq.vector_at(0, xi);
    for (std::size_t t = 0; t < transitions; ++t) {
      seq.vector_at(t + 1, xf);
      const double v = model.estimate_ff(xi, xf);
      est.total_ff += v;
      est.peak_ff = std::max(est.peak_ff, v);
      xi.swap(xf);
    }
    return est;
  }));

  // Prior hot loop: the 64-lane eval_packed kernel this PR's wide sweep
  // replaced, reproduced verbatim so the JSON keeps a before/after pair.
  rep.results.push_back(measure("packed64", 1, transitions, [&] {
    const dd::CompiledDd& compiled = model.compiled();
    std::vector<std::uint32_t> vi(n.num_inputs()), vf(n.num_inputs());
    for (std::uint32_t k = 0; k < n.num_inputs(); ++k) {
      vi[k] = model.var_of_xi(k);
      vf[k] = model.var_of_xf(k);
    }
    std::vector<std::uint64_t> bits(2 * n.num_inputs());
    std::vector<std::uint64_t> scratch;
    double values[64];
    power::TraceEstimate est;
    est.transitions = transitions;
    for (std::size_t base = 0; base < transitions; base += 64) {
      const std::size_t m = std::min<std::size_t>(64, transitions - base);
      for (std::uint32_t k = 0; k < n.num_inputs(); ++k) {
        bits[vi[k]] = seq.window64(k, base);
        bits[vf[k]] = seq.window64(k, base + 1);
      }
      compiled.eval_packed(bits.data(), m, values, scratch);
      for (std::size_t t = 0; t < m; ++t) {
        est.total_ff += values[t];
        est.peak_ff = std::max(est.peak_ff, values[t]);
      }
    }
    return est;
  }));

  // One row per SIMD tier the CPU supports; the dispatch clamp would make
  // an unsupported request silently re-measure a lower kernel, so skip
  // tiers the clamp rejects instead of emitting duplicate rows.
  const std::size_t first_wide = rep.results.size();
  for (const dd::simd::Tier tier : {dd::simd::Tier::kScalar,
                                    dd::simd::Tier::kAvx2,
                                    dd::simd::Tier::kAvx512}) {
    dd::simd::request_simd_tier(tier);
    if (dd::simd::active_simd_tier() != tier) continue;
    rep.results.push_back(
        measure(std::string("wide-") + std::string(dd::simd::simd_tier_name(tier)),
                1, transitions, [&] { return model.estimate_trace(seq); }));
  }
  dd::simd::request_simd_auto();

  for (std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    rep.results.push_back(
        measure("compiled+threads", threads, transitions,
                [&] { return model.estimate_trace(seq, &pool); }));
  }

  // Correctness gates: neither the SIMD tier nor the thread count may
  // change a single bit, and the batch paths must agree with the scalar
  // walk (looser: different accumulation association).
  const Result& compiled = rep.results[first_wide];
  for (std::size_t i = first_wide + 1; i < rep.results.size(); ++i) {
    if (rep.results[i].average_ff != compiled.average_ff ||
        rep.results[i].peak_ff != compiled.peak_ff) {
      std::cerr << "FATAL: SIMD tier or thread count changed the result on "
                << circuit << "\n";
      std::exit(1);
    }
  }
  for (std::size_t i = 0; i < first_wide; ++i) {
    const double rel_diff =
        std::abs(rep.results[i].average_ff - compiled.average_ff) /
        std::max(1e-300, std::abs(rep.results[i].average_ff));
    if (rel_diff > 1e-12) {
      std::cerr << "FATAL: " << rep.results[i].engine
                << " disagrees with the wide path on " << circuit << "\n";
      std::exit(1);
    }
  }

  // Raw kernel rows (appended after the correctness gates -- they evaluate
  // random pre-transposed bits, not the trace): the end-to-end rows above
  // fold in the per-transition window64 gather and accumulation, which is
  // identical across engines and dominates small diagrams, so the sweep
  // speedup the SIMD tiers deliver is only visible kernel-to-kernel.
  {
    const dd::CompiledDd& compiled_dd = model.compiled();
    constexpr std::size_t kW = dd::CompiledDd::kPackedGroups;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    const auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    std::vector<std::uint64_t> wide_bits(kW * 2 * n.num_inputs());
    for (auto& w : wide_bits) w = next();
    // The 64-lane layout is the wide layout's first column (stride 1).
    std::vector<std::uint64_t> one_bits(2 * n.num_inputs());
    for (std::size_t v = 0; v < one_bits.size(); ++v) {
      one_bits[v] = wide_bits[kW * v];
    }
    std::vector<std::uint64_t> scratch;
    double values[64 * kW];
    rep.results.push_back(measure("kernel-packed64", 1, transitions, [&] {
      power::TraceEstimate est;
      est.transitions = transitions;
      for (std::size_t base = 0; base < transitions; base += 64) {
        compiled_dd.eval_packed(one_bits.data(), 64, values, scratch);
      }
      est.total_ff = values[0];
      return est;
    }));
    for (const dd::simd::Tier tier : {dd::simd::Tier::kScalar,
                                      dd::simd::Tier::kAvx2,
                                      dd::simd::Tier::kAvx512}) {
      dd::simd::request_simd_tier(tier);
      if (dd::simd::active_simd_tier() != tier) continue;
      rep.results.push_back(measure(
          std::string("kernel-") + std::string(dd::simd::simd_tier_name(tier)),
          1, transitions, [&] {
            power::TraceEstimate est;
            est.transitions = transitions;
            for (std::size_t base = 0; base < transitions; base += 64 * kW) {
              compiled_dd.eval_packed_wide(wide_bits.data(), 64 * kW, values,
                                           scratch);
            }
            est.total_ff = values[0];
            return est;
          }));
    }
    dd::simd::request_simd_auto();
  }
  return rep;
}

}  // namespace

int main() {
  // Table-1 circuits with >= 16 inputs and their "Model MAX" budgets.
  const std::vector<std::pair<std::string, std::size_t>> circuits = {
      {"cmb", 200}, {"cm150", 1000}, {"mux", 1000}};
  const std::size_t vectors = bench::env_vectors(20000);

  std::vector<CircuitReport> reports;
  for (const auto& [name, max_nodes] : circuits) {
    reports.push_back(run_circuit(name, max_nodes, vectors));
  }

  for (const CircuitReport& rep : reports) {
    const double scalar_pps = rep.results[0].patterns_per_sec;
    std::cout << "\neval throughput: " << rep.name << " (" << rep.inputs
              << " inputs), model " << rep.model_nodes << " nodes, compiled "
              << rep.compiled_records << " records depth "
              << rep.compiled_depth << "\n";
    eval::TextTable table(
        {"engine", "threads", "ms/trace", "patterns/s", "speedup"});
    for (const Result& r : rep.results) {
      table.add_row({r.engine, std::to_string(r.threads),
                     eval::TextTable::num(1e3 * r.seconds, 3),
                     eval::TextTable::num(r.patterns_per_sec, 0),
                     eval::TextTable::num(r.patterns_per_sec / scalar_pps, 2)});
    }
    table.print(std::cout);
    const auto row = [&rep](const std::string& engine) -> const Result* {
      for (const Result& r : rep.results) {
        if (r.engine == engine) return &r;
      }
      return nullptr;
    };
    for (const auto& [now, before] :
         {std::pair<const char*, const char*>{"wide-avx2", "packed64"},
          {"kernel-avx2", "kernel-packed64"}}) {
      const Result* a = row(now);
      const Result* b = row(before);
      if (a != nullptr && b != nullptr) {
        std::cout << "  " << now << " vs " << before << ": "
                  << eval::TextTable::num(
                         a->patterns_per_sec / b->patterns_per_sec, 2)
                  << "x\n";
      }
    }
  }

  // Atomic write: a crashed or interrupted run never leaves a truncated
  // JSON where the dashboard expects a complete one.
  atomic_write_file("BENCH_eval_throughput.json", [&](std::ostream& out) {
    char buf[64];
    out << "{\n";
    out << "  \"transitions\": " << vectors - 1 << ",\n";
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n";
    out << "  \"circuits\": [\n";
    for (std::size_t c = 0; c < reports.size(); ++c) {
      const CircuitReport& rep = reports[c];
      const double scalar_pps = rep.results[0].patterns_per_sec;
      out << "    {\"name\": \"" << rep.name << "\", \"inputs\": " << rep.inputs
          << ", \"model_nodes\": " << rep.model_nodes
          << ", \"compiled_records\": " << rep.compiled_records
          << ", \"compiled_depth\": " << rep.compiled_depth
          << ", \"results\": [\n";
      for (std::size_t i = 0; i < rep.results.size(); ++i) {
        const Result& r = rep.results[i];
        std::snprintf(buf, sizeof(buf), "%.6g", r.patterns_per_sec);
        out << "      {\"engine\": \"" << r.engine
            << "\", \"threads\": " << r.threads
            << ", \"seconds_per_trace\": " << r.seconds
            << ", \"patterns_per_sec\": " << buf << ", \"speedup_vs_scalar\": ";
        std::snprintf(buf, sizeof(buf), "%.4g",
                      r.patterns_per_sec / scalar_pps);
        out << buf << "}" << (i + 1 < rep.results.size() ? "," : "") << "\n";
      }
      out << "    ]}" << (c + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  });
  std::cout << "\nwrote BENCH_eval_throughput.json\n";
  bench::write_metrics_snapshot("BENCH_eval_throughput_metrics.json");
  return 0;
}
