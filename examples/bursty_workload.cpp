// Why pattern-dependent models matter: bursty traffic.
//
// Real datapaths idle most of the time and burst occasionally -- exactly
// the workload where a characterized constant estimator is maximally
// wrong. This example runs a phase-modulated (idle/active) workload
// through a macro and compares, cycle by cycle:
//   * the golden gate-level simulation,
//   * the analytical ADD model (tracks each burst), and
//   * a Con estimator characterized at sp = st = 0.5 (flat line).
#include <iomanip>
#include <iostream>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/baselines.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"

int main() {
  using namespace cfpm;

  const netlist::Netlist macro = netlist::gen::mcnc_like("cm85");
  const netlist::GateLibrary lib = netlist::GateLibrary::uniform(5.0, 10.0);
  const sim::GateLevelSimulator golden(macro, lib);

  // Characterize Con the traditional way.
  stats::MarkovSequenceGenerator train_gen({0.5, 0.5}, 1);
  const auto train = train_gen.generate(macro.num_inputs(), 5000);
  power::Characterizer chr(golden, train);
  const power::ConstantModel con = chr.fit_constant();

  // The analytical model -- no simulation involved in its construction.
  power::AddModelOptions opt;
  opt.max_nodes = 500;
  const auto add = power::AddPowerModel::build(macro, lib, opt);

  // Bursty workload: mostly idle, occasional activity bursts.
  stats::BurstSpec burst;
  burst.idle = {0.5, 0.02};
  burst.active = {0.5, 0.6};
  burst.enter_active = 0.01;
  burst.exit_active = 0.08;
  stats::BurstSequenceGenerator gen(burst, 42);
  const auto trace = gen.generate(macro.num_inputs(), 4000);

  const auto energy = golden.simulate(trace);
  const double golden_avg = energy.average_ff();
  const double add_avg = add.average_over(trace);
  const double con_avg = con.value_ff();

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "bursty workload: active " << 100.0 * gen.last_active_fraction()
            << "% of cycles, measured st = "
            << std::setprecision(3) << trace.transition_probability() << "\n\n"
            << std::setprecision(1);
  std::cout << "golden average : " << golden_avg << " fF/cycle\n";
  std::cout << "ADD estimate   : " << add_avg << " fF/cycle  (error "
            << 100.0 * std::abs(add_avg - golden_avg) / golden_avg << "%)\n";
  std::cout << "Con estimate   : " << con_avg << " fF/cycle  (error "
            << 100.0 * std::abs(con_avg - golden_avg) / golden_avg << "%)\n\n";

  // A little ASCII strip chart of a window of the trace: golden vs ADD,
  // 40 cycles per row-bucket.
  std::cout << "per-window average (80-cycle buckets; G=golden, A=ADD, "
            << "C=Con):\n";
  const std::size_t bucket = 80;
  std::vector<std::uint8_t> xi(macro.num_inputs()), xf(macro.num_inputs());
  for (std::size_t w = 0; w + bucket < 1600; w += bucket) {
    double g = 0.0, a = 0.0;
    for (std::size_t t = w; t < w + bucket; ++t) {
      g += energy.per_transition_ff[t];
      trace.vector_at(t, xi);
      trace.vector_at(t + 1, xf);
      a += add.estimate_ff(xi, xf);
    }
    g /= bucket;
    a /= bucket;
    auto bar = [](double v) {
      return std::string(static_cast<std::size_t>(v / 2.0), '#');
    };
    std::cout << "  t=" << std::setw(5) << w << "  G " << std::setw(5) << g
              << " " << bar(g) << "\n";
    std::cout << "           A " << std::setw(5) << a << " " << bar(a) << "\n";
  }
  std::cout << "           C " << std::setw(5) << con_avg << " (every window)\n";
  return 0;
}
