// RT-level power analysis of a small datapath composed of library macros.
//
// The design: two 4-bit ALUs and a 16:1 result multiplexer share a global
// bus. Each macro instance is backed by one shared library model (built
// once, reused per instance), and per-cycle estimates compose additively
// -- the library-based RTL flow the paper targets.
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/rtl.hpp"
#include "stats/markov.hpp"

int main() {
  using namespace cfpm;

  // --- Library models (one per macro *type*).
  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  power::AddModelOptions opt;
  opt.max_nodes = 1000;

  const netlist::Netlist alu = netlist::gen::mcnc_like("alu2");   // 10 inputs
  const netlist::Netlist mux = netlist::gen::mcnc_like("mux");    // 21 inputs
  auto alu_model = std::make_shared<power::AddPowerModel>(
      power::AddPowerModel::build(alu, lib, opt));
  auto mux_model = std::make_shared<power::AddPowerModel>(
      power::AddPowerModel::build(mux, lib, opt));
  std::cout << "library models: alu2 " << alu_model->size() << " nodes, mux "
            << mux_model->size() << " nodes\n";

  // --- Instantiate: alu0 on bus[0..9], alu1 on bus[10..19],
  //     mux on a mix of both ALUs' input buses + control bus[20].
  power::RtlDesign design;
  auto range = [](std::size_t lo, std::size_t count) {
    std::vector<std::size_t> v(count);
    for (std::size_t i = 0; i < count; ++i) v[i] = lo + i;
    return v;
  };
  design.add_instance("alu0", alu_model, range(0, 10));
  design.add_instance("alu1", alu_model, range(10, 10));
  std::vector<std::size_t> mux_map = range(0, 20);
  mux_map.push_back(20);
  design.add_instance("rmux", mux_model, std::move(mux_map));

  std::cout << "datapath: " << design.num_instances()
            << " instances over a " << design.bus_width() << "-bit bus\n\n";

  // --- Per-cycle RTL power trace under a bursty workload.
  stats::MarkovSequenceGenerator gen({0.5, 0.3}, 7);
  const auto trace = gen.generate(design.bus_width(), 2000);
  const power::SupplyConfig supply{3.3};

  std::vector<std::uint8_t> xi(design.bus_width()), xf(design.bus_width());
  double total = 0.0, peak = 0.0;
  std::vector<double> per_instance(design.num_instances(), 0.0);
  for (std::size_t t = 0; t + 1 < trace.length(); ++t) {
    trace.vector_at(t, xi);
    trace.vector_at(t + 1, xf);
    const auto breakdown = design.estimate_breakdown_ff(xi, xf);
    double cycle = 0.0;
    for (std::size_t i = 0; i < breakdown.size(); ++i) {
      per_instance[i] += breakdown[i];
      cycle += breakdown[i];
    }
    total += cycle;
    peak = std::max(peak, cycle);
  }
  const double cycles = static_cast<double>(trace.num_transitions());

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "average switched capacitance: " << total / cycles
            << " fF/cycle (" << supply.power_uw(total / cycles, 10.0)
            << " uW @ 100 MHz, 3.3 V)\n";
  std::cout << "observed peak cycle:          " << peak << " fF\n\n";
  std::cout << "per-instance breakdown:\n";
  for (std::size_t i = 0; i < per_instance.size(); ++i) {
    std::cout << "  " << design.instance_name(i) << ": "
              << per_instance[i] / cycles << " fF/cycle ("
              << 100.0 * per_instance[i] / total << "% of total)\n";
  }
  return 0;
}
