// IP-reuse flow: a macro vendor builds and ships a power model *without*
// revealing the gate-level implementation (Section 2 of the paper: backing
// a functional description with Eq. 4 directly would disclose the IP; the
// precomputed ADD does not).
//
// Vendor side : netlist -> ADD model -> serialized blob
// Customer side: blob -> model -> RTL power estimates (no netlist needed)
#include <iostream>
#include <sstream>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "stats/markov.hpp"

namespace {

/// Vendor: builds a bounded model for a library macro and serializes it.
std::string vendor_export(const char* macro_name, std::size_t max_nodes) {
  using namespace cfpm;
  const netlist::Netlist macro = netlist::gen::mcnc_like(macro_name);
  power::AddModelOptions opt;
  opt.max_nodes = max_nodes;
  const auto model = power::AddPowerModel::build(
      macro, netlist::GateLibrary::standard(), opt);
  std::ostringstream blob;
  model.save(blob);
  std::cout << "[vendor]   " << macro_name << ": " << macro.num_gates()
            << "-gate netlist -> " << model.size() << "-node model ("
            << blob.str().size() << " bytes, built in "
            << model.build_info().build_seconds << " s)\n";
  return blob.str();
}

}  // namespace

int main() {
  using namespace cfpm;

  // The vendor exports two macros from its library.
  const std::string cmp_blob = vendor_export("comp", 5000);
  const std::string mux_blob = vendor_export("mux", 1000);

  // ---------------------------------------------------------------------
  // Customer: loads the blobs. Note no netlist, no gate library, nothing
  // but the discrete function C(x^i, x^f).
  std::istringstream cmp_in(cmp_blob), mux_in(mux_blob);
  const auto cmp_model = power::AddPowerModel::load(cmp_in);
  const auto mux_model = power::AddPowerModel::load(mux_in);
  std::cout << "\n[customer] loaded models: comp(" << cmp_model.num_inputs()
            << " inputs, " << cmp_model.size() << " nodes), mux("
            << mux_model.num_inputs() << " inputs, " << mux_model.size()
            << " nodes)\n";

  // RTL simulation loop: estimate average power of each macro under the
  // customer's actual workload statistics (which the vendor never saw --
  // the model is accurate anyway, that is the point of the paper).
  const power::SupplyConfig supply{3.3};
  for (double st : {0.1, 0.3, 0.5}) {
    stats::MarkovSequenceGenerator gen({0.5, st}, 99);
    const auto seq = gen.generate(cmp_model.num_inputs(), 5000);
    const double avg_cap = cmp_model.average_over(seq);
    // 10 ns clock.
    std::cout << "[customer] comp @ st=" << st << ": "
              << avg_cap << " fF/cycle ~= "
              << supply.power_uw(avg_cap, 10.0) << " uW @ 100 MHz\n";
  }
  return 0;
}
