// Quickstart: build a characterization-free power model for a small macro
// and query it, reproducing the paper's running example (Figs. 2-5).
//
//   $ ./quickstart
//
// Steps:
//   1. Describe the gate-level golden model (or load a .bench/.blif file).
//   2. Back-annotate load capacitances.
//   3. Build the ADD switching-capacitance model -- no simulation involved.
//   4. Query it per transition, and derive compressed / bound variants.
#include <iostream>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/add_model.hpp"
#include "power/power_model.hpp"

int main() {
  using namespace cfpm;
  using netlist::GateType;

  // --- 1. The paper's unit U: g1 = NOT x1, g2 = NOT x2, g3 = OR(x1, x2).
  netlist::Netlist unit("U");
  const auto x1 = unit.add_input("x1");
  const auto x2 = unit.add_input("x2");
  const auto g1 = unit.add_gate(GateType::kNot, {x1}, "g1");
  const auto g2 = unit.add_gate(GateType::kNot, {x2}, "g2");
  const auto g3 = unit.add_gate(GateType::kOr, {x1, x2}, "g3");
  unit.mark_output(g1);
  unit.mark_output(g2);
  unit.mark_output(g3);

  // --- 2. Back-annotated load capacitances (fF), as in Fig. 2.
  std::vector<double> loads(unit.num_signals(), 0.0);
  loads[g1] = 40.0;
  loads[g2] = 50.0;
  loads[g3] = 10.0;

  // --- 3. Exact symbolic model (MAX = 0 disables approximation).
  power::AddModelOptions options;
  options.max_nodes = 0;
  const auto model = power::AddPowerModel::build(unit, loads, options);
  std::cout << "Exact ADD model of C(x^i, x^f): " << model.size()
            << " nodes\n";

  // --- 4. Query: the paper's Example 1, C(11 -> 00) = 90 fF.
  const std::vector<std::uint8_t> xi{1, 1};
  const std::vector<std::uint8_t> xf{0, 0};
  std::cout << "C(11 -> 00) = " << model.estimate_ff(xi, xf) << " fF\n";

  // Energy for a 3.3 V supply.
  const power::SupplyConfig supply{3.3};
  std::cout << "E(11 -> 00) = " << supply.energy_fj(model.estimate_ff(xi, xf))
            << " fJ at " << supply.vdd_volts << " V\n";

  // --- 5. Trade accuracy for size: Fig. 4 (average) and Fig. 5 (bound).
  const auto small = model.compress(5, dd::ApproxMode::kAverage);
  const auto bound = model.compress(5, dd::ApproxMode::kUpperBound);
  std::cout << "\nCompressed to " << small.size() << " nodes (average mode):"
            << " C(11 -> 00) ~= " << small.estimate_ff(xi, xf) << " fF\n";
  std::cout << "Compressed to " << bound.size() << " nodes (bound mode):  "
            << " C(11 -> 00) <= " << bound.estimate_ff(xi, xf) << " fF\n";
  std::cout << "Pattern-independent worst case: " << model.worst_case_ff()
            << " fF\n";
  return 0;
}
