// Conservative peak-power analysis (Section 1.2 of the paper).
//
// Compares three worst-case methodologies on a multi-macro design:
//   (a) sum of per-macro global worst cases       -- loose, conservative
//   (b) pattern-dependent ADD bounds, summed       -- tight, conservative
//   (c) max observed in random simulation          -- tight, NOT conservative
// and validates (a) >= (b) >= true cycle bound >= (c)-style estimates.
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "power/rtl.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"

int main() {
  using namespace cfpm;

  const netlist::GateLibrary lib = netlist::GateLibrary::standard();
  const netlist::Netlist macro = netlist::gen::mcnc_like("cm85");
  const sim::GateLevelSimulator golden(macro, lib);

  // Pattern-dependent upper-bound model (max-collapse, Fig. 5).
  power::AddModelOptions opt;
  opt.max_nodes = 500;
  opt.mode = dd::ApproxMode::kUpperBound;
  auto bound = std::make_shared<power::AddPowerModel>(
      power::AddPowerModel::build(macro, lib, opt));

  // A virtual system with 6 instances of the macro on one bus.
  power::RtlDesign design;
  const std::size_t n = macro.num_inputs();
  for (int i = 0; i < 6; ++i) {
    std::vector<std::size_t> map;
    for (std::size_t k = 0; k < n; ++k) map.push_back(i * n + k);
    design.add_instance("u" + std::to_string(i), bound, std::move(map));
  }
  std::cout << "system: 6 x cm85 (" << macro.num_gates()
            << " gates each), bound model " << bound->size() << " nodes\n\n";

  // (a) Loose bound: sum of global worst cases.
  const double loose = design.sum_of_worst_cases_ff();

  // (b,c) Walk a workload; compare the per-cycle pattern bound with the
  // golden per-cycle consumption.
  stats::MarkovSequenceGenerator gen({0.5, 0.4}, 21);
  const auto trace = gen.generate(design.bus_width(), 5000);
  std::vector<std::uint8_t> xi(design.bus_width()), xf(design.bus_width());
  std::vector<std::uint8_t> mi(n), mf(n);
  double peak_bound = 0.0, peak_golden = 0.0, bound_sum = 0.0;
  std::size_t violations = 0;
  for (std::size_t t = 0; t + 1 < trace.length(); ++t) {
    trace.vector_at(t, xi);
    trace.vector_at(t + 1, xf);
    const double b = design.estimate_ff(xi, xf);
    double g = 0.0;
    for (int i = 0; i < 6; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        mi[k] = xi[i * n + k];
        mf[k] = xf[i * n + k];
      }
      g += golden.switching_capacitance_ff(mi, mf);
    }
    if (b + 1e-9 < g) ++violations;
    peak_bound = std::max(peak_bound, b);
    peak_golden = std::max(peak_golden, g);
    bound_sum += b;
  }
  const double cycles = static_cast<double>(trace.num_transitions());

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "(a) sum of global worst cases : " << loose << " fF\n";
  std::cout << "(b) peak pattern-dep. bound   : " << peak_bound << " fF"
            << "  (avg bound/cycle " << bound_sum / cycles << " fF)\n";
  std::cout << "(c) peak observed (golden sim): " << peak_golden << " fF\n";
  std::cout << "\nconservativeness violations: " << violations << " of "
            << trace.num_transitions() << " cycles\n";
  std::cout << "tightening vs naive worst case: "
            << 100.0 * (1.0 - peak_bound / loose) << "%\n";
  return violations == 0 ? 0 : 1;
}
