#include "power/rtl_io.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/generators.hpp"
#include "power/add_model.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace cfpm::power {

namespace {

std::vector<std::string> tokenize(const std::string& s) {
  std::istringstream ss(s);
  std::vector<std::string> toks;
  std::string t;
  while (ss >> t) toks.push_back(t);
  return toks;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::shared_ptr<const PowerModel> load_macro(const std::string& source,
                                             std::size_t max_nodes, bool bound,
                                             const netlist::GateLibrary& lib,
                                             std::size_t lineno) {
  if (ends_with(source, ".cfpm")) {
    std::ifstream in(source);
    if (!in) throw Error("rtl: cannot open model '" + source + "'");
    return std::make_shared<AddPowerModel>(AddPowerModel::load(in));
  }
  netlist::Netlist n = [&] {
    if (source.rfind("gen:", 0) == 0) {
      const std::string name = source.substr(4);
      if (name == "c17") return netlist::gen::c17();
      return netlist::gen::mcnc_like(name);
    }
    if (ends_with(source, ".bench")) return netlist::read_bench_file(source);
    if (ends_with(source, ".blif")) return netlist::read_blif_file(source);
    throw ParseError("rtl: unknown macro source '" + source + "'", lineno);
  }();
  AddModelOptions opt;
  opt.max_nodes = max_nodes;
  opt.mode = bound ? dd::ApproxMode::kUpperBound : dd::ApproxMode::kAverage;
  return std::make_shared<AddPowerModel>(AddPowerModel::build(n, lib, opt));
}

/// Full-match unsigned parse; rejects garbage, sign, and overflow (stoul
/// would accept "3x" and wrap "-1").
std::size_t parse_index(const std::string& token, const char* what,
                        std::size_t lineno) {
  const auto v = parse_number<std::size_t>(token);
  if (!v) {
    throw ParseError(std::string("rtl: bad ") + what + " '" + token + "'",
                     lineno);
  }
  return *v;
}

/// Parses "<a>" or "<a>-<b>" bus-bit tokens into indices.
void append_bits(const std::string& token, std::vector<std::size_t>& bits,
                 std::size_t lineno) {
  const auto dash = token.find('-');
  if (dash == std::string::npos) {
    bits.push_back(parse_index(token, "bus bit", lineno));
    return;
  }
  const std::size_t lo = parse_index(token.substr(0, dash), "bus bit", lineno);
  const std::size_t hi = parse_index(token.substr(dash + 1), "bus bit", lineno);
  if (hi < lo) throw ParseError("rtl: empty bit range '" + token + "'", lineno);
  for (std::size_t b = lo; b <= hi; ++b) bits.push_back(b);
}

}  // namespace

RtlDescription read_rtl_design(std::istream& is,
                               const netlist::GateLibrary& lib) {
  RtlDescription result;
  result.name = "rtl";
  std::unordered_map<std::string, std::shared_ptr<const PowerModel>> macros;
  std::unordered_map<std::string, bool> instance_names;
  std::size_t declared_bus = 0;
  std::size_t lineno = 0;
  std::string raw;

  while (std::getline(is, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const auto toks = tokenize(raw);
    if (toks.empty()) continue;

    if (toks[0] == "design") {
      if (toks.size() != 2) throw ParseError("rtl: design needs a name", lineno);
      result.name = toks[1];
    } else if (toks[0] == "bus") {
      if (toks.size() != 2) throw ParseError("rtl: bus needs a width", lineno);
      declared_bus = parse_index(toks[1], "bus width", lineno);
    } else if (toks[0] == "macro") {
      if (toks.size() < 3) {
        throw ParseError("rtl: macro needs a name and a source", lineno);
      }
      const std::string& name = toks[1];
      if (macros.contains(name)) {
        throw ParseError("rtl: macro '" + name + "' defined twice", lineno);
      }
      std::size_t max_nodes = 1000;
      bool bound = false;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        if (toks[i].rfind("max=", 0) == 0) {
          max_nodes = parse_index(toks[i].substr(4), "macro max", lineno);
        } else if (toks[i] == "bound") {
          bound = true;
        } else {
          throw ParseError("rtl: unknown macro option '" + toks[i] + "'",
                           lineno);
        }
      }
      macros.emplace(name, load_macro(toks[2], max_nodes, bound, lib, lineno));
    } else if (toks[0] == "inst") {
      if (toks.size() < 4) {
        throw ParseError("rtl: inst needs a name, macro and bus bits", lineno);
      }
      const std::string& iname = toks[1];
      if (instance_names.contains(iname)) {
        throw ParseError("rtl: instance '" + iname + "' defined twice", lineno);
      }
      auto it = macros.find(toks[2]);
      if (it == macros.end()) {
        throw ParseError("rtl: undefined macro '" + toks[2] + "'", lineno);
      }
      std::vector<std::size_t> bits;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        append_bits(toks[i], bits, lineno);
      }
      if (bits.size() != it->second->num_inputs()) {
        throw ParseError("rtl: instance '" + iname + "' wires " +
                             std::to_string(bits.size()) + " bits to a " +
                             std::to_string(it->second->num_inputs()) +
                             "-input macro",
                         lineno);
      }
      instance_names.emplace(iname, true);
      result.design.add_instance(iname, it->second, std::move(bits));
      result.instance_macros.push_back(toks[2]);
    } else {
      throw ParseError("rtl: unknown directive '" + toks[0] + "'", lineno);
    }
  }

  if (result.design.num_instances() == 0) {
    throw ParseError("rtl: no instances declared", lineno);
  }
  if (declared_bus != 0 && declared_bus < result.design.bus_width()) {
    throw ParseError("rtl: declared bus width " + std::to_string(declared_bus) +
                         " is narrower than the widest wired bit " +
                         std::to_string(result.design.bus_width() - 1),
                     lineno);
  }
  return result;
}

RtlDescription read_rtl_design_file(const std::string& path,
                                    const netlist::GateLibrary& lib) {
  std::ifstream f(path);
  if (!f) throw Error("cannot open rtl design: " + path);
  return read_rtl_design(f, lib);
}

}  // namespace cfpm::power
