#include "power/rtl.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace cfpm::power {

void RtlDesign::add_instance(std::string name,
                             std::shared_ptr<const PowerModel> model,
                             std::vector<std::size_t> input_map) {
  CFPM_REQUIRE(model != nullptr);
  CFPM_REQUIRE(input_map.size() == model->num_inputs());
  for (std::size_t bit : input_map) {
    bus_width_ = std::max(bus_width_, bit + 1);
  }
  max_inputs_ = std::max(max_inputs_, input_map.size());
  instances_.push_back(Instance{std::move(name), std::move(model),
                                std::move(input_map)});
}

const std::string& RtlDesign::instance_name(std::size_t i) const {
  CFPM_REQUIRE(i < instances_.size());
  return instances_[i].name;
}

const PowerModel& RtlDesign::instance_model(std::size_t i) const {
  CFPM_REQUIRE(i < instances_.size());
  return *instances_[i].model;
}

const std::vector<std::size_t>& RtlDesign::instance_input_map(
    std::size_t i) const {
  CFPM_REQUIRE(i < instances_.size());
  return instances_[i].input_map;
}

double RtlDesign::instance_estimate_ff(const Instance& inst,
                                       std::span<const std::uint8_t> bus_xi,
                                       std::span<const std::uint8_t> bus_xf,
                                       EvalScratch& scratch) const {
  const std::size_t n = inst.input_map.size();
  for (std::size_t k = 0; k < n; ++k) {
    scratch.xi_[k] = bus_xi[inst.input_map[k]];
    scratch.xf_[k] = bus_xf[inst.input_map[k]];
  }
  return inst.model->estimate_ff({scratch.xi_.data(), n},
                                 {scratch.xf_.data(), n});
}

double RtlDesign::estimate_ff(std::span<const std::uint8_t> bus_xi,
                              std::span<const std::uint8_t> bus_xf,
                              EvalScratch& scratch) const {
  CFPM_REQUIRE(bus_xi.size() >= bus_width_ && bus_xf.size() >= bus_width_);
  // Grows once to the widest instance, then every call is allocation-free.
  if (scratch.xi_.size() < max_inputs_) {
    scratch.xi_.resize(max_inputs_);
    scratch.xf_.resize(max_inputs_);
  }
  double total = 0.0;
  for (const Instance& inst : instances_) {
    total += instance_estimate_ff(inst, bus_xi, bus_xf, scratch);
  }
  return total;
}

double RtlDesign::accumulate_ff(std::span<const std::uint8_t> bus_xi,
                                std::span<const std::uint8_t> bus_xf,
                                std::span<double> accum,
                                EvalScratch& scratch) const {
  CFPM_REQUIRE(bus_xi.size() >= bus_width_ && bus_xf.size() >= bus_width_);
  CFPM_REQUIRE(accum.size() >= instances_.size());
  if (scratch.xi_.size() < max_inputs_) {
    scratch.xi_.resize(max_inputs_);
    scratch.xf_.resize(max_inputs_);
  }
  double total = 0.0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const double c = instance_estimate_ff(instances_[i], bus_xi, bus_xf,
                                          scratch);
    accum[i] += c;
    total += c;
  }
  return total;
}

double RtlDesign::estimate_ff(std::span<const std::uint8_t> bus_xi,
                              std::span<const std::uint8_t> bus_xf) const {
  EvalScratch scratch;
  return estimate_ff(bus_xi, bus_xf, scratch);
}

std::vector<double> RtlDesign::estimate_breakdown_ff(
    std::span<const std::uint8_t> bus_xi,
    std::span<const std::uint8_t> bus_xf) const {
  CFPM_REQUIRE(bus_xi.size() >= bus_width_ && bus_xf.size() >= bus_width_);
  EvalScratch scratch;
  scratch.xi_.resize(max_inputs_);
  scratch.xf_.resize(max_inputs_);
  std::vector<double> breakdown;
  breakdown.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    breakdown.push_back(instance_estimate_ff(inst, bus_xi, bus_xf, scratch));
  }
  return breakdown;
}

bool RtlDesign::is_upper_bound() const {
  return std::all_of(instances_.begin(), instances_.end(),
                     [](const Instance& i) { return i.model->is_upper_bound(); });
}

double RtlDesign::sum_of_worst_cases_ff() const {
  double total = 0.0;
  for (const Instance& inst : instances_) {
    total += inst.model->worst_case_ff();
  }
  return total;
}

}  // namespace cfpm::power
