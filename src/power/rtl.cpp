#include "power/rtl.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace cfpm::power {

void RtlDesign::add_instance(std::string name,
                             std::shared_ptr<const PowerModel> model,
                             std::vector<std::size_t> input_map) {
  CFPM_REQUIRE(model != nullptr);
  CFPM_REQUIRE(input_map.size() == model->num_inputs());
  for (std::size_t bit : input_map) {
    bus_width_ = std::max(bus_width_, bit + 1);
  }
  instances_.push_back(Instance{std::move(name), std::move(model),
                                std::move(input_map)});
}

const std::string& RtlDesign::instance_name(std::size_t i) const {
  CFPM_REQUIRE(i < instances_.size());
  return instances_[i].name;
}

std::vector<double> RtlDesign::estimate_breakdown_ff(
    std::span<const std::uint8_t> bus_xi,
    std::span<const std::uint8_t> bus_xf) const {
  CFPM_REQUIRE(bus_xi.size() >= bus_width_ && bus_xf.size() >= bus_width_);
  std::vector<double> breakdown;
  breakdown.reserve(instances_.size());
  std::vector<std::uint8_t> xi, xf;
  for (const Instance& inst : instances_) {
    xi.resize(inst.input_map.size());
    xf.resize(inst.input_map.size());
    for (std::size_t k = 0; k < inst.input_map.size(); ++k) {
      xi[k] = bus_xi[inst.input_map[k]];
      xf[k] = bus_xf[inst.input_map[k]];
    }
    breakdown.push_back(inst.model->estimate_ff(xi, xf));
  }
  return breakdown;
}

double RtlDesign::estimate_ff(std::span<const std::uint8_t> bus_xi,
                              std::span<const std::uint8_t> bus_xf) const {
  double total = 0.0;
  for (double c : estimate_breakdown_ff(bus_xi, bus_xf)) total += c;
  return total;
}

bool RtlDesign::is_upper_bound() const {
  return std::all_of(instances_.begin(), instances_.end(),
                     [](const Instance& i) { return i.model->is_upper_bound(); });
}

double RtlDesign::sum_of_worst_cases_ff() const {
  double total = 0.0;
  for (const Instance& inst : instances_) {
    total += inst.model->worst_case_ff();
  }
  return total;
}

}  // namespace cfpm::power
