// Structural model + characterized residual (Section 2 of the paper).
//
// "Our modeling approach is not in contrast with characterization
//  methodologies. On the contrary, it leads to a useful partitioning of
//  the modeling task. [...] Once a robust RTL model has been analytically
//  constructed for the structural power, characterizing parasitic
//  phenomena is much simpler than characterizing the entire power
//  consumption as a whole."
//
// ResidualCalibratedModel implements that partitioning: a
// characterization-free structural model (typically the ADD model of the
// zero-delay switching capacitance) plus a small linear model fitted to
// the *residual* between a richer reference (e.g. the glitch-aware
// UnitDelaySimulator) and the structural estimate.
#pragma once

#include <memory>
#include <vector>

#include "power/baselines.hpp"
#include "power/power_model.hpp"
#include "sim/sequence.hpp"

namespace cfpm::power {

class ResidualCalibratedModel final : public PowerModel {
 public:
  /// `structural` provides the pattern-dependent backbone; `residual`
  /// captures the parasitic surplus. Estimates are clamped at >= 0.
  ResidualCalibratedModel(std::shared_ptr<const PowerModel> structural,
                          LinearModel residual);

  std::string name() const override;
  double estimate_ff(std::span<const std::uint8_t> xi,
                     std::span<const std::uint8_t> xf) const override;
  std::size_t num_inputs() const override { return structural_->num_inputs(); }
  double worst_case_ff() const override {
    return structural_->worst_case_ff() + residual_.worst_case_ff();
  }

  const PowerModel& structural() const { return *structural_; }
  const LinearModel& residual() const { return residual_; }

 private:
  std::shared_ptr<const PowerModel> structural_;
  LinearModel residual_;
};

/// Fits the residual of `structural` against reference per-transition data
/// (same layout as sim::SequenceEnergy::per_transition_ff for `seq`) and
/// returns the combined model. This is the only characterized component;
/// the structural part stays characterization-free.
ResidualCalibratedModel calibrate_residual(
    std::shared_ptr<const PowerModel> structural, const sim::InputSequence& seq,
    std::span<const double> reference_per_transition_ff);

}  // namespace cfpm::power
