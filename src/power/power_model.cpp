#include "power/power_model.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace cfpm::power {

double PowerModel::average_over(const sim::InputSequence& seq) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs());
  const std::size_t transitions = seq.num_transitions();
  if (transitions == 0) return 0.0;
  std::vector<std::uint8_t> xi(seq.num_inputs()), xf(seq.num_inputs());
  seq.vector_at(0, xi);
  double total = 0.0;
  for (std::size_t t = 0; t < transitions; ++t) {
    seq.vector_at(t + 1, xf);
    total += estimate_ff(xi, xf);
    xi.swap(xf);
  }
  return total / static_cast<double>(transitions);
}

double PowerModel::peak_over(const sim::InputSequence& seq) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs());
  const std::size_t transitions = seq.num_transitions();
  std::vector<std::uint8_t> xi(seq.num_inputs()), xf(seq.num_inputs());
  double peak = 0.0;
  if (transitions == 0) return peak;
  seq.vector_at(0, xi);
  for (std::size_t t = 0; t < transitions; ++t) {
    seq.vector_at(t + 1, xf);
    peak = std::max(peak, estimate_ff(xi, xf));
    xi.swap(xf);
  }
  return peak;
}

}  // namespace cfpm::power
