#include "power/power_model.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm::power {

TraceEstimate PowerModel::reduce_trace(
    std::size_t transitions, ThreadPool* pool,
    const std::function<void(std::size_t, std::size_t, double&, double&)>&
        chunk_fn) const {
  TraceEstimate est;
  est.transitions = transitions;
  if (transitions == 0) return est;

  // Metered per call, not per chunk: every model's estimate_trace funnels
  // through here, and the per-chunk work must stay metric-free to keep the
  // packed-eval throughput contract (< 2% overhead).
  CFPM_TRACE_SPAN("power.trace");
  static const metrics::Counter c_call("power.trace.call");
  static const metrics::Counter c_chunk("power.trace.chunk");
  static const metrics::Counter c_pattern("power.trace.pattern");
  static const metrics::Histogram h_us("power.trace.us");
  const metrics::ScopedTimer timer(h_us);

  const std::size_t chunks = (transitions + kTraceChunk - 1) / kTraceChunk;
  c_call.add();
  c_chunk.add(chunks);
  c_pattern.add(transitions);
  if (pool == nullptr || pool->num_workers() == 0 || chunks == 1) {
    // Inline fast path: no queue, no mutex, and no per-chunk slot vectors.
    // Chunks still run in chunk order with per-chunk zero-initialized
    // partials folded immediately, which is the same association as the
    // ordered reduction below — bit-identical to the pooled path.
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * kTraceChunk;
      const std::size_t end = std::min(begin + kTraceChunk, transitions);
      double total = 0.0;
      double peak = 0.0;
      chunk_fn(begin, end, total, peak);
      est.total_ff += total;
      est.peak_ff = std::max(est.peak_ff, peak);
    }
    return est;
  }
  std::vector<double> totals(chunks, 0.0);
  std::vector<double> peaks(chunks, 0.0);
  pool->run_indexed(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kTraceChunk;
    const std::size_t end = std::min(begin + kTraceChunk, transitions);
    chunk_fn(begin, end, totals[c], peaks[c]);
  });
  // Ordered reduction: identical association regardless of thread count.
  for (std::size_t c = 0; c < chunks; ++c) {
    est.total_ff += totals[c];
    est.peak_ff = std::max(est.peak_ff, peaks[c]);
  }
  return est;
}

TraceEstimate PowerModel::estimate_trace(const sim::InputSequence& seq,
                                         ThreadPool* pool) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs());
  return reduce_trace(
      seq.num_transitions(), pool,
      [&](std::size_t begin, std::size_t end, double& total, double& peak) {
        std::vector<std::uint8_t> xi(seq.num_inputs()), xf(seq.num_inputs());
        seq.vector_at(begin, xi);
        for (std::size_t t = begin; t < end; ++t) {
          seq.vector_at(t + 1, xf);
          const double v = estimate_ff(xi, xf);
          total += v;
          peak = std::max(peak, v);
          xi.swap(xf);
        }
      });
}

}  // namespace cfpm::power
