// Unified model construction: one factory covering every estimator the
// experiments compare, so the CLI, benches, and tests stop hand-wiring
// characterization sequences and builder options.
//
//   auto add = power::make_model(power::ModelKind::kAddAverage, netlist, opts);
//   auto con = power::make_model(power::ModelKind::kConstant, netlist, opts);
//
// Characterization-based kinds (kConstant, kLinear) replicate the paper's
// Section-4 protocol: simulate `characterization_vectors` random vectors
// drawn from `characterization` statistics on the golden gate-level
// simulator and fit the model to the observed energies.
#pragma once

#include <memory>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "power/add_model.hpp"
#include "power/power_model.hpp"
#include "stats/markov.hpp"

namespace cfpm::power {

enum class ModelKind {
  kAddAverage,    ///< characterization-free ADD model, average-accuracy mode
  kAddUpperBound, ///< ADD model with conservative (upper-bound) collapsing
  kCompiled,      ///< alias of kAddAverage: batch evaluation of an ADD model
                  ///< always goes through the compiled fast path
  kConstant,      ///< Con baseline (characterized mean)
  kLinear,        ///< Lin baseline (characterized least-squares)
};

struct ModelOptions {
  /// Builder options for the ADD kinds (budget, mode, governor, ladder).
  /// The factory forces `add.mode` from the kind, so callers select
  /// average vs. upper-bound via ModelKind alone.
  AddModelOptions add;
  /// Gate library supplying per-signal loads (all kinds).
  netlist::GateLibrary library = netlist::GateLibrary::standard();
  /// Characterization workload statistics for Con/Lin (paper: sp=st=0.5).
  stats::InputStatistics characterization{0.5, 0.5};
  std::size_t characterization_vectors = 10000;
  std::uint64_t characterization_seed = 0xc0ffee;
};

/// Builds a power model of the requested kind for `n`. ADD kinds may throw
/// what AddPowerModel::build throws (governor deadline/cancel, resource
/// exhaustion with degradation disabled); callers needing the degradation
/// report can dynamic_cast the result to AddPowerModel and read
/// build_info().
std::unique_ptr<PowerModel> make_model(ModelKind kind,
                                       const netlist::Netlist& n,
                                       const ModelOptions& options = {});

}  // namespace cfpm::power
