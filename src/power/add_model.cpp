#include "power/add_model.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "dd/serialize.hpp"
#include "dd/stats.hpp"
#include "power/cone_partition.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/metrics.hpp"
#include "support/retry.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace cfpm::power {

using netlist::Netlist;
using netlist::SignalId;

namespace {

std::uint32_t map_var(VariableOrder order, std::uint32_t input, bool final_copy,
                      std::size_t num_inputs) {
  switch (order) {
    case VariableOrder::kInterleaved:
      return 2 * input + (final_copy ? 1u : 0u);
    case VariableOrder::kBlocked:
      return input + (final_copy ? static_cast<std::uint32_t>(num_inputs) : 0u);
  }
  CFPM_UNREACHABLE("bad VariableOrder");
}

}  // namespace

/// Implements the iterative construction loop of Fig. 6.
class SymbolicBuilder {
 public:
  SymbolicBuilder(const Netlist& n, std::span<const double> loads,
                  const AddModelOptions& options)
      : n_(n), loads_(loads), options_(options) {}

  AddPowerModel run() {
    const std::size_t threads =
        options_.build_threads != 0
            ? options_.build_threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    return threads > 1 ? run_parallel(threads) : run_serial();
  }

 private:
  AddPowerModel run_serial() {
    Timer timer;
    const std::size_t num_inputs = n_.num_inputs();
    CFPM_REQUIRE(num_inputs >= 1);
    CFPM_REQUIRE(loads_.size() == n_.num_signals());

    auto mgr = std::make_shared<dd::DdManager>(2 * num_inputs,
                                               options_.dd_config);
    AddModelBuildInfo info;

    // Node functions of every signal, in both variable spaces, built in one
    // topological pass. BDDs of signals whose fan-outs have all been
    // consumed are released to bound memory.
    std::vector<dd::Bdd> g_i(n_.num_signals());
    std::vector<dd::Bdd> g_f(n_.num_signals());
    std::vector<std::uint32_t> pending_uses(n_.num_signals(), 0);
    for (SignalId s = 0; s < n_.num_signals(); ++s) {
      for (SignalId f : n_.fanins(s)) ++pending_uses[f];
    }

    dd::Add total = mgr->constant(0.0);

    // During construction the partial sum is kept under a slackened cap;
    // the tight budget is enforced only after reordering, so early
    // collapses (made under a possibly poor variable order) cannot lock in
    // large errors. When the cap is first exceeded we try sifting before
    // collapsing -- CUDD's automatic dynamic reordering plays the same
    // role in the paper's flow.
    const std::size_t inner_cap =
        options_.max_nodes == 0 ? 0 : options_.max_nodes * 64;
    std::size_t sift_trigger =
        options_.max_nodes == 0 ? 0 : options_.max_nodes * 32;

    auto release_if_done = [&](SignalId s) {
      if (pending_uses[s] == 0) {
        g_i[s] = dd::Bdd();
        g_f[s] = dd::Bdd();
      }
    };

    cfpm::Governor* governor = options_.dd_config.governor.get();
    for (SignalId s = 0; s < n_.num_signals(); ++s) {
      // Per-gate safe point: between gate contributions every handle is
      // consistent, so this is the cheapest place to stop a whole build.
      if (governor != nullptr) governor->checkpoint();
      const auto& sig = n_.signal(s);
      if (sig.is_input) {
        const std::uint32_t idx = n_.input_index(s);
        g_i[s] = mgr->bdd_var(
            map_var(options_.order, idx, false, num_inputs));
        g_f[s] = mgr->bdd_var(
            map_var(options_.order, idx, true, num_inputs));
        continue;
      }
      g_i[s] = build_gate(*mgr, sig.type, s, g_i);
      g_f[s] = build_gate(*mgr, sig.type, s, g_f);

      // deltaC = NOT(g(x^i)) AND g(x^f), weighted by the load (Fig. 6).
      dd::Bdd rising = (!g_i[s]) & g_f[s];
      dd::Add delta = dd::Add(rising).times(loads_[s]);
      rising = dd::Bdd();
      if (options_.delta_max_nodes != 0 &&
          delta.size() > options_.delta_max_nodes) {
        delta = dd::approximate_to(delta, options_.delta_max_nodes,
                                   options_.mode);
        ++info.approximations;
      }
      total = total + delta;
      if (options_.approximate_during_construction && inner_cap != 0) {
        if (options_.reorder_passes > 0 && total.size() > sift_trigger) {
          mgr->sift();
          ++info.reorder_runs;
          // Re-sift only once the diagram outgrows this result noticeably.
          sift_trigger = std::max(sift_trigger, 2 * total.size());
        }
        if (total.size() > inner_cap) {
          total = dd::approximate_to(total, inner_cap, options_.mode);
          ++info.approximations;
        }
      }
      // Per-gate ADD size trajectory: after each gate's deltaC is summed,
      // the manager's live-node count is the O(1) proxy for the partial
      // sum's growth over the construction.
      static const metrics::Counter c_gate("power.build.gate.summed");
      static const metrics::Histogram h_live("power.build.gate.live");
      c_gate.add();
      h_live.observe(mgr->live_nodes());
      info.peak_live_nodes = std::max(info.peak_live_nodes, mgr->live_nodes());

      // Fan-in BDDs may now be releasable.
      for (SignalId f : n_.fanins(s)) {
        CFPM_ASSERT(pending_uses[f] > 0);
        --pending_uses[f];
        release_if_done(f);
      }
      // A gate with no fan-outs (e.g. a primary output) is only needed for
      // its own deltaC, which we just added.
      release_if_done(s);
    }
    g_i.clear();
    g_f.clear();
    mgr->collect_garbage();

    // Reorder, then enforce the budget on the (often already small enough)
    // exact function.
    if (options_.max_nodes != 0 && total.size() > options_.max_nodes) {
      for (unsigned pass = 0; pass < options_.reorder_passes; ++pass) {
        if (mgr->sift() == 0) break;  // converged
      }
      ++info.reorder_runs;
    }
    if (options_.max_nodes != 0 && total.size() > options_.max_nodes) {
      total = dd::approximate_to(total, options_.max_nodes, options_.mode);
      ++info.approximations;
    }
    mgr->collect_garbage();

    info.build_seconds = timer.seconds();
    info.exact_if_zero = info.approximations;

    AddPowerModel model(std::move(mgr), std::move(total), num_inputs,
                        options_.order, options_.mode, n_.name());
    model.build_info_ = info;
    return model;
  }

  /// Cone-parallel Fig. 6: the gate sum is partitioned into per-output
  /// fanin cones (partition_gate_cones — a pure function of the netlist),
  /// each cone's partial sum is built in its own DdManager on a pool
  /// worker, and the partials are merged into the shared manager through
  /// the textual DD serializer in fixed task order. Everything that can
  /// alter the result (partition, per-worker collapse points, merge order,
  /// final reorder/approximation) is thread-count-independent, so any two
  /// thread counts produce bit-identical models. Workers never sift: the
  /// serializer records the variable order, and importing under an order
  /// differing from the shared manager's would require a fresh manager per
  /// partial; with identity order everywhere the imports all land in one
  /// manager and merged nodes dedupe against each other.
  AddPowerModel run_parallel(std::size_t threads) {
    Timer timer;
    const std::size_t num_inputs = n_.num_inputs();
    CFPM_REQUIRE(num_inputs >= 1);
    CFPM_REQUIRE(loads_.size() == n_.num_signals());
    AddModelBuildInfo info;

    const std::vector<ConeTask> tasks = partition_gate_cones(n_);
    cfpm::Governor* governor = options_.dd_config.governor.get();
    const std::size_t inner_cap =
        options_.max_nodes == 0 ? 0 : options_.max_nodes * 64;

    static const metrics::Counter c_parallel("power.build.parallel.run");
    static const metrics::Counter c_cone("power.build.parallel.cone");
    static const metrics::Counter c_retry("power.build.cone.retry");
    static const metrics::Counter c_serial_fb(
        "power.build.cone.serial_fallback");
    c_parallel.add();
    c_cone.add(tasks.size());

    struct TaskResult {
      std::string dd_text;  ///< serialized partial sum (format v2)
      std::size_t approximations = 0;
      std::size_t peak_live_nodes = 0;
    };
    std::vector<TaskResult> results(tasks.size());
    std::vector<std::size_t> retry_counts(tasks.size(), 0);
    std::vector<char> needs_rebuild(tasks.size(), 0);

    // A cone build is a pure function of (netlist, options, t): reruns —
    // worker retries and the coordinator's serial fallback alike — produce
    // byte-identical dd_text, which is what keeps the bit-identical-across-
    // thread-counts guarantee intact under transient faults.
    auto build_cone = [&](std::size_t t) {
      CFPM_FAILPOINT("power.cone.build");
      const ConeTask& task = tasks[t];
      TaskResult& res = results[t];
      res = TaskResult{};  // retries and the serial fallback start clean
      // Fresh manager per cone; shares the governor (thread-safe), so the
      // deadline/cancellation cover the whole fleet and every cone is
      // checkpointed per gate exactly like the serial loop.
      dd::DdManager wmgr(2 * num_inputs, options_.dd_config);
      std::vector<dd::Bdd> g_i(n_.num_signals());
      std::vector<dd::Bdd> g_f(n_.num_signals());
      std::vector<bool> owned(n_.num_signals(), false);
      for (const SignalId s : task.owned) owned[s] = true;
      // Release discipline mirrors the serial loop, restricted to the
      // support-induced subgraph this worker actually builds.
      std::vector<std::uint32_t> pending(n_.num_signals(), 0);
      for (const SignalId s : task.support) {
        for (const SignalId f : n_.fanins(s)) ++pending[f];
      }
      auto release_if_done = [&](SignalId s) {
        if (pending[s] == 0) {
          g_i[s] = dd::Bdd();
          g_f[s] = dd::Bdd();
        }
      };

      dd::Add partial = wmgr.constant(0.0);
      for (const SignalId s : task.support) {
        if (governor != nullptr) governor->checkpoint();
        const auto& sig = n_.signal(s);
        if (sig.is_input) {
          const std::uint32_t idx = n_.input_index(s);
          g_i[s] = wmgr.bdd_var(
              map_var(options_.order, idx, false, num_inputs));
          g_f[s] = wmgr.bdd_var(
              map_var(options_.order, idx, true, num_inputs));
          continue;
        }
        g_i[s] = build_gate(wmgr, sig.type, s, g_i);
        g_f[s] = build_gate(wmgr, sig.type, s, g_f);
        if (owned[s]) {
          dd::Bdd rising = (!g_i[s]) & g_f[s];
          dd::Add delta = dd::Add(rising).times(loads_[s]);
          rising = dd::Bdd();
          if (options_.delta_max_nodes != 0 &&
              delta.size() > options_.delta_max_nodes) {
            delta = dd::approximate_to(delta, options_.delta_max_nodes,
                                       options_.mode);
            ++res.approximations;
          }
          partial = partial + delta;
          // In-construction collapsing is per-cone here (no sifting — see
          // the merge contract above); the collapse points depend only on
          // the task's gate list, never on scheduling.
          if (options_.approximate_during_construction && inner_cap != 0 &&
              partial.size() > inner_cap) {
            partial = dd::approximate_to(partial, inner_cap, options_.mode);
            ++res.approximations;
          }
        }
        res.peak_live_nodes = std::max(res.peak_live_nodes,
                                       wmgr.live_nodes());
        for (const SignalId f : n_.fanins(s)) {
          CFPM_ASSERT(pending[f] > 0);
          --pending[f];
          release_if_done(f);
        }
        release_if_done(s);
      }
      std::ostringstream os;
      dd::write_add(os, partial);
      res.dd_text = std::move(os).str();
    };

    // Deadlines and cancellations are verdicts on the whole build, not this
    // attempt — never retried. Everything else (allocation pressure, node
    // budget, injected faults) may be transient and is worth another try.
    auto transient = [](std::exception_ptr ep) {
      try {
        std::rethrow_exception(ep);
      } catch (const DeadlineExceeded&) {
        return false;
      } catch (const CancelledError&) {
        return false;
      } catch (...) {
        return true;
      }
    };

    auto run_task = [&](std::size_t t) {
      try {
        run_with_retry(options_.cone_retry, [&] { build_cone(t); }, transient,
                       &retry_counts[t]);
      } catch (const DeadlineExceeded&) {
        throw;
      } catch (const CancelledError&) {
        throw;
      } catch (...) {
        // Retry budget exhausted: park the cone for the coordinator's
        // serial rebuild below instead of failing the whole batch.
        needs_rebuild[t] = 1;
      }
    };

    {
      // The pool rethrows one worker exception after the batch drains, so
      // DeadlineExceeded/ResourceError/CancelledError reach the ladder in
      // build() exactly as they do from the serial loop.
      ThreadPool pool(std::min(threads, std::max<std::size_t>(tasks.size(),
                                                              1)));
      pool.run_indexed(tasks.size(), run_task);
    }

    for (std::size_t t = 0; t < tasks.size(); ++t) {
      info.cone_retries += retry_counts[t];
      if (needs_rebuild[t] == 0) continue;
      // Last resort before the ladder: one governed rebuild on the
      // coordinator, with the pool gone and its memory returned. A failure
      // here is persistent, not transient — it propagates to the
      // degradation ladder in build() like any serial-path failure.
      c_serial_fb.add();
      ++info.cone_serial_rebuilds;
      build_cone(t);
    }
    if (info.cone_retries > 0) c_retry.add(info.cone_retries);

    // Deterministic merge: import and add in task order.
    auto mgr = std::make_shared<dd::DdManager>(2 * num_inputs,
                                               options_.dd_config);
    dd::Add total = mgr->constant(0.0);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (governor != nullptr) governor->checkpoint();
      CFPM_FAILPOINT("power.cone.merge");
      std::istringstream is(results[t].dd_text);
      total = total + dd::read_add(is, *mgr);
      info.approximations += results[t].approximations;
      info.peak_live_nodes =
          std::max(info.peak_live_nodes, results[t].peak_live_nodes);
      results[t].dd_text = std::string();  // free eagerly
      info.peak_live_nodes = std::max(info.peak_live_nodes,
                                      mgr->live_nodes());
    }
    mgr->collect_garbage();

    // Same tail as the serial path: reorder, then enforce the budget.
    if (options_.max_nodes != 0 && total.size() > options_.max_nodes) {
      for (unsigned pass = 0; pass < options_.reorder_passes; ++pass) {
        if (mgr->sift() == 0) break;  // converged
      }
      ++info.reorder_runs;
    }
    if (options_.max_nodes != 0 && total.size() > options_.max_nodes) {
      total = dd::approximate_to(total, options_.max_nodes, options_.mode);
      ++info.approximations;
    }
    mgr->collect_garbage();

    info.build_seconds = timer.seconds();
    info.exact_if_zero = info.approximations;

    AddPowerModel model(std::move(mgr), std::move(total), num_inputs,
                        options_.order, options_.mode, n_.name());
    model.build_info_ = info;
    return model;
  }

  dd::Bdd build_gate(dd::DdManager& mgr, netlist::GateType type, SignalId s,
                     const std::vector<dd::Bdd>& env) {
    using netlist::GateType;
    const auto fanins = n_.fanins(s);
    switch (type) {
      case GateType::kConst0:
        return mgr.bdd_zero();
      case GateType::kConst1:
        return mgr.bdd_one();
      case GateType::kBuf:
        return env[fanins[0]];
      case GateType::kNot:
        return !env[fanins[0]];
      default:
        break;
    }
    dd::Bdd acc = env[fanins[0]];
    for (std::size_t k = 1; k < fanins.size(); ++k) {
      const dd::Bdd& next = env[fanins[k]];
      switch (type) {
        case GateType::kAnd:
        case GateType::kNand:
          acc = acc & next;
          break;
        case GateType::kOr:
        case GateType::kNor:
          acc = acc | next;
          break;
        case GateType::kXor:
        case GateType::kXnor:
          acc = acc ^ next;
          break;
        default:
          CFPM_UNREACHABLE("gate type");
      }
    }
    if (type == GateType::kNand || type == GateType::kNor ||
        type == GateType::kXnor) {
      acc = !acc;
    }
    return acc;
  }

  const Netlist& n_;
  std::span<const double> loads_;
  const AddModelOptions& options_;
};

// ---------------------------------------------------------------------------

AddPowerModel::AddPowerModel(std::shared_ptr<dd::DdManager> mgr,
                             dd::Add function, std::size_t num_inputs,
                             VariableOrder order, dd::ApproxMode mode,
                             std::string circuit_name)
    : mgr_(std::move(mgr)),
      function_(std::move(function)),
      compiled_(std::make_shared<const dd::CompiledDd>(
          dd::CompiledDd::compile(function_))),
      num_inputs_(num_inputs),
      order_(order),
      mode_(mode),
      circuit_name_(std::move(circuit_name)) {}

/// Last rung of the ladder: a constant (Con-style) estimator that can be
/// built with a handful of nodes and no budget pressure. In upper-bound
/// mode the constant is the total driven load — every transition can switch
/// at most every gate once, so the result stays a true conservative bound.
/// In average mode it is total_load / 4: under uniform independent inputs a
/// balanced gate output rises with probability 1/4, so this is the Eq. 6
/// average of the balanced-gate approximation of the circuit.
AddPowerModel AddPowerModel::constant_fallback(const Netlist& n,
                                               std::span<const double> loads,
                                               const AddModelOptions& options) {
  double total_load = 0.0;
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    if (!n.signal(s).is_input) total_load += loads[s];
  }
  const double value = options.mode == dd::ApproxMode::kUpperBound
                           ? total_load
                           : 0.25 * total_load;
  // No governor and no cap: three nodes always fit, and an expired deadline
  // must not be able to stop the surrender rung.
  auto mgr = std::make_shared<dd::DdManager>(2 * n.num_inputs());
  dd::Add constant = mgr->constant(value);
  return AddPowerModel(std::move(mgr), std::move(constant), n.num_inputs(),
                       options.order, options.mode, n.name());
}

AddPowerModel AddPowerModel::build(const Netlist& n,
                                   std::span<const double> loads_ff,
                                   const AddModelOptions& options) {
  CFPM_TRACE_SPAN("power.build");
  static const metrics::Counter c_attempt("power.build.attempt");
  static const metrics::Counter c_rung("power.build.rung");
  static const metrics::Counter c_fallback("power.build.fallback");
  Timer ladder_timer;
  AddModelOptions effective = options;
  std::vector<BuildRung> rungs;
  std::size_t attempts = 0;
  const std::size_t floor = std::max<std::size_t>(options.degrade_floor, 1);

  auto finish = [&](AddPowerModel model, BuildOutcome outcome) {
    c_rung.add(rungs.size());
    model.build_info_.outcome = outcome;
    model.build_info_.rungs = std::move(rungs);
    model.build_info_.attempts = attempts;
    model.build_info_.build_seconds = ladder_timer.seconds();
    return model;
  };

  for (;;) {
    ++attempts;
    c_attempt.add();
    try {
      SymbolicBuilder builder(n, loads_ff, effective);
      return finish(builder.run(), rungs.empty() ? BuildOutcome::kClean
                                                 : BuildOutcome::kDegraded);
    } catch (const CancelledError&) {
      throw;  // cancellation means stop, not degrade
    } catch (const DeadlineExceeded& e) {
      if (!options.degrade) throw;
      // No time left for a retry of any size; surrender immediately.
      rungs.push_back({"fallback-constant", e.what(), 0});
      break;
    } catch (const ResourceError& e) {
      if (!options.degrade) throw;
      if (!effective.approximate_during_construction) {
        // Rung 1: the paper's own remedy — approximate while building.
        effective.approximate_during_construction = true;
        rungs.push_back({"force-approximate", e.what(), effective.max_nodes});
        continue;
      }
      if (effective.max_nodes == 0) {
        // An "exact" build blew the manager cap; adopt a finite MAX well
        // under the cap so in-construction collapsing has room to work.
        effective.max_nodes =
            std::max(floor, effective.dd_config.max_nodes / 64);
        effective.delta_max_nodes = effective.max_nodes;
        rungs.push_back({"bound-max-nodes", e.what(), effective.max_nodes});
        continue;
      }
      if (effective.max_nodes / 2 >= floor) {
        // Rung k: approximate twice as hard, and clamp each gate's deltaC
        // contribution too so no single gate can blow the sum.
        effective.max_nodes /= 2;
        if (effective.delta_max_nodes == 0 ||
            effective.delta_max_nodes > effective.max_nodes) {
          effective.delta_max_nodes = effective.max_nodes;
        }
        rungs.push_back({"halve-max-nodes", e.what(), effective.max_nodes});
        continue;
      }
      rungs.push_back({"fallback-constant", e.what(), 0});
      break;
    }
  }

  ++attempts;
  c_attempt.add();
  c_fallback.add();
  return finish(constant_fallback(n, loads_ff, options),
                BuildOutcome::kFallback);
}

AddPowerModel AddPowerModel::build(const Netlist& n,
                                   const netlist::GateLibrary& lib,
                                   const AddModelOptions& options) {
  const std::vector<double> loads = n.annotate_loads(lib);
  return build(n, loads, options);
}

std::string AddPowerModel::name() const {
  return "ADD(" + circuit_name_ + "," + std::to_string(size()) + ")";
}

std::uint32_t AddPowerModel::var_of_xi(std::uint32_t input) const {
  CFPM_REQUIRE(input < num_inputs_);
  return map_var(order_, input, false, num_inputs_);
}

std::uint32_t AddPowerModel::var_of_xf(std::uint32_t input) const {
  CFPM_REQUIRE(input < num_inputs_);
  return map_var(order_, input, true, num_inputs_);
}

double AddPowerModel::estimate_ff(std::span<const std::uint8_t> xi,
                                  std::span<const std::uint8_t> xf) const {
  CFPM_REQUIRE(xi.size() == num_inputs_ && xf.size() == num_inputs_);
  // Assignment indexed by manager variable.
  std::vector<std::uint8_t> assignment(2 * num_inputs_, 0);
  for (std::uint32_t k = 0; k < num_inputs_; ++k) {
    assignment[var_of_xi(k)] = xi[k];
    assignment[var_of_xf(k)] = xf[k];
  }
  return function_.eval(assignment);
}

TraceEstimate AddPowerModel::estimate_trace(const sim::InputSequence& seq,
                                            ThreadPool* pool) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs_);
  const dd::CompiledDd& compiled = *compiled_;
  // Hoist the input -> diagram-variable mapping out of the hot loop.
  std::vector<std::uint32_t> vi(num_inputs_), vf(num_inputs_);
  for (std::uint32_t k = 0; k < num_inputs_; ++k) {
    vi[k] = var_of_xi(k);
    vf[k] = var_of_xf(k);
  }
  return reduce_trace(
      seq.num_transitions(), pool,
      [&](std::size_t begin, std::size_t end, double& total, double& peak) {
        // The sequence's bit-packed streams ARE the word-transposed
        // assignment blocks the packed evaluator consumes — transition t's
        // initial state of input k is bit t of stream k and its final
        // state is bit t+1 — so the whole gather is two window64 reads
        // per input per 64 transitions. Blocks of kPackedGroups groups are
        // fed to the SIMD-dispatched wide sweep; per-value results and the
        // t-ascending accumulation below are bit-identical to the
        // one-group path (kTraceChunk is a multiple of 64*kPackedGroups,
        // so chunk boundaries never split a wide block unevenly between
        // runs of different width).
        constexpr std::size_t W = dd::CompiledDd::kPackedGroups;
        static_assert(kTraceChunk % (64 * W) == 0,
                      "chunk boundaries must not split a wide block");
        std::vector<std::uint64_t> bits(W * 2 * num_inputs_);
        std::vector<std::uint64_t> scratch;
        double values[64 * W];
        for (std::size_t base = begin; base < end; base += 64 * W) {
          const std::size_t m = std::min<std::size_t>(64 * W, end - base);
          const std::size_t groups = (m + 63) / 64;
          for (std::uint32_t k = 0; k < num_inputs_; ++k) {
            for (std::size_t w = 0; w < groups; ++w) {
              bits[W * vi[k] + w] = seq.window64(k, base + 64 * w);
              bits[W * vf[k] + w] = seq.window64(k, base + 64 * w + 1);
            }
          }
          compiled.eval_packed_wide(bits.data(), m, values, scratch);
          for (std::size_t t = 0; t < m; ++t) {
            total += values[t];
            peak = std::max(peak, values[t]);
          }
        }
      });
}

std::vector<double> AddPowerModel::input_sensitivity_ff() const {
  std::vector<double> sensitivity(num_inputs_, 0.0);
  for (std::uint32_t k = 0; k < num_inputs_; ++k) {
    const std::uint32_t vi = var_of_xi(k);
    const std::uint32_t vf = var_of_xf(k);
    const dd::Add f0 = function_.cofactor(vi, false);
    const dd::Add f1 = function_.cofactor(vi, true);
    const double toggle = 0.5 * (f0.cofactor(vf, true).average() +
                                 f1.cofactor(vf, false).average());
    const double stable = 0.5 * (f0.cofactor(vf, false).average() +
                                 f1.cofactor(vf, true).average());
    sensitivity[k] = toggle - stable;
  }
  return sensitivity;
}

AddPowerModel::Transition AddPowerModel::worst_case_transition() const {
  const std::vector<std::uint8_t> assignment = dd::argmax_assignment(function_);
  Transition t;
  t.xi.resize(num_inputs_);
  t.xf.resize(num_inputs_);
  for (std::uint32_t k = 0; k < num_inputs_; ++k) {
    t.xi[k] = assignment[var_of_xi(k)];
    t.xf[k] = assignment[var_of_xf(k)];
  }
  return t;
}

AddPowerModel AddPowerModel::compress(std::size_t max_nodes) const {
  return compress(max_nodes, mode_);
}

AddPowerModel AddPowerModel::compress(std::size_t max_nodes,
                                      dd::ApproxMode mode) const {
  Timer timer;
  dd::Add smaller = dd::approximate_to(function_, max_nodes, mode);
  AddPowerModel model(mgr_, std::move(smaller), num_inputs_, order_, mode,
                      circuit_name_);
  model.build_info_ = build_info_;
  model.build_info_.build_seconds += timer.seconds();
  model.build_info_.approximations += 1;
  return model;
}

void AddPowerModel::save(std::ostream& os) const {
  os << "cfpm-power-model 1\n";
  os << "circuit " << (circuit_name_.empty() ? "?" : circuit_name_) << "\n";
  os << "inputs " << num_inputs_ << "\n";
  os << "order "
     << (order_ == VariableOrder::kInterleaved ? "interleaved" : "blocked")
     << "\n";
  os << "mode "
     << (mode_ == dd::ApproxMode::kAverage ? "average" : "upper-bound") << "\n";
  dd::write_add(os, function_);
  if (!os) throw IoError("AddPowerModel::save: stream failure");
}

AddPowerModel AddPowerModel::load(std::istream& is) {
  std::string line;
  auto read_line = [&](const char* what) {
    if (!std::getline(is, line)) {
      throw ParseError(std::string("power model: missing ") + what);
    }
  };
  read_line("header");
  if (line != "cfpm-power-model 1") {
    throw ParseError("power model: bad header '" + line + "'");
  }
  std::string circuit, order_str, mode_str;
  std::size_t inputs = 0;
  read_line("circuit");
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> circuit) || kw != "circuit") {
      throw ParseError("power model: expected 'circuit <name>'");
    }
  }
  read_line("inputs");
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> inputs) || kw != "inputs" || inputs == 0) {
      throw ParseError("power model: expected 'inputs <n>'");
    }
  }
  read_line("order");
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> order_str) || kw != "order") {
      throw ParseError("power model: expected 'order <o>'");
    }
  }
  read_line("mode");
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> mode_str) || kw != "mode") {
      throw ParseError("power model: expected 'mode <m>'");
    }
  }
  VariableOrder order;
  if (order_str == "interleaved") {
    order = VariableOrder::kInterleaved;
  } else if (order_str == "blocked") {
    order = VariableOrder::kBlocked;
  } else {
    throw ParseError("power model: unknown order '" + order_str + "'");
  }
  dd::ApproxMode mode;
  if (mode_str == "average") {
    mode = dd::ApproxMode::kAverage;
  } else if (mode_str == "upper-bound") {
    mode = dd::ApproxMode::kUpperBound;
  } else {
    throw ParseError("power model: unknown mode '" + mode_str + "'");
  }

  auto mgr = std::make_shared<dd::DdManager>(2 * inputs);
  dd::Add function = dd::read_add(is, *mgr);
  return AddPowerModel(std::move(mgr), std::move(function), inputs, order,
                       mode, circuit);
}

}  // namespace cfpm::power
