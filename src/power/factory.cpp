#include "power/factory.hpp"

#include <utility>

#include "power/baselines.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace cfpm::power {

namespace {

/// Shared characterization wiring for the baseline kinds: golden simulation
/// of a random sequence drawn from the configured statistics.
template <typename Fit>
auto characterize(const netlist::Netlist& n, const ModelOptions& options,
                  Fit&& fit) {
  const sim::GateLevelSimulator golden(n, options.library);
  stats::MarkovSequenceGenerator gen(options.characterization,
                                     options.characterization_seed);
  const sim::InputSequence seq =
      gen.generate(n.num_inputs(), options.characterization_vectors);
  const Characterizer characterizer(golden, seq);
  return fit(characterizer);
}

}  // namespace

std::unique_ptr<PowerModel> make_model(ModelKind kind,
                                       const netlist::Netlist& n,
                                       const ModelOptions& options) {
  switch (kind) {
    case ModelKind::kAddAverage:
    case ModelKind::kCompiled: {
      AddModelOptions add = options.add;
      add.mode = dd::ApproxMode::kAverage;
      return std::make_unique<AddPowerModel>(
          AddPowerModel::build(n, options.library, add));
    }
    case ModelKind::kAddUpperBound: {
      AddModelOptions add = options.add;
      add.mode = dd::ApproxMode::kUpperBound;
      return std::make_unique<AddPowerModel>(
          AddPowerModel::build(n, options.library, add));
    }
    case ModelKind::kConstant:
      return characterize(n, options, [](const Characterizer& c) {
        return std::make_unique<ConstantModel>(c.fit_constant());
      });
    case ModelKind::kLinear:
      return characterize(n, options, [](const Characterizer& c) {
        return std::make_unique<LinearModel>(c.fit_linear());
      });
  }
  CFPM_UNREACHABLE("bad ModelKind");
}

}  // namespace cfpm::power
