// Deterministic gate partition for cone-parallel model construction.
//
// The Fig. 6 sum  C = sum_j deltaC_j  is over gates, and gate j's deltaC
// depends only on j's transitive fanin cone — so the sum can be split into
// independent partial sums as long as every gate is owned by exactly one
// partition. The partition here is a pure function of the netlist (never of
// the thread count): gates are claimed by the first primary output, in
// outputs() order, whose fanin cone contains them; gates driving no output
// (legal, their deltaC still counts) form one final partition. Workers
// summing the partitions in any schedule and merging in partition order
// therefore produce a thread-count-independent result.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace cfpm::power {

/// One partition: the owned gates, ascending SignalId (= topological
/// order), plus the support the owning worker must rebuild locally —
/// every signal (gates of other cones included) some owned gate
/// transitively depends on.
struct ConeTask {
  std::vector<netlist::SignalId> owned;    ///< gates whose deltaC this task sums
  std::vector<netlist::SignalId> support;  ///< owned + transitive fanins, ascending
};

/// Partitions every gate of `n` into cone tasks as described above. The
/// result depends only on `n`: same netlist, same tasks, byte for byte.
/// Union of `owned` over all tasks = every non-input signal, disjointly.
std::vector<ConeTask> partition_gate_cones(const netlist::Netlist& n);

}  // namespace cfpm::power
