// RT-level composition of macro power models.
//
// An RtlDesign is a set of macro instances whose inputs are bound to bits
// of a global "bus" state. Per-cycle estimates compose additively; the key
// property from the paper (Section 1.2) is that *pattern-dependent* upper
// bounds of the components sum to a much tighter conservative system bound
// than the sum of the components' global worst cases.
//
// Streaming callers (millions of transitions) use the EvalScratch overloads:
// the scratch owns the per-instance gather buffers, so the hot loop performs
// no allocation at all. The scratch-free overloads remain for one-shot use.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "power/power_model.hpp"

namespace cfpm::power {

class RtlDesign {
 public:
  /// Reusable per-caller gather buffers for the streaming estimate paths.
  /// One scratch per thread: RtlDesign never mutates it concurrently, so a
  /// sharded evaluator gives each shard its own.
  class EvalScratch {
   private:
    friend class RtlDesign;
    std::vector<std::uint8_t> xi_;
    std::vector<std::uint8_t> xf_;
  };

  /// Binds `model`'s k-th input to global bus bit input_map[k]. The design
  /// shares ownership of the model, so one library model can back many
  /// instances (the library-macro reuse scenario of the paper).
  void add_instance(std::string name, std::shared_ptr<const PowerModel> model,
                    std::vector<std::size_t> input_map);

  std::size_t num_instances() const noexcept { return instances_.size(); }
  std::size_t bus_width() const noexcept { return bus_width_; }
  /// Width of the widest instance (what an EvalScratch grows to).
  std::size_t max_instance_inputs() const noexcept { return max_inputs_; }
  const std::string& instance_name(std::size_t i) const;
  const PowerModel& instance_model(std::size_t i) const;
  const std::vector<std::size_t>& instance_input_map(std::size_t i) const;

  /// Total estimated switching capacitance for one bus transition.
  double estimate_ff(std::span<const std::uint8_t> bus_xi,
                     std::span<const std::uint8_t> bus_xf) const;

  /// Allocation-free total for one bus transition (streaming hot path).
  double estimate_ff(std::span<const std::uint8_t> bus_xi,
                     std::span<const std::uint8_t> bus_xf,
                     EvalScratch& scratch) const;

  /// Adds each instance's estimate for one bus transition into accum[i]
  /// (accum.size() >= num_instances()) and returns this transition's total,
  /// summed in instance order. Allocation-free; the chip evaluator's
  /// per-shard accumulation path.
  double accumulate_ff(std::span<const std::uint8_t> bus_xi,
                       std::span<const std::uint8_t> bus_xf,
                       std::span<double> accum, EvalScratch& scratch) const;

  /// Per-instance breakdown for one bus transition (reporting API).
  std::vector<double> estimate_breakdown_ff(
      std::span<const std::uint8_t> bus_xi,
      std::span<const std::uint8_t> bus_xf) const;

  /// True when every instance model is a conservative bound (then
  /// estimate_ff is a conservative system bound).
  bool is_upper_bound() const;

  /// Sum of the instances' global worst cases (the loose bound the paper
  /// argues against). Requires every model to be an upper bound.
  double sum_of_worst_cases_ff() const;

 private:
  struct Instance {
    std::string name;
    std::shared_ptr<const PowerModel> model;
    std::vector<std::size_t> input_map;
  };

  double instance_estimate_ff(const Instance& inst,
                              std::span<const std::uint8_t> bus_xi,
                              std::span<const std::uint8_t> bus_xf,
                              EvalScratch& scratch) const;

  std::vector<Instance> instances_;
  std::size_t bus_width_ = 0;
  std::size_t max_inputs_ = 0;
};

}  // namespace cfpm::power
