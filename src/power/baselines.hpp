// Characterization-based baseline models of Section 4.
//
//  * ConstantModel (Con): the mean switching capacitance observed during a
//    characterization run; pattern-independent.
//  * LinearModel (Lin):  C = c0 + sum_j c_j a_j with a_j = x^i_j XOR x^f_j,
//    least-squares fitted to characterization data.
//  * ConstantBoundModel: a pattern-independent worst-case estimator (used
//    as the "Con" column of the Table-1 upper-bound section).
//
// Both Con and Lin require simulation-based characterization; the paper's
// point is precisely that their accuracy collapses out-of-sample. The
// Characterizer runs the golden-model simulator on a training sequence
// (sp = st = 0.5 in the paper) and fits them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"

namespace cfpm::power {

class ConstantModel final : public PowerModel {
 public:
  ConstantModel(double value_ff, std::size_t num_inputs)
      : value_ff_(value_ff), num_inputs_(num_inputs) {}

  std::string name() const override { return "Con"; }
  double estimate_ff(std::span<const std::uint8_t>,
                     std::span<const std::uint8_t>) const override {
    return value_ff_;
  }
  std::size_t num_inputs() const override { return num_inputs_; }
  double worst_case_ff() const override { return value_ff_; }
  double value_ff() const { return value_ff_; }

  /// Pattern-independent: chunks reduce without touching the sequence bits.
  TraceEstimate estimate_trace(const sim::InputSequence& seq,
                               ThreadPool* pool = nullptr) const override;

 private:
  double value_ff_;
  std::size_t num_inputs_;
};

class ConstantBoundModel final : public PowerModel {
 public:
  ConstantBoundModel(double bound_ff, std::size_t num_inputs)
      : bound_ff_(bound_ff), num_inputs_(num_inputs) {}

  std::string name() const override { return "ConBound"; }
  double estimate_ff(std::span<const std::uint8_t>,
                     std::span<const std::uint8_t>) const override {
    return bound_ff_;
  }
  bool is_upper_bound() const override { return true; }
  std::size_t num_inputs() const override { return num_inputs_; }
  double worst_case_ff() const override { return bound_ff_; }

  TraceEstimate estimate_trace(const sim::InputSequence& seq,
                               ThreadPool* pool = nullptr) const override;

 private:
  double bound_ff_;
  std::size_t num_inputs_;
};

class LinearModel final : public PowerModel {
 public:
  /// coeffs = [c0, c1, ..., cn].
  explicit LinearModel(std::vector<double> coeffs);

  std::string name() const override { return "Lin"; }
  double estimate_ff(std::span<const std::uint8_t> xi,
                     std::span<const std::uint8_t> xf) const override;
  std::size_t num_inputs() const override { return coeffs_.size() - 1; }
  double worst_case_ff() const override;
  std::span<const double> coefficients() const { return coeffs_; }

  /// Batch path reading toggle bits straight off the packed sequence
  /// (no per-transition vector materialization or virtual dispatch).
  TraceEstimate estimate_trace(const sim::InputSequence& seq,
                               ThreadPool* pool = nullptr) const override;

 private:
  std::vector<double> coeffs_;
};

/// Fits baseline models against golden-model simulation data.
class Characterizer {
 public:
  /// `seq` is the characterization workload (the paper uses 10000 random
  /// vectors with sp = st = 0.5).
  Characterizer(const sim::GateLevelSimulator& simulator,
                const sim::InputSequence& seq);

  /// Mean observed switching capacitance (Con).
  ConstantModel fit_constant() const;

  /// Least-squares linear model over transition bits (Lin).
  LinearModel fit_linear() const;

  /// Maximum observed capacitance — what a purely simulation-based flow
  /// would (wrongly) report as "worst case"; not conservative.
  double observed_peak_ff() const { return energy_.peak_ff; }

  /// Mean observed capacitance.
  double observed_average_ff() const { return energy_.average_ff(); }

 private:
  const sim::GateLevelSimulator& simulator_;
  const sim::InputSequence& seq_;
  sim::SequenceEnergy energy_;
};

}  // namespace cfpm::power
