// RTL power-model interface.
//
// A model maps an input transition (x^i -> x^f) of a combinational macro to
// an estimate of the switched capacitance in fF (energy = Vdd^2 * C, Eq. 1).
// Pattern-independent models simply ignore the patterns.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sim/sequence.hpp"

namespace cfpm::power {

class PowerModel {
 public:
  virtual ~PowerModel() = default;

  virtual std::string name() const = 0;

  /// Estimated switching capacitance (fF) for one transition.
  virtual double estimate_ff(std::span<const std::uint8_t> xi,
                             std::span<const std::uint8_t> xf) const = 0;

  /// True when estimate_ff is guaranteed >= the golden model's value for
  /// every transition (conservative upper bound).
  virtual bool is_upper_bound() const { return false; }

  /// Number of macro inputs the model expects.
  virtual std::size_t num_inputs() const = 0;

  /// Largest estimate the model can produce over any transition (the
  /// pattern-independent worst case of this estimator).
  virtual double worst_case_ff() const = 0;

  // ----- sequence-level evaluation (RTL simulation loop) -------------------

  /// Average estimated capacitance per transition over a sequence.
  double average_over(const sim::InputSequence& seq) const;

  /// Maximum estimated capacitance over the transitions of a sequence.
  double peak_over(const sim::InputSequence& seq) const;
};

/// Supply voltage context to convert capacitance to energy/power.
struct SupplyConfig {
  double vdd_volts = 3.3;
  /// Energy (fJ) for a switched capacitance in fF.
  double energy_fj(double cap_ff) const { return vdd_volts * vdd_volts * cap_ff; }
  /// Average power (uW) given fF per transition and a clock period in ns.
  double power_uw(double cap_ff_per_cycle, double period_ns) const {
    return energy_fj(cap_ff_per_cycle) / period_ns;  // fJ/ns == uW
  }
};

}  // namespace cfpm::power
