// RTL power-model interface.
//
// A model maps an input transition (x^i -> x^f) of a combinational macro to
// an estimate of the switched capacitance in fF (energy = Vdd^2 * C, Eq. 1).
// Pattern-independent models simply ignore the patterns.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "sim/sequence.hpp"
#include "support/thread_pool.hpp"

namespace cfpm::power {

/// One-pass summary of a model evaluated over every transition of a
/// sequence (the per-cycle RTL simulation loop, batched).
struct TraceEstimate {
  double total_ff = 0.0;        ///< sum of per-transition estimates
  double peak_ff = 0.0;         ///< maximum estimate (0 for empty traces)
  std::size_t transitions = 0;  ///< transitions evaluated

  double average_ff() const {
    return transitions == 0 ? 0.0
                            : total_ff / static_cast<double>(transitions);
  }
};

class PowerModel {
 public:
  virtual ~PowerModel() = default;

  virtual std::string name() const = 0;

  /// Estimated switching capacitance (fF) for one transition.
  virtual double estimate_ff(std::span<const std::uint8_t> xi,
                             std::span<const std::uint8_t> xf) const = 0;

  /// True when estimate_ff is guaranteed >= the golden model's value for
  /// every transition (conservative upper bound).
  virtual bool is_upper_bound() const { return false; }

  /// Number of macro inputs the model expects.
  virtual std::size_t num_inputs() const = 0;

  /// Largest estimate the model can produce over any transition (the
  /// pattern-independent worst case of this estimator).
  virtual double worst_case_ff() const = 0;

  // ----- sequence-level evaluation (RTL simulation loop) -------------------

  /// Transitions per work chunk of estimate_trace. Chunk boundaries depend
  /// only on the sequence (never on the thread count) and chunk partials
  /// are reduced in chunk order, so estimate_trace is bit-identical for
  /// any pool size — including no pool at all.
  static constexpr std::size_t kTraceChunk = 4096;

  /// Evaluates every transition of `seq` in one pass, sharding fixed
  /// kTraceChunk-sized chunks across `pool` when one is given. The default
  /// implementation loops estimate_ff; models with a batch evaluator
  /// (the compiled ADD model, Con, Lin) override it.
  virtual TraceEstimate estimate_trace(const sim::InputSequence& seq,
                                       ThreadPool* pool = nullptr) const;

  /// Average estimated capacitance per transition over a sequence.
  double average_over(const sim::InputSequence& seq) const {
    return estimate_trace(seq).average_ff();
  }

  /// Maximum estimated capacitance over the transitions of a sequence.
  double peak_over(const sim::InputSequence& seq) const {
    return estimate_trace(seq).peak_ff;
  }

 protected:
  /// Shared sharding/reduction skeleton for estimate_trace implementations:
  /// chunk_fn(begin, end, total, peak) evaluates transitions [begin, end)
  /// into zero-initialized per-chunk slots (possibly on a pool thread);
  /// partials are then combined in chunk order on the calling thread.
  TraceEstimate reduce_trace(
      std::size_t transitions, ThreadPool* pool,
      const std::function<void(std::size_t, std::size_t, double&, double&)>&
          chunk_fn) const;
};

/// Supply voltage context to convert capacitance to energy/power.
struct SupplyConfig {
  double vdd_volts = 3.3;
  /// Energy (fJ) for a switched capacitance in fF.
  double energy_fj(double cap_ff) const { return vdd_volts * vdd_volts * cap_ff; }
  /// Average power (uW) given fF per transition and a clock period in ns.
  double power_uw(double cap_ff_per_cycle, double period_ns) const {
    return energy_fj(cap_ff_per_cycle) / period_ns;  // fJ/ns == uW
  }
};

}  // namespace cfpm::power
