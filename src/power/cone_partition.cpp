#include "power/cone_partition.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace cfpm::power {

using netlist::Netlist;
using netlist::SignalId;

namespace {

/// Collects the unclaimed gates of `root`'s fanin cone into `owned` and
/// marks them claimed. Iterative DFS; cones can be as deep as the netlist.
void claim_cone(const Netlist& n, SignalId root, std::vector<bool>& claimed,
                std::vector<SignalId>& owned) {
  std::vector<SignalId> stack{root};
  while (!stack.empty()) {
    const SignalId s = stack.back();
    stack.pop_back();
    if (n.signal(s).is_input || claimed[s]) continue;
    claimed[s] = true;
    owned.push_back(s);
    for (const SignalId f : n.fanins(s)) stack.push_back(f);
  }
}

/// support = owned ∪ transitive fanins of owned, ascending.
std::vector<SignalId> close_support(const Netlist& n,
                                    const std::vector<SignalId>& owned) {
  std::vector<bool> in_support(n.num_signals(), false);
  std::vector<SignalId> stack(owned.begin(), owned.end());
  for (const SignalId s : owned) in_support[s] = true;
  while (!stack.empty()) {
    const SignalId s = stack.back();
    stack.pop_back();
    for (const SignalId f : n.fanins(s)) {
      if (!in_support[f]) {
        in_support[f] = true;
        stack.push_back(f);
      }
    }
  }
  std::vector<SignalId> support;
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    if (in_support[s]) support.push_back(s);
  }
  return support;
}

}  // namespace

std::vector<ConeTask> partition_gate_cones(const Netlist& n) {
  std::vector<ConeTask> tasks;
  std::vector<bool> claimed(n.num_signals(), false);

  auto push_task = [&](std::vector<SignalId> owned) {
    if (owned.empty()) return;
    std::sort(owned.begin(), owned.end());
    ConeTask t;
    t.support = close_support(n, owned);
    t.owned = std::move(owned);
    tasks.push_back(std::move(t));
  };

  for (const SignalId o : n.outputs()) {
    std::vector<SignalId> owned;
    claim_cone(n, o, claimed, owned);
    push_task(std::move(owned));
  }
  // Gates feeding no primary output still contribute their deltaC (the
  // paper's sum is over all gates); sweep them into one final task.
  std::vector<SignalId> leftover;
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    if (!n.signal(s).is_input && !claimed[s]) {
      claimed[s] = true;
      leftover.push_back(s);
    }
  }
  push_task(std::move(leftover));
  return tasks;
}

}  // namespace cfpm::power
