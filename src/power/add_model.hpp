// The paper's contribution: characterization-free, pattern-dependent
// switching-capacitance models built symbolically from the gate-level
// netlist (Section 2.1 and Fig. 6).
//
// The model is the discrete function
//   C(x^i, x^f) = sum_j  g_j'(x^i) * g_j(x^f) * C_j            (Eq. 4)
// represented as an ADD over 2n Boolean variables. During construction the
// partial sum is re-approximated by node collapsing whenever it exceeds a
// node budget MAX, with one of two strategies:
//   * kAverage    -> accurate average-power estimator
//   * kUpperBound -> conservative pattern-dependent upper bound
// No simulation is involved anywhere.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dd/approx.hpp"
#include "dd/compiled.hpp"
#include "dd/manager.hpp"
#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "power/power_model.hpp"
#include "support/governor.hpp"
#include "support/retry.hpp"

namespace cfpm::power {

/// Placement of the 2n model variables in the diagram order.
enum class VariableOrder {
  /// x^i_k and x^f_k adjacent: order (x^i_0, x^f_0, x^i_1, x^f_1, ...).
  /// This is the transition-relation interleaving; almost always smaller.
  kInterleaved,
  /// All x^i first, then all x^f (kept for the ablation study).
  kBlocked,
};

struct AddModelOptions {
  /// Node budget MAX of Fig. 6; 0 builds the exact (unbounded) model.
  std::size_t max_nodes = 1000;
  dd::ApproxMode mode = dd::ApproxMode::kAverage;
  VariableOrder order = VariableOrder::kInterleaved;
  /// When false, approximation runs only once after the full sum is built
  /// (ablation: Fig. 6 applies it during construction).
  bool approximate_during_construction = true;
  /// Node budget for each gate's deltaC contribution before it is summed;
  /// 0 disables (Fig. 6 uses the same MAX).
  std::size_t delta_max_nodes = 0;
  /// Sifting passes run on the finished sum before the final approximation
  /// (the paper relies on CUDD's reordering [10] for the same purpose).
  /// Reordering often shrinks the exact ADD below MAX, in which case the
  /// model needs no approximation at all.
  unsigned reorder_passes = 2;
  dd::DdConfig dd_config;
  /// Walk the degradation ladder on ResourceError/DeadlineExceeded instead
  /// of propagating: retry with in-construction approximation forced on,
  /// then with repeatedly halved budgets down to `degrade_floor`, then
  /// surrender to a constant (Con-style) estimator. Every rung taken is
  /// recorded in AddModelBuildInfo::rungs; CancelledError always
  /// propagates. With `degrade` false the first failure is rethrown.
  bool degrade = true;
  /// Smallest MAX the ladder will retry with before the constant fallback.
  std::size_t degrade_floor = 16;
  /// Worker lanes for construction. 1 (default) runs the serial Fig. 6
  /// loop; >1 builds independent per-output fanin cones in separate
  /// DdManager instances on a support::ThreadPool and merges the partial
  /// sums into the shared manager via a deterministic serialize/import
  /// step (0 = hardware concurrency). The gate partition and the merge
  /// order depend only on the netlist, so the parallel result is
  /// bit-identical across thread counts; it can differ from the serial
  /// path only in where mid-construction approximation/reordering cuts in
  /// (never for exact builds with exactly-representable load sums).
  std::size_t build_threads = 1;
  /// Self-healing for parallel builds: a cone task that throws anything but
  /// DeadlineExceeded/CancelledError is retried under this policy on its
  /// worker, and after the last retry fails the coordinator rebuilds the
  /// cone serially before the merge. Because a cone build is a
  /// deterministic function of (netlist, options), a retried or serially
  /// rebuilt cone serializes to the same bytes as an undisturbed one, so
  /// the bit-identical-across-thread-counts guarantee survives any number
  /// of transient faults. Only a fault that also defeats the serial rebuild
  /// escalates to the degradation ladder (see `degrade`).
  RetryPolicy cone_retry;
};

/// How the model left the builder (see AddModelOptions::degrade).
enum class BuildOutcome {
  kClean,     ///< first attempt succeeded; no ladder rung taken
  kDegraded,  ///< a retry rung (forced/halved approximation) produced it
  kFallback,  ///< every retry failed; constant Con-style estimator
};

/// One rung of the degradation ladder, recorded so a degraded result is
/// never silently mistaken for a clean one.
struct BuildRung {
  std::string action;     ///< e.g. "force-approximate", "halve-max-nodes"
  std::string reason;     ///< what() of the error that forced this rung
  std::size_t max_nodes;  ///< MAX in force for the retry (0 = n/a)
};

/// Build-time metadata (reported in the Table-1 CPU/MAX columns).
struct AddModelBuildInfo {
  double build_seconds = 0.0;
  std::size_t approximations = 0;   ///< collapse invocations during build
  std::size_t peak_live_nodes = 0;  ///< manager high-water mark
  std::size_t exact_if_zero = 0;    ///< 0 when no approximation ever ran
  std::size_t reorder_runs = 0;     ///< sifting invocations during build
  BuildOutcome outcome = BuildOutcome::kClean;
  std::vector<BuildRung> rungs;     ///< ladder rungs taken, in order
  /// Total attempts across the ladder (1 for a clean build).
  std::size_t attempts = 1;
  /// Parallel builds only: cone-task retries absorbed by
  /// AddModelOptions::cone_retry (0 for an undisturbed build)...
  std::size_t cone_retries = 0;
  /// ...and cones the coordinator had to rebuild serially after the retry
  /// budget was exhausted. Nonzero values mean transient faults were
  /// absorbed; the model itself is unaffected (bit-identical to a clean
  /// run).
  std::size_t cone_serial_rebuilds = 0;
};

class AddPowerModel final : public PowerModel {
 public:
  /// Builds the model from a netlist with per-signal loads (fF).
  static AddPowerModel build(const netlist::Netlist& n,
                             std::span<const double> loads_ff,
                             const AddModelOptions& options = {});

  /// Convenience: loads annotated from `lib`.
  static AddPowerModel build(const netlist::Netlist& n,
                             const netlist::GateLibrary& lib,
                             const AddModelOptions& options = {});

  // PowerModel interface -----------------------------------------------------
  std::string name() const override;
  double estimate_ff(std::span<const std::uint8_t> xi,
                     std::span<const std::uint8_t> xf) const override;
  bool is_upper_bound() const override {
    return mode_ == dd::ApproxMode::kUpperBound;
  }
  std::size_t num_inputs() const override { return num_inputs_; }
  double worst_case_ff() const override { return function_.max_value(); }

  /// Batch evaluation on the compiled flat-array snapshot of the ADD:
  /// per-pattern values are bit-identical to estimate_ff, chunk order is
  /// fixed, so the result matches the scalar path exactly for any pool.
  TraceEstimate estimate_trace(const sim::InputSequence& seq,
                               ThreadPool* pool = nullptr) const override;

  // Model introspection --------------------------------------------------------
  /// The flattened evaluation snapshot (compiled once at construction;
  /// immutable, shared by copies, safe for concurrent evaluation).
  const dd::CompiledDd& compiled() const { return *compiled_; }
  /// Node count of the ADD (terminals included).
  std::size_t size() const { return function_.size(); }
  const dd::Add& function() const { return function_; }
  dd::ApproxMode mode() const { return mode_; }
  const AddModelBuildInfo& build_info() const { return build_info_; }

  /// Largest value the model can produce (the constant worst-case
  /// estimator used for the Table-1 "Con" bound column).
  double max_estimate_ff() const { return function_.max_value(); }
  /// Exact average of the model over uniform random transitions.
  double average_estimate_ff() const { return function_.average(); }

  /// Symbolic per-input power attribution, computed from the ADD alone (no
  /// simulation): for each macro input k,
  ///   sensitivity[k] = E[C | input k toggles] - E[C | input k is stable]
  /// under uniform statistics on the other inputs. Ranks which inputs the
  /// macro's consumption actually responds to -- useful for encoding and
  /// gating decisions at the RT level.
  std::vector<double> input_sensitivity_ff() const;

  /// A transition (x^i, x^f) on which the model attains worst_case_ff().
  /// For an exact model this is a true maximum-power input pair -- the
  /// search that is exponential at the netlist level ([8, 9] in the paper)
  /// is a linear walk on the ADD.
  struct Transition {
    std::vector<std::uint8_t> xi;
    std::vector<std::uint8_t> xf;
  };
  Transition worst_case_transition() const;

  /// Derives a smaller model by further node collapsing (Fig. 7b sweeps).
  AddPowerModel compress(std::size_t max_nodes) const;
  /// Same, but switching strategy (e.g. derive a bound from an exact model).
  AddPowerModel compress(std::size_t max_nodes, dd::ApproxMode mode) const;

  // Serialization ("back-annotation" without revealing the netlist) ---------
  void save(std::ostream& os) const;
  static AddPowerModel load(std::istream& is);

  // Variable mapping (shared with the symbolic builder and tests) -----------
  std::uint32_t var_of_xi(std::uint32_t input) const;
  std::uint32_t var_of_xf(std::uint32_t input) const;

 private:
  AddPowerModel(std::shared_ptr<dd::DdManager> mgr, dd::Add function,
                std::size_t num_inputs, VariableOrder order,
                dd::ApproxMode mode, std::string circuit_name);

  /// Last ladder rung: a constant (Con-style) estimator built on a fresh,
  /// ungoverned manager -- total driven load in bound mode, its
  /// balanced-gate expectation in average mode.
  static AddPowerModel constant_fallback(const netlist::Netlist& n,
                                         std::span<const double> loads_ff,
                                         const AddModelOptions& options);

  // The manager must outlive the Add handle; shared_ptr keeps compress()d
  // copies cheap (they share the manager).
  std::shared_ptr<dd::DdManager> mgr_;
  dd::Add function_;
  // Frozen flat-array copy of function_, detached from mgr_ (manager GC or
  // reordering cannot invalidate it). Shared so the model stays copyable.
  std::shared_ptr<const dd::CompiledDd> compiled_;
  std::size_t num_inputs_ = 0;
  VariableOrder order_ = VariableOrder::kInterleaved;
  dd::ApproxMode mode_ = dd::ApproxMode::kAverage;
  std::string circuit_name_;
  AddModelBuildInfo build_info_;

  friend class SymbolicBuilder;
};

}  // namespace cfpm::power
