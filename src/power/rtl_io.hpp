// Text format for RT-level designs built from power-model macros.
//
// The paper's deployment story: a library of combinational macros, each
// back-annotated with a (characterization-free) power model, instantiated
// many times across an RTL design. This loader turns such a description
// into an RtlDesign.
//
// Grammar (line oriented, '#' comments):
//   design <name>
//   bus <width>                       # optional; inferred when absent
//   macro <mname> <source> [max=<N>] [bound]
//   inst <iname> <mname> <bit> <bit> ...   # one bus bit per macro input,
//                                          # ranges like 3-10 allowed
//
// <source> is a saved model (*.cfpm), a netlist (*.bench / *.blif) or a
// built-in generator (gen:<name>). Netlist sources are turned into models
// on the fly with the given node budget (default 1000) and strategy.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "netlist/library.hpp"
#include "power/rtl.hpp"

namespace cfpm::power {

struct RtlDescription {
  std::string name;
  RtlDesign design;
  /// Macro name per instance (parallel to the design's instances).
  std::vector<std::string> instance_macros;
};

/// Parses a design description. Netlist-backed macros are modeled with
/// `lib` capacitances. Throws cfpm::ParseError on malformed input and
/// cfpm::Error when a referenced file is unreadable.
RtlDescription read_rtl_design(std::istream& is,
                               const netlist::GateLibrary& lib);

/// Convenience file loader.
RtlDescription read_rtl_design_file(const std::string& path,
                                    const netlist::GateLibrary& lib);

}  // namespace cfpm::power
