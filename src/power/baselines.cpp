#include "power/baselines.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/linear.hpp"

namespace cfpm::power {

// Constant estimators skip the sequence bits entirely but still accumulate
// by repeated addition, so the result stays bit-identical to the generic
// estimate_ff loop.
TraceEstimate ConstantModel::estimate_trace(const sim::InputSequence& seq,
                                            ThreadPool* pool) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs_);
  const double value = value_ff_;
  return reduce_trace(
      seq.num_transitions(), pool,
      [value](std::size_t begin, std::size_t end, double& total, double& peak) {
        for (std::size_t t = begin; t < end; ++t) total += value;
        peak = std::max(0.0, value);
      });
}

TraceEstimate ConstantBoundModel::estimate_trace(const sim::InputSequence& seq,
                                                 ThreadPool* pool) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs_);
  const double value = bound_ff_;
  return reduce_trace(
      seq.num_transitions(), pool,
      [value](std::size_t begin, std::size_t end, double& total, double& peak) {
        for (std::size_t t = begin; t < end; ++t) total += value;
        peak = std::max(0.0, value);
      });
}

TraceEstimate LinearModel::estimate_trace(const sim::InputSequence& seq,
                                          ThreadPool* pool) const {
  CFPM_REQUIRE(seq.num_inputs() == num_inputs());
  const std::size_t n = num_inputs();
  return reduce_trace(
      seq.num_transitions(), pool,
      [&](std::size_t begin, std::size_t end, double& total, double& peak) {
        for (std::size_t t = begin; t < end; ++t) {
          // Same coefficient-addition order as estimate_ff, so each
          // per-transition value (and thus the chunk sum) is bit-identical
          // to the scalar path.
          double est = coeffs_[0];
          for (std::size_t j = 0; j < n; ++j) {
            if (seq.bit(j, t) != seq.bit(j, t + 1)) est += coeffs_[j + 1];
          }
          total += est;
          peak = std::max(peak, est);
        }
      });
}

LinearModel::LinearModel(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  CFPM_REQUIRE(coeffs_.size() >= 2);
}

double LinearModel::estimate_ff(std::span<const std::uint8_t> xi,
                                std::span<const std::uint8_t> xf) const {
  CFPM_REQUIRE(xi.size() == num_inputs() && xf.size() == num_inputs());
  double est = coeffs_[0];
  for (std::size_t j = 0; j < xi.size(); ++j) {
    if ((xi[j] != 0) != (xf[j] != 0)) est += coeffs_[j + 1];
  }
  return est;
}

double LinearModel::worst_case_ff() const {
  double wc = coeffs_[0];
  for (std::size_t j = 1; j < coeffs_.size(); ++j) {
    if (coeffs_[j] > 0.0) wc += coeffs_[j];
  }
  return wc;
}

Characterizer::Characterizer(const sim::GateLevelSimulator& simulator,
                             const sim::InputSequence& seq)
    : simulator_(simulator), seq_(seq), energy_(simulator.simulate(seq)) {
  CFPM_REQUIRE(seq.num_transitions() >= 1);
}

ConstantModel Characterizer::fit_constant() const {
  return ConstantModel(energy_.average_ff(), seq_.num_inputs());
}

LinearModel Characterizer::fit_linear() const {
  const std::size_t n = seq_.num_inputs();
  const std::size_t m = seq_.num_transitions();
  Matrix x(m, n + 1);
  std::vector<double> y(m);
  for (std::size_t t = 0; t < m; ++t) {
    x(t, 0) = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      x(t, j + 1) = (seq_.bit(j, t) != seq_.bit(j, t + 1)) ? 1.0 : 0.0;
    }
    y[t] = energy_.per_transition_ff[t];
  }
  return LinearModel(least_squares(x, y));
}

}  // namespace cfpm::power
