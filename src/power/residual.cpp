#include "power/residual.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/linear.hpp"

namespace cfpm::power {

ResidualCalibratedModel::ResidualCalibratedModel(
    std::shared_ptr<const PowerModel> structural, LinearModel residual)
    : structural_(std::move(structural)), residual_(std::move(residual)) {
  CFPM_REQUIRE(structural_ != nullptr);
  CFPM_REQUIRE(residual_.num_inputs() == structural_->num_inputs());
}

std::string ResidualCalibratedModel::name() const {
  return structural_->name() + "+residual";
}

double ResidualCalibratedModel::estimate_ff(
    std::span<const std::uint8_t> xi, std::span<const std::uint8_t> xf) const {
  const double est =
      structural_->estimate_ff(xi, xf) + residual_.estimate_ff(xi, xf);
  return std::max(est, 0.0);
}

ResidualCalibratedModel calibrate_residual(
    std::shared_ptr<const PowerModel> structural, const sim::InputSequence& seq,
    std::span<const double> reference_per_transition_ff) {
  CFPM_REQUIRE(structural != nullptr);
  CFPM_REQUIRE(seq.num_inputs() == structural->num_inputs());
  const std::size_t m = seq.num_transitions();
  CFPM_REQUIRE(reference_per_transition_ff.size() == m);
  CFPM_REQUIRE(m >= 2);

  const std::size_t n = seq.num_inputs();
  Matrix x(m, n + 1);
  std::vector<double> y(m);
  std::vector<std::uint8_t> xi(n), xf(n);
  seq.vector_at(0, xi);
  for (std::size_t t = 0; t < m; ++t) {
    seq.vector_at(t + 1, xf);
    x(t, 0) = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      x(t, j + 1) = (xi[j] != xf[j]) ? 1.0 : 0.0;
    }
    y[t] = reference_per_transition_ff[t] - structural->estimate_ff(xi, xf);
    xi.swap(xf);
  }
  LinearModel residual(least_squares(x, y));
  return ResidualCalibratedModel(std::move(structural), std::move(residual));
}

}  // namespace cfpm::power
