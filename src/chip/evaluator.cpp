#include "chip/evaluator.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace cfpm::chip {

ChipTraceResult evaluate_trace(const power::RtlDesign& design,
                               const sim::InputSequence& trace,
                               ThreadPool* pool) {
  CFPM_REQUIRE(trace.num_inputs() >= design.bus_width());
  static const metrics::Counter c_eval("chip.eval.count");
  static const metrics::Counter c_transitions("chip.eval.transitions");
  static const metrics::Histogram h_latency("chip.eval.latency_us");
  const metrics::ScopedTimer timer(h_latency);
  c_eval.add();

  const std::size_t transitions = trace.num_transitions();
  c_transitions.add(transitions);
  ChipTraceResult result;
  result.transitions = transitions;
  result.per_instance_ff.assign(design.num_instances(), 0.0);
  if (transitions == 0 || design.num_instances() == 0) return result;

  const std::size_t chunks = (transitions + kTraceChunk - 1) / kTraceChunk;
  struct Slot {
    std::vector<double> per_instance;
    double peak = 0.0;
  };
  std::vector<Slot> slots(chunks);
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * kTraceChunk;
    const std::size_t end = std::min(begin + kTraceChunk, transitions);
    Slot& slot = slots[c];
    slot.per_instance.assign(design.num_instances(), 0.0);
    power::RtlDesign::EvalScratch scratch;
    std::vector<std::uint8_t> xi(trace.num_inputs());
    std::vector<std::uint8_t> xf(trace.num_inputs());
    trace.vector_at(begin, xi);
    for (std::size_t t = begin; t < end; ++t) {
      // xf of transition t is xi of transition t+1: one gather per step.
      trace.vector_at(t + 1, xf);
      const double cycle =
          design.accumulate_ff(xi, xf, slot.per_instance, scratch);
      slot.peak = std::max(slot.peak, cycle);
      std::swap(xi, xf);
    }
  };
  if (pool != nullptr) {
    pool->run_indexed(chunks, run_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  }

  // Ordered reduction: chunk order per instance, then instance order for
  // the total. Peak is a max, so reduction order cannot change it.
  for (const Slot& slot : slots) {
    for (std::size_t i = 0; i < result.per_instance_ff.size(); ++i) {
      result.per_instance_ff[i] += slot.per_instance[i];
    }
    result.peak_ff = std::max(result.peak_ff, slot.peak);
  }
  for (const double v : result.per_instance_ff) result.total_ff += v;
  return result;
}

}  // namespace cfpm::chip
