// Chip-scale hierarchical composition of macro power models.
//
// A Chip is a three-level component tree (macro -> block -> chip) whose
// leaves are PowerModels from a generated macro library. Per-cycle average
// estimates and conservative per-cycle maximum bounds compose additively up
// the tree (Section 1.2 of the paper): summing the leaves' *pattern-
// dependent* bounds gives a far tighter conservative chip bound than
// summing their global worst cases.
//
// Each block owns a contiguous segment of the chip bus; its macros bind
// their inputs to overlapping windows of that segment. Shared-input
// correlation is therefore handled at the block level by construction: a
// shared bus bit is one stream of the chip trace, sampled once, feeding
// every macro that maps it — it is never double-sampled per macro.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "power/add_model.hpp"
#include "power/factory.hpp"
#include "power/rtl.hpp"

namespace cfpm::chip {

/// Chip topology "CxBxM": C blocks, B macro instances per block, M bus bits
/// per block. Total bus width is C*M, total macro count C*B.
struct ChipSpec {
  std::size_t blocks = 2;
  std::size_t macros_per_block = 3;
  std::size_t block_bus_bits = 12;

  /// Parses "CxBxM" (e.g. "4x6x16"). Throws cfpm::Error on malformed
  /// text, zero counts, or M < 4 (the narrowest library macro needs 4 bits).
  static ChipSpec parse(std::string_view text);
  std::string to_string() const;

  std::size_t num_macros() const noexcept { return blocks * macros_per_block; }
  std::size_t bus_width() const noexcept { return blocks * block_bus_bits; }
};

/// Build record for one distinct library macro (shared by all its
/// instances): the §9 ladder outcome of both model variants is preserved so
/// a degraded macro is never silently mistaken for a clean one.
struct MacroBuildReport {
  std::string name;           ///< library macro name, e.g. "add4"
  std::size_t num_inputs = 0;
  std::size_t instances = 0;  ///< leaves backed by this macro
  std::size_t avg_nodes = 0;
  std::size_t bound_nodes = 0;
  bool avg_cache_hit = false;    ///< model came from a registry/cache
  bool bound_cache_hit = false;
  power::AddModelBuildInfo avg_info;
  power::AddModelBuildInfo bound_info;

  bool degraded() const noexcept {
    return avg_info.outcome != power::BuildOutcome::kClean ||
           bound_info.outcome != power::BuildOutcome::kClean;
  }
};

struct ChipBuildOptions {
  /// Per-macro node budget MAX (0 = exact). The default keeps the demo
  /// library exact, which also makes builds bit-identical across
  /// --build-threads (exact builds with the standard library's integer
  /// loads are order-insensitive).
  std::size_t max_nodes = 4000;
  /// Per-macro governor wall-clock deadline; each macro build gets a fresh
  /// governor so one slow macro cannot starve the rest of the library.
  std::optional<std::size_t> deadline_ms;
  bool degrade = true;  ///< walk the §9 degradation ladder per macro
  std::size_t build_threads = 1;
  netlist::GateLibrary library = netlist::GateLibrary::standard();
};

/// One model as produced by a ModelSource: the model itself plus the
/// builder metadata a report needs (ladder outcome, node count, whether it
/// was served from a cache instead of built).
struct SourcedModel {
  std::shared_ptr<const power::PowerModel> model;
  power::AddModelBuildInfo build_info;
  std::size_t nodes = 0;
  bool cache_hit = false;
};

/// Supplies the model for one macro netlist. The default source builds via
/// power::make_model; the daemon substitutes a registry-backed source so
/// composed chips are served from (and admitted to) the model cache.
using ModelSource =
    std::function<SourcedModel(const netlist::Netlist&, power::ModelKind)>;

/// The default source for `options`: power::make_model under a fresh
/// per-macro governor deadline, with the §9 ladder per `options.degrade`.
ModelSource make_model_source(const ChipBuildOptions& options);

class Chip {
 public:
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  /// One tree node. Leaves (empty `children`) wrap exactly one design
  /// instance; every node's leaves occupy the contiguous DFS range
  /// [first_leaf, first_leaf + num_leaves).
  struct Node {
    std::string name;
    std::size_t parent = kNoParent;
    std::vector<std::size_t> children;  ///< node indices
    std::size_t first_leaf = 0;
    std::size_t num_leaves = 0;
    std::size_t macro = 0;  ///< leaves only: index into library()
    bool is_leaf() const noexcept { return children.empty(); }
  };

  const ChipSpec& spec() const noexcept { return spec_; }
  /// Average-accuracy composition (leaf models in kAddAverage mode).
  const power::RtlDesign& avg_design() const noexcept { return avg_; }
  /// Conservative composition (leaf models in kAddUpperBound mode).
  const power::RtlDesign& bound_design() const noexcept { return bound_; }

  /// nodes()[0] is the chip root; blocks and leaves follow in DFS order,
  /// so leaf k of the tree is instance k of both designs.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const Node& root() const noexcept { return nodes_.front(); }
  const std::vector<MacroBuildReport>& library() const noexcept {
    return library_;
  }

  std::size_t num_macros() const noexcept { return avg_.num_instances(); }
  /// Nominal chip bus width (spec().bus_width()); traces are generated at
  /// this width. The designs may map fewer bits (windows need not cover
  /// every segment bit), never more.
  std::size_t bus_width() const noexcept { return spec_.bus_width(); }
  /// Composite (non-leaf) nodes: the chip root plus one per block.
  std::size_t num_components() const noexcept { return spec_.blocks + 1; }
  /// Tree levels including leaves (chip -> block -> macro).
  std::size_t depth() const noexcept { return 3; }

  /// True when any library macro took a §9 ladder rung.
  bool degraded() const;

  /// The loose bound the paper argues against: sum of the leaves' global
  /// worst cases.
  double sum_of_worst_cases_ff() const { return bound_.sum_of_worst_cases_ff(); }

  /// Left-fold of `per_leaf` over the node's contiguous leaf range. This
  /// associates exactly like the evaluator's chip total, so
  /// subtree_total(root(), r.per_instance_ff) == r.total_ff bitwise.
  double subtree_total(const Node& node,
                       std::span<const double> per_leaf) const;

 private:
  friend Chip build_chip(const ChipSpec&, const ModelSource&);
  ChipSpec spec_;
  power::RtlDesign avg_;
  power::RtlDesign bound_;
  std::vector<Node> nodes_;
  std::vector<MacroBuildReport> library_;
};

/// Builds the chip for `spec`: generates the macro library, builds each
/// distinct macro once through `source` (average and upper-bound variants),
/// and instantiates the tree with overlapping per-block bus windows.
Chip build_chip(const ChipSpec& spec, const ModelSource& source);
/// Convenience: the default power::make_model source for `options`.
Chip build_chip(const ChipSpec& spec, const ChipBuildOptions& options = {});

}  // namespace cfpm::chip
