// Plain-text bus traces for `cfpm chip --trace`.
//
// Format: one vector per line, one '0'/'1' character per bus bit, MSB-free
// (column k is bus bit k). Blank lines and lines starting with '#' are
// ignored. All rows must have the same width.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/sequence.hpp"

namespace cfpm::chip {

/// Reads a text trace from `path`. Throws cfpm::IoError when the file
/// cannot be read and cfpm::ParseError on bad characters, ragged rows, an
/// empty trace, or a width smaller than `min_width`.
sim::InputSequence read_trace_text(const std::string& path,
                                   std::size_t min_width);

/// Writes `seq` in the same format (round-trips through read_trace_text).
void write_trace_text(std::ostream& os, const sim::InputSequence& seq);

}  // namespace cfpm::chip
