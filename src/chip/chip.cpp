#include "chip/chip.hpp"

#include <algorithm>
#include <chrono>

#include "netlist/generators.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"
#include "support/metrics.hpp"
#include "support/parse.hpp"

namespace cfpm::chip {

namespace {

/// The generated macro palette for a block of `bus_bits` inputs: every
/// macro's arity is clamped to fit one block segment, so any macro can bind
/// anywhere in its block. Block slot j uses palette entry j mod size —
/// independent of the block index, which is what makes the library shared
/// chip-wide (each distinct macro is built once, instantiated everywhere).
struct PaletteEntry {
  std::string name;
  netlist::Netlist circuit;
};

std::vector<PaletteEntry> macro_palette(std::size_t bus_bits) {
  CFPM_REQUIRE(bus_bits >= 4);
  const auto clamp = [](std::size_t v, std::size_t hi) {
    return std::max<std::size_t>(1, std::min(v, hi));
  };
  std::vector<PaletteEntry> palette;
  const unsigned add_w =
      static_cast<unsigned>(clamp((bus_bits - 1) / 2, 4));  // arity 2w+1
  palette.push_back({"add" + std::to_string(add_w),
                     netlist::gen::ripple_carry_adder(add_w)});
  const unsigned cmp_w = static_cast<unsigned>(clamp(bus_bits / 2, 4));
  palette.push_back({"cmp" + std::to_string(cmp_w),
                     netlist::gen::magnitude_comparator(cmp_w)});
  const unsigned mux_sel = bus_bits >= 7 ? 2 : 1;  // arity 2^s + s + 1
  palette.push_back({"mux" + std::to_string(mux_sel),
                     netlist::gen::mux_flat(mux_sel)});
  const unsigned par_w = static_cast<unsigned>(clamp(bus_bits, 8));
  palette.push_back({"par" + std::to_string(par_w),
                     netlist::gen::parity_tree(par_w)});
  const unsigned alu_w =
      static_cast<unsigned>(clamp((bus_bits - 2) / 2, 3));  // arity 2w+2
  palette.push_back({"alu" + std::to_string(alu_w),
                     netlist::gen::alu(alu_w)});
  return palette;
}

}  // namespace

ChipSpec ChipSpec::parse(std::string_view text) {
  std::size_t parts[3];
  std::size_t begin = 0;
  for (int p = 0; p < 3; ++p) {
    const std::size_t end =
        p == 2 ? text.size() : text.find('x', begin);
    if (end == std::string_view::npos) {
      throw Error("bad chip spec '" + std::string(text) +
                       "' (expected CxBxM, e.g. 4x6x16)");
    }
    const auto v = parse_number<std::size_t>(text.substr(begin, end - begin));
    if (!v || *v == 0) {
      throw Error("bad chip spec '" + std::string(text) +
                       "' (counts must be positive integers)");
    }
    parts[p] = *v;
    begin = end + 1;
  }
  if (parts[2] < 4) {
    throw Error("bad chip spec '" + std::string(text) +
                     "' (need at least 4 bus bits per block)");
  }
  return ChipSpec{parts[0], parts[1], parts[2]};
}

std::string ChipSpec::to_string() const {
  return std::to_string(blocks) + "x" + std::to_string(macros_per_block) +
         "x" + std::to_string(block_bus_bits);
}

ModelSource make_model_source(const ChipBuildOptions& options) {
  return [options](const netlist::Netlist& n, power::ModelKind kind) {
    power::ModelOptions mo;
    mo.add.max_nodes = options.max_nodes;
    mo.add.degrade = options.degrade;
    mo.add.build_threads = options.build_threads;
    // Fresh governor per macro: a deadline bounds each macro build on its
    // own clock, so one slow macro cannot starve the rest of the library.
    auto governor = std::make_shared<Governor>();
    if (options.deadline_ms) {
      governor->set_deadline(std::chrono::milliseconds(*options.deadline_ms));
    }
    mo.add.dd_config.governor = std::move(governor);
    mo.library = options.library;
    SourcedModel out;
    std::shared_ptr<power::PowerModel> model = power::make_model(kind, n, mo);
    if (const auto* add =
            dynamic_cast<const power::AddPowerModel*>(model.get())) {
      out.build_info = add->build_info();
      out.nodes = add->size();
    }
    out.model = std::move(model);
    return out;
  };
}

bool Chip::degraded() const {
  return std::any_of(library_.begin(), library_.end(),
                     [](const MacroBuildReport& m) { return m.degraded(); });
}

double Chip::subtree_total(const Node& node,
                           std::span<const double> per_leaf) const {
  CFPM_REQUIRE(node.first_leaf + node.num_leaves <= per_leaf.size());
  double total = 0.0;
  for (std::size_t i = 0; i < node.num_leaves; ++i) {
    total += per_leaf[node.first_leaf + i];
  }
  return total;
}

Chip build_chip(const ChipSpec& spec, const ModelSource& source) {
  static const metrics::Counter c_build("chip.build.count");
  static const metrics::Counter c_macros("chip.build.macros");
  static const metrics::Counter c_degraded("chip.build.degraded");
  static const metrics::Histogram h_latency("chip.build.latency_us");
  const metrics::ScopedTimer timer(h_latency);
  c_build.add();

  const auto palette = macro_palette(spec.block_bus_bits);
  const std::size_t kinds = std::min(spec.macros_per_block, palette.size());

  Chip result;
  result.spec_ = spec;

  // Build each distinct macro once (average + bound variants); every block
  // instantiates from this shared library.
  struct BuiltMacro {
    std::shared_ptr<const power::PowerModel> avg;
    std::shared_ptr<const power::PowerModel> bound;
  };
  std::vector<BuiltMacro> built(kinds);
  for (std::size_t k = 0; k < kinds; ++k) {
    SourcedModel avg = source(palette[k].circuit, power::ModelKind::kAddAverage);
    SourcedModel bound =
        source(palette[k].circuit, power::ModelKind::kAddUpperBound);
    CFPM_REQUIRE(avg.model != nullptr && bound.model != nullptr);
    MacroBuildReport report;
    report.name = palette[k].name;
    report.num_inputs = avg.model->num_inputs();
    report.avg_nodes = avg.nodes;
    report.bound_nodes = bound.nodes;
    report.avg_cache_hit = avg.cache_hit;
    report.bound_cache_hit = bound.cache_hit;
    report.avg_info = avg.build_info;
    report.bound_info = bound.build_info;
    result.library_.push_back(std::move(report));
    built[k] = BuiltMacro{std::move(avg.model), std::move(bound.model)};
  }
  c_macros.add(kinds);

  // Tree + instances: DFS order, so leaf k of the tree is instance k of
  // both designs and every subtree's leaves are contiguous.
  result.nodes_.push_back(
      Chip::Node{spec.to_string(), Chip::kNoParent, {}, 0, 0, 0});
  const std::size_t M = spec.block_bus_bits;
  const std::size_t stride =
      std::max<std::size_t>(1, M / spec.macros_per_block);
  for (std::size_t b = 0; b < spec.blocks; ++b) {
    const std::size_t block_index = result.nodes_.size();
    result.nodes_.push_back(Chip::Node{"b" + std::to_string(b), 0, {},
                                       b * spec.macros_per_block, 0, 0});
    result.nodes_[0].children.push_back(block_index);
    for (std::size_t j = 0; j < spec.macros_per_block; ++j) {
      const std::size_t k = j % kinds;
      const std::size_t arity = result.library_[k].num_inputs;
      // Overlapping windows of the block's bus segment: consecutive slots
      // start `stride` bits apart and wrap within the segment, so sibling
      // macros share bus bits (the shared bit is one stream of the chip
      // trace — bound once at block level, never double-sampled).
      const std::size_t start = (j * stride) % M;
      std::vector<std::size_t> map(arity);
      for (std::size_t i = 0; i < arity; ++i) {
        map[i] = b * M + (start + i) % M;
      }
      const std::size_t leaf = b * spec.macros_per_block + j;
      std::string name = "b";
      name += std::to_string(b);
      name += ".m";
      name += std::to_string(j);
      name += '.';
      name += result.library_[k].name;
      result.avg_.add_instance(name, built[k].avg, map);
      result.bound_.add_instance(name, built[k].bound, std::move(map));
      result.library_[k].instances += 1;
      result.nodes_.push_back(
          Chip::Node{name, block_index, {}, leaf, 1, k});
      result.nodes_[block_index].children.push_back(result.nodes_.size() - 1);
      result.nodes_[block_index].num_leaves += 1;
    }
  }
  result.nodes_[0].num_leaves = spec.num_macros();
  if (result.degraded()) c_degraded.add();
  return result;
}

Chip build_chip(const ChipSpec& spec, const ChipBuildOptions& options) {
  return build_chip(spec, make_model_source(options));
}

}  // namespace cfpm::chip
