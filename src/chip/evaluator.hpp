// Streaming sharded trace evaluation for composed designs.
//
// The transition stream is split into fixed-width chunks whose boundaries
// do not depend on the shard count; each chunk accumulates into its own
// slot (per-instance partial totals + chunk peak) with per-shard scratch,
// and slots are reduced in chunk order afterwards. Totals are therefore
// bit-identical for any pool size (the PR 1/6 determinism discipline).
//
// The chip total is defined as the left-fold of the per-leaf totals in
// leaf (DFS) order — the same association Chip::subtree_total uses — so
// composed node totals equal the evaluator's totals bitwise.
#pragma once

#include <cstdint>
#include <vector>

#include "power/rtl.hpp"
#include "sim/sequence.hpp"
#include "support/thread_pool.hpp"

namespace cfpm::chip {

/// Transitions per chunk; fixed so shard boundaries never depend on the
/// pool size.
inline constexpr std::size_t kTraceChunk = 1024;

struct ChipTraceResult {
  /// Left-fold over leaves (in instance order) of per_instance_ff.
  double total_ff = 0.0;
  /// Largest per-transition composed estimate seen on the trace.
  double peak_ff = 0.0;
  std::size_t transitions = 0;
  std::vector<double> per_instance_ff;

  double average_ff() const noexcept {
    return transitions == 0 ? 0.0
                            : total_ff / static_cast<double>(transitions);
  }
};

/// Evaluates `design` over every transition of `trace` (whose width must be
/// >= design.bus_width()), sharded over `pool` (nullptr = serial). The
/// result is bit-identical for any pool size.
ChipTraceResult evaluate_trace(const power::RtlDesign& design,
                               const sim::InputSequence& trace,
                               ThreadPool* pool = nullptr);

}  // namespace cfpm::chip
