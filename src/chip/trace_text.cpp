#include "chip/trace_text.hpp"

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cfpm::chip {

sim::InputSequence read_trace_text(const std::string& path,
                                   std::size_t min_width) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open trace file: " + path);
  std::vector<std::vector<std::uint8_t>> vectors;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::uint8_t> row;
    row.reserve(line.size());
    for (const char c : line) {
      if (c != '0' && c != '1') {
        throw ParseError(path + ":" + std::to_string(line_no) +
                         ": bad trace character '" + std::string(1, c) +
                         "' (expected 0 or 1)");
      }
      row.push_back(c == '1' ? 1 : 0);
    }
    if (!vectors.empty() && row.size() != vectors.front().size()) {
      throw ParseError(path + ":" + std::to_string(line_no) +
                       ": ragged trace row (got " +
                       std::to_string(row.size()) + " bits, expected " +
                       std::to_string(vectors.front().size()) + ")");
    }
    vectors.push_back(std::move(row));
  }
  if (in.bad()) throw IoError("error reading trace file: " + path);
  if (vectors.empty()) throw ParseError(path + ": empty trace");
  if (vectors.front().size() < min_width) {
    throw ParseError(path + ": trace is " +
                     std::to_string(vectors.front().size()) +
                     " bits wide, need at least " + std::to_string(min_width));
  }
  return sim::InputSequence::from_vectors(vectors);
}

void write_trace_text(std::ostream& os, const sim::InputSequence& seq) {
  std::string row(seq.num_inputs(), '0');
  for (std::size_t t = 0; t < seq.length(); ++t) {
    for (std::size_t i = 0; i < seq.num_inputs(); ++i) {
      row[i] = seq.bit(i, t) ? '1' : '0';
    }
    os << row << '\n';
  }
}

}  // namespace cfpm::chip
