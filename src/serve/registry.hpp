// Content-addressed registry of compiled power models — the daemon's cache.
//
// The registry is a read-mostly shared structure: the query path looks a
// ModelId up millions of times; admission (first build of a unique
// netlist+options) is rare. The split follows that shape:
//
//  * Lookups are lock-free. The index — a minimal perfect hash over the
//    admitted primary keys plus a slot-indexed entry table — is an
//    immutable snapshot published through one std::atomic pointer; a reader
//    does an acquire load, two MPH array reads, and a key compare. No
//    mutex, no reference counting, no retries.
//  * Admission takes a mutex, appends the entry to a std::deque (stable
//    addresses; readers of the old snapshot are never invalidated), rebuilds
//    the MPH index offline, and publishes the new snapshot with a release
//    store. Retired snapshots go to a graveyard freed only when the
//    registry dies: admissions are rare and an index is a few words per
//    model, so leaking superseded snapshots until shutdown is cheaper and
//    simpler than hazard pointers or epochs. (A registry serving millions
//    of queries admits what fits in memory anyway — thousands of models —
//    so the graveyard stays kilobytes.)
//
// Collision safety: the 64-bit primary key indexes the MPH; the independent
// 64-bit check hash is compared on every hit. Two distinct contents
// colliding on the primary key is detected (typed error) instead of
// silently serving the wrong macro's model; matching on both halves by
// accident requires a 128-bit collision.
//
// Persistence: save() writes one serialize-v2 model file per entry (each
// carrying its own CRC trailer) plus a CRC-tailed MANIFEST, all via
// atomic_write_file — a crash mid-persist leaves the previous snapshot
// intact. load() warm-starts from such a directory, skipping (and
// counting) entries whose model file is corrupt rather than refusing to
// boot.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "serve/mph.hpp"
#include "serve/service.hpp"

namespace cfpm::serve {

class Registry {
 public:
  struct Entry {
    service::ModelId id;
    std::shared_ptr<const power::PowerModel> model;
    std::string circuit;     ///< display name (stats query)
    std::size_t nodes = 0;   ///< ADD size (0 for non-ADD kinds)
  };

  Registry() = default;
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Lock-free: the model admitted under `id`, or nullptr when absent.
  /// Throws cfpm::Error when the primary key is admitted but the check
  /// hash differs (64-bit content-hash collision — serving would return
  /// the wrong model). Counts `registry.lookup.hit` / `registry.lookup.miss`.
  std::shared_ptr<const power::PowerModel> lookup(
      const service::ModelId& id) const;

  /// Admits a model and republishes the index. Idempotent: re-admitting an
  /// id already present returns false and changes nothing. Throws
  /// cfpm::Error on a primary-key collision (same key, different check) and
  /// cfpm::ContractError on a null model.
  bool admit(Entry entry);

  std::size_t size() const;

  /// Stable snapshot of the admitted entries, in admission order.
  std::vector<Entry> entries() const;

  /// Persists every serializable entry into `dir` (created if missing):
  /// <hex-id>.cfpm model files + MANIFEST, each written atomically.
  /// Entries whose model kind has no serializer (Con/Lin baselines) are
  /// skipped and counted in `serve.persist.skipped`. Failpoint:
  /// `serve.persist`.
  void save(const std::string& dir) const;

  /// Warm-starts from a directory written by save(). Returns the number of
  /// entries admitted. A missing directory or MANIFEST is a cold start
  /// (returns 0); a corrupt MANIFEST (CRC/format) throws ParseError; a
  /// corrupt or missing model file skips that entry and counts it in
  /// `serve.persist.rejected` — a damaged cache degrades to rebuilding,
  /// never to serving damaged bits.
  std::size_t load(const std::string& dir);

 private:
  struct Index {
    Mph mph;
    std::vector<const Entry*> slots;  // slot-indexed, same order as mph
  };

  /// Rebuilds and publishes the index from entries_. Caller holds mutex_.
  void publish_locked();

  mutable std::mutex mutex_;                   // admission path only
  std::deque<Entry> entries_;                  // stable addresses
  std::atomic<const Index*> index_{nullptr};   // lock-free read path
  std::vector<std::unique_ptr<const Index>> graveyard_;  // retired snapshots
};

}  // namespace cfpm::serve
