#include "serve/service.hpp"

#include <charconv>
#include <chrono>
#include <sstream>
#include <utility>

#include "chip/evaluator.hpp"
#include "netlist/bench_io.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm::service {

// ---------------------------------------------------------------------------
// Error classification
// ---------------------------------------------------------------------------

ErrorPayload classify(const std::exception_ptr& error) noexcept {
  ErrorPayload p;
  if (!error) {
    p.code = StatusCode::kInternal;
    p.kind = ErrorKind::kInternal;
    p.message = "classify: empty exception_ptr";
    return p;
  }
  try {
    std::rethrow_exception(error);
  } catch (const UsageError& e) {
    p = {StatusCode::kUsage, ErrorKind::kUsage, e.what()};
  } catch (const ParseError& e) {
    p = {StatusCode::kError, ErrorKind::kParse, e.what()};
  } catch (const IoError& e) {
    p = {StatusCode::kError, ErrorKind::kIo, e.what()};
  } catch (const ResourceError& e) {
    p = {StatusCode::kError, ErrorKind::kResource, e.what()};
  } catch (const DeadlineExceeded& e) {
    p = {StatusCode::kError, ErrorKind::kDeadline, e.what()};
  } catch (const CancelledError& e) {
    p = {StatusCode::kError, ErrorKind::kCancelled, e.what()};
  } catch (const Error& e) {
    // ContractError intentionally folds into kGeneric: it rethrows as
    // cfpm::Error, which every caller treats identically (exit code 1).
    p = {StatusCode::kError, ErrorKind::kGeneric, e.what()};
  } catch (const std::bad_alloc&) {
    p = {StatusCode::kOom, ErrorKind::kOom, "out of memory"};
  } catch (const std::exception& e) {
    p = {StatusCode::kInternal, ErrorKind::kInternal, e.what()};
  } catch (...) {
    p = {StatusCode::kInternal, ErrorKind::kInternal, "unknown exception"};
  }
  return p;
}

void rethrow(const ErrorPayload& payload) {
  switch (payload.kind) {
    case ErrorKind::kUsage:
      throw UsageError(payload.message);
    case ErrorKind::kParse:
      throw ParseError(payload.message);
    case ErrorKind::kIo:
      throw IoError(payload.message);
    case ErrorKind::kResource:
      throw ResourceError(payload.message);
    case ErrorKind::kDeadline:
      throw DeadlineExceeded(payload.message);
    case ErrorKind::kCancelled:
      throw CancelledError(payload.message);
    case ErrorKind::kOom:
      throw std::bad_alloc();
    case ErrorKind::kInternal:
      throw std::runtime_error(payload.message);
    case ErrorKind::kGeneric:
      break;
  }
  throw Error(payload.message);
}

// ---------------------------------------------------------------------------
// Model identity
// ---------------------------------------------------------------------------

std::string ModelId::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[15 - i] = kDigits[(key >> (4 * i)) & 0xf];
    s[31 - i] = kDigits[(check >> (4 * i)) & 0xf];
  }
  return s;
}

std::optional<ModelId> ModelId::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  auto half = [](std::string_view hex) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(hex.data(), hex.data() + hex.size(), v, 16);
    if (ec != std::errc() || ptr != hex.data() + hex.size()) {
      return std::nullopt;
    }
    return v;
  };
  // from_chars accepts uppercase; to_hex emits lowercase only. Reject
  // anything to_hex could not have produced so ids round-trip exactly.
  for (const char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return std::nullopt;
    }
  }
  const auto key = half(text.substr(0, 16));
  const auto check = half(text.substr(16, 16));
  if (!key || !check) return std::nullopt;
  return ModelId{*key, *check};
}

ModelId model_id(const netlist::Netlist& n, const BuildOptions& o) {
  // Canonical content: the .bench serialization is a deterministic function
  // of the netlist (stable signal order, no timestamps), so equal circuits
  // hash equal regardless of how they were loaded (file, generator, wire).
  std::ostringstream text;
  netlist::write_bench(text, n);
  const std::string canon = text.str();

  auto fingerprint = [&](std::uint64_t h) {
    h = fnv1a_64_mix(h, static_cast<std::uint64_t>(o.kind));
    h = fnv1a_64_mix(h, o.max_nodes);
    h = fnv1a_64_mix(h, static_cast<std::uint64_t>(o.order));
    h = fnv1a_64_mix(h, o.reorder_passes);
    h = fnv1a_64_mix(h, o.approximate_during_construction ? 1 : 0);
    // Serial and parallel construction may approximate at different points;
    // parallel results are identical for any thread count >= 2, so only the
    // serial/parallel split is identity-relevant.
    h = fnv1a_64_mix(h, o.build_threads == 1 ? 0 : 1);
    h = fnv1a_64_mix(h, o.characterization_vectors);
    h = fnv1a_64_mix(h, o.characterization_seed);
    return h;
  };
  ModelId id;
  id.key = fingerprint(fnv1a_64(canon));
  id.check = fingerprint(fnv1a_64(canon, /*seed=*/0x9e3779b97f4a7c15ull));
  return id;
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

power::ModelOptions to_model_options(const BuildOptions& o,
                                     const netlist::GateLibrary& library,
                                     std::shared_ptr<Governor> governor) {
  power::ModelOptions mo;
  mo.add.max_nodes = o.max_nodes;
  mo.add.mode = o.kind == power::ModelKind::kAddUpperBound
                    ? dd::ApproxMode::kUpperBound
                    : dd::ApproxMode::kAverage;
  mo.add.order = o.order;
  mo.add.reorder_passes = o.reorder_passes;
  mo.add.approximate_during_construction = o.approximate_during_construction;
  mo.add.degrade = o.degrade;
  mo.add.build_threads = o.build_threads;
  mo.add.cone_retry.max_attempts = o.build_retries + 1;
  if (!governor) governor = std::make_shared<Governor>();
  if (o.deadline_ms) {
    governor->set_deadline(std::chrono::milliseconds(*o.deadline_ms));
  }
  mo.add.dd_config.governor = std::move(governor);
  mo.library = library;
  mo.characterization_vectors = o.characterization_vectors;
  mo.characterization_seed = o.characterization_seed;
  return mo;
}

BuildReply build(const netlist::Netlist& n, power::ModelKind kind,
                 const power::ModelOptions& options) {
  CFPM_TRACE_SPAN("service.build");
  static const metrics::Counter c_build("service.build.count");
  c_build.add();
  BuildReply reply;
  std::shared_ptr<power::PowerModel> model = power::make_model(kind, n, options);
  if (const auto* add = dynamic_cast<const power::AddPowerModel*>(model.get())) {
    reply.build_info = add->build_info();
    reply.model_nodes = add->size();
    if (reply.build_info.outcome != power::BuildOutcome::kClean) {
      reply.status = StatusCode::kDegraded;
    }
  }
  reply.model = std::move(model);
  return reply;
}

BuildReply build(const BuildRequest& request) {
  if (request.api_version != kApiVersion) {
    throw UsageError("unsupported api version " +
                     std::to_string(request.api_version) + " (expected " +
                     std::to_string(kApiVersion) + ")");
  }
  BuildReply reply = build(request.netlist, request.options.kind,
                           to_model_options(request.options));
  reply.id = model_id(request.netlist, request.options);
  return reply;
}

// ---------------------------------------------------------------------------
// Evaluate
// ---------------------------------------------------------------------------

EvalReply evaluate(const power::PowerModel& model, const EvalRequest& request,
                   ThreadPool* pool) {
  if (request.api_version != kApiVersion) {
    throw UsageError("unsupported api version " +
                     std::to_string(request.api_version) + " (expected " +
                     std::to_string(kApiVersion) + ")");
  }
  if (!stats::feasible(request.statistics)) {
    // Deliberately cfpm::Error, not UsageError: this is the message (and
    // exit code 1) the one-shot CLI has always produced for an infeasible
    // workload, and scripts key on it.
    throw Error("infeasible statistics: st must be <= 2*min(sp, 1-sp)");
  }
  stats::MarkovSequenceGenerator gen(request.statistics, request.seed);
  const sim::InputSequence seq =
      gen.generate(model.num_inputs(), request.vectors);
  return evaluate_trace(model, seq, pool);
}

EvalReply evaluate_trace(const power::PowerModel& model,
                         const sim::InputSequence& seq, ThreadPool* pool) {
  CFPM_TRACE_SPAN("service.evaluate");
  static const metrics::Counter c_eval("service.eval.count");
  c_eval.add();
  const power::TraceEstimate est = model.estimate_trace(seq, pool);
  EvalReply reply;
  reply.total_ff = est.total_ff;
  reply.average_ff = est.average_ff();
  reply.peak_ff = est.peak_ff;
  reply.transitions = est.transitions;
  return reply;
}

// ---------------------------------------------------------------------------
// Chip
// ---------------------------------------------------------------------------

cfpm::chip::ChipBuildOptions to_chip_build_options(const ChipRequest& r) {
  cfpm::chip::ChipBuildOptions co;
  co.max_nodes = r.max_nodes;
  co.deadline_ms = r.deadline_ms;
  co.degrade = r.degrade;
  co.build_threads = r.build_threads;
  return co;
}

namespace {

void check_chip_version(std::uint32_t version) {
  if (version != kApiVersion) {
    throw UsageError("unsupported api version " + std::to_string(version) +
                     " (expected " + std::to_string(kApiVersion) + ")");
  }
}

/// A malformed spec string is a request-shape violation: rewrap the chip
/// layer's cfpm::Error as the facade's typed kUsage error (exit code 2).
cfpm::chip::ChipSpec parse_chip_spec(const std::string& text) {
  try {
    return cfpm::chip::ChipSpec::parse(text);
  } catch (const Error& e) {
    throw UsageError(e.what());
  }
}

/// Evaluates both compositions of a built chip over `trace` and assembles
/// the reply — shared by the generated-workload and explicit-trace paths,
/// which is what keeps their breakdowns structurally identical.
ChipReply finish_chip_reply(const cfpm::chip::Chip& c,
                            const sim::InputSequence& trace, ThreadPool* pool) {
  CFPM_TRACE_SPAN("service.chip");
  static const metrics::Counter c_chip("service.chip.count");
  c_chip.add();
  const cfpm::chip::ChipTraceResult avg =
      cfpm::chip::evaluate_trace(c.avg_design(), trace, pool);
  const cfpm::chip::ChipTraceResult bound =
      cfpm::chip::evaluate_trace(c.bound_design(), trace, pool);

  ChipReply reply;
  reply.status = c.degraded() ? StatusCode::kDegraded : StatusCode::kOk;
  reply.spec = c.spec().to_string();
  reply.macros = c.num_macros();
  reply.components = c.num_components();
  reply.bus_bits = c.bus_width();
  reply.transitions = avg.transitions;
  reply.total_ff = avg.total_ff;
  reply.average_ff = avg.average_ff();
  reply.peak_ff = avg.peak_ff;
  reply.bound_total_ff = bound.total_ff;
  reply.bound_peak_ff = bound.peak_ff;
  reply.worst_case_sum_ff = c.sum_of_worst_cases_ff();
  for (const cfpm::chip::MacroBuildReport& m : c.library()) {
    ChipMacroSummary s;
    s.name = m.name;
    s.instances = m.instances;
    s.inputs = m.num_inputs;
    s.avg_nodes = m.avg_nodes;
    s.bound_nodes = m.bound_nodes;
    s.avg_outcome = m.avg_info.outcome;
    s.bound_outcome = m.bound_info.outcome;
    s.cache_hit = m.avg_cache_hit || m.bound_cache_hit;
    reply.cache_hits += (m.avg_cache_hit ? 1u : 0u) + (m.bound_cache_hit ? 1u : 0u);
    reply.library.push_back(std::move(s));
  }
  for (const cfpm::chip::Chip::Node& node : c.nodes()) {
    if (node.parent == cfpm::chip::Chip::kNoParent) continue;
    const double subtotal = c.subtree_total(node, avg.per_instance_ff);
    if (node.is_leaf()) {
      reply.instances.push_back({node.name, subtotal});
    } else {
      reply.blocks.push_back({node.name, subtotal});
    }
  }
  return reply;
}

}  // namespace

ChipReply evaluate_chip(const ChipRequest& request,
                        const cfpm::chip::ModelSource& source,
                        ThreadPool* pool) {
  check_chip_version(request.api_version);
  if (!stats::feasible(request.statistics)) {
    // Same exception type and message as evaluate(): scripts key on it.
    throw Error("infeasible statistics: st must be <= 2*min(sp, 1-sp)");
  }
  const cfpm::chip::ChipSpec spec = parse_chip_spec(request.spec);
  const cfpm::chip::Chip c = cfpm::chip::build_chip(spec, source);
  stats::MarkovSequenceGenerator gen(request.statistics, request.seed);
  const sim::InputSequence trace = gen.generate(c.bus_width(), request.vectors);
  return finish_chip_reply(c, trace, pool);
}

ChipReply evaluate_chip(const ChipRequest& request, ThreadPool* pool) {
  return evaluate_chip(
      request, cfpm::chip::make_model_source(to_chip_build_options(request)),
      pool);
}

ChipReply evaluate_chip_trace(const ChipRequest& request,
                              const sim::InputSequence& trace,
                              ThreadPool* pool) {
  check_chip_version(request.api_version);
  const cfpm::chip::ChipSpec spec = parse_chip_spec(request.spec);
  if (trace.num_inputs() < spec.bus_width()) {
    throw UsageError("trace is " + std::to_string(trace.num_inputs()) +
                     " bits wide; chip " + spec.to_string() + " needs " +
                     std::to_string(spec.bus_width()));
  }
  const cfpm::chip::Chip c = cfpm::chip::build_chip(
      spec, cfpm::chip::make_model_source(to_chip_build_options(request)));
  return finish_chip_reply(c, trace, pool);
}

}  // namespace cfpm::service
