#include "serve/service.hpp"

#include <charconv>
#include <chrono>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm::service {

// ---------------------------------------------------------------------------
// Error classification
// ---------------------------------------------------------------------------

ErrorPayload classify(const std::exception_ptr& error) noexcept {
  ErrorPayload p;
  if (!error) {
    p.code = StatusCode::kInternal;
    p.kind = ErrorKind::kInternal;
    p.message = "classify: empty exception_ptr";
    return p;
  }
  try {
    std::rethrow_exception(error);
  } catch (const UsageError& e) {
    p = {StatusCode::kUsage, ErrorKind::kUsage, e.what()};
  } catch (const ParseError& e) {
    p = {StatusCode::kError, ErrorKind::kParse, e.what()};
  } catch (const IoError& e) {
    p = {StatusCode::kError, ErrorKind::kIo, e.what()};
  } catch (const ResourceError& e) {
    p = {StatusCode::kError, ErrorKind::kResource, e.what()};
  } catch (const DeadlineExceeded& e) {
    p = {StatusCode::kError, ErrorKind::kDeadline, e.what()};
  } catch (const CancelledError& e) {
    p = {StatusCode::kError, ErrorKind::kCancelled, e.what()};
  } catch (const Error& e) {
    // ContractError intentionally folds into kGeneric: it rethrows as
    // cfpm::Error, which every caller treats identically (exit code 1).
    p = {StatusCode::kError, ErrorKind::kGeneric, e.what()};
  } catch (const std::bad_alloc&) {
    p = {StatusCode::kOom, ErrorKind::kOom, "out of memory"};
  } catch (const std::exception& e) {
    p = {StatusCode::kInternal, ErrorKind::kInternal, e.what()};
  } catch (...) {
    p = {StatusCode::kInternal, ErrorKind::kInternal, "unknown exception"};
  }
  return p;
}

void rethrow(const ErrorPayload& payload) {
  switch (payload.kind) {
    case ErrorKind::kUsage:
      throw UsageError(payload.message);
    case ErrorKind::kParse:
      throw ParseError(payload.message);
    case ErrorKind::kIo:
      throw IoError(payload.message);
    case ErrorKind::kResource:
      throw ResourceError(payload.message);
    case ErrorKind::kDeadline:
      throw DeadlineExceeded(payload.message);
    case ErrorKind::kCancelled:
      throw CancelledError(payload.message);
    case ErrorKind::kOom:
      throw std::bad_alloc();
    case ErrorKind::kInternal:
      throw std::runtime_error(payload.message);
    case ErrorKind::kGeneric:
      break;
  }
  throw Error(payload.message);
}

// ---------------------------------------------------------------------------
// Model identity
// ---------------------------------------------------------------------------

std::string ModelId::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[15 - i] = kDigits[(key >> (4 * i)) & 0xf];
    s[31 - i] = kDigits[(check >> (4 * i)) & 0xf];
  }
  return s;
}

std::optional<ModelId> ModelId::from_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  auto half = [](std::string_view hex) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(hex.data(), hex.data() + hex.size(), v, 16);
    if (ec != std::errc() || ptr != hex.data() + hex.size()) {
      return std::nullopt;
    }
    return v;
  };
  // from_chars accepts uppercase; to_hex emits lowercase only. Reject
  // anything to_hex could not have produced so ids round-trip exactly.
  for (const char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return std::nullopt;
    }
  }
  const auto key = half(text.substr(0, 16));
  const auto check = half(text.substr(16, 16));
  if (!key || !check) return std::nullopt;
  return ModelId{*key, *check};
}

ModelId model_id(const netlist::Netlist& n, const BuildOptions& o) {
  // Canonical content: the .bench serialization is a deterministic function
  // of the netlist (stable signal order, no timestamps), so equal circuits
  // hash equal regardless of how they were loaded (file, generator, wire).
  std::ostringstream text;
  netlist::write_bench(text, n);
  const std::string canon = text.str();

  auto fingerprint = [&](std::uint64_t h) {
    h = fnv1a_64_mix(h, static_cast<std::uint64_t>(o.kind));
    h = fnv1a_64_mix(h, o.max_nodes);
    h = fnv1a_64_mix(h, static_cast<std::uint64_t>(o.order));
    h = fnv1a_64_mix(h, o.reorder_passes);
    h = fnv1a_64_mix(h, o.approximate_during_construction ? 1 : 0);
    // Serial and parallel construction may approximate at different points;
    // parallel results are identical for any thread count >= 2, so only the
    // serial/parallel split is identity-relevant.
    h = fnv1a_64_mix(h, o.build_threads == 1 ? 0 : 1);
    h = fnv1a_64_mix(h, o.characterization_vectors);
    h = fnv1a_64_mix(h, o.characterization_seed);
    return h;
  };
  ModelId id;
  id.key = fingerprint(fnv1a_64(canon));
  id.check = fingerprint(fnv1a_64(canon, /*seed=*/0x9e3779b97f4a7c15ull));
  return id;
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

power::ModelOptions to_model_options(const BuildOptions& o,
                                     const netlist::GateLibrary& library,
                                     std::shared_ptr<Governor> governor) {
  power::ModelOptions mo;
  mo.add.max_nodes = o.max_nodes;
  mo.add.mode = o.kind == power::ModelKind::kAddUpperBound
                    ? dd::ApproxMode::kUpperBound
                    : dd::ApproxMode::kAverage;
  mo.add.order = o.order;
  mo.add.reorder_passes = o.reorder_passes;
  mo.add.approximate_during_construction = o.approximate_during_construction;
  mo.add.degrade = o.degrade;
  mo.add.build_threads = o.build_threads;
  mo.add.cone_retry.max_attempts = o.build_retries + 1;
  if (!governor) governor = std::make_shared<Governor>();
  if (o.deadline_ms) {
    governor->set_deadline(std::chrono::milliseconds(*o.deadline_ms));
  }
  mo.add.dd_config.governor = std::move(governor);
  mo.library = library;
  mo.characterization_vectors = o.characterization_vectors;
  mo.characterization_seed = o.characterization_seed;
  return mo;
}

BuildReply build(const netlist::Netlist& n, power::ModelKind kind,
                 const power::ModelOptions& options) {
  CFPM_TRACE_SPAN("service.build");
  static const metrics::Counter c_build("service.build.count");
  c_build.add();
  BuildReply reply;
  std::shared_ptr<power::PowerModel> model = power::make_model(kind, n, options);
  if (const auto* add = dynamic_cast<const power::AddPowerModel*>(model.get())) {
    reply.build_info = add->build_info();
    reply.model_nodes = add->size();
    if (reply.build_info.outcome != power::BuildOutcome::kClean) {
      reply.status = StatusCode::kDegraded;
    }
  }
  reply.model = std::move(model);
  return reply;
}

BuildReply build(const BuildRequest& request) {
  if (request.api_version != kApiVersion) {
    throw UsageError("unsupported api version " +
                     std::to_string(request.api_version) + " (expected " +
                     std::to_string(kApiVersion) + ")");
  }
  BuildReply reply = build(request.netlist, request.options.kind,
                           to_model_options(request.options));
  reply.id = model_id(request.netlist, request.options);
  return reply;
}

// ---------------------------------------------------------------------------
// Evaluate
// ---------------------------------------------------------------------------

EvalReply evaluate(const power::PowerModel& model, const EvalRequest& request,
                   ThreadPool* pool) {
  if (request.api_version != kApiVersion) {
    throw UsageError("unsupported api version " +
                     std::to_string(request.api_version) + " (expected " +
                     std::to_string(kApiVersion) + ")");
  }
  if (!stats::feasible(request.statistics)) {
    // Deliberately cfpm::Error, not UsageError: this is the message (and
    // exit code 1) the one-shot CLI has always produced for an infeasible
    // workload, and scripts key on it.
    throw Error("infeasible statistics: st must be <= 2*min(sp, 1-sp)");
  }
  stats::MarkovSequenceGenerator gen(request.statistics, request.seed);
  const sim::InputSequence seq =
      gen.generate(model.num_inputs(), request.vectors);
  return evaluate_trace(model, seq, pool);
}

EvalReply evaluate_trace(const power::PowerModel& model,
                         const sim::InputSequence& seq, ThreadPool* pool) {
  CFPM_TRACE_SPAN("service.evaluate");
  static const metrics::Counter c_eval("service.eval.count");
  c_eval.add();
  const power::TraceEstimate est = model.estimate_trace(seq, pool);
  EvalReply reply;
  reply.total_ff = est.total_ff;
  reply.average_ff = est.average_ff();
  reply.peak_ff = est.peak_ff;
  reply.transitions = est.transitions;
  return reply;
}

}  // namespace cfpm::service
