// cfpm::service — the unified request/response facade over model
// construction and evaluation.
//
// Before this layer, every front end wired the pipeline by hand: the CLI
// called power::make_model / AddPowerModel::build with its own option
// plumbing, the experiment harness looped estimate_trace itself, and the
// fuzzer sampled AddModelOptions directly. The service facade makes one
// typed entry point out of that — versioned BuildRequest/EvalRequest
// structs in, Reply structs or typed error payloads out — shared verbatim
// by the one-shot CLI, the cfpmd daemon (src/serve/server), and the
// differential fuzzer. Sharing the entry point is what makes the daemon's
// "bit-identical to the CLI" guarantee checkable rather than aspirational:
// both sides execute literally the same code path behind the same structs.
//
// Error taxonomy: failures travel as ErrorPayload{code, kind, message}.
// `code` mirrors the CLI exit-code taxonomy (0 ok, 1 error, 2 usage,
// 3 degraded, 4 out of memory, 5 internal) — the CLI exits with exactly
// these numbers and the wire protocol ships them verbatim. `kind`
// preserves the exception *type* so a payload can be rethrown as the same
// typed exception on the far side of a socket (a remote DeadlineExceeded
// resurfaces as DeadlineExceeded, which is what lets the fault campaign
// treat daemon failures exactly like in-process ones).
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "chip/chip.hpp"
#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "power/add_model.hpp"
#include "power/factory.hpp"
#include "power/power_model.hpp"
#include "sim/sequence.hpp"
#include "stats/markov.hpp"
#include "support/thread_pool.hpp"

namespace cfpm {
class Governor;
}  // namespace cfpm

namespace cfpm::service {

/// Version of the request/response structs (and of the wire protocol that
/// ships them). Requests carrying any other version are rejected with a
/// typed kUsage error instead of being misinterpreted.
inline constexpr std::uint32_t kApiVersion = 1;

// ---------------------------------------------------------------------------
// Status / typed errors
// ---------------------------------------------------------------------------

/// Outcome classes, numerically identical to the CLI exit-code taxonomy.
enum class StatusCode : std::uint32_t {
  kOk = 0,
  kError = 1,     ///< typed runtime failure (parse, io, resource, ...)
  kUsage = 2,     ///< malformed request (bad version, bad field)
  kDegraded = 3,  ///< build completed via the degradation ladder
  kOom = 4,       ///< out of memory
  kInternal = 5,  ///< unexpected std::exception
};

/// The exception type a payload was made from, so rethrow() can resurrect
/// it typed on the other side of a process or socket boundary.
enum class ErrorKind : std::uint32_t {
  kGeneric = 0,   ///< cfpm::Error (and subclasses without their own slot)
  kUsage = 1,     ///< malformed request (no exception type; kUsage code)
  kParse = 2,     ///< cfpm::ParseError
  kIo = 3,        ///< cfpm::IoError
  kResource = 4,  ///< cfpm::ResourceError
  kDeadline = 5,  ///< cfpm::DeadlineExceeded
  kCancelled = 6, ///< cfpm::CancelledError
  kOom = 7,       ///< std::bad_alloc
  kInternal = 8,  ///< any other std::exception
};

/// A failure as data: safe to serialize, map to an exit code, or rethrow.
struct ErrorPayload {
  StatusCode code = StatusCode::kOk;
  ErrorKind kind = ErrorKind::kGeneric;
  std::string message;
};

/// Request-shape violations detected by the facade itself (bad api_version,
/// infeasible statistics, unknown enum value). Maps to exit code 2.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Converts any in-flight exception into its typed payload. Call from a
/// catch block with std::current_exception(), or pass a stored one.
ErrorPayload classify(const std::exception_ptr& error) noexcept;

/// Resurrects the typed exception a payload was classified from (the
/// inverse of classify up to the message; kOom loses its message because
/// std::bad_alloc cannot carry one).
[[noreturn]] void rethrow(const ErrorPayload& payload);

/// Process exit code for a status — the taxonomy is the numeric value.
constexpr int exit_code(StatusCode code) noexcept {
  return static_cast<int>(code);
}

// ---------------------------------------------------------------------------
// Content-addressed model identity
// ---------------------------------------------------------------------------

/// 128-bit content address of a compiled model: `key` indexes the
/// registry's minimal-perfect-hash table, `check` is an independent hash
/// verified on every hit so a 64-bit key collision is rejected (typed
/// error) instead of silently serving the wrong macro's model.
struct ModelId {
  std::uint64_t key = 0;
  std::uint64_t check = 0;

  bool operator==(const ModelId&) const = default;
  /// 32 lowercase hex digits (key then check); the wire/CLI spelling.
  std::string to_hex() const;
  /// Parses to_hex() output; nullopt on anything else.
  static std::optional<ModelId> from_hex(std::string_view text);
};

// ---------------------------------------------------------------------------
// Requests / replies
// ---------------------------------------------------------------------------

/// Build knobs a request may carry — the serializable subset of
/// power::ModelOptions (a governor cannot cross a socket; deadlines travel
/// as milliseconds and are armed server-side). Two requests with equal
/// netlist content and equal *model-shaping* knobs (kind, max_nodes, order,
/// reorder_passes, approximate_during_construction, serial-vs-parallel
/// build, characterization workload) share a ModelId; resilience knobs
/// (degrade, deadline_ms, build_retries) do not shape a clean model and are
/// excluded from the id.
struct BuildOptions {
  power::ModelKind kind = power::ModelKind::kAddAverage;
  std::size_t max_nodes = 1000;
  power::VariableOrder order = power::VariableOrder::kInterleaved;
  unsigned reorder_passes = 2;
  bool approximate_during_construction = true;
  bool degrade = true;
  std::size_t build_threads = 1;
  std::size_t build_retries = 2;
  std::optional<std::size_t> deadline_ms;
  /// Characterized baselines (Con/Lin) only.
  std::size_t characterization_vectors = 10000;
  std::uint64_t characterization_seed = 0xc0ffee;
};

struct BuildRequest {
  std::uint32_t api_version = kApiVersion;
  netlist::Netlist netlist;
  BuildOptions options;
};

struct BuildReply {
  ModelId id;  ///< content address (zero for the rich in-process overload)
  StatusCode status = StatusCode::kOk;  ///< kOk or kDegraded
  std::size_t model_nodes = 0;
  bool cache_hit = false;  ///< set by the registry-backed daemon path
  /// The built model (in-process callers; the daemon keeps it registry-side
  /// and ships only the id + summary over the wire).
  std::shared_ptr<const power::PowerModel> model;
  /// Degradation report for ADD kinds (default-constructed otherwise).
  power::AddModelBuildInfo build_info;
};

/// A (sp, st) workload evaluation: generate `vectors` Markov vectors from
/// `seed` and run one batched estimate_trace pass — the identical recipe
/// the one-shot CLI uses, so daemon and CLI results are bit-identical.
struct EvalRequest {
  std::uint32_t api_version = kApiVersion;
  stats::InputStatistics statistics{0.5, 0.5};
  std::size_t vectors = 10000;
  std::uint64_t seed = 0xcf9e;  ///< the CLI's fixed workload seed
};

struct EvalReply {
  double total_ff = 0.0;
  double average_ff = 0.0;
  double peak_ff = 0.0;
  std::size_t transitions = 0;
  bool cache_hit = false;  ///< daemon path: model came from the registry
  StatusCode status = StatusCode::kOk;
};

/// Build-and-evaluate a composed chip (src/chip) in one request: the
/// daemon's registry serves the macro library, so a repeated spec is all
/// cache hits. Workload is the same seeded Markov recipe as EvalRequest,
/// generated at the chip's full bus width.
struct ChipRequest {
  std::uint32_t api_version = kApiVersion;
  std::string spec = "2x3x12";  ///< "CxBxM" chip topology
  std::size_t max_nodes = 4000;  ///< per-macro node budget (0 = exact)
  bool degrade = true;           ///< §9 ladder per macro
  std::size_t build_threads = 1;
  std::optional<std::size_t> deadline_ms;  ///< per-macro build deadline
  stats::InputStatistics statistics{0.5, 0.5};
  std::size_t vectors = 10000;
  std::uint64_t seed = 0xcf9e;
};

/// One distinct library macro in a chip reply (shared by its instances).
struct ChipMacroSummary {
  std::string name;
  std::size_t instances = 0;
  std::size_t inputs = 0;
  std::size_t avg_nodes = 0;
  std::size_t bound_nodes = 0;
  power::BuildOutcome avg_outcome = power::BuildOutcome::kClean;
  power::BuildOutcome bound_outcome = power::BuildOutcome::kClean;
  bool cache_hit = false;  ///< either variant came from the registry
};

/// A named component total (per-block and per-instance breakdown rows).
struct ChipComponentTotal {
  std::string name;
  double total_ff = 0.0;
};

struct ChipReply {
  StatusCode status = StatusCode::kOk;  ///< kOk, or kDegraded if any macro
                                        ///< took a §9 ladder rung
  std::string spec;
  std::size_t macros = 0;      ///< leaf instances
  std::size_t components = 0;  ///< composite nodes (chip + blocks)
  std::size_t bus_bits = 0;
  std::size_t transitions = 0;
  double total_ff = 0.0;    ///< average-model chip total
  double average_ff = 0.0;  ///< total_ff / transitions
  double peak_ff = 0.0;     ///< average-model worst observed cycle
  double bound_total_ff = 0.0;  ///< conservative composition total
  double bound_peak_ff = 0.0;   ///< composed conservative per-cycle bound
  double worst_case_sum_ff = 0.0;  ///< sum of leaves' global worst cases
  std::size_t cache_hits = 0;  ///< macro model builds served from a cache
  std::vector<ChipMacroSummary> library;
  std::vector<ChipComponentTotal> blocks;     ///< per-block avg totals
  std::vector<ChipComponentTotal> instances;  ///< per-leaf avg totals
};

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Translates wire-shape options into the factory's rich form. `governor`
/// (optional) is attached with the request's deadline armed.
power::ModelOptions to_model_options(
    const BuildOptions& options,
    const netlist::GateLibrary& library = netlist::GateLibrary::standard(),
    std::shared_ptr<Governor> governor = nullptr);

/// Content address of the model a request would build (canonical .bench
/// text of the netlist + the model-shaping option fingerprint).
ModelId model_id(const netlist::Netlist& n, const BuildOptions& options);

/// Builds the requested model. Validates api_version (typed kUsage error),
/// arms a governor deadline when the request carries one, and reports a
/// ladder-degraded build as status kDegraded. Throws typed errors.
BuildReply build(const BuildRequest& request);

/// Rich in-process form for callers that already hold ModelOptions (the
/// fuzzer's sampled scenarios): same construction path, no content id.
BuildReply build(const netlist::Netlist& n, power::ModelKind kind,
                 const power::ModelOptions& options);

/// Evaluates a (sp, st) workload on a model. Validates api_version and
/// workload feasibility (typed errors); sharding over `pool` never changes
/// the bits (PowerModel::estimate_trace contract).
EvalReply evaluate(const power::PowerModel& model, const EvalRequest& request,
                   ThreadPool* pool = nullptr);

/// Evaluates an explicit, caller-supplied trace (the daemon's trace-query
/// path and the experiment harness's per-cell evaluation).
EvalReply evaluate_trace(const power::PowerModel& model,
                         const sim::InputSequence& seq,
                         ThreadPool* pool = nullptr);

/// The request's serializable build knobs as chip-build options.
cfpm::chip::ChipBuildOptions to_chip_build_options(const ChipRequest& request);

/// Builds the chip for `request` through `source` (the daemon substitutes
/// its registry-backed source; make_model_source for in-process callers),
/// generates the seeded Markov workload at the chip bus width, and
/// evaluates both compositions. Sharding over `pool` never changes the
/// bits (chip::evaluate_trace contract). Throws typed errors; status is
/// kDegraded when any macro took a §9 ladder rung.
ChipReply evaluate_chip(const ChipRequest& request,
                        const cfpm::chip::ModelSource& source,
                        ThreadPool* pool = nullptr);

/// In-process form: same path behind the default make_model_source, so the
/// one-shot CLI and the daemon produce bit-identical replies.
ChipReply evaluate_chip(const ChipRequest& request, ThreadPool* pool = nullptr);

/// Explicit-trace form (`cfpm chip --trace`): builds the chip from
/// `request` (its statistics/vectors/seed are ignored) and evaluates both
/// compositions over `trace`, which must span the chip bus.
ChipReply evaluate_chip_trace(const ChipRequest& request,
                              const sim::InputSequence& trace,
                              ThreadPool* pool = nullptr);

}  // namespace cfpm::service
