// Minimal perfect hashing over 64-bit keys (hash-and-displace / CHD).
//
// The model registry is frozen between admissions: a new compiled model is
// admitted rarely (once per unique netlist+options), after which the key set
// is immutable until the next admission. That is the textbook fit for a
// minimal perfect hash (cxxmph's mph_map serves the same frozen-read-mostly
// pattern): rebuild the index offline at admission, then answer every
// query-path lookup with two array reads and zero probing or chaining.
//
// Scheme (CHD with load factor 1): keys are split into n buckets by a first
// hash; buckets are seated largest-first, each searching for a displacement
// d such that h(key, d) lands every member in a still-free slot of [0, n).
// Lookup recomputes bucket -> displacement -> slot. Slots are a permutation
// of [0, n), hence minimal; the caller stores its keys slot-indexed and
// confirms membership by comparing the stored key (an MPH maps *non*-keys
// to arbitrary slots by construction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cfpm::serve {

class Mph {
 public:
  /// Identity-shaped empty hash (every lookup is a miss for the caller,
  /// since there are no slots to verify against).
  Mph() = default;

  /// Builds a minimal perfect hash over `keys`. Keys must be distinct;
  /// throws cfpm::ContractError otherwise. Expected O(n) time.
  static Mph build(std::span<const std::uint64_t> keys);

  std::size_t size() const noexcept { return size_; }

  /// Slot of `key` in [0, size()). For a key that was in the build set this
  /// is its unique slot; for any other key it is some arbitrary valid slot
  /// (or size() when the hash is empty) — the caller must verify the key it
  /// stored at the slot.
  std::size_t slot_of(std::uint64_t key) const noexcept {
    if (size_ == 0) return 0;
    const std::uint64_t b = mix(key, bucket_seed_) % displacement_.size();
    return mix(key, displacement_[b]) % size_;
  }

 private:
  /// One round of splitmix64-style avalanche keyed by `seed`; cheap and
  /// well distributed for the small key sets the registry holds.
  static std::uint64_t mix(std::uint64_t x, std::uint64_t seed) noexcept {
    x += 0x9e3779b97f4a7c15ull + (seed * 0xbf58476d1ce4e5b9ull);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t size_ = 0;
  std::uint64_t bucket_seed_ = 0;
  std::vector<std::uint64_t> displacement_;  // one per bucket
};

}  // namespace cfpm::serve
