#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace cfpm::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw ContractError("Client: bad socket path: " + socket_path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError(std::string("client: socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw IoError("client: cannot connect to " + socket_path + ": " +
                  std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

wire::Frame Client::call(wire::MsgType type, const std::string& payload,
                         wire::MsgType expected_reply) {
  wire::write_frame(fd_, type, payload);
  wire::Frame reply;
  if (!wire::read_frame(fd_, reply)) {
    throw IoError("client: server closed the connection before replying");
  }
  if (reply.type == wire::MsgType::kError) {
    service::rethrow(wire::decode_error(reply.payload));
  }
  if (reply.type != expected_reply) {
    throw ParseError("client: unexpected reply type " +
                     std::to_string(static_cast<unsigned>(reply.type)));
  }
  return reply;
}

service::BuildReply Client::build(const service::BuildRequest& request) {
  const wire::Frame reply =
      call(wire::MsgType::kBuildRequest, wire::encode_build_request(request),
           wire::MsgType::kBuildReply);
  return wire::decode_build_reply(reply.payload);
}

service::EvalReply Client::evaluate(const service::ModelId& id,
                                    const service::EvalRequest& request) {
  const wire::Frame reply =
      call(wire::MsgType::kEvalRequest,
           wire::encode_eval_query({id, request}), wire::MsgType::kEvalReply);
  return wire::decode_eval_reply(reply.payload);
}

service::EvalReply Client::evaluate_trace(const service::ModelId& id,
                                          const sim::InputSequence& trace) {
  wire::TraceQuery query{id, trace};
  const wire::Frame reply =
      call(wire::MsgType::kTraceRequest, wire::encode_trace_query(query),
           wire::MsgType::kTraceReply);
  return wire::decode_eval_reply(reply.payload);
}

service::ChipReply Client::chip(const service::ChipRequest& request) {
  const wire::Frame reply =
      call(wire::MsgType::kChipRequest, wire::encode_chip_request(request),
           wire::MsgType::kChipReply);
  return wire::decode_chip_reply(reply.payload);
}

wire::StatsReply Client::stats() {
  const wire::Frame reply =
      call(wire::MsgType::kStatsRequest, "", wire::MsgType::kStatsReply);
  return wire::decode_stats_reply(reply.payload);
}

std::string Client::ping() {
  const wire::Frame reply = call(wire::MsgType::kPing, "", wire::MsgType::kPong);
  return reply.payload;
}

void Client::shutdown_server() {
  call(wire::MsgType::kShutdownRequest, "", wire::MsgType::kShutdownReply);
}

}  // namespace cfpm::serve
