#include "serve/mph.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace cfpm::serve {

Mph Mph::build(std::span<const std::uint64_t> keys) {
  Mph mph;
  mph.size_ = keys.size();
  if (keys.empty()) return mph;

  {
    std::vector<std::uint64_t> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw ContractError("Mph::build: duplicate key");
    }
  }

  const std::size_t n = keys.size();
  // Load factor 1 on buckets keeps the displacement search short in
  // expectation while the displacement array stays one word per key.
  const std::size_t num_buckets = n;

  // Retry with a fresh bucket seed in the (vanishingly rare) event that a
  // bucket's displacement search stalls: two keys that collide under
  // mix(., d) for every d would need identical avalanche inputs.
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t bucket_seed = 0x5eed5eedull + attempt;
    std::vector<std::vector<std::uint64_t>> buckets(num_buckets);
    for (const std::uint64_t key : keys) {
      buckets[mix(key, bucket_seed) % num_buckets].push_back(key);
    }

    std::vector<std::size_t> order(num_buckets);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return buckets[a].size() > buckets[b].size();
    });

    std::vector<std::uint64_t> displacement(num_buckets, 0);
    std::vector<bool> used(n, false);
    std::vector<std::size_t> placed;
    bool ok = true;
    for (const std::size_t b : order) {
      const std::vector<std::uint64_t>& bucket = buckets[b];
      if (bucket.empty()) continue;
      bool seated = false;
      // Displacements start at 1 so slot_of never reuses the bucket hash.
      for (std::uint64_t d = 1; d < 100000 + 100 * n; ++d) {
        placed.clear();
        bool fits = true;
        for (const std::uint64_t key : bucket) {
          const std::size_t slot = mix(key, d) % n;
          if (used[slot]) {
            fits = false;
            break;
          }
          // Two keys of the same bucket may also collide with each other.
          used[slot] = true;
          placed.push_back(slot);
        }
        if (fits) {
          displacement[b] = d;
          seated = true;
          break;
        }
        for (const std::size_t slot : placed) used[slot] = false;
      }
      if (!seated) {
        ok = false;
        break;
      }
    }
    if (ok) {
      mph.bucket_seed_ = bucket_seed;
      mph.displacement_ = std::move(displacement);
      return mph;
    }
  }
  throw ContractError("Mph::build: could not seat keys (degenerate key set)");
}

}  // namespace cfpm::serve
