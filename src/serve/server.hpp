// cfpmd — the long-lived power-model server.
//
// One process owns a content-addressed Registry of compiled models and
// answers wire-protocol queries over a Unix-domain socket:
//
//   build  -> hash the netlist+options; registry hit returns immediately
//             (serve.cache.hit, zero construction work), miss enqueues one
//             deduplicated async build on the build pool (concurrent
//             requesters of the same id wait on the same job) under the
//             request's governor deadline, with the §9 degradation ladder
//             as fallback. Clean builds are admitted to the registry;
//             degraded results are served to their requester but never
//             cached (a ladder outcome depends on wall clock, so caching
//             one would break the bit-identical replay guarantee).
//   eval   -> (sp, st) workload query against an admitted model — the exact
//             one-shot-CLI recipe (seeded Markov generator + one batched
//             estimate_trace pass), so daemon replies are bit-identical to
//             `cfpm estimate`.
//   trace  -> explicit vector sequence evaluated the same way; request
//             batching rides the estimate_trace fixed-chunk contract.
//   chip   -> builds a composed chip (src/chip) whose macro library is
//             routed through the registry — each distinct macro model is
//             one deduplicated build request, so a repeated spec is all
//             cache hits — then evaluates both compositions on the shared
//             eval pool.
//   stats / ping / shutdown — introspection and lifecycle.
//
// Threading: one thread per connection (requests on a connection are
// processed in order; concurrency comes from concurrent connections), a
// shared eval pool for trace sharding, and a build pool fed through
// ThreadPool::post. Registry lookups on the query path are lock-free.
//
// Shutdown: request_shutdown() is async-signal-safe (an atomic flag plus
// shutdown(2) on the listening socket to wake accept). The drain sequence
// — stop accepting, shut the read side of every live connection, join
// connection threads (in-flight requests complete and their replies are
// written), persist the registry — runs the same way for a client-issued
// shutdown request (exit code 0) and for SIGINT/SIGTERM (exit code 6, see
// the CLI taxonomy).
//
// Failpoints: serve.accept (after a connection is accepted; the connection
// is dropped, counted, and serving continues), serve.build (start of every
// model construction), serve.persist (registry save).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/thread_pool.hpp"

namespace cfpm::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket (sun_path limits
  /// this to ~107 bytes). Created on run(), unlinked on exit.
  std::string socket_path;
  /// Warm-start directory: loaded before accepting, saved on clean
  /// shutdown. Empty disables persistence.
  std::string persist_dir;
  /// Lanes of the shared eval pool (estimate_trace sharding). 0 = hardware.
  std::size_t eval_threads = 1;
  /// Lanes of the build pool (async cache-miss builds). 0 = hardware.
  std::size_t build_pool_threads = 1;
  /// Governor deadline applied to build requests that carry none (0 = no
  /// default deadline).
  std::size_t default_deadline_ms = 0;
  /// Progress log (startup, shutdown, admissions); nullptr = quiet.
  std::ostream* log = nullptr;
};

class Server {
 public:
  /// Exit codes of run(), extending the CLI taxonomy: a client-requested
  /// shutdown is a clean 0; a signal-initiated one exits 6 so scripts can
  /// tell "asked to stop" from "stopped by the operator/supervisor".
  static constexpr int kExitOk = 0;
  static constexpr int kExitSignal = 6;

  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, serves until shutdown, drains, persists; returns the
  /// exit code. Throws IoError when the socket cannot be created.
  int run();

  /// Initiates shutdown; safe from a signal handler (atomic store + one
  /// shutdown(2) syscall) and from any thread. `from_signal` selects the
  /// exit code.
  void request_shutdown(bool from_signal) noexcept;

  const Registry& registry() const { return registry_; }
  const ServerOptions& options() const { return options_; }

 private:
  /// Deduplicated in-flight construction of one model id.
  struct BuildJob {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    service::BuildReply reply;
    std::exception_ptr error;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop();
  void handle_connection(int fd);
  /// Dispatches one decoded frame; returns false when the connection asked
  /// the server to shut down (reply already written).
  bool handle_frame(int fd, const wire::Frame& frame);
  service::BuildReply handle_build(wire::Frame frame);
  /// The registry-backed build path behind handle_build: probe, dedup via
  /// BuildJob, async construction, admission of clean results. handle_chip
  /// calls it once per macro variant, so chip requests populate (and are
  /// served from) the same cache as plain build requests.
  service::BuildReply build_model(service::BuildRequest request);
  service::EvalReply handle_eval(const wire::Frame& frame);
  service::EvalReply handle_trace(const wire::Frame& frame);
  service::ChipReply handle_chip(const wire::Frame& frame);
  wire::StatsReply handle_stats() const;
  /// Looks `id` up, throwing a typed Error miss message shared by eval and
  /// trace paths.
  std::shared_ptr<const power::PowerModel> resolve(const service::ModelId& id,
                                                   bool& cache_hit);
  void persist() noexcept;
  void log(const std::string& line) const;

  ServerOptions options_;
  Registry registry_;
  ThreadPool eval_pool_;
  ThreadPool build_pool_;

  std::mutex jobs_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<BuildJob>> jobs_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_by_signal_{false};
};

/// Runs `server` with SIGINT/SIGTERM wired to
/// request_shutdown(from_signal=true) — the daemon entry point both `cfpmd`
/// and `cfpm serve` share. Previous handlers are restored on return. One
/// server at a time, process-wide.
int run_with_signal_handling(Server& server);

}  // namespace cfpm::serve
