// Blocking wire-protocol client for cfpmd.
//
// One Client owns one connected Unix-socket stream and issues strictly
// request/reply calls on it. Error frames from the daemon are rethrown as
// the typed exception they were classified from on the server (a remote
// DeadlineExceeded lands as DeadlineExceeded here), so caller-side handling
// is identical for the in-process facade and the daemon — which is what the
// serve-roundtrip fuzz oracle and the CLI `query` subcommand rely on.
#pragma once

#include <string>

#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/sequence.hpp"

namespace cfpm::serve {

class Client {
 public:
  /// Connects to the daemon at `socket_path`; throws IoError on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Remote service::build. The reply carries no model object (it lives in
  /// the daemon's registry); address it by reply.id in later queries.
  service::BuildReply build(const service::BuildRequest& request);

  /// Remote (sp, st) workload evaluation of an admitted model.
  service::EvalReply evaluate(const service::ModelId& id,
                              const service::EvalRequest& request);

  /// Remote evaluation of an explicit trace.
  service::EvalReply evaluate_trace(const service::ModelId& id,
                                    const sim::InputSequence& trace);

  /// Remote chip build-and-evaluate: the daemon constructs the spec's
  /// macro library through its registry (reply.cache_hits counts variants
  /// served without construction) and evaluates both compositions.
  service::ChipReply chip(const service::ChipRequest& request);

  wire::StatsReply stats();

  /// Liveness probe; returns the pong payload text.
  std::string ping();

  /// Asks the daemon to drain and exit (its run() returns exit code 0).
  void shutdown_server();

 private:
  /// One request/reply exchange; rethrows daemon error frames typed.
  wire::Frame call(wire::MsgType type, const std::string& payload,
                   wire::MsgType expected_reply);

  int fd_ = -1;
};

}  // namespace cfpm::serve
