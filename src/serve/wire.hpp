// cfpmd wire protocol: length-prefixed, versioned, CRC-checked frames.
//
// A frame is a fixed 16-byte binary header followed by a text payload:
//
//   bytes 0..3   magic "CFPM"
//   bytes 4..5   protocol version (u16 LE) — currently 1
//   bytes 6..7   message type (u16 LE, MsgType)
//   bytes 8..11  payload length (u32 LE)
//   bytes 12..15 CRC-32 of the payload (u32 LE)
//
// The header makes framing self-describing (a reader never scans for
// delimiters and a short read is detected, not misparsed); the CRC rejects
// torn writes from a crashed peer; the version field rejects a client from
// a different release instead of misinterpreting it. Payloads themselves
// are line-oriented text: `field value` lines in fixed order, doubles
// through support/parse format_double (shortest round-trip form), netlists
// and traces as counted byte blocks. Text payloads keep the protocol
// greppable in captures and reuse the repo's hardened number parsing.
//
// Every decode_* throws cfpm::ParseError on malformed input and
// cfpm::Error on a protocol-version mismatch; encode/decode pairs
// round-trip bit-exactly (tested).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/service.hpp"
#include "sim/sequence.hpp"

namespace cfpm::serve::wire {

inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr char kMagic[4] = {'C', 'F', 'P', 'M'};
/// Upper bound on a payload a peer may declare (64 MiB): a corrupt length
/// field must not become an allocation bomb.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class MsgType : std::uint16_t {
  kBuildRequest = 1,
  kBuildReply = 2,
  kEvalRequest = 3,
  kEvalReply = 4,
  kTraceRequest = 5,
  kTraceReply = 6,
  kStatsRequest = 7,
  kStatsReply = 8,
  kPing = 9,
  kPong = 10,
  kShutdownRequest = 11,
  kShutdownReply = 12,
  kError = 13,
  kChipRequest = 14,
  kChipReply = 15,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Serializes a complete frame (header + payload).
std::string encode_frame(MsgType type, std::string_view payload);

/// Parses and validates the 16-byte header; returns the declared payload
/// length via `payload_length`. Throws ParseError on bad magic/length/type
/// and Error on a version mismatch.
MsgType decode_header(std::string_view header, std::uint32_t& payload_length,
                      std::uint32_t& payload_crc);

/// Validates a received payload against the header CRC (ParseError on
/// mismatch — the frame was torn or corrupted in transit).
void check_payload(std::string_view payload, std::uint32_t expected_crc);

// ----- blocking fd transport (Unix socket / pipe) --------------------------

/// Writes one frame to `fd`, looping over partial writes. Throws IoError.
void write_frame(int fd, MsgType type, std::string_view payload);

/// Reads one frame from `fd`. Returns false on clean EOF at a frame
/// boundary (peer closed); throws IoError on mid-frame EOF or read errors,
/// ParseError/Error on header or CRC violations.
bool read_frame(int fd, Frame& out);

// ----- message payload codecs ----------------------------------------------

// Requests carry the service-layer structs; an eval/trace request names its
// model by content id (the daemon resolves it in the registry). Eval and
// trace requests share EvalQuery for the common addressing/deadline fields.

struct EvalQuery {
  service::ModelId id;
  service::EvalRequest request;
};

struct TraceQuery {
  service::ModelId id;
  sim::InputSequence trace{1, 0};
};

struct StatsReply {
  std::uint64_t models = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t builds = 0;
  std::vector<std::string> model_lines;  ///< "<hex-id> <nodes> <circuit>"
};

std::string encode_build_request(const service::BuildRequest& req);
service::BuildRequest decode_build_request(std::string_view payload);

std::string encode_build_reply(const service::BuildReply& reply);
/// The decoded reply carries no model object (the daemon keeps it); only
/// id/status/nodes/cache_hit/outcome cross the wire.
service::BuildReply decode_build_reply(std::string_view payload);

std::string encode_eval_query(const EvalQuery& query);
EvalQuery decode_eval_query(std::string_view payload);

std::string encode_eval_reply(const service::EvalReply& reply);
service::EvalReply decode_eval_reply(std::string_view payload);

std::string encode_trace_query(const TraceQuery& query);
TraceQuery decode_trace_query(std::string_view payload);

std::string encode_stats_reply(const StatsReply& reply);
StatsReply decode_stats_reply(std::string_view payload);

std::string encode_error(const service::ErrorPayload& error);
service::ErrorPayload decode_error(std::string_view payload);

std::string encode_chip_request(const service::ChipRequest& req);
service::ChipRequest decode_chip_request(std::string_view payload);

std::string encode_chip_reply(const service::ChipReply& reply);
service::ChipReply decode_chip_reply(std::string_view payload);

}  // namespace cfpm::serve::wire
