#include "serve/registry.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "power/add_model.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"
#include "support/parse.hpp"

namespace cfpm::serve {

namespace {

constexpr std::string_view kManifestMagic = "cfpm-registry 1";

const metrics::Counter& c_hit() {
  static const metrics::Counter c("registry.lookup.hit");
  return c;
}
const metrics::Counter& c_miss() {
  static const metrics::Counter c("registry.lookup.miss");
  return c;
}

}  // namespace

Registry::~Registry() {
  delete index_.load(std::memory_order_acquire);
  // graveyard_ frees its snapshots via unique_ptr.
}

std::shared_ptr<const power::PowerModel> Registry::lookup(
    const service::ModelId& id) const {
  const Index* idx = index_.load(std::memory_order_acquire);
  if (idx == nullptr || idx->slots.empty()) {
    c_miss().add();
    return nullptr;
  }
  const std::size_t slot = idx->mph.slot_of(id.key);
  const Entry* e = idx->slots[slot];
  if (e->id.key != id.key) {
    c_miss().add();
    return nullptr;
  }
  if (e->id.check != id.check) {
    // Same 64-bit primary key, different content. Serving e->model would
    // hand the requester a model of some other netlist; refuse loudly.
    throw Error("registry: content-hash collision on key " + id.to_hex() +
                " (admitted as " + e->id.to_hex() + ")");
  }
  c_hit().add();
  return e->model;
}

bool Registry::admit(Entry entry) {
  if (!entry.model) throw ContractError("Registry::admit: null model");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.id.key != entry.id.key) continue;
    if (e.id.check == entry.id.check) return false;  // already admitted
    throw Error("registry: content-hash collision on key " +
                entry.id.to_hex() + " (admitted as " + e.id.to_hex() + ")");
  }
  entries_.push_back(std::move(entry));
  publish_locked();
  return true;
}

void Registry::publish_locked() {
  auto idx = std::make_unique<Index>();
  std::vector<std::uint64_t> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.id.key);
  idx->mph = Mph::build(keys);
  idx->slots.resize(entries_.size());
  for (const Entry& e : entries_) {
    idx->slots[idx->mph.slot_of(e.id.key)] = &e;
  }
  const Index* old =
      index_.exchange(idx.release(), std::memory_order_acq_rel);
  if (old != nullptr) {
    // A reader may still be walking the retired snapshot; keep it alive
    // until the registry itself dies (see header).
    graveyard_.emplace_back(old);
  }
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<Registry::Entry> Registry::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

void Registry::save(const std::string& dir) const {
  static const metrics::Counter c_saved("serve.persist.saved");
  static const metrics::Counter c_skipped("serve.persist.skipped");
  CFPM_FAILPOINT("serve.persist");
  const std::vector<Entry> snapshot = entries();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("registry: cannot create persist dir " + dir + ": " +
                  ec.message());
  }
  std::ostringstream manifest;
  manifest << kManifestMagic << "\n";
  for (const Entry& e : snapshot) {
    const auto* add = dynamic_cast<const power::AddPowerModel*>(e.model.get());
    if (add == nullptr) {
      // Con/Lin baselines have no serializer; they rebuild in milliseconds.
      c_skipped.add();
      continue;
    }
    const std::string file = e.id.to_hex() + ".cfpm";
    atomic_write_file(dir + "/" + file,
                      [&](std::ostream& os) { add->save(os); });
    manifest << "model " << e.id.to_hex() << " " << e.nodes << " "
             << e.circuit << "\n";
    c_saved.add();
  }
  const std::string body = manifest.str();
  atomic_write_file(dir + "/MANIFEST", [&](std::ostream& os) {
    os << body << "crc " << Crc32::of(body) << "\n";
  });
}

std::size_t Registry::load(const std::string& dir) {
  static const metrics::Counter c_loaded("serve.persist.loaded");
  static const metrics::Counter c_rejected("serve.persist.rejected");
  std::ifstream manifest(dir + "/MANIFEST");
  if (!manifest) return 0;  // cold start

  std::ostringstream buffer;
  buffer << manifest.rdbuf();
  const std::string text = buffer.str();

  // Split the CRC trailer (last line) from the body it covers.
  const auto trailer_at = text.rfind("crc ");
  if (trailer_at == std::string::npos ||
      (trailer_at != 0 && text[trailer_at - 1] != '\n')) {
    throw ParseError("registry manifest: missing crc trailer");
  }
  const std::string body = text.substr(0, trailer_at);
  std::istringstream trailer(text.substr(trailer_at));
  std::string word;
  std::uint64_t stored_crc = 0;
  if (!(trailer >> word >> stored_crc) || word != "crc" ||
      stored_crc != Crc32::of(body)) {
    throw ParseError("registry manifest: crc mismatch (torn or corrupt)");
  }
  // The trailer is the last line: bytes appended after it escape the CRC,
  // so their presence is itself evidence of tampering or a torn write.
  if (trailer >> word) {
    throw ParseError("registry manifest: trailing bytes after crc trailer");
  }

  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != kManifestMagic) {
    throw ParseError("registry manifest: bad magic");
  }
  std::size_t admitted = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag, hex, circuit;
    std::size_t nodes = 0;
    if (!(fields >> tag >> hex >> nodes) || tag != "model") {
      throw ParseError("registry manifest: bad entry line: " + line);
    }
    fields >> circuit;  // optional trailing name
    const auto id = service::ModelId::from_hex(hex);
    if (!id) throw ParseError("registry manifest: bad model id: " + hex);

    // The model file carries its own serialize-v2 CRC trailer; a damaged
    // file loads as ParseError and the entry is rebuilt on demand instead
    // of being served corrupt.
    std::ifstream in(dir + "/" + hex + ".cfpm");
    if (!in) {
      c_rejected.add();
      continue;
    }
    try {
      auto model = std::make_shared<power::AddPowerModel>(
          power::AddPowerModel::load(in));
      Entry entry;
      entry.id = *id;
      entry.circuit = circuit;
      entry.nodes = nodes;
      entry.model = std::move(model);
      if (admit(std::move(entry))) {
        ++admitted;
        c_loaded.add();
      }
    } catch (const ParseError&) {
      c_rejected.add();
    }
  }
  return admitted;
}

}  // namespace cfpm::serve
