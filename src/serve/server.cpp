#include "serve/server.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <utility>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace cfpm::serve {

namespace {

const metrics::Counter& c_requests() {
  static const metrics::Counter c("serve.request.count");
  return c;
}
const metrics::Counter& c_cache_hit() {
  static const metrics::Counter c("serve.cache.hit");
  return c;
}
const metrics::Counter& c_cache_miss() {
  static const metrics::Counter c("serve.cache.miss");
  return c;
}
const metrics::Counter& c_builds() {
  static const metrics::Counter c("serve.build.count");
  return c;
}

std::uint64_t micros(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      eval_pool_(options_.eval_threads == 0 ? 0 : options_.eval_threads),
      build_pool_(options_.build_pool_threads == 0 ? 0
                                                   : options_.build_pool_threads) {
  if (options_.socket_path.empty()) {
    throw ContractError("Server: socket_path must not be empty");
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw ContractError("Server: socket path longer than sun_path limit: " +
                        options_.socket_path);
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::log(const std::string& line) const {
  if (options_.log == nullptr) return;
  // Connection threads and the build pool log concurrently; one process-wide
  // mutex keeps lines whole (this is a cold path).
  static std::mutex log_mutex;
  std::lock_guard<std::mutex> lock(log_mutex);
  *options_.log << "cfpmd: " << line << "\n" << std::flush;
}

void Server::request_shutdown(bool from_signal) noexcept {
  if (from_signal) stopped_by_signal_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_release);
  // Wake the blocked accept(2). shutdown on a listening socket makes it
  // return immediately; both calls here are async-signal-safe.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

int Server::run() {
  if (!options_.persist_dir.empty()) {
    const std::size_t warm = registry_.load(options_.persist_dir);
    if (warm > 0) {
      log("warm start: " + std::to_string(warm) + " model(s) from " +
          options_.persist_dir);
    }
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError(std::string("cfpmd: socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw IoError("cfpmd: bind " + options_.socket_path + ": " +
                  std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw IoError(std::string("cfpmd: listen: ") + std::strerror(errno));
  }
  log("listening on " + options_.socket_path);

  accept_loop();

  // Drain: no new connections are possible. Shut the read side of every
  // live connection so idle readers see EOF; a thread mid-request finishes
  // it (and its reply write) before exiting.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (!conn->finished.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd, SHUT_RD);
      }
    }
  }
  std::size_t drained = 0;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      if (conn->thread.joinable()) conn->thread.join();
      ++drained;
    }
    connections_.clear();
  }
  log("drained " + std::to_string(drained) + " connection(s)");

  persist();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());

  const bool by_signal = stopped_by_signal_.load(std::memory_order_relaxed);
  log(by_signal ? "shutdown complete (signal)" : "shutdown complete");
  return by_signal ? kExitSignal : kExitOk;
}

void Server::accept_loop() {
  static const metrics::Counter c_accept("serve.accept.count");
  static const metrics::Counter c_accept_error("serve.accept.error");
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) break;
      // EMFILE/ENFILE etc.: transient — drop this attempt, keep serving.
      c_accept_error.add();
      continue;
    }
    try {
      // After accept on purpose: an injected accept fault exercises the
      // "connection dropped before first byte" path the client must handle
      // (EOF -> typed IoError), without wedging the listener.
      CFPM_FAILPOINT("serve.accept");
    } catch (...) {
      c_accept_error.add();
      ::close(fd);
      continue;
    }
    c_accept.add();

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* slot = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      // Reap finished threads so a long-lived daemon does not accumulate
      // one zombie std::thread per past connection.
      std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
        if (!c->finished.load(std::memory_order_acquire)) return false;
        if (c->thread.joinable()) c->thread.join();
        return true;
      });
      connections_.push_back(std::move(conn));
    }
    slot->thread = std::thread([this, slot] {
      handle_connection(slot->fd);
      ::close(slot->fd);
      slot->finished.store(true, std::memory_order_release);
    });
  }
}

void Server::handle_connection(int fd) {
  wire::Frame frame;
  while (true) {
    try {
      if (!wire::read_frame(fd, frame)) return;  // peer closed
    } catch (...) {
      // Framing is broken (torn header, CRC mismatch, version skew): the
      // stream cannot be resynchronized, so report once and hang up.
      try {
        wire::write_frame(fd, wire::MsgType::kError,
                          wire::encode_error(
                              service::classify(std::current_exception())));
      } catch (...) {
      }
      return;
    }
    try {
      if (!handle_frame(fd, frame)) return;
    } catch (const IoError&) {
      return;  // reply write failed; nothing more to say on this socket
    } catch (...) {
      // Request-level failure: the frame was well-formed, so the stream is
      // intact — send the typed payload and keep serving this connection.
      try {
        wire::write_frame(fd, wire::MsgType::kError,
                          wire::encode_error(
                              service::classify(std::current_exception())));
      } catch (...) {
        return;
      }
    }
  }
}

bool Server::handle_frame(int fd, const wire::Frame& frame) {
  c_requests().add();
  switch (frame.type) {
    case wire::MsgType::kBuildRequest: {
      const service::BuildReply reply = handle_build(frame);
      wire::write_frame(fd, wire::MsgType::kBuildReply,
                        wire::encode_build_reply(reply));
      return true;
    }
    case wire::MsgType::kEvalRequest: {
      static const metrics::Histogram h_eval("serve.eval.latency_us");
      Timer timer;
      const service::EvalReply reply = handle_eval(frame);
      h_eval.observe(micros(timer.seconds()));
      wire::write_frame(fd, wire::MsgType::kEvalReply,
                        wire::encode_eval_reply(reply));
      return true;
    }
    case wire::MsgType::kTraceRequest: {
      static const metrics::Histogram h_eval("serve.eval.latency_us");
      Timer timer;
      const service::EvalReply reply = handle_trace(frame);
      h_eval.observe(micros(timer.seconds()));
      wire::write_frame(fd, wire::MsgType::kTraceReply,
                        wire::encode_eval_reply(reply));
      return true;
    }
    case wire::MsgType::kChipRequest: {
      static const metrics::Histogram h_chip("serve.chip.latency_us");
      Timer timer;
      const service::ChipReply reply = handle_chip(frame);
      h_chip.observe(micros(timer.seconds()));
      wire::write_frame(fd, wire::MsgType::kChipReply,
                        wire::encode_chip_reply(reply));
      return true;
    }
    case wire::MsgType::kStatsRequest: {
      wire::write_frame(fd, wire::MsgType::kStatsReply,
                        wire::encode_stats_reply(handle_stats()));
      return true;
    }
    case wire::MsgType::kPing: {
      wire::write_frame(fd, wire::MsgType::kPong,
                        "version " + std::to_string(service::kApiVersion) +
                            "\nmodels " + std::to_string(registry_.size()) +
                            "\n");
      return true;
    }
    case wire::MsgType::kShutdownRequest: {
      wire::write_frame(fd, wire::MsgType::kShutdownReply, "draining 1\n");
      request_shutdown(/*from_signal=*/false);
      return false;
    }
    default:
      throw service::UsageError("cfpmd: unexpected message type " +
                                std::to_string(static_cast<unsigned>(
                                    frame.type)));
  }
}

service::BuildReply Server::handle_build(wire::Frame frame) {
  CFPM_TRACE_SPAN("serve.build_request");
  service::BuildRequest request = wire::decode_build_request(frame.payload);
  if (!request.options.deadline_ms && options_.default_deadline_ms > 0) {
    request.options.deadline_ms = options_.default_deadline_ms;
  }
  return build_model(std::move(request));
}

service::BuildReply Server::build_model(service::BuildRequest request) {
  const service::ModelId id = service::model_id(request.netlist,
                                                request.options);

  // Fast path: lock-free registry probe. A hit performs zero construction
  // work — that is the asserted contract (`serve.cache.hit` rises,
  // `serve.build.count` does not).
  if (auto model = registry_.lookup(id)) {
    c_cache_hit().add();
    service::BuildReply reply;
    reply.id = id;
    reply.cache_hit = true;
    if (const auto* add =
            dynamic_cast<const power::AddPowerModel*>(model.get())) {
      reply.model_nodes = add->size();
    }
    reply.model = std::move(model);
    return reply;
  }
  c_cache_miss().add();

  // Miss: join or create the deduplicated build job for this id, so N
  // concurrent first-requesters cost one construction.
  std::shared_ptr<BuildJob> job;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto [it, inserted] =
        jobs_.try_emplace(id.key, std::make_shared<BuildJob>());
    job = it->second;
    creator = inserted;
    if (creator) {
      // The build may have completed — admission, then job erasure —
      // between our lock-free registry miss and taking jobs_mutex_.
      // Admission strictly precedes erasure, so a second probe under the
      // lock is authoritative: a hit here means a duplicate construction
      // was about to start.
      if (auto model = registry_.lookup(id)) {
        jobs_.erase(id.key);
        c_cache_hit().add();
        service::BuildReply reply;
        reply.id = id;
        reply.cache_hit = true;
        if (const auto* add =
                dynamic_cast<const power::AddPowerModel*>(model.get())) {
          reply.model_nodes = add->size();
        }
        reply.model = std::move(model);
        return reply;
      }
    }
  }
  if (creator) {
    static const metrics::Histogram h_queue("serve.queue.wait_us");
    static const metrics::Histogram h_build("serve.build.latency_us");
    Timer queued;
    // ThreadPool::post swallows an exception that escapes the task wrapper
    // itself (an injected `threadpool.task` fault fires before the closure
    // runs). The job record must complete anyway — a waiter with no
    // completion is a deadlock — so a guard riding in the closure's
    // captures finishes the job with a typed error if the closure is
    // destroyed without ever executing.
    struct DropGuard {
      Server* server;
      std::shared_ptr<BuildJob> job;
      std::uint64_t key;
      DropGuard(Server* server, std::shared_ptr<BuildJob> job,
                std::uint64_t key)
          : server(server), job(std::move(job)), key(key) {}
      // Non-copyable: a copied guard would fire once per copy, and a guard
      // constructed from a temporary fires at end of full expression —
      // completing the job with the drop error while the build is still
      // running (which silently disables build deduplication).
      DropGuard(const DropGuard&) = delete;
      DropGuard& operator=(const DropGuard&) = delete;
      ~DropGuard() {
        bool completed_here = false;
        {
          std::lock_guard<std::mutex> job_lock(job->mutex);
          if (!job->done) {
            job->error = std::make_exception_ptr(Error(
                "cfpmd: build task dropped before execution (injected "
                "fault or pool teardown); retry the request"));
            job->done = true;
            completed_here = true;
          }
        }
        if (!completed_here) return;
        job->done_cv.notify_all();
        std::lock_guard<std::mutex> lock(server->jobs_mutex_);
        server->jobs_.erase(key);
      }
    };
    auto guard = std::make_shared<DropGuard>(this, job, id.key);
    build_pool_.post([this, job, guard, request = std::move(request), id,
                      queued]() mutable {
      h_queue.observe(micros(queued.seconds()));
      service::BuildReply result;
      std::exception_ptr error;
      try {
        CFPM_TRACE_SPAN("serve.build");
        CFPM_FAILPOINT("serve.build");
        Timer building;
        c_builds().add();
        result = service::build(request);
        h_build.observe(micros(building.seconds()));
        if (result.status == service::StatusCode::kOk) {
          Registry::Entry entry;
          entry.id = id;
          entry.model = result.model;
          entry.circuit = request.netlist.name();
          entry.nodes = result.model_nodes;
          registry_.admit(std::move(entry));
          log("admitted " + id.to_hex() + " (" + request.netlist.name() +
              ", " + std::to_string(result.model_nodes) + " nodes)");
        }
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> job_lock(job->mutex);
        job->reply = std::move(result);
        job->error = error;
        job->done = true;
      }
      job->done_cv.notify_all();
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.erase(id.key);
    });
  }
  std::unique_lock<std::mutex> job_lock(job->mutex);
  job->done_cv.wait(job_lock, [&] { return job->done; });
  if (job->error) std::rethrow_exception(job->error);
  return job->reply;
}

std::shared_ptr<const power::PowerModel> Server::resolve(
    const service::ModelId& id, bool& cache_hit) {
  auto model = registry_.lookup(id);
  if (!model) {
    c_cache_miss().add();
    throw Error("cfpmd: model " + id.to_hex() +
                " is not admitted (issue a build request first)");
  }
  c_cache_hit().add();
  cache_hit = true;
  return model;
}

service::EvalReply Server::handle_eval(const wire::Frame& frame) {
  CFPM_TRACE_SPAN("serve.eval_request");
  const wire::EvalQuery query = wire::decode_eval_query(frame.payload);
  bool cache_hit = false;
  const auto model = resolve(query.id, cache_hit);
  service::EvalReply reply = service::evaluate(*model, query.request,
                                               &eval_pool_);
  reply.cache_hit = cache_hit;
  return reply;
}

service::EvalReply Server::handle_trace(const wire::Frame& frame) {
  CFPM_TRACE_SPAN("serve.trace_request");
  const wire::TraceQuery query = wire::decode_trace_query(frame.payload);
  bool cache_hit = false;
  const auto model = resolve(query.id, cache_hit);
  service::EvalReply reply =
      service::evaluate_trace(*model, query.trace, &eval_pool_);
  reply.cache_hit = cache_hit;
  return reply;
}

service::ChipReply Server::handle_chip(const wire::Frame& frame) {
  CFPM_TRACE_SPAN("serve.chip_request");
  service::ChipRequest request = wire::decode_chip_request(frame.payload);
  if (!request.deadline_ms && options_.default_deadline_ms > 0) {
    request.deadline_ms = options_.default_deadline_ms;
  }
  // Each macro variant becomes one ordinary build request through
  // build_model: first-chip misses are built (and admitted) once even under
  // concurrent chip requests, and a repeated spec costs zero construction.
  const chip::ModelSource source = [this, &request](const netlist::Netlist& n,
                                                    power::ModelKind kind) {
    service::BuildRequest br;
    br.netlist = n;
    br.options.kind = kind;
    br.options.max_nodes = request.max_nodes;
    br.options.degrade = request.degrade;
    br.options.build_threads = request.build_threads;
    br.options.deadline_ms = request.deadline_ms;
    service::BuildReply reply = build_model(std::move(br));
    chip::SourcedModel out;
    out.model = reply.model;
    out.build_info = reply.build_info;
    out.nodes = reply.model_nodes;
    out.cache_hit = reply.cache_hit;
    return out;
  };
  return service::evaluate_chip(request, source, &eval_pool_);
}

wire::StatsReply Server::handle_stats() const {
  wire::StatsReply reply;
  const metrics::Snapshot snap = metrics::snapshot();
  reply.hits = snap.counter("serve.cache.hit");
  reply.misses = snap.counter("serve.cache.miss");
  reply.builds = snap.counter("serve.build.count");
  for (const Registry::Entry& e : registry_.entries()) {
    reply.model_lines.push_back(e.id.to_hex() + " " +
                                std::to_string(e.nodes) + " " + e.circuit);
  }
  reply.models = reply.model_lines.size();
  return reply;
}

void Server::persist() noexcept {
  if (options_.persist_dir.empty()) return;
  static const metrics::Counter c_persist_error("serve.persist.error");
  try {
    registry_.save(options_.persist_dir);
    log("persisted " + std::to_string(registry_.size()) + " model(s) to " +
        options_.persist_dir);
  } catch (const std::exception& e) {
    // A failed persist must not turn a clean drain into a crash: the
    // registry rebuilds on demand after a cold start. Log and count.
    c_persist_error.add();
    log(std::string("persist failed: ") + e.what());
  }
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};

void on_shutdown_signal(int) {
  if (Server* s = g_signal_server.load(std::memory_order_acquire)) {
    s->request_shutdown(/*from_signal=*/true);
  }
}

}  // namespace

int run_with_signal_handling(Server& server) {
  struct sigaction sa {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  struct sigaction old_int {}, old_term {};
  g_signal_server.store(&server, std::memory_order_release);
  ::sigaction(SIGINT, &sa, &old_int);
  ::sigaction(SIGTERM, &sa, &old_term);
  const int code = server.run();
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);
  g_signal_server.store(nullptr, std::memory_order_release);
  return code;
}

}  // namespace cfpm::serve
