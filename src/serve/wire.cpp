#include "serve/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace cfpm::serve::wire {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(std::string_view in, std::size_t at) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(in[at]) |
      (static_cast<unsigned char>(in[at + 1]) << 8));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + i]);
  }
  return v;
}

/// Sequential reader over a line-oriented payload with counted byte blocks.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  std::string_view line() {
    if (pos_ >= text_.size()) {
      throw ParseError("wire: truncated payload (expected another line)");
    }
    const auto nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) {
      throw ParseError("wire: unterminated line in payload");
    }
    const std::string_view out = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return out;
  }

  /// Next line must be `key value`; returns `value` (may contain spaces).
  std::string_view field(std::string_view key) {
    const std::string_view l = line();
    if (l.size() <= key.size() || l.substr(0, key.size()) != key ||
        l[key.size()] != ' ') {
      throw ParseError("wire: expected field '" + std::string(key) +
                       "', got '" + std::string(l) + "'");
    }
    return l.substr(key.size() + 1);
  }

  template <typename T>
  T number(std::string_view key) {
    const std::string_view v = field(key);
    const auto parsed = parse_number<T>(v);
    if (!parsed) {
      throw ParseError("wire: bad number for '" + std::string(key) + "': '" +
                       std::string(v) + "'");
    }
    return *parsed;
  }

  /// Raw counted block (no trailing newline is consumed).
  std::string_view bytes(std::size_t n) {
    if (text_.size() - pos_ < n) {
      throw ParseError("wire: truncated payload (counted block)");
    }
    const std::string_view out = text_.substr(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

bool parse_flag(std::string_view v, std::string_view key) {
  if (v == "0") return false;
  if (v == "1") return true;
  throw ParseError("wire: bad flag for '" + std::string(key) + "': '" +
                   std::string(v) + "'");
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string encode_frame(MsgType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw ContractError("wire: payload exceeds kMaxPayload");
  }
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, Crc32::of(payload));
  out.append(payload);
  return out;
}

MsgType decode_header(std::string_view header, std::uint32_t& payload_length,
                      std::uint32_t& payload_crc) {
  if (header.size() < kHeaderSize) {
    throw ParseError("wire: short frame header");
  }
  if (std::memcmp(header.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("wire: bad frame magic");
  }
  const std::uint16_t version = get_u16(header, 4);
  if (version != kProtocolVersion) {
    throw Error("wire: protocol version mismatch (peer " +
                std::to_string(version) + ", this build " +
                std::to_string(kProtocolVersion) + ")");
  }
  const std::uint16_t type = get_u16(header, 6);
  if (type < static_cast<std::uint16_t>(MsgType::kBuildRequest) ||
      type > static_cast<std::uint16_t>(MsgType::kChipReply)) {
    throw ParseError("wire: unknown message type " + std::to_string(type));
  }
  payload_length = get_u32(header, 8);
  if (payload_length > kMaxPayload) {
    throw ParseError("wire: declared payload length " +
                     std::to_string(payload_length) + " exceeds limit");
  }
  payload_crc = get_u32(header, 12);
  return static_cast<MsgType>(type);
}

void check_payload(std::string_view payload, std::uint32_t expected_crc) {
  if (Crc32::of(payload) != expected_crc) {
    throw ParseError("wire: payload crc mismatch (torn or corrupt frame)");
  }
}

void write_frame(int fd, MsgType type, std::string_view payload) {
  const std::string frame = encode_frame(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("wire: write failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

namespace {

/// Reads exactly `n` bytes. Returns false on EOF before the first byte when
/// `eof_ok`; throws IoError on errors or mid-buffer EOF.
bool read_exact(int fd, char* buf, std::size_t n, bool eof_ok) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, buf + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("wire: read failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (off == 0 && eof_ok) return false;
      throw IoError("wire: unexpected EOF mid-frame");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, Frame& out) {
  char header[kHeaderSize];
  if (!read_exact(fd, header, kHeaderSize, /*eof_ok=*/true)) return false;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  out.type = decode_header({header, kHeaderSize}, length, crc);
  out.payload.resize(length);
  if (length > 0) {
    read_exact(fd, out.payload.data(), length, /*eof_ok=*/false);
  }
  check_payload(out.payload, crc);
  return true;
}

// ---------------------------------------------------------------------------
// Build messages
// ---------------------------------------------------------------------------

std::string encode_build_request(const service::BuildRequest& req) {
  std::ostringstream netlist_text;
  netlist::write_bench(netlist_text, req.netlist);
  const std::string bench = netlist_text.str();
  const service::BuildOptions& o = req.options;
  std::ostringstream os;
  os << "version " << req.api_version << "\n"
     << "circuit " << req.netlist.name() << "\n"
     << "kind " << static_cast<unsigned>(o.kind) << "\n"
     << "max-nodes " << o.max_nodes << "\n"
     << "order " << static_cast<unsigned>(o.order) << "\n"
     << "reorder-passes " << o.reorder_passes << "\n"
     << "approx " << (o.approximate_during_construction ? 1 : 0) << "\n"
     << "degrade " << (o.degrade ? 1 : 0) << "\n"
     << "build-threads " << o.build_threads << "\n"
     << "build-retries " << o.build_retries << "\n"
     << "deadline-ms " << (o.deadline_ms ? std::to_string(*o.deadline_ms)
                                         : std::string("none"))
     << "\n"
     << "char-vectors " << o.characterization_vectors << "\n"
     << "char-seed " << o.characterization_seed << "\n"
     << "netlist " << bench.size() << "\n"
     << bench;
  return os.str();
}

service::BuildRequest decode_build_request(std::string_view payload) {
  Reader r(payload);
  service::BuildRequest req;
  req.api_version = r.number<std::uint32_t>("version");
  const std::string circuit(r.field("circuit"));
  service::BuildOptions& o = req.options;
  const auto kind = r.number<unsigned>("kind");
  if (kind > static_cast<unsigned>(power::ModelKind::kLinear)) {
    throw ParseError("wire: unknown model kind " + std::to_string(kind));
  }
  o.kind = static_cast<power::ModelKind>(kind);
  o.max_nodes = r.number<std::size_t>("max-nodes");
  const auto order = r.number<unsigned>("order");
  if (order > static_cast<unsigned>(power::VariableOrder::kBlocked)) {
    throw ParseError("wire: unknown variable order " + std::to_string(order));
  }
  o.order = static_cast<power::VariableOrder>(order);
  o.reorder_passes = r.number<unsigned>("reorder-passes");
  o.approximate_during_construction = parse_flag(r.field("approx"), "approx");
  o.degrade = parse_flag(r.field("degrade"), "degrade");
  o.build_threads = r.number<std::size_t>("build-threads");
  o.build_retries = r.number<std::size_t>("build-retries");
  const std::string_view deadline = r.field("deadline-ms");
  if (deadline != "none") {
    const auto ms = parse_number<std::size_t>(deadline);
    if (!ms) {
      throw ParseError("wire: bad deadline-ms: '" + std::string(deadline) +
                       "'");
    }
    o.deadline_ms = *ms;
  }
  o.characterization_vectors = r.number<std::size_t>("char-vectors");
  o.characterization_seed = r.number<std::uint64_t>("char-seed");
  const std::size_t bench_size = r.number<std::size_t>("netlist");
  std::istringstream bench{std::string(r.bytes(bench_size))};
  req.netlist = netlist::read_bench(bench, circuit);
  return req;
}

std::string encode_build_reply(const service::BuildReply& reply) {
  std::ostringstream os;
  os << "id " << reply.id.to_hex() << "\n"
     << "status " << static_cast<unsigned>(reply.status) << "\n"
     << "nodes " << reply.model_nodes << "\n"
     << "cache-hit " << (reply.cache_hit ? 1 : 0) << "\n"
     << "outcome " << static_cast<unsigned>(reply.build_info.outcome) << "\n"
     << "attempts " << reply.build_info.attempts << "\n";
  return os.str();
}

service::BuildReply decode_build_reply(std::string_view payload) {
  Reader r(payload);
  service::BuildReply reply;
  const std::string_view hex = r.field("id");
  const auto id = service::ModelId::from_hex(hex);
  if (!id) throw ParseError("wire: bad model id: '" + std::string(hex) + "'");
  reply.id = *id;
  const auto status = r.number<unsigned>("status");
  if (status > static_cast<unsigned>(service::StatusCode::kInternal)) {
    throw ParseError("wire: unknown status " + std::to_string(status));
  }
  reply.status = static_cast<service::StatusCode>(status);
  reply.model_nodes = r.number<std::size_t>("nodes");
  reply.cache_hit = parse_flag(r.field("cache-hit"), "cache-hit");
  const auto outcome = r.number<unsigned>("outcome");
  if (outcome > static_cast<unsigned>(power::BuildOutcome::kFallback)) {
    throw ParseError("wire: unknown outcome " + std::to_string(outcome));
  }
  reply.build_info.outcome = static_cast<power::BuildOutcome>(outcome);
  reply.build_info.attempts = r.number<std::size_t>("attempts");
  return reply;
}

// ---------------------------------------------------------------------------
// Eval / trace messages
// ---------------------------------------------------------------------------

std::string encode_eval_query(const EvalQuery& query) {
  std::ostringstream os;
  os << "version " << query.request.api_version << "\n"
     << "id " << query.id.to_hex() << "\n"
     << "sp " << format_double(query.request.statistics.sp) << "\n"
     << "st " << format_double(query.request.statistics.st) << "\n"
     << "vectors " << query.request.vectors << "\n"
     << "seed " << query.request.seed << "\n";
  return os.str();
}

EvalQuery decode_eval_query(std::string_view payload) {
  Reader r(payload);
  EvalQuery q;
  q.request.api_version = r.number<std::uint32_t>("version");
  const std::string_view hex = r.field("id");
  const auto id = service::ModelId::from_hex(hex);
  if (!id) throw ParseError("wire: bad model id: '" + std::string(hex) + "'");
  q.id = *id;
  q.request.statistics.sp = r.number<double>("sp");
  q.request.statistics.st = r.number<double>("st");
  q.request.vectors = r.number<std::size_t>("vectors");
  q.request.seed = r.number<std::uint64_t>("seed");
  return q;
}

std::string encode_eval_reply(const service::EvalReply& reply) {
  std::ostringstream os;
  os << "status " << static_cast<unsigned>(reply.status) << "\n"
     << "cache-hit " << (reply.cache_hit ? 1 : 0) << "\n"
     << "total " << format_double(reply.total_ff) << "\n"
     << "average " << format_double(reply.average_ff) << "\n"
     << "peak " << format_double(reply.peak_ff) << "\n"
     << "transitions " << reply.transitions << "\n";
  return os.str();
}

service::EvalReply decode_eval_reply(std::string_view payload) {
  Reader r(payload);
  service::EvalReply reply;
  const auto status = r.number<unsigned>("status");
  if (status > static_cast<unsigned>(service::StatusCode::kInternal)) {
    throw ParseError("wire: unknown status " + std::to_string(status));
  }
  reply.status = static_cast<service::StatusCode>(status);
  reply.cache_hit = parse_flag(r.field("cache-hit"), "cache-hit");
  reply.total_ff = r.number<double>("total");
  reply.average_ff = r.number<double>("average");
  reply.peak_ff = r.number<double>("peak");
  reply.transitions = r.number<std::size_t>("transitions");
  return reply;
}

std::string encode_trace_query(const TraceQuery& query) {
  const sim::InputSequence& t = query.trace;
  std::string bits;
  bits.reserve(t.length() * t.num_inputs());
  for (std::size_t step = 0; step < t.length(); ++step) {
    for (std::size_t i = 0; i < t.num_inputs(); ++i) {
      bits.push_back(t.bit(i, step) ? '1' : '0');
    }
  }
  std::ostringstream os;
  os << "version " << service::kApiVersion << "\n"
     << "id " << query.id.to_hex() << "\n"
     << "inputs " << t.num_inputs() << "\n"
     << "length " << t.length() << "\n"
     << "bits " << bits.size() << "\n"
     << bits;
  return os.str();
}

TraceQuery decode_trace_query(std::string_view payload) {
  Reader r(payload);
  const auto version = r.number<std::uint32_t>("version");
  if (version != service::kApiVersion) {
    throw service::UsageError("wire: unsupported api version " +
                              std::to_string(version));
  }
  TraceQuery q;
  const std::string_view hex = r.field("id");
  const auto id = service::ModelId::from_hex(hex);
  if (!id) throw ParseError("wire: bad model id: '" + std::string(hex) + "'");
  q.id = *id;
  const std::size_t inputs = r.number<std::size_t>("inputs");
  const std::size_t length = r.number<std::size_t>("length");
  if (inputs == 0) throw ParseError("wire: trace with zero inputs");
  const std::size_t declared = r.number<std::size_t>("bits");
  if (declared != inputs * length) {
    throw ParseError("wire: trace bit count mismatch");
  }
  const std::string_view bits = r.bytes(declared);
  q.trace = sim::InputSequence(inputs, length);
  for (std::size_t step = 0; step < length; ++step) {
    for (std::size_t i = 0; i < inputs; ++i) {
      const char c = bits[step * inputs + i];
      if (c != '0' && c != '1') {
        throw ParseError("wire: trace bit is not 0/1");
      }
      q.trace.set_bit(i, step, c == '1');
    }
  }
  return q;
}

// ---------------------------------------------------------------------------
// Stats / error messages
// ---------------------------------------------------------------------------

std::string encode_stats_reply(const StatsReply& reply) {
  std::ostringstream os;
  os << "models " << reply.models << "\n"
     << "hits " << reply.hits << "\n"
     << "misses " << reply.misses << "\n"
     << "builds " << reply.builds << "\n";
  for (const std::string& line : reply.model_lines) {
    os << "entry " << line << "\n";
  }
  return os.str();
}

StatsReply decode_stats_reply(std::string_view payload) {
  Reader r(payload);
  StatsReply reply;
  reply.models = r.number<std::uint64_t>("models");
  reply.hits = r.number<std::uint64_t>("hits");
  reply.misses = r.number<std::uint64_t>("misses");
  reply.builds = r.number<std::uint64_t>("builds");
  for (std::uint64_t i = 0; i < reply.models; ++i) {
    reply.model_lines.emplace_back(r.field("entry"));
  }
  return reply;
}

std::string encode_error(const service::ErrorPayload& error) {
  std::ostringstream os;
  os << "code " << static_cast<unsigned>(error.code) << "\n"
     << "kind " << static_cast<unsigned>(error.kind) << "\n"
     << "message " << error.message.size() << "\n"
     << error.message;
  return os.str();
}

service::ErrorPayload decode_error(std::string_view payload) {
  Reader r(payload);
  service::ErrorPayload error;
  const auto code = r.number<unsigned>("code");
  if (code > static_cast<unsigned>(service::StatusCode::kInternal)) {
    throw ParseError("wire: unknown status " + std::to_string(code));
  }
  error.code = static_cast<service::StatusCode>(code);
  const auto kind = r.number<unsigned>("kind");
  if (kind > static_cast<unsigned>(service::ErrorKind::kInternal)) {
    throw ParseError("wire: unknown error kind " + std::to_string(kind));
  }
  error.kind = static_cast<service::ErrorKind>(kind);
  const std::size_t size = r.number<std::size_t>("message");
  error.message = std::string(r.bytes(size));
  return error;
}

// ---------------------------------------------------------------------------
// Chip messages
// ---------------------------------------------------------------------------

namespace {

/// Splits a field value into exactly `n` space-separated tokens. Chip
/// component names are generated ("b2.m1.add5") and never contain spaces,
/// so whitespace tokenization is unambiguous.
std::vector<std::string_view> tokens(std::string_view v, std::size_t n,
                                     std::string_view key) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= v.size() && out.size() < n) {
    const std::size_t sp = out.size() + 1 == n ? std::string_view::npos
                                               : v.find(' ', pos);
    if (sp == std::string_view::npos) {
      out.push_back(v.substr(pos));
      pos = v.size() + 1;
    } else {
      out.push_back(v.substr(pos, sp - pos));
      pos = sp + 1;
    }
  }
  if (out.size() != n || out.back().empty() ||
      out.back().find(' ') != std::string_view::npos) {
    throw ParseError("wire: expected " + std::to_string(n) + " tokens in '" +
                     std::string(key) + "' line");
  }
  return out;
}

template <typename T>
T token_number(std::string_view v, std::string_view key) {
  const auto parsed = parse_number<T>(v);
  if (!parsed) {
    throw ParseError("wire: bad number in '" + std::string(key) + "' line: '" +
                     std::string(v) + "'");
  }
  return *parsed;
}

power::BuildOutcome token_outcome(std::string_view v, std::string_view key) {
  const auto raw = token_number<unsigned>(v, key);
  if (raw > static_cast<unsigned>(power::BuildOutcome::kFallback)) {
    throw ParseError("wire: unknown outcome " + std::to_string(raw));
  }
  return static_cast<power::BuildOutcome>(raw);
}

}  // namespace

std::string encode_chip_request(const service::ChipRequest& req) {
  std::ostringstream os;
  os << "version " << req.api_version << "\n"
     << "spec " << req.spec << "\n"
     << "max-nodes " << req.max_nodes << "\n"
     << "degrade " << (req.degrade ? 1 : 0) << "\n"
     << "build-threads " << req.build_threads << "\n"
     << "deadline-ms " << (req.deadline_ms ? std::to_string(*req.deadline_ms)
                                           : std::string("none"))
     << "\n"
     << "sp " << format_double(req.statistics.sp) << "\n"
     << "st " << format_double(req.statistics.st) << "\n"
     << "vectors " << req.vectors << "\n"
     << "seed " << req.seed << "\n";
  return os.str();
}

service::ChipRequest decode_chip_request(std::string_view payload) {
  Reader r(payload);
  service::ChipRequest req;
  req.api_version = r.number<std::uint32_t>("version");
  req.spec = std::string(r.field("spec"));
  req.max_nodes = r.number<std::size_t>("max-nodes");
  req.degrade = parse_flag(r.field("degrade"), "degrade");
  req.build_threads = r.number<std::size_t>("build-threads");
  const std::string_view deadline = r.field("deadline-ms");
  if (deadline != "none") {
    const auto ms = parse_number<std::size_t>(deadline);
    if (!ms) {
      throw ParseError("wire: bad deadline-ms: '" + std::string(deadline) +
                       "'");
    }
    req.deadline_ms = *ms;
  }
  req.statistics.sp = r.number<double>("sp");
  req.statistics.st = r.number<double>("st");
  req.vectors = r.number<std::size_t>("vectors");
  req.seed = r.number<std::uint64_t>("seed");
  return req;
}

std::string encode_chip_reply(const service::ChipReply& reply) {
  std::ostringstream os;
  os << "status " << static_cast<unsigned>(reply.status) << "\n"
     << "spec " << reply.spec << "\n"
     << "macros " << reply.macros << "\n"
     << "components " << reply.components << "\n"
     << "bus-bits " << reply.bus_bits << "\n"
     << "transitions " << reply.transitions << "\n"
     << "total " << format_double(reply.total_ff) << "\n"
     << "average " << format_double(reply.average_ff) << "\n"
     << "peak " << format_double(reply.peak_ff) << "\n"
     << "bound-total " << format_double(reply.bound_total_ff) << "\n"
     << "bound-peak " << format_double(reply.bound_peak_ff) << "\n"
     << "worst-sum " << format_double(reply.worst_case_sum_ff) << "\n"
     << "cache-hits " << reply.cache_hits << "\n"
     << "library " << reply.library.size() << "\n";
  for (const service::ChipMacroSummary& m : reply.library) {
    os << "macro " << m.name << " " << m.instances << " " << m.inputs << " "
       << m.avg_nodes << " " << m.bound_nodes << " "
       << static_cast<unsigned>(m.avg_outcome) << " "
       << static_cast<unsigned>(m.bound_outcome) << " "
       << (m.cache_hit ? 1 : 0) << "\n";
  }
  os << "blocks " << reply.blocks.size() << "\n";
  for (const service::ChipComponentTotal& b : reply.blocks) {
    os << "block " << b.name << " " << format_double(b.total_ff) << "\n";
  }
  os << "instances " << reply.instances.size() << "\n";
  for (const service::ChipComponentTotal& i : reply.instances) {
    os << "instance " << i.name << " " << format_double(i.total_ff) << "\n";
  }
  return os.str();
}

service::ChipReply decode_chip_reply(std::string_view payload) {
  Reader r(payload);
  service::ChipReply reply;
  const auto status = r.number<unsigned>("status");
  if (status > static_cast<unsigned>(service::StatusCode::kInternal)) {
    throw ParseError("wire: unknown status " + std::to_string(status));
  }
  reply.status = static_cast<service::StatusCode>(status);
  reply.spec = std::string(r.field("spec"));
  reply.macros = r.number<std::size_t>("macros");
  reply.components = r.number<std::size_t>("components");
  reply.bus_bits = r.number<std::size_t>("bus-bits");
  reply.transitions = r.number<std::size_t>("transitions");
  reply.total_ff = r.number<double>("total");
  reply.average_ff = r.number<double>("average");
  reply.peak_ff = r.number<double>("peak");
  reply.bound_total_ff = r.number<double>("bound-total");
  reply.bound_peak_ff = r.number<double>("bound-peak");
  reply.worst_case_sum_ff = r.number<double>("worst-sum");
  reply.cache_hits = r.number<std::size_t>("cache-hits");
  const std::size_t library = r.number<std::size_t>("library");
  for (std::size_t i = 0; i < library; ++i) {
    const auto t = tokens(r.field("macro"), 8, "macro");
    service::ChipMacroSummary m;
    m.name = std::string(t[0]);
    m.instances = token_number<std::size_t>(t[1], "macro");
    m.inputs = token_number<std::size_t>(t[2], "macro");
    m.avg_nodes = token_number<std::size_t>(t[3], "macro");
    m.bound_nodes = token_number<std::size_t>(t[4], "macro");
    m.avg_outcome = token_outcome(t[5], "macro");
    m.bound_outcome = token_outcome(t[6], "macro");
    m.cache_hit = parse_flag(t[7], "macro");
    reply.library.push_back(std::move(m));
  }
  const std::size_t blocks = r.number<std::size_t>("blocks");
  for (std::size_t i = 0; i < blocks; ++i) {
    const auto t = tokens(r.field("block"), 2, "block");
    reply.blocks.push_back(
        {std::string(t[0]), token_number<double>(t[1], "block")});
  }
  const std::size_t instances = r.number<std::size_t>("instances");
  for (std::size_t i = 0; i < instances; ++i) {
    const auto t = tokens(r.field("instance"), 2, "instance");
    reply.instances.push_back(
        {std::string(t[0]), token_number<double>(t[1], "instance")});
  }
  return reply;
}

}  // namespace cfpm::serve::wire
