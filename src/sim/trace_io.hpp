// Value Change Dump (VCD) export of simulation traces.
//
// Dumps an input workload -- and, when a simulator is supplied, every
// internal signal's zero-delay value -- as an IEEE-1364 VCD file that any
// waveform viewer (GTKWave & friends) can open. One timestep per input
// vector; only changes are emitted, per the format.
#pragma once

#include <iosfwd>

#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"
#include "sim/simulator.hpp"

namespace cfpm::sim {

struct VcdOptions {
  /// Emitted in the header ("1ns" per vector by default).
  const char* timescale = "1ns";
  /// Dump internal gate outputs too (requires a simulator in write_vcd).
  bool include_internal = true;
};

/// Writes the workload `seq` applied to `n`. When `simulator` is non-null
/// (and options.include_internal), internal signal values are dumped as
/// well. Throws cfpm::Error on stream failure.
void write_vcd(std::ostream& os, const netlist::Netlist& n,
               const InputSequence& seq,
               const GateLevelSimulator* simulator = nullptr,
               const VcdOptions& options = {});

}  // namespace cfpm::sim
