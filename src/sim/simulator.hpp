// Zero-delay gate-level simulator (the paper's golden model).
//
// At zero delay the only structural power phenomenon is the charging of a
// gate's load capacitance on a rising output transition (Eq. 1-3). The
// simulator evaluates a netlist over 64 parallel one-bit lanes and reports
// the exact switching capacitance per input transition. This is the
// reference against which every RTL power model is judged, and also the
// data source for characterizing the Con/Lin baselines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace cfpm::sim {

/// Per-sequence energy accounting, all in femtofarads of switched
/// capacitance (multiply by Vdd^2 for energy, Eq. 1).
struct SequenceEnergy {
  std::vector<double> per_transition_ff;  ///< C(x^t, x^{t+1}) for every t
  double total_ff = 0.0;
  double peak_ff = 0.0;

  double average_ff() const {
    return per_transition_ff.empty()
               ? 0.0
               : total_ff / static_cast<double>(per_transition_ff.size());
  }
};

class GateLevelSimulator {
 public:
  /// Loads are taken per signal, typically from Netlist::annotate_loads().
  GateLevelSimulator(const netlist::Netlist& n, std::vector<double> loads_ff);

  /// Convenience: annotates loads from `lib`.
  GateLevelSimulator(const netlist::Netlist& n, const netlist::GateLibrary& lib);

  const netlist::Netlist& circuit() const noexcept { return netlist_; }
  std::span<const double> loads_ff() const noexcept { return loads_; }

  /// Worst case: every gate output rises (sum of all gate loads).
  double total_gate_load_ff() const noexcept { return total_gate_load_; }

  /// Evaluates all signals for 64 packed input patterns.
  /// `input_words[i]` carries input i of all lanes; `signal_words` must have
  /// num_signals() entries and receives every signal's lanes.
  void eval_words(std::span<const std::uint64_t> input_words,
                  std::span<std::uint64_t> signal_words) const;

  /// Scalar single-vector evaluation; returns all signal values.
  std::vector<std::uint8_t> eval(std::span<const std::uint8_t> inputs) const;

  /// Exact switching capacitance (fF) of one transition x^i -> x^f (Eq. 2).
  double switching_capacitance_ff(std::span<const std::uint8_t> xi,
                                  std::span<const std::uint8_t> xf) const;

  /// Simulates a full vector sequence; one capacitance per transition.
  SequenceEnergy simulate(const InputSequence& seq) const;

 private:
  const netlist::Netlist& netlist_;
  std::vector<double> loads_;
  double total_gate_load_ = 0.0;
};

}  // namespace cfpm::sim
