#include "sim/unit_delay.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace cfpm::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

DelayModel DelayModel::unit() {
  DelayModel m;
  for (std::size_t i = 0; i < netlist::kNumGateTypes; ++i) {
    m.delay_[i] = 1;
  }
  m.delay_[static_cast<std::size_t>(GateType::kConst0)] = 0;
  m.delay_[static_cast<std::size_t>(GateType::kConst1)] = 0;
  return m;
}

DelayModel DelayModel::standard() {
  DelayModel m = unit();
  m.set_delay(GateType::kBuf, 1);
  m.set_delay(GateType::kNot, 1);
  m.set_delay(GateType::kAnd, 2);
  m.set_delay(GateType::kNand, 2);
  m.set_delay(GateType::kOr, 2);
  m.set_delay(GateType::kNor, 2);
  m.set_delay(GateType::kXor, 3);
  m.set_delay(GateType::kXnor, 3);
  return m;
}

UnitDelaySimulator::UnitDelaySimulator(const Netlist& n,
                                       std::vector<double> loads_ff,
                                       DelayModel delays)
    : netlist_(n), loads_(std::move(loads_ff)), delays_(delays) {
  CFPM_REQUIRE(loads_.size() == n.num_signals());
  fanouts_ = n.fanouts();
}

UnitDelaySimulator::UnitDelaySimulator(const Netlist& n,
                                       const netlist::GateLibrary& lib,
                                       DelayModel delays)
    : UnitDelaySimulator(n, n.annotate_loads(lib), delays) {}

void UnitDelaySimulator::settle(std::span<const std::uint8_t> inputs,
                                std::vector<std::uint8_t>& values) const {
  CFPM_REQUIRE(inputs.size() == netlist_.num_inputs());
  values.resize(netlist_.num_signals());
  std::size_t next_input = 0;
  std::vector<std::uint8_t> fanin_vals;
  for (SignalId s = 0; s < netlist_.num_signals(); ++s) {
    const auto& sig = netlist_.signal(s);
    if (sig.is_input) {
      values[s] = inputs[next_input++] ? 1 : 0;
      continue;
    }
    fanin_vals.clear();
    for (SignalId f : netlist_.fanins(s)) fanin_vals.push_back(values[f]);
    values[s] = netlist::eval_gate(sig.type, fanin_vals) ? 1 : 0;
  }
}

GlitchBreakdown UnitDelaySimulator::switching_capacitance_ff(
    std::span<const std::uint8_t> xi, std::span<const std::uint8_t> xf) const {
  CFPM_REQUIRE(xi.size() == netlist_.num_inputs());
  CFPM_REQUIRE(xf.size() == netlist_.num_inputs());

  // Start from the x^i steady state.
  std::vector<std::uint8_t> value;
  settle(xi, value);
  std::vector<std::uint8_t> initial = value;

  // Event queue keyed by time; each event re-evaluates one gate.
  // std::map keeps the wheel sparse and deterministic.
  std::map<unsigned, std::vector<SignalId>> wheel;

  auto schedule_fanouts = [&](SignalId s, unsigned now) {
    for (SignalId g : fanouts_[s]) {
      const unsigned when = now + delays_.delay(netlist_.signal(g).type);
      wheel[when].push_back(g);
    }
  };

  GlitchBreakdown result;

  // Apply the input change at t = 0.
  std::size_t idx = 0;
  for (SignalId s : netlist_.inputs()) {
    const std::uint8_t nv = xf[idx++] ? 1 : 0;
    if (nv != value[s]) {
      value[s] = nv;
      schedule_fanouts(s, 0);
    }
  }

  std::vector<std::uint8_t> fanin_vals;
  std::vector<std::pair<SignalId, std::uint8_t>> commits;
  while (!wheel.empty()) {
    const auto it = wheel.begin();
    const unsigned now = it->first;
    std::vector<SignalId> batch = std::move(it->second);
    wheel.erase(it);
    // De-duplicate same-time evaluations of one gate.
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
    // Two-phase semantics: every gate scheduled at `now` observes the
    // pre-batch values, then all changes commit simultaneously --
    // otherwise same-time hazards would silently cancel.
    commits.clear();
    for (SignalId g : batch) {
      const auto& sig = netlist_.signal(g);
      fanin_vals.clear();
      for (SignalId f : netlist_.fanins(g)) fanin_vals.push_back(value[f]);
      const std::uint8_t nv = netlist::eval_gate(sig.type, fanin_vals) ? 1 : 0;
      if (nv != value[g]) commits.emplace_back(g, nv);
    }
    for (const auto& [g, nv] : commits) {
      if (nv == 1) result.total_ff += loads_[g];  // rising edge, maybe a glitch
      value[g] = nv;
      schedule_fanouts(g, now);
    }
    // Safety net against (impossible for a DAG) runaway oscillation.
    CFPM_ASSERT(now < 1u << 20);
  }

  // Functional part: rising transitions implied by the steady states alone
  // (exactly the paper's zero-delay structural consumption, Eq. 2/3).
  for (SignalId s = 0; s < netlist_.num_signals(); ++s) {
    if (netlist_.signal(s).is_input) continue;
    if (initial[s] == 0 && value[s] == 1) result.functional_ff += loads_[s];
  }
  CFPM_ASSERT(result.total_ff + 1e-9 >= result.functional_ff);
  return result;
}

SequenceEnergy UnitDelaySimulator::simulate(const InputSequence& seq) const {
  CFPM_REQUIRE(seq.num_inputs() == netlist_.num_inputs());
  SequenceEnergy energy;
  const std::size_t transitions = seq.num_transitions();
  energy.per_transition_ff.reserve(transitions);
  std::vector<std::uint8_t> xi(seq.num_inputs()), xf(seq.num_inputs());
  for (std::size_t t = 0; t < transitions; ++t) {
    seq.vector_at(t, xi);
    seq.vector_at(t + 1, xf);
    const GlitchBreakdown b = switching_capacitance_ff(xi, xf);
    energy.per_transition_ff.push_back(b.total_ff);
    energy.total_ff += b.total_ff;
    energy.peak_ff = std::max(energy.peak_ff, b.total_ff);
  }
  return energy;
}

GlitchBreakdown UnitDelaySimulator::simulate_breakdown(
    const InputSequence& seq) const {
  CFPM_REQUIRE(seq.num_inputs() == netlist_.num_inputs());
  GlitchBreakdown acc;
  std::vector<std::uint8_t> xi(seq.num_inputs()), xf(seq.num_inputs());
  for (std::size_t t = 0; t + 1 < seq.length(); ++t) {
    seq.vector_at(t, xi);
    seq.vector_at(t + 1, xf);
    const GlitchBreakdown b = switching_capacitance_ff(xi, xf);
    acc.total_ff += b.total_ff;
    acc.functional_ff += b.functional_ff;
  }
  return acc;
}

}  // namespace cfpm::sim
