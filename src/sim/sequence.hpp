// Bit-packed input vector sequences.
//
// A sequence of T vectors over n inputs is stored as one bitstream per
// input: bit t of stream i is the value of input i at time t. This layout
// lets the simulator process 64 consecutive transitions per machine word
// and lets workload generators append vectors cheaply.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace cfpm::sim {

class InputSequence {
 public:
  InputSequence(std::size_t num_inputs, std::size_t length)
      : num_inputs_(num_inputs),
        length_(length),
        words_per_input_((length + 63) / 64),
        bits_(num_inputs * words_per_input_, 0) {
    CFPM_REQUIRE(num_inputs >= 1);
  }

  std::size_t num_inputs() const noexcept { return num_inputs_; }
  /// Number of vectors (timesteps). Transitions = length() - 1.
  std::size_t length() const noexcept { return length_; }
  std::size_t num_transitions() const noexcept {
    return length_ == 0 ? 0 : length_ - 1;
  }

  bool bit(std::size_t input, std::size_t t) const {
    CFPM_ASSERT(input < num_inputs_ && t < length_);
    return (word(input, t / 64) >> (t % 64)) & 1u;
  }

  void set_bit(std::size_t input, std::size_t t, bool v) {
    CFPM_ASSERT(input < num_inputs_ && t < length_);
    std::uint64_t& w = bits_[input * words_per_input_ + t / 64];
    const std::uint64_t mask = std::uint64_t{1} << (t % 64);
    w = v ? (w | mask) : (w & ~mask);
  }

  /// Word `k` of input `i`'s stream (timesteps 64k .. 64k+63).
  std::uint64_t word(std::size_t input, std::size_t k) const {
    CFPM_ASSERT(input < num_inputs_ && k < words_per_input_);
    return bits_[input * words_per_input_ + k];
  }

  std::size_t words_per_input() const noexcept { return words_per_input_; }

  /// 64 consecutive timesteps of input `i` starting at `t` (bit k = value
  /// at time t + k), zero-padded past length(). This is the gather primitive
  /// of the bit-parallel trace evaluator: one call replaces 64 bit() reads.
  std::uint64_t window64(std::size_t input, std::size_t t) const {
    CFPM_ASSERT(input < num_inputs_ && t < length_);
    const std::size_t k = t / 64;
    const std::size_t s = t % 64;
    std::uint64_t w = word(input, k) >> s;
    if (s != 0 && k + 1 < words_per_input_) {
      w |= word(input, k + 1) << (64 - s);
    }
    return w;
  }

  /// Copies vector `t` into `out[0..num_inputs)` (one byte per input).
  void vector_at(std::size_t t, std::span<std::uint8_t> out) const {
    CFPM_REQUIRE(out.size() >= num_inputs_);
    for (std::size_t i = 0; i < num_inputs_; ++i) {
      out[i] = bit(i, t) ? 1 : 0;
    }
  }

  /// Builds a sequence from explicit vectors (vectors[t][i], tests mostly).
  static InputSequence from_vectors(
      const std::vector<std::vector<std::uint8_t>>& vectors);

  // ----- empirical statistics ----------------------------------------------

  /// Average signal probability over all inputs and timesteps.
  double signal_probability() const;
  /// Average per-transition toggle probability over all inputs.
  double transition_probability() const;

 private:
  std::size_t num_inputs_;
  std::size_t length_;
  std::size_t words_per_input_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace cfpm::sim
