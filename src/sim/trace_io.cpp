#include "sim/trace_io.hpp"

#include <ostream>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "support/error.hpp"

namespace cfpm::sim {

namespace {

/// VCD identifier codes: printable ASCII 33..126, little-endian multi-char.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

}  // namespace

void write_vcd(std::ostream& os, const netlist::Netlist& n,
               const InputSequence& seq, const GateLevelSimulator* simulator,
               const VcdOptions& options) {
  CFPM_REQUIRE(seq.num_inputs() == n.num_inputs());
  const bool internal = options.include_internal && simulator != nullptr;

  // Which signals appear in the dump, in declaration order.
  std::vector<netlist::SignalId> dumped;
  if (internal) {
    dumped.resize(n.num_signals());
    for (netlist::SignalId s = 0; s < n.num_signals(); ++s) dumped[s] = s;
  } else {
    dumped.assign(n.inputs().begin(), n.inputs().end());
  }

  os << "$date cfpm trace $end\n";
  os << "$version cfpm 1.0 $end\n";
  os << "$timescale " << options.timescale << " $end\n";
  os << "$scope module " << (n.name().empty() ? "top" : n.name()) << " $end\n";
  for (std::size_t i = 0; i < dumped.size(); ++i) {
    os << "$var wire 1 " << vcd_id(i) << " " << n.signal(dumped[i]).name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<std::uint8_t> inputs(n.num_inputs());
  std::vector<std::uint8_t> values;
  std::vector<std::uint8_t> previous(dumped.size(), 0xff);  // force initial dump
  for (std::size_t t = 0; t < seq.length(); ++t) {
    seq.vector_at(t, inputs);
    if (internal) {
      values = simulator->eval(inputs);
    } else {
      values.assign(inputs.begin(), inputs.end());
    }
    bool header_written = false;
    for (std::size_t i = 0; i < dumped.size(); ++i) {
      const std::uint8_t v = internal ? values[dumped[i]] : values[i];
      if (v == previous[i]) continue;
      if (!header_written) {
        os << "#" << t << "\n";
        if (t == 0) os << "$dumpvars\n";
        header_written = true;
      }
      os << (v ? '1' : '0') << vcd_id(i) << "\n";
      previous[i] = v;
    }
    if (t == 0 && header_written) os << "$end\n";
  }
  os << "#" << seq.length() << "\n";
  if (!os) throw Error("write_vcd: stream failure");
}

}  // namespace cfpm::sim
