#include "sim/sequence.hpp"

#include <bit>

namespace cfpm::sim {

InputSequence InputSequence::from_vectors(
    const std::vector<std::vector<std::uint8_t>>& vectors) {
  CFPM_REQUIRE(!vectors.empty());
  const std::size_t n = vectors.front().size();
  InputSequence seq(n, vectors.size());
  for (std::size_t t = 0; t < vectors.size(); ++t) {
    CFPM_REQUIRE(vectors[t].size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      seq.set_bit(i, t, vectors[t][i] != 0);
    }
  }
  return seq;
}

double InputSequence::signal_probability() const {
  if (length_ == 0) return 0.0;
  std::size_t ones = 0;
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    for (std::size_t k = 0; k < words_per_input_; ++k) {
      std::uint64_t w = word(i, k);
      // Mask tail bits beyond length_.
      if (k == words_per_input_ - 1 && length_ % 64 != 0) {
        w &= (std::uint64_t{1} << (length_ % 64)) - 1;
      }
      ones += static_cast<std::size_t>(std::popcount(w));
    }
  }
  return static_cast<double>(ones) /
         static_cast<double>(num_inputs_ * length_);
}

double InputSequence::transition_probability() const {
  if (num_transitions() == 0) return 0.0;
  std::size_t toggles = 0;
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    for (std::size_t t = 0; t + 1 < length_; ++t) {
      if (bit(i, t) != bit(i, t + 1)) ++toggles;
    }
  }
  return static_cast<double>(toggles) /
         static_cast<double>(num_inputs_ * num_transitions());
}

}  // namespace cfpm::sim
