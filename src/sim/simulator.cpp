#include "sim/simulator.hpp"

#include <bit>

#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm::sim {

using netlist::Netlist;
using netlist::SignalId;

GateLevelSimulator::GateLevelSimulator(const Netlist& n,
                                       std::vector<double> loads_ff)
    : netlist_(n), loads_(std::move(loads_ff)) {
  CFPM_REQUIRE(loads_.size() == n.num_signals());
  for (SignalId s = 0; s < n.num_signals(); ++s) {
    if (!n.signal(s).is_input) {
      CFPM_REQUIRE(n.signal(s).fanin_count <= 64);  // word-parallel kernel limit
      total_gate_load_ += loads_[s];
    }
  }
}

GateLevelSimulator::GateLevelSimulator(const Netlist& n,
                                       const netlist::GateLibrary& lib)
    : GateLevelSimulator(n, n.annotate_loads(lib)) {}

void GateLevelSimulator::eval_words(std::span<const std::uint64_t> input_words,
                                    std::span<std::uint64_t> signal_words) const {
  CFPM_REQUIRE(input_words.size() == netlist_.num_inputs());
  CFPM_REQUIRE(signal_words.size() == netlist_.num_signals());
  std::size_t next_input = 0;
  std::uint64_t fanin_buf[64];
  for (SignalId s = 0; s < netlist_.num_signals(); ++s) {
    const auto& sig = netlist_.signal(s);
    if (sig.is_input) {
      signal_words[s] = input_words[next_input++];
      continue;
    }
    const auto fanins = netlist_.fanins(s);
    CFPM_ASSERT(fanins.size() <= 64);
    for (std::size_t k = 0; k < fanins.size(); ++k) {
      fanin_buf[k] = signal_words[fanins[k]];
    }
    signal_words[s] = netlist::eval_gate_words(
        sig.type, std::span<const std::uint64_t>(fanin_buf, fanins.size()));
  }
}

std::vector<std::uint8_t> GateLevelSimulator::eval(
    std::span<const std::uint8_t> inputs) const {
  CFPM_REQUIRE(inputs.size() == netlist_.num_inputs());
  std::vector<std::uint64_t> in_words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    in_words[i] = inputs[i] ? ~std::uint64_t{0} : 0;
  }
  std::vector<std::uint64_t> sig_words(netlist_.num_signals());
  eval_words(in_words, sig_words);
  std::vector<std::uint8_t> out(netlist_.num_signals());
  for (std::size_t s = 0; s < out.size(); ++s) {
    out[s] = (sig_words[s] & 1u) ? 1 : 0;
  }
  return out;
}

double GateLevelSimulator::switching_capacitance_ff(
    std::span<const std::uint8_t> xi, std::span<const std::uint8_t> xf) const {
  const std::vector<std::uint8_t> vi = eval(xi);
  const std::vector<std::uint8_t> vf = eval(xf);
  double cap = 0.0;
  for (SignalId s = 0; s < netlist_.num_signals(); ++s) {
    if (netlist_.signal(s).is_input) continue;
    if (vi[s] == 0 && vf[s] != 0) cap += loads_[s];
  }
  return cap;
}

SequenceEnergy GateLevelSimulator::simulate(const InputSequence& seq) const {
  CFPM_REQUIRE(seq.num_inputs() == netlist_.num_inputs());
  CFPM_TRACE_SPAN("sim.golden");
  static const metrics::Counter c_run("sim.golden.run");
  static const metrics::Counter c_pattern("sim.golden.pattern");
  c_run.add();
  c_pattern.add(seq.num_transitions());
  SequenceEnergy result;
  const std::size_t transitions = seq.num_transitions();
  result.per_transition_ff.assign(transitions, 0.0);
  if (transitions == 0) return result;

  const std::size_t num_signals = netlist_.num_signals();
  const std::size_t chunks = seq.words_per_input();
  std::vector<std::uint64_t> in_words(netlist_.num_inputs());
  std::vector<std::uint64_t> cur(num_signals), next(num_signals);

  // Evaluate chunk 0.
  for (std::size_t i = 0; i < in_words.size(); ++i) in_words[i] = seq.word(i, 0);
  eval_words(in_words, cur);

  for (std::size_t c = 0; c < chunks; ++c) {
    const bool has_next = (c + 1) < chunks;
    if (has_next) {
      for (std::size_t i = 0; i < in_words.size(); ++i) {
        in_words[i] = seq.word(i, c + 1);
      }
      eval_words(in_words, next);
    }
    // Transitions whose *initial* timestep lies in chunk c:
    // t in [64c, min(64c+63, transitions-1)].
    const std::size_t base = c * 64;
    const std::size_t last =
        std::min(base + 63, transitions - 1);  // inclusive
    if (base > last) break;
    const unsigned lanes = static_cast<unsigned>(last - base + 1);
    const std::uint64_t lane_mask =
        lanes == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lanes) - 1);

    for (SignalId s = 0; s < num_signals; ++s) {
      if (netlist_.signal(s).is_input) continue;
      const std::uint64_t w = cur[s];
      const std::uint64_t shifted =
          (w >> 1) | (has_next ? (next[s] << 63) : 0);
      std::uint64_t rise = ~w & shifted & lane_mask;
      const double load = loads_[s];
      while (rise != 0) {
        const int b = std::countr_zero(rise);
        rise &= rise - 1;
        result.per_transition_ff[base + static_cast<std::size_t>(b)] += load;
      }
    }
    cur.swap(next);
  }

  for (double c : result.per_transition_ff) {
    result.total_ff += c;
    result.peak_ff = std::max(result.peak_ff, c);
  }
  return result;
}

}  // namespace cfpm::sim
