// Event-driven gate-delay simulator.
//
// The paper's golden model is a zero-delay netlist, where the only
// structural power phenomenon is a final-value rising transition; spurious
// transitions (glitches) are explicitly classified as *parasitic* (Section
// 2). This simulator assigns each gate a small integer delay and counts
// every rising edge, glitches included -- providing the richer reference
// needed to exercise the paper's "structural model + characterized
// residual" partitioning (see power/residual.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"
#include "sim/simulator.hpp"

namespace cfpm::sim {

/// Integer gate delays per type (in arbitrary time units).
class DelayModel {
 public:
  /// All gates share one delay (the classic unit-delay model).
  static DelayModel unit();
  /// A plausible standard-cell profile: inverters fastest, XOR slowest.
  static DelayModel standard();

  unsigned delay(netlist::GateType t) const noexcept {
    return delay_[static_cast<std::size_t>(t)];
  }
  void set_delay(netlist::GateType t, unsigned d) noexcept {
    delay_[static_cast<std::size_t>(t)] = d;
  }

 private:
  std::array<unsigned, netlist::kNumGateTypes> delay_{};
};

/// Per-transition energy split into the zero-delay (functional) part and
/// the glitch surplus.
struct GlitchBreakdown {
  double total_ff = 0.0;       ///< all rising edges, glitches included
  double functional_ff = 0.0;  ///< rising edges implied by the final values
  double glitch_ff() const { return total_ff - functional_ff; }
};

class UnitDelaySimulator {
 public:
  UnitDelaySimulator(const netlist::Netlist& n, std::vector<double> loads_ff,
                     DelayModel delays = DelayModel::unit());
  UnitDelaySimulator(const netlist::Netlist& n,
                     const netlist::GateLibrary& lib,
                     DelayModel delays = DelayModel::unit());

  const netlist::Netlist& circuit() const noexcept { return netlist_; }

  /// Switched capacitance of one transition with glitching (event-driven
  /// propagation from the x^i steady state to the x^f steady state).
  GlitchBreakdown switching_capacitance_ff(
      std::span<const std::uint8_t> xi, std::span<const std::uint8_t> xf) const;

  /// Sequence simulation; per-transition totals include glitch power.
  SequenceEnergy simulate(const InputSequence& seq) const;

  /// Like simulate(), but also accumulates the functional/glitch split.
  GlitchBreakdown simulate_breakdown(const InputSequence& seq) const;

 private:
  /// Steady-state evaluation (topological pass).
  void settle(std::span<const std::uint8_t> inputs,
              std::vector<std::uint8_t>& values) const;

  const netlist::Netlist& netlist_;
  std::vector<double> loads_;
  DelayModel delays_;
  std::vector<std::vector<netlist::SignalId>> fanouts_;
};

}  // namespace cfpm::sim
