// Minimal fixed-width text-table printer for experiment outputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cfpm::eval {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` decimals.
  static std::string num(double v, int digits = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfpm::eval
