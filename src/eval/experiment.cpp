#include "eval/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "support/assert.hpp"

namespace cfpm::eval {

RunConfig RunConfig::from_env() {
  RunConfig config;
  if (const char* v = std::getenv("CFPM_VECTORS")) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed >= 2) config.vectors_per_run = static_cast<std::size_t>(parsed);
  }
  return config;
}

namespace {

enum class Metric { kAverage, kPeak };

std::vector<AccuracyReport> evaluate(
    std::span<const power::PowerModel* const> models, std::size_t n,
    const ReferenceFn& golden, std::span<const stats::InputStatistics> grid,
    const RunConfig& config, Metric metric) {
  CFPM_REQUIRE(!models.empty());
  CFPM_REQUIRE(!grid.empty());

  std::vector<AccuracyReport> reports(models.size());
  for (std::size_t m = 0; m < models.size(); ++m) {
    CFPM_REQUIRE(models[m]->num_inputs() == n);
    reports[m].model_name = models[m]->name();
    reports[m].points.reserve(grid.size());
  }

  // Grid points are independent (deterministic per-point seeds), so they
  // evaluate in parallel. Models and the golden reference are only read.
  // A cell that throws (a blown circuit/config, an OOM in one model) is
  // recorded as failed and the rest of the grid continues; exceptions must
  // never escape evaluate_point, which may run on a worker thread.
  std::vector<std::vector<AccuracyPoint>> points(
      grid.size(), std::vector<AccuracyPoint>(models.size()));
  auto evaluate_point = [&](std::size_t gi) {
    const stats::InputStatistics& s = grid[gi];
    auto fail_cell = [&](std::size_t m, const char* what) {
      AccuracyPoint p;
      p.statistics = s;
      p.failed = true;
      p.error = what;
      points[gi][m] = p;
    };
    stats::MarkovSequenceGenerator gen(s, config.seed + gi);
    const sim::InputSequence seq = gen.generate(n, config.vectors_per_run);
    double golden_value = 0.0;
    try {
      const sim::SequenceEnergy energy = golden(seq);
      golden_value =
          metric == Metric::kAverage ? energy.average_ff() : energy.peak_ff;
    } catch (const std::exception& e) {
      // No reference for this grid point: every model's cell fails.
      for (std::size_t m = 0; m < models.size(); ++m) fail_cell(m, e.what());
      return;
    }
    for (std::size_t m = 0; m < models.size(); ++m) {
      AccuracyPoint p;
      p.statistics = s;
      p.golden = golden_value;
      try {
        // One batched pass over the trace yields average and peak together
        // (the compiled fast path for ADD models, chunked loops otherwise).
        const power::TraceEstimate est = models[m]->estimate_trace(seq);
        p.model = metric == Metric::kAverage ? est.average_ff() : est.peak_ff;
      } catch (const std::exception& e) {
        fail_cell(m, e.what());
        continue;
      }
      if (golden_value > 0.0) {
        const double diff = metric == Metric::kAverage
                                ? std::abs(p.model - golden_value)
                                : (p.model - golden_value);
        p.re = diff / golden_value;
      } else {
        p.re = (p.model == 0.0) ? 0.0 : std::numeric_limits<double>::infinity();
      }
      points[gi][m] = p;
    }
  };

  const std::size_t workers = std::min<std::size_t>(
      grid.size(), std::max(1u, std::thread::hardware_concurrency()));
  if (workers <= 1) {
    for (std::size_t gi = 0; gi < grid.size(); ++gi) evaluate_point(gi);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        for (std::size_t gi = w; gi < grid.size(); gi += workers) {
          evaluate_point(gi);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      reports[m].points.push_back(points[gi][m]);
    }
  }

  for (AccuracyReport& r : reports) {
    double sum = 0.0;
    std::size_t counted = 0;
    for (const AccuracyPoint& p : r.points) {
      if (p.failed) {
        ++r.failed_points;
        continue;
      }
      sum += std::abs(p.re);
      ++counted;
    }
    r.are = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
  }
  return reports;
}

ReferenceFn zero_delay_reference(const sim::GateLevelSimulator& golden) {
  return [&golden](const sim::InputSequence& seq) { return golden.simulate(seq); };
}

}  // namespace

std::vector<AccuracyReport> evaluate_average_accuracy(
    std::span<const power::PowerModel* const> models,
    const sim::GateLevelSimulator& golden,
    std::span<const stats::InputStatistics> grid, const RunConfig& config) {
  return evaluate(models, golden.circuit().num_inputs(),
                  zero_delay_reference(golden), grid, config, Metric::kAverage);
}

std::vector<AccuracyReport> evaluate_bound_accuracy(
    std::span<const power::PowerModel* const> models,
    const sim::GateLevelSimulator& golden,
    std::span<const stats::InputStatistics> grid, const RunConfig& config) {
  return evaluate(models, golden.circuit().num_inputs(),
                  zero_delay_reference(golden), grid, config, Metric::kPeak);
}

std::vector<AccuracyReport> evaluate_average_accuracy(
    std::span<const power::PowerModel* const> models, std::size_t num_inputs,
    const ReferenceFn& golden, std::span<const stats::InputStatistics> grid,
    const RunConfig& config) {
  return evaluate(models, num_inputs, golden, grid, config, Metric::kAverage);
}

std::vector<AccuracyReport> evaluate_bound_accuracy(
    std::span<const power::PowerModel* const> models, std::size_t num_inputs,
    const ReferenceFn& golden, std::span<const stats::InputStatistics> grid,
    const RunConfig& config) {
  return evaluate(models, num_inputs, golden, grid, config, Metric::kPeak);
}

AccuracyReport evaluate_average_accuracy(
    const power::PowerModel& model, const sim::GateLevelSimulator& golden,
    std::span<const stats::InputStatistics> grid, const RunConfig& config) {
  const power::PowerModel* ptr = &model;
  return evaluate_average_accuracy(std::span(&ptr, 1), golden, grid,
                                   config)[0];
}

}  // namespace cfpm::eval
