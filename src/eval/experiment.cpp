#include "eval/experiment.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "serve/service.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm::eval {

RunConfig RunConfig::from_env() {
  RunConfig config;
  if (const char* v = std::getenv("CFPM_VECTORS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || parsed < 2) {
      throw Error(std::string("CFPM_VECTORS='") + v +
                  "': expected an integer >= 2 (a sequence needs at least "
                  "one transition)");
    }
    config.vectors_per_run = static_cast<std::size_t>(parsed);
  }
  return config;
}

std::vector<AccuracyReport> evaluate(
    std::span<const power::PowerModel* const> models, const Reference& golden,
    std::span<const stats::InputStatistics> grid, const EvalOptions& options) {
  CFPM_REQUIRE(!models.empty());
  CFPM_REQUIRE(!grid.empty());
  CFPM_TRACE_SPAN("eval.grid");
  static const metrics::Counter c_run("eval.grid.run");
  static const metrics::Counter c_cell("eval.grid.cell");
  static const metrics::Counter c_failed("eval.grid.cell.failed");
  static const metrics::Histogram h_cell_us("eval.grid.cell_us");
  c_run.add();

  const std::size_t n = golden.num_inputs();
  const RunConfig& config = options.run;
  std::vector<AccuracyReport> reports(models.size());
  for (std::size_t m = 0; m < models.size(); ++m) {
    CFPM_REQUIRE(models[m]->num_inputs() == n);
    reports[m].model_name = models[m]->name();
    reports[m].points.reserve(grid.size());
  }

  // Grid points are independent (deterministic per-point seeds), so they
  // evaluate in parallel. Models and the golden reference are only read.
  // A cell that throws (a blown circuit/config, an OOM in one model) is
  // recorded as failed and the rest of the grid continues; exceptions must
  // never escape evaluate_point, which may run on a worker thread.
  std::vector<std::vector<AccuracyPoint>> points(
      grid.size(), std::vector<AccuracyPoint>(models.size()));
  auto evaluate_point = [&](std::size_t gi) {
    CFPM_TRACE_SPAN("eval.cell");
    const metrics::ScopedTimer cell_timer(h_cell_us);
    c_cell.add();
    const stats::InputStatistics& s = grid[gi];
    auto fail_cell = [&](std::size_t m, const char* what) {
      AccuracyPoint p;
      p.statistics = s;
      p.failed = true;
      p.error = what;
      points[gi][m] = p;
    };
    stats::MarkovSequenceGenerator gen(s, config.seed + gi);
    const sim::InputSequence seq = gen.generate(n, config.vectors_per_run);
    double golden_value = 0.0;
    try {
      const sim::SequenceEnergy energy = golden.fn()(seq);
      golden_value = options.metric == Metric::kAverage ? energy.average_ff()
                                                        : energy.peak_ff;
    } catch (const std::exception& e) {
      // No reference for this grid point: every model's cell fails.
      for (std::size_t m = 0; m < models.size(); ++m) fail_cell(m, e.what());
      return;
    }
    for (std::size_t m = 0; m < models.size(); ++m) {
      AccuracyPoint p;
      p.statistics = s;
      p.golden = golden_value;
      try {
        // One batched pass over the trace yields average and peak together
        // (the compiled fast path for ADD models, chunked loops otherwise).
        // Routed through the service facade so the harness scores exactly
        // the evaluation path the CLI and the daemon serve.
        const service::EvalReply est =
            service::evaluate_trace(*models[m], seq);
        p.model = options.metric == Metric::kAverage ? est.average_ff
                                                     : est.peak_ff;
      } catch (const std::exception& e) {
        fail_cell(m, e.what());
        continue;
      }
      if (golden_value > 0.0) {
        const double diff = options.metric == Metric::kAverage
                                ? std::abs(p.model - golden_value)
                                : (p.model - golden_value);
        p.re = diff / golden_value;
      } else {
        p.re = (p.model == 0.0) ? 0.0 : std::numeric_limits<double>::infinity();
      }
      points[gi][m] = p;
    }
  };

  if (options.pool != nullptr && options.pool->num_threads() > 1 &&
      grid.size() > 1) {
    options.pool->run_indexed(grid.size(), evaluate_point);
  } else {
    const std::size_t workers = std::min<std::size_t>(
        grid.size(), std::max(1u, std::thread::hardware_concurrency()));
    if (workers <= 1) {
      for (std::size_t gi = 0; gi < grid.size(); ++gi) evaluate_point(gi);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          for (std::size_t gi = w; gi < grid.size(); gi += workers) {
            evaluate_point(gi);
          }
        });
      }
      for (std::thread& t : pool) t.join();
    }
  }
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      reports[m].points.push_back(points[gi][m]);
    }
  }

  for (AccuracyReport& r : reports) {
    double sum = 0.0;
    for (const AccuracyPoint& p : r.points) {
      if (p.failed) {
        ++r.failed_points;
        continue;
      }
      sum += std::abs(p.re);
      ++r.evaluated_points;
    }
    r.are = r.evaluated_points == 0
                ? 0.0
                : sum / static_cast<double>(r.evaluated_points);
  }
  std::size_t failed = 0;
  for (const AccuracyReport& r : reports) failed += r.failed_points;
  if (failed != 0) c_failed.add(failed);
  return reports;
}

}  // namespace cfpm::eval
