// Experiment harness: relative-error evaluation of RTL power models
// against the golden gate-level simulator, over a grid of input statistics
// (Section 4 of the paper).
//
// For every (sp, st) point the harness runs "concurrent RTL and gate-level
// simulation" on the same random sequence and records:
//   average-accuracy RE  = |avg_model - avg_golden| / avg_golden
//   bound-accuracy   RE  = (peak_model - peak_golden) / peak_golden
// The average of RE over all points is the paper's ARE.
//
// Single entry point:
//
//   auto reports = eval::evaluate(models, golden, grid, options);
//
// where `golden` is a Reference (a GateLevelSimulator converts implicitly;
// any other reference wraps as Reference(num_inputs, fn)) and EvalOptions
// selects the metric, run configuration, and an optional thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"
#include "support/thread_pool.hpp"

namespace cfpm::eval {

struct RunConfig {
  std::size_t vectors_per_run = 10000;  ///< paper: 10000 vectors
  std::uint64_t seed = 0x5eed;
  /// Overrides vectors_per_run from the CFPM_VECTORS environment variable
  /// when present (lets CI run fast without touching the benches).
  /// Throws cfpm::Error when the variable is set but is not an integer >= 2
  /// -- a typo'd CFPM_VECTORS must not silently run the full-size (or a
  /// zero-vector) experiment.
  static RunConfig from_env();
};

struct AccuracyPoint {
  stats::InputStatistics statistics;
  double golden = 0.0;  ///< simulated average (or peak) capacitance, fF
  double model = 0.0;   ///< model estimate on the same sequence
  double re = 0.0;      ///< relative error (bound RE keeps its sign)
  /// Per-cell recovery: a cell whose golden reference or model evaluation
  /// threw is marked failed (with the error text) instead of killing the
  /// whole grid; failed cells are excluded from the ARE.
  bool failed = false;
  std::string error;
};

struct AccuracyReport {
  std::string model_name;
  std::vector<AccuracyPoint> points;
  /// Average of |re| over the non-failed points, as a fraction
  /// (0.057 = 5.7%); 0 when every point failed.
  double are = 0.0;
  /// Cells that threw and were skipped (see AccuracyPoint::failed).
  std::size_t failed_points = 0;
  /// Cells the ARE actually averages over (points.size() - failed_points):
  /// distinguishes "are == 0 because the model is perfect" from "are == 0
  /// because nothing survived".
  std::size_t evaluated_points = 0;
};

/// Any golden reference: maps a workload to per-sequence energy. Adapters
/// exist for the zero-delay and the glitch-aware simulators; tests can pass
/// a lambda.
using ReferenceFn = std::function<sim::SequenceEnergy(const sim::InputSequence&)>;

/// The accuracy metric an evaluation scores.
enum class Metric {
  kAverage,  ///< RE of per-transition average power (Table 1 "avg")
  kBound,    ///< signed RE of the per-sequence peak (Table 1 "max")
};

/// Golden reference for an evaluation: either a gate-level simulator
/// (implicit conversion -- the common case) or an arbitrary ReferenceFn
/// with an explicit input arity (glitch-aware simulators, test lambdas).
class Reference {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): by-design shorthand so
  // call sites read evaluate(models, golden, grid, ...).
  Reference(const sim::GateLevelSimulator& golden)
      : num_inputs_(golden.circuit().num_inputs()),
        fn_([&golden](const sim::InputSequence& seq) {
          return golden.simulate(seq);
        }) {}

  Reference(std::size_t num_inputs, ReferenceFn fn)
      : num_inputs_(num_inputs), fn_(std::move(fn)) {}

  std::size_t num_inputs() const { return num_inputs_; }
  const ReferenceFn& fn() const { return fn_; }

 private:
  std::size_t num_inputs_;
  ReferenceFn fn_;
};

struct EvalOptions {
  Metric metric = Metric::kAverage;
  RunConfig run;
  /// When set (and multi-threaded), grid points are dispatched on this pool
  /// instead of the harness's own ad-hoc threads.
  ThreadPool* pool = nullptr;
};

/// Accuracy of several models against one golden reference over a grid of
/// input statistics (one random sequence per grid point; all models see
/// identical workloads). Grid cells evaluate in parallel and recover
/// per-cell: a throwing cell is marked failed, the rest of the grid runs.
std::vector<AccuracyReport> evaluate(
    std::span<const power::PowerModel* const> models, const Reference& golden,
    std::span<const stats::InputStatistics> grid,
    const EvalOptions& options = {});

}  // namespace cfpm::eval
