// Experiment harness: relative-error evaluation of RTL power models
// against the golden gate-level simulator, over a grid of input statistics
// (Section 4 of the paper).
//
// For every (sp, st) point the harness runs "concurrent RTL and gate-level
// simulation" on the same random sequence and records:
//   average-accuracy RE  = |avg_model - avg_golden| / avg_golden
//   bound-accuracy   RE  = (peak_model - peak_golden) / peak_golden
// The average of RE over all points is the paper's ARE.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"
#include "stats/markov.hpp"

namespace cfpm::eval {

struct RunConfig {
  std::size_t vectors_per_run = 10000;  ///< paper: 10000 vectors
  std::uint64_t seed = 0x5eed;
  /// Overrides vectors_per_run from the CFPM_VECTORS environment variable
  /// when present (lets CI run fast without touching the benches).
  static RunConfig from_env();
};

struct AccuracyPoint {
  stats::InputStatistics statistics;
  double golden = 0.0;  ///< simulated average (or peak) capacitance, fF
  double model = 0.0;   ///< model estimate on the same sequence
  double re = 0.0;      ///< relative error (bound RE keeps its sign)
  /// Per-cell recovery: a cell whose golden reference or model evaluation
  /// threw is marked failed (with the error text) instead of killing the
  /// whole grid; failed cells are excluded from the ARE.
  bool failed = false;
  std::string error;
};

struct AccuracyReport {
  std::string model_name;
  std::vector<AccuracyPoint> points;
  /// Average of |re| over the non-failed points, as a fraction
  /// (0.057 = 5.7%); 0 when every point failed.
  double are = 0.0;
  /// Cells that threw and were skipped (see AccuracyPoint::failed).
  std::size_t failed_points = 0;
};

/// Any golden reference: maps a workload to per-sequence energy. Adapters
/// exist for the zero-delay and the glitch-aware simulators; tests can pass
/// a lambda.
using ReferenceFn = std::function<sim::SequenceEnergy(const sim::InputSequence&)>;

/// Average-power accuracy of several models over a shared set of random
/// sequences (one per grid point; all models see identical workloads).
std::vector<AccuracyReport> evaluate_average_accuracy(
    std::span<const power::PowerModel* const> models,
    const sim::GateLevelSimulator& golden,
    std::span<const stats::InputStatistics> grid, const RunConfig& config);

/// Generic-reference variants (e.g. the glitch-aware UnitDelaySimulator).
std::vector<AccuracyReport> evaluate_average_accuracy(
    std::span<const power::PowerModel* const> models, std::size_t num_inputs,
    const ReferenceFn& golden, std::span<const stats::InputStatistics> grid,
    const RunConfig& config);
std::vector<AccuracyReport> evaluate_bound_accuracy(
    std::span<const power::PowerModel* const> models, std::size_t num_inputs,
    const ReferenceFn& golden, std::span<const stats::InputStatistics> grid,
    const RunConfig& config);

/// Peak-power (upper-bound) accuracy: RE of each model's per-sequence peak
/// estimate versus the golden peak. For conservative models RE >= 0 up to
/// simulation noise.
std::vector<AccuracyReport> evaluate_bound_accuracy(
    std::span<const power::PowerModel* const> models,
    const sim::GateLevelSimulator& golden,
    std::span<const stats::InputStatistics> grid, const RunConfig& config);

/// Convenience for a single model.
AccuracyReport evaluate_average_accuracy(const power::PowerModel& model,
                                         const sim::GateLevelSimulator& golden,
                                         std::span<const stats::InputStatistics> grid,
                                         const RunConfig& config);

}  // namespace cfpm::eval
