#include "eval/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace cfpm::eval {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CFPM_REQUIRE(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  CFPM_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << v;
  return ss.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << "\n";
  };
  line(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) line(row);
}

}  // namespace cfpm::eval
