#include "support/governor.hpp"

#include <limits>
#include <string>

#include "support/error.hpp"

namespace cfpm {

double Governor::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

void Governor::check() {
  ++checks_;
  if (cancellation_requested()) {
    throw CancelledError("construction cancelled (after " +
                         std::to_string(allocations_) + " allocations)");
  }
  if (deadline_expired()) {
    throw DeadlineExceeded("construction deadline exceeded (after " +
                           std::to_string(allocations_) + " allocations, " +
                           std::to_string(peak_live_nodes_) +
                           " peak live nodes)");
  }
}

void Governor::fire_fault() {
  const FaultKind kind = fault_kind_;
  fault_kind_ = FaultKind::kNone;  // one-shot
  if (kind == FaultKind::kCancel) {
    request_cancellation();
    throw CancelledError("injected cancellation at allocation " +
                         std::to_string(allocations_));
  }
  throw ResourceError("injected resource fault at allocation " +
                      std::to_string(allocations_));
}

}  // namespace cfpm
