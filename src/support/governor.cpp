#include "support/governor.hpp"

#include <limits>
#include <string>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace cfpm {

double Governor::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

void Governor::checkpoint() {
  static const metrics::Counter c_checkpoint("governor.checkpoint.hit");
  c_checkpoint.add();
  check();
}

void Governor::check() {
  // Allocation ticks are metered here as a delta rather than per tick, so
  // on_allocation()'s fast path stays metric-free. Under concurrent checks
  // the exchange hands each metered range to exactly one thread; a stale
  // (larger) previous value just skips the add, so ticks are never counted
  // twice.
  static const metrics::Counter c_poll("governor.poll.tick");
  static const metrics::Counter c_check("governor.check.run");
  static const metrics::Counter c_cancel("governor.cancel.fired");
  static const metrics::Counter c_deadline("governor.deadline.expired");
  const std::uint64_t ticks = allocations_.load(std::memory_order_relaxed);
  const std::uint64_t flushed =
      polls_flushed_.exchange(ticks, std::memory_order_relaxed);
  if (ticks > flushed) c_poll.add(ticks - flushed);
  c_check.add();
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (cancellation_requested()) {
    c_cancel.add();
    throw CancelledError("construction cancelled (after " +
                         std::to_string(ticks) + " allocations)");
  }
  if (deadline_expired()) {
    c_deadline.add();
    throw DeadlineExceeded("construction deadline exceeded (after " +
                           std::to_string(ticks) + " allocations, " +
                           std::to_string(peak_live_nodes()) +
                           " peak live nodes)");
  }
}

void Governor::fire_fault(FaultKind kind, std::uint64_t at_tick) {
  static const metrics::Counter c_fault("governor.fault.fired");
  c_fault.add();
  if (kind == FaultKind::kCancel) {
    request_cancellation();
    throw CancelledError("injected cancellation at allocation " +
                         std::to_string(at_tick));
  }
  throw ResourceError("injected resource fault at allocation " +
                      std::to_string(at_tick));
}

}  // namespace cfpm
