#include "support/governor.hpp"

#include <limits>
#include <string>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace cfpm {

double Governor::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

void Governor::checkpoint() {
  static const metrics::Counter c_checkpoint("governor.checkpoint.hit");
  c_checkpoint.add();
  check();
}

void Governor::check() {
  // Allocation ticks are metered here as a delta rather than per tick, so
  // on_allocation()'s fast path stays metric-free.
  static const metrics::Counter c_poll("governor.poll.tick");
  static const metrics::Counter c_check("governor.check.run");
  static const metrics::Counter c_cancel("governor.cancel.fired");
  static const metrics::Counter c_deadline("governor.deadline.expired");
  c_poll.add(allocations_ - polls_flushed_);
  polls_flushed_ = allocations_;
  c_check.add();
  ++checks_;
  if (cancellation_requested()) {
    c_cancel.add();
    throw CancelledError("construction cancelled (after " +
                         std::to_string(allocations_) + " allocations)");
  }
  if (deadline_expired()) {
    c_deadline.add();
    throw DeadlineExceeded("construction deadline exceeded (after " +
                           std::to_string(allocations_) + " allocations, " +
                           std::to_string(peak_live_nodes_) +
                           " peak live nodes)");
  }
}

void Governor::fire_fault() {
  static const metrics::Counter c_fault("governor.fault.fired");
  c_fault.add();
  const FaultKind kind = fault_kind_;
  fault_kind_ = FaultKind::kNone;  // one-shot
  if (kind == FaultKind::kCancel) {
    request_cancellation();
    throw CancelledError("injected cancellation at allocation " +
                         std::to_string(allocations_));
  }
  throw ResourceError("injected resource fault at allocation " +
                      std::to_string(allocations_));
}

}  // namespace cfpm
