// Deterministic, fast pseudo-random generation.
//
// All stochastic components of the library (workload generators,
// characterization sampling, randomized tests) draw from Xoshiro256**
// seeded through SplitMix64, so every experiment is reproducible from a
// single 64-bit seed.
#pragma once

#include <cstdint>

namespace cfpm {

/// SplitMix64: used to expand a user seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Uniform integer in [0, bound) using Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cfpm
