// Bounded exponential backoff for transient-failure retry loops.
//
// Deliberately deterministic — no jitter. The consumers (per-cone workers in
// power/add_model) guarantee bit-identical results at any thread count, so
// retry timing must never be able to influence *what* is computed, only
// *when*; and tests assert exact backoff schedules. Jitter earns its keep
// when many clients hammer one contended server, which is not this shape:
// retries here absorb transient local faults (allocation pressure, injected
// failpoints), not cross-process thundering herds.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>

namespace cfpm {

/// Retry schedule: up to `max_attempts` tries, sleeping
/// initial_backoff * multiplier^(attempt-1) (capped at max_backoff) between
/// consecutive tries.
struct RetryPolicy {
  std::size_t max_attempts = 3;  ///< total tries, including the first
  std::chrono::milliseconds initial_backoff{1};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{50};

  /// Sleep that precedes attempt `failed_attempt + 1`, where
  /// `failed_attempt` is 1-based. Saturates at max_backoff.
  std::chrono::milliseconds backoff_after(std::size_t failed_attempt) const {
    double ms = static_cast<double>(initial_backoff.count());
    const double cap = static_cast<double>(max_backoff.count());
    for (std::size_t k = 1; k < failed_attempt; ++k) {
      ms *= multiplier;
      if (ms >= cap) return max_backoff;
    }
    if (ms >= cap) return max_backoff;
    return std::chrono::milliseconds(static_cast<long long>(ms));
  }
};

/// Runs `fn` under `policy`. An attempt that throws is retried (after the
/// scheduled backoff) while `retryable(std::current_exception())` is true
/// and attempts remain; otherwise the exception propagates. A policy with
/// max_attempts == 0 still runs `fn` once. Each retry increments
/// *retries_out when provided.
template <typename Fn, typename Retryable>
auto run_with_retry(const RetryPolicy& policy, Fn&& fn, Retryable&& retryable,
                    std::size_t* retries_out = nullptr) -> decltype(fn()) {
  const std::size_t attempts = policy.max_attempts == 0 ? 1
                                                        : policy.max_attempts;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (...) {
      if (attempt >= attempts || !retryable(std::current_exception())) throw;
      if (retries_out != nullptr) ++*retries_out;
      std::this_thread::sleep_for(policy.backoff_after(attempt));
    }
  }
}

}  // namespace cfpm
