// Process-wide metrics registry: monotonic counters, gauges, and log2-bucket
// histograms, designed for instrumentation of hot paths.
//
// Design constraints (see DESIGN.md §10):
//  * No allocation on the hot path. Registration (constructing a Counter /
//    Gauge / Histogram handle) interns the name once under a mutex;
//    increments touch only a per-thread shard slot.
//  * Thread-safe by sharding: every thread owns a shard of plain relaxed
//    atomics; snapshot() merges live shards plus the folded totals of
//    exited threads. Counts are therefore exact (nothing is sampled or
//    dropped), only the instant of visibility is relaxed.
//  * Compile-out: building with -DCFPM_NO_METRICS replaces every handle
//    with an inert stub, so instrumented code carries zero cost and the
//    snapshot is empty. Snapshot itself stays available in both modes so
//    consumers (CLI, benches) need no conditional code.
//
// Metric names follow `subsystem.noun.verb` (e.g. "dd.cache.hit",
// "power.build.rung") and must be string literals or otherwise outlive the
// process; handles are cheap and typically function-local statics:
//
//   static const metrics::Counter c_hit("dd.cache.hit");
//   c_hit.add();
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cfpm::metrics {

/// Histogram bucket count. Bucket 0 holds zero-valued observations; bucket
/// k >= 1 holds values v with bit_width(v) == k, i.e. [2^(k-1), 2^k - 1],
/// clamped into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 64;

/// A merged, immutable view of every registered metric. Entries are sorted
/// by name, so two snapshots taken with no intervening activity compare
/// equal field-for-field (snapshot determinism).
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;  ///< total observations
    std::uint64_t sum = 0;    ///< sum of observed values
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by name; 0 when it was never registered.
  std::uint64_t counter(std::string_view name) const;
  /// Histogram by name; nullptr when it was never registered.
  const HistogramValue* histogram(std::string_view name) const;

  /// Serializes the snapshot as a single JSON object with "counters",
  /// "gauges" and "histograms" members (histogram buckets are emitted
  /// sparsely as {"<bucket-index>": count}).
  void write_json(std::ostream& os) const;
};

#ifndef CFPM_NO_METRICS

/// Monotonically increasing counter.
class Counter {
 public:
  explicit Counter(std::string_view name);
  void add(std::uint64_t n = 1) const noexcept;

 private:
  std::uint32_t id_;
};

/// Last-write-wins instantaneous value (table occupancy, live nodes, ...).
class Gauge {
 public:
  explicit Gauge(std::string_view name);
  void set(double value) const noexcept;

 private:
  std::uint32_t id_;
};

/// Fixed log2-bucket histogram of non-negative integer observations.
class Histogram {
 public:
  explicit Histogram(std::string_view name);
  void observe(std::uint64_t value) const noexcept;

 private:
  std::uint32_t id_;
};

/// RAII timer recording its scope's wall-clock duration, in microseconds,
/// into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram& histogram) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Histogram& histogram_;
  std::uint64_t start_ns_;
};

/// Merges every shard (live threads and folded exited ones) into a sorted,
/// deterministic snapshot of all metrics registered so far.
Snapshot snapshot();

/// Zeroes every counter, gauge and histogram (registrations are kept).
/// Intended for tests that assert exact counts from a clean slate; racing
/// writers on other threads are zeroed too, not unregistered.
void reset_for_testing();

/// True when the registry is compiled in.
constexpr bool compiled_in() noexcept { return true; }

#else  // CFPM_NO_METRICS: inert stubs, identical surface.

class Counter {
 public:
  explicit Counter(std::string_view) noexcept {}
  void add(std::uint64_t = 1) const noexcept {}
};

class Gauge {
 public:
  explicit Gauge(std::string_view) noexcept {}
  void set(double) const noexcept {}
};

class Histogram {
 public:
  explicit Histogram(std::string_view) noexcept {}
  void observe(std::uint64_t) const noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

inline Snapshot snapshot() { return {}; }
inline void reset_for_testing() {}
constexpr bool compiled_in() noexcept { return false; }

#endif  // CFPM_NO_METRICS

}  // namespace cfpm::metrics
