// Minimal dense linear algebra for least-squares model fitting.
//
// The Lin baseline of the paper (P = c0 + sum_j c_j a_j) is fitted by
// ordinary least squares; we solve the normal equations with an LDL^T
// factorization plus diagonal (Tikhonov) regularization for rank-deficient
// designs (e.g. an input bit that never toggles in the training set).
#pragma once

#include <cstddef>
#include <vector>

namespace cfpm {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive semi-definite system A x = b in place via
/// LDL^T with a small ridge term. A must be square and symmetric.
/// Returns the solution vector. Throws ContractError on dimension mismatch.
std::vector<double> solve_spd(Matrix a, std::vector<double> b,
                              double ridge = 1e-9);

/// Ordinary least squares: given design matrix X (m x k) and targets y (m),
/// returns coefficients minimizing ||X c - y||^2 (ridge-regularized).
std::vector<double> least_squares(const Matrix& x, const std::vector<double>& y,
                                  double ridge = 1e-9);

}  // namespace cfpm
