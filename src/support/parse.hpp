// Locale-independent, full-match numeric parsing and formatting.
//
// Every textual format this library reads or writes (DD serialization,
// netlist/RTL descriptions, CLI flag values) is defined over the "C"
// decimal syntax. iostream extraction and std::sto* are the wrong tools
// for that: both honor the global/imbued locale (a comma-decimal
// LC_NUMERIC corrupts round-trips), std::sto* throws on garbage, and both
// silently accept trailing junk ("0.5x") and negative wrap-around ("-1"
// into an unsigned). The helpers here wrap std::from_chars/std::to_chars:
// locale-independent, exception-free, and strict — a parse succeeds only
// when the entire token is consumed and the value is in range.
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>

namespace cfpm {

/// Parses the whole of `text` as a value of arithmetic type T.
/// Returns std::nullopt on empty input, leading/trailing garbage
/// (including whitespace and a '+' sign), out-of-range values, or — for
/// unsigned T — a leading minus sign. Never throws, never reads locale.
template <typename T>
std::optional<T> parse_number(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  T value{};
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

/// Shortest decimal representation of `value` that round-trips exactly
/// through parse_number<double> (std::to_chars general format). Output is
/// locale-independent by construction.
inline std::string format_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  // 32 bytes always suffice for the shortest-round-trip form of a double.
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

}  // namespace cfpm
