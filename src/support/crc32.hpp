// Incremental CRC-32 (ISO 3309 / zlib polynomial 0xEDB88320, reflected).
//
// Used as an integrity trailer on serialize v2 DD files: fast enough to be
// free next to text formatting, and compatible with external tooling
// (`crc32 <(head -n -1 file)` reproduces the trailer). Not a cryptographic
// digest — it detects truncation and bit rot, not tampering.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cfpm {

class Crc32 {
 public:
  /// Feeds `data` into the running checksum.
  void update(std::string_view data) noexcept {
    std::uint32_t crc = state_;
    for (const char c : data) {
      crc = table()[(crc ^ static_cast<unsigned char>(c)) & 0xffu] ^
            (crc >> 8);
    }
    state_ = crc;
  }

  /// Checksum of everything fed so far. update() may continue afterwards.
  std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }

  static std::uint32_t of(std::string_view data) noexcept {
    Crc32 crc;
    crc.update(data);
    return crc.value();
  }

 private:
  static const std::array<std::uint32_t, 256>& table() noexcept {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        out[i] = c;
      }
      return out;
    }();
    return t;
  }

  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace cfpm
