// Named failpoint registry for fault injection.
//
// A failpoint is a named hook compiled into a failure-prone code path:
//
//   CFPM_FAILPOINT("power.cone.build");
//
// In production the hook is a single relaxed atomic load (nothing armed) or,
// with -DCFPM_NO_FAILPOINTS, nothing at all. Tests, the fuzz campaign
// (`cfpm fuzz --faults`) and operators arm failpoints by name with an action
// and a fire budget; the next `count` executions of the hook then perform the
// action (throw a typed exception, sleep, fail I/O). This is how the
// recovery machinery — cone retry/fallback (power/add_model), the thread-pool
// spawn degradation, crash-safe writes (support/io) — is exercised
// deterministically instead of waiting for a full disk or OOM in the wild.
//
// Activation surfaces:
//  * env:  CFPM_FAILPOINTS="name=action[:count],name2=action2" — parsed once
//          at process start (static initializer, like CFPM_SIMD); malformed
//          specs warn on stderr and are ignored, so a bad env var can never
//          abort an unrelated binary.
//  * CLI:  `cfpm ... --failpoints <spec>` — same grammar, but a malformed
//          spec is a usage error.
//  * code: arm()/arm_from_spec()/disarm()/disarm_all() below.
//
// Spec grammar (count omitted = 1; count 0 = fire on every hit):
//   spec   := entry (',' entry)*
//   entry  := name '=' action [':' count]
//   action := throw_bad_alloc | throw_deadline | throw_resource | fail_io
//           | delay_ms(N)
//
// Thread safety: arm/disarm/hit may race freely; the registry is guarded by
// a mutex on the slow path only. A hit on an unarmed process never takes
// the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cfpm::failpoint {

enum class Action : std::uint8_t {
  kThrowBadAlloc,  ///< throw std::bad_alloc
  kThrowDeadline,  ///< throw cfpm::DeadlineExceeded
  kThrowResource,  ///< throw cfpm::ResourceError
  kDelayMs,        ///< sleep for the armed number of milliseconds
  kFailIo,         ///< throw cfpm::IoError
};

/// Count value meaning "fire on every hit until disarmed".
inline constexpr std::uint64_t kForever = 0;

/// One armed failpoint, as reported by armed().
struct Status {
  std::string name;
  Action action = Action::kThrowBadAlloc;
  std::uint32_t delay_ms = 0;   ///< kDelayMs only
  std::uint64_t remaining = 0;  ///< fires left; kForever = unbounded
};

/// True when failpoint hooks are compiled in (no -DCFPM_NO_FAILPOINTS).
/// The registry API itself always exists; with hooks compiled out, armed
/// entries are simply never consulted.
constexpr bool compiled_in() noexcept {
#ifdef CFPM_NO_FAILPOINTS
  return false;
#else
  return true;
#endif
}

/// Arms `name` to perform `action` on its next `count` hits (kForever =
/// every hit until disarmed). Re-arming an already-armed name replaces it.
void arm(const std::string& name, Action action, std::uint64_t count = 1,
         std::uint32_t delay_ms = 0);

/// Parses and arms a full spec ("a=throw_bad_alloc:2,b=delay_ms(5)").
/// Throws cfpm::Error naming the offending entry; on throw, nothing from
/// the spec has been armed.
void arm_from_spec(std::string_view spec);

/// Parses a spec without arming anything. Same errors as arm_from_spec.
void validate_spec(std::string_view spec);

/// Disarms `name` if armed; no-op otherwise.
void disarm(const std::string& name);

/// Disarms everything (including entries seeded from CFPM_FAILPOINTS).
void disarm_all();

/// Currently armed failpoints, sorted by name.
std::vector<Status> armed();

/// Process-wide number of times any failpoint has fired (performed its
/// action). Hits on unarmed or spent names do not count.
std::uint64_t total_fires() noexcept;

/// Re-reads CFPM_FAILPOINTS and arms its entries on top of the current
/// state (throws cfpm::Error on a malformed value — unlike process start,
/// an explicit refresh wants to hear about it). For tests.
void refresh_from_env();

namespace detail {

// Number of currently armed entries; the hit() fast path is a relaxed load
// of this counter, so an unarmed process pays one uncontended atomic read
// per hook and never locks.
extern std::atomic<int> g_armed_count;

void hit_slow(std::string_view name);

}  // namespace detail

/// Hook body: cheap check, then the locked lookup only when something is
/// armed. Prefer the CFPM_FAILPOINT macro at call sites.
inline void hit(std::string_view name) {
#ifndef CFPM_NO_FAILPOINTS
  if (detail::g_armed_count.load(std::memory_order_relaxed) > 0) {
    detail::hit_slow(name);
  }
#else
  (void)name;
#endif
}

}  // namespace cfpm::failpoint

/// Marks a failure-prone site. `name` must be a string literal following
/// `subsystem.noun[.verb]` (e.g. "dd.allocate_node", "power.cone.build").
#define CFPM_FAILPOINT(name) ::cfpm::failpoint::hit(name)
