// Lightweight phase tracing: nested RAII spans collected per thread and
// emitted as Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// Tracing is off by default; a disabled Span costs one relaxed atomic load.
// Span names must be string literals (the recorder stores the pointer, not
// a copy). Spans nest lexically -- a span must be destroyed before any span
// opened earlier on the same thread (guaranteed by scoping) -- and the
// usual idiom is the macro form:
//
//   void DdManager::sift(...) {
//     CFPM_TRACE_SPAN("dd.sift");
//     ...
//   }
//
// With -DCFPM_NO_METRICS the whole facility compiles out to no-ops.
#pragma once

#include <iosfwd>

namespace cfpm::trace {

#ifndef CFPM_NO_METRICS

/// True when span recording is on.
bool enabled() noexcept;

/// Turns recording on or off. Spans already open keep recording; spans
/// constructed while disabled never record.
void set_enabled(bool on) noexcept;

/// Discards every recorded event (all threads).
void clear();

/// Writes all recorded events as a Chrome trace_event JSON document
/// ({"traceEvents": [...]}, "X" complete events, microsecond timestamps,
/// one tid per recording thread).
void write_chrome_json(std::ostream& os);

/// RAII span: records [construction, destruction) under `name` when tracing
/// is enabled at construction time. `name` must outlive the trace buffer
/// (use string literals).
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  // nullptr when not recording
  unsigned long long start_ns_;
};

#else  // CFPM_NO_METRICS

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void clear() {}
inline void write_chrome_json(std::ostream&) {}

class Span {
 public:
  explicit Span(const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // CFPM_NO_METRICS

}  // namespace cfpm::trace

#define CFPM_TRACE_CONCAT_INNER(a, b) a##b
#define CFPM_TRACE_CONCAT(a, b) CFPM_TRACE_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope.
#define CFPM_TRACE_SPAN(name) \
  ::cfpm::trace::Span CFPM_TRACE_CONCAT(cfpm_trace_span_, __LINE__)(name)
