#include "support/linear.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace cfpm {

std::vector<double> solve_spd(Matrix a, std::vector<double> b, double ridge) {
  const std::size_t n = a.rows();
  CFPM_REQUIRE(a.cols() == n);
  CFPM_REQUIRE(b.size() == n);

  // Scale-aware ridge: relative to the largest diagonal entry.
  double dmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) dmax = std::max(dmax, std::abs(a(i, i)));
  const double eps = ridge * (dmax > 0.0 ? dmax : 1.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += eps;

  // In-place LDL^T: L is unit lower triangular stored in the strict lower
  // part of a, D on the diagonal.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k) * a(k, k);
    a(j, j) = d;
    CFPM_ASSERT(std::isfinite(d));
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k) * a(k, k);
      a(i, j) = (d != 0.0) ? v / d : 0.0;
    }
  }

  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) b[i] -= a(i, k) * b[k];
  }
  // Diagonal: D w = z.
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = (a(i, i) != 0.0) ? b[i] / a(i, i) : 0.0;
  }
  // Back substitution: L^T x = w.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t k = i + 1; k < n; ++k) b[i] -= a(k, i) * b[k];
  }
  return b;
}

std::vector<double> least_squares(const Matrix& x, const std::vector<double>& y,
                                  double ridge) {
  const std::size_t m = x.rows();
  const std::size_t k = x.cols();
  CFPM_REQUIRE(y.size() == m);
  CFPM_REQUIRE(k > 0);

  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      const double xi = x(r, i);
      if (xi == 0.0) continue;
      xty[i] += xi * y[r];
      for (std::size_t j = i; j < k; ++j) xtx(i, j) += xi * x(r, j);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < i; ++j) xtx(i, j) = xtx(j, i);
  }
  return solve_spd(std::move(xtx), std::move(xty), ridge);
}

}  // namespace cfpm
