// Non-cryptographic content hashing for cache keys.
//
// The model registry (src/serve) addresses compiled models by the content
// of their canonical netlist text plus a build-option fingerprint. FNV-1a
// is enough for that: keys are verified with an independent second hash on
// every hit (a primary/check pair, like git's short-hash + object header),
// so a collision is detected and rejected rather than silently served.
// Nothing here defends against adversarial inputs — integrity against
// tampering is out of scope, exactly as for support/crc32.
#pragma once

#include <cstdint>
#include <string_view>

namespace cfpm {

/// 64-bit FNV-1a of `data`. `seed` selects an independent stream (the
/// registry uses two: the primary cache key and the collision-check hash).
inline std::uint64_t fnv1a_64(std::string_view data,
                              std::uint64_t seed = 0) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Feeds an integer into a running FNV stream (e.g. option fingerprints).
inline std::uint64_t fnv1a_64_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xffu;
    h *= 0x100000001b3ull;
    v >>= 8;
  }
  return h;
}

}  // namespace cfpm
