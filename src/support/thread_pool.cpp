#include "support/thread_pool.hpp"

#include <algorithm>
#include <new>
#include <system_error>

#include "support/failpoint.hpp"
#include "support/metrics.hpp"

namespace cfpm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  // Spawns are metered so a test (or a metrics snapshot in production) can
  // assert that single-lane pools never create a thread.
  static const metrics::Counter c_spawn("threadpool.worker.spawn");
  static const metrics::Counter c_spawn_failed("threadpool.worker.spawn_failed");
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    // A thread/memory limit is a capacity problem, not a correctness one:
    // every run_indexed contract holds at any lane count, so degrade to
    // however many workers actually spawned (down to pure inline execution)
    // instead of propagating out of the constructor. The shortfall is
    // visible via num_workers() and the spawn_failed metric.
    try {
      CFPM_FAILPOINT("threadpool.spawn");
      workers_.emplace_back([this] { worker_loop(); });
      c_spawn.add();
    } catch (const std::system_error&) {
      c_spawn_failed.add();
    } catch (const std::bad_alloc&) {
      c_spawn_failed.add();
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [&] {
      return stop_ || generation_ != seen || !tasks_.empty();
    });
    if (generation_ != seen) {
      seen = generation_;
      drain_indices_locked(lock);
      continue;
    }
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      run_task(task);
      lock.lock();
      continue;
    }
    // stop_ is checked last so queued detached tasks drain before exit:
    // a posted task is a promise of execution, not best-effort.
    if (stop_) return;
  }
}

void ThreadPool::run_task(std::function<void()>& task) noexcept {
  static const metrics::Counter c_error("threadpool.task.error");
  try {
    CFPM_FAILPOINT("threadpool.task");
    task();
  } catch (...) {
    // Detached work has no caller stack to land on; the task owner is
    // responsible for capturing outcomes (the serve build queue stores the
    // exception in its job record before it can escape here).
    c_error.add();
  }
}

void ThreadPool::post(std::function<void()> task) {
  static const metrics::Counter c_post("threadpool.task.posted");
  c_post.add();
  if (workers_.empty()) {
    // Single-lane pool: the calling thread is the only lane there is.
    run_task(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::drain_indices_locked(std::unique_lock<std::mutex>& lock) {
  while (next_index_ < job_count_) {
    const std::size_t i = next_index_++;
    const std::function<void(std::size_t)>* job = job_;
    lock.unlock();
    std::exception_ptr err;
    try {
      CFPM_FAILPOINT("threadpool.task");
      (*job)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !error_) error_ = err;
    if (++completed_ == job_count_) batch_done_.notify_all();
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      CFPM_FAILPOINT("threadpool.task");
      fn(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_count_ = count;
  next_index_ = 0;
  completed_ = 0;
  error_ = nullptr;
  ++generation_;
  work_ready_.notify_all();
  drain_indices_locked(lock);
  batch_done_.wait(lock, [&] { return completed_ == job_count_; });
  job_ = nullptr;
  job_count_ = 0;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace cfpm
