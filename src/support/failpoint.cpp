#include "support/failpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/parse.hpp"

namespace cfpm::failpoint {

namespace detail {
std::atomic<int> g_armed_count{0};
}  // namespace detail

namespace {

struct Entry {
  Action action = Action::kThrowBadAlloc;
  std::uint32_t delay_ms = 0;
  std::uint64_t remaining = 0;  // kForever = unbounded
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Entry> map;
};

// Leaked singleton: failpoints can fire from static destructors of other
// translation units, so the registry must never be torn down.
Registry& reg() {
  static auto* r = new Registry();
  return *r;
}

std::atomic<std::uint64_t> g_total_fires{0};

struct ParsedEntry {
  std::string name;
  Action action = Action::kThrowBadAlloc;
  std::uint64_t count = 1;
  std::uint32_t delay_ms = 0;
};

ParsedEntry parse_entry(std::string_view entry) {
  const auto eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw Error("failpoint spec entry '" + std::string(entry) +
                "': expected name=action[:count]");
  }
  ParsedEntry out;
  out.name = std::string(entry.substr(0, eq));
  std::string_view rhs = entry.substr(eq + 1);
  if (const auto colon = rhs.rfind(':'); colon != std::string_view::npos &&
                                         rhs.find(')', colon) ==
                                             std::string_view::npos) {
    // A ':' after the action is a count — but not one inside "delay_ms(N)".
    const auto count = parse_number<std::uint64_t>(rhs.substr(colon + 1));
    if (!count) {
      throw Error("failpoint spec entry '" + std::string(entry) +
                  "': bad count '" + std::string(rhs.substr(colon + 1)) + "'");
    }
    out.count = *count;
    rhs = rhs.substr(0, colon);
  }
  if (rhs == "throw_bad_alloc") {
    out.action = Action::kThrowBadAlloc;
  } else if (rhs == "throw_deadline") {
    out.action = Action::kThrowDeadline;
  } else if (rhs == "throw_resource") {
    out.action = Action::kThrowResource;
  } else if (rhs == "fail_io") {
    out.action = Action::kFailIo;
  } else if (rhs.rfind("delay_ms(", 0) == 0 && rhs.back() == ')') {
    const auto ms = parse_number<std::uint32_t>(
        rhs.substr(9, rhs.size() - 10));
    if (!ms) {
      throw Error("failpoint spec entry '" + std::string(entry) +
                  "': bad delay_ms argument");
    }
    out.action = Action::kDelayMs;
    out.delay_ms = *ms;
  } else {
    throw Error("failpoint spec entry '" + std::string(entry) +
                "': unknown action '" + std::string(rhs) + "'");
  }
  return out;
}

std::vector<ParsedEntry> parse_spec(std::string_view spec) {
  std::vector<ParsedEntry> entries;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const auto end = comma == std::string_view::npos ? spec.size() : comma;
    const std::string_view entry = spec.substr(pos, end - pos);
    if (!entry.empty()) entries.push_back(parse_entry(entry));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (entries.empty()) throw Error("empty failpoint spec");
  return entries;
}

// Seeds the registry from CFPM_FAILPOINTS once, before main(), so every
// binary (tests included) honors a standing fault config without plumbing.
// Static-init context: a malformed value warns instead of throwing.
const bool g_env_seeded = [] {
  const char* env = std::getenv("CFPM_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    try {
      arm_from_spec(env);
    } catch (const std::exception& e) {
      std::cerr << "cfpm: warning: ignoring CFPM_FAILPOINTS: " << e.what()
                << "\n";
    }
  }
  return true;
}();

}  // namespace

void arm(const std::string& name, Action action, std::uint64_t count,
         std::uint32_t delay_ms) {
  if (name.empty()) throw Error("failpoint name must be non-empty");
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto [it, inserted] =
      r.map.insert_or_assign(name, Entry{action, delay_ms, count});
  (void)it;
  if (inserted) {
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void arm_from_spec(std::string_view spec) {
  // Parse the whole spec first: a throw arms nothing.
  for (const ParsedEntry& e : parse_spec(spec)) {
    arm(e.name, e.action, e.count, e.delay_ms);
  }
}

void validate_spec(std::string_view spec) { (void)parse_spec(spec); }

void disarm(const std::string& name) {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.map.erase(name) > 0) {
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& r = reg();
  const std::lock_guard<std::mutex> lock(r.mu);
  detail::g_armed_count.fetch_sub(static_cast<int>(r.map.size()),
                                  std::memory_order_relaxed);
  r.map.clear();
}

std::vector<Status> armed() {
  Registry& r = reg();
  std::vector<Status> out;
  {
    const std::lock_guard<std::mutex> lock(r.mu);
    out.reserve(r.map.size());
    for (const auto& [name, e] : r.map) {
      out.push_back(Status{name, e.action, e.delay_ms, e.remaining});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Status& a, const Status& b) { return a.name < b.name; });
  return out;
}

std::uint64_t total_fires() noexcept {
  return g_total_fires.load(std::memory_order_relaxed);
}

void refresh_from_env() {
  const char* env = std::getenv("CFPM_FAILPOINTS");
  if (env != nullptr && *env != '\0') arm_from_spec(env);
}

namespace detail {

void hit_slow(std::string_view name) {
  static const metrics::Counter c_fired("failpoint.fired");
  Action action{};
  std::uint32_t delay_ms = 0;
  {
    Registry& r = reg();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.map.find(std::string(name));
    if (it == r.map.end()) return;
    Entry& e = it->second;
    action = e.action;
    delay_ms = e.delay_ms;
    if (e.remaining != kForever && --e.remaining == 0) {
      r.map.erase(it);
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  g_total_fires.fetch_add(1, std::memory_order_relaxed);
  c_fired.add();
  switch (action) {
    case Action::kThrowBadAlloc:
      throw std::bad_alloc();
    case Action::kThrowDeadline:
      throw DeadlineExceeded("injected deadline at failpoint '" +
                             std::string(name) + "'");
    case Action::kThrowResource:
      throw ResourceError("injected resource fault at failpoint '" +
                          std::string(name) + "'");
    case Action::kFailIo:
      throw IoError("injected I/O failure at failpoint '" + std::string(name) +
                    "'");
    case Action::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return;
  }
}

}  // namespace detail

}  // namespace cfpm::failpoint
