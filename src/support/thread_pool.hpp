// Fixed-size worker pool for data-parallel loops.
//
// The pool exists to shard deterministic batch work (trace evaluation,
// experiment grids) without paying thread creation per call. Determinism is
// the caller's contract: work must be split into chunks whose boundaries do
// not depend on the thread count, with per-chunk results written to
// per-chunk slots and reduced in chunk order afterwards — then the outcome
// is bit-identical for any pool size (see PowerModel::estimate_trace).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cfpm {

class ThreadPool {
 public:
  /// A pool of `num_threads` total execution lanes, the calling thread
  /// included (so ThreadPool(1) spawns nothing and runs inline).
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  std::size_t num_threads() const noexcept { return workers_.size() + 1; }

  /// Spawned worker threads: at most num_threads() - 1, and 0 for
  /// ThreadPool(1) — the single-lane pool is a pure inline executor (no
  /// threads, and run_indexed never touches the queue mutex). May be lower
  /// than requested when std::thread construction fails (resource limits):
  /// the constructor degrades to the workers that did spawn instead of
  /// throwing, counting each loss in `threadpool.worker.spawn_failed`.
  /// Regression-tested.
  std::size_t num_workers() const noexcept { return workers_.size(); }

  /// Invokes fn(i) once for every i in [0, count), distributed over the
  /// pool; the calling thread participates. Blocks until all indices are
  /// done. Which thread runs which index is unspecified. If any invocation
  /// throws, one of the exceptions is rethrown here after the batch drains.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Enqueues a detached task for some worker to run; returns immediately.
  /// A single-lane pool (no workers) runs the task inline before returning,
  /// so posted work completes at any pool size. Tasks still queued when the
  /// pool is destroyed are drained — run to completion — before the workers
  /// exit, never dropped. A task is detached work: an exception escaping it
  /// is swallowed and counted (`threadpool.task.error`); report outcomes
  /// through the task's own channel (the serve build queue stores them in
  /// its job record). This is the async-build entry of the model server;
  /// run_indexed batches keep their bit-identical contract but may
  /// temporarily lose a lane to a long-running posted task.
  void post(std::function<void()> task);

 private:
  void worker_loop();
  /// Claims and runs indices of the current batch until none remain.
  /// Expects `lock` held; releases it around each fn invocation.
  void drain_indices_locked(std::unique_lock<std::mutex>& lock);
  /// Runs one detached task, swallowing and counting any exception.
  static void run_task(std::function<void()>& task) noexcept;

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> tasks_;  // guarded by mutex_
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_index_ = 0;   // guarded by mutex_
  std::size_t completed_ = 0;    // guarded by mutex_
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace cfpm
