#include "support/metrics.hpp"

#include <algorithm>
#include <ostream>

#ifndef CFPM_NO_METRICS
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <mutex>

#include "support/assert.hpp"
#endif

namespace cfpm::metrics {

#ifndef CFPM_NO_METRICS

namespace {

// Fixed capacities: registration past these limits is a contract violation
// (the metric inventory is a compile-time property of the codebase, not
// data-dependent), and fixed arrays keep shards POD and allocation-free.
constexpr std::size_t kMaxCounters = 192;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 48;

struct HistogramCells {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// One thread's slice of every metric. All cells are relaxed atomics: the
/// owning thread is the only writer, but snapshot() reads them from another
/// thread, so plain loads would be data races.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistogramCells, kMaxHistograms> histograms{};

  void fold_into(Shard& dst) const noexcept {
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      const std::uint64_t v = counters[i].load(std::memory_order_relaxed);
      if (v != 0) dst.counters[i].fetch_add(v, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      const HistogramCells& src = histograms[i];
      HistogramCells& d = dst.histograms[i];
      const std::uint64_t c = src.count.load(std::memory_order_relaxed);
      if (c == 0) continue;
      d.count.fetch_add(c, std::memory_order_relaxed);
      d.sum.fetch_add(src.sum.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t bv = src.buckets[b].load(std::memory_order_relaxed);
        if (bv != 0) d.buckets[b].fetch_add(bv, std::memory_order_relaxed);
      }
    }
  }

  void zero() noexcept {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

/// The process-wide registry. Intentionally leaked (never destroyed): shard
/// folding runs from thread_local destructors whose order relative to static
/// destruction is unknowable, so the registry must outlive everything.
class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry();  // leaked by design
    return *r;
  }

  std::uint32_t intern(std::string_view name, std::vector<std::string>& names,
                       std::size_t cap) {
    std::lock_guard lock(mutex_);
    for (std::uint32_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    CFPM_REQUIRE(names.size() < cap);  // metric inventory exceeds capacity
    names.emplace_back(name);
    return static_cast<std::uint32_t>(names.size() - 1);
  }

  std::uint32_t intern_counter(std::string_view name) {
    return intern(name, counter_names_, kMaxCounters);
  }
  std::uint32_t intern_gauge(std::string_view name) {
    return intern(name, gauge_names_, kMaxGauges);
  }
  std::uint32_t intern_histogram(std::string_view name) {
    return intern(name, histogram_names_, kMaxHistograms);
  }

  void attach(Shard* shard) {
    std::lock_guard lock(mutex_);
    live_shards_.push_back(shard);
  }

  /// Folds a departing thread's totals into the retired accumulator and
  /// drops the shard pointer (the Shard itself is owned by the caller and
  /// about to be destroyed).
  void detach(Shard* shard) {
    std::lock_guard lock(mutex_);
    shard->fold_into(retired_);
    live_shards_.erase(
        std::remove(live_shards_.begin(), live_shards_.end(), shard),
        live_shards_.end());
  }

  void set_gauge(std::uint32_t id, double value) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    gauge_bits_[id].store(bits, std::memory_order_relaxed);
  }

  Snapshot snapshot() {
    std::lock_guard lock(mutex_);
    Shard merged;
    retired_.fold_into(merged);
    for (const Shard* s : live_shards_) s->fold_into(merged);

    Snapshot snap;
    snap.counters.reserve(counter_names_.size());
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      snap.counters.push_back(
          {counter_names_[i],
           merged.counters[i].load(std::memory_order_relaxed)});
    }
    for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
      const std::uint64_t bits = gauge_bits_[i].load(std::memory_order_relaxed);
      double value;
      std::memcpy(&value, &bits, sizeof(value));
      snap.gauges.push_back({gauge_names_[i], value});
    }
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      Snapshot::HistogramValue h;
      h.name = histogram_names_[i];
      const HistogramCells& cells = merged.histograms[i];
      h.count = cells.count.load(std::memory_order_relaxed);
      h.sum = cells.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] = cells.buckets[b].load(std::memory_order_relaxed);
      }
      snap.histograms.push_back(std::move(h));
    }

    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
  }

  void reset() {
    std::lock_guard lock(mutex_);
    retired_.zero();
    for (Shard* s : live_shards_) s->zero();
    for (auto& g : gauge_bits_) g.store(0, std::memory_order_relaxed);
  }

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<Shard*> live_shards_;
  Shard retired_;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauge_bits_{};
};

/// Owns the calling thread's shard; registers on construction and folds the
/// shard into the registry's retired accumulator on thread exit.
struct ShardHandle {
  Shard shard;
  ShardHandle() { Registry::instance().attach(&shard); }
  ~ShardHandle() { Registry::instance().detach(&shard); }
};

Shard& local_shard() {
  thread_local ShardHandle handle;
  return handle.shard;
}

std::size_t bucket_index(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const std::size_t w = static_cast<std::size_t>(std::bit_width(value));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Counter::Counter(std::string_view name)
    : id_(Registry::instance().intern_counter(name)) {}

void Counter::add(std::uint64_t n) const noexcept {
  local_shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
}

Gauge::Gauge(std::string_view name)
    : id_(Registry::instance().intern_gauge(name)) {}

void Gauge::set(double value) const noexcept {
  Registry::instance().set_gauge(id_, value);
}

Histogram::Histogram(std::string_view name)
    : id_(Registry::instance().intern_histogram(name)) {}

void Histogram::observe(std::uint64_t value) const noexcept {
  HistogramCells& cells = local_shard().histograms[id_];
  cells.count.fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
  cells.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const Histogram& histogram) noexcept
    : histogram_(histogram), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  histogram_.observe((now_ns() - start_ns_) / 1000);  // microseconds
}

Snapshot snapshot() { return Registry::instance().snapshot(); }

void reset_for_testing() { Registry::instance().reset(); }

#endif  // CFPM_NO_METRICS

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const Snapshot::HistogramValue* Snapshot::histogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Snapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, counters[i].name);
    os << ": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, gauges[i].name);
    os << ": " << gauges[i].value;
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, h.name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": {";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << '"' << b << "\": " << h.buckets[b];
    }
    os << "}}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

}  // namespace cfpm::metrics
