// Build governor: deadline, cooperative cancellation, and node accounting
// for long-running symbolic constructions.
//
// A Governor is owned by the caller that wants a bound on a construction
// (CLI, experiment harness, tests) and handed to the workers via
// dd::DdConfig / power::AddModelOptions. Workers call the cheap tick
// entry points at natural progress points (node allocations, level swaps,
// gate iterations); the governor turns those ticks into bounded-interval
// checks of the deadline and the cancellation flag, throwing
// DeadlineExceeded / CancelledError from the *worker's* stack so the
// construction unwinds through exception-safe code instead of being killed.
//
// Contract:
//  * on_allocation() is called once per decision-diagram node allocation
//    outside in-place reordering; it runs a full check() at least every
//    kCheckInterval ticks, so a runaway apply stops within ~10^3
//    allocations (well under a millisecond) of the deadline or of a
//    cancellation request.
//  * checkpoint() is a full check; workers call it at coarse safe points
//    (per gate summed, per adjacent-level swap) where an immediate stop is
//    cheap and the diagram is structurally consistent.
//  * Thread-safety: any thread may call request_cancellation() while a
//    build polls the governor on another thread, and one Governor may be
//    shared by several concurrently polling workers (the cone-parallel
//    model build hands the same governor to every worker manager) — the
//    tick counters are relaxed atomics and the peak tracker is a CAS max.
//    Arm the deadline and any injected fault *before* workers start; those
//    fields are plain loads on the hot path.
//  * Fault injection (tests): inject_fault() arms a one-shot ResourceError
//    or CancelledError fired at the Nth subsequent allocation tick, which is
//    how the exception-safety of DdManager is exercised deterministically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace cfpm {

/// Kind of one-shot fault armed by inject_fault (kNone disarms).
enum class FaultKind : std::uint8_t { kNone, kResource, kCancel };

class Governor {
 public:
  /// Full checks happen at least once per this many allocation ticks.
  static constexpr std::uint64_t kCheckInterval = 1024;

  Governor() = default;

  // ----- deadline ----------------------------------------------------------

  /// Arms a wall-clock deadline `budget` from now. A zero budget expires
  /// immediately (useful for deterministic tests of the expired path).
  void set_deadline(std::chrono::milliseconds budget) {
    deadline_ = Clock::now() + budget;
    has_deadline_ = true;
  }
  void clear_deadline() noexcept { has_deadline_ = false; }
  bool has_deadline() const noexcept { return has_deadline_; }
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }
  /// Seconds until the deadline (negative when past it, +inf when unarmed).
  double remaining_seconds() const;

  // ----- cooperative cancellation ------------------------------------------

  void request_cancellation() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool cancellation_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // ----- accounting ---------------------------------------------------------

  /// Records the manager's live-node count; keeps the high-water mark
  /// (CAS max, so concurrent workers never lose a larger observation).
  void note_live_nodes(std::size_t live) noexcept {
    std::size_t cur = peak_live_nodes_.load(std::memory_order_relaxed);
    while (live > cur && !peak_live_nodes_.compare_exchange_weak(
                             cur, live, std::memory_order_relaxed)) {
    }
  }
  std::size_t peak_live_nodes() const noexcept {
    return peak_live_nodes_.load(std::memory_order_relaxed);
  }
  std::uint64_t allocation_ticks() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }
  std::uint64_t checks() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }

  // ----- polling ------------------------------------------------------------

  /// Per-allocation tick: counts, fires any armed fault, and runs a full
  /// check() every kCheckInterval ticks. Cheap enough for the allocation
  /// hot path (one relaxed increment and two compares on the fast path).
  /// With N workers sharing the governor the check cadence is global: some
  /// worker runs a full check at least once per kCheckInterval total
  /// allocations, which is exactly the bound the serial contract gives.
  void on_allocation() {
    const std::uint64_t n =
        allocations_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fault_kind_ != FaultKind::kNone && n >= fault_at_) {
      // One-shot across threads: only the worker that disarms it throws.
      const FaultKind kind = fault_kind_.exchange(FaultKind::kNone);
      if (kind != FaultKind::kNone) fire_fault(kind, n);
    }
    if (since_check_.fetch_add(1, std::memory_order_relaxed) + 1 >=
        kCheckInterval) {
      since_check_.store(0, std::memory_order_relaxed);
      check();
    }
  }

  /// Full check at a coarse safe point; throws CancelledError or
  /// DeadlineExceeded when the corresponding condition holds.
  void checkpoint();

  // ----- fault injection (tests) -------------------------------------------

  /// Arms a one-shot fault fired at allocation tick `at_allocation`
  /// (absolute count; arm before the run and use 1-based Nth-allocation
  /// semantics). kNone disarms.
  void inject_fault(FaultKind kind, std::uint64_t at_allocation) noexcept {
    fault_kind_ = kind;
    fault_at_ = at_allocation;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void check();
  [[noreturn]] void fire_fault(FaultKind kind, std::uint64_t at_tick);

  // deadline_ itself is a plain field: armed before polling starts (see the
  // thread-safety note above); has_deadline_ is atomic so a late-armed
  // deadline is at worst seen a few ticks later, never torn.
  Clock::time_point deadline_{};
  std::atomic<bool> has_deadline_{false};
  std::atomic<bool> cancelled_{false};

  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> since_check_{0};
  std::atomic<std::uint64_t> checks_{0};
  /// Allocation ticks already metered (see check()).
  std::atomic<std::uint64_t> polls_flushed_{0};
  std::atomic<std::size_t> peak_live_nodes_{0};

  std::atomic<FaultKind> fault_kind_{FaultKind::kNone};
  std::uint64_t fault_at_ = 0;  // armed before the run, like deadline_
};

}  // namespace cfpm
