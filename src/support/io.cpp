#include "support/io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include <fcntl.h>
#include <unistd.h>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/metrics.hpp"

namespace cfpm {

namespace {

// Flushes file contents to stable storage. Advisory on filesystems without
// fsync semantics; an error here still aborts the protocol because a write
// the kernel already rejected will not get better.
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw IoError("cannot reopen '" + path + "' for fsync: " +
                  std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    throw IoError("fsync failed for '" + path + "': " +
                  std::strerror(saved_errno));
  }
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  static const metrics::Counter c_write("io.atomic_write");
  static const metrics::Counter c_failed("io.atomic_write.failed");
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw IoError("cannot open '" + tmp + "' for writing: " +
                      std::strerror(errno));
      }
      writer(out);
      CFPM_FAILPOINT("io.atomic_write.write");
      out.flush();
      if (!out) {
        throw IoError("write to '" + tmp + "' failed (disk full?)");
      }
    }
    fsync_path(tmp);
    CFPM_FAILPOINT("io.atomic_write.rename");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("cannot rename '" + tmp + "' to '" + path + "': " +
                    std::strerror(errno));
    }
  } catch (...) {
    c_failed.add();
    std::remove(tmp.c_str());
    throw;
  }
  c_write.add();
}

}  // namespace cfpm
