#include "support/trace.hpp"

#ifndef CFPM_NO_METRICS

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>
#include <vector>

namespace cfpm::trace {
namespace {

struct Event {
  const char* name;
  unsigned long long start_ns;
  unsigned long long dur_ns;
};

struct ThreadBuffer {
  std::vector<Event> events;
  int tid;
};

/// Trace recorder: same lifetime discipline as the metrics registry -- a
/// leaked singleton, because thread_local buffer destructors may run after
/// static destruction would have torn a normal singleton down.
class Recorder {
 public:
  static Recorder& instance() {
    static Recorder* r = new Recorder();  // leaked by design
    return *r;
  }

  std::atomic<bool> enabled{false};

  ThreadBuffer* attach() {
    std::lock_guard lock(mutex_);
    auto buf = new ThreadBuffer();
    buf->tid = next_tid_++;
    live_.push_back(buf);
    return buf;
  }

  void detach(ThreadBuffer* buf) {
    std::lock_guard lock(mutex_);
    if (!buf->events.empty()) {
      retired_.push_back(std::move(*buf));
    }
    live_.erase(std::remove(live_.begin(), live_.end(), buf), live_.end());
    delete buf;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    retired_.clear();
    for (ThreadBuffer* b : live_) b->events.clear();
  }

  void write(std::ostream& os) {
    std::lock_guard lock(mutex_);
    os << "{\"traceEvents\": [";
    bool first = true;
    auto emit = [&](const ThreadBuffer& buf) {
      for (const Event& e : buf.events) {
        if (!first) os << ",";
        first = false;
        os << "\n  {\"name\": \"" << e.name
           << "\", \"cat\": \"cfpm\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
           << buf.tid << ", \"ts\": " << e.start_ns / 1000
           << ", \"dur\": " << e.dur_ns / 1000 << "}";
      }
    };
    for (const ThreadBuffer& b : retired_) emit(b);
    for (const ThreadBuffer* b : live_) emit(*b);
    os << "\n]}\n";
  }

 private:
  Recorder() = default;

  std::mutex mutex_;
  std::vector<ThreadBuffer*> live_;
  std::vector<ThreadBuffer> retired_;
  int next_tid_ = 1;
};

struct BufferHandle {
  ThreadBuffer* buffer;
  BufferHandle() : buffer(Recorder::instance().attach()) {}
  ~BufferHandle() { Recorder::instance().detach(buffer); }
};

ThreadBuffer& local_buffer() {
  thread_local BufferHandle handle;
  return *handle.buffer;
}

unsigned long long now_ns() noexcept {
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool enabled() noexcept {
  return Recorder::instance().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  Recorder::instance().enabled.store(on, std::memory_order_relaxed);
}

void clear() { Recorder::instance().clear(); }

void write_chrome_json(std::ostream& os) { Recorder::instance().write(os); }

Span::Span(const char* name) noexcept
    : name_(enabled() ? name : nullptr), start_ns_(name_ ? now_ns() : 0) {}

Span::~Span() {
  if (!name_) return;
  const unsigned long long end = now_ns();
  local_buffer().events.push_back({name_, start_ns_, end - start_ns_});
}

}  // namespace cfpm::trace

#endif  // CFPM_NO_METRICS
