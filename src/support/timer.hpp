// Wall-clock stopwatch used to report model-construction CPU columns.
#pragma once

#include <chrono>

namespace cfpm {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cfpm
