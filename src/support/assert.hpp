// Lightweight contract-checking macros used across the library.
//
// CFPM_REQUIRE  - precondition on public API arguments; always on, throws.
// CFPM_ASSERT   - internal invariant; compiled out in NDEBUG builds.
// CFPM_UNREACHABLE - marks logically impossible control flow.
#pragma once

#include <stdexcept>
#include <string>

#include "support/error.hpp"

namespace cfpm {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw ContractError(std::string(kind) + " failed: " + expr + " at " + file +
                      ":" + std::to_string(line));
}

}  // namespace cfpm

#define CFPM_REQUIRE(expr)                                             \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::cfpm::contract_failure("precondition", #expr, __FILE__, __LINE__); \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define CFPM_ASSERT(expr) ((void)0)
#else
#define CFPM_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::cfpm::contract_failure("invariant", #expr, __FILE__, __LINE__); \
    }                                                                  \
  } while (false)
#endif

#define CFPM_UNREACHABLE(msg)                                          \
  ::cfpm::contract_failure("unreachable", msg, __FILE__, __LINE__)
