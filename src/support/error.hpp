// Exception hierarchy for the cfpm library.
#pragma once

#include <stdexcept>
#include <string>

namespace cfpm {

/// Base class of all cfpm exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated precondition or internal invariant.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// Malformed input file (netlist parser, model deserialization).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line)
      : Error(what + " (line " + std::to_string(line) + ")"), line_(line) {}
  explicit ParseError(const std::string& what) : Error(what), line_(0) {}

  /// 1-based line of the offending input, 0 if not applicable.
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// A filesystem or stream operation failed (short write, failed rename,
/// unwritable path). Crash-safe writers (support/io) throw this instead of
/// silently truncating output.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Resource limit exceeded (e.g. decision-diagram node budget).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

/// A governed operation ran past its wall-clock deadline. Recoverable: the
/// degradation ladder (power/add_model) converts it into a cheaper model.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// A governed operation observed a cooperative cancellation request. Not
/// recoverable by design: cancellation means "stop", so it propagates past
/// the degradation ladder to the caller that requested it.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

}  // namespace cfpm
