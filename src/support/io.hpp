// Crash-safe file output.
//
// A plain `std::ofstream out(path); write(out);` has two failure modes this
// library cannot afford: a full disk or I/O error silently truncates the
// file (ofstream never throws by default), and a crash mid-write leaves a
// torn file under the final name — fatal for model persistence, fuzz-corpus
// commits and metrics artifacts that downstream jobs parse.
//
// atomic_write_file implements the standard write-temp-then-rename protocol:
// the writer runs against `path + ".tmp"`, the stream is flushed and checked,
// the temp file is fsync'ed, and only then renamed over `path`. POSIX
// rename(2) is atomic, so readers observe either the complete old file or
// the complete new one — never a partial write. Any failure (including an
// exception from the writer itself) removes the temp file and leaves the
// destination untouched.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace cfpm {

/// Writes `path` atomically: `writer` streams into a temp file that replaces
/// `path` only after a successful flush + fsync + rename. Throws
/// cfpm::IoError when the temp file cannot be opened, the stream ends in a
/// failed state, or fsync/rename fail; rethrows whatever `writer` throws.
/// In every failure case the previous contents of `path` are preserved and
/// the temp file is removed.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace cfpm
