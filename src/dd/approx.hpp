// ADD approximation by node collapsing (Section 3 of the paper).
//
// A sub-ADD is "collapsed" when it is replaced by a single constant leaf.
// Two strategies are provided:
//
//  * kAverage   - collapse nodes of minimum variance, replacing each by its
//                 average value. Preserves the global average exactly and
//                 minimizes mean-square error for a given collapse set.
//  * kUpperBound- collapse nodes of minimum mse (Eq. 8), replacing each by
//                 its maximum value. The result dominates the original
//                 function pointwise (conservative bound).
//
// Both strategies commute with addition in the sense exploited by the
// paper's process flow (Fig. 6): avg(a)+avg(b) == avg(a+b) and
// max(a)+max(b) >= max(a+b), so local approximation of partial sums keeps
// the global guarantee.
#pragma once

#include <cstddef>

#include "dd/manager.hpp"

namespace cfpm::dd {

enum class ApproxMode {
  kAverage,     ///< collapse to avg; minimizes mse, preserves mean
  kUpperBound,  ///< collapse to max; conservative pointwise bound
};

/// Criterion used to pick which sub-ADDs to collapse first.
enum class CollapseMetric {
  /// var(n)/avg(n)^2 (default): quantizes clusters of similar values, so
  /// the induced error stays proportional to the predicted magnitude and
  /// the model's relative accuracy survives at every input statistic.
  kRelativeSpread,
  /// The paper's literal criterion: smallest var(n) (Eq. 5) first.
  kVariance,
  /// reach(n) * var(n): the exact contribution of the collapse to the
  /// model's global mean-square error under uniform inputs.
  kReachWeightedVariance,
};

struct ApproxResult {
  Add function;             ///< the simplified ADD
  std::size_t final_size;   ///< node count of `function` (incl. terminals)
  std::size_t collapsed;    ///< number of collapse operations applied
  std::size_t rounds;       ///< rebuild rounds needed
};

/// Reduces `f` to at most `max_size` nodes (terminals included).
/// `max_size` must be >= 1; with max_size == 1 the result degenerates to a
/// constant estimator (avg or max of f depending on the mode).
ApproxResult approximate(const Add& f, std::size_t max_size, ApproxMode mode,
                         CollapseMetric metric = CollapseMetric::kRelativeSpread);

/// Convenience wrapper returning only the simplified function.
Add approximate_to(const Add& f, std::size_t max_size, ApproxMode mode,
                   CollapseMetric metric = CollapseMetric::kRelativeSpread);

/// Leaf quantization: reduces the number of *distinct terminal values* to
/// at most `max_leaves` by repeatedly merging the two closest values
/// (mass-weighted average in kAverage mode; upward to the larger value in
/// kUpperBound mode, which keeps the result a pointwise upper bound).
/// Merging equal leaves also merges the structure above them, so this is a
/// natural companion to node collapsing for value-rich functions such as
/// switching-capacitance sums, whose node counts are often dominated by
/// the diversity of partial-sum values rather than by Boolean structure.
Add quantize_leaves(const Add& f, std::size_t max_leaves, ApproxMode mode);

}  // namespace cfpm::dd
