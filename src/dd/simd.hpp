// Runtime SIMD dispatch for the compiled-evaluation kernels.
//
// The packed sweep of CompiledDd is pure 64-bit mask bandwidth: every node
// moves W words from its reach row to its children's rows. Widening W words
// per instruction is therefore a direct throughput multiplier, but the
// binary must keep running on machines without AVX, and CI must be able to
// pin the scalar path. This module owns that policy:
//
//  * detect_simd_tier()  — what the CPU can do (cpuid, cached).
//  * requested tier      — what the caller asked for: kAuto by default,
//    overridden by the CFPM_SIMD environment variable (auto|scalar|avx2|
//    avx512) or programmatically (CLI --simd).
//  * active_simd_tier()  — min(requested, detected): asking for a tier the
//    CPU lacks silently degrades to the best supported one, so a pinned
//    "avx512" config stays runnable on an AVX2 host.
//
// Every kernel produces bit-identical results (the masks are exact and the
// terminal gather copies doubles verbatim), so the tier is a pure
// performance knob; the simd-dispatch fuzz oracle holds us to that.
#pragma once

#include <string_view>

namespace cfpm::dd::simd {

/// Widths the sweep kernels come in, ordered so that numeric comparison is
/// capability comparison.
enum class Tier : int {
  kScalar = 0,  ///< plain uint64 loop (always available)
  kAvx2 = 1,    ///< 256-bit: 4 mask words per instruction
  kAvx512 = 2,  ///< 512-bit: 8 mask words per instruction
};

/// Best tier this CPU supports (cpuid-derived, computed once).
Tier detect_simd_tier() noexcept;

/// Tier evaluation kernels actually run: min(requested, detected).
Tier active_simd_tier() noexcept;

/// Programmatic override (CLI --simd). kAuto semantics: pass
/// `request_simd_auto()`; anything above the detected tier is clamped by
/// active_simd_tier(), not here, so the request survives verbatim for
/// diagnostics.
void request_simd_tier(Tier tier) noexcept;
void request_simd_auto() noexcept;

/// Parses "auto", "scalar", "avx2" or "avx512" and applies it as the
/// requested tier; false (state unchanged) on anything else.
bool request_simd_tier(std::string_view name) noexcept;

/// Re-reads the CFPM_SIMD environment variable (valid values as above;
/// unset or invalid resets to auto). Called once at static init; exposed so
/// tests can flip the override without a subprocess.
void refresh_simd_tier_from_env() noexcept;

/// "scalar", "avx2", "avx512" (never "auto": the active tier is resolved).
std::string_view simd_tier_name(Tier tier) noexcept;

}  // namespace cfpm::dd::simd
