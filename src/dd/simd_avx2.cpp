#include "dd/simd_kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace cfpm::dd::simd {

// 256-bit sweep: four mask words per instruction. Compiled with a
// per-function target attribute so the translation unit builds under the
// project's baseline flags; select_sweep() only hands this kernel out after
// cpuid confirms AVX2, so the attribute never executes unguarded.
__attribute__((target("avx2"))) void sweep_avx2(
    const SweepCtx& ctx, const std::uint64_t* bits, std::size_t bits_stride,
    const std::uint64_t* all, double* out, std::uint64_t* reach,
    std::size_t W) {
  for (std::size_t w = 0; w < W; ++w) reach[W * ctx.root + w] = all[w];
  const CompiledDd::Node* const nodes = ctx.nodes;
  for (std::uint32_t i = 0; i < ctx.first_terminal; ++i) {
    const CompiledDd::Node& n = nodes[i];
    // keep masks are all-ones (OR-merge) or all-zero (first-edge store),
    // broadcast once per node.
    const __m256i keep_hi = _mm256_set1_epi64x(
        static_cast<long long>(static_cast<std::uint64_t>(n.hi >> 31) - 1));
    const __m256i keep_lo = _mm256_set1_epi64x(
        static_cast<long long>(static_cast<std::uint64_t>(n.lo >> 31) - 1));
    const std::uint64_t* const m = reach + W * i;
    std::uint64_t* const hi = reach + W * (n.hi & CompiledDd::kIndexMask);
    std::uint64_t* const lo = reach + W * (n.lo & CompiledDd::kIndexMask);
    const std::uint64_t* const bv = bits + bits_stride * n.var;
    for (std::size_t w = 0; w < W; w += 4) {
      const __m256i mw =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + w));
      const __m256i bw =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bv + w));
      const __m256i h =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + w));
      const __m256i l =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + w));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(hi + w),
          _mm256_or_si256(_mm256_and_si256(h, keep_hi),
                          _mm256_and_si256(mw, bw)));
      // andnot(bw, mw) = mw & ~bw — note the operand order of vpandn.
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(lo + w),
          _mm256_or_si256(_mm256_and_si256(l, keep_lo),
                          _mm256_andnot_si256(bw, mw)));
    }
  }
  gather_terminals(ctx, reach, out, W);
}

}  // namespace cfpm::dd::simd

#else  // non-x86: dispatch never selects this kernel; keep the symbol.

namespace cfpm::dd::simd {

void sweep_avx2(const SweepCtx& ctx, const std::uint64_t* bits,
                std::size_t bits_stride, const std::uint64_t* all, double* out,
                std::uint64_t* reach, std::size_t W) {
  sweep_scalar(ctx, bits, bits_stride, all, out, reach, W);
}

}  // namespace cfpm::dd::simd

#endif
