// Textual serialization of ADDs.
//
// This is what makes the paper's IP argument concrete: a vendor can ship
// the switching-capacitance ADD of a macro (a black-box discrete function)
// without revealing the gate-level netlist it was derived from.
//
// Format (line oriented, '#' comments allowed):
//   cfpm-add 1
//   vars <n>
//   order <var@level0> <var@level1> ...   # optional; identity when absent
//   nodes <count>
//   <id> T <value>                 # terminal
//   <id> N <var> <then> <else>     # internal node, children appear earlier
//   root <id>
//
// The node structure is canonical only under the recorded variable order
// (sifting may have moved variables); loading a reordered diagram requires
// a fresh manager, whose order is set before any node is built.
#pragma once

#include <iosfwd>

#include "dd/manager.hpp"

namespace cfpm::dd {

/// Writes `f` to `os`. Throws cfpm::Error on stream failure.
void write_add(std::ostream& os, const Add& f);

/// Reads an ADD into `mgr` (which must have at least the serialized
/// variable count). Throws cfpm::ParseError on malformed input.
Add read_add(std::istream& is, DdManager& mgr);

}  // namespace cfpm::dd
