// Textual serialization of decision diagrams.
//
// This is what makes the paper's IP argument concrete: a vendor can ship
// the switching-capacitance ADD of a macro (a black-box discrete function)
// without revealing the gate-level netlist it was derived from.
//
// Format v2 (line oriented, '#' comments allowed):
//   cfpm-dd 2 <add|bdd>
//   vars <n>
//   order <var@level0> <var@level1> ...   # optional; identity when absent
//   nodes <count>
//   <id> T <value>                 # terminal
//   <id> N <var> <then> <else>     # internal node, children appear earlier
//   root <edge>
// Child and root references are edge tokens: a node id, optionally prefixed
// with '!' for a complement edge (NOT of the referenced function). The
// complement prefix is only valid in 'bdd' diagrams, mirroring the in-memory
// restriction of complement edges to the BDD fragment; a serialized BDD has
// the single terminal 1 and encodes logical zero as root !<id-of-1>.
//
// The v1 format ("cfpm-add 1" header, plain ids, ADDs only) is still read
// for backward compatibility; the writer always emits v2.
//
// The node structure is canonical only under the recorded variable order
// (sifting may have moved variables); loading a reordered diagram requires
// a fresh manager, whose order is set before any node is built.
#pragma once

#include <iosfwd>

#include "dd/manager.hpp"

namespace cfpm::dd {

/// Writes `f` to `os` (format v2). Throws cfpm::Error on stream failure.
void write_add(std::ostream& os, const Add& f);

/// Writes `f` to `os` (format v2, complement-edge tokens allowed).
/// Throws cfpm::Error on stream failure.
void write_bdd(std::ostream& os, const Bdd& f);

/// Reads an ADD (v1 or v2 'add') into `mgr` (which must have at least the
/// serialized variable count). Throws cfpm::ParseError on malformed input.
Add read_add(std::istream& is, DdManager& mgr);

/// Reads a BDD (v2 'bdd') into `mgr`. Throws cfpm::ParseError on malformed
/// input.
Bdd read_bdd(std::istream& is, DdManager& mgr);

}  // namespace cfpm::dd
