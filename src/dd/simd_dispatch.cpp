#include "dd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <optional>

#include "dd/simd_kernels.hpp"

namespace cfpm::dd::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
Tier detect_once() noexcept {
  __builtin_cpu_init();
  // avx512f covers every 512-bit integer op the sweep uses; the finer
  // avx512 sub-features (bw/dq/vl) are not needed.
  if (__builtin_cpu_supports("avx512f")) return Tier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  return Tier::kScalar;
}
#else
Tier detect_once() noexcept { return Tier::kScalar; }
#endif

constexpr int kAuto = -1;

std::optional<int> parse_tier(std::string_view name) noexcept {
  if (name == "auto") return kAuto;
  if (name == "scalar") return static_cast<int>(Tier::kScalar);
  if (name == "avx2") return static_cast<int>(Tier::kAvx2);
  if (name == "avx512") return static_cast<int>(Tier::kAvx512);
  return std::nullopt;
}

int request_from_env() noexcept {
  const char* const env = std::getenv("CFPM_SIMD");
  if (env == nullptr) return kAuto;
  return parse_tier(std::string_view(env)).value_or(kAuto);
}

/// Requested tier as an int (kAuto or a Tier value), seeded from CFPM_SIMD
/// at first use so plain library users honor the env var with no init call.
/// Atomic so the CLI, a test, and concurrently evaluating pool workers
/// never race; relaxed is enough — the tier is a performance knob, every
/// kernel is bit-identical.
std::atomic<int>& requested() noexcept {
  static std::atomic<int> tier{request_from_env()};
  return tier;
}

}  // namespace

Tier detect_simd_tier() noexcept {
  static const Tier detected = detect_once();
  return detected;
}

Tier active_simd_tier() noexcept {
  const int req = requested().load(std::memory_order_relaxed);
  const Tier detected = detect_simd_tier();
  if (req == kAuto) return detected;
  return static_cast<int>(detected) < req ? detected : static_cast<Tier>(req);
}

void request_simd_tier(Tier tier) noexcept {
  requested().store(static_cast<int>(tier), std::memory_order_relaxed);
}

void request_simd_auto() noexcept {
  requested().store(kAuto, std::memory_order_relaxed);
}

bool request_simd_tier(std::string_view name) noexcept {
  const std::optional<int> parsed = parse_tier(name);
  if (!parsed) return false;
  requested().store(*parsed, std::memory_order_relaxed);
  return true;
}

void refresh_simd_tier_from_env() noexcept {
  requested().store(request_from_env(), std::memory_order_relaxed);
}

std::string_view simd_tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "scalar";
}

SweepFn select_sweep(std::size_t W) noexcept {
  const Tier tier = active_simd_tier();
  if (tier >= Tier::kAvx512 && W % 8 == 0) return &sweep_avx512;
  if (tier >= Tier::kAvx2 && W % 4 == 0) return &sweep_avx2;
  return &sweep_scalar;
}

}  // namespace cfpm::dd::simd
