#include "dd/stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dd/dd_internal.hpp"
#include "support/assert.hpp"

namespace cfpm::dd {

NodeStats::NodeStats(const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  mgr_ = f.manager();
  root_ = edge_index(DdInternal::edge(f));  // ADD edges are plain
  compute(root_);
}

const NodeStats::Entry& NodeStats::at(std::uint32_t node_index) const {
  auto it = entries_.find(node_index);
  CFPM_REQUIRE(it != entries_.end());
  return it->second;
}

const NodeStats::Entry& NodeStats::root() const { return at(root_); }

const NodeStats::Entry& NodeStats::compute(std::uint32_t node_index) {
  auto it = entries_.find(node_index);
  if (it != entries_.end()) return it->second;

  Entry e;
  const DdNode& n = DdInternal::node(*mgr_, node_index);
  if (n.is_terminal()) {
    e.avg = e.max = e.min = DdInternal::value(*mgr_, node_index);
    e.var = 0.0;
  } else {
    // Children may skip levels; the recursions of Eq. 7 remain valid on
    // reduced diagrams because a sub-function is constant in any skipped
    // variable.
    const Entry l = compute(edge_index(n.else_edge));  // copy: map may rehash
    const Entry r = compute(edge_index(n.then_edge));
    e.avg = 0.5 * (l.avg + r.avg);
    e.var = 0.5 * (l.var + (l.avg - e.avg) * (l.avg - e.avg) +
                   r.var + (r.avg - e.avg) * (r.avg - e.avg));
    e.max = std::max(l.max, r.max);
    e.min = std::min(l.min, r.min);
  }
  return entries_.emplace(node_index, e).first->second;
}

// ---------------------------------------------------------------------------
// Handle-level queries built on traversals. Traversals walk bare node
// indices: with complement edges, a function and its negation share the
// same physical nodes, so size/support are complement-invariant.
// ---------------------------------------------------------------------------

std::size_t DdHandle::size() const {
  CFPM_REQUIRE(edge_ != kNilEdge);
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack{edge_index(edge_)};
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (!seen.insert(i).second) continue;
    const DdNode& n = DdInternal::node(*mgr_, i);
    if (!n.is_terminal()) {
      stack.push_back(edge_index(n.then_edge));
      stack.push_back(edge_index(n.else_edge));
    }
  }
  return seen.size();
}

std::vector<std::uint32_t> DdHandle::support() const {
  CFPM_REQUIRE(edge_ != kNilEdge);
  std::unordered_set<std::uint32_t> seen;
  std::unordered_set<std::uint32_t> vars;
  std::vector<std::uint32_t> stack{edge_index(edge_)};
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    const DdNode& n = DdInternal::node(*mgr_, i);
    if (n.is_terminal() || !seen.insert(i).second) continue;
    vars.insert(n.var);
    stack.push_back(edge_index(n.then_edge));
    stack.push_back(edge_index(n.else_edge));
  }
  std::vector<std::uint32_t> result(vars.begin(), vars.end());
  std::sort(result.begin(), result.end());
  return result;
}

double Add::average() const {
  NodeStats stats(*this);
  return stats.root().avg;
}

double Add::variance() const {
  NodeStats stats(*this);
  return stats.root().var;
}

double Add::max_value() const {
  NodeStats stats(*this);
  return stats.root().max;
}

double Add::min_value() const {
  NodeStats stats(*this);
  return stats.root().min;
}

std::vector<double> Add::leaf_values() const {
  CFPM_REQUIRE(!is_null());
  std::unordered_set<std::uint32_t> seen;
  std::unordered_set<double> values;
  std::vector<std::uint32_t> stack{edge_index(edge_)};
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (!seen.insert(i).second) continue;
    const DdNode& n = DdInternal::node(*mgr_, i);
    if (n.is_terminal()) {
      values.insert(DdInternal::value(*mgr_, i));
    } else {
      stack.push_back(edge_index(n.then_edge));
      stack.push_back(edge_index(n.else_edge));
    }
  }
  std::vector<double> result(values.begin(), values.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::uint8_t> argmax_assignment(const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  NodeStats stats(f);
  const DdManager& mgr = *f.manager();
  std::vector<std::uint8_t> assignment(mgr.num_vars(), 0);
  std::uint32_t i = edge_index(DdInternal::edge(f));
  while (!DdInternal::node(mgr, i).is_terminal()) {
    const DdNode& n = DdInternal::node(mgr, i);
    const std::uint32_t then_i = edge_index(n.then_edge);
    const std::uint32_t else_i = edge_index(n.else_edge);
    const bool take_then = stats.at(then_i).max >= stats.at(else_i).max;
    assignment[n.var] = take_then ? 1 : 0;
    i = take_then ? then_i : else_i;
  }
  return assignment;
}

double Bdd::sat_count(std::size_t num_vars) const {
  // The satisfying fraction of a 0/1 function equals its average value.
  Add as_add(*this);
  return as_add.average() * std::ldexp(1.0, static_cast<int>(num_vars));
}

}  // namespace cfpm::dd
