#include "dd/stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dd/dd_internal.hpp"
#include "support/assert.hpp"

namespace cfpm::dd {

NodeStats::NodeStats(const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  root_ = DdInternal::node(f);
  compute(root_);
}

const NodeStats::Entry& NodeStats::at(const DdNode* n) const {
  auto it = entries_.find(n);
  CFPM_REQUIRE(it != entries_.end());
  return it->second;
}

const NodeStats::Entry& NodeStats::root() const { return at(root_); }

const NodeStats::Entry& NodeStats::compute(const DdNode* n) {
  auto it = entries_.find(n);
  if (it != entries_.end()) return it->second;

  Entry e;
  if (n->is_terminal()) {
    e.avg = e.max = e.min = n->value;
    e.var = 0.0;
  } else {
    // Children may skip levels; the recursions of Eq. 7 remain valid on
    // reduced diagrams because a sub-function is constant in any skipped
    // variable.
    const Entry l = compute(n->else_child);   // copy: map may rehash below
    const Entry r = compute(n->then_child);
    e.avg = 0.5 * (l.avg + r.avg);
    e.var = 0.5 * (l.var + (l.avg - e.avg) * (l.avg - e.avg) +
                   r.var + (r.avg - e.avg) * (r.avg - e.avg));
    e.max = std::max(l.max, r.max);
    e.min = std::min(l.min, r.min);
  }
  return entries_.emplace(n, e).first->second;
}

// ---------------------------------------------------------------------------
// Handle-level queries built on traversals.
// ---------------------------------------------------------------------------

std::size_t DdHandle::size() const {
  CFPM_REQUIRE(node_ != nullptr);
  std::unordered_set<const DdNode*> seen;
  std::vector<const DdNode*> stack{node_};
  while (!stack.empty()) {
    const DdNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (!n->is_terminal()) {
      stack.push_back(n->then_child);
      stack.push_back(n->else_child);
    }
  }
  return seen.size();
}

std::vector<std::uint32_t> DdHandle::support() const {
  CFPM_REQUIRE(node_ != nullptr);
  std::unordered_set<const DdNode*> seen;
  std::unordered_set<std::uint32_t> vars;
  std::vector<const DdNode*> stack{node_};
  while (!stack.empty()) {
    const DdNode* n = stack.back();
    stack.pop_back();
    if (n->is_terminal() || !seen.insert(n).second) continue;
    vars.insert(n->var);
    stack.push_back(n->then_child);
    stack.push_back(n->else_child);
  }
  std::vector<std::uint32_t> result(vars.begin(), vars.end());
  std::sort(result.begin(), result.end());
  return result;
}

double Add::average() const {
  NodeStats stats(*this);
  return stats.root().avg;
}

double Add::variance() const {
  NodeStats stats(*this);
  return stats.root().var;
}

double Add::max_value() const {
  NodeStats stats(*this);
  return stats.root().max;
}

double Add::min_value() const {
  NodeStats stats(*this);
  return stats.root().min;
}

std::vector<double> Add::leaf_values() const {
  CFPM_REQUIRE(!is_null());
  std::unordered_set<const DdNode*> seen;
  std::unordered_set<double> values;
  std::vector<const DdNode*> stack{node_};
  while (!stack.empty()) {
    const DdNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->is_terminal()) {
      values.insert(n->value);
    } else {
      stack.push_back(n->then_child);
      stack.push_back(n->else_child);
    }
  }
  std::vector<double> result(values.begin(), values.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::uint8_t> argmax_assignment(const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  NodeStats stats(f);
  std::vector<std::uint8_t> assignment(f.manager()->num_vars(), 0);
  const DdNode* n = DdInternal::node(f);
  while (!n->is_terminal()) {
    const double max_then = stats.at(n->then_child).max;
    const double max_else = stats.at(n->else_child).max;
    const bool take_then = max_then >= max_else;
    assignment[n->var] = take_then ? 1 : 0;
    n = take_then ? n->then_child : n->else_child;
  }
  return assignment;
}

double Bdd::sat_count(std::size_t num_vars) const {
  // The satisfying fraction of a 0/1 function equals its average value.
  Add as_add(*this);
  return as_add.average() * std::ldexp(1.0, static_cast<int>(num_vars));
}

}  // namespace cfpm::dd
