#include "dd/compiled.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "dd/dd_internal.hpp"
#include "dd/simd_kernels.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace cfpm::dd {

CompiledDd CompiledDd::compile(const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  const DdManager* mgr = f.manager();
  // ADD edges are always plain, so the walk can drop straight from edges
  // to bare arena indices.
  const std::uint32_t root = edge_index(DdInternal::edge(f));

  // Collect the reachable DAG breadth-first. The discovery rank is the
  // within-level packing key below: parents enqueue children hi-then-lo,
  // so a level's nodes end up ordered the way the level above reaches
  // them and the sweep's child-row stores walk each level as one forward
  // linear stream (breadth-first-packed layout).
  std::vector<std::uint32_t> bfs{root};
  std::unordered_set<std::uint32_t> seen{root};
  std::unordered_map<std::uint32_t, std::uint32_t> rank;
  std::vector<std::uint32_t> internals;
  std::vector<std::uint32_t> terminals;
  for (std::size_t head = 0; head < bfs.size(); ++head) {
    const std::uint32_t i = bfs[head];
    rank.emplace(i, static_cast<std::uint32_t>(head));
    const DdNode& n = DdInternal::node(*mgr, i);
    if (n.is_terminal()) {
      terminals.push_back(i);
      continue;
    }
    internals.push_back(i);
    for (const std::uint32_t child :
         {edge_index(n.then_edge), edge_index(n.else_edge)}) {
      if (seen.insert(child).second) bfs.push_back(child);
    }
  }

  // Deterministic layout: internal nodes by (level, breadth-first rank),
  // terminal values ascending. A child is always at a strictly deeper
  // level than its parent, so every walk moves forward through the array.
  std::sort(internals.begin(), internals.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::uint32_t la =
                  mgr->level_of_var(DdInternal::node(*mgr, a).var);
              const std::uint32_t lb =
                  mgr->level_of_var(DdInternal::node(*mgr, b).var);
              return la != lb ? la < lb : rank.at(a) < rank.at(b);
            });
  std::sort(terminals.begin(), terminals.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return DdInternal::value(*mgr, a) < DdInternal::value(*mgr, b);
            });

  static const metrics::Counter c_compile("dd.compile.run");
  static const metrics::Counter c_compiled_nodes("dd.compile.node");
  c_compile.add();
  c_compiled_nodes.add(internals.size() + terminals.size());

  CompiledDd c;
  c.first_terminal_ = static_cast<std::uint32_t>(internals.size());

  std::unordered_map<std::uint32_t, std::uint32_t> index;
  index.reserve(internals.size() + terminals.size());
  for (std::uint32_t i = 0; i < internals.size(); ++i) index[internals[i]] = i;
  for (std::uint32_t i = 0; i < terminals.size(); ++i) {
    index[terminals[i]] = c.first_terminal_ + i;
    c.values_.push_back(DdInternal::value(*mgr, terminals[i]));
  }

  c.nodes_.reserve(internals.size() + terminals.size());
  std::uint32_t distinct_levels = 0;
  std::uint32_t prev_level = DdNode::kTerminalVar;
  for (const std::uint32_t i : internals) {
    const DdNode& n = DdInternal::node(*mgr, i);
    const std::uint32_t level = mgr->level_of_var(n.var);
    if (level != prev_level) {
      c.level_offsets_.push_back(static_cast<std::uint32_t>(c.nodes_.size()));
      ++distinct_levels;
      prev_level = level;
    }
    c.nodes_.push_back(Node{n.var, index.at(edge_index(n.then_edge)),
                            index.at(edge_index(n.else_edge))});
    c.num_vars_needed_ = std::max(c.num_vars_needed_, n.var + 1);
  }
  c.level_offsets_.push_back(c.first_terminal_);
  // Terminal sinks self-loop on a variable every caller must provide anyway
  // (var 0 is always < min_assignment_size() when internal nodes exist; for
  // a constant diagram depth_ is 0 and the sink is never stepped).
  for (std::uint32_t i = 0; i < terminals.size(); ++i) {
    const std::uint32_t self = c.first_terminal_ + i;
    c.nodes_.push_back(Node{0, self, self});
  }
  c.depth_ = distinct_levels;
  c.root_ = index.at(root);

  // Cache-block width for eval_packed_wide: widest power-of-two group
  // count whose reach scratch still fits the L2 budget, floor 1 (a sweep
  // must make progress no matter how large the diagram is).
  std::uint32_t groups = kPackedGroups;
  while (groups > 1 &&
         c.nodes_.size() * groups * sizeof(std::uint64_t) >
             kSweepScratchBudget) {
    groups >>= 1;
  }
  c.sweep_groups_ = groups;

  // Mark each node's first incoming edge in sweep order (ascending parent
  // index, hi before lo). The packed evaluators assign through these edges
  // and OR through the rest; since the branchless sweep traverses every
  // static edge, every non-root mask is (re)initialized each batch and the
  // mask array never has to be cleared. kIndexMask must leave room.
  CFPM_REQUIRE(c.nodes_.size() <= kIndexMask);
  std::vector<bool> edge_seen(c.nodes_.size(), false);
  for (std::uint32_t i = 0; i < c.first_terminal_; ++i) {
    for (std::uint32_t* child : {&c.nodes_[i].hi, &c.nodes_[i].lo}) {
      if (!edge_seen[*child]) {
        edge_seen[*child] = true;
        *child |= kFirstEdge;
      }
    }
  }
  return c;
}

CompiledDd CompiledDd::compile(const Bdd& f) { return compile(Add(f)); }

void CompiledDd::eval_block(const std::uint8_t* assignments, std::size_t stride,
                            std::size_t count, double* out) const {
  CFPM_REQUIRE(stride >= num_vars_needed_);
  constexpr std::size_t kLanes = 16;
  const Node* const nodes = nodes_.data();
  for (std::size_t base = 0; base < count; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, count - base);
    std::uint32_t idx[kLanes];
    const std::uint8_t* a[kLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      idx[l] = root_;
      a[l] = assignments + (base + l) * stride;
    }
    for (std::uint32_t step = 0; step < depth_; ++step) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const Node& n = nodes[idx[l]];
        idx[l] = (a[l][n.var] ? n.hi : n.lo) & kIndexMask;
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      out[base + l] = values_[idx[l] - first_terminal_];
    }
  }
}

void CompiledDd::eval_packed(const std::uint64_t* bits, std::size_t count,
                             double* out,
                             std::vector<std::uint64_t>& scratch) const {
  CFPM_REQUIRE(count >= 1 && count <= 64);
  const std::uint64_t all =
      count == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
  if (root_ >= first_terminal_) {
    const double v = values_[root_ - first_terminal_];
    for (std::size_t k = 0; k < count; ++k) out[k] = v;
    return;
  }
  if (scratch.size() < nodes_.size()) scratch.assign(nodes_.size(), 0);
  std::uint64_t* const reach = scratch.data();
  reach[root_] = all;
  const Node* const nodes = nodes_.data();
  // Children always sit at higher indices, so reach[i] is final when the
  // sweep arrives at i; each assignment's bit flows root -> one sink.
  // Unconditionally updating (no skip of unreached nodes) keeps the loop
  // free of data-dependent branches, which is worth far more than the
  // saved ORs: reach masks are unpredictable, and ~1000 mispredicted
  // skips per 64-assignment block would dominate the sweep. First-edge
  // stores (keep mask 0) reinitialize every child, so stale masks from the
  // previous batch never survive and scratch is never cleared.
  for (std::uint32_t i = 0; i < first_terminal_; ++i) {
    const std::uint64_t m = reach[i];
    const Node& n = nodes[i];
    const std::uint64_t b = bits[n.var];
    const std::uint64_t keep_hi = static_cast<std::uint64_t>(n.hi >> 31) - 1;
    const std::uint64_t keep_lo = static_cast<std::uint64_t>(n.lo >> 31) - 1;
    std::uint64_t* const hi = reach + (n.hi & kIndexMask);
    std::uint64_t* const lo = reach + (n.lo & kIndexMask);
    *hi = (*hi & keep_hi) | (m & b);
    *lo = (*lo & keep_lo) | (m & ~b);
  }
  const std::uint32_t num_nodes = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t i = first_terminal_; i < num_nodes; ++i) {
    std::uint64_t m = reach[i];
    if (m == 0) continue;
    const double v = values_[i - first_terminal_];
    do {
      out[std::countr_zero(m)] = v;
      m &= m - 1;
    } while (m != 0);
  }
}

void CompiledDd::eval_packed_wide(const std::uint64_t* bits, std::size_t count,
                                  double* out,
                                  std::vector<std::uint64_t>& scratch) const {
  constexpr std::size_t W = kPackedGroups;
  CFPM_REQUIRE(count >= 1 && count <= 64 * W);
  if (root_ >= first_terminal_) {
    const double v = values_[root_ - first_terminal_];
    for (std::size_t k = 0; k < count; ++k) out[k] = v;
    return;
  }
  const std::size_t block = sweep_groups_;
  if (scratch.size() < block * nodes_.size()) {
    scratch.assign(block * nodes_.size(), 0);
  }
  const simd::SweepCtx ctx{nodes_.data(), values_.data(), first_terminal_,
                           static_cast<std::uint32_t>(nodes_.size()), root_};
  const std::size_t groups = (count + 63) / 64;
  // Sub-sweep `block` groups at a time so the reach scratch of one sweep
  // stays within kSweepScratchBudget. A partial tail block is padded up to
  // a power of two with zero valid-lane masks (`bits` always has full
  // kPackedGroups stride, so the padded loads stay in bounds) — that keeps
  // the wide kernels eligible instead of falling back to scalar on odd
  // tails; zero root masks propagate zeros and write nothing.
  for (std::size_t g = 0; g < groups; g += block) {
    const std::size_t live = std::min(block, groups - g);
    const std::size_t width = std::bit_ceil(live);
    std::uint64_t all[W];
    for (std::size_t w = 0; w < width; ++w) {
      const std::size_t base = 64 * (g + w);
      all[w] = count >= base + 64 ? ~std::uint64_t{0}
               : count > base     ? (std::uint64_t{1} << (count - base)) - 1
                                  : 0;
    }
    simd::select_sweep(width)(ctx, bits + g, W, all, out + 64 * g,
                              scratch.data(), width);
  }
}

}  // namespace cfpm::dd
