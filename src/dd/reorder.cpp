// Dynamic variable reordering: in-place adjacent-level swap and sifting
// (Rudell's algorithm), the mechanism the paper relies on (via CUDD) to
// keep switching-capacitance ADDs small before node collapsing.
//
// The swap relabels nodes in place, so node indices keep denoting the
// same functions and all external handles (including complemented edges
// held by parents) stay valid.
#include <algorithm>
#include <vector>

#include "dd/manager.hpp"
#include "support/assert.hpp"
#include "support/governor.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace cfpm::dd {

namespace {

/// Suspends node-cap enforcement and governor polling for the duration of
/// an in-place swap: a throw from allocate_node mid-swap would leave the
/// level half-relabeled with no way to unwind. The governor is instead
/// checkpointed between whole swaps (sift loops below), so a stuck sift
/// still stops within one swap's worth of work.
class ReorderScope {
 public:
  explicit ReorderScope(bool& flag) : flag_(flag) { flag_ = true; }
  ~ReorderScope() { flag_ = false; }
  ReorderScope(const ReorderScope&) = delete;
  ReorderScope& operator=(const ReorderScope&) = delete;

 private:
  bool& flag_;
};

}  // namespace

std::size_t DdManager::swap_adjacent_levels(std::uint32_t level) {
  CFPM_REQUIRE(level + 1 < num_vars());
  static const metrics::Counter c_swap("dd.reorder.swap");
  c_swap.add();
  ReorderScope scope(in_reorder_);
  const std::uint32_t u = var_at_level_[level];      // moves down
  const std::uint32_t v = var_at_level_[level + 1];  // moves up

  // Update the order first so every make_node below sees the new levels.
  var_at_level_[level] = v;
  var_at_level_[level + 1] = u;
  level_of_var_[u] = level + 1;
  level_of_var_[v] = level;

  // Collect u's live nodes and empty its table. Dead u-nodes are freed on
  // the spot (their children were dereferenced when they died); the cache
  // is cleared when that happens because it may still point at them.
  UniqueTable& table_u = unique_[u];
  std::vector<std::uint32_t> pending;
  pending.reserve(table_u.count);
  bool freed_any = false;
  for (std::uint32_t& bucket : table_u.buckets) {
    std::uint32_t p = bucket;
    while (p != kNilIndex) {
      const std::uint32_t next = nodes_[p].next;
      if (refs_[p] == 0) {
        nodes_[p].then_edge = kNilEdge;
        nodes_[p].else_edge = kNilEdge;
        nodes_[p].next = free_list_;
        free_list_ = p;
        --dead_;
        freed_any = true;
      } else {
        pending.push_back(p);
      }
      p = next;
    }
    bucket = kNilIndex;
  }
  table_u.count = 0;
  if (freed_any) cache_clear();

  auto insert_into = [&](std::uint32_t var, std::uint32_t idx) {
    maybe_resize_table(var);
    UniqueTable& table = unique_[var];
    const std::size_t slot = child_slot(
        nodes_[idx].then_edge, nodes_[idx].else_edge, table.buckets.size() - 1);
    nodes_[idx].next = table.buckets[slot];
    table.buckets[slot] = idx;
    ++table.count;
  };
  auto tests_v = [&](Edge e) {
    const DdNode& n = nodes_[edge_index(e)];
    return !n.is_terminal() && n.var == v;
  };

  // Pass 1: nodes independent of v stay u-nodes (one level lower). They
  // must be back in the table before pass 2, whose make_node lookups may
  // need to find them.
  auto depends_on_v = [&](std::uint32_t idx) {
    return tests_v(nodes_[idx].then_edge) || tests_v(nodes_[idx].else_edge);
  };
  for (const std::uint32_t idx : pending) {
    if (!depends_on_v(idx)) insert_into(u, idx);
  }

  // Pass 2: relabel v-dependent nodes in place. Cofactoring through a
  // complemented else-edge pushes the complement onto the grandchildren
  // (e ^ (parent & 1)); then-edges are plain by the canonicity invariant,
  // so t1 below is always plain and the rebuilt then-edge nt of the
  // relabeled node is plain again — the invariant survives the swap.
  for (const std::uint32_t idx : pending) {
    if (!depends_on_v(idx)) continue;
    const Edge t = nodes_[idx].then_edge;  // plain
    const Edge e = nodes_[idx].else_edge;  // possibly complemented
    const bool t_tests_v = tests_v(t);
    const bool e_tests_v = tests_v(e);
    const DdNode& tn = nodes_[edge_index(t)];
    const DdNode& en = nodes_[edge_index(e)];
    const Edge t1 = t_tests_v ? tn.then_edge : t;  // plain either way
    const Edge t0 = t_tests_v ? tn.else_edge : t;
    const Edge e1 = e_tests_v ? (en.then_edge ^ (e & 1u)) : e;
    const Edge e0 = e_tests_v ? (en.else_edge ^ (e & 1u)) : e;

    // New v-cofactors of the node (u-nodes one level down). Copy the edges
    // first (above) — make_node may relocate the arena.
    ref_edge(t1);
    ref_edge(e1);
    const Edge nt = make_node(u, t1, e1);
    CFPM_ASSERT(!edge_complemented(nt));  // t1 plain => nt plain
    ref_edge(t0);
    ref_edge(e0);
    const Edge ne = make_node(u, t0, e0);
    // The node depends on v (via t or e), so its two v-cofactors differ.
    CFPM_ASSERT(nt != ne);

    // Relabel in place; parents (plain or complemented) keep denoting the
    // same function because the node index still computes it.
    nodes_[idx].var = v;
    nodes_[idx].then_edge = nt;  // adopts the references from make_node
    nodes_[idx].else_edge = ne;
    insert_into(v, idx);
    deref_edge(t);
    deref_edge(e);
  }
  return live_;
}

std::size_t DdManager::sift_variable(std::uint32_t var, double max_growth) {
  CFPM_REQUIRE(var < num_vars());
  CFPM_REQUIRE(max_growth >= 1.0);
  static const metrics::Counter c_sifted("dd.reorder.var.sifted");
  static const metrics::Histogram h_before("dd.reorder.size.before");
  static const metrics::Histogram h_after("dd.reorder.size.after");
  c_sifted.add();
  h_before.observe(live_);
  const auto levels = static_cast<std::uint32_t>(num_vars());
  std::uint32_t pos = level_of_var_[var];
  std::size_t best_size = live_;
  std::uint32_t best_pos = pos;
  const std::size_t limit =
      static_cast<std::size_t>(static_cast<double>(live_) * max_growth);
  // Between swaps the diagram is structurally consistent, so deadline and
  // cancellation may fire here; the exploratory phases simply stop where
  // they are (every intermediate position denotes the same functions).
  Governor* governor = config_.governor.get();

  // Phase 1: sift down to the bottom (abort on excessive growth).
  while (pos + 1 < levels) {
    if (governor != nullptr) governor->checkpoint();
    const std::size_t size = swap_adjacent_levels(pos);
    ++pos;
    if (size < best_size) {
      best_size = size;
      best_pos = pos;
    }
    if (size > limit) break;
  }
  // Phase 2: sift up to the top.
  while (pos > 0) {
    if (governor != nullptr) governor->checkpoint();
    const std::size_t size = swap_adjacent_levels(pos - 1);
    --pos;
    if (size < best_size) {
      best_size = size;
      best_pos = pos;
    }
    if (size > limit) break;
  }
  // Phase 3: settle at the best position seen.
  while (pos < best_pos) {
    swap_adjacent_levels(pos);
    ++pos;
  }
  while (pos > best_pos) {
    swap_adjacent_levels(pos - 1);
    --pos;
  }
  h_after.observe(live_);
  return live_;
}

std::size_t DdManager::sift(double max_growth) {
  CFPM_TRACE_SPAN("dd.sift");
  collect_garbage();
  const std::size_t before = live_;

  // Sift variables in decreasing order of table population (Rudell).
  std::vector<std::uint32_t> order(num_vars());
  for (std::uint32_t vr = 0; vr < num_vars(); ++vr) order[vr] = vr;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return unique_[a].count > unique_[b].count;
  });
  for (std::uint32_t vr : order) {
    sift_variable(vr, max_growth);
  }
  collect_garbage();
  return before - std::min(before, live_);
}

}  // namespace cfpm::dd
