// Compiled (flattened) decision diagrams for high-throughput evaluation.
//
// A CompiledDd is an immutable snapshot of a frozen Add/Bdd: every node
// reachable from the root is copied into one contiguous array of POD
// records with 32-bit child indices, sorted by manager level so a
// root-to-terminal walk moves strictly forward through the array. Terminal
// values live in a separate table; terminals are materialized as
// self-looping "sink" records so the batch evaluator's inner loop is
// completely branch-free (every lane takes exactly depth() steps).
//
// The snapshot shares nothing with the originating DdManager: manager
// garbage collection, reordering, or destruction cannot invalidate it, and
// a CompiledDd may be evaluated concurrently from any number of threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dd/manager.hpp"
#include "support/assert.hpp"

namespace cfpm::dd {

class CompiledDd {
 public:
  /// One flattened node: 12 bytes, no pointers. `hi`/`lo` index back into
  /// the same array (indices >= num_internal_nodes() are terminal sinks).
  /// Bit 31 of `hi`/`lo` (kFirstEdge) marks the child's first incoming
  /// edge in sweep order; the packed evaluators overwrite the child's
  /// reach mask there instead of OR-merging, which removes the need to
  /// zero the mask array between batches. Walkers mask it off with
  /// kIndexMask before using a successor as an index.
  struct Node {
    std::uint32_t var;  ///< variable tested (sinks repeat a valid index)
    std::uint32_t hi;   ///< successor when assignment[var] != 0
    std::uint32_t lo;   ///< successor when assignment[var] == 0
  };
  static constexpr std::uint32_t kFirstEdge = 0x80000000u;
  static constexpr std::uint32_t kIndexMask = 0x7fffffffu;

  CompiledDd() = default;

  /// Flattens the DAG rooted at `f`. The result is deterministic: nodes are
  /// ordered by (level, creation id) and terminal values ascending.
  static CompiledDd compile(const Add& f);
  /// A BDD compiles to a 0.0/1.0-valued evaluator.
  static CompiledDd compile(const Bdd& f);

  /// Evaluates one assignment (indexed by manager variable). Bit-identical
  /// to Add::eval on the source diagram. `assignment` must cover
  /// [0, min_assignment_size()).
  double eval(std::span<const std::uint8_t> assignment) const {
    CFPM_REQUIRE(assignment.size() >= min_assignment_size());
    std::uint32_t idx = root_;
    while (idx < first_terminal_) {
      const Node& n = nodes_[idx];
      idx = (assignment[n.var] ? n.hi : n.lo) & kIndexMask;
    }
    return values_[idx - first_terminal_];
  }

  /// Batch evaluation: pattern p's assignment is the `min_assignment_size()`
  /// bytes at `assignments + p * stride`; out[p] receives its value. The
  /// inner loop is lane-blocked — a small block of patterns advances one
  /// level per step, so the serial dependency of one pointer walk is hidden
  /// behind the independent walks of the other lanes.
  void eval_block(const std::uint8_t* assignments, std::size_t stride,
                  std::size_t count, double* out) const;

  /// Bit-parallel batch evaluation: up to 64 assignments in ONE sweep over
  /// the node array. `bits[v]` packs the 64 assignments' values of variable
  /// `v` (bit k = assignment k); `out[k]` receives assignment k's value,
  /// bit-identical to eval(). Because the array is topologically sorted, a
  /// single forward pass can propagate a reach mask (which assignments'
  /// paths visit each node) from the root to the sinks, so the cost scales
  /// with num_nodes() per 64 assignments instead of depth() per assignment.
  /// `scratch` is caller-owned mask storage, reused across calls so hot
  /// loops stay allocation-free.
  void eval_packed(const std::uint64_t* bits, std::size_t count, double* out,
                   std::vector<std::uint64_t>& scratch) const;

  /// Number of 64-assignment groups eval_packed_wide accepts per call (the
  /// fixed stride of the caller's `bits` layout). 8 matches one AVX-512
  /// register per node row.
  static constexpr std::size_t kPackedGroups = 8;

  /// Scratch budget for one sub-sweep (see sweep_groups()): sized so the
  /// reach rows of a sweep stay resident in a typical 256 KiB-class L2
  /// instead of streaming through it every node pass.
  static constexpr std::size_t kSweepScratchBudget = 256 * 1024;

  /// Cache-block width chosen at compile(): the largest power of two
  /// <= kPackedGroups for which `num_nodes() * groups * 8` bytes of reach
  /// scratch fit kSweepScratchBudget (floor 1). eval_packed_wide sweeps the
  /// node array once per this many groups, trading sweeps for locality on
  /// large diagrams.
  std::size_t sweep_groups() const noexcept { return sweep_groups_; }

  /// As eval_packed, but up to kPackedGroups groups of 64 assignments per
  /// call: `bits[kPackedGroups * v + w]` packs group w's values of variable
  /// v (the stride is kPackedGroups regardless of count), and assignment
  /// 64*w + k's value lands in out[64*w + k]. Internally the groups are
  /// processed sweep_groups() at a time through the widest SIMD kernel the
  /// active dispatch tier supports (dd/simd.hpp); every tier is
  /// bit-identical to eval().
  void eval_packed_wide(const std::uint64_t* bits, std::size_t count,
                        double* out, std::vector<std::uint64_t>& scratch) const;

  std::size_t num_internal_nodes() const noexcept { return first_terminal_; }
  std::size_t num_terminals() const noexcept { return values_.size(); }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  /// Worst-case walk length (number of distinct levels in the diagram).
  std::uint32_t depth() const noexcept { return depth_; }
  /// 1 + largest variable index tested anywhere in the diagram.
  std::uint32_t min_assignment_size() const noexcept { return num_vars_needed_; }
  std::span<const double> values() const noexcept { return values_; }

  /// Read-only view of the flattened records (layout tests, kernels).
  std::span<const Node> nodes() const noexcept { return nodes_; }
  std::uint32_t root() const noexcept { return root_; }
  /// Level boundaries of the breadth-first-packed layout: the nodes of
  /// distinct level d (0 = root's level) occupy indices
  /// [level_offsets()[d], level_offsets()[d + 1]); the final entry equals
  /// num_internal_nodes(). Within a level, nodes are ordered by
  /// breadth-first discovery rank from the root, so the sweep's stores
  /// from one level land in one forward linear stream in the next.
  std::span<const std::uint32_t> level_offsets() const noexcept {
    return level_offsets_;
  }

 private:
  std::vector<Node> nodes_;    // internal nodes (level-sorted), then sinks
  std::vector<double> values_; // value of sink node first_terminal_ + i
  std::vector<std::uint32_t> level_offsets_;  // depth_ + 1 entries
  std::uint32_t root_ = 0;
  std::uint32_t first_terminal_ = 0;
  std::uint32_t depth_ = 0;
  std::uint32_t num_vars_needed_ = 0;
  std::uint32_t sweep_groups_ = kPackedGroups;
};

}  // namespace cfpm::dd
