// Per-node statistics of a discrete function represented as an ADD.
//
// For every node n, computes over all assignments of the variables below
// n's level (Eq. 5-8 of the paper):
//   avg(n)  - average value of the sub-function
//   var(n)  - variance of the sub-function
//   max(n)  - maximum value
//   min(n)  - minimum value
//   mse(n)  - var(n) + (max(n) - avg(n))^2, the mean square error of
//             replacing the sub-function by its maximum (Eq. 8)
// All statistics are computed in one linear traversal of the DAG. ADD
// edges are always plain, so nodes are identified by bare arena index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "dd/manager.hpp"

namespace cfpm::dd {

/// Returns an input assignment (indexed by variable, entries 0/1) on which
/// `f` attains its maximum terminal value. Variables outside the support
/// are left 0. Complements max_value() by exhibiting a witness -- e.g. the
/// worst-case input transition of a switching-capacitance model (the
/// search that is exponential on the netlist [8, 9] is linear on the ADD).
std::vector<std::uint8_t> argmax_assignment(const Add& f);

class NodeStats {
 public:
  struct Entry {
    double avg = 0.0;
    double var = 0.0;
    double max = 0.0;
    double min = 0.0;

    double mse_of_max() const noexcept {
      return var + (max - avg) * (max - avg);
    }
  };

  /// Computes statistics for every node reachable from `f`.
  explicit NodeStats(const Add& f);

  const Entry& at(std::uint32_t node_index) const;
  const Entry& root() const;
  std::size_t node_count() const noexcept { return entries_.size(); }

 private:
  const Entry& compute(std::uint32_t node_index);

  const DdManager* mgr_ = nullptr;
  std::uint32_t root_ = 0;  // arena index of the root node
  std::unordered_map<std::uint32_t, Entry> entries_;
};

}  // namespace cfpm::dd
