#include "dd/simd_kernels.hpp"

namespace cfpm::dd::simd {

// Reference sweep: one uint64 per step. Also the correctness baseline the
// simd-dispatch oracle compares the wide kernels against, so keep it a
// line-for-line transcription of CompiledDd::eval_packed generalized to W
// mask words per node.
//
// No local mask copy is needed (unlike eval_packed_wide's fixed-W loop):
// the node array is level-sorted, so a node's children sit at strictly
// higher indices and the hi/lo stores can never touch row i, and canonical
// make_node guarantees hi != lo for internal nodes, so the two child rows
// are distinct as well.
void sweep_scalar(const SweepCtx& ctx, const std::uint64_t* bits,
                  std::size_t bits_stride, const std::uint64_t* all,
                  double* out, std::uint64_t* reach, std::size_t W) {
  for (std::size_t w = 0; w < W; ++w) reach[W * ctx.root + w] = all[w];
  const CompiledDd::Node* const nodes = ctx.nodes;
  for (std::uint32_t i = 0; i < ctx.first_terminal; ++i) {
    const CompiledDd::Node& n = nodes[i];
    const std::uint64_t keep_hi = static_cast<std::uint64_t>(n.hi >> 31) - 1;
    const std::uint64_t keep_lo = static_cast<std::uint64_t>(n.lo >> 31) - 1;
    const std::uint64_t* const m = reach + W * i;
    std::uint64_t* const hi = reach + W * (n.hi & CompiledDd::kIndexMask);
    std::uint64_t* const lo = reach + W * (n.lo & CompiledDd::kIndexMask);
    const std::uint64_t* const bv = bits + bits_stride * n.var;
    for (std::size_t w = 0; w < W; ++w) {
      const std::uint64_t mw = m[w];
      const std::uint64_t bw = bv[w];
      hi[w] = (hi[w] & keep_hi) | (mw & bw);
      lo[w] = (lo[w] & keep_lo) | (mw & ~bw);
    }
  }
  gather_terminals(ctx, reach, out, W);
}

}  // namespace cfpm::dd::simd
