// Width-specialized sweep kernels behind the SIMD dispatch (private to
// src/dd; include only from dd implementation files, tests and benches).
//
// One "sweep" is the whole packed evaluation of W 64-assignment groups on a
// CompiledDd: seed the root's reach row, stream every internal node in
// level order pushing masks to its children's rows, then gather terminal
// rows into per-assignment doubles. The kernels differ only in how many
// mask words one instruction moves; given the same inputs they produce
// bit-identical outputs (mask algebra is exact, the gather copies terminal
// doubles verbatim).
//
// Layout contract shared by all kernels:
//  * `bits[bits_stride * var + w]` holds group w's packed values of `var`
//    (callers sweeping a sub-block pass `bits + first_group`, keeping the
//    full-layout stride).
//  * `reach` is ctx.num_nodes rows of W words, reused across calls without
//    clearing: the first-edge tag on child indices makes every non-root row
//    a store-before-load.
//  * `all[w]` masks the valid lanes of group w; `out[64 * w + k]` receives
//    lane k of group w (lanes outside `all` are never written).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "dd/compiled.hpp"

namespace cfpm::dd::simd {

struct SweepCtx {
  const CompiledDd::Node* nodes = nullptr;
  const double* values = nullptr;  ///< terminal values (num_terminals)
  std::uint32_t first_terminal = 0;
  std::uint32_t num_nodes = 0;
  std::uint32_t root = 0;  ///< must be an internal node (callers shortcut
                           ///< constant diagrams before dispatching)
};

using SweepFn = void (*)(const SweepCtx& ctx, const std::uint64_t* bits,
                         std::size_t bits_stride, const std::uint64_t* all,
                         double* out, std::uint64_t* reach, std::size_t W);

/// Portable uint64 loop; any W >= 1.
void sweep_scalar(const SweepCtx& ctx, const std::uint64_t* bits,
                  std::size_t bits_stride, const std::uint64_t* all,
                  double* out, std::uint64_t* reach, std::size_t W);

/// 256-bit AVX2 kernel; requires W % 4 == 0 and an AVX2 CPU.
void sweep_avx2(const SweepCtx& ctx, const std::uint64_t* bits,
                std::size_t bits_stride, const std::uint64_t* all, double* out,
                std::uint64_t* reach, std::size_t W);

/// 512-bit AVX-512F kernel; requires W % 8 == 0 and an AVX-512 CPU.
void sweep_avx512(const SweepCtx& ctx, const std::uint64_t* bits,
                  std::size_t bits_stride, const std::uint64_t* all,
                  double* out, std::uint64_t* reach, std::size_t W);

/// Widest kernel the active tier supports whose width constraint divides W.
SweepFn select_sweep(std::size_t W) noexcept;

/// Shared terminal gather: scatters reach rows of the sink records into
/// out[64 * w + k]. Scalar on purpose — terminals are few and the cost is
/// dominated by the sweep.
inline void gather_terminals(const SweepCtx& ctx, const std::uint64_t* reach,
                             double* out, std::size_t W) {
  for (std::uint32_t i = ctx.first_terminal; i < ctx.num_nodes; ++i) {
    const std::uint64_t* const m = reach + W * i;
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < W; ++w) any |= m[w];
    if (any == 0) continue;
    const double v = ctx.values[i - ctx.first_terminal];
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t mm = m[w];
      while (mm != 0) {
        out[64 * w + static_cast<std::size_t>(std::countr_zero(mm))] = v;
        mm &= mm - 1;
      }
    }
  }
}

}  // namespace cfpm::dd::simd
