#include "dd/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "dd/dd_internal.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace cfpm::dd {

void write_add(std::ostream& os, const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  const DdNode* root = DdInternal::node(f);

  // Post-order: children before parents.
  std::unordered_map<const DdNode*, std::size_t> ids;
  std::vector<const DdNode*> order;
  std::vector<std::pair<const DdNode*, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (ids.contains(n)) continue;
    if (n->is_terminal() || expanded) {
      ids.emplace(n, order.size());
      order.push_back(n);
    } else {
      stack.push_back({n, true});
      stack.push_back({n->then_child, false});
      stack.push_back({n->else_child, false});
    }
  }

  os << "cfpm-add 1\n";
  const DdManager& mgr = *f.manager();
  os << "vars " << mgr.num_vars() << "\n";
  // The node structure is only canonical under the manager's variable
  // order (which sifting may have changed); record it.
  os << "order";
  for (std::uint32_t l = 0; l < mgr.num_vars(); ++l) {
    os << " " << mgr.var_at_level(l);
  }
  os << "\n";
  os << "nodes " << order.size() << "\n";
  os.precision(17);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const DdNode* n = order[i];
    if (n->is_terminal()) {
      os << i << " T " << n->value << "\n";
    } else {
      os << i << " N " << n->var << " " << ids.at(n->then_child) << " "
         << ids.at(n->else_child) << "\n";
    }
  }
  os << "root " << ids.at(root) << "\n";
  if (!os) throw Error("write_add: stream failure");
}

namespace {

/// Next non-empty, non-comment line; returns false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    return true;
  }
  return false;
}

}  // namespace

Add read_add(std::istream& is, DdManager& mgr) {
  std::string line;
  std::size_t lineno = 0;

  auto expect_line = [&](const char* what) {
    if (!next_line(is, line, lineno)) {
      throw ParseError(std::string("read_add: missing ") + what, lineno);
    }
  };

  expect_line("header");
  if (line != "cfpm-add 1") {
    throw ParseError("read_add: bad header '" + line + "'", lineno);
  }

  expect_line("vars");
  std::size_t nvars = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> nvars) || kw != "vars") {
      throw ParseError("read_add: expected 'vars <n>'", lineno);
    }
  }
  if (nvars > mgr.num_vars()) {
    throw ParseError("read_add: model needs " + std::to_string(nvars) +
                         " variables, manager has " +
                         std::to_string(mgr.num_vars()),
                     lineno);
  }

  expect_line("order-or-nodes");
  std::vector<std::uint32_t> saved_order;
  if (line.rfind("order", 0) == 0) {
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    std::uint32_t v;
    while (ss >> v) saved_order.push_back(v);
    if (saved_order.size() != nvars) {
      throw ParseError("read_add: order lists " +
                           std::to_string(saved_order.size()) + " of " +
                           std::to_string(nvars) + " variables",
                       lineno);
    }
    bool differs = false;
    for (std::uint32_t l = 0; l < nvars; ++l) {
      if (mgr.var_at_level(l) != saved_order[l]) differs = true;
    }
    if (differs) {
      // Extend to the manager's full width: unmentioned variables keep
      // their relative order below the recorded ones.
      std::vector<std::uint32_t> full(saved_order);
      std::vector<bool> used(mgr.num_vars(), false);
      for (std::uint32_t v2 : saved_order) used[v2] = true;
      for (std::uint32_t v2 = 0; v2 < mgr.num_vars(); ++v2) {
        if (!used[v2]) full.push_back(v2);
      }
      mgr.set_order(full);  // requires a fresh manager
    }
    expect_line("nodes");
  }
  std::size_t count = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> count) || kw != "nodes") {
      throw ParseError("read_add: expected 'nodes <count>'", lineno);
    }
  }
  if (count == 0) throw ParseError("read_add: empty node list", lineno);

  // Each map entry owns one manager reference to its node.
  std::vector<DdNode*> by_id(count, nullptr);
  struct Releaser {
    DdManager& mgr;
    std::vector<DdNode*>& nodes;
    ~Releaser() {
      for (DdNode* n : nodes) {
        if (n != nullptr) DdInternal::deref(mgr, n);
      }
    }
  } releaser{mgr, by_id};

  for (std::size_t i = 0; i < count; ++i) {
    expect_line("node");
    std::istringstream ss(line);
    std::size_t id = 0;
    char kind = 0;
    if (!(ss >> id >> kind) || id >= count || by_id[id] != nullptr) {
      throw ParseError("read_add: bad node line '" + line + "'", lineno);
    }
    if (kind == 'T') {
      double value = 0.0;
      if (!(ss >> value)) {
        throw ParseError("read_add: bad terminal line '" + line + "'", lineno);
      }
      by_id[id] = DdInternal::terminal(mgr, value);  // map's reference
    } else if (kind == 'N') {
      std::uint32_t var = 0;
      std::size_t tid = 0, eid = 0;
      if (!(ss >> var >> tid >> eid) || var >= nvars || tid >= count ||
          eid >= count || by_id[tid] == nullptr || by_id[eid] == nullptr) {
        throw ParseError("read_add: bad internal line '" + line + "'", lineno);
      }
      DdNode* t = by_id[tid];
      DdNode* e = by_id[eid];
      DdInternal::ref(mgr, t);  // consumed by make_node
      DdInternal::ref(mgr, e);
      by_id[id] = DdInternal::make_node(mgr, var, t, e);
    } else {
      throw ParseError("read_add: unknown node kind '" + line + "'", lineno);
    }
  }

  expect_line("root");
  std::size_t root_id = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> root_id) || kw != "root" || root_id >= count ||
        by_id[root_id] == nullptr) {
      throw ParseError("read_add: bad root line", lineno);
    }
  }
  DdNode* root = by_id[root_id];
  DdInternal::ref(mgr, root);
  return DdInternal::make_add(&mgr, root);
}

}  // namespace cfpm::dd
