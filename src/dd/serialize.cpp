#include "dd/serialize.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dd/dd_internal.hpp"
#include "support/assert.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/parse.hpp"

namespace cfpm::dd {

namespace {

/// 8-digit lowercase hex, the textual form of the CRC trailer value.
std::string crc_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xfu];
    crc >>= 4;
  }
  return out;
}

/// Writes the DAG under `root` in format v2. File ids number the *regular*
/// (uncomplemented) nodes in post-order; complement bits ride on the edge
/// tokens, so a function and its negation serialize to the same node list.
void write_dd(std::ostream& os, const DdManager& mgr, Edge root, bool is_bdd) {
  CFPM_FAILPOINT("dd.serialize.write");
  std::unordered_map<std::uint32_t, std::size_t> ids;
  std::vector<std::uint32_t> order;
  std::vector<std::pair<std::uint32_t, bool>> stack{{edge_index(root), false}};
  while (!stack.empty()) {
    auto [i, expanded] = stack.back();
    stack.pop_back();
    if (ids.contains(i)) continue;
    const DdNode& n = DdInternal::node(mgr, i);
    if (n.is_terminal() || expanded) {
      ids.emplace(i, order.size());
      order.push_back(i);
    } else {
      stack.push_back({i, true});
      stack.push_back({edge_index(n.then_edge), false});
      stack.push_back({edge_index(n.else_edge), false});
    }
  }

  auto token = [&](Edge e) {
    std::string s = edge_complemented(e) ? "!" : "";
    return s + std::to_string(ids.at(edge_index(e)));
  };

  // The body is rendered into memory first so the CRC trailer can cover the
  // exact bytes written. Every line is already canonical (no comments, no
  // stray whitespace), which is what the reader checksums too.
  std::ostringstream body;
  body << "cfpm-dd 2 " << (is_bdd ? "bdd" : "add") << "\n";
  body << "vars " << mgr.num_vars() << "\n";
  // The node structure is only canonical under the manager's variable
  // order (which sifting may have changed); record it.
  body << "order";
  for (std::uint32_t l = 0; l < mgr.num_vars(); ++l) {
    body << " " << mgr.var_at_level(l);
  }
  body << "\n";
  body << "nodes " << order.size() << "\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const DdNode& n = DdInternal::node(mgr, order[i]);
    if (n.is_terminal()) {
      // Terminal values go through to_chars: shortest exact round-trip,
      // immune to the stream's imbued locale (a comma decimal point would
      // corrupt the file).
      body << i << " T " << format_double(DdInternal::value(mgr, order[i]))
           << "\n";
    } else {
      body << i << " N " << n.var << " " << token(n.then_edge) << " "
           << token(n.else_edge) << "\n";
    }
  }
  body << "root " << token(root) << "\n";
  const std::string text = body.str();
  os << text << "crc " << crc_hex(Crc32::of(text)) << "\n";
  if (!os) throw IoError("write_dd: stream failure");
}

/// Next non-empty, non-comment line; returns false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    return true;
  }
  return false;
}

/// Shared v1/v2 reader. Returns a referenced root edge (plain for ADDs).
Edge read_dd(std::istream& is, DdManager& mgr, bool want_bdd) {
  CFPM_FAILPOINT("dd.serialize.read");
  std::string line;
  std::size_t lineno = 0;

  // Integrity check: the CRC runs over the canonical form of every consumed
  // line (trimmed, comments stripped, '\n'-terminated) — exactly the bytes
  // write_dd emits — so a hand-annotated but otherwise intact file still
  // verifies against its trailer.
  Crc32 crc;
  auto expect_line = [&](const char* what) {
    if (!next_line(is, line, lineno)) {
      throw ParseError(std::string("read_dd: missing ") + what, lineno);
    }
    crc.update(line);
    crc.update("\n");
  };

  expect_line("header");
  bool file_is_bdd = false;
  const bool file_is_v1 = line == "cfpm-add 1";
  if (!file_is_v1) {  // v1 header: legacy ADD-only format
    std::istringstream ss(line);
    std::string magic, kind, extra;
    int v = 0;
    if ((ss >> magic >> v >> kind) && !(ss >> extra) && magic == "cfpm-dd" &&
        v == 2 && (kind == "add" || kind == "bdd")) {
      file_is_bdd = kind == "bdd";
    } else {
      throw ParseError("read_dd: bad header '" + line + "'", lineno);
    }
  }
  if (file_is_bdd != want_bdd) {
    throw ParseError(std::string("read_dd: file holds a ") +
                         (file_is_bdd ? "bdd" : "add") + ", caller wants a " +
                         (want_bdd ? "bdd" : "add"),
                     lineno);
  }

  expect_line("vars");
  std::size_t nvars = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> nvars) || kw != "vars") {
      throw ParseError("read_dd: expected 'vars <n>'", lineno);
    }
  }
  if (nvars > mgr.num_vars()) {
    throw ParseError("read_dd: model needs " + std::to_string(nvars) +
                         " variables, manager has " +
                         std::to_string(mgr.num_vars()),
                     lineno);
  }

  expect_line("order-or-nodes");
  std::vector<std::uint32_t> saved_order;
  if (line.rfind("order", 0) == 0) {
    std::istringstream ss(line);
    std::string kw;
    ss >> kw;
    std::uint32_t v;
    while (ss >> v) saved_order.push_back(v);
    if (saved_order.size() != nvars) {
      throw ParseError("read_dd: order lists " +
                           std::to_string(saved_order.size()) + " of " +
                           std::to_string(nvars) + " variables",
                       lineno);
    }
    bool differs = false;
    for (std::uint32_t l = 0; l < nvars; ++l) {
      if (mgr.var_at_level(l) != saved_order[l]) differs = true;
    }
    if (differs) {
      // Extend to the manager's full width: unmentioned variables keep
      // their relative order below the recorded ones.
      std::vector<std::uint32_t> full(saved_order);
      std::vector<bool> used(mgr.num_vars(), false);
      for (std::uint32_t v2 : saved_order) used[v2] = true;
      for (std::uint32_t v2 = 0; v2 < mgr.num_vars(); ++v2) {
        if (!used[v2]) full.push_back(v2);
      }
      mgr.set_order(full);  // requires a fresh manager
    }
    expect_line("nodes");
  }
  std::size_t count = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> count) || kw != "nodes") {
      throw ParseError("read_dd: expected 'nodes <count>'", lineno);
    }
  }
  if (count == 0) throw ParseError("read_dd: empty node list", lineno);

  // Edge token: "<id>" or (v2 bdd only) "!<id>". Resolves against already
  // parsed entries; the '!' composes as an XOR on the stored edge's
  // complement bit.
  std::vector<Edge> by_id(count, kNilEdge);
  auto parse_edge = [&](std::istringstream& ss) {
    std::string tok;
    if (!(ss >> tok)) {
      throw ParseError("read_dd: missing edge token in '" + line + "'",
                       lineno);
    }
    bool complement = false;
    if (!tok.empty() && tok[0] == '!') {
      if (!file_is_bdd) {
        throw ParseError("read_dd: complement edge outside bdd in '" + line +
                             "'",
                         lineno);
      }
      complement = true;
      tok.erase(0, 1);
    }
    const auto id = parse_number<std::size_t>(tok);
    if (!id || *id >= count || by_id[*id] == kNilEdge) {
      throw ParseError("read_dd: bad edge token in '" + line + "'", lineno);
    }
    return complement ? edge_not(by_id[*id]) : by_id[*id];
  };

  // Each resolved entry owns one manager reference to its node.
  struct Releaser {
    DdManager& mgr;
    std::vector<Edge>& edges;
    ~Releaser() {
      for (const Edge e : edges) {
        if (e != kNilEdge) DdInternal::deref(mgr, e);
      }
    }
  } releaser{mgr, by_id};

  for (std::size_t i = 0; i < count; ++i) {
    expect_line("node");
    std::istringstream ss(line);
    std::size_t id = 0;
    char kind = 0;
    if (!(ss >> id >> kind) || id >= count || by_id[id] != kNilEdge) {
      throw ParseError("read_dd: bad node line '" + line + "'", lineno);
    }
    if (kind == 'T') {
      // The value token is parsed with from_chars (never `ss >> double`,
      // which honors the imbued locale): a full-match parse with nothing
      // after it, so "1,5" and "5.0garbage" are both rejected.
      std::string tok, extra;
      std::optional<double> parsed;
      if (!(ss >> tok) || !(parsed = parse_number<double>(tok)) ||
          (ss >> extra)) {
        throw ParseError("read_dd: bad terminal line '" + line + "'", lineno);
      }
      const double value = *parsed;
      if (file_is_bdd && value != 1.0) {
        // The BDD fragment has the single terminal 1; zero is !1.
        throw ParseError("read_dd: bdd terminal must be 1, got '" + line + "'",
                         lineno);
      }
      by_id[id] = DdInternal::terminal(mgr, value);  // map's reference
    } else if (kind == 'N') {
      std::uint32_t var = 0;
      if (!(ss >> var) || var >= nvars) {
        throw ParseError("read_dd: bad internal line '" + line + "'", lineno);
      }
      const Edge t = parse_edge(ss);
      const Edge e = parse_edge(ss);
      DdInternal::ref(mgr, t);  // consumed by make_node
      DdInternal::ref(mgr, e);
      by_id[id] = DdInternal::make_node(mgr, var, t, e);
    } else {
      throw ParseError("read_dd: unknown node kind '" + line + "'", lineno);
    }
  }

  expect_line("root");
  Edge root = kNilEdge;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw) || kw != "root") {
      throw ParseError("read_dd: bad root line", lineno);
    }
    root = parse_edge(ss);
  }

  // v2 trailer: "crc <8 hex digits>" over the canonical body. Optional for
  // backward compatibility — pre-trailer v2 files simply end after `root` —
  // but when present it must match. The lookahead seeks back when the next
  // line belongs to someone else (concatenated-DD streams), and v1 files
  // never carry a trailer, so their lookahead is skipped entirely.
  if (!file_is_v1) {
    const std::uint32_t body_crc = crc.value();
    const std::istream::pos_type after_root = is.tellg();
    std::string trailer;
    std::size_t trailer_lineno = lineno;
    if (next_line(is, trailer, trailer_lineno)) {
      if (trailer.rfind("crc ", 0) == 0) {
        lineno = trailer_lineno;
        const std::string_view hex = std::string_view(trailer).substr(4);
        std::uint32_t stored = 0;
        const auto [ptr, ec] =
            std::from_chars(hex.data(), hex.data() + hex.size(), stored, 16);
        if (ec != std::errc{} || ptr != hex.data() + hex.size() ||
            hex.empty()) {
          throw ParseError("read_dd: bad crc trailer '" + trailer + "'",
                           lineno);
        }
        if (stored != body_crc) {
          throw ParseError("read_dd: checksum mismatch (file says " +
                               crc_hex(stored) + ", content is " +
                               crc_hex(body_crc) + ") — truncated or corrupt",
                           lineno);
        }
      } else {
        // Not ours: restore the stream so a following reader sees it.
        is.clear();
        is.seekg(after_root);
      }
    }
  }

  DdInternal::ref(mgr, root);
  return root;  // by_id's references die with the releaser
}

}  // namespace

void write_add(std::ostream& os, const Add& f) {
  CFPM_REQUIRE(!f.is_null());
  write_dd(os, *f.manager(), DdInternal::edge(f), /*is_bdd=*/false);
}

void write_bdd(std::ostream& os, const Bdd& f) {
  CFPM_REQUIRE(!f.is_null());
  write_dd(os, *f.manager(), DdInternal::edge(f), /*is_bdd=*/true);
}

Add read_add(std::istream& is, DdManager& mgr) {
  return DdInternal::make_add(&mgr, read_dd(is, mgr, /*want_bdd=*/false));
}

Bdd read_bdd(std::istream& is, DdManager& mgr) {
  return DdInternal::make_bdd(&mgr, read_dd(is, mgr, /*want_bdd=*/true));
}

}  // namespace cfpm::dd
