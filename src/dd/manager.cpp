#include "dd/manager.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/governor.hpp"
#include "support/metrics.hpp"

namespace cfpm::dd {

namespace {

// 64-bit mix for hashing node triples (Fibonacci hashing on a mixed word).
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::size_t hash_value(double v, std::size_t mask) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return static_cast<std::size_t>(mix(bits)) & mask;
}

constexpr std::size_t kInitialBuckets = 256;  // power of two

}  // namespace

std::size_t DdManager::child_slot(const DdNode* t, const DdNode* e,
                                  std::size_t mask) noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(t);
  const auto b = reinterpret_cast<std::uintptr_t>(e);
  return static_cast<std::size_t>(mix(a * 0x9e3779b97f4a7c15ULL + b)) & mask;
}

DdManager::DdManager(std::size_t num_vars, DdConfig config) : config_(config) {
  CFPM_REQUIRE(config_.cache_log2_slots >= 4 && config_.cache_log2_slots <= 28);
  cache_.resize(std::size_t{1} << config_.cache_log2_slots);
  ite_cache_.resize(std::size_t{1} << (config_.cache_log2_slots > 2
                                           ? config_.cache_log2_slots - 2
                                           : config_.cache_log2_slots));
  terminals_.buckets.resize(kInitialBuckets, nullptr);
  for (std::size_t i = 0; i < num_vars; ++i) new_var();
  zero_ = terminal(0.0);
  one_ = terminal(1.0);
}

DdManager::~DdManager() = default;

std::uint32_t DdManager::new_var() {
  const auto var = static_cast<std::uint32_t>(level_of_var_.size());
  level_of_var_.push_back(var);
  var_at_level_.push_back(var);
  unique_.emplace_back();
  unique_.back().buckets.resize(kInitialBuckets, nullptr);
  return var;
}

void DdManager::set_order(std::span<const std::uint32_t> order) {
  CFPM_REQUIRE(order.size() == num_vars());
  CFPM_REQUIRE(live_ <= 2 && dead_ == 0);  // only the 0/1 terminals may exist
  std::vector<bool> seen(num_vars(), false);
  for (std::uint32_t v : order) {
    CFPM_REQUIRE(v < num_vars() && !seen[v]);
    seen[v] = true;
  }
  for (std::uint32_t l = 0; l < order.size(); ++l) {
    var_at_level_[l] = order[l];
    level_of_var_[order[l]] = l;
  }
}

std::uint32_t DdManager::level_of_var(std::uint32_t var) const {
  CFPM_REQUIRE(var < num_vars());
  return level_of_var_[var];
}

std::uint32_t DdManager::var_at_level(std::uint32_t level) const {
  CFPM_REQUIRE(level < num_vars());
  return var_at_level_[level];
}

// ---------------------------------------------------------------------------
// Reference management.
//
// Invariant: n->ref == (number of live parents) + (number of external
// handles). A node with ref == 0 is "dead": it stays in its unique table
// (and may be resurrected by a cache hit or a unique-table hit) until the
// next garbage collection sweeps it.
// ---------------------------------------------------------------------------

void DdManager::ref_node(DdNode* n) noexcept {
  CFPM_ASSERT(n != nullptr);
  if (n->ref == 0) {
    // Resurrection: restore this node's parent-contribution to its children.
    --dead_;
    ++live_;
    if (!n->is_terminal()) {
      ref_node(n->then_child);
      ref_node(n->else_child);
    }
  }
  ++n->ref;
}

void DdManager::deref_node(DdNode* n) noexcept {
  CFPM_ASSERT(n != nullptr && n->ref > 0);
  if (--n->ref == 0) {
    ++dead_;
    --live_;
    if (!n->is_terminal()) {
      deref_node(n->then_child);
      deref_node(n->else_child);
    }
  }
}

// ---------------------------------------------------------------------------
// Node construction.
// ---------------------------------------------------------------------------

DdNode* DdManager::allocate_node() {
  static const metrics::Counter c_alloc("dd.node.alloc");
  c_alloc.add();
  // Governor ticks fire here — the one point every growing operation must
  // pass through — except during in-place reordering, where an unwound
  // exception would leave a level half-relabeled (swaps checkpoint the
  // governor between whole swaps instead).
  if (config_.governor != nullptr && !in_reorder_) {
    config_.governor->note_live_nodes(live_);
    config_.governor->on_allocation();  // may throw
  }
  if (free_list_ != nullptr) {
    DdNode* n = free_list_;
    free_list_ = n->next;
    return n;
  }
  if (config_.max_nodes != 0 && allocated_ >= config_.max_nodes &&
      !in_reorder_) {
    collect_garbage();
    if (free_list_ != nullptr) {
      DdNode* n = free_list_;
      free_list_ = n->next;
      return n;
    }
    throw ResourceError("decision-diagram node budget exceeded (" +
                        std::to_string(config_.max_nodes) + " nodes)");
  }
  ++allocated_;
  return &arena_.emplace_back();
}

DdNode* DdManager::terminal(double value) {
  CFPM_REQUIRE(std::isfinite(value));
  if (value == 0.0) value = 0.0;  // normalize -0.0 to +0.0 for canonicity
  const std::size_t mask = terminals_.buckets.size() - 1;
  const std::size_t slot = hash_value(value, mask);
  for (DdNode* p = terminals_.buckets[slot]; p != nullptr; p = p->next) {
    if (p->value == value) {
      ref_node(p);
      return p;
    }
  }
  DdNode* n = allocate_node();
  n->var = DdNode::kTerminalVar;
  n->ref = 1;
  n->id = next_id_++;
  n->then_child = nullptr;
  n->else_child = nullptr;
  n->value = value;
  n->next = terminals_.buckets[slot];
  terminals_.buckets[slot] = n;
  ++terminals_.count;
  ++live_;
  return n;
}

DdNode* DdManager::make_node(std::uint32_t var, DdNode* t, DdNode* e) {
  CFPM_ASSERT(var < num_vars());
  if (t == e) {
    // Reduction rule: redundant test. Transfer t's reference to the result,
    // release e's.
    deref_node(e);
    return t;
  }
  CFPM_ASSERT(level_of(t) > level_of_var_[var]);
  CFPM_ASSERT(level_of(e) > level_of_var_[var]);

  UniqueTable& table = unique_[var];
  std::size_t mask = table.buckets.size() - 1;
  std::size_t slot = child_slot(t, e, mask);
  for (DdNode* p = table.buckets[slot]; p != nullptr; p = p->next) {
    if (p->then_child == t && p->else_child == e) {
      ref_node(p);
      deref_node(t);
      deref_node(e);
      return p;
    }
  }
  // Strong guarantee: a throw past this point (table growth, node budget,
  // governor fault) must not leak the child references this call consumes.
  DdNode* n;
  try {
    maybe_resize_table(var);
    n = allocate_node();
  } catch (...) {
    deref_node(t);
    deref_node(e);
    throw;
  }
  mask = table.buckets.size() - 1;
  slot = child_slot(t, e, mask);
  n->var = var;
  n->ref = 1;  // caller's reference
  n->id = next_id_++;
  n->then_child = t;  // adopts the caller's references as parent references
  n->else_child = e;
  n->value = 0.0;
  n->next = table.buckets[slot];
  table.buckets[slot] = n;
  ++table.count;
  ++live_;
  return n;
}

void DdManager::maybe_resize_table(std::uint32_t var) {
  UniqueTable& table = unique_[var];
  if (table.count < table.buckets.size()) return;
  std::vector<DdNode*> old = std::move(table.buckets);
  table.buckets.assign(old.size() * 2, nullptr);
  const std::size_t mask = table.buckets.size() - 1;
  for (DdNode* p : old) {
    while (p != nullptr) {
      DdNode* next = p->next;
      const std::size_t slot = child_slot(p->then_child, p->else_child, mask);
      p->next = table.buckets[slot];
      table.buckets[slot] = p;
      p = next;
    }
  }
}

// ---------------------------------------------------------------------------
// Garbage collection. Called only from safe points (no apply recursion in
// flight), so every node still needed is protected by a reference.
// ---------------------------------------------------------------------------

void DdManager::maybe_gc() {
  const std::size_t threshold = std::max(
      config_.gc_min_dead,
      static_cast<std::size_t>(static_cast<double>(live_) * config_.gc_dead_fraction));
  if (dead_ > threshold) collect_garbage();
}

std::size_t DdManager::unique_table_buckets() const noexcept {
  std::size_t buckets = terminals_.buckets.size();
  for (const UniqueTable& table : unique_) buckets += table.buckets.size();
  return buckets;
}

std::size_t DdManager::unique_table_nodes() const noexcept {
  std::size_t nodes = terminals_.count;
  for (const UniqueTable& table : unique_) nodes += table.count;
  return nodes;
}

std::size_t DdManager::collect_garbage() {
  if (dead_ == 0) return 0;
  static const metrics::Counter c_gc("dd.gc.run");
  c_gc.add();
  ++gc_runs_;
  cache_clear();  // cache holds unreferenced pointers; must not survive a sweep
  std::size_t reclaimed = 0;
  auto sweep = [&](UniqueTable& table) {
    for (DdNode*& bucket : table.buckets) {
      DdNode** link = &bucket;
      while (*link != nullptr) {
        DdNode* n = *link;
        if (n->ref == 0) {
          *link = n->next;
          n->next = free_list_;
          n->then_child = nullptr;
          n->else_child = nullptr;
          free_list_ = n;
          --table.count;
          ++reclaimed;
        } else {
          link = &n->next;
        }
      }
    }
  };
  for (UniqueTable& table : unique_) sweep(table);
  sweep(terminals_);
  CFPM_ASSERT(reclaimed == dead_);
  dead_ = 0;
  static const metrics::Counter c_reclaimed("dd.gc.reclaimed");
  static const metrics::Gauge g_live("dd.node.live");
  static const metrics::Gauge g_occupancy("dd.table.occupancy");
  c_reclaimed.add(reclaimed);
  g_live.set(static_cast<double>(live_));
  g_occupancy.set(unique_table_occupancy());
  return reclaimed;
}

// ---------------------------------------------------------------------------
// Computed cache: direct-mapped, lossy.
// ---------------------------------------------------------------------------

DdNode* DdManager::cache_lookup(Op op, const DdNode* f, const DdNode* g) noexcept {
  ++cache_lookups_;
  const auto a = reinterpret_cast<std::uintptr_t>(f);
  const auto b = reinterpret_cast<std::uintptr_t>(g);
  const std::size_t slot =
      static_cast<std::size_t>(mix(a * 31 + b * 0x9e3779b97f4a7c15ULL +
                                   static_cast<std::uint64_t>(op))) &
      (cache_.size() - 1);
  const CacheEntry& e = cache_[slot];
  static const metrics::Counter c_hit("dd.cache.hit");
  static const metrics::Counter c_miss("dd.cache.miss");
  if (e.f == f && e.g == g && e.op == static_cast<std::uint8_t>(op)) {
    ++cache_hits_;
    c_hit.add();
    return e.result;
  }
  c_miss.add();
  return nullptr;
}

void DdManager::cache_insert(Op op, const DdNode* f, const DdNode* g,
                             DdNode* r) noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(f);
  const auto b = reinterpret_cast<std::uintptr_t>(g);
  const std::size_t slot =
      static_cast<std::size_t>(mix(a * 31 + b * 0x9e3779b97f4a7c15ULL +
                                   static_cast<std::uint64_t>(op))) &
      (cache_.size() - 1);
  cache_[slot] = CacheEntry{f, g, static_cast<std::uint8_t>(op), r};
}

DdNode* DdManager::ite_cache_lookup(const DdNode* f, const DdNode* g,
                                    const DdNode* h) noexcept {
  ++cache_lookups_;
  const auto a = reinterpret_cast<std::uintptr_t>(f);
  const auto b = reinterpret_cast<std::uintptr_t>(g);
  const auto c = reinterpret_cast<std::uintptr_t>(h);
  const std::size_t slot =
      static_cast<std::size_t>(mix(a * 31 + b * 0x9e3779b97f4a7c15ULL + c)) &
      (ite_cache_.size() - 1);
  const IteCacheEntry& e = ite_cache_[slot];
  static const metrics::Counter c_hit("dd.cache.hit");
  static const metrics::Counter c_miss("dd.cache.miss");
  if (e.f == f && e.g == g && e.h == h) {
    ++cache_hits_;
    c_hit.add();
    return e.result;
  }
  c_miss.add();
  return nullptr;
}

void DdManager::ite_cache_insert(const DdNode* f, const DdNode* g,
                                 const DdNode* h, DdNode* r) noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(f);
  const auto b = reinterpret_cast<std::uintptr_t>(g);
  const auto c = reinterpret_cast<std::uintptr_t>(h);
  const std::size_t slot =
      static_cast<std::size_t>(mix(a * 31 + b * 0x9e3779b97f4a7c15ULL + c)) &
      (ite_cache_.size() - 1);
  ite_cache_[slot] = IteCacheEntry{f, g, h, r};
}

void DdManager::cache_clear() noexcept {
  for (CacheEntry& e : cache_) e = CacheEntry{};
  for (IteCacheEntry& e : ite_cache_) e = IteCacheEntry{};
}

// ---------------------------------------------------------------------------
// Leaf / variable constructors.
// ---------------------------------------------------------------------------

Add DdManager::constant(double value) { return Add(this, terminal(value)); }

Bdd DdManager::bdd_zero() {
  ref_node(zero_);
  return Bdd(this, zero_);
}

Bdd DdManager::bdd_one() {
  ref_node(one_);
  return Bdd(this, one_);
}

Bdd DdManager::bdd_var(std::uint32_t var) {
  CFPM_REQUIRE(var < num_vars());
  ref_node(one_);
  ref_node(zero_);
  return Bdd(this, make_node(var, one_, zero_));
}

// ---------------------------------------------------------------------------
// Handle plumbing.
// ---------------------------------------------------------------------------

DdHandle::DdHandle(const DdHandle& other) : mgr_(other.mgr_), node_(other.node_) {
  if (node_ != nullptr) mgr_->ref_node(node_);
}

DdHandle::DdHandle(DdHandle&& other) noexcept
    : mgr_(other.mgr_), node_(other.node_) {
  other.node_ = nullptr;
}

DdHandle& DdHandle::operator=(const DdHandle& other) {
  if (this == &other) return *this;
  DdNode* old = node_;
  DdManager* old_mgr = mgr_;
  mgr_ = other.mgr_;
  node_ = other.node_;
  if (node_ != nullptr) mgr_->ref_node(node_);
  if (old != nullptr) old_mgr->deref_node(old);
  return *this;
}

DdHandle& DdHandle::operator=(DdHandle&& other) noexcept {
  if (this == &other) return *this;
  if (node_ != nullptr) mgr_->deref_node(node_);
  mgr_ = other.mgr_;
  node_ = other.node_;
  other.node_ = nullptr;
  return *this;
}

DdHandle::~DdHandle() { reset(); }

void DdHandle::reset() noexcept {
  if (node_ != nullptr) {
    mgr_->deref_node(node_);
    node_ = nullptr;
  }
}

}  // namespace cfpm::dd
