#include "dd/manager.hpp"

#include <cmath>
#include <cstring>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/governor.hpp"
#include "support/metrics.hpp"

namespace cfpm::dd {

namespace {

// 64-bit mix for hashing edge tuples (Fibonacci hashing on a mixed word).
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::size_t hash_value(double v, std::size_t mask) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return static_cast<std::size_t>(mix(bits)) & mask;
}

constexpr std::size_t kInitialBuckets = 256;  // power of two

}  // namespace

std::size_t DdManager::child_slot(Edge t, Edge e, std::size_t mask) noexcept {
  const auto a = static_cast<std::uint64_t>(t);
  const auto b = static_cast<std::uint64_t>(e);
  return static_cast<std::size_t>(mix(a * 0x9e3779b97f4a7c15ULL + b)) & mask;
}

DdManager::DdManager(std::size_t num_vars, DdConfig config)
    : config_(config) {
  CFPM_REQUIRE(config_.cache_log2_slots >= 4 && config_.cache_log2_slots <= 28);
  cache_.resize(std::size_t{1} << config_.cache_log2_slots);
  terminals_.buckets.resize(kInitialBuckets, kNilIndex);
  // Pre-size the arena so early builds never pay a relocation; 4096 records
  // is 64 KiB, well under one unique table's worth of buckets.
  nodes_.reserve(4096);
  refs_.reserve(4096);
  for (std::size_t i = 0; i < num_vars; ++i) new_var();
  add_zero_ = terminal(0.0);
  one_ = terminal(1.0);
}

DdManager::~DdManager() = default;

std::uint32_t DdManager::new_var() {
  const auto var = static_cast<std::uint32_t>(level_of_var_.size());
  level_of_var_.push_back(var);
  var_at_level_.push_back(var);
  unique_.emplace_back();
  unique_.back().buckets.resize(kInitialBuckets, kNilIndex);
  return var;
}

void DdManager::set_order(std::span<const std::uint32_t> order) {
  CFPM_REQUIRE(order.size() == num_vars());
  CFPM_REQUIRE(live_ <= 2 && dead_ == 0);  // only the 0/1 terminals may exist
  std::vector<bool> seen(num_vars(), false);
  for (std::uint32_t v : order) {
    CFPM_REQUIRE(v < num_vars() && !seen[v]);
    seen[v] = true;
  }
  for (std::uint32_t l = 0; l < order.size(); ++l) {
    var_at_level_[l] = order[l];
    level_of_var_[order[l]] = l;
  }
}

std::uint32_t DdManager::level_of_var(std::uint32_t var) const {
  CFPM_REQUIRE(var < num_vars());
  return level_of_var_[var];
}

std::uint32_t DdManager::var_at_level(std::uint32_t level) const {
  CFPM_REQUIRE(level < num_vars());
  return var_at_level_[level];
}

// ---------------------------------------------------------------------------
// Reference management.
//
// Invariant: refs_[i] == (number of live parents of node i) + (number of
// external handles). Complemented and plain edges to a node contribute to
// the same count — the complement bit changes the denoted function, not the
// storage. A node with refs_[i] == 0 is "dead": it stays in its unique
// table (and may be resurrected by a cache hit or a unique-table hit) until
// the next garbage collection sweeps it.
// ---------------------------------------------------------------------------

void DdManager::ref_edge(Edge e) noexcept {
  CFPM_ASSERT(e != kNilEdge);
  const std::uint32_t i = edge_index(e);
  if (refs_[i] == 0) {
    // Resurrection: restore this node's parent-contribution to its children.
    --dead_;
    ++live_;
    const DdNode& n = nodes_[i];
    if (!n.is_terminal()) {
      ref_edge(n.then_edge);
      ref_edge(n.else_edge);
    }
  }
  ++refs_[i];
}

void DdManager::deref_edge(Edge e) noexcept {
  CFPM_ASSERT(e != kNilEdge);
  const std::uint32_t i = edge_index(e);
  CFPM_ASSERT(refs_[i] > 0);
  if (--refs_[i] == 0) {
    ++dead_;
    --live_;
    const DdNode& n = nodes_[i];
    if (!n.is_terminal()) {
      deref_edge(n.then_edge);
      deref_edge(n.else_edge);
    }
  }
}

// ---------------------------------------------------------------------------
// Node construction.
// ---------------------------------------------------------------------------

std::uint32_t DdManager::allocate_node() {
  static const metrics::Counter c_alloc("dd.node.alloc");
  c_alloc.add();
  // Governor ticks fire here — the one point every growing operation must
  // pass through — except during in-place reordering, where an unwound
  // exception would leave a level half-relabeled (swaps checkpoint the
  // governor between whole swaps instead).
  if (config_.governor != nullptr && !in_reorder_) {
    config_.governor->note_live_nodes(live_);
    config_.governor->on_allocation();  // may throw
  }
  // Same exclusion zone as the governor: an injected throw unwinds through
  // the strongly exception-safe apply/ite/make_node paths, but must never
  // fire inside an in-place reorder swap.
  if (!in_reorder_) CFPM_FAILPOINT("dd.allocate_node");
  if (free_list_ != kNilIndex) {
    const std::uint32_t i = free_list_;
    free_list_ = nodes_[i].next;
    return i;
  }
  if (config_.max_nodes != 0 && allocated_ >= config_.max_nodes &&
      !in_reorder_) {
    collect_garbage();
    if (free_list_ != kNilIndex) {
      const std::uint32_t i = free_list_;
      free_list_ = nodes_[i].next;
      return i;
    }
    throw ResourceError("decision-diagram node budget exceeded (" +
                        std::to_string(config_.max_nodes) + " nodes)");
  }
  CFPM_REQUIRE(allocated_ < kNilIndex);  // 31-bit index space
  const auto i = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  refs_.push_back(0);
  ++allocated_;
  return i;
}

Edge DdManager::terminal(double value) {
  CFPM_REQUIRE(std::isfinite(value));
  if (value == 0.0) value = 0.0;  // normalize -0.0 to +0.0 for canonicity
  const std::size_t mask = terminals_.buckets.size() - 1;
  const std::size_t slot = hash_value(value, mask);
  for (std::uint32_t p = terminals_.buckets[slot]; p != kNilIndex;
       p = nodes_[p].next) {
    if (terminal_values_[nodes_[p].then_edge] == value) {
      ref_edge(make_edge(p));
      return make_edge(p);
    }
  }
  const std::uint32_t i = allocate_node();
  std::uint32_t value_slot;
  if (!value_free_.empty()) {
    value_slot = value_free_.back();
    value_free_.pop_back();
    terminal_values_[value_slot] = value;
  } else {
    value_slot = static_cast<std::uint32_t>(terminal_values_.size());
    terminal_values_.push_back(value);
  }
  DdNode& n = nodes_[i];
  n.var = DdNode::kTerminalVar;
  n.then_edge = value_slot;
  n.else_edge = kNilEdge;
  n.next = terminals_.buckets[slot];
  refs_[i] = 1;
  terminals_.buckets[slot] = i;
  ++terminals_.count;
  ++live_;
  return make_edge(i);
}

Edge DdManager::make_node(std::uint32_t var, Edge t, Edge e) {
  CFPM_ASSERT(var < num_vars());
  if (t == e) {
    // Reduction rule: redundant test. Transfer t's reference to the result,
    // release e's.
    deref_edge(e);
    return t;
  }
  CFPM_ASSERT(level_of(t) > level_of_var_[var]);
  CFPM_ASSERT(level_of(e) > level_of_var_[var]);

  // Canonicity: the then-edge is never complemented. ADD edges are plain,
  // so this only ever fires in the BDD fragment. Flipping both children
  // (deref/ref not needed — the complement bit is not part of the count)
  // and complementing the result edge preserves the denoted function:
  //   ite(v, !a, !b) == !ite(v, a, b).
  const bool complement_out = edge_complemented(t);
  if (complement_out) {
    t = edge_not(t);
    e = edge_not(e);
  }

  UniqueTable& table = unique_[var];
  std::size_t mask = table.buckets.size() - 1;
  std::size_t slot = child_slot(t, e, mask);
  for (std::uint32_t p = table.buckets[slot]; p != kNilIndex;
       p = nodes_[p].next) {
    if (nodes_[p].then_edge == t && nodes_[p].else_edge == e) {
      ref_edge(make_edge(p));
      deref_edge(t);
      deref_edge(e);
      return make_edge(p, complement_out);
    }
  }
  // Strong guarantee: a throw past this point (table growth, node budget,
  // governor fault) must not leak the child references this call consumes.
  std::uint32_t i;
  try {
    maybe_resize_table(var);
    i = allocate_node();
  } catch (...) {
    deref_edge(t);
    deref_edge(e);
    throw;
  }
  mask = table.buckets.size() - 1;
  slot = child_slot(t, e, mask);
  DdNode& n = nodes_[i];
  n.var = var;
  n.then_edge = t;  // adopts the caller's references as parent references
  n.else_edge = e;
  n.next = table.buckets[slot];
  refs_[i] = 1;  // caller's reference
  table.buckets[slot] = i;
  ++table.count;
  ++live_;
  return make_edge(i, complement_out);
}

void DdManager::maybe_resize_table(std::uint32_t var) {
  UniqueTable& table = unique_[var];
  if (table.count < table.buckets.size()) return;
  std::vector<std::uint32_t> old = std::move(table.buckets);
  table.buckets.assign(old.size() * 2, kNilIndex);
  const std::size_t mask = table.buckets.size() - 1;
  for (std::uint32_t p : old) {
    while (p != kNilIndex) {
      const std::uint32_t next = nodes_[p].next;
      const std::size_t slot =
          child_slot(nodes_[p].then_edge, nodes_[p].else_edge, mask);
      nodes_[p].next = table.buckets[slot];
      table.buckets[slot] = p;
      p = next;
    }
  }
}

// ---------------------------------------------------------------------------
// Garbage collection. Called only from safe points (no apply recursion in
// flight), so every node still needed is protected by a reference.
// ---------------------------------------------------------------------------

void DdManager::maybe_gc() {
  const std::size_t threshold = std::max(
      config_.gc_min_dead,
      static_cast<std::size_t>(static_cast<double>(live_) * config_.gc_dead_fraction));
  if (dead_ > threshold) collect_garbage();
}

std::size_t DdManager::unique_table_buckets() const noexcept {
  std::size_t buckets = terminals_.buckets.size();
  for (const UniqueTable& table : unique_) buckets += table.buckets.size();
  return buckets;
}

std::size_t DdManager::unique_table_nodes() const noexcept {
  std::size_t nodes = terminals_.count;
  for (const UniqueTable& table : unique_) nodes += table.count;
  return nodes;
}

std::size_t DdManager::collect_garbage() {
  if (dead_ == 0) return 0;
  static const metrics::Counter c_gc("dd.gc.run");
  c_gc.add();
  ++gc_runs_;
  cache_clear();  // cache holds unreferenced edges; must not survive a sweep
  std::size_t reclaimed = 0;
  auto sweep = [&](UniqueTable& table, bool is_terminal_table) {
    for (std::uint32_t& bucket : table.buckets) {
      std::uint32_t* link = &bucket;
      while (*link != kNilIndex) {
        const std::uint32_t i = *link;
        DdNode& n = nodes_[i];
        if (refs_[i] == 0) {
          *link = n.next;
          if (is_terminal_table) value_free_.push_back(n.then_edge);
          n.then_edge = kNilEdge;
          n.else_edge = kNilEdge;
          n.next = free_list_;
          free_list_ = i;
          --table.count;
          ++reclaimed;
        } else {
          link = &n.next;
        }
      }
    }
  };
  for (UniqueTable& table : unique_) sweep(table, false);
  sweep(terminals_, true);
  CFPM_ASSERT(reclaimed == dead_);
  dead_ = 0;
  static const metrics::Counter c_reclaimed("dd.gc.reclaimed");
  static const metrics::Gauge g_live("dd.node.live");
  static const metrics::Gauge g_occupancy("dd.table.occupancy");
  c_reclaimed.add(reclaimed);
  g_live.set(static_cast<double>(live_));
  g_occupancy.set(unique_table_occupancy());
  return reclaimed;
}

// ---------------------------------------------------------------------------
// Unified computed cache: direct-mapped, lossy. One table serves binary
// apply (h == kNilEdge) and ITE (op == kOpIte) — the op tag is part of the
// key, so canonicalized ITE triples and arithmetic applies share capacity
// without colliding semantically.
// ---------------------------------------------------------------------------

Edge DdManager::cache_lookup(std::uint32_t op, Edge f, Edge g,
                             Edge h) noexcept {
  ++cache_lookups_;
  const std::uint64_t lo = (static_cast<std::uint64_t>(f) << 32) | g;
  const std::uint64_t hi = (static_cast<std::uint64_t>(h) << 32) | op;
  const std::size_t slot =
      static_cast<std::size_t>(mix(lo * 0x9e3779b97f4a7c15ULL + hi)) &
      (cache_.size() - 1);
  const CacheEntry& e = cache_[slot];
  static const metrics::Counter c_hit("dd.cache.hit");
  static const metrics::Counter c_miss("dd.cache.miss");
  if (e.f == f && e.g == g && e.h == h && e.op == op) {
    ++cache_hits_;
    c_hit.add();
    return e.result;
  }
  c_miss.add();
  return kNilEdge;
}

void DdManager::cache_insert(std::uint32_t op, Edge f, Edge g, Edge h,
                             Edge r) noexcept {
  const std::uint64_t lo = (static_cast<std::uint64_t>(f) << 32) | g;
  const std::uint64_t hi = (static_cast<std::uint64_t>(h) << 32) | op;
  const std::size_t slot =
      static_cast<std::size_t>(mix(lo * 0x9e3779b97f4a7c15ULL + hi)) &
      (cache_.size() - 1);
  cache_[slot] = CacheEntry{f, g, h, op, r};
}

void DdManager::cache_clear() noexcept {
  for (CacheEntry& e : cache_) e = CacheEntry{};
}

// ---------------------------------------------------------------------------
// Leaf / variable constructors.
// ---------------------------------------------------------------------------

Add DdManager::constant(double value) { return Add(this, terminal(value)); }

Bdd DdManager::bdd_zero() {
  ref_edge(one_);
  return Bdd(this, edge_not(one_));
}

Bdd DdManager::bdd_one() {
  ref_edge(one_);
  return Bdd(this, one_);
}

Bdd DdManager::bdd_var(std::uint32_t var) {
  CFPM_REQUIRE(var < num_vars());
  ref_edge(one_);
  ref_edge(one_);  // both children of the fresh node reference the 1-leaf
  return Bdd(this, make_node(var, one_, edge_not(one_)));
}

// ---------------------------------------------------------------------------
// Handle plumbing.
// ---------------------------------------------------------------------------

DdHandle::DdHandle(const DdHandle& other) : mgr_(other.mgr_), edge_(other.edge_) {
  if (edge_ != kNilEdge) mgr_->ref_edge(edge_);
}

DdHandle::DdHandle(DdHandle&& other) noexcept
    : mgr_(other.mgr_), edge_(other.edge_) {
  other.edge_ = kNilEdge;
}

DdHandle& DdHandle::operator=(const DdHandle& other) {
  if (this == &other) return *this;
  const Edge old = edge_;
  DdManager* old_mgr = mgr_;
  mgr_ = other.mgr_;
  edge_ = other.edge_;
  if (edge_ != kNilEdge) mgr_->ref_edge(edge_);
  if (old != kNilEdge) old_mgr->deref_edge(old);
  return *this;
}

DdHandle& DdHandle::operator=(DdHandle&& other) noexcept {
  if (this == &other) return *this;
  if (edge_ != kNilEdge) mgr_->deref_edge(edge_);
  mgr_ = other.mgr_;
  edge_ = other.edge_;
  other.edge_ = kNilEdge;
  return *this;
}

DdHandle::~DdHandle() { reset(); }

void DdHandle::reset() noexcept {
  if (edge_ != kNilEdge) {
    mgr_->deref_edge(edge_);
    edge_ = kNilEdge;
  }
}

}  // namespace cfpm::dd
