// Binary apply operators, complement-edge ITE, cofactors and evaluation.
//
// Arithmetic operators (ADD realm, plain edges) go through apply_rec;
// logical operators (BDD realm, complement edges) are expressed as ITE:
//   f & g == ite(f, g, 0),  f | g == ite(f, 1, g),  f ^ g == ite(f, !g, g),
// and !f is a bit flip on the edge. ITE triples are canonicalized to the
// CUDD standard triple before the cache is consulted, so equivalent calls
// (e.g. f&g and g&f, or an AND reached via two different De Morgan forms)
// share one cache slot and one recursion.
#include <algorithm>
#include <cmath>

#include "dd/manager.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace cfpm::dd {

namespace {

bool is_commutative(Op op) noexcept {
  switch (op) {
    case Op::kPlus:
    case Op::kTimes:
    case Op::kMax:
    case Op::kMin:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return true;
    case Op::kMinus:
      return false;
  }
  return false;
}

[[maybe_unused]] bool is_logical(Op op) noexcept {
  return op == Op::kAnd || op == Op::kOr || op == Op::kXor;
}

}  // namespace

double DdManager::apply_terminal(Op op, double a, double b) {
  switch (op) {
    case Op::kPlus:
      return a + b;
    case Op::kMinus:
      return a - b;
    case Op::kTimes:
      return a * b;
    case Op::kMax:
      return std::max(a, b);
    case Op::kMin:
      return std::min(a, b);
    case Op::kAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case Op::kOr:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case Op::kXor:
      return ((a != 0.0) != (b != 0.0)) ? 1.0 : 0.0;
  }
  CFPM_UNREACHABLE("bad Op");
}

// Operand-level simplifications that avoid recursion entirely. Operands
// are plain ADD edges, so edge comparison is function comparison.
Edge DdManager::apply_shortcut(Op op, Edge f, Edge g) const noexcept {
  const Edge zero = add_zero_;
  const Edge one = one_;
  switch (op) {
    case Op::kPlus:
      if (f == zero) return g;
      if (g == zero) return f;
      break;
    case Op::kMinus:
      if (g == zero) return f;
      break;
    case Op::kTimes:
      if (f == zero || g == zero) return zero;
      if (f == one) return g;
      if (g == one) return f;
      break;
    case Op::kMax:
    case Op::kMin:
      if (f == g) return f;
      break;
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      break;  // logical operators never reach apply (see ite)
  }
  return kNilEdge;
}

Edge DdManager::apply(Op op, Edge f, Edge g) {
  CFPM_ASSERT(f != kNilEdge && g != kNilEdge);
  CFPM_ASSERT(!is_logical(op));  // logical ops route through ite
  maybe_gc();
  return apply_rec(op, f, g);
}

Edge DdManager::apply_rec(Op op, Edge f, Edge g) {
  CFPM_ASSERT(!edge_complemented(f) && !edge_complemented(g));  // ADD realm
  // Cache canonicity for commutative operators: order by edge value (the
  // arena index is the deterministic tie-break the old node id provided).
  if (is_commutative(op) && f > g) std::swap(f, g);

  if (const Edge s = apply_shortcut(op, f, g); s != kNilEdge) {
    ref_edge(s);
    return s;
  }
  const std::uint32_t fi = edge_index(f);
  const std::uint32_t gi = edge_index(g);
  if (is_terminal_index(fi) && is_terminal_index(gi)) {
    return terminal(apply_terminal(op, value_of(fi), value_of(gi)));
  }
  if (const Edge hit = cache_lookup(static_cast<std::uint32_t>(op), f, g,
                                    kNilEdge);
      hit != kNilEdge) {
    ref_edge(hit);
    return hit;
  }

  const std::uint32_t lf = level_of(f);
  const std::uint32_t lg = level_of(g);
  const std::uint32_t level = std::min(lf, lg);
  const std::uint32_t var = var_at_level_[level];

  // Copy the child edges out before recursing: recursion allocates, and an
  // allocation may relocate the arena.
  const Edge ft = (lf == level) ? nodes_[fi].then_edge : f;
  const Edge fe = (lf == level) ? nodes_[fi].else_edge : f;
  const Edge gt = (lg == level) ? nodes_[gi].then_edge : g;
  const Edge ge = (lg == level) ? nodes_[gi].else_edge : g;

  const Edge t = apply_rec(op, ft, gt);
  Edge e;
  try {
    e = apply_rec(op, fe, ge);
  } catch (...) {
    deref_edge(t);  // keep the manager consistent when the recursion unwinds
    throw;
  }
  const Edge r = make_node(var, t, e);  // consumes t, e (also on throw)
  cache_insert(static_cast<std::uint32_t>(op), f, g, kNilEdge, r);
  return r;
}

Edge DdManager::ite(Edge f, Edge g, Edge h) {
  CFPM_ASSERT(f != kNilEdge && g != kNilEdge && h != kNilEdge);
  maybe_gc();
  return ite_rec(f, g, h);
}

// ITE with standard-triple canonicalization (the CUDD reductions): after
// the rewrites below, equivalent triples — however the caller phrased them
// — present identical (f, g, h, kOpIte) keys to the unified cache.
Edge DdManager::ite_rec(Edge f, Edge g, Edge h) {
  const Edge one = one_;
  const Edge zero = edge_not(one_);

  // Constant selector.
  if (f == one) {
    ref_edge(g);
    return g;
  }
  if (f == zero) {
    ref_edge(h);
    return h;
  }
  // Branches that repeat (or complement) the selector collapse to
  // constants: ite(f, f, h) == ite(f, 1, h), ite(f, !f, h) == ite(f, 0, h),
  // ite(f, g, f) == ite(f, g, 0), ite(f, g, !f) == ite(f, g, 1).
  if (f == g) {
    g = one;
  } else if (f == edge_not(g)) {
    g = zero;
  }
  if (f == h) {
    h = zero;
  } else if (f == edge_not(h)) {
    h = one;
  }
  if (g == h) {
    ref_edge(g);
    return g;
  }
  if (g == one && h == zero) {
    ref_edge(f);
    return f;
  }
  if (g == zero && h == one) {
    ref_edge(f);
    return edge_not(f);
  }

  // Swap rules: when one branch is constant (or the branches complement
  // each other) the triple has an equivalent form with the operands
  // reordered; pick the one whose selector comes first by (level, index)
  // so both spellings share a cache slot.
  auto precedes = [this](Edge a, Edge b) noexcept {
    const std::uint32_t la = level_of(a);
    const std::uint32_t lb = level_of(b);
    return la != lb ? la < lb : edge_regular(a) < edge_regular(b);
  };
  if (g == one) {  // f | h == ite(h, 1, f)
    if (precedes(h, f)) std::swap(f, h);
  } else if (h == zero) {  // f & g == ite(g, f, 0)
    if (precedes(g, f)) std::swap(f, g);
  } else if (h == one) {  // !f | g == ite(!g, !f, 1)
    if (precedes(edge_not(g), f)) {
      const Edge nf = edge_not(f);
      f = edge_not(g);
      g = nf;
    }
  } else if (g == zero) {  // !f & h == ite(!h, 0, !f)
    if (precedes(edge_not(h), f)) {
      const Edge nf = edge_not(f);
      f = edge_not(h);
      h = nf;
    }
  } else if (g == edge_not(h)) {  // f XNOR g == ite(g, f, !f)
    if (precedes(g, f)) {
      const Edge of = f;
      f = g;
      g = of;
      h = edge_not(of);
    }
  }
  // Polarity: an uncomplemented selector (swap the branches), then an
  // uncomplemented then-branch (complement the result instead).
  if (edge_complemented(f)) {
    f = edge_not(f);
    std::swap(g, h);
  }
  bool complement_out = false;
  if (edge_complemented(g)) {
    complement_out = true;
    g = edge_not(g);
    h = edge_not(h);
  }

  if (const Edge hit = cache_lookup(kOpIte, f, g, h); hit != kNilEdge) {
    ref_edge(hit);
    return complement_out ? edge_not(hit) : hit;
  }

  // Decompose on the top variable of the three operands. Cofactoring
  // through a complemented edge complements both children.
  const std::uint32_t level = std::min({level_of(f), level_of(g), level_of(h)});
  const std::uint32_t var = var_at_level_[level];
  auto split = [this, level](Edge x, bool then_side) noexcept {
    if (level_of(x) != level) return x;
    const DdNode& n = nodes_[edge_index(x)];
    return (then_side ? n.then_edge : n.else_edge) ^ (x & 1u);
  };
  const Edge t = ite_rec(split(f, true), split(g, true), split(h, true));
  Edge e;
  try {
    e = ite_rec(split(f, false), split(g, false), split(h, false));
  } catch (...) {
    deref_edge(t);
    throw;
  }
  const Edge r = make_node(var, t, e);  // consumes t, e (also on throw)
  cache_insert(kOpIte, f, g, h, r);
  return complement_out ? edge_not(r) : r;
}

Edge DdManager::cofactor_rec(Edge f, std::uint32_t var, bool phase) {
  const std::uint32_t target_level = level_of_var_[var];
  if (level_of(f) > target_level) {
    ref_edge(f);
    return f;
  }
  const std::uint32_t fi = edge_index(f);
  const std::uint32_t fvar = nodes_[fi].var;
  const Edge ft = nodes_[fi].then_edge ^ (f & 1u);
  const Edge fe = nodes_[fi].else_edge ^ (f & 1u);
  if (fvar == var) {
    const Edge r = phase ? ft : fe;
    ref_edge(r);
    return r;
  }
  const Edge t = cofactor_rec(ft, var, phase);
  Edge e;
  try {
    e = cofactor_rec(fe, var, phase);
  } catch (...) {
    deref_edge(t);
    throw;
  }
  return make_node(fvar, t, e);  // consumes t, e (also on throw)
}

// ---------------------------------------------------------------------------
// BDD -> ADD conversion. The complement-edge form and the plain 0/1 ADD
// form of the same function are different diagrams, so this is a memoized
// rebuild: an edge's parity decides whether the 1-leaf underneath means
// 1.0 or 0.0.
// ---------------------------------------------------------------------------

Edge DdManager::bdd_to_add(Edge f) {
  maybe_gc();
  std::unordered_map<Edge, Edge> memo;
  return bdd_to_add_rec(f, memo);
}

Edge DdManager::bdd_to_add_rec(Edge f, std::unordered_map<Edge, Edge>& memo) {
  const std::uint32_t fi = edge_index(f);
  if (is_terminal_index(fi)) {
    const bool truth = (value_of(fi) != 0.0) != edge_complemented(f);
    return terminal(truth ? 1.0 : 0.0);
  }
  if (const auto it = memo.find(f); it != memo.end()) {
    // Memoized results stay live: each is referenced by a parent inside
    // the growing result DAG (or by the recursion stack).
    ref_edge(it->second);
    return it->second;
  }
  const std::uint32_t fvar = nodes_[fi].var;
  const Edge ft = nodes_[fi].then_edge ^ (f & 1u);
  const Edge fe = nodes_[fi].else_edge ^ (f & 1u);
  const Edge t = bdd_to_add_rec(ft, memo);
  Edge e;
  try {
    e = bdd_to_add_rec(fe, memo);
  } catch (...) {
    deref_edge(t);
    throw;
  }
  const Edge r = make_node(fvar, t, e);  // consumes t, e (also on throw)
  memo.emplace(f, r);
  return r;
}

// ---------------------------------------------------------------------------
// Bdd operators.
// ---------------------------------------------------------------------------

namespace {

DdManager* common_manager(const DdHandle& a, const DdHandle& b) {
  CFPM_REQUIRE(!a.is_null() && !b.is_null());
  CFPM_REQUIRE(a.manager() == b.manager());
  return a.manager();
}

}  // namespace

Bdd Bdd::operator&(const Bdd& other) const {
  DdManager* m = common_manager(*this, other);
  return Bdd(m, m->ite(edge_, other.edge_, edge_not(m->one_)));
}

Bdd Bdd::operator|(const Bdd& other) const {
  DdManager* m = common_manager(*this, other);
  return Bdd(m, m->ite(edge_, m->one_, other.edge_));
}

Bdd Bdd::operator^(const Bdd& other) const {
  DdManager* m = common_manager(*this, other);
  return Bdd(m, m->ite(edge_, edge_not(other.edge_), other.edge_));
}

Bdd Bdd::operator!() const {
  CFPM_REQUIRE(!is_null());
  mgr_->ref_edge(edge_);
  return Bdd(mgr_, edge_not(edge_));
}

Bdd Bdd::ite(const Bdd& t, const Bdd& e) const {
  DdManager* m = common_manager(*this, t);
  CFPM_REQUIRE(e.manager() == m);
  return Bdd(m, m->ite(edge_, t.edge_, e.edge_));
}

Bdd Bdd::cofactor(std::uint32_t var, bool phase) const {
  CFPM_REQUIRE(!is_null());
  CFPM_REQUIRE(var < mgr_->num_vars());
  return Bdd(mgr_, mgr_->cofactor_rec(edge_, var, phase));
}

bool Bdd::is_zero() const noexcept {
  return edge_ != kNilEdge && edge_ == edge_not(mgr_->one_);
}

bool Bdd::is_one() const noexcept {
  return edge_ != kNilEdge && edge_ == mgr_->one_;
}

bool Bdd::eval(std::span<const std::uint8_t> assignment) const {
  CFPM_REQUIRE(!is_null());
  Edge e = edge_;
  while (!mgr_->is_terminal_index(edge_index(e))) {
    const DdNode& n = mgr_->nodes_[edge_index(e)];
    CFPM_REQUIRE(n.var < assignment.size());
    e = (assignment[n.var] ? n.then_edge : n.else_edge) ^ (e & 1u);
  }
  const bool truth = mgr_->value_of(edge_index(e)) != 0.0;
  return truth != edge_complemented(e);
}

// ---------------------------------------------------------------------------
// Add operators.
// ---------------------------------------------------------------------------

Add::Add(const Bdd& b) {
  CFPM_REQUIRE(!b.is_null());
  mgr_ = b.manager();
  edge_ = mgr_->bdd_to_add(b.edge_);
}

Add Add::operator+(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kPlus, edge_, other.edge_));
}

Add Add::operator-(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kMinus, edge_, other.edge_));
}

Add Add::operator*(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kTimes, edge_, other.edge_));
}

Add Add::times(double constant) const {
  CFPM_REQUIRE(!is_null());
  Add c = mgr_->constant(constant);
  return *this * c;
}

Add Add::max(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kMax, edge_, other.edge_));
}

Add Add::min(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kMin, edge_, other.edge_));
}

double Add::eval(std::span<const std::uint8_t> assignment) const {
  CFPM_REQUIRE(!is_null());
  Edge e = edge_;
  while (!mgr_->is_terminal_index(edge_index(e))) {
    const DdNode& n = mgr_->nodes_[edge_index(e)];
    CFPM_REQUIRE(n.var < assignment.size());
    e = assignment[n.var] ? n.then_edge : n.else_edge;
  }
  return mgr_->value_of(edge_index(e));
}

Add Add::cofactor(std::uint32_t var, bool phase) const {
  CFPM_REQUIRE(!is_null());
  CFPM_REQUIRE(var < mgr_->num_vars());
  return Add(mgr_, mgr_->cofactor_rec(edge_, var, phase));
}

double Add::terminal_value() const {
  CFPM_REQUIRE(is_terminal_node());
  return mgr_->value_of(edge_index(edge_));
}

}  // namespace cfpm::dd
