// Binary apply operators, ITE, cofactors and evaluation.
#include <algorithm>
#include <cmath>

#include "dd/manager.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace cfpm::dd {

namespace {

bool is_commutative(Op op) noexcept {
  switch (op) {
    case Op::kPlus:
    case Op::kTimes:
    case Op::kMax:
    case Op::kMin:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return true;
    case Op::kMinus:
      return false;
  }
  return false;
}

[[maybe_unused]] bool is_logical(Op op) noexcept {
  return op == Op::kAnd || op == Op::kOr || op == Op::kXor;
}

[[maybe_unused]] bool is_binary_terminal(const DdNode* n) noexcept {
  return n->is_terminal() && (n->value == 0.0 || n->value == 1.0);
}

}  // namespace

double DdManager::apply_terminal(Op op, double a, double b) {
  switch (op) {
    case Op::kPlus:
      return a + b;
    case Op::kMinus:
      return a - b;
    case Op::kTimes:
      return a * b;
    case Op::kMax:
      return std::max(a, b);
    case Op::kMin:
      return std::min(a, b);
    case Op::kAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case Op::kOr:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case Op::kXor:
      return ((a != 0.0) != (b != 0.0)) ? 1.0 : 0.0;
  }
  CFPM_UNREACHABLE("bad Op");
}

// Operand-level simplifications that avoid recursion entirely.
// Returns nullptr when no shortcut applies; otherwise the (unreferenced)
// result node.
DdNode* DdManager::apply_shortcut(Op op, DdNode* f, DdNode* g, DdNode* zero,
                                  DdNode* one) {
  switch (op) {
    case Op::kPlus:
      if (f == zero) return g;
      if (g == zero) return f;
      break;
    case Op::kMinus:
      if (g == zero) return f;
      break;
    case Op::kTimes:
      if (f == zero || g == zero) return zero;
      if (f == one) return g;
      if (g == one) return f;
      break;
    case Op::kMax:
    case Op::kMin:
      if (f == g) return f;
      break;
    case Op::kAnd:
      if (f == zero || g == zero) return zero;
      if (f == one) return g;
      if (g == one) return f;
      if (f == g) return f;
      break;
    case Op::kOr:
      if (f == one || g == one) return one;
      if (f == zero) return g;
      if (g == zero) return f;
      if (f == g) return f;
      break;
    case Op::kXor:
      if (f == zero) return g;
      if (g == zero) return f;
      if (f == g) return zero;
      break;
  }
  return nullptr;
}

DdNode* DdManager::apply(Op op, DdNode* f, DdNode* g) {
  CFPM_ASSERT(f != nullptr && g != nullptr);
  maybe_gc();
  return apply_rec(op, f, g);
}

DdNode* DdManager::apply_rec(Op op, DdNode* f, DdNode* g) {
  if (is_commutative(op) && f->id > g->id) std::swap(f, g);  // cache canonicity

  if (DdNode* s = apply_shortcut(op, f, g, zero_, one_)) {
    ref_node(s);
    return s;
  }
  if (f->is_terminal() && g->is_terminal()) {
    CFPM_ASSERT(!is_logical(op) ||
                (is_binary_terminal(f) && is_binary_terminal(g)));
    return terminal(apply_terminal(op, f->value, g->value));
  }
  if (DdNode* hit = cache_lookup(op, f, g)) {
    ref_node(hit);
    return hit;
  }

  const std::uint32_t lf = level_of(f);
  const std::uint32_t lg = level_of(g);
  const std::uint32_t level = std::min(lf, lg);
  const std::uint32_t var = var_at_level_[level];

  DdNode* ft = (lf == level) ? f->then_child : f;
  DdNode* fe = (lf == level) ? f->else_child : f;
  DdNode* gt = (lg == level) ? g->then_child : g;
  DdNode* ge = (lg == level) ? g->else_child : g;

  DdNode* t = apply_rec(op, ft, gt);
  DdNode* e;
  try {
    e = apply_rec(op, fe, ge);
  } catch (...) {
    deref_node(t);  // keep the manager consistent when the recursion unwinds
    throw;
  }
  DdNode* r = make_node(var, t, e);  // consumes t, e (also on throw)
  cache_insert(op, f, g, r);
  return r;
}

DdNode* DdManager::bdd_not(DdNode* f) {
  maybe_gc();
  return apply_rec(Op::kXor, f, one_);
}

// Standard ITE by Shannon expansion, memoized in a dedicated ternary
// computed cache (the binary apply cache cannot key three operands).
DdNode* DdManager::ite_rec(DdNode* f, DdNode* g, DdNode* h) {
  // Terminal cases.
  if (f == one_) {
    ref_node(g);
    return g;
  }
  if (f == zero_) {
    ref_node(h);
    return h;
  }
  if (g == h) {
    ref_node(g);
    return g;
  }
  if (g == one_ && h == zero_) {
    ref_node(f);
    return f;
  }
  if (DdNode* hit = ite_cache_lookup(f, g, h)) {
    ref_node(hit);
    return hit;
  }
  // Decompose on the top variable of the three operands.
  const std::uint32_t level =
      std::min({level_of(f), level_of(g), level_of(h)});
  const std::uint32_t var = var_at_level_[level];
  auto split = [&](DdNode* n, bool then_side) {
    if (level_of(n) != level) return n;
    return then_side ? n->then_child : n->else_child;
  };
  DdNode* t = ite_rec(split(f, true), split(g, true), split(h, true));
  DdNode* e;
  try {
    e = ite_rec(split(f, false), split(g, false), split(h, false));
  } catch (...) {
    deref_node(t);
    throw;
  }
  DdNode* r = make_node(var, t, e);  // consumes t, e (also on throw)
  ite_cache_insert(f, g, h, r);
  return r;
}

DdNode* DdManager::cofactor_rec(DdNode* f, std::uint32_t var, bool phase) {
  const std::uint32_t target_level = level_of_var_[var];
  if (level_of(f) > target_level) {
    ref_node(f);
    return f;
  }
  if (f->var == var) {
    DdNode* r = phase ? f->then_child : f->else_child;
    ref_node(r);
    return r;
  }
  DdNode* t = cofactor_rec(f->then_child, var, phase);
  DdNode* e;
  try {
    e = cofactor_rec(f->else_child, var, phase);
  } catch (...) {
    deref_node(t);
    throw;
  }
  return make_node(f->var, t, e);  // consumes t, e (also on throw)
}

// ---------------------------------------------------------------------------
// Bdd operators.
// ---------------------------------------------------------------------------

namespace {

DdManager* common_manager(const DdHandle& a, const DdHandle& b) {
  CFPM_REQUIRE(!a.is_null() && !b.is_null());
  CFPM_REQUIRE(a.manager() == b.manager());
  return a.manager();
}

}  // namespace

Bdd Bdd::operator&(const Bdd& other) const {
  DdManager* m = common_manager(*this, other);
  return Bdd(m, m->apply(Op::kAnd, node_, other.node_));
}

Bdd Bdd::operator|(const Bdd& other) const {
  DdManager* m = common_manager(*this, other);
  return Bdd(m, m->apply(Op::kOr, node_, other.node_));
}

Bdd Bdd::operator^(const Bdd& other) const {
  DdManager* m = common_manager(*this, other);
  return Bdd(m, m->apply(Op::kXor, node_, other.node_));
}

Bdd Bdd::operator!() const {
  CFPM_REQUIRE(!is_null());
  return Bdd(mgr_, mgr_->bdd_not(node_));
}

Bdd Bdd::ite(const Bdd& t, const Bdd& e) const {
  DdManager* m = common_manager(*this, t);
  CFPM_REQUIRE(e.manager() == m);
  m->maybe_gc();
  return Bdd(m, m->ite_rec(node_, t.node_, e.node_));
}

Bdd Bdd::cofactor(std::uint32_t var, bool phase) const {
  CFPM_REQUIRE(!is_null());
  CFPM_REQUIRE(var < mgr_->num_vars());
  return Bdd(mgr_, mgr_->cofactor_rec(node_, var, phase));
}

bool Bdd::is_zero() const noexcept {
  return node_ != nullptr && node_->is_terminal() && node_->value == 0.0;
}

bool Bdd::is_one() const noexcept {
  return node_ != nullptr && node_->is_terminal() && node_->value == 1.0;
}

bool Bdd::eval(std::span<const std::uint8_t> assignment) const {
  CFPM_REQUIRE(!is_null());
  const DdNode* n = node_;
  while (!n->is_terminal()) {
    CFPM_REQUIRE(n->var < assignment.size());
    n = assignment[n->var] ? n->then_child : n->else_child;
  }
  return n->value != 0.0;
}

// ---------------------------------------------------------------------------
// Add operators.
// ---------------------------------------------------------------------------

Add::Add(const Bdd& b) : DdHandle(b) {}

Add Add::operator+(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kPlus, node_, other.node_));
}

Add Add::operator-(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kMinus, node_, other.node_));
}

Add Add::operator*(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kTimes, node_, other.node_));
}

Add Add::times(double constant) const {
  CFPM_REQUIRE(!is_null());
  Add c = mgr_->constant(constant);
  return *this * c;
}

Add Add::max(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kMax, node_, other.node_));
}

Add Add::min(const Add& other) const {
  DdManager* m = common_manager(*this, other);
  return Add(m, m->apply(Op::kMin, node_, other.node_));
}

double Add::eval(std::span<const std::uint8_t> assignment) const {
  CFPM_REQUIRE(!is_null());
  const DdNode* n = node_;
  while (!n->is_terminal()) {
    CFPM_REQUIRE(n->var < assignment.size());
    n = assignment[n->var] ? n->then_child : n->else_child;
  }
  return n->value;
}

Add Add::cofactor(std::uint32_t var, bool phase) const {
  CFPM_REQUIRE(!is_null());
  CFPM_REQUIRE(var < mgr_->num_vars());
  return Add(mgr_, mgr_->cofactor_rec(node_, var, phase));
}

double Add::terminal_value() const {
  CFPM_REQUIRE(is_terminal_node());
  return node_->value;
}

}  // namespace cfpm::dd
