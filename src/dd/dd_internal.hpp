// Private bridge giving dd implementation files access to handle internals.
// Not installed; include only from src/dd/*.cpp and src/power model builder.
#pragma once

#include "dd/manager.hpp"

namespace cfpm::dd {

struct DdInternal {
  static DdNode* node(const DdHandle& h) { return h.node_; }
  /// Wraps an already-referenced node into a handle (takes ownership).
  static Bdd make_bdd(DdManager* m, DdNode* n) { return Bdd(m, n); }
  static Add make_add(DdManager* m, DdNode* n) { return Add(m, n); }

  // Reference plumbing for implementation files outside the manager.
  static void ref(DdManager& m, DdNode* n) { m.ref_node(n); }
  static void deref(DdManager& m, DdNode* n) { m.deref_node(n); }
  static DdNode* terminal(DdManager& m, double v) { return m.terminal(v); }
  static DdNode* make_node(DdManager& m, std::uint32_t var, DdNode* t,
                           DdNode* e) {
    return m.make_node(var, t, e);
  }
};

}  // namespace cfpm::dd
