// Private bridge giving dd implementation files access to handle internals.
// Not installed; include only from src/dd/*.cpp and src/power model builder.
#pragma once

#include "dd/manager.hpp"

namespace cfpm::dd {

struct DdInternal {
  static Edge edge(const DdHandle& h) { return h.edge_; }
  /// Wraps an already-referenced edge into a handle (takes ownership).
  static Bdd make_bdd(DdManager* m, Edge e) { return Bdd(m, e); }
  static Add make_add(DdManager* m, Edge e) { return Add(m, e); }

  // Reference and record plumbing for implementation files outside the
  // manager. Everything speaks Edge / arena index, never pointers.
  static void ref(DdManager& m, Edge e) { m.ref_edge(e); }
  static void deref(DdManager& m, Edge e) { m.deref_edge(e); }
  static Edge terminal(DdManager& m, double v) { return m.terminal(v); }
  static Edge make_node(DdManager& m, std::uint32_t var, Edge t, Edge e) {
    return m.make_node(var, t, e);
  }
  static const DdNode& node(const DdManager& m, std::uint32_t index) {
    return m.node_at(index);
  }
  static bool is_terminal(const DdManager& m, std::uint32_t index) {
    return m.is_terminal_index(index);
  }
  static double value(const DdManager& m, std::uint32_t index) {
    return m.value_of(index);
  }
};

}  // namespace cfpm::dd
